// Regenerates Fig. 8: P/E cycle endurance per workload, baseline vs Vpass
// Tuning. For each trace family the drive is replayed through the FTL for
// one refresh interval to measure the read-disturb pressure on the
// limiting (hottest) block; endurance is then the largest wear level at
// which that block still survives an interval. The paper reports a 21%
// average endurance improvement.
#include <cstdio>
#include <vector>

#include "core/endurance.h"
#include "ecc/ecc_model.h"
#include "flash/rber_model.h"
#include "ssd/ssd.h"
#include "workload/generator.h"
#include "workload/profiles.h"

using namespace rdsim;

int main() {
  const auto params = flash::FlashModelParams::default_2ynm();
  const flash::RberModel model(params);
  const ecc::EccModel ecc{ecc::EccConfig::paper_provisioning()};
  const core::EnduranceEvaluator evaluator(model, ecc);

  std::printf("# Fig 8: endurance improvement with Vpass Tuning\n");
  std::printf("workload,reads_per_interval,endurance_baseline,"
              "endurance_tuned,improvement_pct\n");

  double improvement_sum = 0.0;
  int count = 0;
  for (const auto& profile : workload::standard_suite()) {
    ssd::SsdConfig config;
    config.ftl.blocks = 1024;
    config.ftl.pages_per_block = 256;
    config.vpass_tuning = false;  // Pressure measurement only.
    ssd::Ssd drive(config, params, 7);

    workload::TraceGenerator gen(profile, drive.ftl().config().logical_pages(),
                                 1234);
    // Warm the drive (fill the logical space once), then replay one
    // refresh interval to observe steady-state block read pressure.
    for (std::uint64_t lpn = 0; lpn < drive.ftl().config().logical_pages();
         ++lpn)
      drive.ftl_mut().write(lpn);
    for (int day = 0; day < 7; ++day) drive.run_day(gen.day());

    const double reads_per_interval =
        static_cast<double>(drive.max_reads_per_interval());
    const double base = evaluator.endurance_pe(reads_per_interval, false);
    const double tuned = evaluator.endurance_pe(reads_per_interval, true);
    const double gain = (tuned / base - 1.0) * 100.0;
    improvement_sum += gain;
    ++count;
    std::printf("%s,%.0f,%.0f,%.0f,%+.1f\n", profile.name.c_str(),
                reads_per_interval, base, tuned, gain);
  }
  std::printf("\n# Average improvement (paper: 21.0%%)\n");
  std::printf("average_improvement_pct\n%.1f\n", improvement_sum / count);
  return 0;
}
