// Regenerates Fig. 8: P/E cycle endurance per workload, baseline vs Vpass
// Tuning. For each trace family the drive is replayed through the FTL for
// one refresh interval to measure the read-disturb pressure on the
// limiting (hottest) block; endurance is then the largest wear level at
// which that block still survives an interval. The paper reports a 21%
// average endurance improvement.
//
// This binary is a thin wrapper: the sweep itself lives in src/sim/ as the
// registered experiment "fig08" and is also reachable through the unified
// driver (`rdsim --experiment fig08`). Run with --help for the shared
// flags (--seed, --threads, --out-dir, ...).
#include "sim/bench_main.h"

int main(int argc, char** argv) {
  return rdsim::sim::bench_main("fig08", argc, argv);
}
