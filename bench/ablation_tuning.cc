// Ablation study (DESIGN.md §6): how Vpass Tuning's endurance gain
// depends on (a) the tuning step size delta, (b) the reserved ECC margin,
// and (c) the tuning cadence — the design choices the paper fixes at
// delta = minimum resolution, 20% reserve, daily tuning.
//
// This binary is a thin wrapper: the sweep itself lives in src/sim/ as the
// registered experiment "ablation_tuning" and is also reachable through the unified
// driver (`rdsim --experiment ablation_tuning`). Run with --help for the shared
// flags (--seed, --threads, --out-dir, ...).
#include "sim/bench_main.h"

int main(int argc, char** argv) {
  return rdsim::sim::bench_main("ablation_tuning", argc, argv);
}
