// Ablation study (DESIGN.md §6): how Vpass Tuning's endurance gain
// depends on (a) the tuning step size delta, (b) the reserved ECC margin,
// and (c) the tuning cadence — the design choices the paper fixes at
// delta = minimum resolution, 20% reserve, daily tuning.
#include <cstdio>
#include <vector>

#include "core/endurance.h"
#include "ecc/ecc_model.h"
#include "flash/rber_model.h"

using namespace rdsim;

int main() {
  const auto params = flash::FlashModelParams::default_2ynm();
  const flash::RberModel model(params);
  const double reads_per_interval = 300e3;

  std::printf("# Ablation: Vpass Tuning design choices "
              "(read-hot block, %.0fK reads/interval)\n",
              reads_per_interval / 1000);

  std::printf("\n# (a) tuning step size delta (normalized units)\n");
  std::printf("delta,endurance_tuned,gain_pct\n");
  {
    const ecc::EccModel ecc{ecc::EccConfig::paper_provisioning()};
    const core::EnduranceEvaluator base_eval(model, ecc);
    const double base = base_eval.endurance_pe(reads_per_interval, false);
    for (const double delta : {1.0, 2.0, 4.0, 8.0, 16.0}) {
      core::EnduranceOptions opt;
      opt.tuning_delta = delta;
      const core::EnduranceEvaluator eval(model, ecc, opt);
      const double tuned = eval.endurance_pe(reads_per_interval, true);
      std::printf("%.0f,%.0f,%+.1f\n", delta, tuned,
                  (tuned / base - 1.0) * 100.0);
    }
  }

  std::printf("\n# (b) reserved ECC margin\n");
  std::printf("reserved_pct,endurance_tuned,gain_pct\n");
  for (const double reserve : {0.0, 0.10, 0.20, 0.30, 0.40}) {
    ecc::EccConfig cfg = ecc::EccConfig::paper_provisioning();
    cfg.reserved_margin = reserve;
    const ecc::EccModel ecc{cfg};
    const core::EnduranceEvaluator eval(model, ecc);
    const double base = eval.endurance_pe(reads_per_interval, false);
    const double tuned = eval.endurance_pe(reads_per_interval, true);
    std::printf("%.0f,%.0f,%+.1f\n", reserve * 100, tuned,
                (tuned / base - 1.0) * 100.0);
  }

  std::printf("\n# (c) refresh interval (tuning is daily; longer intervals "
              "accumulate more disturb)\n");
  std::printf("refresh_days,endurance_baseline,endurance_tuned,gain_pct\n");
  for (const double days : {3.0, 7.0, 14.0, 21.0}) {
    const ecc::EccModel ecc{ecc::EccConfig::paper_provisioning()};
    core::EnduranceOptions opt;
    opt.refresh_interval_days = days;
    const core::EnduranceEvaluator eval(model, ecc, opt);
    // Scale pressure with interval length (same daily read rate).
    const double reads = reads_per_interval / 7.0 * days;
    const double base = eval.endurance_pe(reads, false);
    const double tuned = eval.endurance_pe(reads, true);
    std::printf("%.0f,%.0f,%.0f,%+.1f\n", days, base, tuned,
                (tuned / base - 1.0) * 100.0);
  }
  return 0;
}
