// Regenerates Fig. 10: RBER vs. read disturb count with and without Read
// Disturb Recovery, for a block with 8K P/E cycles of wear. RDR engages —
// as in the paper — when a page's raw errors exceed what ECC can correct;
// below that point the "RDR" curve coincides with no-recovery because the
// mechanism is never invoked. The paper reports the reduction growing
// from a few percent to 36% at 1M reads.
//
// This binary is a thin wrapper: the sweep itself lives in src/sim/ as the
// registered experiment "fig10" and is also reachable through the unified
// driver (`rdsim --experiment fig10`). Run with --help for the shared
// flags (--seed, --threads, --out-dir, ...).
#include "sim/bench_main.h"

int main(int argc, char** argv) {
  return rdsim::sim::bench_main("fig10", argc, argv);
}
