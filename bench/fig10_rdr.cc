// Regenerates Fig. 10: RBER vs. read disturb count with and without Read
// Disturb Recovery, for a block with 8K P/E cycles of wear. RDR engages —
// as in the paper — when a page's raw errors exceed what ECC can correct;
// below that point the "RDR" curve coincides with no-recovery because the
// mechanism is never invoked. The paper reports the reduction growing
// from a few percent to 36% at 1M reads.
#include <cstdio>
#include <vector>

#include "core/rdr.h"
#include "ecc/ecc_model.h"
#include "nand/chip.h"

using namespace rdsim;

int main() {
  const auto params = flash::FlashModelParams::default_2ynm();
  const ecc::EccModel ecc{ecc::EccConfig::paper_provisioning()};
  // Page capability for the MC chip's 8192-cell (16384-bit) pages: two
  // 1 KiB codewords.
  const int page_capability = ecc.capability() * 2;

  std::printf("# Fig 10: RBER vs read disturb count, no recovery vs RDR "
              "(8K P/E)\n");
  std::printf("# RDR engages when page errors exceed the ECC capability "
              "(%d bits/page)\n", page_capability);
  std::printf("reads,rber_no_recovery,rber_rdr,reduction_pct,engaged\n");

  const core::ReadDisturbRecovery rdr;
  for (double reads = 0; reads <= 1e6 + 1; reads += 100e3) {
    // Fresh chip per point: each x-value is an independent experiment, as
    // in the paper's per-read-count measurements.
    nand::Chip chip(nand::Geometry::characterization(), params, 42);
    auto& block = chip.block(0);
    block.add_wear(8000);
    block.program_random();
    const std::uint32_t wl = 30;
    if (reads > 0) block.apply_reads(wl + 1, reads);

    const int lsb_errors = block.count_errors({wl, nand::PageKind::kLsb});
    const int msb_errors = block.count_errors({wl, nand::PageKind::kMsb});
    const double bits = 2.0 * block.geometry().bitlines;
    const double rber_before = (lsb_errors + msb_errors) / bits;

    const bool engaged =
        lsb_errors > page_capability || msb_errors > page_capability;
    double rber_after = rber_before;
    if (engaged) {
      const auto result = rdr.recover(block, wl);
      rber_after = result.rber_after();
    }
    std::printf("%.0f,%.6g,%.6g,%.1f,%d\n", reads, rber_before, rber_after,
                rber_before > 0 ? (1.0 - rber_after / rber_before) * 100.0
                                : 0.0,
                engaged ? 1 : 0);
  }
  return 0;
}
