// Google-benchmark microbenchmarks of the simulator's hot paths: BCH
// encode/decode, Monte Carlo page reads, read-retry scans, analytic RBER
// evaluation, and Zipf sampling. These bound how large an experiment the
// harness can run per unit time.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "ecc/bch.h"
#include "flash/rber_model.h"
#include "nand/chip.h"
#include "workload/zipf.h"

using namespace rdsim;

namespace {

void BM_BchEncode(benchmark::State& state) {
  const ecc::BchCode code(13, static_cast<int>(state.range(0)), 4096);
  Rng rng(1);
  ecc::BitVec data(4096);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.next() & 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(code.encode(data));
  }
  state.SetBytesProcessed(state.iterations() * 4096 / 8);
}
BENCHMARK(BM_BchEncode)->Arg(8)->Arg(16)->Arg(40);

void BM_BchDecode(benchmark::State& state) {
  const int t = static_cast<int>(state.range(0));
  const ecc::BchCode code(13, t, 4096);
  Rng rng(2);
  ecc::BitVec data(4096);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.next() & 1);
  auto word = code.encode(data);
  // Inject t errors (worst correctable case).
  for (int i = 0; i < t; ++i)
    word[rng.uniform_u64(word.size())] ^= 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(code.decode(word));
  }
}
BENCHMARK(BM_BchDecode)->Arg(8)->Arg(16)->Arg(40);

void BM_McPageRead(benchmark::State& state) {
  const auto params = flash::FlashModelParams::default_2ynm();
  nand::Chip chip(nand::Geometry{64, 8192, 1}, params, 3);
  auto& block = chip.block(0);
  block.add_wear(8000);
  block.program_random();
  std::uint32_t wl = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(block.read_page({wl, nand::PageKind::kLsb}));
    wl = (wl + 1) % block.geometry().wordlines_per_block;
  }
  state.SetItemsProcessed(state.iterations() * 8192);
}
BENCHMARK(BM_McPageRead);

void BM_ReadRetryScan(benchmark::State& state) {
  const auto params = flash::FlashModelParams::default_2ynm();
  nand::Chip chip(nand::Geometry{64, 8192, 1}, params, 4);
  auto& block = chip.block(0);
  block.add_wear(8000);
  block.program_random();
  for (auto _ : state) {
    benchmark::DoNotOptimize(block.read_retry_scan(5, 0.0, 520.0, 0.5));
  }
  state.SetItemsProcessed(state.iterations() * 8192);
}
BENCHMARK(BM_ReadRetryScan);

// Pure page sense (no read side effects) on a heavily disturbed block:
// the batched SoA kernel's cached-exp fast path.
void BM_McCountErrors(benchmark::State& state) {
  const auto params = flash::FlashModelParams::default_2ynm();
  nand::Chip chip(nand::Geometry{64, 8192, 1}, params, 6);
  auto& block = chip.block(0);
  block.add_wear(8000);
  block.program_random();
  block.apply_reads(1, 1e6);
  std::uint32_t wl = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(block.count_errors({wl, nand::PageKind::kMsb}));
    wl = (wl + 1) % block.geometry().wordlines_per_block;
  }
  state.SetItemsProcessed(state.iterations() * 8192);
}
BENCHMARK(BM_McCountErrors);

// Retention-aged sense: the slow path that must re-evaluate exp per cell
// (the program-time cache only covers zero retention).
void BM_McCountErrorsAged(benchmark::State& state) {
  const auto params = flash::FlashModelParams::default_2ynm();
  nand::Chip chip(nand::Geometry{64, 8192, 1}, params, 7);
  auto& block = chip.block(0);
  block.add_wear(8000);
  block.program_random();
  block.apply_reads(1, 1e6);
  block.advance_time(7.0);
  std::uint32_t wl = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(block.count_errors({wl, nand::PageKind::kMsb}));
    wl = (wl + 1) % block.geometry().wordlines_per_block;
  }
  state.SetItemsProcessed(state.iterations() * 8192);
}
BENCHMARK(BM_McCountErrorsAged);

// Whole-block random programming: 64-bits-per-draw data generation plus
// per-cell ground-truth sampling and the exp(-B*v0) cache fill.
void BM_ProgramRandom(benchmark::State& state) {
  const auto params = flash::FlashModelParams::default_2ynm();
  nand::Chip chip(nand::Geometry{64, 8192, 1}, params, 8);
  auto& block = chip.block(0);
  for (auto _ : state) {
    block.erase();
    block.program_random();
  }
  state.SetItemsProcessed(state.iterations() * block.geometry().cells_per_block());
}
BENCHMARK(BM_ProgramRandom);

// A Vpass identification sweep: one count_blocked_bitlines probe per
// candidate step, now a binary search over the sorted blocking thresholds.
void BM_BlockedBitlineSweep(benchmark::State& state) {
  const auto params = flash::FlashModelParams::default_2ynm();
  nand::Chip chip(nand::Geometry{64, 8192, 1}, params, 9);
  auto& block = chip.block(0);
  block.add_wear(8000);
  block.program_random();
  for (auto _ : state) {
    int total = 0;
    for (double v = 512.0; v >= 460.0; v -= 2.0)
      total += block.count_blocked_bitlines(0, v);
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(BM_BlockedBitlineSweep);

void BM_AnalyticRber(benchmark::State& state) {
  const flash::RberModel model(flash::FlashModelParams::default_2ynm());
  double pe = 1000.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.total_rber({pe, 3.0, 50e3, 500.0}));
    pe = pe < 15000 ? pe + 1 : 1000.0;
  }
}
BENCHMARK(BM_AnalyticRber);

void BM_ZipfSample(benchmark::State& state) {
  workload::ZipfSampler zipf(1u << 20, 0.95);
  Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.sample(rng));
  }
}
BENCHMARK(BM_ZipfSample);

}  // namespace

BENCHMARK_MAIN();
