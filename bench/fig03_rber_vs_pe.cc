// Regenerates Fig. 3: raw bit error rate vs. read disturb count for blocks
// with 2K..15K P/E cycles of wear, plus the slope table the paper prints
// alongside it (RBER per read, fitted by least squares) compared against
// the paper's published slopes.
#include <cstdio>
#include <vector>

#include "common/stats.h"
#include "flash/rber_model.h"

using namespace rdsim;

int main() {
  const auto params = flash::FlashModelParams::default_2ynm();
  const flash::RberModel model(params);
  const std::vector<double> pe_levels = {2000, 3000, 4000, 5000,
                                         8000, 10000, 15000};
  const std::vector<double> paper_slopes = {1.00e-9, 1.63e-9, 2.37e-9,
                                            3.74e-9, 7.50e-9, 9.10e-9,
                                            1.90e-8};
  // Characterization conditions: short retention age, nominal Vpass.
  const double age_days = 0.5;
  const double vpass = params.vpass_nominal;

  std::printf("# Fig 3: RBER vs read disturb count at 2K-15K P/E\n");
  std::printf("reads");
  for (const double pe : pe_levels) std::printf(",pe_%.0fk", pe / 1000);
  std::printf("\n");
  std::vector<std::vector<double>> series(pe_levels.size());
  std::vector<double> xs;
  for (double reads = 0; reads <= 100e3; reads += 10e3) {
    xs.push_back(reads);
    std::printf("%.0f", reads);
    for (std::size_t i = 0; i < pe_levels.size(); ++i) {
      const double rber =
          model.total_rber({pe_levels[i], age_days, reads, vpass});
      series[i].push_back(rber);
      std::printf(",%.6g", rber);
    }
    std::printf("\n");
  }

  std::printf("\n# Slope table (RBER per read), fitted vs paper\n");
  std::printf("pe_cycles,fitted_slope,paper_slope,error_pct\n");
  for (std::size_t i = 0; i < pe_levels.size(); ++i) {
    const auto fit = fit_line(xs, series[i]);
    const double err =
        (fit.slope - paper_slopes[i]) / paper_slopes[i] * 100.0;
    std::printf("%.0f,%.3g,%.3g,%+.1f\n", pe_levels[i], fit.slope,
                paper_slopes[i], err);
  }
  return 0;
}
