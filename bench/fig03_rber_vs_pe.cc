// Regenerates Fig. 3: raw bit error rate vs. read disturb count for blocks
// with 2K..15K P/E cycles of wear, plus the slope table the paper prints
// alongside it (RBER per read, fitted by least squares) compared against
// the paper's published slopes.
//
// This binary is a thin wrapper: the sweep itself lives in src/sim/ as the
// registered experiment "fig03" and is also reachable through the unified
// driver (`rdsim --experiment fig03`). Run with --help for the shared
// flags (--seed, --threads, --out-dir, ...).
#include "sim/bench_main.h"

int main(int argc, char** argv) {
  return rdsim::sim::bench_main("fig03", argc, argv);
}
