// Regenerates Fig. 4: RBER vs. read disturb count (log-scale x, 1e4..1e9)
// for pass-through voltages between 94% and 100% of nominal, on a block
// with 8K P/E cycles of wear — plus the paper's headline observation that
// at 100K reads a 2% Vpass reduction cuts RBER by ~50%.
//
// As in the paper's experiment, the sweep isolates the disturb effect of
// the lowered Vpass (mimicked there via read-retry Vref); pass-through
// errors are studied separately in Fig. 5.
#include <cmath>
#include <cstdio>
#include <vector>

#include "flash/rber_model.h"

using namespace rdsim;

int main() {
  const auto params = flash::FlashModelParams::default_2ynm();
  const flash::RberModel model(params);
  const double pe = 8000.0;
  const double age = 0.5;
  const std::vector<double> fractions = {0.94, 0.95, 0.96, 0.97,
                                         0.98, 0.99, 1.00};

  std::printf("# Fig 4: RBER vs read disturb count for relaxed Vpass "
              "(8K P/E)\n");
  std::printf("reads");
  for (const double f : fractions) std::printf(",vpass_%.0f%%", f * 100);
  std::printf("\n");
  for (double lg = 4.0; lg <= 9.0 + 1e-9; lg += 0.25) {
    const double reads = std::pow(10.0, lg);
    std::printf("%.4g", reads);
    for (const double f : fractions) {
      const double vpass = params.vpass_nominal * f;
      const double rber = model.base_rber(pe) +
                          model.retention_rber(pe, age) +
                          model.disturb_rber(pe, reads, vpass);
      std::printf(",%.6g", rber);
    }
    std::printf("\n");
  }

  const double at100k_nominal =
      model.base_rber(pe) + model.retention_rber(pe, age) +
      model.disturb_rber(pe, 100e3, params.vpass_nominal);
  const double at100k_98 =
      model.base_rber(pe) + model.retention_rber(pe, age) +
      model.disturb_rber(pe, 100e3, params.vpass_nominal * 0.98);
  std::printf("\n# Headline check: RBER at 100K reads, 100%% vs 98%% Vpass\n");
  std::printf("rber_100pct,rber_98pct,reduction_pct\n");
  std::printf("%.6g,%.6g,%.1f\n", at100k_nominal, at100k_98,
              (1.0 - at100k_98 / at100k_nominal) * 100.0);

  // Iso-RBER tolerable read counts: "a decrease in Vpass exponentially
  // increases the number of tolerable read disturbs".
  std::printf("\n# Tolerable reads before RBER reaches 1.5e-3, by Vpass\n");
  std::printf("vpass_pct,tolerable_reads\n");
  const double target = 1.5e-3;
  for (const double f : fractions) {
    const double vpass = params.vpass_nominal * f;
    const double fixed = model.base_rber(pe) + model.retention_rber(pe, age);
    const double per_read = model.disturb_rber(pe, 1.0, vpass);
    const double reads = (target - fixed) / per_read;
    std::printf("%.0f,%.4g\n", f * 100, reads);
  }
  return 0;
}
