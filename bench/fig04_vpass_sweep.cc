// Regenerates Fig. 4: RBER vs. read disturb count (log-scale x, 1e4..1e9)
// for pass-through voltages between 94% and 100% of nominal, on a block
// with 8K P/E cycles of wear — plus the paper's headline observation that
// at 100K reads a 2% Vpass reduction cuts RBER by ~50%.
//
// As in the paper's experiment, the sweep isolates the disturb effect of
// the lowered Vpass (mimicked there via read-retry Vref); pass-through
// errors are studied separately in Fig. 5.
//
// This binary is a thin wrapper: the sweep itself lives in src/sim/ as the
// registered experiment "fig04" and is also reachable through the unified
// driver (`rdsim --experiment fig04`). Run with --help for the shared
// flags (--seed, --threads, --out-dir, ...).
#include "sim/bench_main.h"

int main(int argc, char** argv) {
  return rdsim::sim::bench_main("fig04", argc, argv);
}
