// Regenerates Fig. 12 (related work): distribution of the number of
// victim cells per aggressor row for three representative DRAM modules,
// one per manufacturer.
//
// This binary is a thin wrapper: the sweep itself lives in src/sim/ as the
// registered experiment "fig12" and is also reachable through the unified
// driver (`rdsim --experiment fig12`). Run with --help for the shared
// flags (--seed, --threads, --out-dir, ...).
#include "sim/bench_main.h"

int main(int argc, char** argv) {
  return rdsim::sim::bench_main("fig12", argc, argv);
}
