// Regenerates Fig. 12 (related work): distribution of the number of
// victim cells per aggressor row for three representative DRAM modules,
// one per manufacturer.
#include <cstdio>
#include <vector>

#include "common/rng.h"
#include "dram/rowhammer.h"

using namespace rdsim;

int main() {
  Rng rng(1240);
  const auto modules = dram::representative_modules();
  std::vector<std::vector<std::uint64_t>> hists;
  for (const auto& m : modules)
    hists.push_back(dram::victim_histogram(m, rng, 120));

  std::printf("# Fig 12: victim cells per aggressor row, representative "
              "modules\n");
  std::printf("victims");
  for (const auto& m : modules) std::printf(",%s", m.label().c_str());
  std::printf("\n");
  for (int v = 0; v <= 120; ++v) {
    std::printf("%d", v);
    for (const auto& h : hists) std::printf(",%llu",
        static_cast<unsigned long long>(h[v]));
    std::printf("\n");
  }
  return 0;
}
