// Regenerates Fig. 11 (related work, reproduced in the retrospective from
// the ISCA 2014 RowHammer paper): RowHammer error rate vs. manufacture
// date for a 129-module population from manufacturers A, B, and C.
//
// This binary is a thin wrapper: the sweep itself lives in src/sim/ as the
// registered experiment "fig11" and is also reachable through the unified
// driver (`rdsim --experiment fig11`). Run with --help for the shared
// flags (--seed, --threads, --out-dir, ...).
#include "sim/bench_main.h"

int main(int argc, char** argv) {
  return rdsim::sim::bench_main("fig11", argc, argv);
}
