// Regenerates Fig. 11 (related work, reproduced in the retrospective from
// the ISCA 2014 RowHammer paper): RowHammer error rate vs. manufacture
// date for a 129-module population from manufacturers A, B, and C.
#include <cstdio>

#include "common/rng.h"
#include "dram/rowhammer.h"

using namespace rdsim;

int main() {
  Rng rng(2014);
  const auto modules = dram::sample_population(rng, 129);

  std::printf("# Fig 11: RowHammer errors per 1e9 cells vs module "
              "manufacture date (129 modules)\n");
  std::printf("manufacturer,year,week,errors_per_1e9_cells\n");
  int vulnerable = 0;
  int y2012_13 = 0, y2012_13_vulnerable = 0;
  for (const auto& m : modules) {
    const double rate = dram::errors_per_billion_cells(m, rng);
    vulnerable += rate > 0;
    if (m.year == 2012 || m.year == 2013) {
      ++y2012_13;
      y2012_13_vulnerable += rate > 0;
    }
    std::printf("%s,%d,%d,%.4g\n", dram::manufacturer_name(m.manufacturer),
                m.year, m.week, rate);
  }
  std::printf("\n# Summary (paper: 110 of 129 vulnerable; all 2012-2013 "
              "modules vulnerable)\n");
  std::printf("total,vulnerable,modules_2012_13,vulnerable_2012_13\n");
  std::printf("%zu,%d,%d,%d\n", modules.size(), vulnerable, y2012_13,
              y2012_13_vulnerable);
  return 0;
}
