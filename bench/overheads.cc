// Reproduces the paper's §4 overhead accounting for Vpass Tuning on a
// 512 GB SSD: ~24.34 seconds of probe time per day and 128 KB of
// per-block metadata.
#include <cstdio>

#include "core/overheads.h"

using namespace rdsim;

int main() {
  const auto report = core::vpass_tuning_overheads();
  std::printf("# Vpass Tuning overheads for a 512 GB SSD "
              "(paper: 24.34 s/day, 128 KB)\n");
  std::printf("blocks,daily_seconds,metadata_kb\n");
  std::printf("%llu,%.2f,%.0f\n",
              static_cast<unsigned long long>(report.blocks),
              report.daily_seconds, report.metadata_bytes / 1024.0);
  return 0;
}
