// Reproduces the paper's §4 overhead accounting for Vpass Tuning on a
// 512 GB SSD: ~24.34 seconds of probe time per day and 128 KB of
// per-block metadata.
//
// This binary is a thin wrapper: the sweep itself lives in src/sim/ as the
// registered experiment "overheads" and is also reachable through the unified
// driver (`rdsim --experiment overheads`). Run with --help for the shared
// flags (--seed, --threads, --out-dir, ...).
#include "sim/bench_main.h"

int main(int argc, char** argv) {
  return rdsim::sim::bench_main("overheads", argc, argv);
}
