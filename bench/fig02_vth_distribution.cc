// Regenerates Fig. 2: threshold-voltage distributions of a flash block
// before and after 0 / 250K / 500K / 1M read disturb operations, measured
// with the read-retry scan — (a) all states, (b) the ER/P1 zoom.
//
// Output: CSV with one row per Vth bin: bin, pdf@0, pdf@250K, pdf@500K,
// pdf@1M.
//
// This binary is a thin wrapper: the sweep itself lives in src/sim/ as the
// registered experiment "fig02" and is also reachable through the unified
// driver (`rdsim --experiment fig02`). Run with --help for the shared
// flags (--seed, --threads, --out-dir, ...).
#include "sim/bench_main.h"

int main(int argc, char** argv) {
  return rdsim::sim::bench_main("fig02", argc, argv);
}
