// Regenerates Fig. 2: threshold-voltage distributions of a flash block
// before and after 0 / 250K / 500K / 1M read disturb operations, measured
// with the read-retry scan — (a) all states, (b) the ER/P1 zoom.
//
// Output: CSV with one row per Vth bin: bin, pdf@0, pdf@250K, pdf@500K,
// pdf@1M.
#include <cstdio>
#include <vector>

#include "common/histogram.h"
#include "nand/chip.h"

using namespace rdsim;

namespace {

Histogram scan_distribution(double reads, std::uint64_t seed) {
  const auto params = flash::FlashModelParams::default_2ynm();
  nand::Chip chip(nand::Geometry::characterization(), params, seed);
  auto& block = chip.block(0);
  block.add_wear(8000);
  block.program_random();
  Histogram hist(0.0, 520.0, 130);  // 4-unit bins, like the retry grid.
  const auto wls = block.geometry().wordlines_per_block;
  // Disturb all wordlines by addressing reads at a rotating sibling, then
  // scan a sample of wordlines.
  if (reads > 0) {
    for (std::uint32_t w = 0; w < wls; ++w)
      block.apply_reads(w, reads / wls);
  }
  for (std::uint32_t w = 0; w < wls; w += 4) {
    const auto scan = block.read_retry_scan(w, 0.0, 520.0, 2.0);
    for (const double v : scan) hist.add(v);
  }
  return hist;
}

}  // namespace

int main() {
  const std::vector<double> read_counts = {0.0, 250e3, 500e3, 1e6};
  std::vector<Histogram> hists;
  hists.reserve(read_counts.size());
  for (const double n : read_counts) hists.push_back(scan_distribution(n, 42));

  std::printf("# Fig 2: Vth distribution before/after read disturb "
              "(8K P/E block, normalized scale, Vpass nominal = 512)\n");
  std::printf("vth,pdf_0,pdf_250k,pdf_500k,pdf_1m\n");
  for (std::size_t i = 0; i < hists[0].bin_count(); ++i) {
    std::printf("%.1f", hists[0].bin_center(i));
    for (const auto& h : hists) std::printf(",%.6g", h.pdf(i));
    std::printf("\n");
  }

  // Fig. 2b companion: mean ER-state voltage per read count (quantifies
  // the "shift increases with reads, larger for lower Vth" finding).
  std::printf("\n# Fig 2b summary: ER-region (v < 105) mean Vth vs reads\n");
  std::printf("reads,er_mean_vth\n");
  for (std::size_t k = 0; k < read_counts.size(); ++k) {
    double mass = 0.0, sum = 0.0;
    for (std::size_t i = 0; i < hists[k].bin_count(); ++i) {
      if (hists[k].bin_center(i) >= 105.0) break;
      sum += hists[k].bin_center(i) * hists[k].mass(i);
      mass += hists[k].mass(i);
    }
    std::printf("%.0f,%.2f\n", read_counts[k], mass > 0 ? sum / mass : 0.0);
  }
  return 0;
}
