// Ablation study (DESIGN.md §6): RDR's sensitivity to its classification
// threshold (prone_factor), boundary-window margin, induced read count,
// and read-retry resolution — at the paper's headline operating point
// (8K P/E, 1M read disturbs).
#include <cstdio>

#include "core/rdr.h"
#include "nand/chip.h"

using namespace rdsim;

namespace {

double reduction_with(const core::RdrOptions& options) {
  const auto params = flash::FlashModelParams::default_2ynm();
  nand::Chip chip(nand::Geometry::characterization(), params, 42);
  auto& block = chip.block(0);
  block.add_wear(8000);
  block.program_random();
  block.apply_reads(31, 1e6);
  const core::ReadDisturbRecovery rdr(options);
  const auto r = rdr.recover(block, 30);
  return (1.0 - r.rber_after() / r.rber_before()) * 100.0;
}

}  // namespace

int main() {
  std::printf("# Ablation: RDR design choices (8K P/E, 1M disturbs; "
              "paper headline: 36%% reduction)\n");

  std::printf("\n# (a) classification threshold prone_factor\n");
  std::printf("prone_factor,rber_reduction_pct\n");
  for (const double pf : {1.2, 1.6, 2.0, 2.5, 3.0}) {
    core::RdrOptions o;
    o.prone_factor = pf;
    std::printf("%.1f,%.1f\n", pf, reduction_with(o));
  }

  std::printf("\n# (b) boundary window upper margin (units)\n");
  std::printf("upper_margin,rber_reduction_pct\n");
  for (const double m : {0.0, 3.0, 6.0, 12.0, 24.0}) {
    core::RdrOptions o;
    o.upper_margin = m;
    std::printf("%.0f,%.1f\n", m, reduction_with(o));
  }

  std::printf("\n# (c) induced disturb count\n");
  std::printf("extra_reads,rber_reduction_pct\n");
  for (const double n : {25e3, 50e3, 100e3, 200e3, 400e3}) {
    core::RdrOptions o;
    o.extra_reads = n;
    std::printf("%.0f,%.1f\n", n, reduction_with(o));
  }

  std::printf("\n# (d) read-retry resolution\n");
  std::printf("retry_step,rber_reduction_pct\n");
  for (const double s : {0.25, 0.5, 1.0, 2.0, 4.0}) {
    core::RdrOptions o;
    o.retry_step = s;
    std::printf("%.2f,%.1f\n", s, reduction_with(o));
  }
  return 0;
}
