// Ablation study (DESIGN.md §6): RDR's sensitivity to its classification
// threshold (prone_factor), boundary-window margin, induced read count,
// and read-retry resolution — at the paper's headline operating point
// (8K P/E, 1M read disturbs).
//
// This binary is a thin wrapper: the sweep itself lives in src/sim/ as the
// registered experiment "ablation_rdr" and is also reachable through the unified
// driver (`rdsim --experiment ablation_rdr`). Run with --help for the shared
// flags (--seed, --threads, --out-dir, ...).
#include "sim/bench_main.h"

int main(int argc, char** argv) {
  return rdsim::sim::bench_main("ablation_rdr", argc, argv);
}
