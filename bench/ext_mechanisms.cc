// Extension studies beyond the paper's evaluation (DESIGN.md §6):
//  (a) RFR — the authors' retention-error sibling of RDR;
//  (b) ROR-style read-reference optimization vs factory references;
//  (c) early 3D NAND vs planar 2Y-nm read disturb rates;
//  (d) concentrated (neighbor-boosted) read disturb, per Zambelli et al.;
//  (e) PARA closing the DRAM RowHammer vulnerability.
//
// This binary is a thin wrapper: the sweep itself lives in src/sim/ as the
// registered experiment "ext_mechanisms" and is also reachable through the unified
// driver (`rdsim --experiment ext_mechanisms`). Run with --help for the shared
// flags (--seed, --threads, --out-dir, ...).
#include "sim/bench_main.h"

int main(int argc, char** argv) {
  return rdsim::sim::bench_main("ext_mechanisms", argc, argv);
}
