// Extension studies beyond the paper's evaluation (DESIGN.md §6):
//  (a) RFR — the authors' retention-error sibling of RDR;
//  (b) ROR-style read-reference optimization vs factory references;
//  (c) early 3D NAND vs planar 2Y-nm read disturb rates;
//  (d) concentrated (neighbor-boosted) read disturb, per Zambelli et al.;
//  (e) PARA closing the DRAM RowHammer vulnerability.
#include <cstdio>

#include "core/rfr.h"
#include "core/vref_optimizer.h"
#include "dram/rowhammer.h"
#include "flash/rber_model.h"
#include "nand/chip.h"

using namespace rdsim;

int main() {
  const auto planar = flash::FlashModelParams::default_2ynm();

  std::printf("# (a) RFR: retention-error recovery vs age (12K P/E)\n");
  std::printf("age_days,rber_before,rber_after,reduction_pct\n");
  for (const double days : {10.0, 20.0, 40.0, 60.0}) {
    nand::Chip chip(nand::Geometry::characterization(), planar, 3);
    auto& b = chip.block(0);
    b.add_wear(12000);
    b.program_random();
    b.advance_time(days);
    const auto r = core::RetentionFailureRecovery().recover(b, 30);
    std::printf("%.0f,%.6g,%.6g,%.1f\n", days, r.rber_before(),
                r.rber_after(),
                (1.0 - r.rber_after() / r.rber_before()) * 100.0);
  }

  std::printf("\n# (b) Vref optimization vs factory refs "
              "(8K P/E, aged + disturbed)\n");
  std::printf("age_days,errors_default,errors_learned\n");
  for (const double days : {0.0, 7.0, 14.0, 21.0}) {
    nand::Chip chip(nand::Geometry::characterization(), planar, 4);
    auto& b = chip.block(0);
    b.add_wear(8000);
    b.program_random();
    b.advance_time(days);
    b.apply_reads(31, 3e5);
    const core::VrefOptimizer optimizer;
    const auto learned = optimizer.learn(b, 30);
    std::printf("%.0f,%d,%d\n", days,
                core::VrefOptimizer::count_errors_with_refs(
                    b, 30, core::VrefOptimizer::defaults(b)),
                core::VrefOptimizer::count_errors_with_refs(b, 30, learned));
  }

  std::printf("\n# (c) planar 2Y-nm vs early 3D NAND read disturb\n");
  std::printf("technology,slope_8k,errors_at_1m_reads\n");
  for (const bool is_3d : {false, true}) {
    const auto params =
        is_3d ? flash::FlashModelParams::early_3d_nand() : planar;
    const flash::RberModel model(params);
    nand::Chip chip(nand::Geometry::characterization(), params, 5);
    auto& b = chip.block(0);
    b.add_wear(8000);
    b.program_random();
    b.apply_reads(31, 1e6);
    std::printf("%s,%.3g,%d\n", is_3d ? "3d-early" : "planar-2ynm",
                model.disturb_slope(8000),
                b.count_errors({30, nand::PageKind::kMsb}));
  }

  std::printf("\n# (d) concentrated read disturb: errors by distance from "
              "the hammered wordline (boost=30, 300K reads)\n");
  std::printf("distance,errors\n");
  {
    auto params = planar;
    params.neighbor_dose_boost = 30.0;
    nand::Chip chip(nand::Geometry::characterization(), params, 6);
    auto& b = chip.block(0);
    b.add_wear(8000);
    b.program_random();
    b.apply_reads(31, 3e5);
    for (const std::uint32_t wl : {30u, 32u, 29u, 35u, 20u, 10u}) {
      std::printf("%d,%d\n", std::abs(static_cast<int>(wl) - 31),
                  b.count_errors({wl, nand::PageKind::kMsb}));
    }
  }

  std::printf("\n# (e) PARA: RowHammer error scale vs refresh probability\n");
  std::printf("para_probability,error_scale\n");
  for (const double p : {0.0, 1e-6, 1e-5, 5e-5, 1e-4, 2e-4, 1e-3}) {
    std::printf("%.0e,%.4g\n", p, dram::para_error_scale(p));
  }
  return 0;
}
