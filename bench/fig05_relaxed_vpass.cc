// Regenerates Fig. 5: additional raw bit error rate induced by relaxing
// the pass-through voltage, across data retention ages 0..21 days
// (8K P/E block). Older data tolerates a given relaxation better because
// retention loss lowers every cell's threshold voltage.
#include <cstdio>
#include <vector>

#include "flash/rber_model.h"

using namespace rdsim;

int main() {
  const auto params = flash::FlashModelParams::default_2ynm();
  const flash::RberModel model(params);
  const std::vector<double> ages = {0, 1, 2, 6, 9, 17, 21};

  std::printf("# Fig 5: additional RBER from relaxed Vpass vs retention "
              "age (8K P/E)\n");
  std::printf("vpass");
  for (const double t : ages) std::printf(",age_%gd", t);
  std::printf("\n");
  for (double v = 480.0; v <= 512.0 + 1e-9; v += 1.0) {
    std::printf("%.0f", v);
    for (const double t : ages)
      std::printf(",%.6g", model.pass_through_rber(v, t));
    std::printf("\n");
  }

  // "Vpass can be lowered to some degree without inducing any read
  // errors": the error-free relaxation, defined as less than one expected
  // additional bit error per 8 KiB page read.
  const double one_bit_per_page = 1.0 / 65536.0;
  std::printf("\n# Largest relaxation with < 1 additional error per page "
              "read, per age\n");
  std::printf("age_days,free_relaxation_units\n");
  for (const double t : ages) {
    double v = params.vpass_nominal;
    while (v > 480.0 &&
           model.pass_through_rber(v - 1.0, t) < one_bit_per_page)
      v -= 1.0;
    std::printf("%g,%.0f\n", t, params.vpass_nominal - v);
  }
  return 0;
}
