// Regenerates Fig. 5: additional raw bit error rate induced by relaxing
// the pass-through voltage, across data retention ages 0..21 days
// (8K P/E block). Older data tolerates a given relaxation better because
// retention loss lowers every cell's threshold voltage.
//
// This binary is a thin wrapper: the sweep itself lives in src/sim/ as the
// registered experiment "fig05" and is also reachable through the unified
// driver (`rdsim --experiment fig05`). Run with --help for the shared
// flags (--seed, --threads, --out-dir, ...).
#include "sim/bench_main.h"

int main(int argc, char** argv) {
  return rdsim::sim::bench_main("fig05", argc, argv);
}
