// Regenerates Fig. 7: error-rate peaks across consecutive refresh
// intervals, with and without Vpass Tuning. Each refresh restores the
// data (retention and disturb errors reset); mitigation lowers the slope
// of the read-disturb component, so the peak at the end of each interval
// drops — the gap between the two curves is the paper's "error reduction
// from mitigation".
//
// This binary is a thin wrapper: the sweep itself lives in src/sim/ as the
// registered experiment "fig07" and is also reachable through the unified
// driver (`rdsim --experiment fig07`). Run with --help for the shared
// flags (--seed, --threads, --out-dir, ...).
#include "sim/bench_main.h"

int main(int argc, char** argv) {
  return rdsim::sim::bench_main("fig07", argc, argv);
}
