// Regenerates Fig. 7: error-rate peaks across consecutive refresh
// intervals, with and without Vpass Tuning. Each refresh restores the
// data (retention and disturb errors reset); mitigation lowers the slope
// of the read-disturb component, so the peak at the end of each interval
// drops — the gap between the two curves is the paper's "error reduction
// from mitigation".
#include <cstdio>

#include "core/endurance.h"
#include "ecc/ecc_model.h"
#include "flash/rber_model.h"

using namespace rdsim;

int main() {
  const auto params = flash::FlashModelParams::default_2ynm();
  const flash::RberModel model(params);
  const ecc::EccModel ecc{ecc::EccConfig::paper_provisioning()};
  const core::EnduranceEvaluator evaluator(model, ecc);

  const double pe = 8000.0;
  const double reads_per_interval = 200e3;  // A read-hot block.
  const int intervals = 4;
  const double interval_days = evaluator.options().refresh_interval_days;

  std::printf("# Fig 7: error rate over refresh intervals, baseline vs "
              "Vpass Tuning (8K P/E, %.0fK reads/interval)\n",
              reads_per_interval / 1000);
  std::printf("day,rber_baseline,rber_tuned,ecc_capability\n");
  for (int i = 0; i < intervals; ++i) {
    for (int d = 0; d <= static_cast<int>(interval_days); ++d) {
      // Partial-interval simulation: reads accumulated proportionally.
      const double frac = d / interval_days;
      const auto base = evaluator.simulate_interval(
          pe, reads_per_interval * frac, /*tuning=*/false);
      const auto tuned = evaluator.simulate_interval(
          pe, reads_per_interval * frac, /*tuning=*/true);
      // Rescale the retention component to day d rather than interval end.
      const double ret_adj = model.retention_rber(pe, d) -
                             model.retention_rber(pe, interval_days);
      std::printf("%d,%.6g,%.6g,%.4g\n",
                  i * static_cast<int>(interval_days) + d,
                  base.peak_rber + 1.3 * ret_adj,
                  tuned.peak_rber + 1.3 * ret_adj,
                  params.ecc_capability_rber);
    }
  }

  const auto base = evaluator.simulate_interval(pe, reads_per_interval, false);
  const auto tuned = evaluator.simulate_interval(pe, reads_per_interval, true);
  std::printf("\n# Peak reduction from mitigation\n");
  std::printf("peak_baseline,peak_tuned,reduction_pct,mean_vpass_reduction_pct\n");
  std::printf("%.6g,%.6g,%.1f,%.2f\n", base.peak_rber, tuned.peak_rber,
              (1.0 - tuned.peak_rber / base.peak_rber) * 100.0,
              tuned.mean_vpass_reduction_pct);
  return 0;
}
