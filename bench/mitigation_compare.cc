// Mitigation landscape: compares the read disturb mitigations discussed in
// the paper's related work against Vpass Tuning, and their combination
// (Ha et al. later showed the approaches compose):
//
//   * none            — baseline;
//   * read reclaim    — remap a block after T reads (prior work [21,29,30,
//                       40] and the Yaffs policy [54]); bounds disturb but
//                       pays write amplification: every reclaim re-programs
//                       the block, adding wear in proportion to R/T;
//   * Vpass Tuning    — the paper's mechanism (no extra writes);
//   * reclaim+tuning  — both.
//
// Endurance is evaluated at the limiting block for a sweep of read
// pressures. Reclaim-induced wear is charged as extra P/E per interval:
// a block reclaimed k times per interval wears k cycles beyond its
// refresh cycle, i.e. its usable endurance divides by (1 + k).
//
// This binary is a thin wrapper: the sweep itself lives in src/sim/ as the
// registered experiment "mitigation_compare" and is also reachable through the unified
// driver (`rdsim --experiment mitigation_compare`). Run with --help for the shared
// flags (--seed, --threads, --out-dir, ...).
#include "sim/bench_main.h"

int main(int argc, char** argv) {
  return rdsim::sim::bench_main("mitigation_compare", argc, argv);
}
