// Mitigation landscape: compares the read disturb mitigations discussed in
// the paper's related work against Vpass Tuning, and their combination
// (Ha et al. later showed the approaches compose):
//
//   * none            — baseline;
//   * read reclaim    — remap a block after T reads (prior work [21,29,30,
//                       40] and the Yaffs policy [54]); bounds disturb but
//                       pays write amplification: every reclaim re-programs
//                       the block, adding wear in proportion to R/T;
//   * Vpass Tuning    — the paper's mechanism (no extra writes);
//   * reclaim+tuning  — both.
//
// Endurance is evaluated at the limiting block for a sweep of read
// pressures. Reclaim-induced wear is charged as extra P/E per interval:
// a block reclaimed k times per interval wears k cycles beyond its
// refresh cycle, i.e. its usable endurance divides by (1 + k).
#include <algorithm>
#include <cstdio>

#include "core/endurance.h"
#include "ecc/ecc_model.h"
#include "flash/rber_model.h"

using namespace rdsim;

int main() {
  const auto params = flash::FlashModelParams::default_2ynm();
  const flash::RberModel model(params);
  const ecc::EccModel ecc{ecc::EccConfig::paper_provisioning()};
  const core::EnduranceEvaluator evaluator(model, ecc);
  const double reclaim_threshold = 50e3;  // Yaffs MLC default.

  std::printf("# Mitigation comparison: effective endurance (P/E cycles at "
              "the limiting block)\n");
  std::printf("# read reclaim threshold T = %.0fK reads\n",
              reclaim_threshold / 1000);
  std::printf("reads_per_interval,none,read_reclaim,vpass_tuning,"
              "reclaim_plus_tuning\n");
  for (const double reads : {10e3, 30e3, 100e3, 300e3, 1e6}) {
    const double none = evaluator.endurance_pe(reads, false);
    const double tuning = evaluator.endurance_pe(reads, true);
    // Read reclaim: disturb capped at T, but each reclaim adds one P/E per
    // interval on top of the refresh cycle.
    const double reclaims_per_interval =
        std::max(0.0, reads / reclaim_threshold - 1.0);
    const double wear_mult = 1.0 + reclaims_per_interval;
    const double reclaim =
        evaluator.endurance_pe(std::min(reads, reclaim_threshold), false) /
        wear_mult;
    const double combined =
        evaluator.endurance_pe(std::min(reads, reclaim_threshold), true) /
        wear_mult;
    std::printf("%.0f,%.0f,%.0f,%.0f,%.0f\n", reads, none, reclaim, tuning,
                combined);
  }

  std::printf("\n# Reading the table\n");
  std::printf("# - Below T, reclaim never fires and matches 'none'; tuning "
              "already helps.\n");
  std::printf("# - Above T, reclaim caps the disturb errors (a reliability "
              "win) but its re-programming\n");
  std::printf("#   wear grows with R/T and overwhelms the benefit — at 1M "
              "reads/interval the block wears\n");
  std::printf("#   %.0fx faster. Vpass Tuning mitigates with *zero* extra "
              "writes, which is exactly the\n",
              1e6 / reclaim_threshold);
  std::printf("#   motivation the paper gives for a voltage-domain "
              "mechanism.\n");
  return 0;
}
