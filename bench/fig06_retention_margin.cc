// Regenerates Fig. 6: expected RBER (without read disturb) over a 21-day
// retention period for a block with 8K P/E cycles of wear, the ECC
// correction capability with its 20% reserved margin, and the annotation
// row — the maximum safe Vpass reduction percentage per retention age.
//
// This binary is a thin wrapper: the sweep itself lives in src/sim/ as the
// registered experiment "fig06" and is also reachable through the unified
// driver (`rdsim --experiment fig06`). Run with --help for the shared
// flags (--seed, --threads, --out-dir, ...).
#include "sim/bench_main.h"

int main(int argc, char** argv) {
  return rdsim::sim::bench_main("fig06", argc, argv);
}
