// Regenerates Fig. 6: expected RBER (without read disturb) over a 21-day
// retention period for a block with 8K P/E cycles of wear, the ECC
// correction capability with its 20% reserved margin, and the annotation
// row — the maximum safe Vpass reduction percentage per retention age.
#include <cstdio>

#include "flash/rber_model.h"

using namespace rdsim;

int main() {
  const auto params = flash::FlashModelParams::default_2ynm();
  const flash::RberModel model(params);
  const double pe = 8000.0;

  std::printf("# Fig 6: RBER vs retention age and tolerable Vpass "
              "reduction (8K P/E, no read disturb)\n");
  std::printf("# ECC correction capability RBER = %.4g, reserved margin = "
              "%.0f%%, usable = %.4g\n",
              params.ecc_capability_rber, params.ecc_reserved_margin * 100,
              model.usable_ecc_rber());
  std::printf("retention_days,expected_rber,margin_rber,"
              "safe_vpass_reduction_pct\n");
  for (int day = 1; day <= 21; ++day) {
    const double rber = model.base_rber(pe) + model.retention_rber(pe, day);
    const double margin = model.usable_ecc_rber() - rber;
    const int pct = model.safe_vpass_reduction_percent(pe, day);
    std::printf("%d,%.6g,%.6g,%d\n", day, rber, margin > 0 ? margin : 0.0,
                pct);
  }

  std::printf("\n# Paper check: max reduction is 4%% while retention age "
              "< 4 days\n");
  std::printf("day1,day2,day3,day4\n");
  std::printf("%d,%d,%d,%d\n", model.safe_vpass_reduction_percent(pe, 1),
              model.safe_vpass_reduction_percent(pe, 2),
              model.safe_vpass_reduction_percent(pe, 3),
              model.safe_vpass_reduction_percent(pe, 4));
  return 0;
}
