// Regenerates Fig. 9: threshold-voltage distributions around the ER/P1
// boundary before and after read disturb, showing why errors appear —
// the disturb-prone tail of ER crosses the read reference Va while
// disturb-resistant cells barely move.
#include <cstdio>

#include "common/histogram.h"
#include "nand/chip.h"

using namespace rdsim;

namespace {

void emit(const char* tag, nand::Block& block, std::uint32_t wl) {
  Histogram er(0.0, 200.0, 100), p1(0.0, 200.0, 100);
  const auto scan = block.read_retry_scan(wl, 0.0, 520.0, 1.0);
  for (std::uint32_t bl = 0; bl < block.geometry().bitlines; ++bl) {
    const auto& cell = block.cell(wl, bl);
    if (cell.programmed == flash::CellState::kEr)
      er.add(scan[bl]);
    else if (cell.programmed == flash::CellState::kP1)
      p1.add(scan[bl]);
  }
  std::printf("\n# %s\n", tag);
  std::printf("vth,pdf_er,pdf_p1\n");
  for (std::size_t i = 0; i < er.bin_count(); ++i)
    std::printf("%.0f,%.6g,%.6g\n", er.bin_center(i), er.pdf(i), p1.pdf(i));
}

}  // namespace

int main() {
  const auto params = flash::FlashModelParams::default_2ynm();
  nand::Chip chip(nand::Geometry::characterization(), params, 99);
  auto& block = chip.block(0);
  block.add_wear(8000);
  block.program_random();

  std::printf("# Fig 9: ER/P1 distributions before/after read disturb "
              "(Va = %.0f)\n", params.vref_a);
  const std::uint32_t wl = 10;
  emit("(a) no read disturb", block, wl);
  block.apply_reads(wl + 1, 1e6);
  emit("(b) after 1M read disturbs", block, wl);
  return 0;
}
