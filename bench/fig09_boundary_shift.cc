// Regenerates Fig. 9: threshold-voltage distributions around the ER/P1
// boundary before and after read disturb, showing why errors appear —
// the disturb-prone tail of ER crosses the read reference Va while
// disturb-resistant cells barely move.
//
// This binary is a thin wrapper: the sweep itself lives in src/sim/ as the
// registered experiment "fig09" and is also reachable through the unified
// driver (`rdsim --experiment fig09`). Run with --help for the shared
// flags (--seed, --threads, --out-dir, ...).
#include "sim/bench_main.h"

int main(int argc, char** argv) {
  return rdsim::sim::bench_main("fig09", argc, argv);
}
