// rdsim/fleet/checkpoint.h
//
// The versioned, crash-safe checkpoint container for fleet runs. A
// checkpoint file is:
//
//   +--------------------------------------------------------------+
//   | magic  u32  'RDFC'                                           |
//   | version u32                                                  |
//   | config_digest u32   CRC32 of the canonical config text       |
//   | section_count u32                                            |
//   +--------------------------------------------------------------+
//   | per section:  tag u32 | length u64 | payload | crc32 u32     |
//   +--------------------------------------------------------------+
//
// Every section carries its own CRC32, so a flipped bit anywhere is
// pinned to the section it corrupted. Files are written atomically
// (temp file in the same directory + rename), so a crash mid-write
// leaves either the previous complete checkpoint or none — never a
// torn one. Validation never partially applies: unpack_checkpoint
// either yields every section intact or fails with a diagnostic.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace rdsim::fleet {

inline constexpr std::uint32_t kCheckpointMagic = 0x52444643;  // "RDFC"
inline constexpr std::uint32_t kCheckpointVersion = 1;

// Section tags ("CONF" etc. as big-endian ASCII for greppable hexdumps).
inline constexpr std::uint32_t kSectionConfig = 0x434F4E46;  ///< Canonical
                                                             ///< config text.
inline constexpr std::uint32_t kSectionMeta = 0x4D455441;    ///< Run cursor +
                                                             ///< emitted rows.
inline constexpr std::uint32_t kSectionDrives = 0x44525653;  ///< Per-drive
                                                             ///< state.

struct CheckpointSection {
  std::uint32_t tag = 0;
  std::vector<std::uint8_t> payload;
};

/// Serializes sections into the container format above.
std::vector<std::uint8_t> pack_checkpoint(
    std::uint32_t config_digest,
    const std::vector<CheckpointSection>& sections);

/// Validates and splits a container. Returns false with a diagnostic in
/// `*error` on truncation, trailing bytes, bad magic, unsupported
/// version, or any per-section CRC mismatch; `*config_digest` and
/// `*sections` are only written on success. The config digest is
/// returned (not checked) so callers decide what configuration the
/// checkpoint must match.
bool unpack_checkpoint(const std::vector<std::uint8_t>& bytes,
                       std::uint32_t* config_digest,
                       std::vector<CheckpointSection>* sections,
                       std::string* error);

/// Finds a section by tag; nullptr when absent.
const CheckpointSection* find_section(
    const std::vector<CheckpointSection>& sections, std::uint32_t tag);

/// Atomically writes `bytes` to `path`: temp file in the same directory,
/// flush, rename. On failure the previous file (if any) is untouched.
bool write_checkpoint_file(const std::string& path,
                           const std::vector<std::uint8_t>& bytes,
                           std::string* error);

/// Reads a whole checkpoint file.
bool read_checkpoint_file(const std::string& path,
                          std::vector<std::uint8_t>* bytes,
                          std::string* error);

}  // namespace rdsim::fleet
