#include "fleet/fleet.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>
#include <sstream>
#include <utility>

#include "common/rng.h"
#include "common/serialize.h"
#include "ecc/crc32.h"
#include "fleet/checkpoint.h"
#include "host/command.h"
#include "host/factory.h"
#include "nand/chip.h"
#include "nand/geometry.h"

namespace rdsim::fleet {

namespace {

using serialize::append_bytes;
using serialize::append_pod;
using serialize::append_string;
using serialize::read_bytes;
using serialize::read_pod;
using serialize::read_string;

// Counter-based stream families: stream id = (kind << 32) | slot index,
// counter = generation (or epoch for teardown probes). Every random
// quantity a slot consumes is a pure function of (fleet seed, slot,
// generation/epoch), so nothing depends on fleet size, thread count, or
// execution order.
constexpr std::uint64_t kFaultKind = 1;     ///< Per-generation fault rate.
constexpr std::uint64_t kDriveKind = 2;     ///< Per-generation drive seed.
constexpr std::uint64_t kTraceKind = 3;     ///< Per-generation trace seed.
constexpr std::uint64_t kTeardownKind = 4;  ///< Per-epoch MC probe seed.

std::uint64_t stream_id(std::uint64_t kind, std::uint64_t index) {
  return (kind << 32) | index;
}

void accumulate(ftl::FtlStats* acc, const ftl::FtlStats& s) {
  acc->host_reads += s.host_reads;
  acc->host_writes += s.host_writes;
  acc->host_trims += s.host_trims;
  acc->gc_writes += s.gc_writes;
  acc->refresh_writes += s.refresh_writes;
  acc->reclaim_writes += s.reclaim_writes;
  acc->gc_erases += s.gc_erases;
  acc->refreshes += s.refreshes;
  acc->reclaims += s.reclaims;
  acc->program_failures += s.program_failures;
  acc->erase_failures += s.erase_failures;
  acc->defect_writes += s.defect_writes;
}

void accumulate(ssd::SsdStats* acc, const ssd::SsdStats& s) {
  acc->days += s.days;
  acc->uncorrectable_page_events += s.uncorrectable_page_events;
  acc->host_uncorrectable_pages += s.host_uncorrectable_pages;
  acc->host_failed_writes += s.host_failed_writes;
  acc->host_readonly_writes += s.host_readonly_writes;
  acc->tuning_fallbacks += s.tuning_fallbacks;
  acc->sum_vpass_reduction_pct += s.sum_vpass_reduction_pct;
  acc->tuned_block_days += s.tuned_block_days;
  acc->host_io_seconds += s.host_io_seconds;
  acc->background_seconds += s.background_seconds;
  acc->tuning_probe_seconds += s.tuning_probe_seconds;
}

std::string fmt_double(double v) { return sim::strf("%.17g", v); }

double percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

}  // namespace

struct FleetRunner::DriveSlot {
  std::uint32_t generation = 0;
  bool dead = false;  ///< Failed with fleet.replace_failed = false.
  double rebuild_days_left = 0.0;
  std::uint64_t rebuild_next_lpn = 0;
  double teardown_rber = 0.0;  ///< Last epoch's MC ground-truth probe.
  std::vector<double> failure_days;  ///< Slot-day of each read-only freeze.
  // Lifetime counters of generations already replaced (the live ssd's
  // stats cover only the current generation).
  ftl::FtlStats acc_ftl{};
  ssd::SsdStats acc_ssd{};
  std::unique_ptr<ssd::Ssd> ssd;
  std::unique_ptr<workload::TraceGenerator> gen;
};

FleetRunner::FleetRunner(const cfg::ScenarioSpec& spec, std::uint64_t seed,
                         ThreadPool& pool)
    : FleetRunner(spec, seed, pool, /*defer_init=*/false) {}

FleetRunner::~FleetRunner() = default;

FleetRunner::FleetRunner(const cfg::ScenarioSpec& spec, std::uint64_t seed,
                         ThreadPool& pool, bool defer_init)
    : spec_(spec),
      seed_(seed),
      pool_(&pool),
      params_(host::flash_params_from_spec(spec.drive)) {
  assert(spec_.fleet.enabled());
  assert(spec_.drive.backend == cfg::Backend::kAnalytic);
  total_days_ = std::max<std::uint32_t>(
      1, static_cast<std::uint32_t>(std::lround(spec_.fleet.years * 365.0)));
  const std::uint32_t interval = spec_.fleet.report_interval_days;
  total_epochs_ = (total_days_ + interval - 1) / interval;
  slots_.resize(spec_.fleet.drives);
  if (!defer_init)
    for (std::uint32_t i = 0; i < slots_.size(); ++i)
      init_slot(&slots_[i], i, 0);
}

double FleetRunner::draw_fail_prob(std::uint32_t index,
                                   std::uint32_t generation) const {
  const cfg::FleetSpec& f = spec_.fleet;
  if (f.pe_fail_prob_median <= 0.0) return 0.0;
  double p = f.pe_fail_prob_median;
  if (f.fault_rate_sigma > 0.0) {
    Rng rng = Rng::at(seed_, stream_id(kFaultKind, index), generation);
    p *= std::exp(f.fault_rate_sigma * rng.normal());
  }
  return std::min(p, 1.0);
}

void FleetRunner::init_slot(DriveSlot* slot, std::uint32_t index,
                            std::uint32_t generation) const {
  ssd::SsdConfig config = host::ssd_config_from_spec(spec_.drive);
  const double p = draw_fail_prob(index, generation);
  config.ftl.program_fail_prob = p;
  config.ftl.erase_fail_prob = p;
  const std::uint64_t drive_seed =
      Rng::at(seed_, stream_id(kDriveKind, index), generation).next();
  const std::uint64_t trace_seed =
      Rng::at(seed_, stream_id(kTraceKind, index), generation).next();
  slot->generation = generation;
  slot->ssd = std::make_unique<ssd::Ssd>(config, params_, drive_seed);
  slot->gen = std::make_unique<workload::TraceGenerator>(
      spec_.workload.profile, config.ftl.logical_pages(), trace_seed, 1);
}

void FleetRunner::step_drive(DriveSlot* slot, std::uint32_t index,
                             std::uint32_t days, double epoch_start_day) {
  const std::uint64_t logical =
      slot->ssd->config().ftl.logical_pages();
  for (std::uint32_t d = 0; d < days; ++d) {
    if (slot->dead) return;
    if (slot->rebuild_days_left > 0.0) {
      // Rebuild traffic: the replacement drive re-ingests the logical
      // space sequentially, spread over fleet.rebuild_days.
      const double total = std::max(spec_.fleet.rebuild_days, 1e-9);
      std::uint64_t remaining = static_cast<std::uint64_t>(
          std::ceil(static_cast<double>(logical) / total));
      while (remaining > 0 && slot->rebuild_next_lpn < logical) {
        const std::uint32_t chunk = static_cast<std::uint32_t>(
            std::min<std::uint64_t>(std::min<std::uint64_t>(remaining, 256),
                                    logical - slot->rebuild_next_lpn));
        host::Command cmd;
        cmd.kind = host::CommandKind::kWrite;
        cmd.lpn = slot->rebuild_next_lpn;
        cmd.pages = chunk;
        slot->ssd->service(cmd);
        slot->rebuild_next_lpn += chunk;
        remaining -= chunk;
      }
      slot->rebuild_days_left -= 1.0;
    } else {
      for (const host::Command& cmd : slot->gen->day_commands())
        slot->ssd->service(cmd);
    }
    slot->ssd->end_of_day();
    if (slot->ssd->ftl().read_only()) {
      slot->failure_days.push_back(epoch_start_day +
                                   static_cast<double>(d) + 1.0);
      if (spec_.fleet.replace_failed) {
        // Retire this generation's counters into the slot accumulators,
        // then swap in a fresh drive and start its rebuild window.
        accumulate(&slot->acc_ftl, slot->ssd->ftl().stats());
        accumulate(&slot->acc_ssd, slot->ssd->stats());
        init_slot(slot, index, slot->generation + 1);
        slot->rebuild_days_left = spec_.fleet.rebuild_days;
        slot->rebuild_next_lpn = 0;
      } else {
        // No replacement: the slot keeps its frozen read-only drive
        // (stats stay on the live ssd) and generates no more traffic.
        slot->dead = true;
      }
    }
  }
}

double FleetRunner::teardown_probe(const DriveSlot& slot,
                                   std::uint32_t index) const {
  // Ground-truth RBER at the drive's current operating point, from a
  // sampled Monte Carlo block: wear to the drive's max P/E, age one
  // refresh interval, absorb its worst per-interval read pressure. Pure
  // function of (seed, slot, epoch, operating point) — no chip state
  // survives between probes, so checkpoints carry nothing for them.
  nand::Geometry g;
  g.wordlines_per_block = 16;
  g.bitlines = 1024;
  g.blocks = 1;
  const std::uint64_t probe_seed =
      Rng::at(seed_, stream_id(kTeardownKind, index), epoch_).next();
  nand::Chip chip(g, params_, probe_seed);
  auto& block = chip.block(0);
  block.add_wear(slot.ssd->ftl().max_pe());
  block.program_random();
  block.advance_time(
      std::min(spec_.drive.refresh_interval_days,
               static_cast<double>(spec_.fleet.report_interval_days)));
  const double reads = static_cast<double>(
      std::min<std::uint64_t>(slot.ssd->max_reads_per_interval(), 200000));
  if (reads > 0.0)
    for (std::uint32_t w = 0; w < g.wordlines_per_block; ++w)
      block.apply_reads(w, reads / g.wordlines_per_block);
  std::uint64_t errors = 0;
  for (std::uint32_t w = 0; w < g.wordlines_per_block; ++w) {
    errors += block.count_errors({w, nand::PageKind::kLsb});
    errors += block.count_errors({w, nand::PageKind::kMsb});
  }
  return static_cast<double>(errors) /
         static_cast<double>(g.bits_per_block());
}

void FleetRunner::run_epoch() {
  assert(!done());
  const std::uint32_t interval = spec_.fleet.report_interval_days;
  const std::uint32_t start_day = static_cast<std::uint32_t>(epoch_) * interval;
  const std::uint32_t days = std::min(interval, total_days_ - start_day);
  const std::uint32_t teardown_every = spec_.fleet.teardown_every;

  pool_->for_each(slots_.size(), [&](std::size_t i) {
    DriveSlot& slot = slots_[i];
    step_drive(&slot, static_cast<std::uint32_t>(i), days,
               static_cast<double>(start_day));
    if (teardown_every != 0 && i % teardown_every == 0 && !slot.dead)
      slot.teardown_rber =
          teardown_probe(slot, static_cast<std::uint32_t>(i));
  });
  ++epoch_;

  // Aggregate on the main thread in slot order (determinism contract).
  const std::uint32_t age_days = start_day + days;
  std::uint32_t healthy = 0, degraded = 0, rebuilding = 0, read_only = 0;
  std::uint64_t failures = 0;
  std::uint64_t host_reads = 0, host_writes = 0, refresh_writes = 0;
  std::uint64_t total_writes = 0, unc_pages = 0;
  double waf_sum = 0.0, td_sum = 0.0;
  std::uint32_t td_n = 0;
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    const DriveSlot& slot = slots_[i];
    ftl::FtlStats ft = slot.acc_ftl;
    accumulate(&ft, slot.ssd->ftl().stats());
    ssd::SsdStats ss = slot.acc_ssd;
    accumulate(&ss, slot.ssd->stats());
    failures += slot.failure_days.size();
    if (slot.dead || slot.ssd->ftl().read_only()) {
      ++read_only;
    } else if (slot.rebuild_days_left > 0.0) {
      ++rebuilding;
    } else if (slot.ssd->ftl().retired_blocks() > 0) {
      ++degraded;
    } else {
      ++healthy;
    }
    host_reads += ft.host_reads;
    host_writes += ft.host_writes;
    refresh_writes += ft.refresh_writes;
    total_writes += ft.host_writes + ft.gc_writes + ft.refresh_writes +
                    ft.reclaim_writes + ft.defect_writes;
    unc_pages += ss.host_uncorrectable_pages;
    waf_sum += ft.waf();
    if (teardown_every != 0 && i % teardown_every == 0 && !slot.dead) {
      td_sum += slot.teardown_rber;
      ++td_n;
    }
  }
  const double slot_years = static_cast<double>(age_days) *
                            static_cast<double>(slots_.size()) / 365.0;
  const double afr =
      slot_years > 0.0 ? static_cast<double>(failures) / slot_years : 0.0;
  const ssd::SsdConfig base = host::ssd_config_from_spec(spec_.drive);
  const double page_bits = static_cast<double>(base.ecc.codeword_data_bits) *
                           static_cast<double>(base.ecc.codewords_per_page);
  const double uber =
      host_reads > 0
          ? static_cast<double>(unc_pages) /
                (static_cast<double>(host_reads) * page_bits)
          : 0.0;
  const double refresh_share =
      total_writes > 0
          ? static_cast<double>(refresh_writes) /
                static_cast<double>(total_writes)
          : 0.0;
  rows_.push_back(sim::strf(
      "%u,%u,%u,%u,%u,%llu,%.4f,%.3e,%.4f,%.3f,%.3e", age_days, healthy,
      degraded, rebuilding, read_only,
      static_cast<unsigned long long>(failures), afr, uber, refresh_share,
      waf_sum / static_cast<double>(slots_.size()),
      td_n > 0 ? td_sum / static_cast<double>(td_n) : 0.0));
}

sim::Table FleetRunner::table() const {
  sim::Table t;
  t.comment(sim::strf(
      "fig_fleet: %u analytic drives over %u days "
      "(report interval %u days, pe_fail_prob_median=%g, sigma=%g, "
      "teardown_every=%u, replace_failed=%d, rebuild_days=%g)",
      spec_.fleet.drives, total_days_, spec_.fleet.report_interval_days,
      spec_.fleet.pe_fail_prob_median, spec_.fleet.fault_rate_sigma,
      spec_.fleet.teardown_every, spec_.fleet.replace_failed ? 1 : 0,
      spec_.fleet.rebuild_days));
  t.comment(
      "Section A: fleet trajectory per reporting epoch (AFR in "
      "failures per slot-year; UBER over cumulative host read bits; "
      "refresh_share of all flash writes; teardown RBER from sampled "
      "MC ground-truth probes)");
  t.row(
      "age_days,healthy,degraded,rebuilding,read_only,failures_cum,afr,"
      "uber,refresh_share,waf_mean,teardown_rber_mean");
  for (const std::string& r : rows_) t.row(r);

  t.new_section();
  std::vector<double> fails;
  std::uint32_t never = 0;
  for (const DriveSlot& slot : slots_) {
    if (slot.failure_days.empty()) ++never;
    for (const double day : slot.failure_days) fails.push_back(day);
  }
  std::sort(fails.begin(), fails.end());
  t.comment(
      "Section B: time-to-read-only distribution over all failures "
      "(slot-day of each read-only freeze; never_failed counts slots "
      "with zero failures so far)");
  t.row("failures,first_min,p50,p90,max,never_failed");
  t.row(sim::strf("%llu,%.1f,%.1f,%.1f,%.1f,%u",
                  static_cast<unsigned long long>(fails.size()),
                  fails.empty() ? 0.0 : fails.front(),
                  percentile(fails, 0.5), percentile(fails, 0.9),
                  fails.empty() ? 0.0 : fails.back(), never));
  return t;
}

std::string FleetRunner::canonical_config(const cfg::ScenarioSpec& spec) {
  std::ostringstream o;
  o << "[drive]\n";
  o << "backend = " << cfg::backend_name(spec.drive.backend) << "\n";
  o << "flash_model = "
    << (spec.drive.flash_model == cfg::FlashModel::k2ynm ? "2ynm" : "3d")
    << "\n";
  o << "shards = " << spec.drive.shards << "\n";
  o << "queue_count = " << spec.drive.queue_count << "\n";
  o << "blocks = " << spec.drive.blocks << "\n";
  o << "pages_per_block = " << spec.drive.pages_per_block << "\n";
  o << "overprovision = " << fmt_double(spec.drive.overprovision) << "\n";
  o << "gc_free_target = " << spec.drive.gc_free_target << "\n";
  o << "refresh_interval_days = "
    << fmt_double(spec.drive.refresh_interval_days) << "\n";
  o << "read_reclaim_threshold = " << spec.drive.read_reclaim_threshold
    << "\n";
  o << "vpass_tuning = " << (spec.drive.vpass_tuning ? "true" : "false")
    << "\n";
  o << "spare_blocks = " << spec.drive.spare_blocks << "\n";
  o << "wordlines_per_block = " << spec.drive.wordlines_per_block << "\n";
  o << "bitlines = " << spec.drive.bitlines << "\n";
  o << "pre_wear_pe = " << spec.drive.pre_wear_pe << "\n";
  o << "\n[faults]\n";
  o << "program_fail_prob = " << fmt_double(spec.drive.faults.program_fail_prob)
    << "\n";
  o << "erase_fail_prob = " << fmt_double(spec.drive.faults.erase_fail_prob)
    << "\n";
  const workload::WorkloadProfile& p = spec.workload.profile;
  o << "\n[workload]\n";
  o << "profile = " << p.name << "\n";
  o << "daily_page_ios = " << fmt_double(p.daily_page_ios) << "\n";
  o << "read_fraction = " << fmt_double(p.read_fraction) << "\n";
  o << "footprint_fraction = " << fmt_double(p.footprint_fraction) << "\n";
  o << "mean_request_pages = " << fmt_double(p.mean_request_pages) << "\n";
  o << "trim_fraction = " << fmt_double(p.trim_fraction) << "\n";
  o << "flush_period_s = " << fmt_double(p.flush_period_s) << "\n";
  const cfg::FleetSpec& f = spec.fleet;
  o << "\n[fleet]\n";
  o << "drives = " << f.drives << "\n";
  o << "years = " << fmt_double(f.years) << "\n";
  o << "report_interval_days = " << f.report_interval_days << "\n";
  o << "checkpoint_every = " << f.checkpoint_every << "\n";
  o << "teardown_every = " << f.teardown_every << "\n";
  o << "pe_fail_prob_median = " << fmt_double(f.pe_fail_prob_median) << "\n";
  o << "fault_rate_sigma = " << fmt_double(f.fault_rate_sigma) << "\n";
  o << "replace_failed = " << (f.replace_failed ? "true" : "false") << "\n";
  o << "rebuild_days = " << fmt_double(f.rebuild_days) << "\n";
  return o.str();
}

std::vector<std::uint8_t> FleetRunner::checkpoint() const {
  std::vector<CheckpointSection> sections;

  const std::string config_text = canonical_config(spec_);

  CheckpointSection conf;
  conf.tag = kSectionConfig;
  append_string(&conf.payload, config_text);
  sections.push_back(std::move(conf));

  CheckpointSection meta;
  meta.tag = kSectionMeta;
  append_pod(&meta.payload, seed_);
  append_pod(&meta.payload, static_cast<std::uint64_t>(epoch_));
  append_pod(&meta.payload, total_days_);
  append_pod(&meta.payload, static_cast<std::uint32_t>(slots_.size()));
  append_pod(&meta.payload, static_cast<std::uint64_t>(rows_.size()));
  for (const std::string& r : rows_) append_string(&meta.payload, r);
  sections.push_back(std::move(meta));

  CheckpointSection drives;
  drives.tag = kSectionDrives;
  for (const DriveSlot& slot : slots_) {
    append_pod(&drives.payload, slot.generation);
    append_pod(&drives.payload,
               static_cast<std::uint8_t>(slot.dead ? 1 : 0));
    append_pod(&drives.payload, slot.rebuild_days_left);
    append_pod(&drives.payload, slot.rebuild_next_lpn);
    append_pod(&drives.payload, slot.teardown_rber);
    append_pod(&drives.payload,
               static_cast<std::uint64_t>(slot.failure_days.size()));
    for (const double day : slot.failure_days)
      append_pod(&drives.payload, day);
    append_pod(&drives.payload, slot.acc_ftl);
    append_pod(&drives.payload, slot.acc_ssd);
    append_bytes(&drives.payload, slot.ssd->snapshot());
    append_pod(&drives.payload, slot.gen->save_state());
  }
  sections.push_back(std::move(drives));

  return pack_checkpoint(ecc::crc32({
                             reinterpret_cast<const std::uint8_t*>(
                                 config_text.data()),
                             config_text.size(),
                         }),
                         sections);
}

std::unique_ptr<FleetRunner> FleetRunner::from_checkpoint(
    const std::vector<std::uint8_t>& bytes, const cfg::ScenarioSpec& spec,
    std::uint64_t seed, ThreadPool& pool, std::string* error) {
  const auto fail = [error](std::string message) {
    if (error != nullptr) *error = std::move(message);
    return nullptr;
  };
  std::uint32_t digest = 0;
  std::vector<CheckpointSection> sections;
  std::string unpack_error;
  if (!unpack_checkpoint(bytes, &digest, &sections, &unpack_error))
    return fail(std::move(unpack_error));

  const std::string config_text = canonical_config(spec);
  const std::uint32_t expected = ecc::crc32(
      {reinterpret_cast<const std::uint8_t*>(config_text.data()),
       config_text.size()});
  if (digest != expected)
    return fail(
        "checkpoint config digest mismatch: it was taken under a "
        "different [drive]/[workload]/[fleet] configuration than the one "
        "resuming it");

  const CheckpointSection* meta = find_section(sections, kSectionMeta);
  const CheckpointSection* drives = find_section(sections, kSectionDrives);
  if (meta == nullptr || drives == nullptr)
    return fail("checkpoint missing META or DRVS section");

  std::size_t off = 0;
  std::uint64_t stored_seed = 0, stored_epoch = 0, row_count = 0;
  std::uint32_t stored_days = 0, stored_drives = 0;
  if (!read_pod(meta->payload, &off, &stored_seed) ||
      !read_pod(meta->payload, &off, &stored_epoch) ||
      !read_pod(meta->payload, &off, &stored_days) ||
      !read_pod(meta->payload, &off, &stored_drives) ||
      !read_pod(meta->payload, &off, &row_count))
    return fail("checkpoint META section truncated");
  if (stored_seed != seed)
    return fail("checkpoint seed mismatch: taken with --seed " +
                std::to_string(stored_seed) + ", resuming with --seed " +
                std::to_string(seed));

  auto runner = std::unique_ptr<FleetRunner>(
      new FleetRunner(spec, seed, pool, /*defer_init=*/true));
  if (stored_days != runner->total_days_ ||
      stored_drives != runner->slots_.size())
    return fail("checkpoint horizon/fleet-size mismatch against the spec");
  if (stored_epoch > runner->total_epochs_)
    return fail("checkpoint epoch cursor past the configured horizon");
  runner->epoch_ = stored_epoch;
  runner->rows_.reserve(row_count);
  for (std::uint64_t i = 0; i < row_count; ++i) {
    std::string row;
    if (!read_string(meta->payload, &off, &row))
      return fail("checkpoint META section truncated inside rows");
    runner->rows_.push_back(std::move(row));
  }
  if (off != meta->payload.size())
    return fail("checkpoint META section has trailing bytes");

  off = 0;
  for (std::uint32_t i = 0; i < runner->slots_.size(); ++i) {
    DriveSlot& slot = runner->slots_[i];
    std::uint8_t dead = 0;
    std::uint64_t fail_count = 0;
    std::uint32_t generation = 0;
    if (!read_pod(drives->payload, &off, &generation) ||
        !read_pod(drives->payload, &off, &dead) ||
        !read_pod(drives->payload, &off, &slot.rebuild_days_left) ||
        !read_pod(drives->payload, &off, &slot.rebuild_next_lpn) ||
        !read_pod(drives->payload, &off, &slot.teardown_rber) ||
        !read_pod(drives->payload, &off, &fail_count))
      return fail("checkpoint DRVS section truncated (slot " +
                  std::to_string(i) + ")");
    slot.dead = dead != 0;
    slot.failure_days.resize(fail_count);
    for (double& day : slot.failure_days)
      if (!read_pod(drives->payload, &off, &day))
        return fail("checkpoint DRVS section truncated in failure days");
    if (!read_pod(drives->payload, &off, &slot.acc_ftl) ||
        !read_pod(drives->payload, &off, &slot.acc_ssd))
      return fail("checkpoint DRVS section truncated in slot stats");
    std::vector<std::uint8_t> ssd_bytes;
    if (!read_bytes(drives->payload, &off, &ssd_bytes))
      return fail("checkpoint DRVS section truncated in ssd snapshot");
    // Reconstruct the generation exactly as init_slot would (same drawn
    // fault rate, same seeds), then overwrite its mutable state.
    runner->init_slot(&slot, i, generation);
    std::string ssd_error;
    if (!slot.ssd->restore(ssd_bytes, &ssd_error))
      return fail("checkpoint slot " + std::to_string(i) + ": " + ssd_error);
    workload::TraceGenerator::SavedState gen_state;
    if (!read_pod(drives->payload, &off, &gen_state))
      return fail("checkpoint DRVS section truncated in generator state");
    slot.gen->load_state(gen_state);
  }
  if (off != drives->payload.size())
    return fail("checkpoint DRVS section has trailing bytes");
  return runner;
}

std::unique_ptr<FleetRunner> FleetRunner::from_checkpoint_file(
    const std::string& path, ThreadPool& pool, std::string* error) {
  const auto fail = [error](std::string message) {
    if (error != nullptr) *error = std::move(message);
    return nullptr;
  };
  std::vector<std::uint8_t> bytes;
  std::string io_error;
  if (!read_checkpoint_file(path, &bytes, &io_error))
    return fail(std::move(io_error));
  std::vector<CheckpointSection> sections;
  std::string unpack_error;
  if (!unpack_checkpoint(bytes, nullptr, &sections, &unpack_error))
    return fail(std::move(unpack_error));
  const CheckpointSection* conf = find_section(sections, kSectionConfig);
  const CheckpointSection* meta = find_section(sections, kSectionMeta);
  if (conf == nullptr || meta == nullptr)
    return fail("checkpoint missing CONF or META section");

  std::size_t off = 0;
  std::string config_text;
  if (!read_string(conf->payload, &off, &config_text))
    return fail("checkpoint CONF section truncated");
  std::vector<cfg::Diagnostic> diags;
  cfg::Config config = cfg::Config::parse(config_text, &diags);
  cfg::ScenarioSpec spec = cfg::parse_scenario(config, &diags);
  if (!diags.empty()) {
    std::string message =
        "checkpoint embedded config failed to re-parse:";
    for (const cfg::Diagnostic& d : diags)
      message += "\n  " + d.key + ": " + d.message;
    return fail(std::move(message));
  }

  off = 0;
  std::uint64_t stored_seed = 0;
  if (!read_pod(meta->payload, &off, &stored_seed))
    return fail("checkpoint META section truncated");
  return from_checkpoint(bytes, spec, stored_seed, pool, error);
}

sim::Table run_fleet(FleetRunner& runner, const FleetOptions& options) {
  const std::uint32_t every = options.checkpoint_every != 0
                                  ? options.checkpoint_every
                                  : runner.spec().fleet.checkpoint_every;
  const std::string path =
      options.checkpoint_path.empty() ? "fleet.ckpt" : options.checkpoint_path;
  const auto write_ckpt = [&runner, &path]() {
    std::string error;
    if (!write_checkpoint_file(path, runner.checkpoint(), &error))
      throw std::runtime_error(error);
  };
  std::uint32_t written = 0;
  while (!runner.done()) {
    if (options.stop_flag != nullptr && *options.stop_flag != 0) {
      write_ckpt();
      throw Interrupted(path);
    }
    runner.run_epoch();
    if (every != 0 && !runner.done() && runner.epoch() % every == 0) {
      write_ckpt();
      ++written;
      if (options.stop_after_checkpoints != 0 &&
          written >= options.stop_after_checkpoints)
        throw Interrupted(path);
    }
  }
  return runner.table();
}

}  // namespace rdsim::fleet
