// rdsim/fleet/fleet.h
//
// Fleet-scale lifetime simulation: N config-driven analytic drives run
// over a multi-year horizon on the shared ThreadPool, one epoch
// (fleet.report_interval_days) at a time. Every drive is sharded by
// index — its traffic, fault rate, and (for teardown drives) Monte
// Carlo ground-truth probes derive from counter-based Rng streams of
// (fleet seed, slot, generation/epoch) only — so the emitted table is
// byte-identical at any worker count.
//
// Each slot carries a lifecycle state machine: healthy -> degraded
// (grown defects draining spare_blocks) -> read-only (failed) ->
// replaced (fresh drive generation + rebuild traffic), with per-drive
// program/erase fault rates drawn from a lognormal around the fleet
// median. The robustness core is checkpoint(): the complete run state
// (emitted rows, per-drive Ssd snapshots, workload-generator streams)
// serializes into the versioned container of fleet/checkpoint.h, and a
// runner rebuilt via from_checkpoint() continues byte-identically to an
// uninterrupted run.
#pragma once

#include <csignal>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "cfg/spec.h"
#include "common/thread_pool.h"
#include "flash/params.h"
#include "sim/table.h"
#include "ssd/ssd.h"
#include "workload/generator.h"

namespace rdsim::fleet {

/// Thrown when a run stops early by request (SIGINT/SIGTERM flag, or a
/// --stop-after-checkpoints budget): the final checkpoint named here has
/// already been written, so the caller just reports how to resume.
class Interrupted : public std::runtime_error {
 public:
  explicit Interrupted(std::string checkpoint_path)
      : std::runtime_error("fleet run interrupted; resume with --resume " +
                           checkpoint_path),
        checkpoint_path_(std::move(checkpoint_path)) {}
  const std::string& checkpoint_path() const { return checkpoint_path_; }

 private:
  std::string checkpoint_path_;
};

/// Outer-loop knobs for run_fleet (CLI-driven; the cadence default comes
/// from the spec's fleet.checkpoint_every).
struct FleetOptions {
  std::string checkpoint_path;  ///< Where checkpoints land; empty =
                                ///< "fleet.ckpt".
  std::uint32_t checkpoint_every = 0;  ///< Epoch cadence override
                                       ///< (0 = use the spec's).
  /// Polled at epoch boundaries; when set (by a signal handler), the
  /// run writes a final checkpoint and throws Interrupted.
  const volatile std::sig_atomic_t* stop_flag = nullptr;
  /// Deterministic interruption for CI: after this many periodic
  /// checkpoints, stop exactly as if the stop flag fired. 0 = never.
  std::uint32_t stop_after_checkpoints = 0;
};

class FleetRunner {
 public:
  /// `spec` must have fleet.enabled() and an analytic backend (the cfg
  /// layer validates config files; in-code specs are asserted).
  FleetRunner(const cfg::ScenarioSpec& spec, std::uint64_t seed,
              ThreadPool& pool);
  ~FleetRunner();  ///< Out-of-line: DriveSlot is private to fleet.cc.

  /// Rebuilds a runner mid-run from checkpoint bytes. The checkpoint's
  /// config digest must match `spec` (reject a checkpoint taken under a
  /// different [fleet]/[drive]/[workload] config) and its structure and
  /// per-section CRCs must validate; on any failure returns nullptr with
  /// a diagnostic in `*error`.
  static std::unique_ptr<FleetRunner> from_checkpoint(
      const std::vector<std::uint8_t>& bytes, const cfg::ScenarioSpec& spec,
      std::uint64_t seed, ThreadPool& pool, std::string* error);

  /// Self-contained file resume: the spec and seed are recovered from
  /// the checkpoint's embedded canonical config text, so --resume needs
  /// no --config. Returns nullptr with a diagnostic on any failure.
  static std::unique_ptr<FleetRunner> from_checkpoint_file(
      const std::string& path, ThreadPool& pool, std::string* error);

  const cfg::ScenarioSpec& spec() const { return spec_; }
  std::uint64_t seed() const { return seed_; }
  std::size_t epoch() const { return epoch_; }
  std::size_t total_epochs() const { return total_epochs_; }
  bool done() const { return epoch_ >= total_epochs_; }

  /// Simulates one reporting epoch for every drive (parallel over the
  /// pool) and appends this epoch's fleet rows.
  void run_epoch();

  /// Serializes the complete run state into the checkpoint container.
  std::vector<std::uint8_t> checkpoint() const;

  /// The fleet table as of the current epoch: the per-epoch trajectory
  /// (AFR vs age, fleet UBER, refresh-overhead share) plus the
  /// time-to-read-only distribution. Deterministic: an uninterrupted run
  /// and any checkpoint-resumed run produce byte-identical text.
  sim::Table table() const;

  /// The canonical INI text of everything a fleet run's results depend
  /// on (drive, workload overrides, fleet keys). Its CRC32 is the
  /// checkpoint config digest; the text itself is embedded so
  /// from_checkpoint_file can rebuild the spec without the original
  /// config file. Round-trips through cfg::parse_scenario exactly.
  static std::string canonical_config(const cfg::ScenarioSpec& spec);

 private:
  struct DriveSlot;

  FleetRunner(const cfg::ScenarioSpec& spec, std::uint64_t seed,
              ThreadPool& pool, bool defer_init);

  void init_slot(DriveSlot* slot, std::uint32_t index,
                 std::uint32_t generation) const;
  /// This generation's per-drive program/erase fault probability, drawn
  /// lognormal around the fleet median from a counter-based stream.
  double draw_fail_prob(std::uint32_t index, std::uint32_t generation) const;
  void step_drive(DriveSlot* slot, std::uint32_t index, std::uint32_t days,
                  double epoch_start_day);
  /// Monte Carlo ground-truth RBER probe at the drive's current
  /// operating point (pure function of seed/slot/epoch + the point).
  double teardown_probe(const DriveSlot& slot, std::uint32_t index) const;

  cfg::ScenarioSpec spec_;
  std::uint64_t seed_ = 0;
  ThreadPool* pool_;
  flash::FlashModelParams params_;
  std::uint32_t total_days_ = 0;
  std::size_t total_epochs_ = 0;
  std::size_t epoch_ = 0;
  std::vector<DriveSlot> slots_;
  std::vector<std::string> rows_;  ///< Emitted Section-A rows so far.
};

/// The checkpoint-driven outer loop shared by the fig_fleet experiment
/// and the tests: runs to completion, writing periodic checkpoints per
/// the options, polling the stop flag at epoch boundaries (on stop: one
/// final checkpoint, then Interrupted). Returns the finished table.
sim::Table run_fleet(FleetRunner& runner, const FleetOptions& options);

}  // namespace rdsim::fleet
