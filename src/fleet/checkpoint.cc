#include "fleet/checkpoint.h"

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "common/serialize.h"
#include "ecc/crc32.h"

namespace rdsim::fleet {

namespace {

using serialize::append_pod;
using serialize::read_pod;

bool fail(std::string* error, std::string message) {
  if (error != nullptr) *error = std::move(message);
  return false;
}

}  // namespace

std::vector<std::uint8_t> pack_checkpoint(
    std::uint32_t config_digest,
    const std::vector<CheckpointSection>& sections) {
  std::vector<std::uint8_t> out;
  append_pod(&out, kCheckpointMagic);
  append_pod(&out, kCheckpointVersion);
  append_pod(&out, config_digest);
  append_pod(&out, static_cast<std::uint32_t>(sections.size()));
  for (const CheckpointSection& s : sections) {
    append_pod(&out, s.tag);
    append_pod(&out, static_cast<std::uint64_t>(s.payload.size()));
    out.insert(out.end(), s.payload.begin(), s.payload.end());
    append_pod(&out, ecc::crc32(s.payload));
  }
  return out;
}

bool unpack_checkpoint(const std::vector<std::uint8_t>& bytes,
                       std::uint32_t* config_digest,
                       std::vector<CheckpointSection>* sections,
                       std::string* error) {
  std::size_t offset = 0;
  std::uint32_t magic = 0, version = 0, digest = 0, count = 0;
  if (!read_pod(bytes, &offset, &magic))
    return fail(error, "checkpoint truncated: missing magic");
  if (magic != kCheckpointMagic)
    return fail(error, "checkpoint bad magic (not an rdsim fleet checkpoint)");
  if (!read_pod(bytes, &offset, &version))
    return fail(error, "checkpoint truncated: missing version");
  if (version != kCheckpointVersion)
    return fail(error, "checkpoint unsupported version " +
                           std::to_string(version) + " (expected " +
                           std::to_string(kCheckpointVersion) + ")");
  if (!read_pod(bytes, &offset, &digest) || !read_pod(bytes, &offset, &count))
    return fail(error, "checkpoint truncated: missing header fields");

  std::vector<CheckpointSection> parsed;
  parsed.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    CheckpointSection s;
    std::uint64_t length = 0;
    if (!read_pod(bytes, &offset, &s.tag) ||
        !read_pod(bytes, &offset, &length))
      return fail(error, "checkpoint truncated: section " +
                             std::to_string(i) + " header");
    if (length > bytes.size() - offset)
      return fail(error, "checkpoint truncated: section " +
                             std::to_string(i) + " payload (" +
                             std::to_string(length) + " bytes declared)");
    s.payload.assign(bytes.begin() + static_cast<std::ptrdiff_t>(offset),
                     bytes.begin() +
                         static_cast<std::ptrdiff_t>(offset + length));
    offset += length;
    std::uint32_t stored_crc = 0;
    if (!read_pod(bytes, &offset, &stored_crc))
      return fail(error, "checkpoint truncated: section " +
                             std::to_string(i) + " CRC");
    if (ecc::crc32(s.payload) != stored_crc)
      return fail(error, "checkpoint section " + std::to_string(i) +
                             " CRC mismatch (bit corruption)");
    parsed.push_back(std::move(s));
  }
  if (offset != bytes.size())
    return fail(error, "checkpoint over-long: " +
                           std::to_string(bytes.size() - offset) +
                           " trailing bytes after last section");
  if (config_digest != nullptr) *config_digest = digest;
  if (sections != nullptr) *sections = std::move(parsed);
  return true;
}

const CheckpointSection* find_section(
    const std::vector<CheckpointSection>& sections, std::uint32_t tag) {
  for (const CheckpointSection& s : sections)
    if (s.tag == tag) return &s;
  return nullptr;
}

bool write_checkpoint_file(const std::string& path,
                           const std::vector<std::uint8_t>& bytes,
                           std::string* error) {
  namespace fs = std::filesystem;
  const fs::path target(path);
  std::error_code ec;
  if (target.has_parent_path()) {
    fs::create_directories(target.parent_path(), ec);  // best-effort
  }
  // Same-directory temp file so the rename is atomic (no cross-device
  // moves); pid-suffixed so concurrent runs never clobber each other's
  // staging file.
  const fs::path temp =
      target.parent_path() /
      (target.filename().string() + ".tmp." + std::to_string(::getpid()));
  {
    std::ofstream out(temp, std::ios::binary | std::ios::trunc);
    if (!out)
      return fail(error, "cannot open temp checkpoint file " + temp.string());
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out) {
      fs::remove(temp, ec);
      return fail(error, "short write to temp checkpoint " + temp.string());
    }
  }
  fs::rename(temp, target, ec);
  if (ec) {
    fs::remove(temp, ec);
    return fail(error,
                "cannot rename checkpoint into place: " + target.string());
  }
  return true;
}

bool read_checkpoint_file(const std::string& path,
                          std::vector<std::uint8_t>* bytes,
                          std::string* error) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) return fail(error, "cannot open checkpoint file " + path);
  const std::streamsize size = in.tellg();
  in.seekg(0);
  bytes->resize(static_cast<std::size_t>(size));
  if (size > 0 &&
      !in.read(reinterpret_cast<char*>(bytes->data()), size))
    return fail(error, "short read from checkpoint file " + path);
  return true;
}

}  // namespace rdsim::fleet
