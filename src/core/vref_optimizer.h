// rdsim/core/vref_optimizer.h
//
// Read-reference voltage optimization (ROR-style, after the authors' HPCA
// 2015 / DATE 2013 line of work summarized in the retrospective's
// "Voltage Optimization" related work): periodically learn, per block, the
// read reference voltages that sit at the *present* valleys between state
// distributions — which drift with retention age, wear, and read disturb —
// instead of the factory defaults.
//
// The optimizer performs a read-retry sweep, histograms the measured
// threshold voltages, and places each reference at the minimum-density
// point between the two adjacent state populations. Orthogonal to Vpass
// Tuning (which targets the *pass-through* voltage); both can run side by
// side, as the paper notes.
#pragma once

#include <array>
#include <cstdint>

#include "nand/block.h"

namespace rdsim::core {

/// A set of read reference voltages (Va, Vb, Vc).
struct ReadRefs {
  double va = 0.0;
  double vb = 0.0;
  double vc = 0.0;
};

struct VrefOptimizerOptions {
  double scan_step = 4.0;     ///< Retry resolution of the learning sweep
                              ///< (coarse: the mechanism is meant to be
                              ///< low-latency).
  double search_radius = 45;  ///< Search window around each default ref.
  double smoothing = 2;       ///< +/- bins of moving-average smoothing.
};

class VrefOptimizer {
 public:
  explicit VrefOptimizer(VrefOptimizerOptions options = {})
      : options_(options) {}

  /// Learns the optimal references for wordline `wl` from one retry sweep.
  ReadRefs learn(const nand::Block& block, std::uint32_t wl) const;

  /// Default (factory) references of the block's model.
  static ReadRefs defaults(const nand::Block& block);

  /// Raw bit errors of both pages of `wl` when sensed with `refs`
  /// (ignores pass-through blocking; evaluation helper).
  static int count_errors_with_refs(const nand::Block& block,
                                    std::uint32_t wl, const ReadRefs& refs);

 private:
  VrefOptimizerOptions options_;
};

}  // namespace rdsim::core
