#include "core/rfr.h"

#include <array>
#include <cassert>
#include <cmath>

namespace rdsim::core {

using flash::CellState;

RfrResult RetentionFailureRecovery::recover(nand::Block& block,
                                            std::uint32_t wl) const {
  assert(block.programmed());
  const auto& geom = block.geometry();
  const auto& model = block.model();
  const auto& params = model.params();
  const double pe = block.pe_cycles();

  RfrResult result;
  result.bits = static_cast<int>(2 * geom.bitlines);
  result.corrected_states.resize(geom.bitlines);

  // Step 1: measure the aged page.
  const std::vector<double> scan1 = block.read_retry_scan(
      wl, options_.retry_lo, options_.retry_hi, options_.retry_step);
  const double days_before = block.retention_days();
  for (std::uint32_t bl = 0; bl < geom.bitlines; ++bl) {
    const CellState observed = model.classify(scan1[bl]);
    const CellState truth = block.cell_state(wl, bl);
    result.errors_before += flash::bit_errors_between(observed, truth);
  }

  // Step 2: controlled extra retention, then re-measure.
  block.advance_time(options_.extra_days);
  const std::vector<double> scan2 = block.read_retry_scan(
      wl, options_.retry_lo, options_.retry_hi, options_.retry_step);
  const double days_after = block.retention_days();

  // Expected additional downward drift of a nominal (leak_rate = 1) cell
  // currently sitting at voltage v. The drift law depends on the cell's
  // *programmed* voltage; approximate v0 by the present voltage, which is
  // accurate near the boundaries where re-labeling happens.
  auto drift_at = [&](double v) {
    return model.retention_shift(v, days_after, pe) -
           model.retention_shift(v, days_before, pe);  // <= 0.
  };

  // Step 3: per-boundary windows just below each read reference.
  const double dose = block.dose_for_wordline(wl);
  struct Boundary {
    CellState lower;
    double lo;  // Intersection - margin.
    double hi;  // Read reference.
  };
  const std::array<double, 3> refs = {params.vref_a, params.vref_b,
                                      params.vref_c};
  std::array<Boundary, 3> boundaries{};
  for (int b = 0; b < 3; ++b) {
    const auto lower = static_cast<CellState>(b);
    boundaries[b].lower = lower;
    boundaries[b].hi = refs[b];
    boundaries[b].lo =
        model.pdf_intersection(lower, pe, days_after, dose) -
        options_.lower_margin;
    // Retention moves distributions down; the ambiguous region cannot
    // extend above the reference itself.
    boundaries[b].lo = std::min(boundaries[b].lo, boundaries[b].hi - 1.0);
  }

  // Step 4: fast-leaking cells below a boundary belong to the higher
  // state.
  for (std::uint32_t bl = 0; bl < geom.bitlines; ++bl) {
    const double v = scan2[bl];
    CellState observed = model.classify(v);
    const Boundary* hit = nullptr;
    for (const auto& b : boundaries) {
      if (v >= b.lo && v < b.hi) {
        hit = &b;
        break;
      }
    }
    if (hit != nullptr) {
      ++result.cells_in_window;
      const double drift = scan2[bl] - scan1[bl];  // <= 0 for leakers.
      const double threshold = options_.fast_factor * drift_at(v);
      const auto higher =
          static_cast<CellState>(static_cast<int>(hit->lower) + 1);
      if (drift < threshold && observed != higher) {
        ++result.cells_relabeled;
        observed = higher;
      }
    }
    result.corrected_states[bl] = observed;
    const CellState truth = block.cell_state(wl, bl);
    result.errors_after += flash::bit_errors_between(observed, truth);
  }
  return result;
}

}  // namespace rdsim::core
