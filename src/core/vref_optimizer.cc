#include "core/vref_optimizer.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <vector>

#include "common/histogram.h"
#include "flash/types.h"

namespace rdsim::core {

using flash::CellState;

ReadRefs VrefOptimizer::defaults(const nand::Block& block) {
  const auto& p = block.model().params();
  return {p.vref_a, p.vref_b, p.vref_c};
}

ReadRefs VrefOptimizer::learn(const nand::Block& block,
                              std::uint32_t wl) const {
  const auto& p = block.model().params();
  const double lo = 0.0;
  const double hi = p.vpass_nominal + 8.0;
  const auto scan = block.read_retry_scan(wl, lo, hi, options_.scan_step);

  const auto bins = static_cast<std::size_t>((hi - lo) / options_.scan_step);
  Histogram hist(lo, hi, bins);
  for (const double v : scan) hist.add(v);

  // Smoothed density to suppress shot noise in sparse valleys.
  const int radius = static_cast<int>(options_.smoothing);
  std::vector<double> density(bins, 0.0);
  for (std::size_t i = 0; i < bins; ++i) {
    double sum = 0.0;
    int n = 0;
    for (int d = -radius; d <= radius; ++d) {
      const auto j = static_cast<std::int64_t>(i) + d;
      if (j < 0 || j >= static_cast<std::int64_t>(bins)) continue;
      sum += static_cast<double>(hist.count(static_cast<std::size_t>(j)));
      ++n;
    }
    density[i] = sum / n;
  }

  auto valley_near = [&](double center) {
    const double from = center - options_.search_radius;
    const double to = center + options_.search_radius;
    std::size_t best = 0;
    double best_density = 1e300;
    for (std::size_t i = 0; i < bins; ++i) {
      const double x = hist.bin_center(i);
      if (x < from || x > to) continue;
      if (density[i] < best_density) {
        best_density = density[i];
        best = i;
      }
    }
    return hist.bin_center(best);
  };

  ReadRefs refs;
  refs.va = valley_near(p.vref_a);
  refs.vb = valley_near(p.vref_b);
  refs.vc = valley_near(p.vref_c);
  return refs;
}

int VrefOptimizer::count_errors_with_refs(const nand::Block& block,
                                          std::uint32_t wl,
                                          const ReadRefs& refs) {
  assert(refs.va < refs.vb && refs.vb < refs.vc);
  int errors = 0;
  // One batched Vth pass instead of per-cell present_vth calls (which
  // would re-derive the page's dose/age invariants per bitline).
  const std::vector<double> vth = block.present_vth_page(wl);
  for (std::uint32_t bl = 0; bl < block.geometry().bitlines; ++bl) {
    const double v = vth[bl];
    CellState observed;
    if (v < refs.va)
      observed = CellState::kEr;
    else if (v < refs.vb)
      observed = CellState::kP1;
    else if (v < refs.vc)
      observed = CellState::kP2;
    else
      observed = CellState::kP3;
    errors += flash::bit_errors_between(observed, block.cell_state(wl, bl));
  }
  return errors;
}

}  // namespace rdsim::core
