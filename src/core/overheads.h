// rdsim/core/overheads.h
//
// Closed-form performance/storage overhead accounting for Vpass Tuning on
// a realistic SSD, reproducing the paper's §4 numbers: ~24.34 s/day of
// probe time and 128 KB of per-block metadata on a 512 GB drive.
#pragma once

#include <cstdint>

namespace rdsim::core {

struct SsdShape {
  std::uint64_t capacity_bytes = 512ULL << 30;  ///< 512 GB drive.
  std::uint64_t block_bytes = 4ULL << 20;       ///< 4 MB flash block.
  double page_read_seconds = 75e-6;             ///< tR of a page read.
  double metadata_bytes_per_block = 1.0;        ///< Stored Vpass level.
  /// Average probe reads per block per day: 1 MEE read plus the expected
  /// number of step-2/3 verification reads (the paper's optimized schedule
  /// amortizes the full search over the refresh interval).
  double probe_reads_per_block = 2.476;
};

struct OverheadReport {
  std::uint64_t blocks = 0;
  double daily_seconds = 0.0;
  double metadata_bytes = 0.0;
};

/// Computes the daily time and storage overhead of Vpass Tuning for the
/// given drive shape.
OverheadReport vpass_tuning_overheads(const SsdShape& shape = SsdShape{});

}  // namespace rdsim::core
