// rdsim/core/vpass_tuning.h
//
// Vpass Tuning — the paper's read disturb *mitigation* mechanism (§3).
//
// For each block, once a day, the controller:
//   1. estimates the block's maximum error count (MEE) with a single read
//      of the predicted worst-case page, and derives the unused ECC margin
//      M = (1 - reserved) * C - MEE;
//   2. finds the lowest pass-through voltage whose extra read errors
//      ("number of 0s" = bitlines incorrectly switched off) stay within M,
//      via the paper's three-step aggressive-lower/roll-back search;
//   3. on non-refresh days only verifies/raises Vpass (Action 1); on
//      refresh days re-learns it from scratch (Action 2);
//   4. falls back to the nominal Vpass whenever the margin is exhausted.
//
// The controller talks to blocks through the BlockProbe interface so that
// the same logic runs against the Monte Carlo chip (integration tests,
// examples) and against the analytic RBER model (whole-SSD lifetime
// simulation, Fig. 8).
#pragma once

#include <cstdint>

#include "ecc/ecc_model.h"
#include "flash/rber_model.h"
#include "nand/block.h"

namespace rdsim::core {

/// Controller's view of one block. Implementations must answer the two
/// measurements the mechanism performs on real hardware.
class BlockProbe {
 public:
  virtual ~BlockProbe() = default;

  /// One read of the predicted worst-case page; returns its raw bit error
  /// count as reported by ECC (the MEE sample).
  virtual int measure_worst_page_errors() = 0;

  /// Number of bitlines incorrectly switched off when the block is read
  /// with pass-through voltage `vpass` (Step 2's N).
  virtual int count_read_zeros(double vpass) = 0;

  /// ECC codewords per page of this block (defines the page-level margin
  /// the controller may spend).
  virtual int codewords_per_page() const = 0;
};

/// Probe over a Monte Carlo nand::Block. The predicted worst-case page is
/// discovered post-"manufacturing" by scanning all pages once, as §3
/// prescribes.
class McBlockProbe : public BlockProbe {
 public:
  /// Scans the (programmed) block once to find the worst page.
  /// `codeword_data_bits` defines how many codewords one page spans.
  explicit McBlockProbe(nand::Block& block, int codeword_data_bits = 8192);

  int measure_worst_page_errors() override;
  int count_read_zeros(double vpass) override;
  int codewords_per_page() const override;

  nand::PageAddress worst_page() const { return worst_page_; }
  /// Reads consumed by probe operations so far (overhead accounting).
  std::uint64_t reads_used() const { return reads_used_; }

 private:
  nand::Block* block_;
  int codeword_data_bits_;
  nand::PageAddress worst_page_{};
  std::uint64_t reads_used_ = 0;
};

/// Probe over the analytic model: a block summarized by a BlockCondition.
/// `worst_page_factor` models inter-page variation (the worst page sees a
/// constant multiple of the block's mean RBER).
class AnalyticBlockProbe : public BlockProbe {
 public:
  AnalyticBlockProbe(const flash::RberModel& model,
                     const ecc::EccModel& ecc,
                     flash::BlockCondition condition,
                     double worst_page_factor = 1.3);

  int measure_worst_page_errors() override;
  int count_read_zeros(double vpass) override;
  int codewords_per_page() const override { return codewords_per_page_; }

  void set_condition(const flash::BlockCondition& c) { condition_ = c; }
  const flash::BlockCondition& condition() const { return condition_; }

 private:
  const flash::RberModel* model_;
  int page_bits_;
  int codewords_per_page_;
  flash::BlockCondition condition_;
  double worst_page_factor_;
};

/// Tuning policy knobs.
struct VpassTuningOptions {
  double delta = 2.0;          ///< Smallest Vpass step (normalized units).
  double min_vpass_frac = 0.90;  ///< Never tune below this fraction of
                                 ///< nominal (physical device limit).
};

/// Outcome of one daily tuning pass on one block.
struct TuningDecision {
  double vpass = 0.0;      ///< Chosen pass-through voltage.
  int mee = 0;             ///< Measured maximum estimated error.
  int margin = 0;          ///< Page-level margin M used by the search.
  bool fallback = false;   ///< True if the margin was exhausted and the
                           ///< controller fell back to nominal Vpass.
  int probe_steps = 0;     ///< Step-2/3 probes performed (overhead).
};

class VpassTuningController {
 public:
  VpassTuningController(const ecc::EccModel& ecc, double vpass_nominal,
                        VpassTuningOptions options = {});

  /// Full Vpass identification (paper Steps 1-3), starting from nominal.
  /// Used on refresh days (Action 2).
  TuningDecision relearn(BlockProbe& probe);

  /// Non-refresh daily check (Action 1): keeps `current_vpass` unless the
  /// shrinking margin forces it upward (or to nominal on fallback).
  TuningDecision verify_or_raise(BlockProbe& probe, double current_vpass);

  /// Page-level usable correction capability ((1-reserved) * C per
  /// codeword, times the probe's codewords per page).
  int usable_page_capability(const BlockProbe& probe) const;

 private:
  /// Margin M for a measured MEE; negative means fallback territory.
  int page_margin(const BlockProbe& probe, int mee) const;

  ecc::EccModel ecc_;
  double vpass_nominal_;
  VpassTuningOptions options_;
};

}  // namespace rdsim::core
