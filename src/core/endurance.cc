#include "core/endurance.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace rdsim::core {

EnduranceEvaluator::EnduranceEvaluator(const flash::RberModel& model,
                                       const ecc::EccModel& ecc,
                                       EnduranceOptions options)
    : model_(model), ecc_(ecc), options_(options) {
  assert(options_.refresh_interval_days > 0.0);
  assert(options_.worst_page_factor >= 1.0);
}

double EnduranceEvaluator::tuned_vpass(double pe_cycles, double day,
                                       double disturb_rber_so_far) const {
  // MEE: one read of the worst page at the current age; its errors are the
  // worst-page multiple of the data-error components (pass-through errors
  // are what the search is sizing).
  const int page_bits =
      ecc_.config().codeword_data_bits * ecc_.config().codewords_per_page;
  const double mee_rber =
      options_.worst_page_factor *
      (model_.base_rber(pe_cycles) + model_.retention_rber(pe_cycles, day) +
       disturb_rber_so_far);
  const double usable_bits =
      static_cast<double>(ecc_.usable_capability() *
                          ecc_.config().codewords_per_page);
  const double margin_bits = usable_bits - mee_rber * page_bits;
  if (margin_bits <= 0.0) return model_.params().vpass_nominal;  // Fallback.
  const double margin_rber = margin_bits / page_bits;
  return model_.lowest_safe_vpass(margin_rber, day, options_.tuning_delta);
}

IntervalOutcome EnduranceEvaluator::simulate_interval(
    double pe_cycles, double reads_per_interval, bool tuning) const {
  const double days = options_.refresh_interval_days;
  const int steps = std::max(1, static_cast<int>(std::lround(days)));
  const double reads_per_day = reads_per_interval / steps;
  const double nominal = model_.params().vpass_nominal;

  double disturb_rber = 0.0;  // Accumulated read-disturb RBER.
  double vpass = nominal;
  double reduction_sum = 0.0;
  for (int d = 0; d < steps; ++d) {
    const double day = static_cast<double>(d);
    if (tuning) {
      // Refresh day: full relearn (Action 2). Other days: the analytic
      // controller re-evaluates; the margin only shrinks as retention and
      // disturb errors accumulate, so this realizes Action 1's
      // verify-or-raise behaviour.
      const double v = tuned_vpass(pe_cycles, day, disturb_rber);
      vpass = d == 0 ? v : std::max(vpass, v);
    }
    reduction_sum += (nominal - vpass) / nominal * 100.0;
    disturb_rber += model_.disturb_rber(pe_cycles, reads_per_day, vpass);
  }

  IntervalOutcome out;
  out.final_vpass = vpass;
  out.mean_vpass_reduction_pct = reduction_sum / steps;
  out.peak_rber = options_.worst_page_factor *
                      (model_.base_rber(pe_cycles) +
                       model_.retention_rber(pe_cycles, days) + disturb_rber) +
                  model_.pass_through_rber(vpass, days);
  return out;
}

double EnduranceEvaluator::endurance_pe(double reads_per_interval,
                                        bool tuning) const {
  auto survives = [&](double pe) {
    return simulate_interval(pe, reads_per_interval, tuning).peak_rber <=
           options_.death_rber;
  };
  double lo = 100.0, hi = 60000.0;
  if (!survives(lo)) return 0.0;
  if (survives(hi)) return hi;
  for (int i = 0; i < 48; ++i) {
    const double mid = 0.5 * (lo + hi);
    (survives(mid) ? lo : hi) = mid;
  }
  return lo;
}

}  // namespace rdsim::core
