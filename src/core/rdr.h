// rdsim/core/rdr.h
//
// Read Disturb Recovery (RDR) — the paper's *recovery* mechanism (§4).
//
// When a page has more raw bit errors than ECC can correct, RDR:
//   1. measures every cell's threshold voltage with read-retry;
//   2. deliberately applies a large number of additional read disturbs
//      (e.g. 100K) and re-measures, obtaining each cell's disturb-induced
//      shift dVth;
//   3. classifies cells near a state boundary as disturb-prone
//      (dVth > dVref) or disturb-resistant (dVth < dVref), where dVref is
//      the expected shift of a nominal cell sitting at the intersection of
//      the two adjacent states' probability density functions;
//   4. predicts that disturb-prone boundary cells belong to the *lower*
//      state (they were disturbed upward into the boundary region) and
//      disturb-resistant ones to the *higher* state, then rewrites the
//      sensed states accordingly before handing the page back to ECC.
//
// This exploits exactly the process variation the characterization found:
// cells differ in disturb susceptibility, and the susceptible ones are the
// ones that crossed a read reference.
#pragma once

#include <cstdint>
#include <vector>

#include "flash/vth_model.h"
#include "nand/block.h"

namespace rdsim::core {

struct RdrOptions {
  double extra_reads = 100000.0;  ///< Induced disturbs for classification.
  /// The re-labeling window for each boundary spans from the read
  /// reference up to the (disturb-aware) PDF intersection of the two
  /// adjacent states plus this margin. Cells below the read reference
  /// already read as the lower state; cells beyond the intersection margin
  /// overwhelmingly belong to the higher state.
  double upper_margin = 6.0;
  /// Decisiveness: a cell is declared disturb-prone only when its measured
  /// shift exceeds prone_factor * dVref, where dVref is the shift a
  /// nominal-susceptibility cell at the same measured voltage would see
  /// from the induced dose. This guards against re-labeling genuine
  /// higher-state cells whose susceptibility is merely average.
  double prone_factor = 2.0;
  double retry_lo = 0.0;   ///< Read-retry scan range and step; RDR uses the
  double retry_hi = 520.0;  ///< chip's fine-grained retry mode so the shift
  double retry_step = 0.5;  ///< measurement resolves sub-unit deltas.
};

/// Per-wordline recovery outcome (both MLC pages).
struct RdrResult {
  int bits = 0;                ///< Total data bits examined (2 per cell).
  int errors_before = 0;       ///< Raw bit errors before recovery.
  int errors_after = 0;        ///< Raw bit errors after RDR re-labeling.
  int cells_relabeled = 0;     ///< Cells whose state RDR overrode.
  int cells_in_window = 0;     ///< Cells that fell in a boundary window.
  /// Recovered per-cell states (size = bitlines): what the controller
  /// hands to ECC after the probabilistic correction.
  std::vector<flash::CellState> corrected_states;
  double rber_before() const {
    return bits == 0 ? 0.0 : static_cast<double>(errors_before) / bits;
  }
  double rber_after() const {
    return bits == 0 ? 0.0 : static_cast<double>(errors_after) / bits;
  }
};

class ReadDisturbRecovery {
 public:
  explicit ReadDisturbRecovery(RdrOptions options = {})
      : options_(options) {}

  const RdrOptions& options() const { return options_; }

  /// Runs RDR on wordline `wl` of `block`. Mutates the block: the induced
  /// extra reads are real disturbs (they are applied to a sibling wordline
  /// so that `wl`'s cells receive the dose). Returns before/after error
  /// accounting against the block's ground truth.
  RdrResult recover(nand::Block& block, std::uint32_t wl) const;

 private:
  RdrOptions options_;
};

}  // namespace rdsim::core
