#include "core/vpass_tuning.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace rdsim::core {

McBlockProbe::McBlockProbe(nand::Block& block, int codeword_data_bits)
    : block_(&block), codeword_data_bits_(codeword_data_bits) {
  assert(block.programmed());
  // Post-manufacturing discovery of the predicted worst-case page: program
  // pseudo-random data (already resident) and read every page once.
  int worst = -1;
  for (std::uint32_t wl = 0; wl < block.geometry().wordlines_per_block; ++wl) {
    for (auto kind : {nand::PageKind::kLsb, nand::PageKind::kMsb}) {
      const int errors = block.count_errors({wl, kind});
      ++reads_used_;
      if (errors > worst) {
        worst = errors;
        worst_page_ = {wl, kind};
      }
    }
  }
}

int McBlockProbe::measure_worst_page_errors() {
  ++reads_used_;
  // A real controller gets this count from the ECC decoder of one read;
  // the read itself also disturbs the block, which we model.
  const auto result = block_->read_page(worst_page_);
  return result.raw_bit_errors;
}

int McBlockProbe::count_read_zeros(double vpass) {
  ++reads_used_;
  return block_->count_blocked_bitlines(worst_page_.wordline, vpass);
}

int McBlockProbe::codewords_per_page() const {
  return std::max(1, static_cast<int>(block_->geometry().bitlines) /
                         codeword_data_bits_);
}

AnalyticBlockProbe::AnalyticBlockProbe(const flash::RberModel& model,
                                       const ecc::EccModel& ecc,
                                       flash::BlockCondition condition,
                                       double worst_page_factor)
    : model_(&model),
      page_bits_(ecc.config().codeword_data_bits *
                 ecc.config().codewords_per_page),
      codewords_per_page_(ecc.config().codewords_per_page),
      condition_(condition),
      worst_page_factor_(worst_page_factor) {}

int AnalyticBlockProbe::measure_worst_page_errors() {
  // Worst page RBER = worst_page_factor * mean block RBER (data errors
  // only; pass-through errors are what the search is sizing, so they are
  // reported by count_read_zeros instead).
  flash::BlockCondition c = condition_;
  const double vpass_for_data = c.vpass;
  c.vpass = model_->params().vpass_nominal;  // exclude pass-through term
  double rber = model_->total_rber(c);
  c.vpass = vpass_for_data;
  // Disturb accumulated so far *was* at the tuned vpass:
  rber -= model_->disturb_rber(c.pe_cycles, c.reads,
                               model_->params().vpass_nominal);
  rber += model_->disturb_rber(c.pe_cycles, c.reads, c.vpass);
  return static_cast<int>(std::lround(worst_page_factor_ * rber * page_bits_));
}

int AnalyticBlockProbe::count_read_zeros(double vpass) {
  const double rate =
      model_->pass_through_rber(vpass, condition_.retention_days);
  return static_cast<int>(std::lround(rate * page_bits_));
}

VpassTuningController::VpassTuningController(const ecc::EccModel& ecc,
                                             double vpass_nominal,
                                             VpassTuningOptions options)
    : ecc_(ecc), vpass_nominal_(vpass_nominal), options_(options) {
  assert(options_.delta > 0.0);
  assert(options_.min_vpass_frac > 0.0 && options_.min_vpass_frac <= 1.0);
}

int VpassTuningController::usable_page_capability(
    const BlockProbe& probe) const {
  return ecc_.usable_capability() * probe.codewords_per_page();
}

int VpassTuningController::page_margin(const BlockProbe& probe,
                                       int mee) const {
  return usable_page_capability(probe) - mee;
}

TuningDecision VpassTuningController::relearn(BlockProbe& probe) {
  TuningDecision decision;
  decision.mee = probe.measure_worst_page_errors();
  const int margin = page_margin(probe, decision.mee);
  decision.margin = std::max(0, margin);
  if (margin <= 0) {
    // Fallback: the accumulated errors already exhaust the usable
    // capability; give the block every bit of correction strength.
    decision.vpass = vpass_nominal_;
    decision.fallback = true;
    return decision;
  }

  const double floor_v = vpass_nominal_ * options_.min_vpass_frac;
  double v = vpass_nominal_;
  // Step 1+2: aggressively lower by delta while the induced zeros fit in M.
  while (v - options_.delta >= floor_v) {
    const int n = probe.count_read_zeros(v - options_.delta);
    ++decision.probe_steps;
    if (n > margin) break;
    v -= options_.delta;
  }
  // Step 3: roll back upward until the verification read passes. (When the
  // loop above stopped because of the floor or because the *next* step
  // failed, the current v already verifies; the loop handles measurement
  // noise on real hardware.)
  while (v < vpass_nominal_) {
    const int n = probe.count_read_zeros(v);
    ++decision.probe_steps;
    if (n <= margin) break;
    v = std::min(v + options_.delta, vpass_nominal_);
  }
  decision.vpass = v;
  return decision;
}

TuningDecision VpassTuningController::verify_or_raise(BlockProbe& probe,
                                                      double current_vpass) {
  TuningDecision decision;
  decision.mee = probe.measure_worst_page_errors();
  const int margin = page_margin(probe, decision.mee);
  decision.margin = std::max(0, margin);
  if (margin <= 0) {
    decision.vpass = vpass_nominal_;
    decision.fallback = true;
    return decision;
  }
  double v = current_vpass;
  // Action 1: only ever raise; retention/read-disturb growth can shrink
  // the margin but a refresh is what re-enables lowering.
  while (v < vpass_nominal_) {
    const int n = probe.count_read_zeros(v);
    ++decision.probe_steps;
    if (n <= margin) break;
    v = std::min(v + options_.delta, vpass_nominal_);
  }
  decision.vpass = v;
  return decision;
}

}  // namespace rdsim::core
