#include "core/overheads.h"

namespace rdsim::core {

OverheadReport vpass_tuning_overheads(const SsdShape& shape) {
  OverheadReport report;
  report.blocks = shape.capacity_bytes / shape.block_bytes;
  report.daily_seconds = static_cast<double>(report.blocks) *
                         shape.probe_reads_per_block * shape.page_read_seconds;
  report.metadata_bytes =
      static_cast<double>(report.blocks) * shape.metadata_bytes_per_block;
  return report;
}

}  // namespace rdsim::core
