// rdsim/core/endurance.h
//
// Flash lifetime arithmetic for the Fig. 8 evaluation: a block dies when
// the raw bit errors of its worst page, at the *peak* of a refresh
// interval (Fig. 7), exceed the ECC correction capability. Vpass Tuning
// extends endurance by shrinking the read-disturb component of that peak.
//
// The evaluator replays one refresh interval day-by-day, running the same
// daily tuning actions the controller performs (Action 2 on the refresh
// day, Action 1 afterwards), so the endurance gain emerges from the
// mechanism rather than from a closed-form shortcut.
#pragma once

#include "ecc/ecc_model.h"
#include "flash/rber_model.h"

namespace rdsim::core {

struct EnduranceOptions {
  double refresh_interval_days = 7.0;  ///< Remap-based refresh period.
  double worst_page_factor = 1.3;      ///< Worst page vs block-mean RBER.
  double tuning_delta = 2.0;           ///< Vpass step (normalized units).
  double min_vpass_frac = 0.90;        ///< Device floor for Vpass.
  double death_rber = 1.0e-3;          ///< Full ECC correction capability.
};

/// Peak-of-interval outcome for one block at a given wear level.
struct IntervalOutcome {
  double peak_rber = 0.0;     ///< Worst-page RBER at interval end.
  double final_vpass = 0.0;   ///< Pass-through voltage in use at the end.
  double mean_vpass_reduction_pct = 0.0;  ///< Avg reduction over the days.
};

class EnduranceEvaluator {
 public:
  EnduranceEvaluator(const flash::RberModel& model, const ecc::EccModel& ecc,
                     EnduranceOptions options = {});

  /// Simulates one refresh interval for a block with `pe_cycles` wear that
  /// receives `reads_per_interval` read disturbs spread uniformly over the
  /// interval. With `tuning` false, Vpass stays at nominal.
  IntervalOutcome simulate_interval(double pe_cycles,
                                    double reads_per_interval,
                                    bool tuning) const;

  /// Endurance: the largest P/E cycle count at which the block still
  /// survives an interval (peak RBER <= death threshold), found by binary
  /// search. `reads_per_interval` is the disturb pressure on the block.
  double endurance_pe(double reads_per_interval, bool tuning) const;

  const EnduranceOptions& options() const { return options_; }

 private:
  /// The daily tuning decision against the analytic model: lowest Vpass
  /// whose pass-through errors fit in the margin left by the measured MEE.
  double tuned_vpass(double pe_cycles, double day, double disturb_rber_so_far)
      const;

  flash::RberModel model_;
  ecc::EccModel ecc_;
  EnduranceOptions options_;
};

}  // namespace rdsim::core
