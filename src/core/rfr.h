// rdsim/core/rfr.h
//
// Retention Failure Recovery (RFR) — the companion mechanism to RDR that
// the paper's authors proposed for *retention* errors (HPCA 2015,
// summarized in the retrospective's related work): where RDR separates
// disturb-prone from disturb-resistant cells, RFR separates fast-leaking
// from slow-leaking cells.
//
// When a page that has aged past its refresh deadline fails ECC:
//   1. measure every cell's Vth with read-retry;
//   2. let additional controlled retention time elapse (offline, e.g. a
//      powered-off bake) and re-measure: each cell's downward drift
//      reveals its leak speed;
//   3. cells just *below* a state boundary are ambiguous: a fast-leaking
//      cell there most likely belongs to the *higher* state (it leaked
//      down across the read reference), while a slow leaker genuinely
//      belongs to the lower state;
//   4. re-label accordingly and hand the page back to ECC.
//
// This is the mirror image of RDR: disturb pushes low-Vth cells *up*
// across a boundary; retention pulls high-Vth cells *down*.
#pragma once

#include <cstdint>
#include <vector>

#include "flash/vth_model.h"
#include "nand/block.h"

namespace rdsim::core {

struct RfrOptions {
  double extra_days = 14.0;   ///< Additional retention before re-measure.
  /// Window *below* each boundary where cells are re-labeled (from the
  /// disturb-aware PDF intersection minus margin, up to the reference).
  double lower_margin = 6.0;
  /// A cell is fast-leaking when its measured downward drift exceeds
  /// fast_factor * the drift of a nominal cell at the same voltage.
  double fast_factor = 1.6;
  double retry_lo = 0.0;
  double retry_hi = 520.0;
  double retry_step = 0.5;
};

struct RfrResult {
  int bits = 0;
  int errors_before = 0;
  int errors_after = 0;
  int cells_relabeled = 0;
  int cells_in_window = 0;
  std::vector<flash::CellState> corrected_states;

  double rber_before() const {
    return bits == 0 ? 0.0 : static_cast<double>(errors_before) / bits;
  }
  double rber_after() const {
    return bits == 0 ? 0.0 : static_cast<double>(errors_after) / bits;
  }
};

class RetentionFailureRecovery {
 public:
  explicit RetentionFailureRecovery(RfrOptions options = {})
      : options_(options) {}

  const RfrOptions& options() const { return options_; }

  /// Runs RFR on wordline `wl`. Mutates the block: the extra retention
  /// time really elapses (it ages the whole block), exactly as the
  /// offline recovery procedure would.
  RfrResult recover(nand::Block& block, std::uint32_t wl) const;

 private:
  RfrOptions options_;
};

}  // namespace rdsim::core
