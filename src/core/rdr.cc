#include "core/rdr.h"

#include <array>
#include <cassert>
#include <cmath>

namespace rdsim::core {

using flash::CellState;

RdrResult ReadDisturbRecovery::recover(nand::Block& block,
                                       std::uint32_t wl) const {
  assert(block.programmed());
  const auto& geom = block.geometry();
  const auto& model = block.model();
  const double pe = block.pe_cycles();
  const double days = block.retention_days();

  RdrResult result;
  result.bits = static_cast<int>(2 * geom.bitlines);

  // Step 1: measure current threshold voltages via read-retry.
  const std::vector<double> scan1 = block.read_retry_scan(
      wl, options_.retry_lo, options_.retry_hi, options_.retry_step);
  const double dose_before = block.dose_for_wordline(wl);

  // Errors before recovery, from the pre-disturb measurement.
  for (std::uint32_t bl = 0; bl < geom.bitlines; ++bl) {
    const CellState observed = model.classify(scan1[bl]);
    const CellState truth = block.cell_state(wl, bl);
    result.errors_before += flash::bit_errors_between(observed, truth);
  }

  // Step 2: induce additional disturbs so susceptible cells reveal
  // themselves. Reads are addressed at a sibling wordline; the dose lands
  // on every *other* wordline, including `wl`.
  const std::uint32_t sibling = wl == 0 ? 1 : wl - 1;
  block.apply_reads(sibling, options_.extra_reads);
  const std::vector<double> scan2 = block.read_retry_scan(
      wl, options_.retry_lo, options_.retry_hi, options_.retry_step);
  const double extra_dose = block.dose_for_wordline(wl) - dose_before;

  // Step 3: per-boundary re-labeling windows. The lower edge is the read
  // reference (below it cells already read as the lower state); the upper
  // edge is the disturb-aware PDF intersection of the two adjacent states
  // plus a small margin — beyond it cells overwhelmingly belong to the
  // higher state.
  const double dose_now = block.dose_for_wordline(wl);
  const auto& params = model.params();
  struct Boundary {
    CellState lower;
    double lo;  // Read reference voltage.
    double hi;  // PDF intersection + margin.
  };
  const std::array<double, 3> refs = {params.vref_a, params.vref_b,
                                      params.vref_c};
  std::array<Boundary, 3> boundaries{};
  for (int b = 0; b < 3; ++b) {
    const auto lower = static_cast<CellState>(b);
    boundaries[b].lower = lower;
    boundaries[b].lo = refs[b];
    boundaries[b].hi = model.pdf_intersection(lower, pe, days, dose_now) +
                       options_.upper_margin;
  }
  // dVref at voltage v: the shift a nominal-susceptibility cell already
  // sitting at v would experience from the induced dose alone.
  auto dvref_at = [&](double v) {
    return model.apply_disturb(v, 1.0, extra_dose) - v;
  };

  result.corrected_states.resize(geom.bitlines);
  // Step 4: re-label cells in the ambiguous overlap region just above a
  // boundary. Disturb-prone cells (dVth decisively above dVref) are
  // predicted to belong to the lower distribution — they were disturbed
  // upward across the reference; disturb-resistant ones stay with the
  // higher distribution they read as.
  for (std::uint32_t bl = 0; bl < geom.bitlines; ++bl) {
    const double v = scan2[bl];
    CellState observed = model.classify(v);
    const Boundary* hit = nullptr;
    for (const auto& b : boundaries) {
      if (v >= b.lo && v <= b.hi) {
        hit = &b;
        break;
      }
    }
    if (hit != nullptr) {
      ++result.cells_in_window;
      const double dv = scan2[bl] - scan1[bl];
      if (dv > options_.prone_factor * dvref_at(v) &&
          observed != hit->lower) {
        ++result.cells_relabeled;
        observed = hit->lower;
      }
    }
    result.corrected_states[bl] = observed;
    const CellState truth = block.cell_state(wl, bl);
    result.errors_after += flash::bit_errors_between(observed, truth);
  }
  return result;
}

}  // namespace rdsim::core
