// rdsim/common/rng.h
//
// Deterministic, fast pseudo-random number generation for the simulator.
//
// All stochastic components in rdsim (cell threshold-voltage sampling, read
// disturb shifts, workload generation, DRAM module populations) draw from
// Rng so that every experiment is reproducible from a single 64-bit seed.
// The generator is xoshiro256++ (Blackman & Vigna), which is small, fast,
// and passes BigCrush; it is *not* cryptographic and must never be used for
// security purposes.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <limits>

namespace rdsim {

/// xoshiro256++ PRNG with convenience distributions.
///
/// Satisfies the C++ UniformRandomBitGenerator concept, so it can also be
/// plugged into <random> distributions when needed.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// The complete generator state as a trivially-copyable POD, so stateful
  /// subsystems (the FTL's fault stream, workload generators) can be
  /// serialized into checkpoints and resumed bit-exactly. The Marsaglia
  /// pair cache is part of the state: dropping it would shift every
  /// subsequent normal() draw. Padding is explicit and zeroed so the raw
  /// bytes of a State are fully defined (checkpoints CRC them).
  struct State {
    std::array<std::uint64_t, 4> s{};
    double cached_normal = 0.0;
    std::uint8_t has_cached_normal = 0;
    std::uint8_t pad[7] = {};
  };

  /// Captures the full generator state (resume via set_state).
  State state() const {
    State st;
    st.s = s_;
    st.cached_normal = cached_normal_;
    st.has_cached_normal = has_cached_normal_ ? 1 : 0;
    return st;
  }

  /// Restores a state captured by state(); the draw sequence continues
  /// exactly where the captured generator left off.
  void set_state(const State& st) {
    s_ = st.s;
    cached_normal_ = st.cached_normal;
    has_cached_normal_ = st.has_cached_normal != 0;
  }

  /// Seeds the state via SplitMix64 so that nearby seeds produce
  /// uncorrelated streams.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) { reseed(seed); }

  /// Re-initializes the generator from `seed`.
  void reseed(std::uint64_t seed);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<std::uint64_t>::max();
  }

  /// Next raw 64-bit output.
  std::uint64_t operator()() { return next(); }
  std::uint64_t next();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0. Uses Lemire's method to
  /// avoid modulo bias.
  std::uint64_t uniform_u64(std::uint64_t n);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Standard normal (mean 0, stddev 1) via Marsaglia polar method.
  double normal();

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Bernoulli trial with probability p (clamped to [0,1]).
  bool bernoulli(double p);

  /// Poisson-distributed count with the given mean (>= 0). Uses Knuth for
  /// small means and normal approximation for large ones.
  std::uint64_t poisson(double mean);

  /// Exponential with the given rate (> 0).
  double exponential(double rate);

  // --- Batched fills ---------------------------------------------------
  // Array-at-a-time draws for the simulator's page-sized operations
  // (programming a wordline, drawing per-bitline thresholds). Each fill
  // consumes the stream exactly like the equivalent sequence of scalar
  // calls, so interleaving scalar and batched draws is deterministic and
  // order-preserving; fill_random_bits additionally packs 64 data bits
  // into every raw draw instead of burning one draw per bit.

  /// dst[0..n) = uniform(), in stream order.
  void fill_uniform(double* dst, std::size_t n);

  /// dst[0..n) = uniform(lo, hi), in stream order.
  void fill_uniform(double* dst, std::size_t n, double lo, double hi);

  /// dst[0..n) = normal(mean, stddev), in stream order (the Marsaglia
  /// pair cache carries across the fill boundary exactly as it does for
  /// scalar calls).
  void fill_normal(double* dst, std::size_t n, double mean = 0.0,
                   double stddev = 1.0);

  /// Float variant: dst[i] = float(normal(mean, stddev)), consuming the
  /// stream exactly like the double fill. Lets callers whose storage is
  /// float (per-bitline thresholds, SoA cell fields) skip the
  /// double-buffer-then-cast round trip.
  void fill_normal(float* dst, std::size_t n, double mean = 0.0,
                   double stddev = 1.0);

  /// Fills dst[0..n) with random bits (one byte per bit, values 0/1),
  /// unpacking 64 bits per raw draw, least-significant bit first. A final
  /// partial word consumes one draw for the remaining bits.
  void fill_random_bits(std::uint8_t* dst, std::size_t n);

  /// Forks an independent child stream; the child is seeded from this
  /// stream's output so subsystems can have decoupled randomness.
  Rng fork();

  /// Derives the `stream_id`-th decorrelated stream of `seed` without
  /// constructing intermediate generators. Parallel experiment shards use
  /// this so that shard i's randomness depends only on (seed, i) — never on
  /// how many threads ran or in what order — keeping merged results
  /// byte-identical across thread counts.
  static Rng stream(std::uint64_t seed, std::uint64_t stream_id);

  /// Counter-based derivation: the `counter`-th generator of stream
  /// `stream_id` under `seed`, as a pure function of the triple — no state
  /// is consumed from any live generator, so the result never depends on
  /// how many draws (or which other derivations) happened before. The
  /// Monte Carlo block uses this to make each wordline's ground truth a
  /// pure function of (block seed, program epoch, wordline): cells can be
  /// materialized lazily in any touch order and still come out
  /// bit-identical. SplitMix64-style: each component is injected through a
  /// full avalanche round, like stream() but with one more input.
  static Rng at(std::uint64_t seed, std::uint64_t stream_id,
                std::uint64_t counter);

 private:
  std::array<std::uint64_t, 4> s_{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace rdsim
