// rdsim/common/log.h
//
// Tiny leveled logger. The simulator is single-threaded per experiment, so
// no synchronization is required; output goes to stderr to keep stdout free
// for CSV series.
#pragma once

#include <sstream>
#include <string>

namespace rdsim {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global log threshold; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emits one formatted line ("[level] message") if `level` passes the
/// threshold.
void log_message(LogLevel level, const std::string& message);

namespace detail {
template <typename... Ts>
std::string concat(const Ts&... parts) {
  std::ostringstream ss;
  (ss << ... << parts);
  return ss.str();
}
}  // namespace detail

template <typename... Ts>
void log_debug(const Ts&... parts) {
  if (log_level() <= LogLevel::kDebug)
    log_message(LogLevel::kDebug, detail::concat(parts...));
}
template <typename... Ts>
void log_info(const Ts&... parts) {
  if (log_level() <= LogLevel::kInfo)
    log_message(LogLevel::kInfo, detail::concat(parts...));
}
template <typename... Ts>
void log_warn(const Ts&... parts) {
  if (log_level() <= LogLevel::kWarn)
    log_message(LogLevel::kWarn, detail::concat(parts...));
}
template <typename... Ts>
void log_error(const Ts&... parts) {
  log_message(LogLevel::kError, detail::concat(parts...));
}

}  // namespace rdsim
