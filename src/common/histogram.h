// rdsim/common/histogram.h
//
// Fixed-bin histogram used to reconstruct threshold-voltage distributions
// (Figs. 2 and 9) and victim-cell count distributions (Fig. 12).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace rdsim {

/// Uniform-bin histogram over [lo, hi). Out-of-range samples are clamped
/// into the first/last bin so that probability mass is conserved.
class Histogram {
 public:
  /// Requires hi > lo and bins >= 1.
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x, std::uint64_t weight = 1);

  std::size_t bin_count() const { return counts_.size(); }
  double lo() const { return lo_; }
  double hi() const { return hi_; }
  double bin_width() const { return width_; }
  std::uint64_t total() const { return total_; }

  /// Raw count of bin i.
  std::uint64_t count(std::size_t i) const { return counts_[i]; }

  /// Center x-coordinate of bin i.
  double bin_center(std::size_t i) const;

  /// Probability density estimate at bin i (count / (total * bin_width)),
  /// i.e. integrates to ~1. Returns 0 when the histogram is empty.
  double pdf(std::size_t i) const;

  /// Fraction of total mass in bin i. Returns 0 when empty.
  double mass(std::size_t i) const;

  /// Empirical mean of the binned samples (bin centers weighted by counts).
  double mean() const;

  /// Empirical q-quantile (q in [0, 1], clamped): the upper edge of the
  /// first bin whose cumulative count reaches ceil(q * total). This is the
  /// smallest bin boundary guaranteed to cover a q-fraction of the mass,
  /// which is the conservative convention for latency percentiles (p99 of
  /// completions is never under-reported by more than one bin width).
  /// Returns lo() when the histogram is empty.
  double quantile(double q) const;

  /// One point of an empirical CDF: cumulative `fraction` of the mass is
  /// at or below `value`.
  struct CdfPoint {
    double value;
    double fraction;
  };

  /// Empirical CDF as (value, cumulative-fraction) pairs, one per
  /// non-empty bin, with `value` the bin's upper edge (matching the
  /// conservative quantile() convention: the fraction at or below that
  /// edge is never under-reported). The last point's fraction is exactly
  /// 1.0. Empty histogram yields an empty vector.
  std::vector<CdfPoint> cdf_points() const;

  /// Resets all counts to zero.
  void clear();

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace rdsim
