// rdsim/common/thread_pool.h
//
// Deterministic fork-join thread pool (formerly sim::ExperimentRunner; it
// moved down to common so the host layer's sharded devices can use the
// same pool machinery without depending on the experiment layer above
// them). A ThreadPool owns a fixed set of worker threads; for_each()/
// map() split an index space [0, n) across the pool.
//
// Determinism contract: each shard i must depend only on its index
// (callers seed shard randomness with Rng::stream(seed, i) or own
// per-index state), and map() returns results in index order — so the
// merged output of a run is byte-identical no matter how many threads
// executed it or how the OS scheduled them. docs/ARCHITECTURE.md spells
// out the contract; sim::ExperimentRunner and host::ShardedDevice are
// its two instantiations.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

namespace rdsim {

class ThreadPool {
 public:
  /// `threads` <= 1 runs everything inline on the caller. With N > 1 the
  /// pool holds N-1 workers and the calling thread participates, so N
  /// shards execute concurrently.
  explicit ThreadPool(int threads = 1);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int thread_count() const { return threads_; }

  /// Invokes fn(i) for every i in [0, n), distributing indices across the
  /// pool; blocks until all complete. If any invocation throws, the first
  /// exception is rethrown here after the batch drains. Not reentrant: a
  /// batch must not start another batch on the same pool.
  void for_each(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Parallel map: results are placed by index, so the output order is
  /// independent of scheduling. R needs move construction only.
  template <typename R, typename Fn>
  std::vector<R> map(std::size_t n, Fn&& fn) {
    std::vector<std::optional<R>> slots(n);
    for_each(n, [&](std::size_t i) { slots[i].emplace(fn(i)); });
    std::vector<R> out;
    out.reserve(n);
    for (auto& slot : slots) out.push_back(std::move(*slot));
    return out;
  }

 private:
  void worker_loop();
  /// Pulls shard indices from the live batch until exhausted.
  void drain_batch(const std::function<void(std::size_t)>& fn, std::size_t n);

  int threads_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable batch_cv_;  ///< Workers wait here for a batch.
  std::condition_variable done_cv_;   ///< for_each waits here for drain.
  bool shutdown_ = false;
  std::uint64_t batch_id_ = 0;
  const std::function<void(std::size_t)>* batch_fn_ = nullptr;
  std::size_t batch_n_ = 0;
  std::atomic<std::size_t> next_index_{0};
  int busy_workers_ = 0;
  std::exception_ptr first_error_;
};

}  // namespace rdsim
