// rdsim/common/serialize.h
//
// Tiny POD-oriented serialization helpers shared by every checkpointable
// subsystem (FTL snapshots, SSD snapshots, workload-generator state, the
// fleet checkpoint container). The format is deliberately primitive —
// raw little-endian memcpy of trivially-copyable values, with framing,
// versioning, and CRC protection supplied by each caller — because
// checkpoints are same-build, same-host artifacts, not an interchange
// format.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <type_traits>
#include <vector>

namespace rdsim::serialize {

/// Appends the raw bytes of a trivially-copyable value.
template <typename T>
void append_pod(std::vector<std::uint8_t>* out, const T& value) {
  static_assert(std::is_trivially_copyable_v<T>);
  // resize + memcpy rather than insert(ptr, ptr): GCC 12's -O3 flags the
  // pointer-range insert with a spurious stringop-overflow warning.
  const std::size_t old_size = out->size();
  out->resize(old_size + sizeof(T));
  std::memcpy(out->data() + old_size, &value, sizeof(T));
}

/// Reads a trivially-copyable value at *offset, advancing it. Returns
/// false (leaving *value untouched) when the buffer is too short.
template <typename T>
bool read_pod(const std::vector<std::uint8_t>& in, std::size_t* offset,
              T* value) {
  static_assert(std::is_trivially_copyable_v<T>);
  if (*offset > in.size() || sizeof(T) > in.size() - *offset) return false;
  std::memcpy(value, in.data() + *offset, sizeof(T));
  *offset += sizeof(T);
  return true;
}

/// Appends a u64 length prefix followed by the bytes.
inline void append_bytes(std::vector<std::uint8_t>* out,
                         const std::vector<std::uint8_t>& bytes) {
  append_pod(out, static_cast<std::uint64_t>(bytes.size()));
  out->insert(out->end(), bytes.begin(), bytes.end());
}

/// Reads a u64-length-prefixed byte string written by append_bytes.
inline bool read_bytes(const std::vector<std::uint8_t>& in,
                       std::size_t* offset, std::vector<std::uint8_t>* bytes) {
  std::uint64_t n = 0;
  if (!read_pod(in, offset, &n)) return false;
  if (n > in.size() - *offset) return false;
  bytes->assign(in.begin() + static_cast<std::ptrdiff_t>(*offset),
                in.begin() + static_cast<std::ptrdiff_t>(*offset + n));
  *offset += n;
  return true;
}

/// Appends a u64 length prefix followed by the string's bytes.
inline void append_string(std::vector<std::uint8_t>* out,
                          const std::string& s) {
  append_pod(out, static_cast<std::uint64_t>(s.size()));
  out->insert(out->end(), s.begin(), s.end());
}

/// Reads a u64-length-prefixed string written by append_string.
inline bool read_string(const std::vector<std::uint8_t>& in,
                        std::size_t* offset, std::string* s) {
  std::uint64_t n = 0;
  if (!read_pod(in, offset, &n)) return false;
  if (n > in.size() - *offset) return false;
  s->assign(reinterpret_cast<const char*>(in.data()) + *offset,
            static_cast<std::size_t>(n));
  *offset += n;
  return true;
}

}  // namespace rdsim::serialize
