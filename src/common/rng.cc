#include "common/rng.h"

#include <cmath>

namespace rdsim {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& w : s_) w = splitmix64(sm);
  // xoshiro must not start from the all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
  has_cached_normal_ = false;
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0,1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::uniform_u64(std::uint64_t n) {
  // Lemire's nearly-divisionless bounded generation.
  __uint128_t m = static_cast<__uint128_t>(next()) * n;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < n) {
    const std::uint64_t threshold = (0 - n) % n;
    while (lo < threshold) {
      m = static_cast<__uint128_t>(next()) * n;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(uniform_u64(span));
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u, v, s;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double f = std::sqrt(-2.0 * std::log(s) / s);
  cached_normal_ = v * f;
  has_cached_normal_ = true;
  return u * f;
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

std::uint64_t Rng::poisson(double mean) {
  if (mean <= 0.0) return 0;
  if (mean < 30.0) {
    // Knuth's product-of-uniforms method.
    const double limit = std::exp(-mean);
    std::uint64_t k = 0;
    double p = 1.0;
    do {
      ++k;
      p *= uniform();
    } while (p > limit);
    return k - 1;
  }
  // Normal approximation with continuity correction; adequate for the
  // simulator's bulk-event counts.
  const double x = normal(mean, std::sqrt(mean));
  return x <= 0.0 ? 0 : static_cast<std::uint64_t>(x + 0.5);
}

double Rng::exponential(double rate) {
  // log(1 - uniform()) is safe: uniform() < 1.
  return -std::log(1.0 - uniform()) / rate;
}

void Rng::fill_uniform(double* dst, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] = uniform();
}

void Rng::fill_uniform(double* dst, std::size_t n, double lo, double hi) {
  for (std::size_t i = 0; i < n; ++i) dst[i] = uniform(lo, hi);
}

void Rng::fill_normal(double* dst, std::size_t n, double mean, double stddev) {
  for (std::size_t i = 0; i < n; ++i) dst[i] = normal(mean, stddev);
}

void Rng::fill_normal(float* dst, std::size_t n, double mean, double stddev) {
  for (std::size_t i = 0; i < n; ++i)
    dst[i] = static_cast<float>(normal(mean, stddev));
}

void Rng::fill_random_bits(std::uint8_t* dst, std::size_t n) {
  std::size_t i = 0;
  for (; i + 64 <= n; i += 64) {
    const std::uint64_t w = next();
    for (int j = 0; j < 64; ++j)
      dst[i + j] = static_cast<std::uint8_t>((w >> j) & 1);
  }
  if (i < n) {
    std::uint64_t w = next();
    for (; i < n; ++i) {
      dst[i] = static_cast<std::uint8_t>(w & 1);
      w >>= 1;
    }
  }
}

Rng Rng::fork() { return Rng(next() ^ 0xD1B54A32D192ED03ULL); }

Rng Rng::stream(std::uint64_t seed, std::uint64_t stream_id) {
  // Two rounds of SplitMix64 over the pair (seed, id): the first whitens
  // the stream id so that consecutive ids land far apart, the second mixes
  // in the seed. Rng's constructor then runs the result through SplitMix64
  // again to fill the xoshiro state.
  std::uint64_t x = stream_id ^ 0x6A09E667F3BCC909ULL;
  const std::uint64_t mixed_id = splitmix64(x);
  x = seed ^ mixed_id;
  return Rng(splitmix64(x));
}

Rng Rng::at(std::uint64_t seed, std::uint64_t stream_id,
            std::uint64_t counter) {
  // stream()'s construction extended by one input: whiten the counter,
  // fold it into the stream id, whiten again, fold in the seed. Every
  // component passes through a full SplitMix64 avalanche before it meets
  // the next, so nearby (stream, counter) pairs land in uncorrelated
  // states; Rng's constructor mixes the final value a third time.
  std::uint64_t x = counter ^ 0xBB67AE8584CAA73BULL;
  const std::uint64_t mixed_counter = splitmix64(x);
  x = stream_id ^ mixed_counter;
  const std::uint64_t mixed_id = splitmix64(x);
  x = seed ^ mixed_id;
  return Rng(splitmix64(x));
}

}  // namespace rdsim
