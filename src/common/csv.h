// rdsim/common/csv.h
//
// Minimal CSV emitter used by the figure-regeneration benches so that every
// series the paper plots can be piped straight into a plotting tool.
#pragma once

#include <ostream>
#include <sstream>
#include <string>
#include <vector>

namespace rdsim {

/// Streams rows of comma-separated values. Values are formatted with
/// operator<<; strings containing commas/quotes are quoted per RFC 4180.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& out) : out_(out) {}

  /// Writes a header or data row from any streamable values.
  template <typename... Ts>
  void row(const Ts&... values) {
    bool first = true;
    ((write_cell(values, first), first = false), ...);
    out_ << '\n';
  }

  /// Writes a row from a vector of already-formatted cells.
  void row_vec(const std::vector<std::string>& cells);

 private:
  template <typename T>
  void write_cell(const T& value, bool first) {
    if (!first) out_ << ',';
    std::ostringstream ss;
    ss << value;
    out_ << escape(ss.str());
  }

  static std::string escape(const std::string& s);

  std::ostream& out_;
};

}  // namespace rdsim
