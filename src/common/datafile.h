// rdsim/common/datafile.h
//
// Locates checked-in data files (tests/data/*) at runtime. Tests and the
// fig_trace_replay experiment run from the build tree, CI runs them from
// the repo root, and a packaged binary may run from anywhere — so the
// lookup tries, in order: $RDSIM_DATA_DIR, ./tests/data/, a few parent
// levels of the same, and finally the build-time source directory baked
// in by CMake (RDSIM_SOURCE_DIR).
#pragma once

#include <string>

namespace rdsim {

/// Returns a path to tests/data/<name> that exists, or an empty string if
/// the file cannot be found anywhere (callers decide whether that is an
/// error or a skip).
std::string find_test_data(const std::string& name);

}  // namespace rdsim
