#include "common/thread_pool.h"

#include <algorithm>

namespace rdsim {

ThreadPool::ThreadPool(int threads) : threads_(std::max(1, threads)) {
  workers_.reserve(static_cast<std::size_t>(threads_ - 1));
  for (int i = 0; i < threads_ - 1; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  batch_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::drain_batch(const std::function<void(std::size_t)>& fn,
                             std::size_t n) {
  for (std::size_t i = next_index_.fetch_add(1, std::memory_order_relaxed);
       i < n; i = next_index_.fetch_add(1, std::memory_order_relaxed)) {
    try {
      fn(i);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu_);
      if (!first_error_) first_error_ = std::current_exception();
    }
  }
}

void ThreadPool::worker_loop() {
  std::uint64_t seen_batch = 0;
  for (;;) {
    const std::function<void(std::size_t)>* fn = nullptr;
    std::size_t n = 0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      batch_cv_.wait(lock, [&] {
        return shutdown_ || (batch_fn_ != nullptr && batch_id_ != seen_batch);
      });
      if (shutdown_) return;
      seen_batch = batch_id_;
      fn = batch_fn_;
      n = batch_n_;
      ++busy_workers_;
    }
    drain_batch(*fn, n);
    {
      std::lock_guard<std::mutex> lock(mu_);
      --busy_workers_;
    }
    done_cv_.notify_one();
  }
}

void ThreadPool::for_each(std::size_t n,
                          const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (workers_.empty() || n == 1) {
    // Inline fast path: no pool interaction, exceptions propagate directly.
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    batch_fn_ = &fn;
    batch_n_ = n;
    next_index_.store(0, std::memory_order_relaxed);
    first_error_ = nullptr;
    ++batch_id_;
  }
  batch_cv_.notify_all();
  drain_batch(fn, n);  // The caller works too.
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] { return busy_workers_ == 0; });
    batch_fn_ = nullptr;
    error = first_error_;
    first_error_ = nullptr;
  }
  if (error) std::rethrow_exception(error);
}

}  // namespace rdsim
