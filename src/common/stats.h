// rdsim/common/stats.h
//
// Statistical primitives shared across the simulator: the standard normal
// pdf/cdf/quantile (used for analytic RBER overlap integrals and tail
// probabilities), streaming moment accumulators, and ordinary least squares
// line fitting (used to recover Fig. 3's RBER-per-read slopes).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace rdsim {

/// Standard normal probability density at x.
double normal_pdf(double x);

/// Standard normal cumulative distribution function.
double normal_cdf(double x);

/// Upper-tail probability Q(x) = 1 - Phi(x), computed via erfc so it stays
/// accurate deep into the tail (needed for pass-through error rates ~1e-9).
double normal_sf(double x);

/// Inverse standard normal CDF (Acklam's rational approximation, |eps| <
/// 1.15e-9). Requires 0 < p < 1.
double normal_quantile(double p);

/// Streaming mean/variance via Welford's algorithm.
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);

  std::size_t count() const { return n_; }
  double mean() const { return mean_; }
  /// Population variance; 0 when fewer than 2 samples.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Result of an ordinary least-squares straight-line fit y = slope*x +
/// intercept.
struct LineFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r2 = 0.0;  ///< Coefficient of determination.
};

/// Fits a line through (x[i], y[i]). Requires x.size() == y.size() >= 2.
LineFit fit_line(std::span<const double> x, std::span<const double> y);

/// p-th percentile (p in [0,100]) with linear interpolation; the input is
/// copied and sorted. Requires a non-empty input.
double percentile(std::vector<double> values, double p);

/// Arithmetic mean of a span. Requires non-empty input.
double mean_of(std::span<const double> values);

/// Geometric mean of strictly positive values. Requires non-empty input.
double geometric_mean(std::span<const double> values);

}  // namespace rdsim
