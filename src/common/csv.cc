#include "common/csv.h"

namespace rdsim {

void CsvWriter::row_vec(const std::vector<std::string>& cells) {
  bool first = true;
  for (const auto& c : cells) {
    if (!first) out_ << ',';
    out_ << escape(c);
    first = false;
  }
  out_ << '\n';
}

std::string CsvWriter::escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace rdsim
