#include "common/log.h"

#include <iostream>

namespace rdsim {
namespace {
LogLevel g_level = LogLevel::kWarn;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level = level; }
LogLevel log_level() { return g_level; }

void log_message(LogLevel level, const std::string& message) {
  if (level < g_level) return;
  std::cerr << '[' << level_name(level) << "] " << message << '\n';
}

}  // namespace rdsim
