#include "common/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace rdsim {

namespace {
constexpr double kInvSqrt2Pi = 0.3989422804014327;
constexpr double kInvSqrt2 = 0.7071067811865476;
}  // namespace

double normal_pdf(double x) { return kInvSqrt2Pi * std::exp(-0.5 * x * x); }

double normal_cdf(double x) { return 0.5 * std::erfc(-x * kInvSqrt2); }

double normal_sf(double x) { return 0.5 * std::erfc(x * kInvSqrt2); }

double normal_quantile(double p) {
  assert(p > 0.0 && p < 1.0);
  // Acklam's algorithm: rational approximations on three regions.
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double p_low = 0.02425;
  double q, r, x;
  if (p < p_low) {
    q = std::sqrt(-2.0 * std::log(p));
    x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  } else if (p <= 1.0 - p_low) {
    q = p - 0.5;
    r = q * q;
    x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) *
        q /
        (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  } else {
    q = std::sqrt(-2.0 * std::log(1.0 - p));
    x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  // One Halley refinement step to push the error toward machine precision.
  const double e = normal_cdf(x) - p;
  const double u = e * std::sqrt(2.0 * M_PI) * std::exp(0.5 * x * x);
  x = x - u / (1.0 + 0.5 * x * u);
  return x;
}

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

LineFit fit_line(std::span<const double> x, std::span<const double> y) {
  assert(x.size() == y.size() && x.size() >= 2);
  const double n = static_cast<double>(x.size());
  double sx = 0, sy = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
  }
  const double mx = sx / n, my = sy / n;
  double sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mx, dy = y[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  LineFit fit;
  fit.slope = sxx == 0.0 ? 0.0 : sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  fit.r2 = (sxx == 0.0 || syy == 0.0) ? 1.0 : (sxy * sxy) / (sxx * syy);
  return fit;
}

double percentile(std::vector<double> values, double p) {
  assert(!values.empty());
  std::sort(values.begin(), values.end());
  if (values.size() == 1) return values[0];
  const double rank = std::clamp(p, 0.0, 100.0) / 100.0 *
                      static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double mean_of(std::span<const double> values) {
  assert(!values.empty());
  double s = 0;
  for (double v : values) s += v;
  return s / static_cast<double>(values.size());
}

double geometric_mean(std::span<const double> values) {
  assert(!values.empty());
  double s = 0;
  for (double v : values) s += std::log(v);
  return std::exp(s / static_cast<double>(values.size()));
}

}  // namespace rdsim
