#include "common/histogram.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace rdsim {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0) {
  assert(hi > lo && bins >= 1);
}

void Histogram::add(double x, std::uint64_t weight) {
  auto idx = static_cast<std::int64_t>((x - lo_) / width_);
  idx = std::clamp<std::int64_t>(idx, 0,
                                 static_cast<std::int64_t>(counts_.size()) - 1);
  counts_[static_cast<std::size_t>(idx)] += weight;
  total_ += weight;
}

double Histogram::bin_center(std::size_t i) const {
  return lo_ + (static_cast<double>(i) + 0.5) * width_;
}

double Histogram::pdf(std::size_t i) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(counts_[i]) /
         (static_cast<double>(total_) * width_);
}

double Histogram::mass(std::size_t i) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(counts_[i]) / static_cast<double>(total_);
}

double Histogram::mean() const {
  if (total_ == 0) return 0.0;
  double s = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i)
    s += bin_center(i) * static_cast<double>(counts_[i]);
  return s / static_cast<double>(total_);
}

double Histogram::quantile(double q) const {
  if (total_ == 0) return lo_;
  q = std::clamp(q, 0.0, 1.0);
  const auto target = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(total_)));
  const std::uint64_t need = target == 0 ? 1 : target;
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    cum += counts_[i];
    if (cum >= need) return lo_ + static_cast<double>(i + 1) * width_;
  }
  return hi_;
}

std::vector<Histogram::CdfPoint> Histogram::cdf_points() const {
  std::vector<CdfPoint> out;
  if (total_ == 0) return out;
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    cum += counts_[i];
    out.push_back({lo_ + static_cast<double>(i + 1) * width_,
                   static_cast<double>(cum) / static_cast<double>(total_)});
  }
  // Guard the tail against floating-point shortfall: all mass is counted.
  out.back().fraction = 1.0;
  return out;
}

void Histogram::clear() {
  std::fill(counts_.begin(), counts_.end(), 0);
  total_ = 0;
}

}  // namespace rdsim
