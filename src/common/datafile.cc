#include "common/datafile.h"

#include <cstdlib>
#include <fstream>

namespace rdsim {
namespace {

bool file_exists(const std::string& path) {
  std::ifstream f(path);
  return f.good();
}

}  // namespace

std::string find_test_data(const std::string& name) {
  if (const char* dir = std::getenv("RDSIM_DATA_DIR")) {
    const std::string p = std::string(dir) + "/" + name;
    if (file_exists(p)) return p;
  }
  for (const char* prefix :
       {"tests/data/", "../tests/data/", "../../tests/data/",
        "../../../tests/data/"}) {
    const std::string p = std::string(prefix) + name;
    if (file_exists(p)) return p;
  }
#ifdef RDSIM_SOURCE_DIR
  {
    const std::string p = std::string(RDSIM_SOURCE_DIR) + "/tests/data/" + name;
    if (file_exists(p)) return p;
  }
#endif
  return {};
}

}  // namespace rdsim
