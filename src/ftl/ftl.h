// rdsim/ftl/ftl.h
//
// Page-mapped flash translation layer: the controller substrate the
// paper's mechanisms live in. Provides logical-to-physical mapping,
// greedy garbage collection, wear-aware allocation, periodic remap-based
// refresh (the 7-day interval of §3), and the read-reclaim baseline
// mitigation (remap a block after a fixed read count) that prior work
// [21, 29, 30, 40] used.
//
// The FTL tracks per-block reliability state (P/E cycles, reads since
// program, data age, tuned Vpass) but delegates error-rate evaluation to
// flash::RberModel — whole-drive simulations would not fit a per-cell
// Monte Carlo model.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/rng.h"

namespace rdsim::ftl {

inline constexpr std::uint64_t kUnmapped =
    std::numeric_limits<std::uint64_t>::max();

/// Drive shape and policy knobs.
struct FtlConfig {
  std::uint32_t blocks = 2048;
  std::uint32_t pages_per_block = 256;
  double overprovision = 0.125;   ///< Fraction of physical space reserved.
  std::uint32_t gc_free_target = 8;  ///< GC keeps at least this many free
                                     ///< blocks.
  double refresh_interval_days = 7.0;
  /// Read-reclaim threshold (reads to a block before its data is moved).
  /// 0 disables read reclaim. The Yaffs-style default for MLC is 50K.
  std::uint64_t read_reclaim_threshold = 0;
  /// Grown-defect budget: how many blocks may retire before the drive
  /// goes read-only. (Factory-style provisioning: the spares come out of
  /// the overprovisioned space, not on top of `blocks`.)
  std::uint32_t spare_blocks = 4;
  /// Fault injection: per-page program failure probability (drawn per
  /// host page write from the FTL's seeded RNG) and per-operation erase
  /// failure probability. A failed program or erase retires the block to
  /// the grown-defect table. 0 injects nothing and draws nothing, so the
  /// RNG stream — and every downstream result — is untouched.
  double program_fail_prob = 0.0;
  double erase_fail_prob = 0.0;

  std::uint64_t physical_pages() const {
    return static_cast<std::uint64_t>(blocks) * pages_per_block;
  }
  std::uint64_t logical_pages() const {
    return static_cast<std::uint64_t>(static_cast<double>(physical_pages()) *
                                      (1.0 - overprovision));
  }
};

/// Per-block reliability and allocation state. kRetired blocks are grown
/// defects: permanently out of rotation, never allocated, never erased.
struct BlockInfo {
  enum class State : std::uint8_t { kFree, kOpen, kFull, kRetired };
  State state = State::kFree;
  std::uint32_t pe_cycles = 0;
  std::uint32_t write_ptr = 0;    ///< Next page to program.
  std::uint32_t valid_pages = 0;
  std::uint64_t reads_since_program = 0;
  double program_day = 0.0;       ///< Day the block was (first) programmed.
  double vpass = 0.0;             ///< Tuned pass-through voltage (0 = unset;
                                  ///< the SSD layer initializes it).
};

/// Counters the simulator reports.
struct FtlStats {
  std::uint64_t host_reads = 0;       // pages
  std::uint64_t host_writes = 0;      // pages
  std::uint64_t host_trims = 0;       // pages actually unmapped by trim
  std::uint64_t gc_writes = 0;        // pages copied by GC
  std::uint64_t refresh_writes = 0;   // pages copied by refresh
  std::uint64_t reclaim_writes = 0;   // pages copied by read reclaim
  std::uint64_t gc_erases = 0;
  std::uint64_t refreshes = 0;
  std::uint64_t reclaims = 0;
  std::uint64_t program_failures = 0;  // injected program faults
  std::uint64_t erase_failures = 0;    // injected erase faults
  std::uint64_t defect_writes = 0;     // pages relocated off retiring blocks

  double waf() const {
    const double host = static_cast<double>(host_writes);
    if (host == 0.0) return 1.0;
    return (host + static_cast<double>(gc_writes + refresh_writes +
                                       reclaim_writes + defect_writes)) /
           host;
  }
};

/// Outcome of one host page write.
enum class WriteResult : std::uint8_t {
  kOk = 0,        ///< Data persisted (possibly relocated past a defect).
  kFailed = 1,    ///< Program failed and relocation was impossible: lost.
  kReadOnly = 2,  ///< Drive is read-only (spares exhausted); not attempted.
};

class Ftl {
 public:
  explicit Ftl(const FtlConfig& config, std::uint64_t seed = 1);

  const FtlConfig& config() const { return config_; }
  const FtlStats& stats() const { return stats_; }
  double now_days() const { return now_days_; }

  std::size_t block_count() const { return blocks_.size(); }
  const BlockInfo& block(std::size_t i) const { return blocks_[i]; }

  // Narrow mutators for the controller layer. These are the only ways an
  // outside caller may touch per-block state: they cannot violate the
  // mapping/valid-count invariants the way the old block_mut() escape
  // hatch could.

  /// Writes back a tuned pass-through voltage (Vpass Tuning's decision).
  void set_block_vpass(std::size_t i, double vpass) {
    blocks_[i].vpass = vpass;
  }

  /// Accounts `reads` controller-issued probe reads (MEE measurement and
  /// step-search verification) against the block: probe reads disturb the
  /// block exactly like host reads, so they count toward read reclaim and
  /// disturb accumulation.
  void note_probe_reads(std::size_t i, std::uint64_t reads) {
    blocks_[i].reads_since_program += reads;
  }

  /// Advances the FTL clock.
  void advance_time(double days) { now_days_ += days; }

  /// Host write of one logical page with full outcome reporting: draws
  /// the injected program-fault (when configured), retires failing blocks
  /// and relocates their data, and rejects writes once the drive is
  /// read-only. `*block_out` (optional) receives the block holding the
  /// data on kOk, kUnmappedBlock otherwise.
  WriteResult write_page(std::uint64_t lpn, std::uint32_t* block_out);

  /// Host write of one logical page. Returns the physical block that
  /// received the data, or kUnmappedBlock when the write did not persist
  /// (failed program with no relocation, or drive read-only) — callers
  /// that care which distinguish via write_page().
  std::uint32_t write(std::uint64_t lpn);

  /// Host read of one logical page. Returns the physical block read, or
  /// kUnmapped32 if the page was never written (reads of unwritten space
  /// are served from the mapping without touching flash).
  std::uint32_t read(std::uint64_t lpn);
  static constexpr std::uint32_t kUnmappedBlock =
      std::numeric_limits<std::uint32_t>::max();

  /// Host trim of one logical page: unmaps it and releases the physical
  /// page (the space stops being copied by GC / refresh / reclaim — until
  /// then, overwritten-but-never-reread data was only reclaimed by GC).
  /// Returns false when the page was not mapped (trim of unwritten space
  /// is a no-op, as on real drives).
  bool trim(std::uint64_t lpn);

  /// Runs garbage collection until the free-block target is met.
  void collect_garbage();

  /// Blocks whose data age exceeds the refresh interval.
  std::vector<std::uint32_t> blocks_due_refresh() const;

  /// Remaps all valid data of `block` into fresh blocks and erases it
  /// (remap-based refresh / read reclaim both use this).
  void refresh_block(std::uint32_t block);

  /// Applies read-reclaim policy: refreshes any block whose read count
  /// passed the threshold. Returns the number of blocks reclaimed.
  int apply_read_reclaim();

  /// Number of free blocks.
  std::uint32_t free_blocks() const { return free_count_; }

  /// Grown defects retired so far.
  std::uint32_t retired_blocks() const { return retired_count_; }

  /// True once the drive froze into read-only mode: the grown-defect
  /// count exceeded the spare budget, or a relocation/allocation could
  /// not complete. Reads keep working; writes are rejected.
  bool read_only() const { return read_only_; }

  /// Highest P/E count across blocks (drive wear indicator).
  std::uint32_t max_pe() const;

  /// Validates internal invariants (mapping/reverse-mapping agreement,
  /// valid counts). Used by tests; returns false on corruption.
  bool check_invariants() const;

  /// Serializes the mapping tables, per-block state, and the fault-stream
  /// RNG into a versioned, CRC32-protected byte buffer (the persisted
  /// metadata a controller keeps across power cycles — including each
  /// block's tuned Vpass). Format: magic + version header, payload,
  /// trailing CRC32 over everything before it. Including the RNG state
  /// means a restored FTL's injected-fault sequence continues exactly
  /// where the snapshotted one left off (checkpoint/resume determinism).
  std::vector<std::uint8_t> snapshot() const;

  /// Restores a snapshot taken from an FTL with the same configuration.
  /// Returns false — leaving the FTL untouched — if the buffer is
  /// truncated, over-long, bit-corrupted (payload CRC), from a different
  /// snapshot version, shaped for a different geometry, or internally
  /// inconsistent (mapping invariants). On failure `*error` (optional)
  /// receives a one-line diagnostic saying which check rejected it; a
  /// snapshot is never partially applied.
  bool restore(const std::vector<std::uint8_t>& snapshot,
               std::string* error = nullptr);

 private:
  /// Least-worn free block, opened; kUnmappedBlock when none exist.
  std::uint32_t allocate_block();
  /// Appends a page into the current open block; `*block_out` receives
  /// the block written. False (no mutation) when no block was available.
  bool append_page(std::uint64_t lpn, std::uint32_t* block_out);
  void erase_block(std::uint32_t b);
  std::uint32_t pick_gc_victim() const;
  /// Copies valid pages out of `b` (GC/refresh/retire path), charging
  /// `counter`. False when the drive ran out of destination blocks
  /// mid-move — `b` then still holds the stranded remainder.
  bool evacuate(std::uint32_t b, std::uint64_t* counter);
  /// Moves `b` to the grown-defect table (evacuating any valid data
  /// first) and re-evaluates the read-only triggers. False when the
  /// evacuation stranded data (drive freezes read-only, `b` keeps its
  /// still-readable pages).
  bool retire_block(std::uint32_t b);
  /// Books one retirement and flips read_only_ once the spare budget is
  /// exhausted or the remaining blocks cannot host the logical space.
  void note_retired();

  FtlConfig config_;
  Rng rng_;
  std::vector<BlockInfo> blocks_;
  std::vector<std::uint64_t> l2p_;  ///< lpn -> packed phys (block*ppb+page).
  std::vector<std::uint64_t> p2l_;  ///< packed phys -> lpn or kUnmapped.
  std::uint32_t open_block_ = kUnmappedBlock;
  std::uint32_t free_count_ = 0;
  std::uint32_t retired_count_ = 0;
  bool read_only_ = false;
  double now_days_ = 0.0;
  FtlStats stats_;
};

}  // namespace rdsim::ftl
