#include "ftl/ftl.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "common/serialize.h"
#include "ecc/crc32.h"

namespace rdsim::ftl {

Ftl::Ftl(const FtlConfig& config, std::uint64_t seed)
    : config_(config),
      rng_(seed),
      blocks_(config.blocks),
      l2p_(config.logical_pages(), kUnmapped),
      p2l_(config.physical_pages(), kUnmapped),
      free_count_(config.blocks) {
  assert(config_.blocks > config_.gc_free_target + 1);
  assert(config_.overprovision > 0.0 && config_.overprovision < 1.0);
}

std::uint32_t Ftl::allocate_block() {
  // Wear-aware allocation: among free blocks pick the least-worn one
  // (simple but effective wear leveling for the simulator's purposes).
  std::uint32_t best = kUnmappedBlock;
  for (std::uint32_t b = 0; b < blocks_.size(); ++b) {
    if (blocks_[b].state != BlockInfo::State::kFree) continue;
    if (best == kUnmappedBlock ||
        blocks_[b].pe_cycles < blocks_[best].pe_cycles) {
      best = b;
    }
  }
  if (best == kUnmappedBlock) return kUnmappedBlock;
  auto& info = blocks_[best];
  info.state = BlockInfo::State::kOpen;
  info.write_ptr = 0;
  info.valid_pages = 0;
  info.reads_since_program = 0;
  info.program_day = now_days_;
  --free_count_;
  return best;
}

bool Ftl::append_page(std::uint64_t lpn, std::uint32_t* block_out) {
  if (open_block_ == kUnmappedBlock ||
      blocks_[open_block_].write_ptr >= config_.pages_per_block) {
    if (open_block_ != kUnmappedBlock)
      blocks_[open_block_].state = BlockInfo::State::kFull;
    open_block_ = allocate_block();
    if (open_block_ == kUnmappedBlock) return false;
  }
  auto& info = blocks_[open_block_];
  const std::uint32_t page = info.write_ptr++;
  ++info.valid_pages;
  const std::uint64_t packed =
      static_cast<std::uint64_t>(open_block_) * config_.pages_per_block + page;
  // Invalidate the previous location of this lpn.
  const std::uint64_t old = l2p_[lpn];
  if (old != kUnmapped) {
    p2l_[old] = kUnmapped;
    auto& old_info = blocks_[old / config_.pages_per_block];
    assert(old_info.valid_pages > 0);
    --old_info.valid_pages;
  }
  l2p_[lpn] = packed;
  p2l_[packed] = lpn;
  if (block_out) *block_out = open_block_;
  if (info.write_ptr == config_.pages_per_block) {
    info.state = BlockInfo::State::kFull;
    open_block_ = kUnmappedBlock;  // Full blocks are eligible for refresh
                                   // and GC immediately.
  }
  return true;
}

WriteResult Ftl::write_page(std::uint64_t lpn, std::uint32_t* block_out) {
  assert(lpn < l2p_.size());
  if (block_out) *block_out = kUnmappedBlock;
  if (read_only_) return WriteResult::kReadOnly;
  std::uint32_t block = kUnmappedBlock;
  if (!append_page(lpn, &block)) {
    // No allocatable block at all — the drive can no longer accept data.
    read_only_ = true;
    return WriteResult::kReadOnly;
  }
  ++stats_.host_writes;
  WriteResult result = WriteResult::kOk;
  // Injected program failure: the just-programmed page reported a fail.
  // The controller still holds the data in RAM, so it retires the block
  // and relocates everything (real drives rewrite-from-buffer the same
  // way); the host write is lost only when no relocation destination
  // exists. Guarded so a zero probability never touches the RNG stream.
  if (config_.program_fail_prob > 0.0 &&
      rng_.uniform() < config_.program_fail_prob) {
    ++stats_.program_failures;
    retire_block(block);
    const std::uint64_t packed = l2p_[lpn];
    if (packed != kUnmapped &&
        packed / config_.pages_per_block != block) {
      block = static_cast<std::uint32_t>(packed / config_.pages_per_block);
    } else {
      block = kUnmappedBlock;
      result = WriteResult::kFailed;
    }
  }
  if (block_out) *block_out = block;
  if (!read_only_ && free_count_ <= config_.gc_free_target)
    collect_garbage();
  return result;
}

std::uint32_t Ftl::write(std::uint64_t lpn) {
  std::uint32_t block = kUnmappedBlock;
  write_page(lpn, &block);
  return block;
}

std::uint32_t Ftl::read(std::uint64_t lpn) {
  assert(lpn < l2p_.size());
  ++stats_.host_reads;
  const std::uint64_t packed = l2p_[lpn];
  if (packed == kUnmapped) return kUnmappedBlock;
  const auto block = static_cast<std::uint32_t>(packed / config_.pages_per_block);
  ++blocks_[block].reads_since_program;
  return block;
}

bool Ftl::trim(std::uint64_t lpn) {
  assert(lpn < l2p_.size());
  const std::uint64_t packed = l2p_[lpn];
  if (packed == kUnmapped) return false;
  l2p_[lpn] = kUnmapped;
  p2l_[packed] = kUnmapped;
  auto& info = blocks_[packed / config_.pages_per_block];
  assert(info.valid_pages > 0);
  --info.valid_pages;
  ++stats_.host_trims;
  return true;
}

std::uint32_t Ftl::pick_gc_victim() const {
  // Greedy: full block with the fewest valid pages; ties broken toward
  // higher read counts so disturb-loaded blocks turn over sooner.
  std::uint32_t best = kUnmappedBlock;
  for (std::uint32_t b = 0; b < blocks_.size(); ++b) {
    const auto& info = blocks_[b];
    if (info.state != BlockInfo::State::kFull) continue;
    if (best == kUnmappedBlock ||
        info.valid_pages < blocks_[best].valid_pages ||
        (info.valid_pages == blocks_[best].valid_pages &&
         info.reads_since_program > blocks_[best].reads_since_program)) {
      best = b;
    }
  }
  return best;
}

bool Ftl::evacuate(std::uint32_t b, std::uint64_t* counter) {
  const std::uint64_t base =
      static_cast<std::uint64_t>(b) * config_.pages_per_block;
  for (std::uint32_t p = 0; p < config_.pages_per_block; ++p) {
    const std::uint64_t lpn = p2l_[base + p];
    if (lpn == kUnmapped) continue;
    if (!append_page(lpn, nullptr)) return false;  // Out of destinations;
                                                   // remainder stranded.
    ++*counter;
  }
  assert(blocks_[b].valid_pages == 0);
  return true;
}

void Ftl::note_retired() {
  ++retired_count_;
  // Read-only triggers: the grown-defect count exceeded the provisioned
  // spare budget, or (backstop, for tiny spare budgets against tiny
  // drives) the surviving blocks cannot host the logical space plus the
  // GC working set any more.
  const std::uint64_t min_usable =
      (config_.logical_pages() + config_.pages_per_block - 1) /
          config_.pages_per_block +
      config_.gc_free_target + 2;
  if (retired_count_ > config_.spare_blocks ||
      blocks_.size() - retired_count_ < min_usable) {
    read_only_ = true;
  }
}

bool Ftl::retire_block(std::uint32_t b) {
  auto& info = blocks_[b];
  assert(info.state != BlockInfo::State::kRetired);
  if (b == open_block_) {
    info.state = BlockInfo::State::kFull;
    open_block_ = kUnmappedBlock;
  }
  if (info.state == BlockInfo::State::kFree) --free_count_;
  if (info.valid_pages > 0 && !evacuate(b, &stats_.defect_writes)) {
    // Relocation ran out of destinations: the remainder stays readable on
    // the defective block, and the drive freezes rather than lose it.
    read_only_ = true;
    return false;
  }
  info.state = BlockInfo::State::kRetired;
  note_retired();
  return true;
}

void Ftl::erase_block(std::uint32_t b) {
  auto& info = blocks_[b];
  assert(info.valid_pages == 0);
  info.write_ptr = 0;
  info.reads_since_program = 0;
  ++info.pe_cycles;
  // Injected erase failure: the block fails to erase and retires in
  // place (it holds no valid data, so nothing relocates). Guarded so a
  // zero probability never touches the RNG stream.
  if (config_.erase_fail_prob > 0.0 &&
      rng_.uniform() < config_.erase_fail_prob) {
    ++stats_.erase_failures;
    info.state = BlockInfo::State::kRetired;
    note_retired();
    return;
  }
  info.state = BlockInfo::State::kFree;
  ++free_count_;
}

void Ftl::collect_garbage() {
  while (free_count_ <= config_.gc_free_target) {
    const std::uint32_t victim = pick_gc_victim();
    if (victim == kUnmappedBlock) return;  // Nothing reclaimable.
    if (!evacuate(victim, &stats_.gc_writes)) {
      read_only_ = true;  // Stranded data on the victim; stop collecting.
      return;
    }
    erase_block(victim);
    ++stats_.gc_erases;
  }
}

std::vector<std::uint32_t> Ftl::blocks_due_refresh() const {
  std::vector<std::uint32_t> due;
  for (std::uint32_t b = 0; b < blocks_.size(); ++b) {
    const auto& info = blocks_[b];
    if (info.state == BlockInfo::State::kFree || info.valid_pages == 0)
      continue;
    if (b == open_block_) continue;
    if (now_days_ - info.program_day >= config_.refresh_interval_days)
      due.push_back(b);
  }
  return due;
}

void Ftl::refresh_block(std::uint32_t block) {
  auto& info = blocks_[block];
  if (info.state == BlockInfo::State::kFree ||
      info.state == BlockInfo::State::kRetired || block == open_block_)
    return;
  if (!evacuate(block, &stats_.refresh_writes)) {
    read_only_ = true;
    return;
  }
  erase_block(block);
  ++stats_.refreshes;
}

int Ftl::apply_read_reclaim() {
  if (config_.read_reclaim_threshold == 0) return 0;
  int reclaimed = 0;
  for (std::uint32_t b = 0; b < blocks_.size(); ++b) {
    const auto& info = blocks_[b];
    if (info.state != BlockInfo::State::kFull || info.valid_pages == 0)
      continue;
    if (info.reads_since_program >= config_.read_reclaim_threshold) {
      if (!evacuate(b, &stats_.reclaim_writes)) {
        read_only_ = true;
        return reclaimed;
      }
      erase_block(b);
      ++stats_.reclaims;
      ++reclaimed;
    }
  }
  return reclaimed;
}

std::uint32_t Ftl::max_pe() const {
  std::uint32_t m = 0;
  for (const auto& b : blocks_) m = std::max(m, b.pe_cycles);
  return m;
}

namespace {

constexpr std::uint32_t kSnapshotMagic = 0x52444654;  // "RDFT"
// v2 added a version field and the fault-stream RNG state (v1 snapshots
// silently reset the RNG on restore, which broke checkpoint/resume
// determinism for fault-injecting drives).
constexpr std::uint32_t kSnapshotVersion = 2;

void set_error(std::string* error, const char* message) {
  if (error != nullptr) *error = message;
}

using serialize::append_pod;
using serialize::read_pod;

}  // namespace

std::vector<std::uint8_t> Ftl::snapshot() const {
  std::vector<std::uint8_t> out;
  append_pod(&out, kSnapshotMagic);
  append_pod(&out, kSnapshotVersion);
  append_pod(&out, config_.blocks);
  append_pod(&out, config_.pages_per_block);
  append_pod(&out, now_days_);
  append_pod(&out, open_block_);
  append_pod(&out, free_count_);
  append_pod(&out, retired_count_);
  append_pod(&out, static_cast<std::uint8_t>(read_only_ ? 1 : 0));
  append_pod(&out, stats_);
  append_pod(&out, rng_.state());
  for (const auto& b : blocks_) append_pod(&out, b);
  for (const auto packed : l2p_) append_pod(&out, packed);
  for (const auto lpn : p2l_) append_pod(&out, lpn);
  const std::uint32_t crc = ecc::crc32(out);
  append_pod(&out, crc);
  return out;
}

bool Ftl::restore(const std::vector<std::uint8_t>& snapshot,
                  std::string* error) {
  if (snapshot.size() < 2 * sizeof(std::uint32_t) + sizeof(std::uint32_t)) {
    set_error(error, "ftl snapshot truncated: shorter than header + CRC");
    return false;
  }
  const std::size_t body = snapshot.size() - sizeof(std::uint32_t);
  std::uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, snapshot.data() + body, sizeof(stored_crc));
  if (ecc::crc32({snapshot.data(), body}) != stored_crc) {
    set_error(error, "ftl snapshot payload CRC mismatch (bit corruption)");
    return false;
  }

  std::size_t offset = 0;
  std::uint32_t magic = 0, version = 0, blocks = 0, ppb = 0;
  if (!read_pod(snapshot, &offset, &magic) || magic != kSnapshotMagic) {
    set_error(error, "ftl snapshot bad magic (not an FTL snapshot)");
    return false;
  }
  if (!read_pod(snapshot, &offset, &version) ||
      version != kSnapshotVersion) {
    set_error(error, "ftl snapshot unsupported version");
    return false;
  }
  if (!read_pod(snapshot, &offset, &blocks) ||
      !read_pod(snapshot, &offset, &ppb) || blocks != config_.blocks ||
      ppb != config_.pages_per_block) {
    set_error(error,
              "ftl snapshot geometry mismatch (blocks/pages_per_block "
              "differ from this drive's config)");
    return false;
  }

  Ftl staged(config_);
  std::uint8_t read_only_byte = 0;
  Rng::State rng_state;
  if (!read_pod(snapshot, &offset, &staged.now_days_) ||
      !read_pod(snapshot, &offset, &staged.open_block_) ||
      !read_pod(snapshot, &offset, &staged.free_count_) ||
      !read_pod(snapshot, &offset, &staged.retired_count_) ||
      !read_pod(snapshot, &offset, &read_only_byte) ||
      !read_pod(snapshot, &offset, &staged.stats_) ||
      !read_pod(snapshot, &offset, &rng_state)) {
    set_error(error, "ftl snapshot truncated inside scalar state");
    return false;
  }
  staged.read_only_ = read_only_byte != 0;
  staged.rng_.set_state(rng_state);
  for (auto& b : staged.blocks_)
    if (!read_pod(snapshot, &offset, &b)) {
      set_error(error, "ftl snapshot truncated inside block table");
      return false;
    }
  for (auto& packed : staged.l2p_)
    if (!read_pod(snapshot, &offset, &packed)) {
      set_error(error, "ftl snapshot truncated inside l2p table");
      return false;
    }
  for (auto& lpn : staged.p2l_)
    if (!read_pod(snapshot, &offset, &lpn)) {
      set_error(error, "ftl snapshot truncated inside p2l table");
      return false;
    }
  if (offset != body) {
    set_error(error, "ftl snapshot over-long: trailing bytes after payload");
    return false;
  }
  if (!staged.check_invariants()) {
    set_error(error,
              "ftl snapshot inconsistent: mapping invariants failed after "
              "decode");
    return false;
  }
  *this = std::move(staged);
  return true;
}

bool Ftl::check_invariants() const {
  std::vector<std::uint32_t> valid_count(blocks_.size(), 0);
  for (std::uint64_t lpn = 0; lpn < l2p_.size(); ++lpn) {
    const std::uint64_t packed = l2p_[lpn];
    if (packed == kUnmapped) continue;
    if (packed >= p2l_.size()) return false;
    if (p2l_[packed] != lpn) return false;
    ++valid_count[packed / config_.pages_per_block];
  }
  for (std::uint64_t phys = 0; phys < p2l_.size(); ++phys) {
    const std::uint64_t lpn = p2l_[phys];
    if (lpn == kUnmapped) continue;
    if (lpn >= l2p_.size() || l2p_[lpn] != phys) return false;
  }
  std::uint32_t free_seen = 0;
  std::uint32_t retired_seen = 0;
  for (std::uint32_t b = 0; b < blocks_.size(); ++b) {
    if (blocks_[b].valid_pages != valid_count[b]) return false;
    if (blocks_[b].state == BlockInfo::State::kFree) {
      if (valid_count[b] != 0) return false;
      ++free_seen;
    }
    if (blocks_[b].state == BlockInfo::State::kRetired) {
      // A retired block holds no valid data (retire evacuates first; a
      // failed evacuation leaves the block kFull, not kRetired).
      if (valid_count[b] != 0) return false;
      ++retired_seen;
    }
  }
  return free_seen == free_count_ && retired_seen == retired_count_;
}

}  // namespace rdsim::ftl
