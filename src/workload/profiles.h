// rdsim/workload/profiles.h
//
// Synthetic stand-ins for the paper's evaluation traces [38, 43, 65, 83,
// 89]. Each profile captures the published, behaviour-relevant properties
// of its trace family — read/write mix, working-set footprint, daily I/O
// volume, and read locality — because those are what determine per-block
// read disturb pressure between refreshes (the quantity Fig. 8 depends
// on). See DESIGN.md §4 for the substitution rationale.
#pragma once

#include <string>
#include <vector>

namespace rdsim::workload {

struct WorkloadProfile {
  std::string name;
  double read_fraction = 0.5;     ///< Fraction of page accesses that read.
  double footprint_fraction = 0.5;  ///< Fraction of the drive's logical
                                    ///< space the workload touches.
  double daily_page_ios = 2.0e6;  ///< Page-granularity accesses per day.
  double read_zipf_theta = 0.9;   ///< Read locality (higher = hotter).
  double write_zipf_theta = 0.6;  ///< Write locality.
  double mean_request_pages = 4.0;  ///< Average request size in pages.

  // Command-stream shaping (consumed by TraceGenerator::next_command();
  // the plain IoRequest stream is independent of these, so enabling them
  // never shifts existing request-replay results).
  double trim_fraction = 0.0;   ///< Fraction of write requests issued as
                                ///< kTrim (deallocate) instead of kWrite.
  double flush_period_s = 0.0;  ///< Host flush cadence in seconds
                                ///< (0 = the host never flushes).
};

/// The nine-trace evaluation suite mirroring the families the paper used:
/// Postmark (mail-server filesystem benchmark), FIU I/O-dedup homes/mail/
/// web-vm, MSR-Cambridge prn/proj/src, HP Cello99, and UMass Financial/
/// WebSearch.
std::vector<WorkloadProfile> standard_suite();

/// Looks up a profile by name; throws std::out_of_range if unknown.
WorkloadProfile profile_by_name(const std::string& name);

}  // namespace rdsim::workload
