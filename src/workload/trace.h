// rdsim/workload/trace.h
//
// I/O trace records consumed by the SSD simulator. The paper evaluates
// Vpass Tuning on real traces (MSR-Cambridge write off-loading, FIU I/O
// deduplication, Postmark, Cello99, UMass); we replay the same *kind* of
// streams from synthetic generators (see profiles.h) because the original
// trace files are not redistributable.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "host/command.h"

namespace rdsim::workload {

/// One host request, already normalized to page granularity.
struct IoRequest {
  double time_s = 0.0;       ///< Arrival time within the trace day.
  std::uint64_t lpn = 0;     ///< Logical page number of the first page.
  std::uint32_t pages = 1;   ///< Number of consecutive pages.
  bool is_write = false;
};

/// Aggregate statistics of a request stream.
struct TraceStats {
  std::uint64_t requests = 0;
  std::uint64_t read_pages = 0;
  std::uint64_t write_pages = 0;

  double read_fraction() const {
    const auto total = read_pages + write_pages;
    return total == 0 ? 0.0 : static_cast<double>(read_pages) / total;
  }
  void add(const IoRequest& r) {
    ++requests;
    (r.is_write ? write_pages : read_pages) += r.pages;
  }
};

/// Converts a replayed trace into the typed command stream the queued
/// host::Device interface consumes, preserving order and assigning
/// submission queues round-robin (implemented in trace_io.cc).
std::vector<host::Command> to_commands(const std::vector<IoRequest>& trace,
                                       std::uint16_t queues = 1);

}  // namespace rdsim::workload
