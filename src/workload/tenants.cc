#include "workload/tenants.h"

#include <algorithm>

#include "common/rng.h"

namespace rdsim::workload {

MultiTenantGenerator::MultiTenantGenerator(
    const std::vector<WorkloadProfile>& profiles, std::uint64_t logical_pages,
    std::uint64_t seed) {
  tenants_.reserve(profiles.size());
  for (std::size_t t = 0; t < profiles.size(); ++t) {
    // Each tenant draws from its own decorrelated stream, and generates
    // into one queue (queue assignment happens here, per tenant, so the
    // generator's internal round-robin stays inert).
    tenants_.emplace_back(profiles[t], logical_pages,
                          Rng::stream(seed, t).next(),
                          /*queues=*/static_cast<std::uint16_t>(1));
  }
}

std::vector<host::Command> MultiTenantGenerator::day_commands() {
  std::vector<host::Command> merged;
  for (std::uint32_t t = 0; t < tenant_count(); ++t) {
    std::vector<host::Command> day = tenants_[t].day_commands();
    for (host::Command& c : day) {
      c.tenant = static_cast<std::uint16_t>(t);
      c.queue = static_cast<std::uint16_t>(t);
    }
    merged.insert(merged.end(), day.begin(), day.end());
  }
  // Arrival-time merge; stable so same-instant arrivals keep tenant
  // order (each per-tenant day is already arrival-ordered).
  std::stable_sort(merged.begin(), merged.end(),
                   [](const host::Command& a, const host::Command& b) {
                     return a.submit_time_s < b.submit_time_s;
                   });
  return merged;
}

}  // namespace rdsim::workload
