// rdsim/workload/tenants.h
//
// MultiTenantGenerator: one decorrelated TraceGenerator per tenant,
// merged into a single arrival-ordered command stream for the queued
// device interface. Tenant t's commands are tagged tenant = t and routed
// to submission queue t (the cfg layer guarantees tenant count <=
// drive.queue_count, so each tenant owns a queue), and t's generator is
// seeded with Rng::stream(seed, t) — the same counter-based derivation
// discipline the experiment shards use, so tenant streams never depend
// on each other, on the tenant count, or on the thread count.
#pragma once

#include <cstdint>
#include <vector>

#include "host/command.h"
#include "workload/generator.h"
#include "workload/profiles.h"

namespace rdsim::workload {

class MultiTenantGenerator {
 public:
  /// One profile per tenant; `logical_pages` is the device's exported
  /// logical space, shared by every tenant (co-located workloads contend
  /// for the same flash — that is the point).
  MultiTenantGenerator(const std::vector<WorkloadProfile>& profiles,
                       std::uint64_t logical_pages, std::uint64_t seed);

  std::uint32_t tenant_count() const {
    return static_cast<std::uint32_t>(tenants_.size());
  }
  const WorkloadProfile& profile(std::uint32_t tenant) const {
    return tenants_[tenant].profile();
  }

  /// One full day of commands across all tenants, merged by arrival time
  /// (ties in tenant order — a deterministic merge of deterministic
  /// per-tenant streams).
  std::vector<host::Command> day_commands();

 private:
  std::vector<TraceGenerator> tenants_;
};

}  // namespace rdsim::workload
