// rdsim/workload/generator.h
//
// Turns a WorkloadProfile into a reproducible request stream. Reads and
// writes draw their logical pages from independent Zipf popularity
// rankings over the workload's footprint, with a per-workload random
// permutation so the hot set is not trivially the lowest addresses.
//
// Two equivalent front-ends:
//   * next()/day()                   — raw IoRequests (legacy replay);
//   * next_command()/day_commands()  — typed host::Commands for the
//     queued device interface, with the profile's trim fraction and
//     flush cadence overlaid and submission queues assigned round-robin.
// The command stream derives its trim/flush decisions from a separate
// RNG stream, so enabling them never perturbs the IoRequest sequence.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "common/rng.h"
#include "host/command.h"
#include "workload/profiles.h"
#include "workload/trace.h"
#include "workload/zipf.h"

namespace rdsim::workload {

class TraceGenerator {
 public:
  /// `logical_pages` is the drive's exported logical space; the workload
  /// touches the first footprint_fraction of it (after permutation).
  /// `queues` is the submission-queue fan-out commands are routed over.
  TraceGenerator(const WorkloadProfile& profile, std::uint64_t logical_pages,
                 std::uint64_t seed, std::uint16_t queues = 1);

  const WorkloadProfile& profile() const { return profile_; }
  std::uint64_t footprint_pages() const { return footprint_pages_; }
  std::uint16_t queues() const { return queues_; }

  /// Generates one request with Poisson-ish arrival spacing so that one
  /// simulated day contains ~daily_page_ios page accesses.
  IoRequest next();

  /// Generates a full day of requests (time_s in [0, 86400)).
  std::vector<IoRequest> day();

  /// Generates the next typed host command: the request stream of next()
  /// with the profile's trim fraction applied to writes, flushes emitted
  /// at the profile's cadence, and queues assigned round-robin.
  host::Command next_command();

  /// Generates a full day of typed commands (arrival-ordered).
  std::vector<host::Command> day_commands();

  /// The generator's complete mutable state (the Zipf tables and
  /// permutations are pure functions of the profile + seed and need no
  /// capture). Checkpointed by the fleet runner so a resumed run draws
  /// the exact same request stream — including hot-set persistence —
  /// as an uninterrupted one.
  struct SavedState {
    Rng::State rng;
    Rng::State command_rng;
    std::uint64_t command_seq = 0;
    double next_flush_s = 0.0;
    double clock_s = 0.0;
  };
  SavedState save_state() const {
    return {rng_.state(), command_rng_.state(), command_seq_, next_flush_s_,
            clock_s_};
  }
  void load_state(const SavedState& st) {
    rng_.set_state(st.rng);
    command_rng_.set_state(st.command_rng);
    command_seq_ = st.command_seq;
    next_flush_s_ = st.next_flush_s;
    clock_s_ = st.clock_s;
  }

 private:
  /// Maps a popularity rank to a logical page, spreading hot ranks across
  /// the footprint deterministically. Reads and writes use different
  /// permutations (`salt`): in real systems the read-hot set is largely
  /// disjoint from the write-hot set, and that disjointness is what lets
  /// read counts accumulate on a block between refreshes.
  std::uint64_t rank_to_lpn(std::uint64_t rank, std::uint64_t salt) const;

  /// Round-robin submission-queue router.
  std::uint16_t route();

  WorkloadProfile profile_;
  std::uint64_t footprint_pages_;
  ZipfSampler read_ranks_;
  ZipfSampler write_ranks_;
  Rng rng_;
  Rng command_rng_;  ///< Trim decisions only; decoupled from rng_ so the
                     ///< IoRequest stream is independent of trim config.
  std::uint16_t queues_;
  std::uint64_t command_seq_ = 0;
  double next_flush_s_ = std::numeric_limits<double>::infinity();
  double clock_s_ = 0.0;
  double mean_interarrival_s_;
};

}  // namespace rdsim::workload
