// rdsim/workload/generator.h
//
// Turns a WorkloadProfile into a reproducible request stream. Reads and
// writes draw their logical pages from independent Zipf popularity
// rankings over the workload's footprint, with a per-workload random
// permutation so the hot set is not trivially the lowest addresses.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "workload/profiles.h"
#include "workload/trace.h"
#include "workload/zipf.h"

namespace rdsim::workload {

class TraceGenerator {
 public:
  /// `logical_pages` is the drive's exported logical space; the workload
  /// touches the first footprint_fraction of it (after permutation).
  TraceGenerator(const WorkloadProfile& profile, std::uint64_t logical_pages,
                 std::uint64_t seed);

  const WorkloadProfile& profile() const { return profile_; }
  std::uint64_t footprint_pages() const { return footprint_pages_; }

  /// Generates one request with Poisson-ish arrival spacing so that one
  /// simulated day contains ~daily_page_ios page accesses.
  IoRequest next();

  /// Generates a full day of requests (time_s in [0, 86400)).
  std::vector<IoRequest> day();

 private:
  /// Maps a popularity rank to a logical page, spreading hot ranks across
  /// the footprint deterministically. Reads and writes use different
  /// permutations (`salt`): in real systems the read-hot set is largely
  /// disjoint from the write-hot set, and that disjointness is what lets
  /// read counts accumulate on a block between refreshes.
  std::uint64_t rank_to_lpn(std::uint64_t rank, std::uint64_t salt) const;

  WorkloadProfile profile_;
  std::uint64_t footprint_pages_;
  ZipfSampler read_ranks_;
  ZipfSampler write_ranks_;
  Rng rng_;
  double clock_s_ = 0.0;
  double mean_interarrival_s_;
};

}  // namespace rdsim::workload
