#include "workload/zipf.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace rdsim::workload {
namespace {

// Integral of x^-theta from a to b (a,b >= 1).
double power_integral(double theta, double a, double b) {
  if (b <= a) return 0.0;
  if (std::abs(theta - 1.0) < 1e-12) return std::log(b / a);
  return (std::pow(b, 1.0 - theta) - std::pow(a, 1.0 - theta)) / (1.0 - theta);
}

}  // namespace

ZipfSampler::ZipfSampler(std::uint64_t n, double theta)
    : n_(n), theta_(theta) {
  assert(n >= 1);
  assert(theta >= 0.0);
  const std::uint64_t head = std::min(n_, kHead);
  head_cdf_.resize(head);
  double acc = 0.0;
  for (std::uint64_t k = 0; k < head; ++k) {
    acc += std::pow(static_cast<double>(k + 1), -theta_);
    head_cdf_[k] = acc;
  }
  head_mass_ = acc;
  // Tail mass via the midpoint-continuity approximation:
  // sum_{k=head+1..n} k^-theta ~= integral over [head+0.5, n+0.5].
  tail_norm_ = n_ > head ? power_integral(theta_, static_cast<double>(head) + 0.5,
                                          static_cast<double>(n_) + 0.5)
                         : 0.0;
  harmonic_ = head_mass_ + tail_norm_;
}

std::uint64_t ZipfSampler::sample(Rng& rng) const {
  const double u = rng.uniform() * harmonic_;
  if (u < head_mass_ || tail_norm_ == 0.0) {
    const auto it = std::lower_bound(head_cdf_.begin(), head_cdf_.end(),
                                     std::min(u, head_mass_));
    return static_cast<std::uint64_t>(it - head_cdf_.begin());
  }
  // Invert the continuous tail CDF.
  const double frac = (u - head_mass_) / tail_norm_;
  const double a = static_cast<double>(std::min(n_, kHead)) + 0.5;
  const double b = static_cast<double>(n_) + 0.5;
  double x;
  if (std::abs(theta_ - 1.0) < 1e-12) {
    x = a * std::pow(b / a, frac);
  } else {
    const double pa = std::pow(a, 1.0 - theta_);
    const double pb = std::pow(b, 1.0 - theta_);
    x = std::pow(pa + frac * (pb - pa), 1.0 / (1.0 - theta_));
  }
  const auto rank = static_cast<std::uint64_t>(x - 0.5);
  return std::min(rank, n_ - 1);
}

double ZipfSampler::pmf(std::uint64_t rank) const {
  assert(rank < n_);
  return std::pow(static_cast<double>(rank + 1), -theta_) / harmonic_;
}

}  // namespace rdsim::workload
