#include "workload/trace_io.h"

#include <algorithm>
#include <charconv>
#include <cstdio>
#include <stdexcept>

namespace rdsim::workload {
namespace {

/// Strips surrounding whitespace (spaces, tabs, CR — so CRLF line endings
/// just work) and then one pair of surrounding double quotes, if present.
/// MSR exports from spreadsheet tooling quote fields; embedded commas are
/// out of scope (the format has none), so a simple strip suffices.
std::string clean_field(const std::string& raw) {
  std::size_t b = 0;
  std::size_t e = raw.size();
  while (b < e && (raw[b] == ' ' || raw[b] == '\t' || raw[b] == '\r')) ++b;
  while (e > b &&
         (raw[e - 1] == ' ' || raw[e - 1] == '\t' || raw[e - 1] == '\r'))
    --e;
  if (e - b >= 2 && raw[b] == '"' && raw[e - 1] == '"') {
    ++b;
    --e;
  }
  return raw.substr(b, e - b);
}

std::vector<std::string> split(const std::string& line, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const auto pos = line.find(sep, start);
    if (pos == std::string::npos) {
      out.push_back(clean_field(line.substr(start)));
      break;
    }
    out.push_back(clean_field(line.substr(start, pos - start)));
    start = pos + 1;
  }
  return out;
}

/// "line N: " prefix for parse errors, empty when the caller did not
/// supply a line number (line_no == 0).
std::string at_line(std::uint64_t line_no) {
  if (line_no == 0) return {};
  return "line " + std::to_string(line_no) + ": ";
}

std::uint64_t parse_u64(const std::string& s, const char* what,
                        std::uint64_t line_no) {
  std::uint64_t v = 0;
  const auto* begin = s.data();
  const auto* end = s.data() + s.size();
  const auto result = std::from_chars(begin, end, v);
  if (result.ec != std::errc{} || result.ptr != end)
    throw std::runtime_error(at_line(line_no) + "bad " + what + ": '" + s +
                             "'");
  return v;
}

double parse_double(const std::string& s, const char* what,
                    std::uint64_t line_no) {
  try {
    std::size_t used = 0;
    const double v = std::stod(s, &used);
    if (used != s.size()) throw std::invalid_argument(s);
    return v;
  } catch (const std::exception&) {
    throw std::runtime_error(at_line(line_no) + "bad " + what + ": '" + s +
                             "'");
  }
}

/// Blank (including a lone "\r" from a CRLF blank line) or #-comment.
bool is_skippable(const std::string& line) {
  for (char c : line) {
    if (c == ' ' || c == '\t' || c == '\r') continue;
    return c == '#';
  }
  return true;
}

}  // namespace

void write_trace_csv(std::ostream& out, const std::vector<IoRequest>& trace) {
  out << "time_s,op,lpn,pages\n";
  char buf[96];
  for (const auto& r : trace) {
    std::snprintf(buf, sizeof(buf), "%.6f,%c,%llu,%u\n", r.time_s,
                  r.is_write ? 'W' : 'R',
                  static_cast<unsigned long long>(r.lpn), r.pages);
    out << buf;
  }
}

bool parse_csv_trace_line(const std::string& line, IoRequest* out,
                          std::uint64_t line_no) {
  if (is_skippable(line)) return false;
  const auto fields = split(line, ',');
  if (!fields.empty() && fields[0] == "time_s") return false;  // header
  if (fields.size() != 4)
    throw std::runtime_error(at_line(line_no) + "bad trace row: '" + line +
                             "'");
  out->time_s = parse_double(fields[0], "time", line_no);
  if (fields[1] != "R" && fields[1] != "W")
    throw std::runtime_error(at_line(line_no) + "bad op: '" + fields[1] + "'");
  out->is_write = fields[1] == "W";
  out->lpn = parse_u64(fields[2], "lpn", line_no);
  out->pages =
      static_cast<std::uint32_t>(parse_u64(fields[3], "pages", line_no));
  if (out->pages == 0)
    throw std::runtime_error(at_line(line_no) +
                             "zero-size request: '" + line + "'");
  return true;
}

std::vector<IoRequest> read_trace_csv(std::istream& in) {
  std::vector<IoRequest> trace;
  std::string line;
  std::uint64_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    IoRequest r;
    if (parse_csv_trace_line(line, &r, line_no)) trace.push_back(r);
  }
  return trace;
}

bool parse_msr_line(const std::string& line, std::uint32_t page_bytes,
                    std::uint64_t first_tick, IoRequest* out,
                    std::uint64_t line_no) {
  if (is_skippable(line)) return false;
  const auto fields = split(line, ',');
  if (fields.size() < 6)
    throw std::runtime_error(at_line(line_no) + "bad MSR row: '" + line + "'");
  const std::uint64_t ticks = parse_u64(fields[0], "timestamp", line_no);
  const std::string& type = fields[3];
  const std::uint64_t offset = parse_u64(fields[4], "offset", line_no);
  const std::uint64_t size = parse_u64(fields[5], "size", line_no);
  if (size == 0)
    throw std::runtime_error(at_line(line_no) +
                             "zero-size request: '" + line + "'");
  out->time_s = static_cast<double>(ticks - first_tick) * 1e-7;
  out->is_write = type == "Write" || type == "write" || type == "W";
  out->lpn = offset / page_bytes;
  const std::uint64_t last = (offset + size - 1) / page_bytes;
  out->pages = static_cast<std::uint32_t>(last - out->lpn + 1);
  return true;
}

std::uint64_t msr_timestamp_ticks(const std::string& line,
                                  std::uint64_t line_no) {
  const auto fields = split(line, ',');
  if (fields.empty() || fields[0].empty())
    throw std::runtime_error(at_line(line_no) + "bad MSR row: '" + line + "'");
  return parse_u64(fields[0], "timestamp", line_no);
}

std::vector<IoRequest> read_msr_trace(std::istream& in,
                                      std::uint32_t page_bytes) {
  std::vector<IoRequest> trace;
  std::string line;
  std::uint64_t line_no = 0;
  std::uint64_t first_tick = 0;
  bool have_first = false;
  while (std::getline(in, line)) {
    ++line_no;
    if (is_skippable(line)) continue;
    if (!have_first) {
      first_tick = msr_timestamp_ticks(line, line_no);
      have_first = true;
    }
    IoRequest r;
    if (parse_msr_line(line, page_bytes, first_tick, &r, line_no))
      trace.push_back(r);
  }
  return trace;
}

std::vector<host::Command> to_commands(const std::vector<IoRequest>& trace,
                                       std::uint16_t queues) {
  const std::uint16_t n = std::max<std::uint16_t>(1, queues);
  std::vector<host::Command> out;
  out.reserve(trace.size());
  std::uint64_t seq = 0;
  for (const IoRequest& r : trace) {
    host::Command c;
    c.kind = r.is_write ? host::CommandKind::kWrite : host::CommandKind::kRead;
    c.lpn = r.lpn;
    c.pages = r.pages;
    c.submit_time_s = r.time_s;
    c.queue = static_cast<std::uint16_t>(seq++ % n);
    out.push_back(c);
  }
  return out;
}

}  // namespace rdsim::workload
