#include "workload/trace_io.h"

#include <algorithm>
#include <charconv>
#include <cstdio>
#include <stdexcept>

namespace rdsim::workload {
namespace {

std::vector<std::string> split(const std::string& line, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const auto pos = line.find(sep, start);
    if (pos == std::string::npos) {
      out.push_back(line.substr(start));
      break;
    }
    out.push_back(line.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::uint64_t parse_u64(const std::string& s, const char* what) {
  std::uint64_t v = 0;
  const auto* begin = s.data();
  const auto* end = s.data() + s.size();
  const auto result = std::from_chars(begin, end, v);
  if (result.ec != std::errc{} || result.ptr != end)
    throw std::runtime_error(std::string("bad ") + what + ": '" + s + "'");
  return v;
}

double parse_double(const std::string& s, const char* what) {
  try {
    std::size_t used = 0;
    const double v = std::stod(s, &used);
    if (used != s.size()) throw std::invalid_argument(s);
    return v;
  } catch (const std::exception&) {
    throw std::runtime_error(std::string("bad ") + what + ": '" + s + "'");
  }
}

}  // namespace

void write_trace_csv(std::ostream& out, const std::vector<IoRequest>& trace) {
  out << "time_s,op,lpn,pages\n";
  char buf[96];
  for (const auto& r : trace) {
    std::snprintf(buf, sizeof(buf), "%.6f,%c,%llu,%u\n", r.time_s,
                  r.is_write ? 'W' : 'R',
                  static_cast<unsigned long long>(r.lpn), r.pages);
    out << buf;
  }
}

std::vector<IoRequest> read_trace_csv(std::istream& in) {
  std::vector<IoRequest> trace;
  std::string line;
  bool first = true;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (first && line.rfind("time_s", 0) == 0) {
      first = false;
      continue;
    }
    first = false;
    const auto fields = split(line, ',');
    if (fields.size() != 4)
      throw std::runtime_error("bad trace row: '" + line + "'");
    IoRequest r;
    r.time_s = parse_double(fields[0], "time");
    if (fields[1] != "R" && fields[1] != "W")
      throw std::runtime_error("bad op: '" + fields[1] + "'");
    r.is_write = fields[1] == "W";
    r.lpn = parse_u64(fields[2], "lpn");
    r.pages = static_cast<std::uint32_t>(parse_u64(fields[3], "pages"));
    trace.push_back(r);
  }
  return trace;
}

bool parse_msr_line(const std::string& line, std::uint32_t page_bytes,
                    std::uint64_t first_tick, IoRequest* out) {
  if (line.empty() || line[0] == '#') return false;
  const auto fields = split(line, ',');
  if (fields.size() < 6)
    throw std::runtime_error("bad MSR row: '" + line + "'");
  const std::uint64_t ticks = parse_u64(fields[0], "timestamp");
  const std::string& type = fields[3];
  const std::uint64_t offset = parse_u64(fields[4], "offset");
  const std::uint64_t size = parse_u64(fields[5], "size");
  out->time_s = static_cast<double>(ticks - first_tick) * 1e-7;
  out->is_write = type == "Write" || type == "write" || type == "W";
  out->lpn = offset / page_bytes;
  const std::uint64_t last = (offset + (size == 0 ? 1 : size) - 1) / page_bytes;
  out->pages = static_cast<std::uint32_t>(last - out->lpn + 1);
  return true;
}

std::vector<IoRequest> read_msr_trace(std::istream& in,
                                      std::uint32_t page_bytes) {
  std::vector<IoRequest> trace;
  std::string line;
  std::uint64_t first_tick = 0;
  bool have_first = false;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    if (!have_first) {
      // Peek the timestamp to rebase.
      const auto fields = split(line, ',');
      if (fields.empty())
        throw std::runtime_error("bad MSR row: '" + line + "'");
      first_tick = parse_u64(fields[0], "timestamp");
      have_first = true;
    }
    IoRequest r;
    if (parse_msr_line(line, page_bytes, first_tick, &r)) trace.push_back(r);
  }
  return trace;
}

std::vector<host::Command> to_commands(const std::vector<IoRequest>& trace,
                                       std::uint16_t queues) {
  const std::uint16_t n = std::max<std::uint16_t>(1, queues);
  std::vector<host::Command> out;
  out.reserve(trace.size());
  std::uint64_t seq = 0;
  for (const IoRequest& r : trace) {
    host::Command c;
    c.kind = r.is_write ? host::CommandKind::kWrite : host::CommandKind::kRead;
    c.lpn = r.lpn;
    c.pages = r.pages;
    c.submit_time_s = r.time_s;
    c.queue = static_cast<std::uint16_t>(seq++ % n);
    out.push_back(c);
  }
  return out;
}

}  // namespace rdsim::workload
