// rdsim/workload/zipf.h
//
// Zipf(theta) sampler over [0, n). Contemporary storage workloads
// concentrate reads on a small set of hot data — the paper names this
// uneven read distribution as the reason some blocks rapidly exceed the
// read counts at which read disturb errors appear (§1) — and Zipfian
// popularity is the standard model for it.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace rdsim::workload {

class ZipfSampler {
 public:
  /// Zipf over n items with skew theta >= 0 (0 = uniform). Items are
  /// ranked: item 0 is the most popular.
  ZipfSampler(std::uint64_t n, double theta);

  std::uint64_t n() const { return n_; }
  double theta() const { return theta_; }

  /// Draws one rank in [0, n).
  std::uint64_t sample(Rng& rng) const;

  /// Probability mass of the given rank.
  double pmf(std::uint64_t rank) const;

 private:
  std::uint64_t n_;
  double theta_;
  /// CDF over the first `kHead` ranks; the tail is sampled via the
  /// continuous approximation (bounded-pareto inversion), which is accurate
  /// for large ranks and keeps construction O(kHead) even for huge n.
  std::vector<double> head_cdf_;
  double head_mass_ = 0.0;
  double tail_norm_ = 0.0;
  double harmonic_ = 0.0;  ///< Generalized harmonic number H_{n,theta}.

  static constexpr std::uint64_t kHead = 4096;
};

}  // namespace rdsim::workload
