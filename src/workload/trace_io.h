// rdsim/workload/trace_io.h
//
// Trace file I/O: lets the SSD simulator replay externally supplied
// traces and lets the generators export their streams for inspection.
// Two formats:
//   * rdsim CSV: "time_s,op,lpn,pages" with op in {R, W};
//   * MSR-Cambridge SNIA format: "Timestamp,Hostname,DiskNumber,Type,
//     Offset,Size,ResponseTime" with byte offsets/sizes, converted to
//     page granularity on load (the trace family the paper evaluates on).
//
// The line parsers tolerate real-world file noise: CRLF line endings,
// whitespace around fields, and quoted (embedded-comma-free) fields.
// Malformed rows throw std::runtime_error; when the caller supplies a
// nonzero line number the message is prefixed "line N: " so a bad row
// deep in a multi-gigabyte trace is findable. Streaming ingestion with
// bounded memory lives above this in replay::StreamingTraceReader.
#pragma once

#include <cstdint>
#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "workload/trace.h"

namespace rdsim::workload {

/// Writes requests in rdsim CSV format (with a header line).
void write_trace_csv(std::ostream& out, const std::vector<IoRequest>& trace);

/// Reads rdsim CSV (header line optional). Throws std::runtime_error on
/// malformed rows.
std::vector<IoRequest> read_trace_csv(std::istream& in);

/// Parses one rdsim-CSV record. Returns false for blank/comment lines
/// and the "time_s,..." header; throws std::runtime_error (line-numbered
/// when `line_no` > 0) on malformed rows.
bool parse_csv_trace_line(const std::string& line, IoRequest* out,
                          std::uint64_t line_no = 0);

/// Parses one MSR-Cambridge record into page granularity. Returns false
/// for blank/comment lines. Throws std::runtime_error (line-numbered
/// when `line_no` > 0) on malformed rows and on zero-size requests.
/// MSR timestamps are Windows ticks (100 ns); they are rebased by the
/// caller-supplied `first_tick` (pass 0 to keep absolute seconds).
bool parse_msr_line(const std::string& line, std::uint32_t page_bytes,
                    std::uint64_t first_tick, IoRequest* out,
                    std::uint64_t line_no = 0);

/// Raw timestamp ticks of one MSR record (same field cleaning as
/// parse_msr_line) — what a streaming reader needs to rebase a trace
/// without holding it: the tick does not survive a round-trip through
/// IoRequest::time_s (doubles lose integer precision above 2^53).
std::uint64_t msr_timestamp_ticks(const std::string& line,
                                  std::uint64_t line_no = 0);

/// Reads a full MSR-Cambridge trace; timestamps are rebased so the first
/// record is t = 0.
std::vector<IoRequest> read_msr_trace(std::istream& in,
                                      std::uint32_t page_bytes = 8192);

}  // namespace rdsim::workload
