#include "workload/profiles.h"

#include <stdexcept>

namespace rdsim::workload {

std::vector<WorkloadProfile> standard_suite() {
  // Read fractions and locality reconstructed from the published
  // descriptions of each trace family: UMass WebSearch is ~99% reads with
  // extreme locality; Financial (OLTP) is write-heavy; MSR volumes span
  // the middle; Postmark and Cello99 are mixed filesystem loads; the FIU
  // dedup traces are read-mostly desktop/server images.
  // Write locality is high (>= 1.0) across the suite: real volumes
  // concentrate writes on a small hot set, which is what lets read-hot
  // blocks survive long enough to accumulate disturb between refreshes.
  // Daily volumes are a few percent of the footprint (as on real volumes)
  // while reads concentrate heavily (theta ~0.75-1.15): read-hot blocks
  // then survive between weekly refreshes and absorb 5K-300K reads per
  // interval, the disturb regime the paper characterizes.
  //
  // The last two columns shape the typed command stream only (the raw
  // IoRequest replay ignores them): filesystem and mail workloads issue
  // deletes, so a few percent of their write traffic arrives as trim;
  // OLTP (umass-fin) syncs aggressively, so it flushes every few minutes,
  // while the read-only WebSearch trace never trims or flushes.
  return {
      {"postmark", 0.45, 0.30, 2.5e5, 0.95, 1.05, 4.0, 0.05, 1800.0},
      {"fiu-homes", 0.62, 0.40, 1.8e5, 1.00, 1.10, 4.0, 0.04, 3600.0},
      {"fiu-mail", 0.70, 0.35, 3.0e5, 0.95, 1.10, 2.0, 0.05, 1800.0},
      {"fiu-web-vm", 0.78, 0.25, 2.2e5, 1.10, 1.00, 4.0, 0.02, 3600.0},
      {"msr-prn", 0.25, 0.55, 1.5e5, 0.80, 1.15, 8.0, 0.08, 900.0},
      {"msr-proj", 0.55, 0.60, 2.0e5, 0.90, 1.10, 8.0, 0.06, 1800.0},
      {"msr-src", 0.65, 0.45, 1.6e5, 0.95, 1.05, 8.0, 0.05, 1800.0},
      {"cello99", 0.40, 0.50, 1.2e5, 0.85, 1.10, 4.0, 0.0, 0.0},
      {"umass-fin", 0.20, 0.35, 2.8e5, 0.75, 1.20, 2.0, 0.01, 300.0},
      {"umass-web", 0.99, 0.45, 4.0e5, 1.15, 0.80, 2.0, 0.0, 0.0},
  };
}

WorkloadProfile profile_by_name(const std::string& name) {
  for (const auto& p : standard_suite())
    if (p.name == name) return p;
  throw std::out_of_range("unknown workload profile: " + name);
}

}  // namespace rdsim::workload
