#include "workload/generator.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace rdsim::workload {

TraceGenerator::TraceGenerator(const WorkloadProfile& profile,
                               std::uint64_t logical_pages,
                               std::uint64_t seed, std::uint16_t queues)
    : profile_(profile),
      footprint_pages_(std::max<std::uint64_t>(
          1, static_cast<std::uint64_t>(profile.footprint_fraction *
                                        static_cast<double>(logical_pages)))),
      read_ranks_(footprint_pages_, profile.read_zipf_theta),
      write_ranks_(footprint_pages_, profile.write_zipf_theta),
      rng_(seed),
      command_rng_(Rng::stream(seed, 0x636d64 /* "cmd" */)),
      queues_(std::max<std::uint16_t>(1, queues)) {
  const double requests_per_day =
      profile_.daily_page_ios / profile_.mean_request_pages;
  mean_interarrival_s_ = 86400.0 / std::max(1.0, requests_per_day);
  if (profile_.flush_period_s > 0.0) next_flush_s_ = profile_.flush_period_s;
}

std::uint64_t TraceGenerator::rank_to_lpn(std::uint64_t rank,
                                          std::uint64_t salt) const {
  // Fibonacci-hash permutation of ranks onto the footprint: deterministic,
  // cheap, and spreads the hot set over the address space.
  const std::uint64_t h = (rank ^ salt) * 0x9E3779B97F4A7C15ULL;
  return h % footprint_pages_;
}

IoRequest TraceGenerator::next() {
  IoRequest r;
  clock_s_ += rng_.exponential(1.0 / mean_interarrival_s_);
  r.time_s = clock_s_;
  r.is_write = !rng_.bernoulli(profile_.read_fraction);
  const auto& ranks = r.is_write ? write_ranks_ : read_ranks_;
  r.lpn = rank_to_lpn(ranks.sample(rng_),
                      r.is_write ? 0x9D9F1C7E3B5A2D4FULL : 0);
  // Geometric request sizes with the profile's mean.
  const double p = 1.0 / profile_.mean_request_pages;
  std::uint32_t pages = 1;
  while (pages < 64 && !rng_.bernoulli(p)) ++pages;
  r.pages = pages;
  return r;
}

std::vector<IoRequest> TraceGenerator::day() {
  std::vector<IoRequest> out;
  const double day_end = clock_s_ + 86400.0;
  out.reserve(static_cast<std::size_t>(profile_.daily_page_ios /
                                       profile_.mean_request_pages * 1.1));
  while (true) {
    IoRequest r = next();
    if (r.time_s >= day_end) {
      clock_s_ = day_end;
      break;
    }
    out.push_back(r);
  }
  return out;
}

std::uint16_t TraceGenerator::route() {
  return static_cast<std::uint16_t>(command_seq_++ % queues_);
}

host::Command TraceGenerator::next_command() {
  host::Command c;
  // A due flush goes out before the next request is drawn, stamped at the
  // current clock so the stream stays arrival-ordered.
  if (clock_s_ >= next_flush_s_) {
    next_flush_s_ += profile_.flush_period_s;
    c.kind = host::CommandKind::kFlush;
    c.lpn = 0;
    c.pages = 0;
    c.submit_time_s = clock_s_;
    c.queue = route();
    return c;
  }
  const IoRequest r = next();
  c.lpn = r.lpn;
  c.pages = r.pages;
  c.submit_time_s = r.time_s;
  c.kind = !r.is_write ? host::CommandKind::kRead
           : command_rng_.bernoulli(profile_.trim_fraction)
               ? host::CommandKind::kTrim
               : host::CommandKind::kWrite;
  c.queue = route();
  return c;
}

std::vector<host::Command> TraceGenerator::day_commands() {
  std::vector<host::Command> out;
  const double day_end = clock_s_ + 86400.0;
  out.reserve(static_cast<std::size_t>(profile_.daily_page_ios /
                                       profile_.mean_request_pages * 1.1));
  while (true) {
    host::Command c = next_command();
    if (c.submit_time_s >= day_end) {
      clock_s_ = day_end;
      break;
    }
    out.push_back(c);
  }
  return out;
}

}  // namespace rdsim::workload
