// rdsim/ecc/bch.h
//
// Binary primitive BCH codec — the error-correcting code used inside NAND
// flash controllers. Systematic encoding via generator-polynomial division;
// decoding via syndrome computation, Berlekamp-Massey, and Chien search.
//
// The code is constructed over GF(2^m) with design distance 2t+1 and may be
// *shortened*: `data_bits` of payload plus `parity_bits()` of parity, with
// data_bits + parity_bits() <= 2^m - 1.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "ecc/gf.h"

namespace rdsim::ecc {

/// Bit container used by the codec: one byte per bit (0/1). Chosen for
/// clarity; the microbenchmarks quantify the cost.
using BitVec = std::vector<std::uint8_t>;

/// Outcome of a decode attempt.
struct DecodeResult {
  bool ok = false;               ///< True if decoding succeeded.
  int corrected = 0;             ///< Number of bit corrections applied.
  BitVec data;                   ///< Recovered payload (valid when ok).
};

/// A shortened binary BCH(n, k, t) code.
class BchCode {
 public:
  /// Builds the code. Requires 3 <= m <= 16, t >= 1, data_bits >= 1, and
  /// data_bits + m*t' <= 2^m - 1 where t' is the achieved parity size.
  BchCode(int m, int t, int data_bits);

  int m() const { return gf_.m(); }
  int t() const { return t_; }
  int data_bits() const { return data_bits_; }
  int parity_bits() const { return static_cast<int>(generator_.size()) - 1; }
  int codeword_bits() const { return data_bits_ + parity_bits(); }

  /// Systematic encode: returns data followed by parity.
  /// Requires data.size() == data_bits().
  BitVec encode(const BitVec& data) const;

  /// Decodes a received word of codeword_bits() bits. Succeeds iff the
  /// error pattern has weight <= t (or is a more-probable coset leader the
  /// code happens to decode); returns the corrected payload.
  DecodeResult decode(const BitVec& received) const;

  /// Convenience: number of bit positions in which two words differ.
  static int hamming_distance(const BitVec& a, const BitVec& b);

 private:
  /// Computes syndromes S_1..S_2t of the received polynomial. Returns true
  /// if all are zero (no detectable error).
  bool syndromes(const BitVec& received, std::vector<std::uint32_t>* s) const;

  GaloisField gf_;
  int t_;
  int data_bits_;
  std::vector<std::uint8_t> generator_;  // g(x) coefficients, degree order.
};

}  // namespace rdsim::ecc
