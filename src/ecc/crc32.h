// rdsim/ecc/crc32.h
//
// CRC-32 (IEEE 802.3, reflected) used by the FTL to protect mapping-table
// snapshots and by tests as a cheap whole-page integrity check on top of
// BCH.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace rdsim::ecc {

/// CRC-32 of a byte span (init 0xFFFFFFFF, final xor 0xFFFFFFFF).
std::uint32_t crc32(std::span<const std::uint8_t> data);

/// Incremental interface: feed chunks, then finish.
class Crc32 {
 public:
  void update(std::span<const std::uint8_t> data);
  std::uint32_t value() const { return state_ ^ 0xFFFFFFFFU; }

 private:
  std::uint32_t state_ = 0xFFFFFFFFU;
};

}  // namespace rdsim::ecc
