#include "ecc/crc32.h"

#include <array>

namespace rdsim::ecc {
namespace {

std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k)
      c = (c & 1) ? 0xEDB88320U ^ (c >> 1) : c >> 1;
    table[i] = c;
  }
  return table;
}

const std::array<std::uint32_t, 256>& table() {
  static const auto t = make_table();
  return t;
}

}  // namespace

void Crc32::update(std::span<const std::uint8_t> data) {
  const auto& t = table();
  for (std::uint8_t byte : data)
    state_ = t[(state_ ^ byte) & 0xFFU] ^ (state_ >> 8);
}

std::uint32_t crc32(std::span<const std::uint8_t> data) {
  Crc32 crc;
  crc.update(data);
  return crc.value();
}

}  // namespace rdsim::ecc
