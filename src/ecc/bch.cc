#include "ecc/bch.h"

#include <algorithm>
#include <cassert>
#include <set>

namespace rdsim::ecc {
namespace {

// Multiplies two polynomials over GF(2) (coefficients 0/1, degree order).
std::vector<std::uint8_t> poly_mul_gf2(const std::vector<std::uint8_t>& a,
                                       const std::vector<std::uint8_t>& b) {
  std::vector<std::uint8_t> out(a.size() + b.size() - 1, 0);
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (!a[i]) continue;
    for (std::size_t j = 0; j < b.size(); ++j) out[i + j] ^= b[j];
  }
  return out;
}

}  // namespace

BchCode::BchCode(int m, int t, int data_bits)
    : gf_(m), t_(t), data_bits_(data_bits) {
  assert(t >= 1 && data_bits >= 1);
  // Build g(x) = lcm of minimal polynomials of alpha^1 .. alpha^{2t}.
  // Gather the union of cyclotomic cosets of exponents 1..2t, then for each
  // coset form its minimal polynomial prod (x - alpha^j) over GF(2^m); the
  // result has binary coefficients.
  std::set<std::uint32_t> covered;
  generator_ = {1};  // g(x) = 1
  const std::uint32_t n = gf_.n();
  for (std::uint32_t e = 1; e <= static_cast<std::uint32_t>(2 * t); ++e) {
    if (covered.count(e)) continue;
    // Cyclotomic coset of e: {e, 2e, 4e, ...} mod n.
    std::vector<std::uint32_t> coset;
    std::uint32_t cur = e;
    do {
      coset.push_back(cur);
      covered.insert(cur);
      cur = static_cast<std::uint32_t>(
          (static_cast<std::uint64_t>(cur) * 2) % n);
    } while (cur != e);
    // Minimal polynomial: product of (x + alpha^j) over the coset, computed
    // with GF(2^m) coefficients; it collapses to binary coefficients.
    std::vector<std::uint32_t> min_poly = {1};  // degree-0 poly "1"
    for (std::uint32_t j : coset) {
      const std::uint32_t root = gf_.alpha_pow(j);
      std::vector<std::uint32_t> next(min_poly.size() + 1, 0);
      for (std::size_t k = 0; k < min_poly.size(); ++k) {
        next[k + 1] ^= min_poly[k];               // x * term
        next[k] ^= gf_.mul(min_poly[k], root);    // root * term
      }
      min_poly = std::move(next);
    }
    std::vector<std::uint8_t> min_poly_bin(min_poly.size());
    for (std::size_t k = 0; k < min_poly.size(); ++k) {
      assert(min_poly[k] <= 1 && "minimal polynomial must be binary");
      min_poly_bin[k] = static_cast<std::uint8_t>(min_poly[k]);
    }
    generator_ = poly_mul_gf2(generator_, min_poly_bin);
  }
  assert(data_bits_ + parity_bits() <= static_cast<int>(n) &&
         "shortened code must fit in the BCH length");
}

BitVec BchCode::encode(const BitVec& data) const {
  assert(static_cast<int>(data.size()) == data_bits_);
  const int r = parity_bits();
  // Systematic encoding: remainder of data(x) * x^r divided by g(x).
  // Work in a shift register of r bits.
  std::vector<std::uint8_t> reg(r, 0);
  for (int i = data_bits_ - 1; i >= 0; --i) {
    const std::uint8_t feedback = data[i] ^ reg[r - 1];
    for (int j = r - 1; j > 0; --j)
      reg[j] = reg[j - 1] ^ (feedback & generator_[j]);
    reg[0] = feedback & generator_[0];
  }
  // Parity is transmitted highest power first: vector position k+j holds
  // the coefficient of x^{r-1-j}, matching the syndrome power map.
  BitVec out(data);
  out.insert(out.end(), reg.rbegin(), reg.rend());
  return out;
}

bool BchCode::syndromes(const BitVec& received,
                        std::vector<std::uint32_t>* s) const {
  // Received word layout: data bits 0..k-1 then parity bits; as a
  // polynomial, bit i (counting parity first) is the coefficient of x^i.
  // We evaluate at alpha^j for j = 1..2t. Bit position p in the vector
  // corresponds to polynomial power: parity occupies low powers.
  const int r = parity_bits();
  const int total = codeword_bits();
  s->assign(2 * t_, 0);
  bool all_zero = true;
  for (int p = 0; p < total; ++p) {
    // Power of x for vector index p: data bit i (p < k) sits at power r+i;
    // parity bit j (p >= k) sits at power r-1-(p-k).
    const int power = p < data_bits_ ? r + p : r - 1 - (p - data_bits_);
    if (!received[p]) continue;
    for (int j = 1; j <= 2 * t_; ++j) {
      (*s)[j - 1] ^= gf_.alpha_pow(static_cast<std::int64_t>(power) * j);
    }
    all_zero = false;
  }
  if (all_zero) return true;
  for (int j = 1; j <= 2 * t_; ++j)
    if ((*s)[j - 1] != 0) return false;
  return true;
}

DecodeResult BchCode::decode(const BitVec& received) const {
  assert(static_cast<int>(received.size()) == codeword_bits());
  DecodeResult result;
  std::vector<std::uint32_t> s;
  if (syndromes(received, &s)) {
    result.ok = true;
    result.data.assign(received.begin(), received.begin() + data_bits_);
    return result;
  }

  // Berlekamp-Massey: find the error locator polynomial sigma(x).
  std::vector<std::uint32_t> sigma = {1}, prev = {1};
  std::uint32_t b = 1;
  int l = 0, mshift = 1;
  for (int i = 0; i < 2 * t_; ++i) {
    // Discrepancy d = S_{i+1} + sum_{j=1..l} sigma_j * S_{i+1-j}.
    std::uint32_t d = s[i];
    for (int j = 1; j <= l && j < static_cast<int>(sigma.size()); ++j) {
      if (i - j >= 0) d ^= gf_.mul(sigma[j], s[i - j]);
    }
    if (d == 0) {
      ++mshift;
      continue;
    }
    if (2 * l <= i) {
      const std::vector<std::uint32_t> tmp = sigma;
      // sigma = sigma - (d/b) x^mshift * prev
      const std::uint32_t coef = gf_.div(d, b);
      if (sigma.size() < prev.size() + mshift)
        sigma.resize(prev.size() + mshift, 0);
      for (std::size_t j = 0; j < prev.size(); ++j)
        sigma[j + mshift] ^= gf_.mul(coef, prev[j]);
      l = i + 1 - l;
      prev = tmp;
      b = d;
      mshift = 1;
    } else {
      const std::uint32_t coef = gf_.div(d, b);
      if (sigma.size() < prev.size() + mshift)
        sigma.resize(prev.size() + mshift, 0);
      for (std::size_t j = 0; j < prev.size(); ++j)
        sigma[j + mshift] ^= gf_.mul(coef, prev[j]);
      ++mshift;
    }
  }
  while (!sigma.empty() && sigma.back() == 0) sigma.pop_back();
  const int degree = static_cast<int>(sigma.size()) - 1;
  if (degree > t_) return result;  // Uncorrectable: too many errors.

  // Chien search over the used (shortened) positions only. The error
  // locator has roots at alpha^{-power} for each error power.
  const int r = parity_bits();
  const int total = codeword_bits();
  BitVec corrected(received);
  int found = 0;
  for (int p = 0; p < total; ++p) {
    const int power = p < data_bits_ ? r + p : r - 1 - (p - data_bits_);
    // Evaluate sigma at alpha^{-power}.
    std::uint32_t v = 0;
    for (std::size_t j = 0; j < sigma.size(); ++j) {
      if (sigma[j] == 0) continue;
      v ^= gf_.mul(sigma[j],
                   gf_.alpha_pow(-static_cast<std::int64_t>(power) *
                                 static_cast<std::int64_t>(j)));
    }
    if (v == 0) {
      corrected[p] ^= 1;
      ++found;
    }
  }
  if (found != degree) return result;  // Locator roots outside the word.

  // Verify the correction actually produced a codeword.
  std::vector<std::uint32_t> s2;
  if (!syndromes(corrected, &s2)) return result;

  result.ok = true;
  result.corrected = found;
  result.data.assign(corrected.begin(), corrected.begin() + data_bits_);
  return result;
}

int BchCode::hamming_distance(const BitVec& a, const BitVec& b) {
  assert(a.size() == b.size());
  int d = 0;
  for (std::size_t i = 0; i < a.size(); ++i) d += a[i] != b[i];
  return d;
}

}  // namespace rdsim::ecc
