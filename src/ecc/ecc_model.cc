#include "ecc/ecc_model.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace rdsim::ecc {

EccModel::EccModel(const EccConfig& config) : config_(config) {
  assert(config_.codeword_data_bits > 0);
  assert(config_.correctable_bits >= 0);
  assert(config_.codewords_per_page > 0);
  assert(config_.reserved_margin >= 0.0 && config_.reserved_margin < 1.0);
}

double EccModel::rber_capability() const {
  return static_cast<double>(config_.correctable_bits) /
         static_cast<double>(config_.codeword_data_bits);
}

int EccModel::usable_capability() const {
  return static_cast<int>(std::floor((1.0 - config_.reserved_margin) *
                                     config_.correctable_bits));
}

int EccModel::margin(int max_estimated_errors) const {
  return std::max(0, usable_capability() - max_estimated_errors);
}

double EccModel::codeword_failure_prob(double rber) const {
  const int n = config_.codeword_data_bits;
  const int c = config_.correctable_bits;
  if (rber <= 0.0) return 0.0;
  if (rber >= 1.0) return 1.0;
  // P(X > c), X ~ Binomial(n, rber). Sum the head in log-space for
  // numerical stability; n*rber is small (<= ~40) in all our regimes, so
  // the head has few dominant terms.
  double head = 0.0;
  double log_term = n * std::log1p(-rber);  // k = 0 term
  head += std::exp(log_term);
  for (int k = 1; k <= c; ++k) {
    log_term += std::log(static_cast<double>(n - k + 1) / k) +
                std::log(rber) - std::log1p(-rber);
    head += std::exp(log_term);
  }
  return std::clamp(1.0 - head, 0.0, 1.0);
}

double EccModel::page_failure_prob(double rber) const {
  const double cw_ok = 1.0 - codeword_failure_prob(rber);
  return 1.0 - std::pow(cw_ok, config_.codewords_per_page);
}

double EccModel::expected_errors(double rber) const {
  return rber * config_.codeword_data_bits;
}

}  // namespace rdsim::ecc
