// rdsim/ecc/ecc_model.h
//
// Capability-level ECC abstraction used by the simulator's controller
// logic. The paper reasons about ECC as "can correct up to C raw bit errors
// per codeword, RBER capability ~1e-3, with 20% of the capability held in
// reserve" — this class captures exactly that arithmetic, while BchCode
// (bch.h) provides a bit-true realization for the integration tests.
#pragma once

#include <cstdint>

namespace rdsim::ecc {

/// Static description of the ECC provisioning of a flash page.
struct EccConfig {
  int codeword_data_bits = 8192;  ///< Payload bits per codeword (1 KiB).
  int correctable_bits = 9;       ///< C: max raw bit errors per codeword.
  int codewords_per_page = 8;     ///< 8 KiB page -> 8 codewords.
  double reserved_margin = 0.20;  ///< Fraction of C reserved (paper §3).

  /// The paper's provisioning ratio: ECC tolerates an RBER of ~1e-3
  /// (9 bits per 1 KiB codeword), 8 codewords per 8 KiB page.
  static EccConfig paper_provisioning() { return EccConfig{}; }

  /// Stronger provisioning matched to the Monte Carlo chip's 8192-bit
  /// pages (one codeword per page, t = 40 — a typical modern BCH).
  static EccConfig mc_provisioning() {
    return EccConfig{8192, 40, 1, 0.20};
  }
};

/// Pure arithmetic over an EccConfig; cheap enough to call per simulated
/// page read.
class EccModel {
 public:
  explicit EccModel(const EccConfig& config = EccConfig{});

  const EccConfig& config() const { return config_; }

  /// C: correctable raw bit errors per codeword.
  int capability() const { return config_.correctable_bits; }

  /// RBER at which a codeword is exactly at capability (C / data bits).
  double rber_capability() const;

  /// Usable error budget per codeword after the reserved margin:
  /// floor((1 - reserved) * C). The paper's M = (1-0.2)C - MEE uses this.
  int usable_capability() const;

  /// True if a codeword with `errors` raw bit errors decodes.
  bool correctable(int errors) const { return errors <= capability(); }

  /// Remaining margin M for a codeword whose worst observed error count is
  /// `max_estimated_errors` (MEE): M = usable_capability() - MEE, clamped
  /// at 0.
  int margin(int max_estimated_errors) const;

  /// Probability that a codeword fails to decode when each bit flips
  /// independently with probability `rber` (binomial upper tail beyond C).
  double codeword_failure_prob(double rber) const;

  /// Probability that at least one codeword in a page fails at `rber`.
  double page_failure_prob(double rber) const;

  /// Expected raw bit errors per codeword at `rber`.
  double expected_errors(double rber) const;

 private:
  EccConfig config_;
};

}  // namespace rdsim::ecc
