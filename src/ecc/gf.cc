#include "ecc/gf.h"

#include <cassert>

namespace rdsim::ecc {
namespace {

// Primitive polynomials over GF(2), indexed by degree m (bit i = coeff of
// x^i). Standard minimal-weight choices.
constexpr std::uint32_t kPrimPoly[17] = {
    0, 0, 0,
    0b1011,                // m=3:  x^3+x+1
    0b10011,               // m=4:  x^4+x+1
    0b100101,              // m=5:  x^5+x^2+1
    0b1000011,             // m=6:  x^6+x+1
    0b10001001,            // m=7:  x^7+x^3+1
    0b100011101,           // m=8:  x^8+x^4+x^3+x^2+1
    0b1000010001,          // m=9:  x^9+x^4+1
    0b10000001001,         // m=10: x^10+x^3+1
    0b100000000101,        // m=11: x^11+x^2+1
    0b1000001010011,       // m=12: x^12+x^6+x^4+x+1
    0b10000000011011,      // m=13: x^13+x^4+x^3+x+1
    0b100010001000011,     // m=14: x^14+x^10+x^6+x+1
    0b1000000000000011,    // m=15: x^15+x+1
    0b10001000000001011,   // m=16: x^16+x^12+x^3+x+1
};

}  // namespace

GaloisField::GaloisField(int m) : m_(m), n_((1U << m) - 1) {
  assert(m >= 3 && m <= 16);
  exp_.resize(2 * n_);
  log_.assign(n_ + 1, 0);
  const std::uint32_t poly = kPrimPoly[m];
  std::uint32_t x = 1;
  for (std::uint32_t i = 0; i < n_; ++i) {
    exp_[i] = x;
    log_[x] = i;
    x <<= 1;
    if (x > n_) x ^= poly;
  }
  assert(x == 1 && "polynomial must be primitive");
  for (std::uint32_t i = 0; i < n_; ++i) exp_[n_ + i] = exp_[i];
}

std::uint32_t GaloisField::alpha_pow(std::int64_t i) const {
  std::int64_t r = i % static_cast<std::int64_t>(n_);
  if (r < 0) r += n_;
  return exp_[static_cast<std::size_t>(r)];
}

std::uint32_t GaloisField::log(std::uint32_t x) const {
  assert(x != 0 && x <= n_);
  return log_[x];
}

std::uint32_t GaloisField::mul(std::uint32_t a, std::uint32_t b) const {
  if (a == 0 || b == 0) return 0;
  return exp_[log_[a] + log_[b]];
}

std::uint32_t GaloisField::div(std::uint32_t a, std::uint32_t b) const {
  assert(b != 0);
  if (a == 0) return 0;
  return exp_[log_[a] + n_ - log_[b]];
}

std::uint32_t GaloisField::inv(std::uint32_t x) const {
  assert(x != 0);
  return exp_[n_ - log_[x]];
}

std::uint32_t GaloisField::pow(std::uint32_t a, std::uint64_t e) const {
  if (e == 0) return 1;
  if (a == 0) return 0;
  const std::uint64_t le = (static_cast<std::uint64_t>(log_[a]) * e) % n_;
  return exp_[static_cast<std::size_t>(le)];
}

}  // namespace rdsim::ecc
