// rdsim/ecc/gf.h
//
// Arithmetic over the binary extension field GF(2^m), 3 <= m <= 16, using
// log/antilog tables. This is the algebra underneath the BCH codec that
// models the error correction engine in a flash controller.
#pragma once

#include <cstdint>
#include <vector>

namespace rdsim::ecc {

/// GF(2^m) with a fixed primitive polynomial per m. Element 0 is the field
/// zero; nonzero elements are powers of the primitive element alpha.
class GaloisField {
 public:
  /// Constructs GF(2^m). Requires 3 <= m <= 16.
  explicit GaloisField(int m);

  int m() const { return m_; }
  /// Number of nonzero elements (2^m - 1); also the order of alpha.
  std::uint32_t n() const { return n_; }

  /// alpha^i for any integer exponent (reduced mod n).
  std::uint32_t alpha_pow(std::int64_t i) const;

  /// Discrete log of a nonzero element. Requires x != 0.
  std::uint32_t log(std::uint32_t x) const;

  std::uint32_t add(std::uint32_t a, std::uint32_t b) const { return a ^ b; }
  std::uint32_t mul(std::uint32_t a, std::uint32_t b) const;
  /// Requires b != 0.
  std::uint32_t div(std::uint32_t a, std::uint32_t b) const;
  /// Requires x != 0.
  std::uint32_t inv(std::uint32_t x) const;
  std::uint32_t sqr(std::uint32_t a) const { return mul(a, a); }
  /// a^e with e >= 0.
  std::uint32_t pow(std::uint32_t a, std::uint64_t e) const;

 private:
  int m_;
  std::uint32_t n_;
  std::vector<std::uint32_t> exp_;  // exp_[i] = alpha^i, doubled for wrap.
  std::vector<std::uint32_t> log_;
};

}  // namespace rdsim::ecc
