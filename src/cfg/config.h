// rdsim/cfg/config.h
//
// cfg::Config: a dependency-free INI-style key-value parser — the textual
// front door of the config-driven scenario layer. Files are line-based:
// `[section]` headers, `key = value` pairs (flattened to "section.key"),
// `#`/`;` comments (full-line or trailing), and blank lines. The parser
// never throws; every problem becomes a cfg::Diagnostic carrying the
// line number and offending key, so `rdsim --config` can print the
// complete list and exit non-zero instead of stopping at the first typo.
//
// Typed accessors (get_string / get_u64 / get_double / get_bool) mark
// the key consumed and report bad values as diagnostics while returning
// the caller's fallback. After a spec parse has consumed everything it
// understands, report_unknown() turns each untouched entry into an
// unknown-key diagnostic — so misspelled keys are always surfaced rather
// than silently ignored (the classic config-file failure mode).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace rdsim::cfg {

/// One problem found while parsing or validating a config. `line` is
/// 1-based (0 = not tied to a source line, e.g. a missing required key);
/// `key` is the flattened "section.key" when one is implicated.
struct Diagnostic {
  int line = 0;
  std::string key;
  std::string message;
};

/// Renders diagnostics one per line as "line N: key 'k': message" for
/// CLI error output.
std::string format_diagnostics(const std::vector<Diagnostic>& diags);

class Config {
 public:
  /// Parses INI text. Malformed lines and duplicate keys are appended to
  /// `diags` (never null); parsing continues past them (last duplicate
  /// wins on lookup).
  static Config parse(const std::string& text,
                      std::vector<Diagnostic>* diags);

  /// Reads and parses a file; an unreadable path is itself a diagnostic.
  static Config parse_file(const std::string& path,
                           std::vector<Diagnostic>* diags);

  bool has(const std::string& key) const;

  /// Typed lookups: mark the key consumed; on a malformed value append a
  /// bad-value diagnostic and return `fallback`.
  std::string get_string(const std::string& key, const std::string& fallback,
                         std::vector<Diagnostic>* diags);
  std::uint64_t get_u64(const std::string& key, std::uint64_t fallback,
                        std::vector<Diagnostic>* diags);
  double get_double(const std::string& key, double fallback,
                    std::vector<Diagnostic>* diags);
  bool get_bool(const std::string& key, bool fallback,
                std::vector<Diagnostic>* diags);

  /// Appends an unknown-key diagnostic for every entry no accessor has
  /// consumed — call after the spec parse has claimed all keys it knows.
  void report_unknown(std::vector<Diagnostic>* diags) const;

  /// All entries in file order as (flattened key, raw value) — the
  /// round-trip surface the parser tests pin.
  std::vector<std::pair<std::string, std::string>> items() const;

 private:
  struct Entry {
    std::string key;
    std::string value;
    int line = 0;
    bool consumed = false;
  };

  /// Latest entry for `key` (duplicates: last wins), marking it and any
  /// shadowed duplicates consumed; nullptr when absent.
  Entry* find(const std::string& key);

  std::vector<Entry> entries_;
};

}  // namespace rdsim::cfg
