// rdsim/cfg/spec.h
//
// The typed scenario schema over cfg::Config: DriveSpec (which backend,
// its geometry and policy knobs), WorkloadSpec (a named trace profile
// plus overrides), and ScenarioSpec (drive + workload + replay shape).
// parse_scenario() maps a parsed Config onto the schema, validating as
// it goes — enum values, ranges, required keys — and then flags every
// key it did not consume as unknown. A spec that parses with zero
// diagnostics is guaranteed constructible: host::make_device accepts any
// valid DriveSpec and the scenario experiment any valid ScenarioSpec.
//
// The full key reference (every key, type, default, validation rule)
// lives in docs/CONFIG.md; examples/configs/ holds runnable files.
// Deliberately NOT in the schema: the seed (the CLI --seed governs all
// randomness so one flag reruns a scenario on a fresh universe) and the
// worker count (results never depend on it; --threads stays a pure
// performance knob).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cfg/config.h"
#include "host/arbitration.h"
#include "replay/options.h"
#include "workload/profiles.h"

namespace rdsim::cfg {

/// Which drive engine services the scenario's commands.
enum class Backend {
  kAnalytic,          ///< Serial ssd::Ssd (FTL + closed-form RBER).
  kMcChip,            ///< Serial per-cell Monte Carlo chip.
  kShardedMc,         ///< N Monte Carlo chips, RAID-0 striped.
  kShardedAnalytic,   ///< N analytic drives, RAID-0 striped.
};

const char* backend_name(Backend backend);
bool backend_from_name(const std::string& name, Backend* out);

/// Flash reliability parameter set (flash::FlashModelParams preset).
enum class FlashModel { k2ynm, kEarly3d };

/// Deterministic fault injection ([faults] section). All knobs default to
/// "inject nothing"; with every knob at its default the simulation is
/// bit-identical to a build without the fault layer (the fault RNG
/// streams are never drawn from).
struct FaultSpec {
  /// Per-host-page-write program failure probability (analytic backends:
  /// the failing block retires to the grown-defect table).
  double program_fail_prob = 0.0;
  /// Per-erase failure probability (analytic backends).
  double erase_fail_prob = 0.0;
  /// Probability a (block, page, program) is latently uncorrectable on
  /// the Monte Carlo backends (no recovery step can decode it).
  double latent_page_prob = 0.0;
  /// Monte Carlo die-kill: at the end of day `die_kill_day`, the chip of
  /// shard `die_kill_shard` dies wholesale (reads uncorrectable, writes
  /// failed). die_kill_day < 0 (default) never kills.
  std::uint32_t die_kill_shard = 0;
  double die_kill_day = -1.0;

  /// True when any knob would actually inject something.
  bool any() const {
    return program_fail_prob > 0.0 || erase_fail_prob > 0.0 ||
           latent_page_prob > 0.0 || die_kill_day >= 0.0;
  }
};

struct DriveSpec {
  Backend backend = Backend::kAnalytic;
  FlashModel flash_model = FlashModel::k2ynm;
  std::uint32_t shards = 4;       ///< Sharded backends: stripe width.
  std::uint32_t queue_count = 4;  ///< NVMe-style submission queues.

  /// Shared geometry: blocks per drive (serial) or per shard (sharded).
  std::uint32_t blocks = 2048;

  // Analytic backends: FTL shape and mitigation policy.
  std::uint32_t pages_per_block = 256;
  double overprovision = 0.125;
  std::uint32_t gc_free_target = 8;
  double refresh_interval_days = 7.0;
  std::uint64_t read_reclaim_threshold = 0;
  bool vpass_tuning = true;
  std::uint32_t spare_blocks = 4;  ///< Grown-defect budget before the
                                   ///< drive goes read-only.

  // Monte Carlo backends: chip geometry and characterization pre-aging.
  std::uint32_t wordlines_per_block = 64;
  std::uint32_t bitlines = 8192;
  std::uint64_t pre_wear_pe = 0;  ///< P/E wear applied to every block
                                  ///< before the replay starts.

  FaultSpec faults;  ///< [faults] section; defaults inject nothing.

  bool is_sharded() const {
    return backend == Backend::kShardedMc ||
           backend == Backend::kShardedAnalytic;
  }
  bool is_analytic() const {
    return backend == Backend::kAnalytic ||
           backend == Backend::kShardedAnalytic;
  }
};

struct WorkloadSpec {
  /// The resolved profile: the named standard_suite() entry with any
  /// config overrides (daily_page_ios, trim_fraction, ...) applied.
  workload::WorkloadProfile profile;
};

/// Real-trace replay ([trace] section). When `path` is set the scenario
/// replays that trace file through src/replay instead of generating
/// synthetic traffic from the workload profile (which then becomes
/// optional). Defaults mirror replay::ReplayOptions.
struct TraceSpec {
  std::string path;  ///< Trace file; empty = no trace replay.
  replay::TraceFormat format = replay::TraceFormat::kAuto;
  replay::RemapPolicy remap = replay::RemapPolicy::kModulo;
  replay::ReplayMode mode = replay::ReplayMode::kOpen;
  std::uint32_t queue_depth = 16;  ///< Closed-loop outstanding commands.
  double speedup = 1.0;            ///< Open-loop time compression factor.
  std::uint32_t page_bytes = 8192; ///< MSR byte-offset -> page conversion.

  bool enabled() const { return !path.empty(); }
};

/// Fleet-scale lifetime simulation ([fleet] section). When `drives` is
/// set the scenario becomes a fleet run: N analytic drives simulated
/// over a multi-year horizon with lifecycle tracking (degraded /
/// read-only / replaced), per-drive fault rates drawn from fleet-level
/// distributions, and periodic whole-fleet checkpoints.
struct FleetSpec {
  std::uint32_t drives = 0;  ///< Fleet size; 0 = no [fleet] section.
  double years = 2.0;        ///< Simulated horizon.
  /// Reporting epoch: the fleet table gains one row set per interval.
  std::uint32_t report_interval_days = 30;
  /// Checkpoint cadence in reporting epochs (a checkpoint is written
  /// after every k-th epoch). 0 = checkpoint only on interruption.
  std::uint32_t checkpoint_every = 0;
  /// Every k-th drive is a "teardown" drive: its analytic state is
  /// cross-checked against a sampled Monte Carlo chip each epoch for
  /// ground-truth RBER. 0 = no teardown sampling.
  std::uint32_t teardown_every = 0;
  /// Median per-drive program/erase fault probability; each drive draws
  /// its own rate from a lognormal around this median (sigma below) via
  /// a counter-based stream, so drive i's rate never depends on fleet
  /// size or thread count. 0 injects nothing.
  double pe_fail_prob_median = 0.0;
  double fault_rate_sigma = 0.0;  ///< Lognormal sigma of the rate draw.
  bool replace_failed = true;     ///< Swap in a fresh drive after
                                  ///< read-only failure + rebuild.
  double rebuild_days = 1.0;      ///< Downtime + rebuild traffic window.

  bool enabled() const { return drives > 0; }
};

/// One tenant of a multi-tenant scenario: its arbitration parameters
/// plus the workload profile generating its traffic (the scenario's
/// [workload] profile with the per-tenant overrides applied).
struct TenantSpec {
  double weight = 1.0;        ///< Share under the weighted policy (> 0).
  double deadline_us = 1000.0;  ///< Latency target under deadline (EDF).
  workload::WorkloadProfile profile;
};

/// Multi-tenant QoS ([tenants] section). When `tenants` is non-empty the
/// scenario splits the workload into one decorrelated stream per tenant
/// (tenant t submits on queue t) and installs the arbitration policy on
/// the device. A single-tenant [tenants] section reproduces the untagged
/// scenario byte-for-byte (the policies all degenerate to FIFO with one
/// tenant — the bit-transparency test in tests/test_arbitration.cc).
struct TenantsSpec {
  host::ArbitrationPolicy policy = host::ArbitrationPolicy::kFifo;
  std::vector<TenantSpec> tenants;

  bool enabled() const { return !tenants.empty(); }
  std::uint32_t count() const {
    return static_cast<std::uint32_t>(tenants.size());
  }
  /// The device-side arbitration table this section configures.
  host::ArbitrationConfig arbitration() const;
};

struct ScenarioSpec {
  std::string name = "scenario";
  int days = 2;                   ///< Simulated days to replay.
  std::uint32_t queue_depth = 4;  ///< Closed-loop outstanding commands.
  bool warm_fill = true;          ///< Pre-fill the FTL before measuring
                                  ///< (analytic backends only).
  DriveSpec drive;
  WorkloadSpec workload;
  TraceSpec trace;  ///< Optional [trace] replay; see TraceSpec.enabled().
  FleetSpec fleet;  ///< Optional [fleet] run; see FleetSpec.enabled().
  TenantsSpec tenants;  ///< Optional [tenants] QoS; see TenantsSpec.enabled().
};

/// Parses and validates a scenario from `config`, consuming every key it
/// understands and reporting the rest as unknown. Appends all problems
/// to `diags`; the returned spec is only meaningful when no diagnostics
/// were added (callers check diags->empty()).
ScenarioSpec parse_scenario(Config& config, std::vector<Diagnostic>* diags);

}  // namespace rdsim::cfg
