// rdsim/cfg/profiles.h
//
// Named built-in scenario profiles: canned ScenarioSpecs covering the
// drive archetypes the paper's evaluation implies, runnable without a
// config file via `rdsim --run scenario --profile <name>` and listed by
// `rdsim --list-profiles`. A profile is exactly equivalent to a config
// file on disk — the factory and the scenario experiment see only the
// spec — so examples/configs/ mirrors the interesting ones in file form.
#pragma once

#include <string>
#include <vector>

#include "cfg/spec.h"

namespace rdsim::cfg {

struct Profile {
  std::string name;
  std::string description;  ///< One line for --list-profiles.
  ScenarioSpec spec;
};

/// All built-in profiles, in listing order. The first entry is the
/// default scenario (what `--run scenario` does with no --config or
/// --profile) and is pinned by the golden-experiment CRCs.
const std::vector<Profile>& builtin_profiles();

/// Looks up a profile by name; nullptr when unknown.
const Profile* find_profile(const std::string& name);

}  // namespace rdsim::cfg
