#include "cfg/config.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace rdsim::cfg {

namespace {

std::string trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

}  // namespace

std::string format_diagnostics(const std::vector<Diagnostic>& diags) {
  std::ostringstream out;
  for (const Diagnostic& d : diags) {
    if (d.line > 0) out << "line " << d.line << ": ";
    if (!d.key.empty()) out << "key '" << d.key << "': ";
    out << d.message << "\n";
  }
  return out.str();
}

Config Config::parse(const std::string& text,
                     std::vector<Diagnostic>* diags) {
  Config config;
  std::istringstream in(text);
  std::string raw;
  std::string section;
  int line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    // Comments run to end of line, whether the line starts with one or a
    // key-value pair precedes it; no value in the schema contains # or ;.
    const std::size_t comment = raw.find_first_of("#;");
    if (comment != std::string::npos) raw.resize(comment);
    const std::string line = trim(raw);
    if (line.empty()) continue;

    if (line.front() == '[') {
      if (line.back() != ']' || line.size() < 3) {
        diags->push_back({line_no, "", "malformed section header"});
        continue;
      }
      section = trim(line.substr(1, line.size() - 2));
      continue;
    }

    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) {
      diags->push_back(
          {line_no, "", "expected 'key = value' or '[section]'"});
      continue;
    }
    const std::string name = trim(line.substr(0, eq));
    if (name.empty()) {
      diags->push_back({line_no, "", "empty key before '='"});
      continue;
    }
    Entry entry;
    entry.key = section.empty() ? name : section + "." + name;
    entry.value = trim(line.substr(eq + 1));
    entry.line = line_no;
    for (const Entry& prev : config.entries_) {
      if (prev.key == entry.key) {
        std::ostringstream msg;
        msg << "duplicate key (previously set on line " << prev.line
            << "; the later value wins)";
        diags->push_back({line_no, entry.key, msg.str()});
        break;
      }
    }
    config.entries_.push_back(std::move(entry));
  }
  return config;
}

Config Config::parse_file(const std::string& path,
                          std::vector<Diagnostic>* diags) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    diags->push_back({0, "", "cannot open config file '" + path + "'"});
    return Config{};
  }
  std::ostringstream text;
  text << in.rdbuf();
  return parse(text.str(), diags);
}

Config::Entry* Config::find(const std::string& key) {
  Entry* found = nullptr;
  for (Entry& e : entries_) {
    if (e.key == key) {
      e.consumed = true;  // Shadowed duplicates are known keys too.
      found = &e;
    }
  }
  return found;
}

bool Config::has(const std::string& key) const {
  for (const Entry& e : entries_)
    if (e.key == key) return true;
  return false;
}

std::string Config::get_string(const std::string& key,
                               const std::string& fallback,
                               std::vector<Diagnostic>* diags) {
  (void)diags;  // Any text is a valid string.
  const Entry* e = find(key);
  return e != nullptr ? e->value : fallback;
}

std::uint64_t Config::get_u64(const std::string& key, std::uint64_t fallback,
                              std::vector<Diagnostic>* diags) {
  Entry* e = find(key);
  if (e == nullptr) return fallback;
  const char* s = e->value.c_str();
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(s, &end, 10);
  if (e->value.empty() || *end != '\0' || errno == ERANGE ||
      e->value.front() == '-') {
    diags->push_back({e->line, key,
                      "expected a non-negative integer, got '" + e->value +
                          "'"});
    return fallback;
  }
  return static_cast<std::uint64_t>(v);
}

double Config::get_double(const std::string& key, double fallback,
                          std::vector<Diagnostic>* diags) {
  Entry* e = find(key);
  if (e == nullptr) return fallback;
  const char* s = e->value.c_str();
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(s, &end);
  if (e->value.empty() || *end != '\0' || errno == ERANGE) {
    diags->push_back(
        {e->line, key, "expected a number, got '" + e->value + "'"});
    return fallback;
  }
  return v;
}

bool Config::get_bool(const std::string& key, bool fallback,
                      std::vector<Diagnostic>* diags) {
  Entry* e = find(key);
  if (e == nullptr) return fallback;
  const std::string& v = e->value;
  if (v == "true" || v == "yes" || v == "on" || v == "1") return true;
  if (v == "false" || v == "no" || v == "off" || v == "0") return false;
  diags->push_back(
      {e->line, key, "expected true/false, got '" + v + "'"});
  return fallback;
}

void Config::report_unknown(std::vector<Diagnostic>* diags) const {
  for (const Entry& e : entries_)
    if (!e.consumed) diags->push_back({e.line, e.key, "unknown key"});
}

std::vector<std::pair<std::string, std::string>> Config::items() const {
  std::vector<std::pair<std::string, std::string>> out;
  out.reserve(entries_.size());
  for (const Entry& e : entries_) out.emplace_back(e.key, e.value);
  return out;
}

}  // namespace rdsim::cfg
