#include "cfg/profiles.h"

namespace rdsim::cfg {

namespace {

Profile make_paper_mlc() {
  Profile p;
  p.name = "paper-mlc";
  p.description =
      "Paper-faithful serial analytic MLC drive (2y-nm params, Vpass "
      "tuning on) replaying the FIU web-vm trace stand-in";
  p.spec.name = p.name;
  p.spec.days = 3;
  p.spec.drive.backend = Backend::kAnalytic;
  p.spec.drive.blocks = 512;
  p.spec.drive.pages_per_block = 128;
  p.spec.drive.overprovision = 0.2;
  p.spec.drive.gc_free_target = 4;
  p.spec.drive.vpass_tuning = true;
  p.spec.workload.profile = workload::profile_by_name("fiu-web-vm");
  p.spec.workload.profile.trim_fraction = 0.10;
  p.spec.workload.profile.flush_period_s = 400.0;
  return p;
}

Profile make_dense_tlc() {
  Profile p;
  p.name = "dense-tlc";
  p.description =
      "Dense-TLC-like analytic drive (early-3D params, taller blocks, "
      "thin overprovisioning, read reclaim armed) on the mail-server mix";
  p.spec.name = p.name;
  p.spec.days = 3;
  p.spec.drive.backend = Backend::kAnalytic;
  p.spec.drive.flash_model = FlashModel::kEarly3d;
  p.spec.drive.blocks = 256;
  p.spec.drive.pages_per_block = 384;
  p.spec.drive.overprovision = 0.07;
  p.spec.drive.gc_free_target = 4;
  p.spec.drive.refresh_interval_days = 3.0;
  p.spec.drive.read_reclaim_threshold = 2000;
  p.spec.workload.profile = workload::profile_by_name("fiu-mail");
  return p;
}

Profile make_server_8chip() {
  Profile p;
  p.name = "server-8chip";
  p.description =
      "8-chip server drive on the per-cell Monte Carlo backend, "
      "pre-aged 8k P/E, striped RAID-0 with per-chip timelines";
  p.spec.name = p.name;
  p.spec.days = 2;
  p.spec.queue_depth = 8;
  p.spec.drive.backend = Backend::kShardedMc;
  p.spec.drive.shards = 8;
  p.spec.drive.blocks = 4;
  p.spec.drive.wordlines_per_block = 64;
  p.spec.drive.bitlines = 8192;
  p.spec.drive.pre_wear_pe = 8000;
  p.spec.workload.profile = workload::profile_by_name("postmark");
  p.spec.workload.profile.daily_page_ios = 24000.0;
  return p;
}

Profile make_sharded_analytic() {
  Profile p;
  p.name = "sharded-analytic";
  p.description =
      "4-way sharded analytic drive: four independent FTLs striped "
      "RAID-0, each running its own GC/refresh/tuning maintenance";
  p.spec.name = p.name;
  p.spec.days = 3;
  p.spec.drive.backend = Backend::kShardedAnalytic;
  p.spec.drive.shards = 4;
  p.spec.drive.blocks = 128;
  p.spec.drive.pages_per_block = 128;
  p.spec.drive.overprovision = 0.2;
  p.spec.drive.gc_free_target = 4;
  p.spec.workload.profile = workload::profile_by_name("fiu-web-vm");
  p.spec.workload.profile.trim_fraction = 0.10;
  p.spec.workload.profile.flush_period_s = 400.0;
  return p;
}

}  // namespace

const std::vector<Profile>& builtin_profiles() {
  static const std::vector<Profile> profiles = {
      make_paper_mlc(),
      make_dense_tlc(),
      make_server_8chip(),
      make_sharded_analytic(),
  };
  return profiles;
}

const Profile* find_profile(const std::string& name) {
  for (const Profile& p : builtin_profiles())
    if (p.name == name) return &p;
  return nullptr;
}

}  // namespace rdsim::cfg
