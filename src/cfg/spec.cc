#include "cfg/spec.h"

#include <limits>
#include <sstream>

namespace rdsim::cfg {

namespace {

struct BackendName {
  const char* name;
  Backend backend;
};

constexpr BackendName kBackends[] = {
    {"analytic", Backend::kAnalytic},
    {"mc_chip", Backend::kMcChip},
    {"sharded_mc", Backend::kShardedMc},
    {"sharded_analytic", Backend::kShardedAnalytic},
};

/// Consumes a u64 key and enforces a closed range, diagnosing violations
/// against the key (range problems are value problems, so they point at
/// the same key the typo would).
std::uint64_t get_u64_in(Config& config, const std::string& key,
                         std::uint64_t fallback, std::uint64_t lo,
                         std::uint64_t hi, std::vector<Diagnostic>* diags) {
  const std::uint64_t v = config.get_u64(key, fallback, diags);
  if (v < lo || v > hi) {
    std::ostringstream msg;
    msg << "value " << v << " out of range [" << lo << ", " << hi << "]";
    diags->push_back({0, key, msg.str()});
    return fallback;
  }
  return v;
}

double get_double_in(Config& config, const std::string& key, double fallback,
                     double lo, double hi, std::vector<Diagnostic>* diags) {
  const double v = config.get_double(key, fallback, diags);
  if (!(v >= lo && v <= hi)) {
    std::ostringstream msg;
    msg << "value " << v << " out of range [" << lo << ", " << hi << "]";
    diags->push_back({0, key, msg.str()});
    return fallback;
  }
  return v;
}

void parse_drive(Config& config, DriveSpec* drive,
                 std::vector<Diagnostic>* diags) {
  if (!config.has("drive.backend")) {
    diags->push_back({0, "drive.backend",
                      "missing required key (analytic, mc_chip, sharded_mc, "
                      "or sharded_analytic)"});
  } else {
    const std::string name = config.get_string("drive.backend", "", diags);
    if (!backend_from_name(name, &drive->backend))
      diags->push_back({0, "drive.backend",
                        "unknown backend '" + name +
                            "' (expected analytic, mc_chip, sharded_mc, or "
                            "sharded_analytic)"});
  }

  const std::string model =
      config.get_string("drive.flash_model", "2ynm", diags);
  if (model == "2ynm") {
    drive->flash_model = FlashModel::k2ynm;
  } else if (model == "3d") {
    drive->flash_model = FlashModel::kEarly3d;
  } else {
    diags->push_back({0, "drive.flash_model",
                      "unknown flash model '" + model +
                          "' (expected 2ynm or 3d)"});
  }

  drive->shards = static_cast<std::uint32_t>(
      get_u64_in(config, "drive.shards", drive->shards, 1, 1024, diags));
  drive->queue_count = static_cast<std::uint32_t>(get_u64_in(
      config, "drive.queue_count", drive->queue_count, 1, 65535, diags));
  drive->blocks = static_cast<std::uint32_t>(
      get_u64_in(config, "drive.blocks", drive->blocks, 1, 1u << 24, diags));

  drive->pages_per_block = static_cast<std::uint32_t>(
      get_u64_in(config, "drive.pages_per_block", drive->pages_per_block, 2,
                 1u << 16, diags));
  drive->overprovision = get_double_in(
      config, "drive.overprovision", drive->overprovision, 0.0, 0.9, diags);
  drive->gc_free_target = static_cast<std::uint32_t>(get_u64_in(
      config, "drive.gc_free_target", drive->gc_free_target, 1, 1u << 16,
      diags));
  drive->refresh_interval_days =
      get_double_in(config, "drive.refresh_interval_days",
                    drive->refresh_interval_days, 0.25, 3650.0, diags);
  drive->read_reclaim_threshold =
      config.get_u64("drive.read_reclaim_threshold",
                     drive->read_reclaim_threshold, diags);
  drive->vpass_tuning =
      config.get_bool("drive.vpass_tuning", drive->vpass_tuning, diags);
  drive->spare_blocks = static_cast<std::uint32_t>(
      get_u64_in(config, "drive.spare_blocks", drive->spare_blocks, 0,
                 1u << 16, diags));

  drive->wordlines_per_block = static_cast<std::uint32_t>(
      get_u64_in(config, "drive.wordlines_per_block",
                 drive->wordlines_per_block, 1, 1u << 16, diags));
  drive->bitlines = static_cast<std::uint32_t>(get_u64_in(
      config, "drive.bitlines", drive->bitlines, 1, 1u << 20, diags));
  drive->pre_wear_pe =
      config.get_u64("drive.pre_wear_pe", drive->pre_wear_pe, diags);

  // Cross-field feasibility: GC can only ever reach gc_free_target free
  // blocks if the overprovisioned slack exceeds it (with one block of
  // headroom for the open block). A spec that violates this livelocks
  // the FTL's garbage collector, so reject it here.
  if (drive->is_analytic() &&
      static_cast<double>(drive->blocks) * drive->overprovision <
          static_cast<double>(drive->gc_free_target) + 2.0) {
    std::ostringstream msg;
    msg << "infeasible FTL: overprovisioned slack ("
        << static_cast<double>(drive->blocks) * drive->overprovision
        << " blocks) cannot sustain gc_free_target + 2 = "
        << drive->gc_free_target + 2
        << " free blocks; raise drive.overprovision or drive.blocks, or "
           "lower drive.gc_free_target";
    diags->push_back({0, "drive.gc_free_target", msg.str()});
  }
}

void parse_faults(Config& config, DriveSpec* drive,
                  std::vector<Diagnostic>* diags) {
  FaultSpec& f = drive->faults;
  f.program_fail_prob = get_double_in(config, "faults.program_fail_prob",
                                      f.program_fail_prob, 0.0, 1.0, diags);
  f.erase_fail_prob = get_double_in(config, "faults.erase_fail_prob",
                                    f.erase_fail_prob, 0.0, 1.0, diags);
  f.latent_page_prob = get_double_in(config, "faults.latent_page_prob",
                                     f.latent_page_prob, 0.0, 1.0, diags);
  const bool has_kill_day = config.has("faults.die_kill_day");
  if (has_kill_day) {
    f.die_kill_day = get_double_in(config, "faults.die_kill_day",
                                   f.die_kill_day, 0.0, 36500.0, diags);
  }
  if (config.has("faults.die_kill_shard")) {
    f.die_kill_shard = static_cast<std::uint32_t>(
        get_u64_in(config, "faults.die_kill_shard", f.die_kill_shard, 0,
                   drive->shards > 0 ? drive->shards - 1 : 0, diags));
    if (!has_kill_day)
      diags->push_back({0, "faults.die_kill_shard",
                        "faults.die_kill_shard requires faults.die_kill_day"});
  }

  // Cross-backend validation: each fault targets the layer that models
  // it. P/E failures live in the FTL (analytic backends); latent pages
  // and die kills live in the Monte Carlo chips.
  if (!drive->is_analytic() &&
      (f.program_fail_prob > 0.0 || f.erase_fail_prob > 0.0)) {
    diags->push_back(
        {0,
         f.program_fail_prob > 0.0 ? "faults.program_fail_prob"
                                   : "faults.erase_fail_prob",
         "P/E failure injection needs an FTL: use an analytic backend "
         "(analytic or sharded_analytic)"});
  }
  if (drive->is_analytic() && f.latent_page_prob > 0.0) {
    diags->push_back({0, "faults.latent_page_prob",
                      "latent-page injection senses real cells: use a Monte "
                      "Carlo backend (mc_chip or sharded_mc)"});
  }
  if (drive->is_analytic() && f.die_kill_day >= 0.0) {
    diags->push_back({0, "faults.die_kill_day",
                      "die-kill injection targets a Monte Carlo chip: use "
                      "mc_chip or sharded_mc"});
  }
}

void parse_trace(Config& config, TraceSpec* trace,
                 std::vector<Diagnostic>* diags) {
  // Any [trace] key without trace.path is a broken section: the replayer
  // has nothing to read, so the stray knobs would silently do nothing.
  const bool any_key =
      config.has("trace.path") || config.has("trace.format") ||
      config.has("trace.remap") || config.has("trace.mode") ||
      config.has("trace.queue_depth") || config.has("trace.speedup") ||
      config.has("trace.page_bytes");
  if (!any_key) return;
  trace->path = config.get_string("trace.path", trace->path, diags);
  if (trace->path.empty())
    diags->push_back({0, "trace.path",
                      "missing required key (the trace file to replay; other "
                      "trace.* keys have no effect without it)"});

  const std::string format =
      config.get_string("trace.format", std::string(name(trace->format)),
                        diags);
  if (!replay::trace_format_from_name(format, &trace->format))
    diags->push_back({0, "trace.format",
                      "unknown trace format '" + format +
                          "' (expected auto, msr, or csv)"});

  const std::string remap =
      config.get_string("trace.remap", std::string(name(trace->remap)), diags);
  if (!replay::remap_policy_from_name(remap, &trace->remap))
    diags->push_back({0, "trace.remap",
                      "unknown remap policy '" + remap +
                          "' (expected modulo or hash)"});

  const std::string mode =
      config.get_string("trace.mode", std::string(name(trace->mode)), diags);
  if (!replay::replay_mode_from_name(mode, &trace->mode))
    diags->push_back({0, "trace.mode",
                      "unknown replay mode '" + mode +
                          "' (expected open or closed)"});

  trace->queue_depth = static_cast<std::uint32_t>(get_u64_in(
      config, "trace.queue_depth", trace->queue_depth, 1, 65536, diags));
  trace->speedup = get_double_in(config, "trace.speedup", trace->speedup,
                                 1e-6, 1e9, diags);
  trace->page_bytes = static_cast<std::uint32_t>(get_u64_in(
      config, "trace.page_bytes", trace->page_bytes, 512, 1u << 20, diags));
}

void parse_fleet(Config& config, ScenarioSpec* spec,
                 std::vector<Diagnostic>* diags) {
  FleetSpec& f = spec->fleet;
  // Any [fleet] key without fleet.drives is a broken section: there is
  // no fleet to run, so the stray knobs would silently do nothing.
  const bool any_key =
      config.has("fleet.drives") || config.has("fleet.years") ||
      config.has("fleet.report_interval_days") ||
      config.has("fleet.checkpoint_every") ||
      config.has("fleet.teardown_every") ||
      config.has("fleet.pe_fail_prob_median") ||
      config.has("fleet.fault_rate_sigma") ||
      config.has("fleet.replace_failed") || config.has("fleet.rebuild_days");
  if (!any_key) return;
  if (!config.has("fleet.drives")) {
    diags->push_back({0, "fleet.drives",
                      "missing required key (the fleet size; other fleet.* "
                      "keys have no effect without it)"});
    return;
  }
  f.drives = static_cast<std::uint32_t>(
      get_u64_in(config, "fleet.drives", 64, 1, 1u << 20, diags));
  f.years = get_double_in(config, "fleet.years", f.years, 0.01, 100.0, diags);
  f.report_interval_days = static_cast<std::uint32_t>(
      get_u64_in(config, "fleet.report_interval_days", f.report_interval_days,
                 1, 3650, diags));
  f.checkpoint_every = static_cast<std::uint32_t>(get_u64_in(
      config, "fleet.checkpoint_every", f.checkpoint_every, 0, 100000, diags));
  f.teardown_every = static_cast<std::uint32_t>(get_u64_in(
      config, "fleet.teardown_every", f.teardown_every, 0, 1u << 20, diags));
  f.pe_fail_prob_median =
      get_double_in(config, "fleet.pe_fail_prob_median", f.pe_fail_prob_median,
                    0.0, 1.0, diags);
  f.fault_rate_sigma = get_double_in(config, "fleet.fault_rate_sigma",
                                     f.fault_rate_sigma, 0.0, 8.0, diags);
  f.replace_failed =
      config.get_bool("fleet.replace_failed", f.replace_failed, diags);
  f.rebuild_days = get_double_in(config, "fleet.rebuild_days", f.rebuild_days,
                                 0.0, 365.0, diags);

  // Cross-section validation: the fleet runner drives serial analytic
  // drives directly (checkpointable state lives in Ftl/Ssd snapshots),
  // and generates its traffic synthetically per drive.
  if (spec->drive.backend != Backend::kAnalytic) {
    diags->push_back({0, "fleet.drives",
                      "fleet runs require drive.backend = analytic (the "
                      "per-drive state machine checkpoints ssd::Ssd)"});
  }
  if (spec->trace.enabled()) {
    diags->push_back({0, "fleet.drives",
                      "fleet runs generate per-drive synthetic traffic and "
                      "cannot replay a [trace] section; remove one"});
  }
  if (f.fault_rate_sigma > 0.0 && f.pe_fail_prob_median <= 0.0) {
    diags->push_back({0, "fleet.fault_rate_sigma",
                      "fleet.fault_rate_sigma requires a positive "
                      "fleet.pe_fail_prob_median to spread"});
  }
}

/// Splits a comma-separated config value into trimmed tokens ("a, b,c"
/// -> {"a", "b", "c"}). A single empty value yields one empty token, which
/// the per-token parsers then diagnose.
std::vector<std::string> split_csv(const std::string& value) {
  std::vector<std::string> out;
  std::string token;
  const auto flush_token = [&] {
    const std::size_t b = token.find_first_not_of(" \t");
    const std::size_t e = token.find_last_not_of(" \t");
    out.push_back(b == std::string::npos
                      ? std::string()
                      : token.substr(b, e - b + 1));
    token.clear();
  };
  for (const char c : value) {
    if (c == ',') {
      flush_token();
    } else {
      token += c;
    }
  }
  flush_token();
  return out;
}

/// Consumes `key` as a comma-separated list of exactly `expect` doubles,
/// each within [lo, hi]; diagnoses (against the key) and returns false on
/// any violation. `out` holds the parsed values on success.
bool get_double_list(Config& config, const std::string& key,
                     std::size_t expect, double lo, double hi,
                     std::vector<double>* out,
                     std::vector<Diagnostic>* diags) {
  const std::vector<std::string> tokens =
      split_csv(config.get_string(key, "", diags));
  if (tokens.size() != expect) {
    std::ostringstream msg;
    msg << "expected " << expect << " comma-separated values (one per "
        << "tenant), got " << tokens.size();
    diags->push_back({0, key, msg.str()});
    return false;
  }
  out->clear();
  for (const std::string& token : tokens) {
    std::size_t used = 0;
    double v = 0.0;
    bool ok = !token.empty();
    if (ok) {
      try {
        v = std::stod(token, &used);
      } catch (...) {
        ok = false;
      }
    }
    if (!ok || used != token.size()) {
      diags->push_back({0, key, "malformed number '" + token + "'"});
      return false;
    }
    if (!(v >= lo && v <= hi)) {
      std::ostringstream msg;
      msg << "value " << v << " out of range [" << lo << ", " << hi << "]";
      diags->push_back({0, key, msg.str()});
      return false;
    }
    out->push_back(v);
  }
  return true;
}

void parse_tenants(Config& config, ScenarioSpec* spec,
                   std::vector<Diagnostic>* diags) {
  TenantsSpec& t = spec->tenants;
  // Any [tenants] key without tenants.count is a broken section: there is
  // no tenant table to fill, so the stray knobs would silently do nothing.
  const bool any_key =
      config.has("tenants.count") || config.has("tenants.policy") ||
      config.has("tenants.weights") || config.has("tenants.deadlines_us") ||
      config.has("tenants.profiles") ||
      config.has("tenants.daily_page_ios");
  if (!any_key) return;
  if (!config.has("tenants.count")) {
    diags->push_back({0, "tenants.count",
                      "missing required key (how many tenants share the "
                      "drive; other tenants.* keys have no effect without "
                      "it)"});
    return;
  }
  const auto count = static_cast<std::uint32_t>(
      get_u64_in(config, "tenants.count", 1, 1, 4096, diags));
  if (count > spec->drive.queue_count) {
    std::ostringstream msg;
    msg << "tenant count " << count << " exceeds drive.queue_count "
        << spec->drive.queue_count
        << " (each tenant submits on its own queue); raise "
           "drive.queue_count or lower tenants.count";
    diags->push_back({0, "tenants.count", msg.str()});
  }

  const std::string policy = config.get_string(
      "tenants.policy", host::arbitration_policy_name(t.policy), diags);
  if (!host::arbitration_policy_from_name(policy, &t.policy))
    diags->push_back({0, "tenants.policy",
                      "unknown arbitration policy '" + policy +
                          "' (expected fifo, round_robin, weighted, or "
                          "deadline)"});

  // Every tenant starts from the scenario's resolved [workload] profile;
  // the per-tenant lists below override it slot by slot.
  t.tenants.assign(count, TenantSpec{});
  for (TenantSpec& tenant : t.tenants)
    tenant.profile = spec->workload.profile;

  if (config.has("tenants.weights")) {
    std::vector<double> weights;
    // Weights are relative shares; zero (or negative) would starve the
    // tenant outright, which is a config error, not a policy.
    if (get_double_list(config, "tenants.weights", count,
                        std::numeric_limits<double>::min(), 1e9, &weights,
                        diags)) {
      for (std::uint32_t i = 0; i < count; ++i)
        t.tenants[i].weight = weights[i];
    }
  }

  if (config.has("tenants.deadlines_us")) {
    std::vector<double> deadlines;
    if (get_double_list(config, "tenants.deadlines_us", count, 1e-3, 1e12,
                        &deadlines, diags)) {
      for (std::uint32_t i = 0; i < count; ++i)
        t.tenants[i].deadline_us = deadlines[i];
    }
  } else if (t.policy == host::ArbitrationPolicy::kDeadline) {
    diags->push_back({0, "tenants.deadlines_us",
                      "missing required key: the deadline policy orders by "
                      "submit + deadline, so every tenant needs one "
                      "(comma-separated microseconds)"});
  }

  if (config.has("tenants.profiles")) {
    const std::vector<std::string> names =
        split_csv(config.get_string("tenants.profiles", "", diags));
    if (names.size() != count) {
      std::ostringstream msg;
      msg << "expected " << count << " comma-separated profile names (one "
          << "per tenant), got " << names.size();
      diags->push_back({0, "tenants.profiles", msg.str()});
    } else {
      for (std::uint32_t i = 0; i < count; ++i) {
        bool found = false;
        for (const auto& s : workload::standard_suite()) {
          if (s.name == names[i]) {
            // A named per-tenant profile replaces the base wholesale
            // (including any [workload] overrides), exactly as
            // workload.profile replaces the built-in default.
            t.tenants[i].profile = s;
            found = true;
            break;
          }
        }
        if (!found)
          diags->push_back({0, "tenants.profiles",
                            "unknown workload profile '" + names[i] + "'"});
      }
    }
  }

  if (config.has("tenants.daily_page_ios")) {
    std::vector<double> ios;
    if (get_double_list(config, "tenants.daily_page_ios", count, 1.0, 1e12,
                        &ios, diags)) {
      for (std::uint32_t i = 0; i < count; ++i)
        t.tenants[i].profile.daily_page_ios = ios[i];
    }
  }

  // Cross-section validation: tenants shape the scenario's synthetic
  // generator and the queued device; the trace replayer and the fleet
  // runner each own their traffic wholesale.
  if (spec->trace.enabled()) {
    diags->push_back({0, "tenants.count",
                      "a [tenants] scenario generates per-tenant synthetic "
                      "traffic and cannot replay a [trace] section; remove "
                      "one"});
  }
  if (spec->fleet.enabled()) {
    diags->push_back({0, "tenants.count",
                      "fleet runs drive whole fleets of single-tenant "
                      "drives and cannot take a [tenants] section; remove "
                      "one"});
  }
}

void parse_workload(Config& config, WorkloadSpec* workload, bool required,
                    std::vector<Diagnostic>* diags) {
  workload::WorkloadProfile& p = workload->profile;
  if (!config.has("workload.profile")) {
    // With a [trace] section the workload generator is bypassed, so the
    // profile becomes optional (overrides below still parse, harmlessly).
    if (required) {
      std::string names;
      for (const auto& s : workload::standard_suite())
        names += (names.empty() ? "" : ", ") + s.name;
      diags->push_back({0, "workload.profile",
                        "missing required key (one of: " + names + ")"});
    }
  } else {
    const std::string name = config.get_string("workload.profile", "", diags);
    bool found = false;
    for (const auto& s : workload::standard_suite()) {
      if (s.name == name) {
        p = s;
        found = true;
        break;
      }
    }
    if (!found)
      diags->push_back(
          {0, "workload.profile", "unknown workload profile '" + name + "'"});
  }

  // Overrides on top of the named profile; absent keys keep its values.
  p.daily_page_ios = get_double_in(config, "workload.daily_page_ios",
                                   p.daily_page_ios, 1.0, 1e12, diags);
  p.read_fraction = get_double_in(config, "workload.read_fraction",
                                  p.read_fraction, 0.0, 1.0, diags);
  p.footprint_fraction =
      get_double_in(config, "workload.footprint_fraction",
                    p.footprint_fraction, 1e-6, 1.0, diags);
  p.mean_request_pages = get_double_in(config, "workload.mean_request_pages",
                                       p.mean_request_pages, 1.0, 4096.0,
                                       diags);
  p.trim_fraction = get_double_in(config, "workload.trim_fraction",
                                  p.trim_fraction, 0.0, 1.0, diags);
  p.flush_period_s = get_double_in(config, "workload.flush_period_s",
                                   p.flush_period_s, 0.0, 86400.0, diags);
}

}  // namespace

const char* backend_name(Backend backend) {
  for (const BackendName& b : kBackends)
    if (b.backend == backend) return b.name;
  return "?";
}

bool backend_from_name(const std::string& name, Backend* out) {
  for (const BackendName& b : kBackends) {
    if (name == b.name) {
      *out = b.backend;
      return true;
    }
  }
  return false;
}

ScenarioSpec parse_scenario(Config& config, std::vector<Diagnostic>* diags) {
  ScenarioSpec spec;
  spec.name = config.get_string("scenario.name", spec.name, diags);
  spec.days = static_cast<int>(
      get_u64_in(config, "scenario.days", static_cast<std::uint64_t>(spec.days),
                 1, 36500, diags));
  spec.queue_depth = static_cast<std::uint32_t>(get_u64_in(
      config, "scenario.queue_depth", spec.queue_depth, 1, 65536, diags));
  spec.warm_fill =
      config.get_bool("scenario.warm_fill", spec.warm_fill, diags);
  parse_drive(config, &spec.drive, diags);
  parse_faults(config, &spec.drive, diags);
  parse_trace(config, &spec.trace, diags);
  parse_fleet(config, &spec, diags);
  parse_workload(config, &spec.workload, !spec.trace.enabled(), diags);
  parse_tenants(config, &spec, diags);
  config.report_unknown(diags);
  return spec;
}

host::ArbitrationConfig TenantsSpec::arbitration() const {
  host::ArbitrationConfig arb;
  arb.policy = policy;
  arb.tenants.reserve(tenants.size());
  for (const TenantSpec& tenant : tenants)
    arb.tenants.push_back({tenant.weight, tenant.deadline_us});
  return arb;
}

}  // namespace rdsim::cfg
