#include "replay/trace_reader.h"

#include <stdexcept>

#include "workload/trace_io.h"

namespace rdsim::replay {
namespace {

/// Field count of a comma-separated line (commas + 1). Quoting in the
/// supported formats never embeds commas, so this is exact.
std::size_t field_count(const std::string& line) {
  std::size_t n = 1;
  for (char c : line)
    if (c == ',') ++n;
  return n;
}

/// Blank (possibly just "\r") or #-comment — same rule the line parsers
/// apply, duplicated here so sniffing skips what parsing would skip.
bool is_skippable(const std::string& line) {
  for (char c : line) {
    if (c == ' ' || c == '\t' || c == '\r') continue;
    return c == '#';
  }
  return true;
}

}  // namespace

StreamingTraceReader::StreamingTraceReader(std::istream& in,
                                           TraceFormat format,
                                           std::uint32_t page_bytes)
    : in_(in), format_(format), page_bytes_(page_bytes) {}

bool StreamingTraceReader::next_data_line(std::string* line) {
  while (std::getline(in_, *line)) {
    ++line_no_;
    if (!is_skippable(*line)) return true;
  }
  return false;
}

bool StreamingTraceReader::next(workload::IoRequest* out) {
  std::string line;
  while (next_data_line(&line)) {
    if (format_ == TraceFormat::kAuto) {
      const std::size_t n = field_count(line);
      if (n == 4) {
        format_ = TraceFormat::kCsv;
      } else if (n >= 6) {
        format_ = TraceFormat::kMsr;
      } else {
        throw std::runtime_error("line " + std::to_string(line_no_) +
                                 ": unrecognized trace format (" +
                                 std::to_string(n) +
                                 " fields; expected 4 for rdsim CSV or >=6 "
                                 "for MSR): '" +
                                 line + "'");
      }
    }
    if (format_ == TraceFormat::kMsr) {
      if (!have_first_tick_) {
        first_tick_ = workload::msr_timestamp_ticks(line, line_no_);
        have_first_tick_ = true;
      }
      if (workload::parse_msr_line(line, page_bytes_, first_tick_, out,
                                   line_no_)) {
        ++records_;
        return true;
      }
    } else {
      if (workload::parse_csv_trace_line(line, out, line_no_)) {
        ++records_;
        return true;
      }
    }
    // Parser skipped the line (e.g. a CSV header): keep going.
  }
  return false;
}

std::size_t StreamingTraceReader::read_chunk(
    std::size_t window, std::vector<workload::IoRequest>* out) {
  out->clear();
  workload::IoRequest r;
  while (out->size() < window && next(&r)) out->push_back(r);
  return out->size();
}

}  // namespace rdsim::replay
