// rdsim/replay/trace_reader.h
//
// Streaming trace ingestion with bounded memory. The reader pulls one
// line at a time from its stream and materializes at most `window`
// requests per read_chunk() call, so replaying a multi-gigabyte trace
// costs O(window) memory regardless of trace length — the property the
// full-file readers in workload/trace_io.h (read_msr_trace /
// read_trace_csv) give up for convenience. Parsing is delegated to the
// same line parsers, so the two paths agree record-for-record (tested).
#pragma once

#include <cstdint>
#include <istream>
#include <string>
#include <vector>

#include "replay/options.h"
#include "workload/trace.h"

namespace rdsim::replay {

/// Pull-based streaming reader over MSR-Cambridge or rdsim-CSV traces.
/// Not copyable (borrows the stream). Malformed rows throw
/// std::runtime_error with a "line N:" prefix.
class StreamingTraceReader {
 public:
  /// `in` must outlive the reader. With kAuto the format is sniffed from
  /// the first record's field count (4 => CSV, 6+ => MSR).
  explicit StreamingTraceReader(std::istream& in,
                                TraceFormat format = TraceFormat::kAuto,
                                std::uint32_t page_bytes = 8192);

  StreamingTraceReader(const StreamingTraceReader&) = delete;
  StreamingTraceReader& operator=(const StreamingTraceReader&) = delete;

  /// Reads the next record into *out. Returns false at end of trace.
  /// MSR timestamps are rebased so the first record is t = 0.
  bool next(workload::IoRequest* out);

  /// Appends up to `window` records to *out (which is cleared first).
  /// Returns the number appended; 0 means end of trace.
  std::size_t read_chunk(std::size_t window,
                         std::vector<workload::IoRequest>* out);

  /// Format actually in use (resolved after the first record when
  /// constructed with kAuto).
  TraceFormat format() const { return format_; }

  /// Records returned so far.
  std::uint64_t records_read() const { return records_; }

  /// 1-based line number of the last line consumed from the stream.
  std::uint64_t line_no() const { return line_no_; }

 private:
  bool next_data_line(std::string* line);

  std::istream& in_;
  TraceFormat format_;
  std::uint32_t page_bytes_;
  std::uint64_t line_no_ = 0;
  std::uint64_t records_ = 0;
  std::uint64_t first_tick_ = 0;
  bool have_first_tick_ = false;
};

}  // namespace rdsim::replay
