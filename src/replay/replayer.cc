#include "replay/replayer.h"

#include <algorithm>

#include "host/device.h"
#include "host/driver.h"
#include "replay/remap.h"
#include "replay/trace_reader.h"
#include "workload/trace.h"

namespace rdsim::replay {
namespace {

/// Folds one drained batch into the summary/tracker/log.
void absorb(const std::vector<host::Completion>& batch,
            ReplaySummary* summary, LatencyTracker* tracker,
            std::vector<host::Completion>* log) {
  for (const host::Completion& c : batch) {
    ++summary->commands;
    if (c.kind == host::CommandKind::kRead) ++summary->reads;
    if (c.kind == host::CommandKind::kWrite) ++summary->writes;
    ++summary->status_counts[static_cast<std::size_t>(c.status)];
    summary->stall_seconds += c.stall_s;
    if (summary->commands == 1 || c.submit_time_s < summary->first_submit_s)
      summary->first_submit_s = c.submit_time_s;
    summary->last_complete_s =
        std::max(summary->last_complete_s, c.complete_time_s);
    if (tracker != nullptr) tracker->observe(c);
  }
  if (log != nullptr) log->insert(log->end(), batch.begin(), batch.end());
}

host::Command to_command(const workload::IoRequest& r, std::uint64_t seq,
                         std::uint32_t queues) {
  host::Command c;
  c.kind =
      r.is_write ? host::CommandKind::kWrite : host::CommandKind::kRead;
  c.lpn = r.lpn;
  c.pages = r.pages;
  c.queue = static_cast<std::uint16_t>(seq % queues);
  c.submit_time_s = r.time_s;
  return c;
}

}  // namespace

ReplaySummary replay_trace(std::istream& in, host::Device& device,
                           const ReplayOptions& options,
                           LatencyTracker* tracker,
                           std::vector<host::Completion>* log) {
  StreamingTraceReader reader(in, options.format, options.page_bytes);
  const LbaRemapper remapper(options.remap, device.logical_pages());
  const double origin_s = device.now_s();
  if (tracker != nullptr) tracker->set_origin(origin_s);

  const std::size_t window = std::max<std::size_t>(1, options.window);
  const double speedup = std::max(1e-6, options.speedup);
  const std::uint32_t queues = std::max(1u, device.queue_count());

  ReplaySummary summary;
  std::vector<workload::IoRequest> chunk;
  std::vector<host::Completion> drained;
  std::uint64_t seq = 0;

  if (options.mode == ReplayMode::kOpen) {
    // Arrival-faithful: trace time (compressed by speedup) offset to the
    // device clock at replay start, clamped monotone — the sharded poll
    // watermark assumes non-decreasing submit stamps, and a trace with
    // out-of-order or duplicate timestamps must not violate that.
    double prev_submit_s = origin_s;
    while (reader.read_chunk(window, &chunk) > 0) {
      for (workload::IoRequest& r : chunk) {
        remapper.apply(&r);
        host::Command c = to_command(r, seq++, queues);
        c.submit_time_s =
            std::max(prev_submit_s, origin_s + r.time_s / speedup);
        prev_submit_s = c.submit_time_s;
        device.submit(c);
      }
      // Drain once per window: the backend pump sees a full lookahead
      // segment, and memory stays O(window).
      drained.clear();
      device.drain(&drained);
      absorb(drained, &summary, tracker, log);
    }
  } else {
    // QD-bounded: the driver re-stamps submit times as slots free; trace
    // timestamps only fix the submission order.
    host::ClosedLoopDriver driver(device, static_cast<int>(
                                              options.queue_depth));
    std::vector<host::Completion> sunk;
    driver.set_completion_sink(&sunk);
    std::vector<host::Command> commands;
    while (reader.read_chunk(window, &chunk) > 0) {
      commands.clear();
      for (workload::IoRequest& r : chunk) {
        remapper.apply(&r);
        commands.push_back(to_command(r, seq++, queues));
      }
      driver.run(commands);
      absorb(sunk, &summary, tracker, log);
      sunk.clear();
    }
  }

  // Final sweep (open-loop always needs it; closed-loop run() already
  // drains, so this is a cheap no-op there) and a globally ordered log:
  // batches drained early can straddle later-submitted commands that
  // completed earlier on an idle shard.
  drained.clear();
  device.drain(&drained);
  absorb(drained, &summary, tracker, log);
  if (log != nullptr)
    std::sort(log->begin(), log->end(), host::completion_log_order);
  return summary;
}

}  // namespace rdsim::replay
