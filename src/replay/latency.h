// rdsim/replay/latency.h
//
// Latency analysis over completion records: full empirical latency CDFs
// per command kind, and moving windowed percentiles (p50/p99/p999 of read
// latency per fixed window of *simulated* time). CompletionStats gives
// point quantiles over a whole run; this layer answers the distributional
// questions trace studies ask — "what does the tail look like, and when
// does it spike?" — from the same Completion records, with no dependence
// on delivery order (windows are indexed by completion timestamp, so any
// worker count and poll cadence yields identical tables).
#pragma once

#include <cstdint>
#include <vector>

#include "common/histogram.h"
#include "host/command.h"

namespace rdsim::replay {

/// Percentile summary of one simulated-time window of read completions.
struct WindowRow {
  double window_start_s = 0.0;  ///< Window start, relative to the origin.
  std::uint64_t reads = 0;      ///< Read completions in the window.
  double p50_us = 0.0;
  double p99_us = 0.0;
  double p999_us = 0.0;
};

/// Accumulates completions into per-kind latency histograms (for CDFs)
/// and per-window read histograms (for moving percentiles). Latencies are
/// tracked in microseconds over [0, max_latency_us) with uniform bins;
/// out-of-range tails clamp into the last bin (Histogram's convention),
/// so pick max_latency_us above the worst stall you expect to resolve.
class LatencyTracker {
 public:
  /// `window_s` is the moving-percentile window in simulated seconds.
  LatencyTracker(double window_s, double max_latency_us = 50000.0,
                 std::size_t bins = 5000);

  /// Completion timestamps are bucketed relative to this origin (e.g. the
  /// device clock when replay started). Call before the first observe().
  void set_origin(double origin_s) { origin_s_ = origin_s; }
  double origin_s() const { return origin_s_; }

  void observe(const host::Completion& c);

  std::uint64_t observed() const { return observed_; }

  /// Full-run latency histogram for one command kind (microseconds).
  const Histogram& histogram(host::CommandKind kind) const;

  /// Convenience: full-run read-latency quantile in microseconds.
  double read_quantile_us(double q) const;

  /// Moving read percentiles, one row per window from the origin through
  /// the last observed completion (empty windows included, with zero
  /// counts, so the time axis has no gaps).
  std::vector<WindowRow> window_rows() const;

 private:
  double window_s_;
  double origin_s_ = 0.0;
  double max_latency_us_;
  std::size_t bins_;
  std::uint64_t observed_ = 0;
  std::vector<Histogram> by_kind_;
  std::vector<Histogram> windows_;  ///< Read latencies, per window index.
};

}  // namespace rdsim::replay
