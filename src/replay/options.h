// rdsim/replay/options.h
//
// Enums shared between the trace-replay subsystem and the config layer.
// Deliberately dependency-free (no host/, no cfg/ includes) so
// cfg::TraceSpec can carry them without creating a cfg <-> replay cycle:
// cfg describes *what* to replay; replay (which pulls in the host layer)
// does the replaying.
#pragma once

#include <string_view>

namespace rdsim::replay {

/// On-disk trace format. kAuto sniffs the first record: 4 comma-separated
/// fields => rdsim CSV ("time_s,op,lpn,pages"), 6+ => MSR-Cambridge SNIA
/// ("Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime").
enum class TraceFormat { kAuto, kMsr, kCsv };

/// How trace LBAs (which typically address a much larger device than the
/// simulated one) are folded onto the simulated capacity. Both are pure
/// functions of the original LPN, so replay is deterministic.
enum class RemapPolicy {
  kModulo,  ///< lpn % capacity: preserves sequential runs and locality.
  kHash,    ///< splitmix64(lpn) % capacity: scatters hot ranges uniformly.
};

/// Replay discipline.
enum class ReplayMode {
  kOpen,    ///< Arrival-timestamp-faithful: submit at trace time (/speedup).
  kClosed,  ///< QD-bounded via ClosedLoopDriver: timestamps are ordering only.
};

inline constexpr std::string_view name(TraceFormat f) {
  switch (f) {
    case TraceFormat::kAuto: return "auto";
    case TraceFormat::kMsr: return "msr";
    case TraceFormat::kCsv: return "csv";
  }
  return "?";
}

inline constexpr std::string_view name(RemapPolicy p) {
  switch (p) {
    case RemapPolicy::kModulo: return "modulo";
    case RemapPolicy::kHash: return "hash";
  }
  return "?";
}

inline constexpr std::string_view name(ReplayMode m) {
  switch (m) {
    case ReplayMode::kOpen: return "open";
    case ReplayMode::kClosed: return "closed";
  }
  return "?";
}

inline bool trace_format_from_name(std::string_view s, TraceFormat* out) {
  if (s == "auto") *out = TraceFormat::kAuto;
  else if (s == "msr") *out = TraceFormat::kMsr;
  else if (s == "csv") *out = TraceFormat::kCsv;
  else return false;
  return true;
}

inline bool remap_policy_from_name(std::string_view s, RemapPolicy* out) {
  if (s == "modulo") *out = RemapPolicy::kModulo;
  else if (s == "hash") *out = RemapPolicy::kHash;
  else return false;
  return true;
}

inline bool replay_mode_from_name(std::string_view s, ReplayMode* out) {
  if (s == "open") *out = ReplayMode::kOpen;
  else if (s == "closed") *out = ReplayMode::kClosed;
  else return false;
  return true;
}

}  // namespace rdsim::replay
