// rdsim/replay/replayer.h
//
// The trace replayer: pulls requests from a StreamingTraceReader in
// bounded windows, remaps their LBAs onto the device, and drives any
// host::Device backend in one of two disciplines:
//
//   * open-loop  — arrival-timestamp-faithful: each command is submitted
//     at its trace time (divided by `speedup`), offset to the device
//     clock at replay start so arrivals never land inside warm-up work.
//     Whole windows are submitted before draining, lending the sharded
//     backend's pump full lookahead segments (its merge needs to see the
//     frontier of every queue). Submit stamps are clamped monotone — the
//     sharded poll watermark assumes non-decreasing submission times.
//   * closed-loop — QD-bounded via ClosedLoopDriver: trace timestamps
//     are ordering only; a slot frees when the earliest in-flight
//     completion lands.
//
// Both disciplines feed every drained completion to the same
// LatencyTracker and per-status accounting, and both are deterministic:
// the completion log is a pure function of (trace, device, options),
// byte-identical at any worker count.
#pragma once

#include <cstdint>
#include <istream>
#include <vector>

#include "host/command.h"
#include "replay/latency.h"
#include "replay/options.h"

namespace rdsim::host {
class Device;
}

namespace rdsim::replay {

struct ReplayOptions {
  TraceFormat format = TraceFormat::kAuto;
  RemapPolicy remap = RemapPolicy::kModulo;
  ReplayMode mode = ReplayMode::kOpen;
  std::uint32_t queue_depth = 16;  ///< Closed-loop QD (ignored open-loop).
  double speedup = 1.0;            ///< Open-loop time compression (>= 1e-6).
  std::uint32_t page_bytes = 8192; ///< MSR byte->page conversion.
  std::size_t window = 4096;       ///< Streaming chunk size (memory bound).
};

/// What a replay did, aggregated from the completion records.
struct ReplaySummary {
  std::uint64_t commands = 0;
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t status_counts[host::kStatusCount] = {};
  double first_submit_s = 0.0;
  double last_complete_s = 0.0;
  double stall_seconds = 0.0;
};

/// Replays the trace in `in` against `device`. Completions are observed
/// by *tracker (its origin is set to the device clock at replay start)
/// and, when `log` is non-null, appended to it in completion_log_order.
/// Returns the aggregate summary. The device is fully drained on return.
ReplaySummary replay_trace(std::istream& in, host::Device& device,
                           const ReplayOptions& options,
                           LatencyTracker* tracker,
                           std::vector<host::Completion>* log = nullptr);

}  // namespace rdsim::replay
