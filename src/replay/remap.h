// rdsim/replay/remap.h
//
// Deterministic LBA remapping. Trace LPNs typically address a far larger
// device than the simulated one (the checked-in MSR sample spans 4 GiB;
// a tiny simulated drive is a few MiB), so every replayed request is
// folded onto the simulated logical capacity by a pure function of its
// original start LPN — same trace + same capacity + same policy always
// produces the same access stream, on any backend and worker count.
#pragma once

#include <algorithm>
#include <cstdint>

#include "replay/options.h"
#include "workload/trace.h"

namespace rdsim::replay {

/// Folds trace LPNs onto [0, capacity_pages). Requests stay contiguous:
/// the *start* LPN is remapped and the page run is kept (clamped and
/// shifted so start + pages <= capacity), preserving the request-size
/// distribution that the sharded device's striping depends on.
class LbaRemapper {
 public:
  /// Requires capacity_pages >= 1.
  LbaRemapper(RemapPolicy policy, std::uint64_t capacity_pages)
      : policy_(policy),
        capacity_(capacity_pages == 0 ? 1 : capacity_pages) {}

  RemapPolicy policy() const { return policy_; }
  std::uint64_t capacity_pages() const { return capacity_; }

  std::uint64_t remap_lpn(std::uint64_t lpn) const {
    if (policy_ == RemapPolicy::kHash) lpn = splitmix64(lpn);
    return lpn % capacity_;
  }

  /// Remaps r's start LPN in place and clamps/shifts the run to fit.
  void apply(workload::IoRequest* r) const {
    const std::uint64_t cap32 =
        std::min<std::uint64_t>(capacity_, 0xFFFFFFFFull);
    r->pages = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(std::max(1u, r->pages), cap32));
    std::uint64_t start = remap_lpn(r->lpn);
    if (start + r->pages > capacity_) start = capacity_ - r->pages;
    r->lpn = start;
  }

  /// splitmix64 finalizer: a cheap, high-quality 64-bit mix (public
  /// domain constants from Steele et al.'s SplittableRandom).
  static std::uint64_t splitmix64(std::uint64_t x) {
    x += 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
  }

 private:
  RemapPolicy policy_;
  std::uint64_t capacity_;
};

}  // namespace rdsim::replay
