#include "replay/latency.h"

#include <cassert>
#include <cmath>

namespace rdsim::replay {

LatencyTracker::LatencyTracker(double window_s, double max_latency_us,
                               std::size_t bins)
    : window_s_(window_s), max_latency_us_(max_latency_us), bins_(bins) {
  assert(window_s > 0.0 && max_latency_us > 0.0 && bins >= 1);
  by_kind_.reserve(4);
  for (int i = 0; i < 4; ++i)
    by_kind_.emplace_back(0.0, max_latency_us_, bins_);
}

void LatencyTracker::observe(const host::Completion& c) {
  ++observed_;
  const double latency_us = c.latency_s() * 1e6;
  by_kind_[static_cast<std::size_t>(c.kind)].add(latency_us);
  if (c.kind != host::CommandKind::kRead) return;
  // Window index from the completion timestamp, clamped at 0 so a record
  // completing exactly at (or fractionally before) the origin still lands
  // in the first window instead of indexing negatively.
  const double rel = c.complete_time_s - origin_s_;
  const auto idx_signed = static_cast<std::int64_t>(std::floor(rel / window_s_));
  const auto idx =
      static_cast<std::size_t>(idx_signed < 0 ? 0 : idx_signed);
  while (windows_.size() <= idx)
    windows_.emplace_back(0.0, max_latency_us_, bins_);
  windows_[idx].add(latency_us);
}

const Histogram& LatencyTracker::histogram(host::CommandKind kind) const {
  return by_kind_[static_cast<std::size_t>(kind)];
}

double LatencyTracker::read_quantile_us(double q) const {
  return histogram(host::CommandKind::kRead).quantile(q);
}

std::vector<WindowRow> LatencyTracker::window_rows() const {
  std::vector<WindowRow> out;
  out.reserve(windows_.size());
  for (std::size_t i = 0; i < windows_.size(); ++i) {
    WindowRow row;
    row.window_start_s = static_cast<double>(i) * window_s_;
    row.reads = windows_[i].total();
    if (row.reads > 0) {
      row.p50_us = windows_[i].quantile(0.50);
      row.p99_us = windows_[i].quantile(0.99);
      row.p999_us = windows_[i].quantile(0.999);
    }
    out.push_back(row);
  }
  return out;
}

}  // namespace rdsim::replay
