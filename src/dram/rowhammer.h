// rdsim/dram/rowhammer.h
//
// Model of DRAM read disturb (RowHammer) sufficient to regenerate the
// retrospective's related-work figures (Figs. 11-12, reproduced there from
// the ISCA 2014 RowHammer paper [42]):
//   * a population of 129 modules from manufacturers A/B/C built between
//     2008 and 2014, with vulnerability appearing in 2010 and covering
//     100% of 2012-2013 modules;
//   * per-module error rates (errors per 10^9 cells) spanning ~0..10^6 and
//     growing with manufacture date;
//   * long-tailed per-aggressor-row victim-cell counts.
//
// This module has no electrical model — it is a statistical population
// model calibrated to the published envelope, which is all those two
// figures report.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "common/rng.h"

namespace rdsim::dram {

enum class Manufacturer : std::uint8_t { kA = 0, kB = 1, kC = 2 };

const char* manufacturer_name(Manufacturer m);

struct DramModule {
  Manufacturer manufacturer = Manufacturer::kA;
  int year = 2008;
  int week = 1;
  bool vulnerable = false;
  /// Mean victim cells per aggressor row when vulnerable (drives both
  /// figures).
  double row_victim_mean = 0.0;
  std::uint64_t rows = 65536;
  std::uint64_t cells_per_row = 8192;

  std::string label() const;  ///< e.g. "A-1240" (yyww style).
  std::uint64_t cells() const { return rows * cells_per_row; }
};

/// Generates the tested-module population (129 modules, 2008-2014).
std::vector<DramModule> sample_population(Rng& rng, int count = 129);

/// Hammers every row of `module` (double-sided, to the spec count) and
/// returns the number of bit errors observed, as in the Fig. 11 protocol.
std::uint64_t hammer_all_rows(const DramModule& module, Rng& rng);

/// Errors per 10^9 cells for a module (the Fig. 11 y-axis).
double errors_per_billion_cells(const DramModule& module, Rng& rng);

/// Victim-cells-per-aggressor-row histogram for one module (Fig. 12):
/// bin i counts rows with i victims, up to `max_victims`.
std::vector<std::uint64_t> victim_histogram(const DramModule& module, Rng& rng,
                                            int max_victims = 120);

/// Representative modules used by the Fig. 12 bench (one per vendor,
/// matching the paper's A/B/C examples from 2012-2013).
std::vector<DramModule> representative_modules();

/// PARA (Probabilistic Adjacent Row Activation, Kim et al. ISCA 2014, the
/// mitigation the retrospective highlights): on each activation the
/// controller refreshes the neighbors with probability `p`. A victim only
/// flips if ~`onset_activations` hammers land between two such refreshes,
/// so the error rate scales by (1-p)^onset — the factor this returns.
double para_error_scale(double p, double onset_activations = 50e3);

/// Errors per 1e9 cells for a module protected by PARA with probability p.
double errors_per_billion_cells_with_para(const DramModule& module, Rng& rng,
                                          double p);

}  // namespace rdsim::dram
