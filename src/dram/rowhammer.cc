#include "dram/rowhammer.h"

#include <algorithm>
#include <cmath>

namespace rdsim::dram {
namespace {

/// Probability a module of the given vintage is vulnerable, matching the
/// published finding: none before 2010, every tested 2012-2013 module,
/// and most 2014 ones.
double vulnerability_probability(int year) {
  switch (year) {
    case 2008:
    case 2009: return 0.0;
    case 2010: return 0.5;
    case 2011: return 0.9;
    case 2012:
    case 2013: return 1.0;
    default: return 1.0;  // 2014+.
  }
}

/// Log10 of the typical errors-per-1e9-cells for a vulnerable module of
/// the given vintage (vulnerability deepens with process scaling).
double log10_error_scale(int year) {
  switch (year) {
    case 2010: return 0.8;
    case 2011: return 2.0;
    case 2012: return 3.3;
    case 2013: return 4.3;
    default: return 4.8;  // 2014.
  }
}

/// Per-row victim counts are heavy-tailed: most aggressor rows flip few
/// bits, a few flip >100. We model the per-row mean as exponential around
/// the module mean and the count as Poisson of that mean.
std::uint64_t sample_row_victims(const DramModule& module, Rng& rng) {
  if (!module.vulnerable || module.row_victim_mean <= 0.0) return 0;
  const double lambda = rng.exponential(1.0 / module.row_victim_mean);
  return rng.poisson(lambda);
}

}  // namespace

const char* manufacturer_name(Manufacturer m) {
  switch (m) {
    case Manufacturer::kA: return "A";
    case Manufacturer::kB: return "B";
    case Manufacturer::kC: return "C";
  }
  return "?";
}

std::string DramModule::label() const {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%s-%02d%02d", manufacturer_name(manufacturer),
                year % 100, week);
  return buf;
}

std::vector<DramModule> sample_population(Rng& rng, int count) {
  std::vector<DramModule> modules;
  modules.reserve(count);
  for (int i = 0; i < count; ++i) {
    DramModule m;
    m.manufacturer = static_cast<Manufacturer>(rng.uniform_u64(3));
    // Skew the sample toward newer modules, as the tested set was.
    const double u = rng.uniform();
    m.year = 2008 + static_cast<int>(std::floor(std::pow(u, 0.5) * 7.0));
    m.year = std::min(m.year, 2014);
    m.week = static_cast<int>(rng.uniform_int(1, 52));
    m.vulnerable = rng.bernoulli(vulnerability_probability(m.year));
    if (m.vulnerable) {
      // Errors/1e9 cells ~ lognormal around the vintage scale; convert to
      // a per-row victim mean (rows * mean / cells = rate).
      const double log_rate =
          rng.normal(log10_error_scale(m.year), 0.7);
      const double rate = std::pow(10.0, log_rate) / 1e9;  // per cell
      m.row_victim_mean = rate * static_cast<double>(m.cells_per_row);
    }
    modules.push_back(m);
  }
  return modules;
}

std::uint64_t hammer_all_rows(const DramModule& module, Rng& rng) {
  std::uint64_t errors = 0;
  for (std::uint64_t r = 0; r < module.rows; ++r)
    errors += sample_row_victims(module, rng);
  return errors;
}

double errors_per_billion_cells(const DramModule& module, Rng& rng) {
  const auto errors = hammer_all_rows(module, rng);
  return static_cast<double>(errors) /
         static_cast<double>(module.cells()) * 1e9;
}

std::vector<std::uint64_t> victim_histogram(const DramModule& module, Rng& rng,
                                            int max_victims) {
  std::vector<std::uint64_t> hist(max_victims + 1, 0);
  for (std::uint64_t r = 0; r < module.rows; ++r) {
    const auto v = sample_row_victims(module, rng);
    hist[std::min<std::uint64_t>(v, max_victims)] += 1;
  }
  return hist;
}

double para_error_scale(double p, double onset_activations) {
  if (p <= 0.0) return 1.0;
  if (p >= 1.0) return 0.0;
  // P(onset_activations consecutive activations with no adjacent refresh).
  return std::exp(onset_activations * std::log1p(-p));
}

double errors_per_billion_cells_with_para(const DramModule& module, Rng& rng,
                                          double p) {
  return errors_per_billion_cells(module, rng) * para_error_scale(p);
}

std::vector<DramModule> representative_modules() {
  // Mirrors the paper's example trio (A-1240, B-1146, C-1223): one module
  // per vendor with distinct victim-count scales.
  DramModule a;
  a.manufacturer = Manufacturer::kA;
  a.year = 2012; a.week = 40; a.vulnerable = true;
  a.row_victim_mean = 9.5;
  DramModule b;
  b.manufacturer = Manufacturer::kB;
  b.year = 2011; b.week = 46; b.vulnerable = true;
  b.row_victim_mean = 2.5;
  DramModule c;
  c.manufacturer = Manufacturer::kC;
  c.year = 2012; c.week = 23; c.vulnerable = true;
  c.row_victim_mean = 5.0;
  return {a, b, c};
}

}  // namespace rdsim::dram
