#include "nand/chip.h"

namespace rdsim::nand {

Chip::Chip(const Geometry& geometry, const flash::FlashModelParams& params,
           std::uint64_t seed)
    : geometry_(geometry), model_(params) {
  Rng root(seed);
  blocks_.reserve(geometry.blocks);
  for (std::uint32_t i = 0; i < geometry.blocks; ++i) {
    blocks_.emplace_back(geometry_, model_, root.fork());
  }
}

void Chip::advance_time(double days) {
  for (auto& b : blocks_) b.advance_time(days);
}

void Chip::wear_block(std::size_t i, std::uint32_t pe) {
  blocks_[i].add_wear(pe);
}

}  // namespace rdsim::nand
