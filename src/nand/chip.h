// rdsim/nand/chip.h
//
// A simulated MLC NAND chip: a set of blocks sharing one Vth physics model
// and one wall clock. This is the software stand-in for the paper's
// FPGA-attached 2Y-nm parts; experiments drive it through the same
// operations a flash controller would issue (erase, program, read,
// read-retry).
//
// Construction is cheap by design: each block gets only a seed (one fork
// of the chip's root Rng) and an untouched cell arena — programming a
// block records bookkeeping and the per-cell ground truth materializes
// lazily per wordline on first touch (see nand/block.h). Experiments can
// therefore rebuild a chip per measurement point for free and pay only
// for the wordlines they actually sense.
#pragma once

#include <memory>
#include <vector>

#include "common/rng.h"
#include "flash/params.h"
#include "flash/vth_model.h"
#include "nand/block.h"
#include "nand/geometry.h"

namespace rdsim::nand {

class Chip {
 public:
  Chip(const Geometry& geometry, const flash::FlashModelParams& params,
       std::uint64_t seed);

  const Geometry& geometry() const { return geometry_; }
  const flash::VthModel& model() const { return model_; }

  std::size_t block_count() const { return blocks_.size(); }
  Block& block(std::size_t i) { return blocks_[i]; }
  const Block& block(std::size_t i) const { return blocks_[i]; }

  /// Advances every block's wall clock.
  void advance_time(double days);

  /// Pre-ages a block: `pe` program/erase cycles of wear, ending erased.
  /// Wear is applied in bulk (no per-cycle data retention simulation),
  /// mirroring how the paper's characterization pre-cycles blocks.
  void wear_block(std::size_t i, std::uint32_t pe);

 private:
  Geometry geometry_;
  flash::VthModel model_;
  std::vector<Block> blocks_;
};

}  // namespace rdsim::nand
