#include "nand/block.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace rdsim::nand {

using flash::CellState;

Block::Block(const Geometry& geometry, const flash::VthModel& model, Rng rng)
    : geometry_(geometry),
      model_(&model),
      rng_(rng),
      cells_(geometry.cells_per_block()),
      vpass_(model.params().vpass_nominal),
      self_dose_(geometry.wordlines_per_block, 0.0),
      blocking_threshold_(geometry.bitlines,
                          std::numeric_limits<float>::infinity()) {}

void Block::erase() {
  for (auto& c : cells_) c = flash::CellGroundTruth{};
  programmed_ = false;
  dose_total_ = 0.0;
  std::fill(self_dose_.begin(), self_dose_.end(), 0.0);
  std::fill(blocking_threshold_.begin(), blocking_threshold_.end(),
            std::numeric_limits<float>::infinity());
}

void Block::add_wear(std::uint32_t pe) {
  erase();
  pe_cycles_ += pe;
}

void Block::program_random() {
  PageBits lsb(geometry_.bitlines), msb(geometry_.bitlines);
  for (std::uint32_t wl = 0; wl < geometry_.wordlines_per_block; ++wl) {
    for (std::uint32_t bl = 0; bl < geometry_.bitlines; ++bl) {
      lsb[bl] = static_cast<std::uint8_t>(rng_.next() & 1);
      msb[bl] = static_cast<std::uint8_t>(rng_.next() & 1);
    }
    program_wordline(wl, lsb, msb);
  }
}

void Block::program_wordline(std::uint32_t wl, const PageBits& lsb,
                             const PageBits& msb) {
  assert(wl < geometry_.wordlines_per_block);
  assert(lsb.size() == geometry_.bitlines && msb.size() == geometry_.bitlines);
  const double pe = pe_cycles_;
  for (std::uint32_t bl = 0; bl < geometry_.bitlines; ++bl) {
    const CellState state = flash::state_of_bits(lsb[bl], msb[bl]);
    cells_[index(wl, bl)] = model_->sample_program(state, pe, rng_);
  }
  if (wl + 1 == geometry_.wordlines_per_block) {
    // Whole block programmed: account the P/E cycle, timestamp the data,
    // and draw each bitline's pass-through blocking threshold from the
    // calibrated top-tail distribution.
    ++pe_cycles_;
    programmed_ = true;
    programmed_day_ = now_days_;
    const auto& p = model_->params();
    for (auto& thr : blocking_threshold_) {
      thr = static_cast<float>(
          rng_.normal(p.tail_mean + p.mc_tail_mean_adjust, p.tail_sd));
    }
  }
}

void Block::apply_reads(std::uint32_t wl, double count) {
  assert(wl < geometry_.wordlines_per_block);
  const double dose = model_->disturb_dose(count, vpass_, pe_cycles_);
  dose_total_ += dose;
  self_dose_[wl] += dose;
}

double Block::dose_for_wordline(std::uint32_t wl) const {
  double dose = dose_total_ - self_dose_[wl];
  const double boost = model_->params().neighbor_dose_boost;
  if (boost > 0.0) {
    // Concentrated disturb extension: reads addressed at the direct
    // neighbors hit this wordline harder than the block average.
    if (wl > 0) dose += boost * self_dose_[wl - 1];
    if (wl + 1 < geometry_.wordlines_per_block)
      dose += boost * self_dose_[wl + 1];
  }
  return dose;
}

double Block::present_vth(std::uint32_t wl, std::uint32_t bl) const {
  return model_->present_vth(cells_[index(wl, bl)], dose_for_wordline(wl),
                             retention_days(), pe_cycles_);
}

double Block::blocking_drop() const {
  return model_->params().tail_ret_drop *
         std::log1p(std::max(retention_days(), 0.0));
}

double Block::present_blocking(std::uint32_t bl) const {
  return static_cast<double>(blocking_threshold_[bl]) - blocking_drop();
}

Block::SenseContext Block::sense_context(std::uint32_t wl) const {
  return SenseContext{dose_for_wordline(wl), retention_days(),
                      blocking_drop()};
}

CellState Block::sense(const SenseContext& ctx, std::uint32_t wl,
                       std::uint32_t bl, bool* blocked) const {
  // Pass-through check: if the bitline's blocking threshold exceeds the
  // present Vpass, some unread cell fails to conduct and the whole string
  // senses as non-conducting — i.e. as the highest state.
  if (static_cast<double>(blocking_threshold_[bl]) - ctx.blocking_drop >
      vpass_) {
    if (blocked != nullptr) *blocked = true;
    return CellState::kP3;
  }
  if (blocked != nullptr) *blocked = false;
  return model_->classify(model_->present_vth(cells_[index(wl, bl)], ctx.dose,
                                              ctx.days, pe_cycles_));
}

ReadResult Block::read_page(PageAddress address) {
  assert(programmed_);
  ReadResult result;
  result.bits.resize(geometry_.bitlines);
  const SenseContext ctx = sense_context(address.wordline);
  for (std::uint32_t bl = 0; bl < geometry_.bitlines; ++bl) {
    const CellState observed = sense(ctx, address.wordline, bl, nullptr);
    const CellState truth = cells_[index(address.wordline, bl)].programmed;
    const int bit = address.kind == PageKind::kLsb ? flash::lsb_of(observed)
                                                   : flash::msb_of(observed);
    const int want = address.kind == PageKind::kLsb ? flash::lsb_of(truth)
                                                    : flash::msb_of(truth);
    result.bits[bl] = static_cast<std::uint8_t>(bit);
    result.raw_bit_errors += bit != want;
  }
  apply_reads(address.wordline, 1.0);
  return result;
}

int Block::count_errors(PageAddress address) const {
  int errors = 0;
  const SenseContext ctx = sense_context(address.wordline);
  for (std::uint32_t bl = 0; bl < geometry_.bitlines; ++bl) {
    const CellState observed = sense(ctx, address.wordline, bl, nullptr);
    const CellState truth = cells_[index(address.wordline, bl)].programmed;
    if (address.kind == PageKind::kLsb)
      errors += flash::lsb_of(observed) != flash::lsb_of(truth);
    else
      errors += flash::msb_of(observed) != flash::msb_of(truth);
  }
  return errors;
}

int Block::count_blocked_bitlines(std::uint32_t wl, double vpass) const {
  (void)wl;  // The blocker is virtually never on the addressed wordline.
  const double drop = blocking_drop();
  int blocked = 0;
  for (std::uint32_t bl = 0; bl < geometry_.bitlines; ++bl)
    blocked += static_cast<double>(blocking_threshold_[bl]) - drop > vpass;
  return blocked;
}

std::vector<double> Block::read_retry_scan(std::uint32_t wl, double lo,
                                           double hi, double step) const {
  assert(step > 0.0 && hi > lo);
  std::vector<double> out(geometry_.bitlines);
  const double dose = dose_for_wordline(wl);
  const double days = retention_days();
  for (std::uint32_t bl = 0; bl < geometry_.bitlines; ++bl) {
    const double v =
        model_->present_vth(cells_[index(wl, bl)], dose, days, pe_cycles_);
    if (v < lo) {
      out[bl] = lo;
    } else if (v >= hi) {
      out[bl] = hi;
    } else {
      // First retry step at which the cell conducts.
      const double k = std::ceil((v - lo) / step);
      out[bl] = std::min(lo + k * step, hi);
    }
  }
  return out;
}

}  // namespace rdsim::nand
