#include "nand/block.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "flash/vmath.h"

namespace rdsim::nand {

using flash::CellState;

namespace {

/// Data bit of a state byte, as branch-free arithmetic the vectorizer can
/// keep in byte lanes (equivalent to flash::lsb_of / flash::msb_of).
constexpr std::uint8_t lsb_bit(std::uint8_t state) {
  return static_cast<std::uint8_t>(1u ^ (state >> 1));
}
constexpr std::uint8_t msb_bit(std::uint8_t state) {
  return static_cast<std::uint8_t>(
      1u ^ (((static_cast<unsigned>(state) + 1u) >> 1) & 1u));
}

constexpr bool bit_tables_match() {
  for (int s = 0; s < 4; ++s) {
    const auto state = static_cast<CellState>(s);
    if (lsb_bit(static_cast<std::uint8_t>(s)) != flash::lsb_of(state))
      return false;
    if (msb_bit(static_cast<std::uint8_t>(s)) != flash::msb_of(state))
      return false;
  }
  return true;
}
static_assert(bit_tables_match(),
              "branch-free bit extraction must match the Gray code of "
              "flash/types.h");

}  // namespace

Block::Block(const Geometry& geometry, const flash::VthModel& model, Rng rng)
    : geometry_(geometry),
      model_(&model),
      cell_count_(geometry.cells_per_block()),
      // One uninitialized allocation for all per-cell arrays: 4 float
      // fields plus the state bytes (the byte view of the tail floats is
      // legal — unsigned char may alias anything). Every row stays
      // untouched until ensure_wordline materializes it, so constructing
      // a block costs one allocation and no arena traffic at all.
      cell_arena_(std::make_unique_for_overwrite<float[]>(
          4 * cell_count_ + (cell_count_ + 3) / 4)),
      v0_(cell_arena_.get()),
      susceptibility_(v0_ + cell_count_),
      leak_rate_(susceptibility_ + cell_count_),
      disturb_seed_(leak_rate_ + cell_count_),
      state_(reinterpret_cast<std::uint8_t*>(disturb_seed_ + cell_count_)),
      seed_valid_(geometry.wordlines_per_block, 0),
      wl_ready_(geometry.wordlines_per_block, 0),
      block_seed_(rng.next()),
      vpass_(model.params().vpass_nominal),
      self_dose_(geometry.wordlines_per_block, 0.0),
      blocking_threshold_(geometry.bitlines,
                          std::numeric_limits<float>::infinity()),
      blocking_sorted_(geometry.bitlines,
                       std::numeric_limits<float>::infinity()),
      vth_scratch_(geometry.bitlines, 0.0),
      state_scratch_(geometry.bitlines, 0) {}

void Block::invalidate_cells() {
  std::fill(wl_ready_.begin(), wl_ready_.end(), std::uint8_t{0});
  std::fill(seed_valid_.begin(), seed_valid_.end(), std::uint8_t{0});
}

void Block::erase() {
  invalidate_cells();
  pending_random_ = false;
  programmed_ = false;
  dose_total_ = 0.0;
  std::fill(self_dose_.begin(), self_dose_.end(), 0.0);
  std::fill(blocking_threshold_.begin(), blocking_threshold_.end(),
            std::numeric_limits<float>::infinity());
  std::fill(blocking_sorted_.begin(), blocking_sorted_.end(),
            std::numeric_limits<float>::infinity());
}

void Block::add_wear(std::uint32_t pe) {
  erase();
  pe_cycles_ += pe;
}

void Block::program_random() {
  assert(!programmed_ && "program_random requires erased state");
  // Record the program event; cells materialize lazily per wordline from
  // Rng::at(block_seed_, program_epoch_, wl). Invalidate any rows an
  // erased-state sense may have materialized since the erase.
  invalidate_cells();
  pending_random_ = true;
  ++program_epoch_;
  program_pe_ = pe_cycles_;
  ++pe_cycles_;
  programmed_ = true;
  programmed_day_ = now_days_;
  draw_blocking_thresholds();
}

void Block::program_wordline(std::uint32_t wl, const PageBits& lsb,
                             const PageBits& msb) {
  assert(wl < geometry_.wordlines_per_block);
  assert(lsb.size() == geometry_.bitlines && msb.size() == geometry_.bitlines);
  assert(!pending_random_ && "mixing explicit programming with a pending "
                             "program_random is not supported");
  if (wl == 0) ++program_epoch_;  // Each pass over the block is one event.
  const std::size_t base = index(wl, 0);
  seed_valid_[wl] = 0;  // The exp(-B*v0) cache refills on the next sense.
  for (std::uint32_t bl = 0; bl < geometry_.bitlines; ++bl)
    state_[base + bl] =
        static_cast<std::uint8_t>(flash::state_of_bits(lsb[bl], msb[bl]));
  // Same per-wordline stream family as the lazy path (minus the data-bit
  // draws — the data is the caller's), so explicit programming is equally
  // order-pure within its epoch. Sampling wear is the live P/E count:
  // this path materializes eagerly, so no snapshot is needed.
  Rng wl_rng = Rng::at(block_seed_, program_epoch_, wl);
  model_->sample_program_batch(state_ + base, geometry_.bitlines,
                               static_cast<double>(pe_cycles_), wl_rng,
                               program_scratch_, v0_ + base,
                               susceptibility_ + base, leak_rate_ + base);
  wl_ready_[wl] = 1;
  if (wl + 1 == geometry_.wordlines_per_block) {
    // Whole block programmed: account the P/E cycle, timestamp the data,
    // and draw each bitline's pass-through blocking threshold.
    ++pe_cycles_;
    programmed_ = true;
    programmed_day_ = now_days_;
    draw_blocking_thresholds();
  }
}

void Block::draw_blocking_thresholds() {
  // Each bitline's pass-through blocking threshold, from the calibrated
  // top-tail distribution, on a stream id past every wordline's so the
  // draws are independent of which (and whether) wordlines materialize.
  const auto& p = model_->params();
  Rng rng =
      Rng::at(block_seed_, program_epoch_, geometry_.wordlines_per_block);
  rng.fill_normal(blocking_threshold_.data(), blocking_threshold_.size(),
                  p.tail_mean + p.mc_tail_mean_adjust, p.tail_sd);
  std::copy(blocking_threshold_.begin(), blocking_threshold_.end(),
            blocking_sorted_.begin());
  std::sort(blocking_sorted_.begin(), blocking_sorted_.end());
}

void Block::ensure_wordline(std::uint32_t wl) const {
  assert(wl < geometry_.wordlines_per_block);
  if (wl_ready_[wl] == 0) materialize_wordline(wl);
}

void Block::materialize_wordline(std::uint32_t wl) const {
  const std::size_t base = index(wl, 0);
  if (pending_random_) {
    // The deferred half of program_random: draw this wordline's data bits
    // (64 per raw draw, (LSB, MSB) per bitline in order) and program
    // sample from the wordline's own counter-based stream — a pure
    // function of (block seed, epoch, wl), independent of touch order.
    Rng wl_rng = Rng::at(block_seed_, program_epoch_, wl);
    bits_scratch_.resize(2 * static_cast<std::size_t>(geometry_.bitlines));
    wl_rng.fill_random_bits(bits_scratch_.data(), bits_scratch_.size());
    const std::uint8_t* bits = bits_scratch_.data();
    for (std::uint32_t bl = 0; bl < geometry_.bitlines; ++bl)
      state_[base + bl] = static_cast<std::uint8_t>(flash::state_of_bits(
          bits[2 * static_cast<std::size_t>(bl)],
          bits[2 * static_cast<std::size_t>(bl) + 1]));
    model_->sample_program_batch(state_ + base, geometry_.bitlines,
                                 program_pe_, wl_rng, program_scratch_,
                                 v0_ + base, susceptibility_ + base,
                                 leak_rate_ + base);
  } else {
    // Erased ground truth: CellState::kEr (data bits (1,1) in the Gray
    // code) with default multipliers.
    std::fill_n(state_ + base, geometry_.bitlines, std::uint8_t{0});
    std::fill_n(v0_ + base, geometry_.bitlines, 0.0F);
    std::fill_n(susceptibility_ + base, geometry_.bitlines, 1.0F);
    std::fill_n(leak_rate_ + base, geometry_.bitlines, 1.0F);
  }
  seed_valid_[wl] = 0;
  wl_ready_[wl] = 1;
}

void Block::apply_reads(std::uint32_t wl, double count) {
  assert(wl < geometry_.wordlines_per_block);
  const double dose = model_->disturb_dose(count, vpass_, pe_cycles_);
  dose_total_ += dose;
  self_dose_[wl] += dose;
}

double Block::dose_for_wordline(std::uint32_t wl) const {
  double dose = dose_total_ - self_dose_[wl];
  const double boost = model_->params().neighbor_dose_boost;
  if (boost > 0.0) {
    // Concentrated disturb extension: reads addressed at the direct
    // neighbors hit this wordline harder than the block average.
    if (wl > 0) dose += boost * self_dose_[wl - 1];
    if (wl + 1 < geometry_.wordlines_per_block)
      dose += boost * self_dose_[wl + 1];
  }
  return dose;
}

void Block::ensure_disturb_seed(std::uint32_t wl) const {
  if (seed_valid_[wl] != 0) return;
  const std::size_t base = index(wl, 0);
  const float* v0 = v0_ + base;
  float* seed = disturb_seed_ + base;
  const double b = model_->params().disturb_b;
  // Straight-line vexp (same expression as VthModel::disturb_seed): this
  // loop vectorizes, so the one-time fill costs a few ns per cell and
  // every later sense of the wordline reuses it.
  for (std::uint32_t bl = 0; bl < geometry_.bitlines; ++bl)
    seed[bl] = static_cast<float>(
        flash::vmath::vexp(-b * static_cast<double>(v0[bl])));
  seed_valid_[wl] = 1;
}

double Block::present_vth(std::uint32_t wl, std::uint32_t bl) const {
  const auto coeffs = model_->sense_coeffs(dose_for_wordline(wl),
                                           retention_days(), pe_cycles_);
  ensure_wordline(wl);
  ensure_disturb_seed(wl);
  const std::size_t i = index(wl, bl);
  return model_->present_vth_cached(
      coeffs, static_cast<double>(v0_[i]), disturb_seed_[i],
      static_cast<double>(susceptibility_[i]),
      static_cast<double>(leak_rate_[i]));
}

void Block::present_vth_into(std::uint32_t wl, double* out) const {
  const auto coeffs = model_->sense_coeffs(dose_for_wordline(wl),
                                           retention_days(), pe_cycles_);
  ensure_wordline(wl);
  ensure_disturb_seed(wl);
  const std::size_t base = index(wl, 0);
  const flash::CellSoaView view{state_ + base,
                                v0_ + base,
                                susceptibility_ + base,
                                leak_rate_ + base,
                                disturb_seed_ + base,
                                geometry_.bitlines};
  model_->present_vth_batch(view, coeffs, out);
}

std::vector<double> Block::present_vth_page(std::uint32_t wl) const {
  assert(wl < geometry_.wordlines_per_block);
  std::vector<double> out(geometry_.bitlines);
  present_vth_into(wl, out.data());
  return out;
}

double Block::blocking_drop() const {
  return model_->params().tail_ret_drop *
         std::log1p(std::max(retention_days(), 0.0));
}

void Block::sense_page(std::uint32_t wl) const {
  present_vth_into(wl, vth_scratch_.data());
  model_->classify_batch(vth_scratch_.data(), geometry_.bitlines,
                         state_scratch_.data());
  // Pass-through override: if a bitline's blocking threshold exceeds the
  // present Vpass, some unread cell fails to conduct and the whole string
  // senses as non-conducting — i.e. as the highest state.
  const double drop = blocking_drop();
  const double vpass = vpass_;
  const float* thr = blocking_threshold_.data();
  std::uint8_t* states = state_scratch_.data();
  for (std::uint32_t bl = 0; bl < geometry_.bitlines; ++bl) {
    const bool blocked = static_cast<double>(thr[bl]) - drop > vpass;
    states[bl] = blocked ? static_cast<std::uint8_t>(CellState::kP3)
                         : states[bl];
  }
}

ReadResult Block::read_page(PageAddress address) {
  assert(programmed_);
  ReadResult result;
  result.bits.resize(geometry_.bitlines);
  sense_page(address.wordline);
  const std::size_t base = index(address.wordline, 0);
  const std::uint8_t* sensed = state_scratch_.data();
  const std::uint8_t* truth = state_ + base;
  std::uint8_t* bits = result.bits.data();
  int errors = 0;
  if (address.kind == PageKind::kLsb) {
    for (std::uint32_t bl = 0; bl < geometry_.bitlines; ++bl) {
      bits[bl] = lsb_bit(sensed[bl]);
      errors += bits[bl] != lsb_bit(truth[bl]);
    }
  } else {
    for (std::uint32_t bl = 0; bl < geometry_.bitlines; ++bl) {
      bits[bl] = msb_bit(sensed[bl]);
      errors += bits[bl] != msb_bit(truth[bl]);
    }
  }
  result.raw_bit_errors = errors;
  apply_reads(address.wordline, 1.0);
  return result;
}

int Block::count_errors(PageAddress address) const {
  sense_page(address.wordline);
  const std::size_t base = index(address.wordline, 0);
  const std::uint8_t* sensed = state_scratch_.data();
  const std::uint8_t* truth = state_ + base;
  int errors = 0;
  if (address.kind == PageKind::kLsb) {
    for (std::uint32_t bl = 0; bl < geometry_.bitlines; ++bl)
      errors += lsb_bit(sensed[bl]) != lsb_bit(truth[bl]);
  } else {
    for (std::uint32_t bl = 0; bl < geometry_.bitlines; ++bl)
      errors += msb_bit(sensed[bl]) != msb_bit(truth[bl]);
  }
  return errors;
}

int Block::count_blocked_bitlines(std::uint32_t wl, double vpass) const {
  (void)wl;  // The blocker is virtually never on the addressed wordline.
  const double drop = blocking_drop();
  // blocking_sorted_ ascends and t -> t - drop is monotone, so "blocked"
  // is a suffix; the partition point gives the same count the per-bitline
  // scan did, in O(log bitlines).
  const auto first_blocked = std::partition_point(
      blocking_sorted_.begin(), blocking_sorted_.end(), [&](float t) {
        return !(static_cast<double>(t) - drop > vpass);
      });
  return static_cast<int>(blocking_sorted_.end() - first_blocked);
}

std::vector<double> Block::read_retry_scan(std::uint32_t wl, double lo,
                                           double hi, double step) const {
  assert(step > 0.0 && hi > lo);
  std::vector<double> out(geometry_.bitlines);
  present_vth_into(wl, out.data());
  for (std::uint32_t bl = 0; bl < geometry_.bitlines; ++bl) {
    const double v = out[bl];
    if (v < lo) {
      out[bl] = lo;
    } else if (v >= hi) {
      out[bl] = hi;
    } else {
      // First retry step at which the cell conducts.
      const double k = std::ceil((v - lo) / step);
      out[bl] = std::min(lo + k * step, hi);
    }
  }
  return out;
}

}  // namespace rdsim::nand
