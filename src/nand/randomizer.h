// rdsim/nand/randomizer.h
//
// Data randomizer (scrambler) of the kind flash controllers place in the
// write path so that cell states are uniformly distributed regardless of
// host data — the assumption behind every distribution in the paper. XORs
// the payload with a per-page keystream derived from the physical address.
#pragma once

#include <cstdint>
#include <span>

namespace rdsim::nand {

/// Stateless scrambler: scramble and descramble are the same operation.
class Randomizer {
 public:
  explicit Randomizer(std::uint64_t device_key = 0x52D5A4D1E9F0B6C3ULL)
      : device_key_(device_key) {}

  /// XORs `data` in place with the keystream for (block, page).
  void apply(std::uint32_t block, std::uint32_t page,
             std::span<std::uint8_t> data) const;

 private:
  std::uint64_t device_key_;
};

}  // namespace rdsim::nand
