// rdsim/nand/geometry.h
//
// Physical organization of the simulated MLC NAND chip. An MLC wordline
// stores two pages (LSB page and MSB page); cells along a wordline belong
// to distinct bitlines, and all wordlines of a block share its bitlines —
// which is exactly why reading one page disturbs the others (§1).
#pragma once

#include <cstdint>

namespace rdsim::nand {

struct Geometry {
  std::uint32_t wordlines_per_block = 64;
  std::uint32_t bitlines = 8192;  ///< Cells per wordline = bits per page.
  std::uint32_t blocks = 1;       ///< Blocks per simulated chip.

  std::uint32_t pages_per_block() const { return 2 * wordlines_per_block; }
  std::uint64_t cells_per_block() const {
    return static_cast<std::uint64_t>(wordlines_per_block) * bitlines;
  }
  std::uint64_t bits_per_block() const { return 2 * cells_per_block(); }

  /// Small geometry for unit tests (fast to program and scan).
  static Geometry tiny() { return Geometry{16, 1024, 4}; }
  /// Characterization geometry: one observable block comparable to the
  /// paper's per-block measurements.
  static Geometry characterization() { return Geometry{64, 8192, 1}; }
};

/// Identifies one page: wordline + which of the two MLC pages.
enum class PageKind : std::uint8_t { kLsb = 0, kMsb = 1 };

struct PageAddress {
  std::uint32_t wordline = 0;
  PageKind kind = PageKind::kLsb;
};

}  // namespace rdsim::nand
