// rdsim/nand/block.h
//
// Monte Carlo model of one NAND flash block: a wordlines x bitlines array
// of MLC cells with per-cell ground truth, block-level disturb dose
// accounting, retention aging, and read operations that reproduce the two
// error channels the paper studies:
//   (1) read disturb — every page read adds tunneling dose to the *other*
//       wordlines, shifting their threshold voltages upward;
//   (2) pass-through failures — with a relaxed Vpass, the highest-Vth cell
//       elsewhere on a bitline can fail to conduct, corrupting the sensed
//       value of the cell actually being read.
//
// Cells are stored structure-of-arrays (one contiguous array per ground
// truth field, wordline-major) so a page sense is a handful of
// auto-vectorized passes over contiguous memory instead of a per-cell
// scalar loop: batched present-Vth (flash::VthModel::present_vth_batch,
// reusing a per-wordline exp(-B*v0) cache filled on first sense),
// branchless classification, and a bit-compare against the programmed
// data pages.
//
// Programming is O(bookkeeping): program_random() records the program
// event (epoch, P/E at program time, random-data intent) and draws only
// the per-bitline blocking thresholds; the per-cell ground truth of a
// wordline is materialized lazily on first touch from the counter-based
// stream Rng::at(block seed, program epoch, wl) — a pure function of
// that triple, so the cells are bit-identical no matter which wordlines
// are touched first (or whether some are never touched at all).
// Characterization experiments rebuild and program a whole chip per
// measurement point but sense only a few wordlines; deferring the
// sampling removes ~95% of chip-construction cost.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "flash/params.h"
#include "flash/vth_model.h"
#include "nand/geometry.h"

namespace rdsim::nand {

/// One page's worth of bits (values 0/1, one byte per bit).
using PageBits = std::vector<std::uint8_t>;

/// Result of reading a page.
struct ReadResult {
  PageBits bits;            ///< Sensed data.
  int raw_bit_errors = 0;   ///< Mismatches vs programmed ground truth.
};

class Block {
 public:
  /// `model` must outlive the block.
  Block(const Geometry& geometry, const flash::VthModel& model, Rng rng);

  const Geometry& geometry() const { return geometry_; }
  const flash::VthModel& model() const { return *model_; }
  std::uint32_t pe_cycles() const { return pe_cycles_; }
  double dose() const { return dose_total_; }
  double vpass() const { return vpass_; }
  bool programmed() const { return programmed_; }
  /// Retention age of the resident data in days.
  double retention_days() const { return now_days_ - programmed_day_; }

  /// Sets the pass-through voltage used by subsequent reads (the knob the
  /// paper's Vpass Tuning mechanism controls).
  void set_vpass(double vpass) { vpass_ = vpass; }

  /// Erases the block (one P/E half) — data is gone, dose resets.
  void erase();

  /// Pre-ages the block by `pe` program/erase cycles without simulating
  /// each cycle's data (the paper pre-cycles blocks the same way before
  /// characterizing them). Leaves the block erased.
  void add_wear(std::uint32_t pe);

  /// Programs every wordline with pseudo-random data, counting one P/E
  /// cycle together with the preceding erase. Requires erased state.
  /// O(bitlines) bookkeeping: per-cell sampling is deferred to the first
  /// touch of each wordline (see the header comment); only the
  /// per-bitline blocking thresholds are drawn here.
  void program_random();

  /// Programs one wordline with explicit LSB/MSB pages (bits 0/1, size ==
  /// bitlines). Wordlines must be programmed in order after an erase.
  void program_wordline(std::uint32_t wl, const PageBits& lsb,
                        const PageBits& msb);

  /// Advances wall-clock time; affects retention age.
  void advance_time(double days) { now_days_ += days; }

  /// Applies `count` read operations addressed at wordline `wl` (any page
  /// kind) without materializing the data: disturb dose accumulates on all
  /// *other* wordlines. This is how characterization loops apply millions
  /// of disturbs in O(1).
  void apply_reads(std::uint32_t wl, double count);

  /// Reads a page: senses each cell against the read references, honoring
  /// pass-through blocking at the current Vpass, then accounts the read's
  /// disturb dose. Ground-truth mismatches are reported.
  ReadResult read_page(PageAddress address);

  /// Number of raw bit errors a read of `address` would return right now,
  /// without disturbing the block (used by tests and the tuning oracle).
  int count_errors(PageAddress address) const;

  /// Count of bitlines that fail to conduct (read as all-off) for a read
  /// of wordline `wl` at pass-through voltage `vpass` — Step 2 of the
  /// paper's Vpass identification counts exactly this "number of 0s".
  /// O(log bitlines): a binary search over the sorted blocking thresholds
  /// kept since program time, so Vpass sweeps don't rescan the block.
  int count_blocked_bitlines(std::uint32_t wl, double vpass) const;

  /// Present threshold voltage of one cell.
  double present_vth(std::uint32_t wl, std::uint32_t bl) const;

  /// Present threshold voltages of every cell on wordline `wl`, computed
  /// by one batched pass (bit-identical to present_vth per cell).
  std::vector<double> present_vth_page(std::uint32_t wl) const;

  /// Intended (programmed) state of one cell.
  flash::CellState cell_state(std::uint32_t wl, std::uint32_t bl) const {
    ensure_wordline(wl);
    return static_cast<flash::CellState>(state_[index(wl, bl)]);
  }

  /// Ground truth record of one cell, assembled from the SoA store.
  flash::CellGroundTruth cell(std::uint32_t wl, std::uint32_t bl) const {
    ensure_wordline(wl);
    const std::size_t i = index(wl, bl);
    return {static_cast<flash::CellState>(state_[i]), v0_[i],
            susceptibility_[i], leak_rate_[i]};
  }

  /// Day-0 pass-through blocking threshold of one bitline: the lowest
  /// Vpass at which every cell on the bitline's string conducts (retention
  /// drifts the effective value down; +inf while erased).
  double blocking_threshold(std::uint32_t bl) const {
    return static_cast<double>(blocking_threshold_[bl]);
  }

  /// Read-retry scan: quantized threshold voltage of every cell on
  /// wordline `wl`, stepping the read reference from `lo` to `hi` by
  /// `step` (mimics the retry interface real MLC parts expose). Cells at
  /// or above `hi` report `hi`.
  std::vector<double> read_retry_scan(std::uint32_t wl, double lo, double hi,
                                      double step) const;

  /// Disturb dose experienced by cells of wordline `wl` (total block dose
  /// minus the dose from reads addressed to `wl` itself).
  double dose_for_wordline(std::uint32_t wl) const;

 private:
  std::size_t index(std::uint32_t wl, std::uint32_t bl) const {
    return static_cast<std::size_t>(wl) * geometry_.bitlines + bl;
  }

  /// Retention drift of the blocking thresholds at the present age (the
  /// single source of truth for the drop the blocking checks subtract).
  double blocking_drop() const;

  /// Batched whole-wordline sense into the scratch buffers: present Vth
  /// (vth_scratch_), classification, and the pass-through blocking
  /// override (state_scratch_). Valid until the next sense on this block.
  void sense_page(std::uint32_t wl) const;

  /// Batched present Vth of wordline `wl` into out[0..bitlines).
  void present_vth_into(std::uint32_t wl, double* out) const;

  Geometry geometry_;
  const flash::VthModel* model_;

  // Structure-of-arrays cell ground truth, wordline-major, all fields
  // carved out of one uninitialized arena allocation — characterization
  // experiments construct whole chips per measurement point, so block
  // setup cost must stay page-fault-bound. No field is ever initialized
  // eagerly: a wordline's row is filled on first touch by
  // ensure_wordline() (erased defaults, or the program-time sample when a
  // program_random is pending), and erase()/program_random() only flip
  // the per-wordline validity flags. The programmed data bits are not
  // stored separately: state_ is the intended state and the Gray code is
  // a bijection, so error counting derives both sensed and truth bits
  // from state bytes with the same branch-free arithmetic.
  //
  // disturb_seed_ is the cached disturb transform exp(-B*v0) per cell,
  // filled lazily one wordline at a time by a vectorized pass on the
  // first sense after (re)programming — characterization workloads
  // program millions of cells but sense a few wordlines many times, so
  // paying the exp at program time would tax the program-heavy
  // experiments instead. Stored as float: a few-ulp-of-float error on
  // the cached exponential is far below the model's fidelity (the sense
  // paths round it identically everywhere).
  std::size_t cell_count_ = 0;
  std::unique_ptr<float[]> cell_arena_;
  float* v0_ = nullptr;
  float* susceptibility_ = nullptr;
  float* leak_rate_ = nullptr;
  float* disturb_seed_ = nullptr;  ///< Lazily filled (data mutable via
                                   ///< const sense paths).
  std::uint8_t* state_ = nullptr;  ///< Intended CellState bytes.
  mutable std::vector<std::uint8_t> seed_valid_;  ///< Per wordline.
  mutable std::vector<std::uint8_t> wl_ready_;    ///< Row materialized?

  /// Invalidates every wordline's materialized row (the lazy equivalent
  /// of rewriting the ~2 MB arena with erased defaults).
  void invalidate_cells();

  /// Materializes wordline `wl`'s ground-truth row if not already valid:
  /// erased defaults, or — when a program_random is pending — the data
  /// bits and program sample drawn from Rng::at(block_seed_,
  /// program_epoch_, wl).
  void ensure_wordline(std::uint32_t wl) const;
  void materialize_wordline(std::uint32_t wl) const;

  /// Draws the per-bitline blocking thresholds for the just-completed
  /// program (their own counter-based stream, so they are independent of
  /// wordline materialization order) and rebuilds the sorted copy.
  void draw_blocking_thresholds();

  /// Fills disturb_seed_ for wordline `wl` if not already valid. The
  /// wordline row must already be materialized.
  void ensure_disturb_seed(std::uint32_t wl) const;

  /// Root of every per-wordline stream this block derives; fixed at
  /// construction from the chip's fork.
  std::uint64_t block_seed_ = 0;
  /// Program-event counter: bumped at the start of every program event
  /// (program_random, or an explicit pass beginning at wordline 0) so
  /// each event owns a distinct (block_seed_, epoch) stream family and
  /// draws fresh data even if a caller skips the erase.
  std::uint64_t program_epoch_ = 0;
  /// P/E count the resident data was programmed at (sampling input for
  /// lazily materialized wordlines; pe_cycles_ itself moves on at the
  /// program's end).
  double program_pe_ = 0.0;
  /// A program_random is recorded but its cells not yet materialized.
  bool pending_random_ = false;

  std::uint32_t pe_cycles_ = 0;
  bool programmed_ = false;
  double vpass_;
  double dose_total_ = 0.0;          ///< Unit-vpass-adjusted dose (see
                                     ///< VthModel::disturb_dose).
  std::vector<double> self_dose_;    ///< Dose from reads addressed per WL.
  double now_days_ = 0.0;
  double programmed_day_ = 0.0;

  /// Per-bitline blocking threshold: the lowest Vpass at which every cell
  /// on the bitline's string still conducts (day-0 value; retention drifts
  /// it down). Sampled at program time from the calibrated top-tail
  /// distribution; +inf while erased. The responsible cell is, with
  /// overwhelming probability, on a different wordline than the one being
  /// read, so no self-exclusion is modeled.
  std::vector<float> blocking_threshold_;

  /// Ascending copy of blocking_threshold_, rebuilt at program/erase time;
  /// count_blocked_bitlines binary-searches it instead of rescanning.
  std::vector<float> blocking_sorted_;

  /// Whole-page sense scratch (bitlines elements each). Mutable so const
  /// reads can batch; a Block is not meant to be sensed concurrently from
  /// multiple threads (experiment shards own their chips).
  mutable std::vector<double> vth_scratch_;
  mutable std::vector<std::uint8_t> state_scratch_;
  /// Lazy-materialization scratch: one wordline's data bits (2 per cell)
  /// and the program-sampling workspace, reused across wordlines.
  mutable std::vector<std::uint8_t> bits_scratch_;
  mutable flash::VthModel::ProgramSampleScratch program_scratch_;
};

}  // namespace rdsim::nand
