// rdsim/nand/block.h
//
// Monte Carlo model of one NAND flash block: a wordlines x bitlines array
// of MLC cells with per-cell ground truth, block-level disturb dose
// accounting, retention aging, and read operations that reproduce the two
// error channels the paper studies:
//   (1) read disturb — every page read adds tunneling dose to the *other*
//       wordlines, shifting their threshold voltages upward;
//   (2) pass-through failures — with a relaxed Vpass, the highest-Vth cell
//       elsewhere on a bitline can fail to conduct, corrupting the sensed
//       value of the cell actually being read.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "flash/params.h"
#include "flash/vth_model.h"
#include "nand/geometry.h"

namespace rdsim::nand {

/// One page's worth of bits (values 0/1, one byte per bit).
using PageBits = std::vector<std::uint8_t>;

/// Result of reading a page.
struct ReadResult {
  PageBits bits;            ///< Sensed data.
  int raw_bit_errors = 0;   ///< Mismatches vs programmed ground truth.
};

class Block {
 public:
  /// `model` must outlive the block.
  Block(const Geometry& geometry, const flash::VthModel& model, Rng rng);

  const Geometry& geometry() const { return geometry_; }
  const flash::VthModel& model() const { return *model_; }
  std::uint32_t pe_cycles() const { return pe_cycles_; }
  double dose() const { return dose_total_; }
  double vpass() const { return vpass_; }
  bool programmed() const { return programmed_; }
  /// Retention age of the resident data in days.
  double retention_days() const { return now_days_ - programmed_day_; }

  /// Sets the pass-through voltage used by subsequent reads (the knob the
  /// paper's Vpass Tuning mechanism controls).
  void set_vpass(double vpass) { vpass_ = vpass; }

  /// Erases the block (one P/E half) — data is gone, dose resets.
  void erase();

  /// Pre-ages the block by `pe` program/erase cycles without simulating
  /// each cycle's data (the paper pre-cycles blocks the same way before
  /// characterizing them). Leaves the block erased.
  void add_wear(std::uint32_t pe);

  /// Programs every wordline with pseudo-random data, counting one P/E
  /// cycle together with the preceding erase. Requires erased state.
  void program_random();

  /// Programs one wordline with explicit LSB/MSB pages (bits 0/1, size ==
  /// bitlines). Wordlines must be programmed in order after an erase.
  void program_wordline(std::uint32_t wl, const PageBits& lsb,
                        const PageBits& msb);

  /// Advances wall-clock time; affects retention age.
  void advance_time(double days) { now_days_ += days; }

  /// Applies `count` read operations addressed at wordline `wl` (any page
  /// kind) without materializing the data: disturb dose accumulates on all
  /// *other* wordlines. This is how characterization loops apply millions
  /// of disturbs in O(1).
  void apply_reads(std::uint32_t wl, double count);

  /// Reads a page: senses each cell against the read references, honoring
  /// pass-through blocking at the current Vpass, then accounts the read's
  /// disturb dose. Ground-truth mismatches are reported.
  ReadResult read_page(PageAddress address);

  /// Number of raw bit errors a read of `address` would return right now,
  /// without disturbing the block (used by tests and the tuning oracle).
  int count_errors(PageAddress address) const;

  /// Count of bitlines that fail to conduct (read as all-off) for a read
  /// of wordline `wl` at pass-through voltage `vpass` — Step 2 of the
  /// paper's Vpass identification counts exactly this "number of 0s".
  int count_blocked_bitlines(std::uint32_t wl, double vpass) const;

  /// Present threshold voltage of one cell.
  double present_vth(std::uint32_t wl, std::uint32_t bl) const;

  /// Ground truth record of one cell.
  const flash::CellGroundTruth& cell(std::uint32_t wl, std::uint32_t bl) const {
    return cells_[index(wl, bl)];
  }

  /// Read-retry scan: quantized threshold voltage of every cell on
  /// wordline `wl`, stepping the read reference from `lo` to `hi` by
  /// `step` (mimics the retry interface real MLC parts expose). Cells at
  /// or above `hi` report `hi`.
  std::vector<double> read_retry_scan(std::uint32_t wl, double lo, double hi,
                                      double step) const;

  /// Disturb dose experienced by cells of wordline `wl` (total block dose
  /// minus the dose from reads addressed to `wl` itself).
  double dose_for_wordline(std::uint32_t wl) const;

 private:
  std::size_t index(std::uint32_t wl, std::uint32_t bl) const {
    return static_cast<std::size_t>(wl) * geometry_.bitlines + bl;
  }

  /// Loop invariants of a whole-page sense operation, hoisted out of the
  /// per-bitline hot loop: the wordline's disturb dose, the data age, and
  /// the retention drift of the blocking thresholds are identical for
  /// every cell of the page.
  struct SenseContext {
    double dose = 0.0;           ///< dose_for_wordline(wl).
    double days = 0.0;           ///< retention_days().
    double blocking_drop = 0.0;  ///< Retention drift of blocking thresholds.
  };
  SenseContext sense_context(std::uint32_t wl) const;

  /// Retention drift of the blocking thresholds at the present age (the
  /// single source of truth for the term present_blocking subtracts).
  double blocking_drop() const;

  /// Sense one cell against the references; returns the observed state.
  flash::CellState sense(const SenseContext& ctx, std::uint32_t wl,
                         std::uint32_t bl, bool* blocked) const;

  Geometry geometry_;
  const flash::VthModel* model_;
  Rng rng_;

  std::vector<flash::CellGroundTruth> cells_;
  std::uint32_t pe_cycles_ = 0;
  bool programmed_ = false;
  double vpass_;
  double dose_total_ = 0.0;          ///< Unit-vpass-adjusted dose (see
                                     ///< VthModel::disturb_dose).
  std::vector<double> self_dose_;    ///< Dose from reads addressed per WL.
  double now_days_ = 0.0;
  double programmed_day_ = 0.0;

  /// Per-bitline blocking threshold: the lowest Vpass at which every cell
  /// on the bitline's string still conducts (day-0 value; retention drifts
  /// it down). Sampled at program time from the calibrated top-tail
  /// distribution; +inf while erased. The responsible cell is, with
  /// overwhelming probability, on a different wordline than the one being
  /// read, so no self-exclusion is modeled.
  std::vector<float> blocking_threshold_;

  /// Present blocking threshold of a bitline (retention drift applied).
  double present_blocking(std::uint32_t bl) const;
};

}  // namespace rdsim::nand
