#include "nand/randomizer.h"

namespace rdsim::nand {
namespace {

std::uint64_t mix(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xFF51AFD7ED558CCDULL;
  x ^= x >> 33;
  x *= 0xC4CEB9FE1A85EC53ULL;
  x ^= x >> 33;
  return x;
}

}  // namespace

void Randomizer::apply(std::uint32_t block, std::uint32_t page,
                       std::span<std::uint8_t> data) const {
  std::uint64_t state = mix(device_key_ ^ (static_cast<std::uint64_t>(block) << 32 |
                                           page));
  std::uint64_t stream = 0;
  int have = 0;
  for (auto& byte : data) {
    if (have == 0) {
      state = mix(state + 0x9E3779B97F4A7C15ULL);
      stream = state;
      have = 8;
    }
    byte ^= static_cast<std::uint8_t>(stream);
    stream >>= 8;
    --have;
  }
}

}  // namespace rdsim::nand
