// rdsim/host/factory.h
//
// host::make_device: the one place a cfg::DriveSpec becomes a live
// host::Device. All four backends come out of the same call — serial
// analytic (SsdDevice), serial Monte Carlo (McChipDevice), sharded
// Monte Carlo, and sharded analytic (ShardedDevice over ChipServicer /
// SsdServicer shards) — so experiments, the generic scenario runner,
// and tests share one bring-up path. fig_qos and fig_qos_mc build their
// drives through this factory; the golden CRCs pin that the spec-built
// devices are bit-identical to the historical hand-built ones.
//
// `seed` is the drive seed (sharded backends derive shard s's seed as
// ShardedDevice::shard_seed(seed, s)); `workers` sizes the sharded
// service pool and never affects results — serial backends ignore it.
// Monte Carlo pre-aging (spec.pre_wear_pe) is applied here, in the
// characterization order fig_qos_mc established: per shard, per block —
// erase, add_wear, program_random.
#pragma once

#include <cstdint>
#include <memory>

#include "cfg/spec.h"
#include "flash/params.h"
#include "host/device.h"
#include "ssd/ssd.h"

namespace rdsim::host {

std::unique_ptr<Device> make_device(const cfg::DriveSpec& spec,
                                    std::uint64_t seed, int workers = 1);

/// The spec -> analytic-drive mappings make_device uses internally,
/// exposed so layers that build ssd::Ssd drives directly (the fleet
/// runner) construct them identically to the factory's SsdDevice path.
flash::FlashModelParams flash_params_from_spec(const cfg::DriveSpec& spec);
ssd::SsdConfig ssd_config_from_spec(const cfg::DriveSpec& spec);

}  // namespace rdsim::host
