// rdsim/host/mc_chip_device.h
//
// host::Device backend over the per-cell Monte Carlo chip (nand::Chip):
// the same queued command interface as the analytic drive, but every read
// senses real simulated cells — it accumulates genuine disturb dose on
// the chip and reports the raw bit errors the sense observed. This is
// what lets characterization-grade physics be driven by the exact host
// workload machinery the whole-drive experiments use.
//
// The chip-level data movement (logical layout, log-structured write
// turnover, cost accounting) lives in ChipServicer, shared with
// ShardedDevice's per-shard chips; this class is the single-chip,
// single-timeline wiring of that engine into the queued facade. For an
// N-chip drive, see host::ShardedDevice (sharded_device.h).
#pragma once

#include <cstdint>

#include "host/chip_servicer.h"
#include "host/device.h"

namespace rdsim::host {

class McChipDevice : public SerialDevice {
 public:
  McChipDevice(const nand::Geometry& geometry,
               const flash::FlashModelParams& params, std::uint64_t seed,
               std::uint32_t queue_count = 1,
               const LatencyParams& latency = LatencyParams{},
               const ChipErrorPath& error_path = {},
               const ChipFaults& faults = {});

  /// The underlying chip, for characterization-level setup (pre-wear,
  /// retention aging, bulk disturb) between queued operations.
  nand::Chip& chip() { return servicer_.chip(); }
  const nand::Chip& chip() const { return servicer_.chip(); }

  std::uint64_t logical_pages() const override {
    return servicer_.logical_pages();
  }

  /// Cumulative raw bit errors observed by queued reads (the host-visible
  /// symptom ECC has to absorb).
  std::uint64_t read_bit_errors() const { return servicer_.read_bit_errors(); }
  /// Queued page reads / writes serviced, and blocks turned over.
  std::uint64_t pages_read() const { return servicer_.pages_read(); }
  std::uint64_t pages_written() const { return servicer_.pages_written(); }
  std::uint64_t block_rewrites() const { return servicer_.block_rewrites(); }

  /// Ladder attribution (see Servicer::error_stats).
  ErrorStats error_stats() const { return servicer_.error_stats(); }

 protected:
  ServiceCost do_service(const Command& command) override;
  /// A day on the MC chip is pure retention aging (no FTL maintenance).
  double do_end_of_day() override;

 private:
  ChipServicer servicer_;
};

}  // namespace rdsim::host
