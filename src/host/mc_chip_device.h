// rdsim/host/mc_chip_device.h
//
// host::Device backend over the per-cell Monte Carlo chip (nand::Chip):
// the same queued command interface as the analytic drive, but every read
// senses real simulated cells — it accumulates genuine disturb dose on
// the chip and reports the raw bit errors the sense observed. This is
// what lets characterization-grade physics be driven by the exact host
// workload machinery the whole-drive experiments use.
//
// Logical layout: lpn -> (block = lpn / pages_per_block, then LSB/MSB
// pages interleaved along the wordlines: page index 2*wl + kind). Every
// block is programmed with random data at construction, like a
// characterization drive prepared for a read-disturb study. A host write
// models log-structured turnover: each page write costs tProg, and once a
// block has absorbed pages_per_block writes it is erased and reprogrammed
// (one P/E cycle, disturb state cleared) with the erase charged as the
// write's stall. Trim and flush are metadata-only.
//
// Both the construction-time bulk program and each turnover reprogram are
// O(bookkeeping) under the block's lazy cell materialization: a rewritten
// block resamples only the wordlines later reads actually touch, so large
// simulated drives with read-skewed workloads cost cells proportional to
// the read footprint, not the drive capacity.
#pragma once

#include <cstdint>
#include <vector>

#include "host/device.h"
#include "nand/chip.h"

namespace rdsim::host {

class McChipDevice : public Device {
 public:
  McChipDevice(const nand::Geometry& geometry,
               const flash::FlashModelParams& params, std::uint64_t seed,
               std::uint32_t queue_count = 1,
               const LatencyParams& latency = LatencyParams{});

  /// The underlying chip, for characterization-level setup (pre-wear,
  /// retention aging, bulk disturb) between queued operations.
  nand::Chip& chip() { return chip_; }
  const nand::Chip& chip() const { return chip_; }

  std::uint64_t logical_pages() const override {
    return static_cast<std::uint64_t>(chip_.geometry().blocks) *
           chip_.geometry().pages_per_block();
  }

  /// Cumulative raw bit errors observed by queued reads (the host-visible
  /// symptom ECC has to absorb).
  std::uint64_t read_bit_errors() const { return read_bit_errors_; }
  /// Queued page reads / writes serviced, and blocks turned over.
  std::uint64_t pages_read() const { return pages_read_; }
  std::uint64_t pages_written() const { return pages_written_; }
  std::uint64_t block_rewrites() const { return block_rewrites_; }

 protected:
  ServiceCost do_service(const Command& command) override;
  /// A day on the MC chip is pure retention aging (no FTL maintenance).
  double do_end_of_day() override;

 private:
  nand::PageAddress page_address(std::uint64_t lpn, std::uint32_t* block)
      const;

  nand::Chip chip_;
  LatencyParams latency_;
  std::vector<std::uint32_t> writes_into_block_;
  std::uint64_t read_bit_errors_ = 0;
  std::uint64_t pages_read_ = 0;
  std::uint64_t pages_written_ = 0;
  std::uint64_t block_rewrites_ = 0;
};

}  // namespace rdsim::host
