// rdsim/host/driver.h
//
// Host-side driving patterns shared by the QoS experiments, the perf
// harness, the examples, and the tests — so the subtle parts (slot
// accounting, submit-time re-stamping, warm-up hygiene) exist exactly
// once.
#pragma once

#include <algorithm>
#include <cstddef>
#include <iterator>
#include <vector>

#include "host/device.h"

namespace rdsim::host {

/// Fills the device's whole logical space once (ascending lpn order) so
/// every subsequent read hits mapped data, then discards the warm-up
/// completions and statistics. Works for any backend: on a striped
/// ShardedDevice the ascending-lpn pass round-robins the shards, so each
/// shard's chip is filled (and turned over) evenly. The fill still
/// occupies the flash timeline(s) — start the workload clock at
/// device.now_s() (or drive it closed-loop) so measured commands don't
/// queue behind the fill.
inline void warm_fill(Device& device) {
  Command write;
  write.kind = CommandKind::kWrite;
  const std::uint64_t logical = device.logical_pages();
  for (std::uint64_t lpn = 0; lpn < logical; ++lpn) {
    write.lpn = lpn;
    device.submit(write);
  }
  std::vector<Completion> scratch;
  device.drain(&scratch);
  device.reset_stats();
}

/// Closed-loop (zero think time) replay at a fixed queue depth: keeps at
/// most `depth` commands outstanding and re-stamps each command's submit
/// time to the instant a completion freed a slot — the fio-style QD
/// benchmark pattern. The clock carries across run() calls, so a
/// multi-day replay with Device::end_of_day() between batches stays
/// monotone.
///
/// In-flight accounting is driver-side, and slots are freed in
/// completion-time order from a drained buffer: poll() may legitimately
/// return nothing on a sharded device (records whose log position is not
/// final yet are withheld), but drain() always delivers, sorted by
/// (complete_time, submit order) — so the "next completion" that frees a
/// slot is exactly the earliest one, on every backend. On a
/// single-timeline device completions are already in that order, so the
/// replay schedule (and fig_qos's golden) is unchanged by this buffering.
class ClosedLoopDriver {
 public:
  ClosedLoopDriver(Device& device, int depth)
      : device_(&device),
        depth_(static_cast<std::size_t>(depth < 1 ? 1 : depth)),
        release_s_(device.now_s()),
        last_submit_s_(release_s_) {}

  /// Optional completion sink: every record the driver drains from the
  /// device is appended to *sink (in delivery order, each exactly once),
  /// so callers that need the completion log — the trace replayer's
  /// latency CDFs — can drive closed-loop without re-polling. nullptr
  /// (the default) disables it; the replay schedule is unaffected either
  /// way.
  void set_completion_sink(std::vector<Completion>* sink) { sink_ = sink; }

  /// Replays one batch of commands (submit-time stamps are overwritten)
  /// and absorbs every completion at the end of the batch.
  void run(const std::vector<Command>& commands) {
    for (Command c : commands) {
      if (in_flight_ >= depth_) release_s_ = next_completion_s();
      c.submit_time_s = std::max(last_submit_s_, release_s_);
      last_submit_s_ = c.submit_time_s;
      device_->submit(c);
      ++in_flight_;
    }
    // End of batch: absorb everything still in flight so the next run()
    // (or end_of_day) starts from a quiet device. Both the local buffer
    // and the device deliver in completion order, so each back() is the
    // latest completion it holds.
    if (next_ < buffer_.size())
      release_s_ = std::max(release_s_, buffer_.back().complete_time_s);
    buffer_.clear();
    device_->drain(&buffer_);
    if (sink_ != nullptr)
      sink_->insert(sink_->end(), buffer_.begin(), buffer_.end());
    if (!buffer_.empty())
      release_s_ = std::max(release_s_, buffer_.back().complete_time_s);
    buffer_.clear();
    next_ = 0;
    in_flight_ = 0;
  }

 private:
  /// Completion time of the next (earliest) in-flight completion. A
  /// command submitted since the last drain can complete *earlier* than
  /// anything still buffered (independent shard timelines), so fresh
  /// completions are drained and merged before taking the minimum —
  /// both the device's delivery and the buffer follow
  /// completion_log_order, so the buffer stays a sorted queue holding at
  /// most ~depth unconsumed records. On a single-timeline device fresh
  /// records always sort after the buffered tail, so the merge
  /// degenerates to an append.
  double next_completion_s() {
    fresh_.clear();
    device_->drain(&fresh_);
    if (sink_ != nullptr)
      sink_->insert(sink_->end(), fresh_.begin(), fresh_.end());
    if (!fresh_.empty()) {
      if (next_ > 0) {
        buffer_.erase(buffer_.begin(),
                      buffer_.begin() + static_cast<std::ptrdiff_t>(next_));
        next_ = 0;
      }
      if (buffer_.empty() ||
          !completion_log_order(fresh_.front(), buffer_.back())) {
        buffer_.insert(buffer_.end(), fresh_.begin(), fresh_.end());
      } else {
        const auto mid = static_cast<std::ptrdiff_t>(buffer_.size());
        buffer_.insert(buffer_.end(), fresh_.begin(), fresh_.end());
        std::inplace_merge(buffer_.begin(), buffer_.begin() + mid,
                           buffer_.end(), completion_log_order);
      }
    }
    const double t = buffer_[next_].complete_time_s;
    ++next_;
    --in_flight_;
    return t;
  }

  Device* device_;
  std::size_t depth_;
  double release_s_;
  double last_submit_s_;
  std::size_t in_flight_ = 0;
  std::vector<Completion> buffer_;
  std::vector<Completion> fresh_;
  std::size_t next_ = 0;
  std::vector<Completion>* sink_ = nullptr;
};

/// Burst-window replay: submits commands in fixed-size windows, every
/// command in a window re-stamped with the same submit time (the
/// window's opening clock), drains the device, and advances the clock to
/// the window's last completion. Where ClosedLoopDriver trickles one
/// command per freed slot (the pending set a policy sees is nearly
/// empty), a whole window is co-pending here — which is what gives a
/// reordering arbitration policy real choices to make, so the
/// multi-tenant QoS experiments drive with this; the window size plays
/// the queue-depth role. Deterministic for the same reason as
/// ClosedLoopDriver: the schedule is a pure function of the command
/// stream and the window size (the drain per window is also what
/// finalizes each window's service order under every policy).
class BurstWindowDriver {
 public:
  BurstWindowDriver(Device& device, int window)
      : device_(&device),
        window_(static_cast<std::size_t>(window < 1 ? 1 : window)),
        clock_s_(device.now_s()) {}

  /// Optional completion sink, same contract as ClosedLoopDriver's.
  void set_completion_sink(std::vector<Completion>* sink) { sink_ = sink; }

  /// Replays one batch of commands (submit-time stamps are overwritten
  /// window by window). The clock carries across run() calls.
  void run(const std::vector<Command>& commands) {
    std::size_t i = 0;
    while (i < commands.size()) {
      const std::size_t end = std::min(commands.size(), i + window_);
      for (; i < end; ++i) {
        Command c = commands[i];
        c.submit_time_s = clock_s_;
        device_->submit(c);
      }
      buffer_.clear();
      device_->drain(&buffer_);
      if (sink_ != nullptr)
        sink_->insert(sink_->end(), buffer_.begin(), buffer_.end());
      // drain() delivers in completion order, so back() is the window's
      // last completion; the max keeps the clock monotone even for an
      // all-flush window on an idle device (complete == submit).
      if (!buffer_.empty())
        clock_s_ = std::max(clock_s_, buffer_.back().complete_time_s);
    }
  }

 private:
  Device* device_;
  std::size_t window_;
  double clock_s_;
  std::vector<Completion> buffer_;
  std::vector<Completion>* sink_ = nullptr;
};

}  // namespace rdsim::host
