// rdsim/host/driver.h
//
// Host-side driving patterns shared by the QoS experiments, the perf
// harness, the examples, and the tests — so the subtle parts (slot
// accounting, submit-time re-stamping, warm-up hygiene) exist exactly
// once.
#pragma once

#include <algorithm>
#include <cstddef>
#include <vector>

#include "host/device.h"

namespace rdsim::host {

/// Fills the device's whole logical space once (ascending lpn order) so
/// every subsequent read hits mapped data, then discards the warm-up
/// completions and statistics. The fill still occupies the flash
/// timeline — start the workload clock at device.now_s() (or drive it
/// closed-loop) so measured commands don't queue behind the fill.
inline void warm_fill(Device& device) {
  Command write;
  write.kind = CommandKind::kWrite;
  const std::uint64_t logical = device.logical_pages();
  for (std::uint64_t lpn = 0; lpn < logical; ++lpn) {
    write.lpn = lpn;
    device.submit(write);
  }
  std::vector<Completion> scratch;
  device.drain(&scratch);
  device.reset_stats();
}

/// Closed-loop (zero think time) replay at a fixed queue depth: keeps at
/// most `depth` commands outstanding and re-stamps each command's submit
/// time to the instant a completion freed a slot — the fio-style QD
/// benchmark pattern. The clock carries across run() calls, so a
/// multi-day replay with Device::end_of_day() between batches stays
/// monotone.
class ClosedLoopDriver {
 public:
  ClosedLoopDriver(Device& device, int depth)
      : device_(&device),
        depth_(static_cast<std::size_t>(depth < 1 ? 1 : depth)),
        release_s_(device.now_s()),
        last_submit_s_(release_s_) {}

  /// Replays one batch of commands (submit-time stamps are overwritten)
  /// and drains every completion at the end of the batch.
  void run(const std::vector<Command>& commands) {
    std::vector<Completion> got;
    for (Command c : commands) {
      if (device_->outstanding() >= depth_) {
        got.clear();
        device_->poll(&got, 1);
        release_s_ = got.front().complete_time_s;
      }
      c.submit_time_s = std::max(last_submit_s_, release_s_);
      last_submit_s_ = c.submit_time_s;
      device_->submit(c);
    }
    got.clear();
    device_->drain(&got);
    if (!got.empty())
      release_s_ = std::max(release_s_, got.back().complete_time_s);
  }

 private:
  Device* device_;
  std::size_t depth_;
  double release_s_;
  double last_submit_s_;
};

}  // namespace rdsim::host
