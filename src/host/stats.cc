#include "host/stats.h"

#include <algorithm>

namespace rdsim::host {

CompletionStats::CompletionStats(double max_latency_s, std::size_t bins)
    : kinds_{KindAgg(max_latency_s, bins), KindAgg(max_latency_s, bins),
             KindAgg(max_latency_s, bins), KindAgg(max_latency_s, bins)},
      hist_max_latency_s_(max_latency_s),
      hist_bins_(bins) {}

void CompletionStats::add(const Completion& c) {
  KindAgg& agg = at(c.kind);
  const double latency = c.latency_s();
  const std::uint64_t data_pages =
      c.kind == CommandKind::kFlush ? 0 : c.pages;
  ++agg.count;
  agg.pages += data_pages;
  agg.latency_sum_s += latency;
  agg.max_s = std::max(agg.max_s, latency);
  agg.latency.add(latency);

  if (commands_ == 0 || c.submit_time_s < first_submit_s_)
    first_submit_s_ = c.submit_time_s;
  last_complete_s_ = std::max(last_complete_s_, c.complete_time_s);
  ++commands_;
  total_pages_ += data_pages;
  stall_seconds_ += c.stall_s;
  ++status_counts_[static_cast<std::size_t>(c.status)];
  error_pages_ += c.error_pages;
  if (c.kind == CommandKind::kRead) read_error_pages_ += c.error_pages;

  while (tenants_.size() <= c.tenant)
    tenants_.emplace_back(hist_max_latency_s_, hist_bins_);
  TenantAgg& ten = tenants_[c.tenant];
  if (ten.commands == 0 || c.submit_time_s < ten.first_submit_s)
    ten.first_submit_s = c.submit_time_s;
  ten.last_complete_s = std::max(ten.last_complete_s, c.complete_time_s);
  ++ten.kind_counts[static_cast<std::size_t>(c.kind)];
  ++ten.status_counts[static_cast<std::size_t>(c.status)];
  ++ten.commands;
  ten.pages += data_pages;
  ten.error_pages += c.error_pages;
  ten.stall_s += c.stall_s;
  if (c.kind == CommandKind::kRead) {
    ten.read_pages += data_pages;
    ten.read_error_pages += c.error_pages;
    ten.read_latency_sum_s += latency;
    ten.read_max_s = std::max(ten.read_max_s, latency);
    ten.read_latency.add(latency);
  }
}

double CompletionStats::uber(double bits_per_page) const {
  const double bits_read =
      static_cast<double>(pages(CommandKind::kRead)) * bits_per_page;
  return bits_read <= 0.0
             ? 0.0
             : static_cast<double>(read_error_pages_) * bits_per_page /
                   bits_read;
}

double CompletionStats::mean_latency_s(CommandKind kind) const {
  const KindAgg& agg = at(kind);
  return agg.count == 0
             ? 0.0
             : agg.latency_sum_s / static_cast<double>(agg.count);
}

double CompletionStats::latency_quantile_s(CommandKind kind, double q) const {
  return at(kind).latency.quantile(q);
}

double CompletionStats::span_s() const {
  return commands_ == 0 ? 0.0 : last_complete_s_ - first_submit_s_;
}

double CompletionStats::iops() const {
  const double span = span_s();
  return span <= 0.0 ? 0.0 : static_cast<double>(commands_) / span;
}

double CompletionStats::page_rate() const {
  const double span = span_s();
  return span <= 0.0 ? 0.0 : static_cast<double>(total_pages_) / span;
}

std::uint64_t CompletionStats::tenant_commands(std::uint32_t t) const {
  const TenantAgg* ten = tenant(t);
  return ten == nullptr ? 0 : ten->commands;
}

std::uint64_t CompletionStats::tenant_commands(std::uint32_t t,
                                               CommandKind kind) const {
  const TenantAgg* ten = tenant(t);
  return ten == nullptr ? 0
                        : ten->kind_counts[static_cast<std::size_t>(kind)];
}

std::uint64_t CompletionStats::tenant_commands(std::uint32_t t,
                                               Status status) const {
  const TenantAgg* ten = tenant(t);
  return ten == nullptr
             ? 0
             : ten->status_counts[static_cast<std::size_t>(status)];
}

std::uint64_t CompletionStats::tenant_pages(std::uint32_t t) const {
  const TenantAgg* ten = tenant(t);
  return ten == nullptr ? 0 : ten->pages;
}

std::uint64_t CompletionStats::tenant_read_pages(std::uint32_t t) const {
  const TenantAgg* ten = tenant(t);
  return ten == nullptr ? 0 : ten->read_pages;
}

std::uint64_t CompletionStats::tenant_error_pages(std::uint32_t t) const {
  const TenantAgg* ten = tenant(t);
  return ten == nullptr ? 0 : ten->error_pages;
}

std::uint64_t CompletionStats::tenant_read_error_pages(
    std::uint32_t t) const {
  const TenantAgg* ten = tenant(t);
  return ten == nullptr ? 0 : ten->read_error_pages;
}

double CompletionStats::tenant_uber(std::uint32_t t,
                                    double bits_per_page) const {
  const TenantAgg* ten = tenant(t);
  if (ten == nullptr) return 0.0;
  const double bits_read =
      static_cast<double>(ten->read_pages) * bits_per_page;
  return bits_read <= 0.0
             ? 0.0
             : static_cast<double>(ten->read_error_pages) * bits_per_page /
                   bits_read;
}

double CompletionStats::tenant_stall_seconds(std::uint32_t t) const {
  const TenantAgg* ten = tenant(t);
  return ten == nullptr ? 0.0 : ten->stall_s;
}

double CompletionStats::tenant_mean_read_latency_s(std::uint32_t t) const {
  const TenantAgg* ten = tenant(t);
  if (ten == nullptr) return 0.0;
  const std::uint64_t reads =
      ten->kind_counts[static_cast<std::size_t>(CommandKind::kRead)];
  return reads == 0 ? 0.0
                    : ten->read_latency_sum_s / static_cast<double>(reads);
}

double CompletionStats::tenant_max_read_latency_s(std::uint32_t t) const {
  const TenantAgg* ten = tenant(t);
  return ten == nullptr ? 0.0 : ten->read_max_s;
}

double CompletionStats::tenant_read_latency_quantile_s(std::uint32_t t,
                                                       double q) const {
  const TenantAgg* ten = tenant(t);
  return ten == nullptr ? 0.0 : ten->read_latency.quantile(q);
}

double CompletionStats::tenant_span_s(std::uint32_t t) const {
  const TenantAgg* ten = tenant(t);
  return ten == nullptr || ten->commands == 0
             ? 0.0
             : ten->last_complete_s - ten->first_submit_s;
}

double CompletionStats::tenant_iops(std::uint32_t t) const {
  const double span = tenant_span_s(t);
  return span <= 0.0 ? 0.0 : static_cast<double>(tenant_commands(t)) / span;
}

}  // namespace rdsim::host
