#include "host/stats.h"

#include <algorithm>

namespace rdsim::host {

CompletionStats::CompletionStats(double max_latency_s, std::size_t bins)
    : kinds_{KindAgg(max_latency_s, bins), KindAgg(max_latency_s, bins),
             KindAgg(max_latency_s, bins), KindAgg(max_latency_s, bins)} {}

void CompletionStats::add(const Completion& c) {
  KindAgg& agg = at(c.kind);
  const double latency = c.latency_s();
  ++agg.count;
  agg.pages += c.kind == CommandKind::kFlush ? 0 : c.pages;
  agg.latency_sum_s += latency;
  agg.max_s = std::max(agg.max_s, latency);
  agg.latency.add(latency);

  if (commands_ == 0 || c.submit_time_s < first_submit_s_)
    first_submit_s_ = c.submit_time_s;
  last_complete_s_ = std::max(last_complete_s_, c.complete_time_s);
  ++commands_;
  total_pages_ += c.kind == CommandKind::kFlush ? 0 : c.pages;
  stall_seconds_ += c.stall_s;
  ++status_counts_[static_cast<std::size_t>(c.status)];
  error_pages_ += c.error_pages;
  if (c.kind == CommandKind::kRead) read_error_pages_ += c.error_pages;
}

double CompletionStats::uber(double bits_per_page) const {
  const double bits_read =
      static_cast<double>(pages(CommandKind::kRead)) * bits_per_page;
  return bits_read <= 0.0
             ? 0.0
             : static_cast<double>(read_error_pages_) * bits_per_page /
                   bits_read;
}

double CompletionStats::mean_latency_s(CommandKind kind) const {
  const KindAgg& agg = at(kind);
  return agg.count == 0
             ? 0.0
             : agg.latency_sum_s / static_cast<double>(agg.count);
}

double CompletionStats::latency_quantile_s(CommandKind kind, double q) const {
  return at(kind).latency.quantile(q);
}

double CompletionStats::span_s() const {
  return commands_ == 0 ? 0.0 : last_complete_s_ - first_submit_s_;
}

double CompletionStats::iops() const {
  const double span = span_s();
  return span <= 0.0 ? 0.0 : static_cast<double>(commands_) / span;
}

double CompletionStats::page_rate() const {
  const double span = span_s();
  return span <= 0.0 ? 0.0 : static_cast<double>(total_pages_) / span;
}

}  // namespace rdsim::host
