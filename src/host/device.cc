#include "host/device.h"

#include <algorithm>

namespace rdsim::host {

Device::Device(std::uint32_t queue_count)
    : queues_(std::max<std::uint32_t>(1, queue_count)) {}

std::uint64_t Device::submit(const Command& command) {
  Submitted sub{command, next_id_++};
  sub.command.queue =
      static_cast<std::uint16_t>(command.queue % queue_count());
  queues_[sub.command.queue].push_back(sub);
  ++submitted_;
  return sub.id;
}

std::vector<Device::Submitted> Device::take_pending() {
  std::vector<Submitted> pending;
  while (true) {
    // Oldest-first arbitration: among the queue heads, take the command
    // with the smallest sequence id. Queues are FIFO, so heads are each
    // queue's oldest and this scan finds the global oldest.
    std::size_t best = queues_.size();
    for (std::size_t q = 0; q < queues_.size(); ++q) {
      if (queues_[q].empty()) continue;
      if (best == queues_.size() ||
          queues_[q].front().id < queues_[best].front().id) {
        best = q;
      }
    }
    if (best == queues_.size()) return pending;
    pending.push_back(queues_[best].front());
    queues_[best].pop_front();
  }
}

void Device::release_ready(bool) {}

std::size_t Device::poll(std::vector<Completion>* out,
                         std::size_t max_completions) {
  pump();
  release_ready(/*drain_all=*/false);
  std::size_t n = 0;
  while (n < max_completions && !completion_queue_.empty()) {
    out->push_back(completion_queue_.front());
    completion_queue_.pop_front();
    ++n;
  }
  delivered_ += n;
  return n;
}

std::size_t Device::drain(std::vector<Completion>* out) {
  pump();
  release_ready(/*drain_all=*/true);
  const std::size_t n = completion_queue_.size();
  out->insert(out->end(), completion_queue_.begin(), completion_queue_.end());
  completion_queue_.clear();
  delivered_ += n;
  return n;
}

void Device::end_of_day() {
  pump();
  run_end_of_day();
}

const CompletionStats& Device::stats() {
  pump();
  return stats_;
}

void Device::reset_stats() {
  pump();
  stats_ = CompletionStats();
}

// --- SerialDevice ----------------------------------------------------------

void SerialDevice::pump() {
  for (const Submitted& sub : take_pending()) service_one(sub);
}

void SerialDevice::service_one(const Submitted& sub) {
  const Command& cmd = sub.command;
  ServiceCost cost;  // Flush is a pure barrier: zero cost, completes at
                     // the flash free time once everything before it did.
  if (cmd.kind != CommandKind::kFlush) cost = do_service(cmd);
  const FlashTimeline::Slot slot =
      timeline_.schedule(cmd.submit_time_s, cost);

  Completion rec;
  rec.id = sub.id;
  rec.kind = cmd.kind;
  rec.queue = cmd.queue;
  rec.lpn = cmd.lpn;
  rec.pages = cmd.pages;
  rec.submit_time_s = cmd.submit_time_s;
  rec.service_start_s = slot.start_s;
  rec.complete_time_s = slot.complete_s;
  // The part of this command's queue wait that overlapped a background
  // reservation counts as stall, on top of any stall the backend charged
  // to the command itself (e.g. inline GC on a write).
  rec.stall_s = cost.stall_s + slot.bg_overlap_s;
  rec.status = cost.status;
  rec.error_pages = cost.error_pages;

  record(rec);
  deliver(rec);
}

void SerialDevice::run_end_of_day() {
  const double busy = do_end_of_day();
  if (busy > 0.0) timeline_.reserve_next(busy);
}

}  // namespace rdsim::host
