#include "host/device.h"

#include <algorithm>
#include <limits>

namespace rdsim::host {

Device::Device(std::uint32_t queue_count)
    : queue_count_(std::max<std::uint32_t>(1, queue_count)),
      rr_round_(1, 0),
      virtual_finish_(1, 0.0) {}

void Device::set_arbitration(const ArbitrationConfig& config) {
  arb_ = config;
  rr_round_.assign(tenant_count(), 0);
  virtual_finish_.assign(tenant_count(), 0.0);
}

namespace {

double tenant_weight(const ArbitrationConfig& arb, std::uint32_t tenant) {
  return arb.tenants.empty() ? 1.0 : arb.tenants[tenant].weight;
}

double tenant_deadline_s(const ArbitrationConfig& arb, std::uint32_t tenant) {
  return (arb.tenants.empty() ? 1000.0 : arb.tenants[tenant].deadline_us) *
         1e-6;
}

}  // namespace

std::uint64_t Device::submit(const Command& command) {
  Submitted sub;
  sub.command = command;
  sub.command.queue =
      static_cast<std::uint16_t>(command.queue % queue_count());
  const auto tenant =
      static_cast<std::uint16_t>(command.tenant % tenant_count());
  sub.command.tenant = tenant;
  sub.id = next_id_++;
  sub.epoch = flush_epoch_;
  max_submit_s_ = std::max(max_submit_s_, command.submit_time_s);

  if (command.kind == CommandKind::kFlush) {
    // A flush closes its epoch: it sorts after every co-epoch command
    // (+inf key) and everything submitted afterwards lands in the next
    // epoch, so no policy can reorder across the barrier. Closing the
    // epoch also makes the whole epoch order-final immediately.
    sub.key = std::numeric_limits<double>::infinity();
    ++flush_epoch_;
  } else {
    switch (arb_.policy) {
      case ArbitrationPolicy::kFifo:
        sub.key = 0.0;  // Order degenerates to (epoch, id) = id.
        break;
      case ArbitrationPolicy::kRoundRobin:
        sub.key = static_cast<double>(rr_round_[tenant]++);
        break;
      case ArbitrationPolicy::kWeighted:
        // Start-time fair queueing on page counts: each tenant's virtual
        // clock advances by work / weight, and the smallest virtual
        // finish time is served first.
        virtual_finish_[tenant] +=
            static_cast<double>(std::max<std::uint32_t>(1, command.pages)) /
            tenant_weight(arb_, tenant);
        sub.key = virtual_finish_[tenant];
        break;
      case ArbitrationPolicy::kDeadline:
        sub.key = command.submit_time_s + tenant_deadline_s(arb_, tenant);
        break;
    }
  }

  pending_.push_back(sub);
  ++submitted_;
  return sub.id;
}

bool Device::arbitration_order(const Submitted& a, const Submitted& b) {
  if (a.epoch != b.epoch) return a.epoch < b.epoch;
  if (a.key != b.key) return a.key < b.key;
  if (a.command.tenant != b.command.tenant)
    return a.command.tenant < b.command.tenant;
  return a.id < b.id;
}

bool Device::order_final(const Submitted& sub) const {
  if (arb_.policy == ArbitrationPolicy::kFifo) return true;
  if (sub.epoch < flush_epoch_) return true;  // Epoch closed by a flush.
  // A future command from tenant t gets key >= bound_t (each bound is
  // monotone over submissions), tenant t, and a larger id — so `sub`
  // precedes it iff sub.key < bound_t, or the keys tie and sub.tenant
  // <= t (equal tenant wins on the smaller id).
  const std::uint32_t tenants = tenant_count();
  for (std::uint32_t t = 0; t < tenants; ++t) {
    double bound = 0.0;
    switch (arb_.policy) {
      case ArbitrationPolicy::kRoundRobin:
        bound = static_cast<double>(rr_round_[t]);
        break;
      case ArbitrationPolicy::kWeighted:
        // Smallest possible future finish time: one page of work.
        bound = virtual_finish_[t] + 1.0 / tenant_weight(arb_, t);
        break;
      case ArbitrationPolicy::kDeadline:
        // Submit stamps are non-decreasing (driver contract).
        bound = max_submit_s_ + tenant_deadline_s(arb_, t);
        break;
      case ArbitrationPolicy::kFifo:
        return true;
    }
    const bool precedes =
        sub.key < bound || (sub.key == bound && sub.command.tenant <= t);
    if (!precedes) return false;
  }
  return true;
}

std::vector<Device::Submitted> Device::take_pending(bool force) {
  std::vector<Submitted> taken;
  if (pending_.empty()) return taken;
  if (arb_.policy == ArbitrationPolicy::kFifo) {
    // Everything is final and pending_ is already in service order.
    taken.swap(pending_);
    return taken;
  }
  std::sort(pending_.begin(), pending_.end(), arbitration_order);
  std::size_t n = pending_.size();
  if (!force) {
    // The order-final predicate is downward closed in arbitration order,
    // so the finalized commands are exactly a prefix of the sorted
    // pending set: stop at the first unfinalized one.
    n = 0;
    while (n < pending_.size() && order_final(pending_[n])) ++n;
  }
  taken.assign(pending_.begin(),
               pending_.begin() + static_cast<std::ptrdiff_t>(n));
  pending_.erase(pending_.begin(),
                 pending_.begin() + static_cast<std::ptrdiff_t>(n));
  return taken;
}

double Device::min_pending_submit_s() const {
  double min_s = std::numeric_limits<double>::infinity();
  for (const Submitted& sub : pending_)
    min_s = std::min(min_s, sub.command.submit_time_s);
  return min_s;
}

void Device::release_ready(bool) {}

std::size_t Device::poll(std::vector<Completion>* out,
                         std::size_t max_completions) {
  pump(/*force=*/false);
  release_ready(/*drain_all=*/false);
  std::size_t n = 0;
  while (n < max_completions && !completion_queue_.empty()) {
    out->push_back(completion_queue_.front());
    completion_queue_.pop_front();
    ++n;
  }
  delivered_ += n;
  return n;
}

std::size_t Device::drain(std::vector<Completion>* out) {
  pump(/*force=*/true);
  release_ready(/*drain_all=*/true);
  const std::size_t n = completion_queue_.size();
  out->insert(out->end(), completion_queue_.begin(), completion_queue_.end());
  completion_queue_.clear();
  delivered_ += n;
  return n;
}

void Device::end_of_day() {
  pump(/*force=*/true);
  run_end_of_day();
}

const CompletionStats& Device::stats() {
  pump(/*force=*/true);
  return stats_;
}

void Device::reset_stats() {
  pump(/*force=*/true);
  stats_ = CompletionStats();
}

// --- SerialDevice ----------------------------------------------------------

void SerialDevice::pump(bool force) {
  for (const Submitted& sub : take_pending(force)) {
    const Completion rec = service_one(sub);
    record(rec);
    batch_.push_back(rec);
  }
}

void SerialDevice::release_ready(bool drain_all) {
  if (batch_.empty()) return;
  // Service order gives non-decreasing complete times (the timeline's
  // free time advances to every slot's completion), so this sort only
  // untangles same-instant ties whose ids a reordering policy inverted;
  // under FIFO it is the identity.
  std::sort(batch_.begin(), batch_.end(), completion_log_order);
  std::size_t n = batch_.size();
  if (!drain_all && has_pending()) {
    // Any still-queued command completes at >= the flash free time, and
    // it may carry a smaller id than a record already completed exactly
    // there — withhold records at the free time until the queue empties
    // (or a drain finalizes the order) so delivery stays a prefix of the
    // deterministic log at every poll cadence.
    while (n > 0 && batch_[n - 1].complete_time_s >= timeline_.free_s()) --n;
  }
  for (std::size_t i = 0; i < n; ++i) deliver(batch_[i]);
  batch_.erase(batch_.begin(), batch_.begin() + static_cast<std::ptrdiff_t>(n));
}

Completion SerialDevice::service_one(const Submitted& sub) {
  const Command& cmd = sub.command;
  ServiceCost cost;  // Flush is a pure barrier: zero cost, completes at
                     // the flash free time once everything before it did.
  if (cmd.kind != CommandKind::kFlush) cost = do_service(cmd);
  const FlashTimeline::Slot slot =
      timeline_.schedule(cmd.submit_time_s, cost);

  Completion rec;
  rec.id = sub.id;
  rec.kind = cmd.kind;
  rec.queue = cmd.queue;
  rec.tenant = cmd.tenant;
  rec.lpn = cmd.lpn;
  rec.pages = cmd.pages;
  rec.submit_time_s = cmd.submit_time_s;
  rec.service_start_s = slot.start_s;
  rec.complete_time_s = slot.complete_s;
  // The part of this command's queue wait that overlapped a background
  // reservation counts as stall, on top of any stall the backend charged
  // to the command itself (e.g. inline GC on a write).
  rec.stall_s = cost.stall_s + slot.bg_overlap_s;
  rec.status = cost.status;
  rec.error_pages = cost.error_pages;
  return rec;
}

void SerialDevice::run_end_of_day() {
  const double busy = do_end_of_day();
  if (busy > 0.0) timeline_.reserve_next(busy);
}

}  // namespace rdsim::host
