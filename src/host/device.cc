#include "host/device.h"

#include <algorithm>
#include <cassert>

namespace rdsim::host {

Device::Device(std::uint32_t queue_count)
    : queues_(std::max<std::uint32_t>(1, queue_count)) {}

std::uint64_t Device::submit(const Command& command) {
  Submitted sub{command, next_id_++};
  sub.command.queue =
      static_cast<std::uint16_t>(command.queue % queue_count());
  queues_[sub.command.queue].push_back(sub);
  ++submitted_;
  return sub.id;
}

void Device::pump() {
  while (true) {
    // Oldest-first arbitration: among the queue heads, service the command
    // with the smallest sequence id. Queues are FIFO, so heads are each
    // queue's oldest and this scan finds the global oldest.
    std::size_t best = queues_.size();
    for (std::size_t q = 0; q < queues_.size(); ++q) {
      if (queues_[q].empty()) continue;
      if (best == queues_.size() ||
          queues_[q].front().id < queues_[best].front().id) {
        best = q;
      }
    }
    if (best == queues_.size()) return;
    const Submitted sub = queues_[best].front();
    queues_[best].pop_front();
    service_one(sub);
  }
}

void Device::reserve_background(double from_s, double until_s) {
  if (!bg_windows_.empty() && from_s <= bg_windows_.back().until_s) {
    bg_windows_.back().until_s =
        std::max(bg_windows_.back().until_s, until_s);
  } else {
    bg_windows_.push_back({from_s, until_s});
  }
}

void Device::service_one(const Submitted& sub) {
  const Command& cmd = sub.command;
  const double start = std::max(cmd.submit_time_s, flash_free_s_);
  ServiceCost cost;  // Flush is a pure barrier: zero cost, completes at
                     // the flash free time once everything before it did.
  if (cmd.kind != CommandKind::kFlush) cost = do_service(cmd);

  // Attribution: the part of this command's queue wait [submit, start)
  // that overlapped a background reservation counts as stall, on top of
  // any stall the backend charged to the command itself (e.g. inline GC
  // on a write). Windows wholly before this command's submit time can
  // never overlap a later command either (submit stamps are
  // non-decreasing), so they are pruned here.
  while (!bg_windows_.empty() &&
         bg_windows_.front().until_s <= cmd.submit_time_s)
    bg_windows_.pop_front();
  double bg_overlap = 0.0;
  for (const BgWindow& w : bg_windows_) {
    if (w.from_s >= start) break;
    bg_overlap += std::max(0.0, std::min(start, w.until_s) -
                                    std::max(cmd.submit_time_s, w.from_s));
  }

  Completion rec;
  rec.id = sub.id;
  rec.kind = cmd.kind;
  rec.queue = cmd.queue;
  rec.lpn = cmd.lpn;
  rec.pages = cmd.pages;
  rec.submit_time_s = cmd.submit_time_s;
  rec.service_start_s = start;
  rec.complete_time_s = start + cost.busy_s + cost.stall_s;
  rec.stall_s = cost.stall_s + bg_overlap;
  flash_free_s_ = rec.complete_time_s;
  // The stall portion of the service sits after the command's own data
  // movement on the timeline.
  if (cost.stall_s > 0.0)
    reserve_background(start + cost.busy_s, rec.complete_time_s);

  stats_.add(rec);
  completion_queue_.push_back(rec);
}

std::size_t Device::poll(std::vector<Completion>* out,
                         std::size_t max_completions) {
  pump();
  std::size_t n = 0;
  while (n < max_completions && !completion_queue_.empty()) {
    out->push_back(completion_queue_.front());
    completion_queue_.pop_front();
    ++n;
  }
  delivered_ += n;
  return n;
}

std::size_t Device::drain(std::vector<Completion>* out) {
  pump();
  const std::size_t n = completion_queue_.size();
  out->insert(out->end(), completion_queue_.begin(), completion_queue_.end());
  completion_queue_.clear();
  delivered_ += n;
  return n;
}

void Device::end_of_day() {
  pump();
  const double busy = do_end_of_day();
  if (busy > 0.0) {
    const double from = flash_free_s_;
    flash_free_s_ += busy;
    reserve_background(from, flash_free_s_);
  }
}

const CompletionStats& Device::stats() {
  pump();
  return stats_;
}

void Device::reset_stats() {
  pump();
  stats_ = CompletionStats();
}

}  // namespace rdsim::host
