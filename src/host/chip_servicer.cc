#include "host/chip_servicer.h"

namespace rdsim::host {

ChipServicer::ChipServicer(const nand::Geometry& geometry,
                           const flash::FlashModelParams& params,
                           std::uint64_t seed, const LatencyParams& latency)
    : chip_(geometry, params, seed),
      latency_(latency),
      writes_into_block_(geometry.blocks, 0) {
  for (std::size_t b = 0; b < chip_.block_count(); ++b)
    chip_.block(b).program_random();
}

ServiceCost ChipServicer::service(const Command& command) {
  ServiceCost cost;
  const std::uint64_t logical = logical_pages();
  for (std::uint32_t i = 0; i < command.pages; ++i) {
    const ServiceCost page =
        service_page(command.kind, (command.lpn + i) % logical);
    cost.busy_s += page.busy_s;
    cost.stall_s += page.stall_s;
  }
  return cost;
}

nand::PageAddress ChipServicer::page_address(std::uint64_t lpn,
                                             std::uint32_t* block) const {
  const std::uint32_t ppb = chip_.geometry().pages_per_block();
  *block = static_cast<std::uint32_t>(lpn / ppb);
  const auto page = static_cast<std::uint32_t>(lpn % ppb);
  return {page / 2,
          (page & 1) != 0 ? nand::PageKind::kMsb : nand::PageKind::kLsb};
}

ServiceCost ChipServicer::service_page(CommandKind kind, std::uint64_t lpn) {
  ServiceCost cost;
  std::uint32_t b = 0;
  const nand::PageAddress address = page_address(lpn, &b);
  switch (kind) {
    case CommandKind::kRead: {
      const nand::ReadResult result = chip_.block(b).read_page(address);
      read_bit_errors_ += static_cast<std::uint64_t>(result.raw_bit_errors);
      ++pages_read_;
      cost.busy_s += latency_.read_s;
      break;
    }
    case CommandKind::kWrite: {
      // Log-structured turnover: the block's resident (random) data
      // stands in for the host's; after a block's worth of writes it is
      // erased and reprogrammed, clearing disturb and costing one P/E.
      ++pages_written_;
      cost.busy_s += latency_.program_s;
      if (++writes_into_block_[b] >= chip_.geometry().pages_per_block()) {
        writes_into_block_[b] = 0;
        chip_.block(b).erase();
        chip_.block(b).program_random();
        ++block_rewrites_;
        cost.stall_s += latency_.erase_s;
      }
      break;
    }
    case CommandKind::kTrim:
    case CommandKind::kFlush:
      break;  // Metadata-only on the raw chip.
  }
  return cost;
}

}  // namespace rdsim::host
