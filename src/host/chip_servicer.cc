#include "host/chip_servicer.h"

#include <cmath>

#include "common/rng.h"
#include "flash/types.h"

namespace rdsim::host {

namespace {

/// Stream id carved out of the servicer's seed for fault draws — a fixed
/// constant so fault randomness is decorrelated from the chip's own
/// streams but still a pure function of the shard seed.
constexpr std::uint64_t kFaultStream = 0xFA017;

/// The data bit of `state` selected by the page kind.
int bit_of(flash::CellState state, nand::PageKind kind) {
  return kind == nand::PageKind::kLsb ? flash::lsb_of(state)
                                      : flash::msb_of(state);
}

}  // namespace

ChipServicer::ChipServicer(const nand::Geometry& geometry,
                           const flash::FlashModelParams& params,
                           std::uint64_t seed, const LatencyParams& latency,
                           const ChipErrorPath& error_path,
                           const ChipFaults& faults)
    : chip_(geometry, params, seed),
      latency_(latency),
      ecc_(error_path.ecc),
      vref_(error_path.vref),
      rdr_(error_path.rdr),
      faults_(faults),
      fault_seed_(Rng::stream(seed, kFaultStream).next()),
      writes_into_block_(geometry.blocks, 0),
      program_epoch_(geometry.blocks, 0) {
  for (std::size_t b = 0; b < chip_.block_count(); ++b)
    chip_.block(b).program_random();
  // Pre-compute the flash time each escalation step charges. A retry
  // attempt is the optimizer's learning sweep (one read per retry level)
  // plus the corrected re-read; an RDR attempt is the §4 procedure's two
  // fine-grained measurement sweeps plus the induced disturb dose.
  const double vpass = chip_.block(0).model().params().vpass_nominal;
  const double retry_levels =
      std::floor((vpass + 8.0) / error_path.vref.scan_step) + 1.0;
  retry_charge_s_ = (retry_levels + 1.0) * latency.read_s;
  const double rdr_levels =
      std::floor((error_path.rdr.retry_hi - error_path.rdr.retry_lo) /
                 error_path.rdr.retry_step) +
      1.0;
  rdr_charge_s_ =
      (2.0 * rdr_levels + error_path.rdr.extra_reads) * latency.read_s;
}

ServiceCost ChipServicer::service(const Command& command) {
  ServiceCost cost;
  const std::uint64_t logical = logical_pages();
  for (std::uint32_t i = 0; i < command.pages; ++i) {
    const ServiceCost page =
        service_page(command.kind, (command.lpn + i) % logical);
    cost.busy_s += page.busy_s;
    cost.stall_s += page.stall_s;
    cost.status = worst_status(cost.status, page.status);
    cost.error_pages += page.error_pages;
  }
  return cost;
}

nand::PageAddress ChipServicer::page_address(std::uint64_t lpn,
                                             std::uint32_t* block) const {
  const std::uint32_t ppb = chip_.geometry().pages_per_block();
  *block = static_cast<std::uint32_t>(lpn / ppb);
  const auto page = static_cast<std::uint32_t>(lpn % ppb);
  return {page / 2,
          (page & 1) != 0 ? nand::PageKind::kMsb : nand::PageKind::kLsb};
}

bool ChipServicer::page_decodes(int errors) const {
  const int codewords = ecc_.config().codewords_per_page > 0
                            ? ecc_.config().codewords_per_page
                            : 1;
  const int per_codeword = (errors + codewords - 1) / codewords;
  return ecc_.correctable(per_codeword);
}

int ChipServicer::page_errors_with_refs(std::uint32_t block,
                                        const nand::PageAddress& address,
                                        const core::ReadRefs& refs) const {
  const nand::Block& blk = chip_.block(block);
  const std::vector<double> vth = blk.present_vth_page(address.wordline);
  int errors = 0;
  for (std::uint32_t bl = 0; bl < chip_.geometry().bitlines; ++bl) {
    const double v = vth[bl];
    flash::CellState sensed;
    if (v < refs.va)
      sensed = flash::CellState::kEr;
    else if (v < refs.vb)
      sensed = flash::CellState::kP1;
    else if (v < refs.vc)
      sensed = flash::CellState::kP2;
    else
      sensed = flash::CellState::kP3;
    const flash::CellState truth = blk.cell_state(address.wordline, bl);
    errors += bit_of(sensed, address.kind) != bit_of(truth, address.kind);
  }
  return errors;
}

int ChipServicer::page_errors_after_rdr(
    std::uint32_t block, const nand::PageAddress& address,
    const core::RdrResult& recovered) const {
  const nand::Block& blk = chip_.block(block);
  int errors = 0;
  for (std::uint32_t bl = 0; bl < chip_.geometry().bitlines; ++bl) {
    const flash::CellState truth = blk.cell_state(address.wordline, bl);
    errors += bit_of(recovered.corrected_states[bl], address.kind) !=
              bit_of(truth, address.kind);
  }
  return errors;
}

bool ChipServicer::latent_bad(std::uint64_t lpn, std::uint32_t block) const {
  if (faults_.latent_page_prob <= 0.0) return false;
  return Rng::at(fault_seed_, lpn, program_epoch_[block]).uniform() <
         faults_.latent_page_prob;
}

ServiceCost ChipServicer::service_page(CommandKind kind, std::uint64_t lpn) {
  ServiceCost cost;
  std::uint32_t b = 0;
  const nand::PageAddress address = page_address(lpn, &b);
  switch (kind) {
    case CommandKind::kRead: {
      ++pages_read_;
      cost.busy_s += latency_.read_s;
      if (dead_) {
        // The die is gone: the sense returns nothing usable and there is
        // no point escalating — every ladder step needs the same die.
        cost.status = Status::kUncorrectable;
        cost.error_pages = 1;
        ++error_stats_.reads_uncorrectable;
        break;
      }
      const nand::ReadResult result = chip_.block(b).read_page(address);
      read_bit_errors_ += static_cast<std::uint64_t>(result.raw_bit_errors);
      const bool latent = latent_bad(lpn, b);
      if (!latent && result.raw_bit_errors == 0) {
        ++error_stats_.reads_ok;
        break;
      }
      if (!latent && page_decodes(result.raw_bit_errors)) {
        cost.status = Status::kCorrected;
        ++error_stats_.reads_corrected;
        break;
      }
      // Step 2: read-retry. Learn the present valleys and re-read with
      // the learned references; charge the learning sweep's reads. A
      // latently bad page is physically damaged — the controller still
      // pays for the attempt, but no reference placement can decode it.
      ++error_stats_.retry_attempts;
      error_stats_.retry_seconds += retry_charge_s_;
      cost.busy_s += retry_charge_s_;
      if (!latent) {
        const core::ReadRefs refs = vref_.learn(chip_.block(b),
                                                address.wordline);
        // A degenerate learn (non-monotone refs from a collapsed valley
        // search) cannot be sensed with; treat the step as failed.
        if (refs.va < refs.vb && refs.vb < refs.vc) {
          const int errors = page_errors_with_refs(b, address, refs);
          if (page_decodes(errors)) {
            cost.status = Status::kRecovered;
            ++error_stats_.reads_retry_recovered;
            break;
          }
        }
      }
      // Step 3: the paper's §4 read-disturb recovery. The induced extra
      // reads are real disturbs (the block mutates) and the two
      // fine-grained measurement sweeps are real senses — all charged.
      ++error_stats_.rdr_attempts;
      error_stats_.rdr_seconds += rdr_charge_s_;
      cost.busy_s += rdr_charge_s_;
      if (!latent) {
        const core::RdrResult recovered =
            rdr_.recover(chip_.block(b), address.wordline);
        const int errors = page_errors_after_rdr(b, address, recovered);
        if (page_decodes(errors)) {
          cost.status = Status::kRecovered;
          ++error_stats_.reads_rdr_recovered;
          break;
        }
      }
      cost.status = Status::kUncorrectable;
      cost.error_pages = 1;
      ++error_stats_.reads_uncorrectable;
      break;
    }
    case CommandKind::kWrite: {
      ++pages_written_;
      cost.busy_s += latency_.program_s;
      if (dead_) {
        cost.status = Status::kFailedWrite;
        cost.error_pages = 1;
        ++error_stats_.writes_failed;
        break;
      }
      // Log-structured turnover: the block's resident (random) data
      // stands in for the host's; after a block's worth of writes it is
      // erased and reprogrammed, clearing disturb and costing one P/E.
      // The turnover is a fresh program event, so latent-defect draws
      // re-roll (grown defects appear per program, not per read).
      if (++writes_into_block_[b] >= chip_.geometry().pages_per_block()) {
        writes_into_block_[b] = 0;
        chip_.block(b).erase();
        chip_.block(b).program_random();
        ++program_epoch_[b];
        ++block_rewrites_;
        cost.stall_s += latency_.erase_s;
      }
      break;
    }
    case CommandKind::kTrim:
    case CommandKind::kFlush:
      break;  // Metadata-only on the raw chip.
  }
  return cost;
}

double ChipServicer::end_of_day() {
  chip_.advance_time(1.0);
  day_ += 1.0;
  if (faults_.die_kill_day >= 0.0 && day_ >= faults_.die_kill_day)
    dead_ = true;
  return 0.0;
}

}  // namespace rdsim::host
