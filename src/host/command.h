// rdsim/host/command.h
//
// The host-facing command vocabulary of the NVMe-style queued interface:
// a typed Command (read / write / trim / flush over an LBA range, stamped
// with its submission queue and arrival time) and the per-command
// Completion record the device hands back (service start, completion
// time, and how much of the latency was a background-induced stall).
// This header is dependency-free on purpose: every layer from the
// workload generators up to the device backends speaks these types
// without pulling in the drive model.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace rdsim::host {

/// The command set a flash drive's host interface exposes. Trim unmaps an
/// LBA range without writing it (the space stops being relocated by GC /
/// refresh); flush is an ordering barrier that completes only when every
/// previously submitted command has completed.
enum class CommandKind : std::uint8_t { kRead, kWrite, kTrim, kFlush };

/// Short lowercase name ("read", "write", "trim", "flush").
const char* command_kind_name(CommandKind kind);

/// Outcome of a command, ordered by severity so a multi-page (or
/// multi-shard) command's status is the numeric max over its parts:
///   kOk            — clean; reads sensed zero raw bit errors.
///   kCorrected     — ECC corrected raw errors within the normal sense.
///   kRecovered     — data came back only after escalation (read-retry
///                    re-read or the paper's §4 read-disturb recovery).
///   kUncorrectable — every recovery step failed; the host got garbage.
///   kFailedWrite   — a program failed and the data could not be
///                    relocated (grown defect with no healthy destination).
///   kReadOnly      — the drive is in read-only mode (spare blocks
///                    exhausted); the write was rejected, not attempted.
enum class Status : std::uint8_t {
  kOk = 0,
  kCorrected = 1,
  kRecovered = 2,
  kUncorrectable = 3,
  kFailedWrite = 4,
  kReadOnly = 5,
};

inline constexpr std::size_t kStatusCount = 6;

/// Short lowercase name ("ok", "corrected", "recovered", "uncorrectable",
/// "failed_write", "read_only").
const char* status_name(Status status);

/// Severity merge: the worse of two statuses (the enum is
/// severity-ordered, so this is the numeric max).
inline Status worst_status(Status a, Status b) { return a < b ? b : a; }

/// One host command, page-granular.
struct Command {
  CommandKind kind = CommandKind::kRead;
  std::uint64_t lpn = 0;         ///< First logical page of the range.
  std::uint32_t pages = 1;       ///< Range length (ignored for flush).
  std::uint16_t queue = 0;       ///< Submission queue (mod queue count).
  std::uint16_t tenant = 0;      ///< Owning tenant (mod tenant count);
                                 ///< 0 on single-tenant devices.
  double submit_time_s = 0.0;    ///< Host-side arrival time.
};

/// Flash operation latencies used by the device backends' time accounting.
struct LatencyParams {
  double read_s = 75e-6;      ///< Page read (tR).
  double program_s = 1.3e-3;  ///< Page program (tProg).
  double erase_s = 3.5e-3;    ///< Block erase (tBERS).
};

/// What servicing one command cost the backend: flash busy time for the
/// command's own data movement, plus any stall it induced or absorbed
/// (inline garbage collection triggered by a write, block turnover), plus
/// the command's outcome (worst page status and how many pages were lost).
struct ServiceCost {
  double busy_s = 0.0;
  double stall_s = 0.0;
  Status status = Status::kOk;     ///< Worst per-page outcome.
  std::uint32_t error_pages = 0;   ///< Pages that came back uncorrectable
                                   ///< or failed to persist.
};

/// Per-command completion record, posted to the completion queue.
struct Completion {
  std::uint64_t id = 0;        ///< Device-assigned sequence number.
  CommandKind kind = CommandKind::kRead;
  std::uint16_t queue = 0;     ///< Submission queue the command used.
  std::uint16_t tenant = 0;    ///< Owning tenant (after the device's
                               ///< modulo mapping).
  std::uint64_t lpn = 0;
  std::uint32_t pages = 1;
  double submit_time_s = 0.0;
  double service_start_s = 0.0;  ///< When the flash began the command.
  double complete_time_s = 0.0;
  double stall_s = 0.0;  ///< Share of the latency attributed to background
                         ///< work (GC, maintenance) rather than the
                         ///< command's own transfer.
  Status status = Status::kOk;    ///< Worst per-page outcome.
  std::uint32_t error_pages = 0;  ///< Uncorrectable / lost pages.

  double latency_s() const { return complete_time_s - submit_time_s; }
  double queue_wait_s() const { return service_start_s - submit_time_s; }
};

/// Canonical single-line rendering of a completion record. The host
/// determinism tests compare completion logs byte-for-byte through this.
std::string to_string(const Completion& completion);

/// The deterministic completion-log order: (complete_time, submit id).
/// ShardedDevice sorts its merged log with this, and ClosedLoopDriver's
/// buffer relies on receiving records in exactly this order — keep the
/// two on one definition.
inline bool completion_log_order(const Completion& a, const Completion& b) {
  return a.complete_time_s != b.complete_time_s
             ? a.complete_time_s < b.complete_time_s
             : a.id < b.id;
}

}  // namespace rdsim::host
