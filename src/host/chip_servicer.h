// rdsim/host/chip_servicer.h
//
// ChipServicer: the Monte-Carlo implementation of the host::Servicer
// shard slot — the data-movement engine behind one nand::Chip, shared by
// the single-chip McChipDevice backend and by each shard of
// ShardedDevice — so the physics a queued read or write performs (and
// its cost accounting) exists exactly once, and a one-shard
// ShardedDevice is the single-chip device by construction.
//
// Logical layout: lpn -> (block = lpn / pages_per_block, then LSB/MSB
// pages interleaved along the wordlines: page index 2*wl + kind). Every
// block is programmed with random data at construction, like a
// characterization drive prepared for a read-disturb study. A host write
// models log-structured turnover: each page write costs tProg, and once a
// block has absorbed pages_per_block writes it is erased and reprogrammed
// (one P/E cycle, disturb state cleared) with the erase charged as the
// write's stall.
//
// Reads run the controller's escalation ladder: the normal sense's raw
// bit errors go through ecc::EccModel (kOk / kCorrected at no extra
// latency); an ECC failure escalates to a read-retry re-read with learned
// references (core::VrefOptimizer), then to the paper's §4 read-disturb
// recovery (core::ReadDisturbRecovery), and finally to kUncorrectable.
// Each escalation step charges its real flash time to the command, so
// recovery cost shows up in the tail latencies, and per-step attribution
// accumulates in error_stats(). With raw errors within ECC capability —
// the normal case — the ladder is bit-transparent: same senses, same
// latency, same chip state as a ladder-less read.
//
// Both the construction-time bulk program and each turnover reprogram are
// O(bookkeeping) under the block's lazy cell materialization: a rewritten
// block resamples only the wordlines later reads actually touch, so large
// simulated drives with read-skewed workloads cost cells proportional to
// the read footprint, not the drive capacity.
#pragma once

#include <cstdint>
#include <vector>

#include "core/rdr.h"
#include "core/vref_optimizer.h"
#include "ecc/ecc_model.h"
#include "host/command.h"
#include "host/servicer.h"
#include "nand/chip.h"

namespace rdsim::host {

/// The read error path's provisioning: ECC strength and the tuning of the
/// two recovery steps. Defaults match the MC chip's page size (one t=40
/// codeword per 8192-bit page) and the core modules' paper-tuned options.
struct ChipErrorPath {
  ecc::EccConfig ecc = ecc::EccConfig::mc_provisioning();
  core::VrefOptimizerOptions vref;
  core::RdrOptions rdr;
};

/// Injectable faults, all derived from counter-based RNG streams of the
/// servicer's seed so outcomes are a pure function of (seed, page) —
/// byte-identical at any worker count. Defaults inject nothing.
struct ChipFaults {
  /// Probability that a (block, page, program-epoch) is latently bad:
  /// physically damaged so no recovery step can decode it. Re-rolled when
  /// the block turns over (real grown defects appear per program).
  double latent_page_prob = 0.0;
  /// Simulated day at which this chip dies wholesale (reads return
  /// kUncorrectable, writes kFailedWrite). Negative = never.
  double die_kill_day = -1.0;
};

class ChipServicer : public Servicer {
 public:
  ChipServicer(const nand::Geometry& geometry,
               const flash::FlashModelParams& params, std::uint64_t seed,
               const LatencyParams& latency,
               const ChipErrorPath& error_path = {},
               const ChipFaults& faults = {});

  nand::Chip& chip() { return chip_; }
  const nand::Chip& chip() const { return chip_; }
  nand::Chip* mc_chip() override { return &chip_; }

  /// Pages this chip exports (blocks * pages_per_block).
  std::uint64_t logical_pages() const override {
    return static_cast<std::uint64_t>(chip_.geometry().blocks) *
           chip_.geometry().pages_per_block();
  }

  /// Services one local command: each page of the range (wrapped modulo
  /// logical_pages()) through service_page, costs accumulated and statuses
  /// severity-merged in range order — the Servicer contract.
  ServiceCost service(const Command& command) override;

  /// Services one page of a command on this chip. `lpn` must be local to
  /// the chip (callers wrap / de-stripe first). Reads sense real cells and
  /// run the escalation ladder (see header comment); writes pay tProg and,
  /// on block turnover, an erase charged as stall. Trim and flush are
  /// metadata-only on a raw chip. Returns the page's cost contribution.
  ServiceCost service_page(CommandKind kind, std::uint64_t lpn);

  /// One simulated day on a raw chip is pure retention aging, which costs
  /// no flash busy time. Arms the die-kill fault once its day arrives.
  double end_of_day() override;

  /// Cumulative raw bit errors observed by queued reads' normal senses
  /// (the host-visible symptom ECC has to absorb).
  std::uint64_t read_bit_errors() const override { return read_bit_errors_; }
  /// Queued page reads / writes serviced, and blocks turned over.
  std::uint64_t pages_read() const override { return pages_read_; }
  std::uint64_t pages_written() const override { return pages_written_; }
  std::uint64_t block_rewrites() const override { return block_rewrites_; }

  /// Ladder attribution: how far down each read went, recovery seconds
  /// charged, write failures (die-kill only on a raw chip).
  ErrorStats error_stats() const override { return error_stats_; }

 private:
  nand::PageAddress page_address(std::uint64_t lpn, std::uint32_t* block)
      const;

  /// True if a page whose normal sense saw `errors` raw bit errors decodes
  /// under the provisioned ECC. Codewords are interleaved across the page
  /// (as real controllers do precisely so error bursts spread), so the
  /// per-codeword load is the ceiling split of the page total.
  bool page_decodes(int errors) const;

  /// Raw bit errors of the page at `address` when the wordline is sensed
  /// with learned references `refs` (pass-through blocking ignored — the
  /// retry re-read is a refined sense, like the optimizer's evaluator).
  int page_errors_with_refs(std::uint32_t block,
                            const nand::PageAddress& address,
                            const core::ReadRefs& refs) const;

  /// Raw bit errors of the page at `address` in RDR's re-labeled states.
  int page_errors_after_rdr(std::uint32_t block,
                            const nand::PageAddress& address,
                            const core::RdrResult& recovered) const;

  /// Counter-based latent-defect draw for the page (pure function of the
  /// fault seed, the page, and the block's program epoch).
  bool latent_bad(std::uint64_t lpn, std::uint32_t block) const;

  nand::Chip chip_;
  LatencyParams latency_;
  ecc::EccModel ecc_;
  core::VrefOptimizer vref_;
  core::ReadDisturbRecovery rdr_;
  ChipFaults faults_;
  std::uint64_t fault_seed_ = 0;
  double retry_charge_s_ = 0.0;  ///< Flash time of one retry learn+re-read.
  double rdr_charge_s_ = 0.0;    ///< Flash time of one RDR invocation.
  std::vector<std::uint32_t> writes_into_block_;
  std::vector<std::uint32_t> program_epoch_;  ///< Latent-draw re-roll key.
  double day_ = 0.0;
  bool dead_ = false;
  ErrorStats error_stats_;
  std::uint64_t read_bit_errors_ = 0;
  std::uint64_t pages_read_ = 0;
  std::uint64_t pages_written_ = 0;
  std::uint64_t block_rewrites_ = 0;
};

}  // namespace rdsim::host
