// rdsim/host/chip_servicer.h
//
// ChipServicer: the Monte-Carlo implementation of the host::Servicer
// shard slot — the data-movement engine behind one nand::Chip, shared by
// the single-chip McChipDevice backend and by each shard of
// ShardedDevice — so the physics a queued read or write performs (and
// its cost accounting) exists exactly once, and a one-shard
// ShardedDevice is the single-chip device by construction.
//
// Logical layout: lpn -> (block = lpn / pages_per_block, then LSB/MSB
// pages interleaved along the wordlines: page index 2*wl + kind). Every
// block is programmed with random data at construction, like a
// characterization drive prepared for a read-disturb study. A host write
// models log-structured turnover: each page write costs tProg, and once a
// block has absorbed pages_per_block writes it is erased and reprogrammed
// (one P/E cycle, disturb state cleared) with the erase charged as the
// write's stall.
//
// Both the construction-time bulk program and each turnover reprogram are
// O(bookkeeping) under the block's lazy cell materialization: a rewritten
// block resamples only the wordlines later reads actually touch, so large
// simulated drives with read-skewed workloads cost cells proportional to
// the read footprint, not the drive capacity.
#pragma once

#include <cstdint>
#include <vector>

#include "host/command.h"
#include "host/servicer.h"
#include "nand/chip.h"

namespace rdsim::host {

class ChipServicer : public Servicer {
 public:
  ChipServicer(const nand::Geometry& geometry,
               const flash::FlashModelParams& params, std::uint64_t seed,
               const LatencyParams& latency);

  nand::Chip& chip() { return chip_; }
  const nand::Chip& chip() const { return chip_; }
  nand::Chip* mc_chip() override { return &chip_; }

  /// Pages this chip exports (blocks * pages_per_block).
  std::uint64_t logical_pages() const override {
    return static_cast<std::uint64_t>(chip_.geometry().blocks) *
           chip_.geometry().pages_per_block();
  }

  /// Services one local command: each page of the range (wrapped modulo
  /// logical_pages()) through service_page, costs accumulated in range
  /// order — the Servicer contract.
  ServiceCost service(const Command& command) override;

  /// Services one page of a command on this chip. `lpn` must be local to
  /// the chip (callers wrap / de-stripe first). Reads sense real cells
  /// and accumulate the observed raw bit errors; writes pay tProg and,
  /// on block turnover, an erase charged as stall. Trim and flush are
  /// metadata-only on a raw chip. Returns the page's cost contribution.
  ServiceCost service_page(CommandKind kind, std::uint64_t lpn);

  /// One simulated day on a raw chip is pure retention aging, which
  /// costs no flash busy time.
  double end_of_day() override {
    chip_.advance_time(1.0);
    return 0.0;
  }

  /// Cumulative raw bit errors observed by queued reads (the host-visible
  /// symptom ECC has to absorb).
  std::uint64_t read_bit_errors() const override { return read_bit_errors_; }
  /// Queued page reads / writes serviced, and blocks turned over.
  std::uint64_t pages_read() const override { return pages_read_; }
  std::uint64_t pages_written() const override { return pages_written_; }
  std::uint64_t block_rewrites() const override { return block_rewrites_; }

 private:
  nand::PageAddress page_address(std::uint64_t lpn, std::uint32_t* block)
      const;

  nand::Chip chip_;
  LatencyParams latency_;
  std::vector<std::uint32_t> writes_into_block_;
  std::uint64_t read_bit_errors_ = 0;
  std::uint64_t pages_read_ = 0;
  std::uint64_t pages_written_ = 0;
  std::uint64_t block_rewrites_ = 0;
};

}  // namespace rdsim::host
