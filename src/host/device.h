// rdsim/host/device.h
//
// The unified device facade: an NVMe-style queued host interface over the
// repository's drive backends (the analytic ssd::Ssd and the Monte Carlo
// nand::Chip, single-chip or sharded across many). Hosts submit typed
// Commands into N submission queues and retrieve per-command Completion
// records from a completion queue via an explicit submit()/poll()/drain()
// model.
//
// Arbitration and determinism. Which pending command is serviced next is
// decided by the device's ArbitrationConfig (arbitration.h). Under the
// default FIFO policy commands are serviced oldest-first across the
// submission queues (NVMe round-robin arbitration degenerates to exactly
// this whenever producers feed the queues in global submission order,
// which all of rdsim's generators do). The tenant policies — round-robin
// across tenants, weighted fair queueing, earliest deadline first —
// reorder co-pending commands, and they do it deterministically: every
// command's arbitration key is computed at submit() time as a pure
// function of the submission stream, so the service order never depends
// on when servicing happens. Flushes partition the stream into epochs
// (arbitration never reorders across a flush, which is what makes the
// flush barrier exact under every policy).
//
// Poll-cadence independence under reordering needs one extra rule: a
// poll() may only service commands whose position in the final service
// order is already decided — i.e. commands no future submission could
// precede. Each policy admits a monotone lower bound on all future keys
// (per tenant: the next round index, the next virtual finish time, the
// newest-submit-time + deadline), so the device services the sorted
// prefix below that bound on poll() and everything on drain() /
// end_of_day() / stats() (which wait for the device to quiesce, so they
// finalize the pending order — a drain is a synchronization point of the
// submission stream, like a flush). Under FIFO every pending command is
// always final and this machinery is inert: the service schedule is a
// pure function of the submission stream — simulated clocks only, never
// the wall clock, the poll cadence, or the worker thread count — so the
// completion log is byte-identical no matter how often the host polls or
// how many threads a sharded backend uses: the determinism contract
// documented in docs/ARCHITECTURE.md and enforced by tests/test_host.cc,
// tests/test_sharded_device.cc and tests/test_arbitration.cc.
//
// Class split:
//   * Device        — the abstract facade: submission queues, completion
//                     queue, arbitration keys, statistics, id assignment.
//                     Knows nothing about time.
//   * SerialDevice  — the single-timeline engine (one FlashTimeline):
//                     backends implement do_service()/do_end_of_day().
//                     SsdDevice and McChipDevice derive from this.
//   * ShardedDevice — N chips, N timelines, deterministic merge
//                     (sharded_device.h).
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "host/arbitration.h"
#include "host/command.h"
#include "host/stats.h"
#include "host/timeline.h"

namespace rdsim::host {

class Device {
 public:
  /// `queue_count` >= 1 submission queues (command.queue is taken modulo
  /// this count, so any router works against any device width).
  explicit Device(std::uint32_t queue_count);
  virtual ~Device() = default;

  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  std::uint32_t queue_count() const { return queue_count_; }

  /// Installs the arbitration policy and tenant table. Must be called
  /// while nothing is queued — before the first submit(), or right after
  /// a drain() (e.g. between warm_fill and the measured workload):
  /// arbitration keys are assigned at submission, so keys from different
  /// policies are incomparable and a mid-stream change would make the
  /// service order depend on *when* the change happened. The default
  /// (FIFO, one tenant) reproduces the pre-tenant device bit-for-bit.
  void set_arbitration(const ArbitrationConfig& config);
  const ArbitrationConfig& arbitration() const { return arb_; }

  /// Tenants the device distinguishes (>= 1; command.tenant is taken
  /// modulo this count).
  std::uint32_t tenant_count() const { return arb_.tenant_count(); }

  /// Exported logical space of the backend, in pages.
  virtual std::uint64_t logical_pages() const = 0;

  /// Enqueues one command; returns its device-assigned sequence id.
  /// Servicing is lazy (poll/drain/stats/end_of_day trigger it), but the
  /// schedule a command receives does not depend on when that happens.
  std::uint64_t submit(const Command& command);

  /// Moves up to `max_completions` completion records (oldest first) into
  /// `out` (appended); returns how many were delivered. A backend may
  /// withhold records whose position in the deterministic log could still
  /// change (see ShardedDevice); drain() always delivers everything.
  std::size_t poll(std::vector<Completion>* out, std::size_t max_completions);

  /// Drains every pending completion into `out`; returns the count.
  std::size_t drain(std::vector<Completion>* out);

  /// Runs the backend's nightly maintenance (refresh, reclaim, tuning,
  /// retention aging) after servicing everything queued.
  void end_of_day();

  /// Aggregate completion statistics (services any still-queued commands
  /// first so the numbers cover everything submitted so far).
  const CompletionStats& stats();

  /// Forgets accumulated statistics (after servicing anything queued) so
  /// a measurement window can exclude warm-up traffic. The completion
  /// queue, ids, and the flash timelines are untouched. Virtual so
  /// backends with side ledgers (ShardedDevice's per-shard stall
  /// accounting) reset them in the same stroke.
  virtual void reset_stats();

  /// Commands submitted but not yet delivered through poll()/drain().
  std::size_t outstanding() const { return submitted_ - delivered_; }

  /// Current simulated time: end of the last scheduled work across the
  /// backend's timeline(s).
  virtual double now_s() const = 0;

 protected:
  struct Submitted {
    Command command;
    std::uint64_t id = 0;
    std::uint64_t epoch = 0;  ///< Flushes submitted before this command.
    double key = 0.0;         ///< Policy key within the epoch.
  };

  /// Backend hook: service queued commands (pull them with
  /// take_pending()), record() each completion, and make delivered
  /// records available via deliver(). Called by poll (force = false: only
  /// the order-final prefix may be serviced) and by drain/stats/
  /// end_of_day (force = true: service everything) before they act.
  virtual void pump(bool force) = 0;

  /// Backend hook: nightly maintenance, run after pump().
  virtual void run_end_of_day() = 0;

  /// Backend hook: called after pump() by poll (drain_all = false) and
  /// drain (drain_all = true), so backends that withhold completions can
  /// release what is safe (everything, for a drain). Default: no-op.
  virtual void release_ready(bool drain_all);

  /// Pops queued commands in arbitration order. With force, every
  /// pending command; without, only the prefix whose service order no
  /// future submission could change (under FIFO that is everything).
  std::vector<Submitted> take_pending(bool force);

  /// True while commands sit in the submission queues unserviced (a
  /// cadence-limited take_pending(false) may leave some behind).
  bool has_pending() const { return !pending_.empty(); }

  /// Newest submit time seen across all submissions (non-decreasing by
  /// the driver contract); backends use it to decide which completions'
  /// log positions are final.
  double max_submit_seen_s() const { return max_submit_s_; }

  /// Earliest submit time among still-unserviced commands (meaningful
  /// only while has_pending()): no unserviced command can complete
  /// before it, so completions strictly earlier are final.
  double min_pending_submit_s() const;

  /// Accounts a serviced command in the statistics.
  void record(const Completion& completion) { stats_.add(completion); }

  /// Appends a record to the completion queue (the delivery order).
  void deliver(const Completion& completion) {
    completion_queue_.push_back(completion);
  }

 private:
  /// The deterministic service order: (epoch, key, tenant, id). Total —
  /// ids are unique — and under FIFO identical to id order.
  static bool arbitration_order(const Submitted& a, const Submitted& b);

  /// True when no future submission could precede `sub` in the service
  /// order (its position is final). Pure function of the submission
  /// stream so far, and monotone: once final, always final.
  bool order_final(const Submitted& sub) const;

  ArbitrationConfig arb_;
  std::uint32_t queue_count_;
  std::vector<Submitted> pending_;  ///< Unserviced commands, id order.
  std::deque<Completion> completion_queue_;
  CompletionStats stats_;
  std::vector<std::uint64_t> rr_round_;     ///< Per-tenant round index.
  std::vector<double> virtual_finish_;      ///< Per-tenant WFQ clock.
  std::uint64_t flush_epoch_ = 0;
  double max_submit_s_ = 0.0;
  std::uint64_t next_id_ = 0;
  std::uint64_t submitted_ = 0;
  std::uint64_t delivered_ = 0;
};

/// The single-timeline engine: one flash unit services the arbitrated
/// stream in order. Backends implement the per-command cost hook; the
/// queue layer owns scheduling, stall attribution, and completion
/// records.
class SerialDevice : public Device {
 public:
  explicit SerialDevice(std::uint32_t queue_count) : Device(queue_count) {}

  double now_s() const override { return timeline_.free_s(); }

 protected:
  /// Backend hook: perform the command's data movement and report its
  /// cost. Flush never reaches this (the queue layer implements the
  /// barrier; arbitration keeps a flush after its whole epoch, so it
  /// completes at the flash free time, i.e. after everything submitted
  /// before it).
  virtual ServiceCost do_service(const Command& command) = 0;

  /// Backend hook: nightly maintenance; returns flash busy seconds.
  virtual double do_end_of_day() { return 0.0; }

  void pump(bool force) override;
  void run_end_of_day() override;
  void release_ready(bool drain_all) override;

 private:
  Completion service_one(const Submitted& sub);

  FlashTimeline timeline_;
  /// Serviced records not yet released to the completion queue: records
  /// completing exactly at the flash free time are withheld while
  /// commands are still queued, because a queued command a policy ordered
  /// later could complete at the same instant with a smaller id. Under
  /// FIFO nothing is ever queued after a pump, so this is pass-through.
  std::vector<Completion> batch_;
};

}  // namespace rdsim::host
