// rdsim/host/device.h
//
// The unified device facade: an NVMe-style queued host interface over the
// repository's drive backends (the analytic ssd::Ssd and the Monte Carlo
// nand::Chip). Hosts submit typed Commands into N submission queues and
// retrieve per-command Completion records from a completion queue via an
// explicit submit()/poll()/drain() model.
//
// Arbitration and determinism. Commands are serviced oldest-first across
// the submission queue heads (each queue is FIFO, and the device always
// picks the queue whose head command was submitted earliest — NVMe
// round-robin arbitration degenerates to exactly this whenever producers
// feed the queues in global submission order, which all of rdsim's
// generators do). Because the service schedule of a command is a pure
// function of the submission stream — simulated clocks only, never the
// wall clock or the poll cadence — the completion log is byte-identical
// no matter how often the host polls: the determinism contract
// tests/test_host.cc enforces.
//
// Time model. The device keeps a single flash timeline (`flash_free_s`):
// a command starts at max(its submit time, flash free time) and occupies
// the flash for the backend-reported busy + stall seconds. Background
// work — inline GC charged to a write, or the nightly maintenance that
// end_of_day() runs — reserves flash time too, and the portion of a
// later command's queue wait that overlaps such a reservation is
// attributed to `Completion::stall_s`, so tail-latency experiments can
// tell device congestion from background interference.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "host/command.h"
#include "host/stats.h"

namespace rdsim::host {

class Device {
 public:
  /// `queue_count` >= 1 submission queues (command.queue is taken modulo
  /// this count, so any router works against any device width).
  explicit Device(std::uint32_t queue_count);
  virtual ~Device() = default;

  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  std::uint32_t queue_count() const {
    return static_cast<std::uint32_t>(queues_.size());
  }

  /// Exported logical space of the backend, in pages.
  virtual std::uint64_t logical_pages() const = 0;

  /// Enqueues one command; returns its device-assigned sequence id.
  /// Servicing is lazy (poll/drain/stats/end_of_day trigger it), but the
  /// schedule a command receives does not depend on when that happens.
  std::uint64_t submit(const Command& command);

  /// Moves up to `max_completions` completion records (oldest first) into
  /// `out` (appended); returns how many were delivered.
  std::size_t poll(std::vector<Completion>* out, std::size_t max_completions);

  /// Drains every pending completion into `out`; returns the count.
  std::size_t drain(std::vector<Completion>* out);

  /// Runs the backend's nightly maintenance (refresh, reclaim, tuning) and
  /// reserves the flash timeline for the busy seconds it consumed, so the
  /// next day's first commands observe the maintenance stall.
  void end_of_day();

  /// Aggregate completion statistics (services any still-queued commands
  /// first so the numbers cover everything submitted so far).
  const CompletionStats& stats();

  /// Forgets accumulated statistics (after servicing anything queued) so
  /// a measurement window can exclude warm-up traffic. The completion
  /// queue, ids, and the flash timeline are untouched.
  void reset_stats();

  /// Commands submitted but not yet delivered through poll()/drain().
  std::size_t outstanding() const { return submitted_ - delivered_; }

  /// Current flash timeline position (end of the last scheduled work).
  double now_s() const { return flash_free_s_; }

 protected:
  /// Backend hook: perform the command's data movement and report its
  /// cost. Flush never reaches this (the queue layer implements the
  /// barrier; with oldest-first arbitration it completes at the flash
  /// free time, i.e. after everything submitted before it).
  virtual ServiceCost do_service(const Command& command) = 0;

  /// Backend hook: nightly maintenance; returns flash busy seconds.
  virtual double do_end_of_day() { return 0.0; }

 private:
  struct Submitted {
    Command command;
    std::uint64_t id;
  };

  /// Services every queued command, oldest-first across queue heads.
  void pump();
  void service_one(const Submitted& sub);

  std::vector<std::deque<Submitted>> queues_;
  std::deque<Completion> completion_queue_;
  CompletionStats stats_;
  std::uint64_t next_id_ = 0;
  std::uint64_t submitted_ = 0;
  std::uint64_t delivered_ = 0;
  /// Records a background reservation [from_s, until_s) on the flash
  /// timeline, merging with the newest window when they touch.
  void reserve_background(double from_s, double until_s);

  double flash_free_s_ = 0.0;
  /// Background reservations on the flash timeline, oldest first and
  /// disjoint: the part of a waiter's queue delay [submit, start) that
  /// overlaps these windows is attributed as stall. Windows ending at or
  /// before a serviced command's submit time are pruned — submit stamps
  /// are non-decreasing in every rdsim driver, so no later-id command
  /// can still overlap them (for a non-monotone hand-built stream this
  /// pruning under-attributes, never over-attributes).
  struct BgWindow {
    double from_s;
    double until_s;
  };
  std::deque<BgWindow> bg_windows_;
};

}  // namespace rdsim::host
