// rdsim/host/device.h
//
// The unified device facade: an NVMe-style queued host interface over the
// repository's drive backends (the analytic ssd::Ssd and the Monte Carlo
// nand::Chip, single-chip or sharded across many). Hosts submit typed
// Commands into N submission queues and retrieve per-command Completion
// records from a completion queue via an explicit submit()/poll()/drain()
// model.
//
// Arbitration and determinism. Commands are serviced oldest-first across
// the submission queue heads (each queue is FIFO, and the device always
// picks the queue whose head command was submitted earliest — NVMe
// round-robin arbitration degenerates to exactly this whenever producers
// feed the queues in global submission order, which all of rdsim's
// generators do). Because the service schedule of a command is a pure
// function of the submission stream — simulated clocks only, never the
// wall clock, the poll cadence, or the worker thread count — the
// completion log is byte-identical no matter how often the host polls or
// how many threads a sharded backend uses: the determinism contract
// documented in docs/ARCHITECTURE.md and enforced by tests/test_host.cc
// and tests/test_sharded_device.cc.
//
// Class split:
//   * Device        — the abstract facade: submission queues, completion
//                     queue, statistics, id assignment. Knows nothing
//                     about time.
//   * SerialDevice  — the single-timeline engine (one FlashTimeline):
//                     backends implement do_service()/do_end_of_day().
//                     SsdDevice and McChipDevice derive from this.
//   * ShardedDevice — N chips, N timelines, deterministic merge
//                     (sharded_device.h).
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "host/command.h"
#include "host/stats.h"
#include "host/timeline.h"

namespace rdsim::host {

class Device {
 public:
  /// `queue_count` >= 1 submission queues (command.queue is taken modulo
  /// this count, so any router works against any device width).
  explicit Device(std::uint32_t queue_count);
  virtual ~Device() = default;

  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  std::uint32_t queue_count() const {
    return static_cast<std::uint32_t>(queues_.size());
  }

  /// Exported logical space of the backend, in pages.
  virtual std::uint64_t logical_pages() const = 0;

  /// Enqueues one command; returns its device-assigned sequence id.
  /// Servicing is lazy (poll/drain/stats/end_of_day trigger it), but the
  /// schedule a command receives does not depend on when that happens.
  std::uint64_t submit(const Command& command);

  /// Moves up to `max_completions` completion records (oldest first) into
  /// `out` (appended); returns how many were delivered. A backend may
  /// withhold records whose position in the deterministic log could still
  /// change (see ShardedDevice); drain() always delivers everything.
  std::size_t poll(std::vector<Completion>* out, std::size_t max_completions);

  /// Drains every pending completion into `out`; returns the count.
  std::size_t drain(std::vector<Completion>* out);

  /// Runs the backend's nightly maintenance (refresh, reclaim, tuning,
  /// retention aging) after servicing everything queued.
  void end_of_day();

  /// Aggregate completion statistics (services any still-queued commands
  /// first so the numbers cover everything submitted so far).
  const CompletionStats& stats();

  /// Forgets accumulated statistics (after servicing anything queued) so
  /// a measurement window can exclude warm-up traffic. The completion
  /// queue, ids, and the flash timelines are untouched. Virtual so
  /// backends with side ledgers (ShardedDevice's per-shard stall
  /// accounting) reset them in the same stroke.
  virtual void reset_stats();

  /// Commands submitted but not yet delivered through poll()/drain().
  std::size_t outstanding() const { return submitted_ - delivered_; }

  /// Current simulated time: end of the last scheduled work across the
  /// backend's timeline(s).
  virtual double now_s() const = 0;

 protected:
  struct Submitted {
    Command command;
    std::uint64_t id;
  };

  /// Backend hook: service every queued command (pull them with
  /// take_pending()), record() each completion, and make delivered
  /// records available via deliver(). Called by poll/drain/stats/
  /// end_of_day before they act.
  virtual void pump() = 0;

  /// Backend hook: nightly maintenance, run after pump().
  virtual void run_end_of_day() = 0;

  /// Backend hook: called after pump() by poll (drain_all = false) and
  /// drain (drain_all = true), so backends that withhold completions can
  /// release what is safe (everything, for a drain). Default: no-op.
  virtual void release_ready(bool drain_all);

  /// Pops every queued command, oldest-first across queue heads (global
  /// submission order).
  std::vector<Submitted> take_pending();

  /// Accounts a serviced command in the statistics.
  void record(const Completion& completion) { stats_.add(completion); }

  /// Appends a record to the completion queue (the delivery order).
  void deliver(const Completion& completion) {
    completion_queue_.push_back(completion);
  }

 private:
  std::vector<std::deque<Submitted>> queues_;
  std::deque<Completion> completion_queue_;
  CompletionStats stats_;
  std::uint64_t next_id_ = 0;
  std::uint64_t submitted_ = 0;
  std::uint64_t delivered_ = 0;
};

/// The single-timeline engine: one flash unit services the merged stream
/// oldest-first. Backends implement the per-command cost hook; the queue
/// layer owns scheduling, stall attribution, and completion records.
class SerialDevice : public Device {
 public:
  explicit SerialDevice(std::uint32_t queue_count) : Device(queue_count) {}

  double now_s() const override { return timeline_.free_s(); }

 protected:
  /// Backend hook: perform the command's data movement and report its
  /// cost. Flush never reaches this (the queue layer implements the
  /// barrier; with oldest-first arbitration it completes at the flash
  /// free time, i.e. after everything submitted before it).
  virtual ServiceCost do_service(const Command& command) = 0;

  /// Backend hook: nightly maintenance; returns flash busy seconds.
  virtual double do_end_of_day() { return 0.0; }

  void pump() override;
  void run_end_of_day() override;

 private:
  void service_one(const Submitted& sub);

  FlashTimeline timeline_;
};

}  // namespace rdsim::host
