// rdsim/host/arbitration.h
//
// The arbitration vocabulary of the queued host interface: which pending
// command a device services next when several tenants share it. A
// tenant is a share of the drive (one co-located workload); every
// Command carries a tenant id, and the device's ArbitrationConfig maps
// those ids onto a policy plus per-tenant parameters (a weight for
// share-proportional scheduling, a deadline for EDF).
//
// Policies:
//   kFifo       — global submission order (oldest first). The default,
//                 and bit-identical to the pre-tenant device: with one
//                 tenant every policy below degenerates to this.
//   kRoundRobin — one command per tenant per round, cycling tenant ids.
//   kWeighted   — share-proportional (start-time fair queueing on page
//                 counts): each tenant consumes virtual time at
//                 work / weight, and the smallest virtual finish time
//                 is served first, so completed work tracks the
//                 configured weights under saturation.
//   kDeadline   — earliest deadline first on submit_time + deadline_us.
//
// Like command.h this header is dependency-free on purpose: the cfg
// layer includes it to describe a [tenants] section without pulling in
// the device machinery.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace rdsim::host {

enum class ArbitrationPolicy : std::uint8_t {
  kFifo = 0,
  kRoundRobin = 1,
  kWeighted = 2,
  kDeadline = 3,
};

/// Short lowercase name ("fifo", "round_robin", "weighted", "deadline").
inline const char* arbitration_policy_name(ArbitrationPolicy policy) {
  switch (policy) {
    case ArbitrationPolicy::kFifo: return "fifo";
    case ArbitrationPolicy::kRoundRobin: return "round_robin";
    case ArbitrationPolicy::kWeighted: return "weighted";
    case ArbitrationPolicy::kDeadline: return "deadline";
  }
  return "?";
}

inline bool arbitration_policy_from_name(const std::string& name,
                                         ArbitrationPolicy* out) {
  for (const ArbitrationPolicy p :
       {ArbitrationPolicy::kFifo, ArbitrationPolicy::kRoundRobin,
        ArbitrationPolicy::kWeighted, ArbitrationPolicy::kDeadline}) {
    if (name == arbitration_policy_name(p)) {
      *out = p;
      return true;
    }
  }
  return false;
}

/// Per-tenant scheduling parameters. `weight` is the share under
/// kWeighted (relative, > 0); `deadline_us` the latency target under
/// kDeadline (submit + deadline orders the queue). Both are ignored by
/// the policies that do not use them.
struct TenantConfig {
  double weight = 1.0;
  double deadline_us = 1000.0;
};

/// A device's complete arbitration setup: the policy plus one
/// TenantConfig per tenant. An empty tenant list means "one tenant"
/// (every command maps to tenant 0), which together with the kFifo
/// default reproduces the pre-tenant device exactly.
struct ArbitrationConfig {
  ArbitrationPolicy policy = ArbitrationPolicy::kFifo;
  std::vector<TenantConfig> tenants;

  std::uint32_t tenant_count() const {
    return tenants.empty() ? 1u : static_cast<std::uint32_t>(tenants.size());
  }
};

}  // namespace rdsim::host
