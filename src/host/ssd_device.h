// rdsim/host/ssd_device.h
//
// host::Device backend over the analytic whole-drive simulator ssd::Ssd:
// the production-shaped path for trace replay and QoS experiments. The
// queue layer owns scheduling and completion records; the Ssd services
// each command's data movement through the FTL and reports its cost.
#pragma once

#include <cstdint>

#include "host/device.h"
#include "ssd/ssd.h"

namespace rdsim::host {

class SsdDevice : public SerialDevice {
 public:
  SsdDevice(const ssd::SsdConfig& config,
            const flash::FlashModelParams& params, std::uint64_t seed,
            std::uint32_t queue_count = 1)
      : SerialDevice(queue_count), ssd_(config, params, seed) {}

  const ssd::Ssd& ssd() const { return ssd_; }

  std::uint64_t logical_pages() const override {
    return ssd_.ftl().config().logical_pages();
  }

 protected:
  ServiceCost do_service(const Command& command) override {
    return ssd_.service(command);
  }
  double do_end_of_day() override { return ssd_.end_of_day(); }

 private:
  ssd::Ssd ssd_;
};

}  // namespace rdsim::host
