#include "host/command.h"

#include <cstdio>

namespace rdsim::host {

const char* command_kind_name(CommandKind kind) {
  switch (kind) {
    case CommandKind::kRead: return "read";
    case CommandKind::kWrite: return "write";
    case CommandKind::kTrim: return "trim";
    case CommandKind::kFlush: return "flush";
  }
  return "?";
}

const char* status_name(Status status) {
  switch (status) {
    case Status::kOk: return "ok";
    case Status::kCorrected: return "corrected";
    case Status::kRecovered: return "recovered";
    case Status::kUncorrectable: return "uncorrectable";
    case Status::kFailedWrite: return "failed_write";
    case Status::kReadOnly: return "read_only";
  }
  return "?";
}

std::string to_string(const Completion& c) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "id=%llu %s q=%u t=%u lpn=%llu pages=%u submit=%.9f "
                "start=%.9f complete=%.9f stall=%.9f status=%s err=%u",
                static_cast<unsigned long long>(c.id),
                command_kind_name(c.kind), c.queue, c.tenant,
                static_cast<unsigned long long>(c.lpn), c.pages,
                c.submit_time_s, c.service_start_s, c.complete_time_s,
                c.stall_s, status_name(c.status), c.error_pages);
  return buf;
}

}  // namespace rdsim::host
