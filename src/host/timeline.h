// rdsim/host/timeline.h
//
// FlashTimeline: the single-resource scheduling model shared by every
// host::Device backend. One timeline represents one flash unit (a chip,
// or the whole analytic drive): work arriving at `submit_s` starts at
// max(submit_s, free time), occupies the unit for its busy + stall
// seconds, and background work (inline GC, nightly maintenance, block
// turnover) reserves windows whose overlap with a later command's queue
// wait is attributed as that command's stall.
//
// The serial Device engine owns exactly one FlashTimeline; ShardedDevice
// owns one per shard so N chips schedule independently. Everything here
// is simulated-clock arithmetic — no wall clock, no RNG — which is what
// makes a completion schedule a pure function of the submission stream
// (the determinism contract in docs/ARCHITECTURE.md).
#pragma once

#include <algorithm>
#include <deque>

#include "host/command.h"

namespace rdsim::host {

class FlashTimeline {
 public:
  /// Where one scheduled unit of work landed on the timeline.
  struct Slot {
    double start_s = 0.0;       ///< When the unit began the work.
    double complete_s = 0.0;    ///< start + busy + stall.
    double bg_overlap_s = 0.0;  ///< Queue-wait overlap with background
                                ///< reservations (caller adds it to the
                                ///< command's attributed stall).
  };

  /// End of the last scheduled work.
  double free_s() const { return free_s_; }

  /// Schedules work arriving at `submit_s`: starts at max(submit_s,
  /// free_s()), occupies busy + stall seconds, and books the stall
  /// portion as a background reservation (it sits after the command's
  /// own data movement, where followers wait on it). Windows wholly
  /// before `submit_s` are pruned — submit stamps are non-decreasing in
  /// every rdsim driver, so no later command can still overlap them (for
  /// a non-monotone hand-built stream the pruning under-attributes,
  /// never over-attributes).
  Slot schedule(double submit_s, const ServiceCost& cost) {
    Slot slot;
    slot.start_s = std::max(submit_s, free_s_);
    while (!bg_windows_.empty() && bg_windows_.front().until_s <= submit_s)
      bg_windows_.pop_front();
    for (const BgWindow& w : bg_windows_) {
      if (w.from_s >= slot.start_s) break;
      slot.bg_overlap_s +=
          std::max(0.0, std::min(slot.start_s, w.until_s) -
                            std::max(submit_s, w.from_s));
    }
    slot.complete_s = slot.start_s + cost.busy_s + cost.stall_s;
    free_s_ = slot.complete_s;
    if (cost.stall_s > 0.0)
      reserve(slot.start_s + cost.busy_s, slot.complete_s);
    return slot;
  }

  /// Reserves the next `busy_s` seconds for background work (nightly
  /// maintenance): the flash is busy from its current free time.
  void reserve_next(double busy_s) {
    const double from = free_s_;
    free_s_ += busy_s;
    reserve(from, free_s_);
  }

  /// Raises the free time to at least `t` without reserving a window —
  /// the cross-shard flush barrier: after a flush, no shard may start
  /// new work before the barrier completed on every shard.
  void barrier(double t) { free_s_ = std::max(free_s_, t); }

 private:
  /// A background reservation [from_s, until_s); kept oldest first and
  /// disjoint, merging with the newest window when they touch.
  struct BgWindow {
    double from_s;
    double until_s;
  };

  void reserve(double from_s, double until_s) {
    if (!bg_windows_.empty() && from_s <= bg_windows_.back().until_s) {
      bg_windows_.back().until_s =
          std::max(bg_windows_.back().until_s, until_s);
    } else {
      bg_windows_.push_back({from_s, until_s});
    }
  }

  double free_s_ = 0.0;
  std::deque<BgWindow> bg_windows_;
};

}  // namespace rdsim::host
