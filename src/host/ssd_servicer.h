// rdsim/host/ssd_servicer.h
//
// SsdServicer: the analytic implementation of the host::Servicer shard
// slot — one ssd::Ssd (FTL + closed-form RBER + the paper's maintenance
// loop) behind the shard interface, so host::ShardedDevice stripes the
// logical page space RAID-0 over N independent analytic drives exactly
// as it stripes over N Monte Carlo chips. Each shard runs its own FTL,
// garbage collection, refresh, and Vpass tuning over its slice of the
// space; the nightly maintenance's flash busy seconds are returned so
// the device reserves the shard's timeline for them, the same contract
// SerialDevice applies to the single-drive SsdDevice.
//
// A one-shard sharded analytic drive is therefore the serial SsdDevice
// by construction: the de-striped local command is the global command
// verbatim and ssd::Ssd::service performs the identical page loop —
// tests/test_sharded_analytic.cc pins the completion logs byte-for-byte.
#pragma once

#include <cstdint>

#include "host/servicer.h"
#include "ssd/ssd.h"

namespace rdsim::host {

class SsdServicer : public Servicer {
 public:
  SsdServicer(const ssd::SsdConfig& config,
              const flash::FlashModelParams& params, std::uint64_t seed)
      : ssd_(config, params, seed) {}

  ssd::Ssd& ssd() { return ssd_; }
  const ssd::Ssd& ssd() const { return ssd_; }

  std::uint64_t logical_pages() const override {
    return ssd_.ftl().config().logical_pages();
  }

  ServiceCost service(const Command& command) override {
    return ssd_.service(command);
  }

  double end_of_day() override { return ssd_.end_of_day(); }

  std::uint64_t pages_read() const override {
    return ssd_.ftl().stats().host_reads;
  }
  std::uint64_t pages_written() const override {
    return ssd_.ftl().stats().host_writes;
  }
  /// FTL erases (GC + refresh + reclaim) — the analytic counterpart of
  /// the MC chip's log-structured turnover count.
  std::uint64_t block_rewrites() const override {
    const auto& fs = ssd_.ftl().stats();
    return fs.gc_erases + fs.refreshes + fs.reclaims;
  }

  /// Error-path attribution mapped from the SSD/FTL counters: the
  /// analytic drive has no escalation ladder (closed-form ECC decodes or
  /// fails outright), so the retry/RDR fields stay zero.
  ErrorStats error_stats() const override {
    const auto& fs = ssd_.ftl().stats();
    const auto& ss = ssd_.stats();
    ErrorStats e;
    e.reads_ok = fs.host_reads - ss.host_uncorrectable_pages;
    e.reads_uncorrectable = ss.host_uncorrectable_pages;
    e.writes_failed = ss.host_failed_writes;
    e.writes_rejected_read_only = ss.host_readonly_writes;
    return e;
  }

 private:
  ssd::Ssd ssd_;
};

}  // namespace rdsim::host
