// rdsim/host/servicer.h
//
// Servicer: the backend slot of host::ShardedDevice. One Servicer is one
// shard's drive engine — it performs the data movement of commands whose
// lpn ranges are local to the shard and reports each command's
// ServiceCost; the device owns scheduling (one FlashTimeline per shard),
// stall attribution, and the deterministic merge of the per-shard
// completion records.
//
// Two implementations exist: ChipServicer (chip_servicer.h), the
// Monte-Carlo per-cell engine over one nand::Chip, and SsdServicer
// (ssd_servicer.h), the analytic whole-drive engine over one ssd::Ssd —
// so the same RAID-0 N-way scaling serves both fidelities. The contract
// either must honor:
//
//   * service() iterates the command's pages in ascending range order,
//     wrapping each page modulo logical_pages() (the caller de-stripes a
//     global command into one contiguous local range per shard, so a
//     one-shard device receives the global command verbatim and is the
//     serial single-backend device by construction).
//   * service() is deterministic: simulated clocks and seeded RNG only,
//     so the merged completion log stays a pure function of the
//     submission stream for any worker count.
//   * end_of_day() runs the backend's nightly maintenance and returns
//     the flash busy seconds it consumed; the device reserves the
//     shard's timeline for them (0.0 = maintenance costs no flash time,
//     e.g. pure retention aging on a raw chip).
#pragma once

#include <cstdint>

#include "host/command.h"

namespace rdsim::nand {
class Chip;
}  // namespace rdsim::nand

namespace rdsim::host {

/// Per-step attribution of the read error path and the write failure
/// path, kept by each backend and mirrored per shard by ShardedDevice.
/// Read counters partition the serviced page reads by how far down the
/// escalation ladder each one had to go; the seconds fields are the flash
/// busy time the recovery steps charged to the timeline (so recovery cost
/// is visible both in the tail latencies and here, attributed).
struct ErrorStats {
  std::uint64_t reads_ok = 0;               ///< Zero raw bit errors.
  std::uint64_t reads_corrected = 0;        ///< ECC decoded the sense.
  std::uint64_t reads_retry_recovered = 0;  ///< Read-retry re-read decoded.
  std::uint64_t reads_rdr_recovered = 0;    ///< §4 RDR decoded.
  std::uint64_t reads_uncorrectable = 0;    ///< Whole ladder failed.
  std::uint64_t retry_attempts = 0;         ///< Retry scans performed.
  std::uint64_t rdr_attempts = 0;           ///< RDR invocations.
  std::uint64_t writes_failed = 0;          ///< Programs that lost data.
  std::uint64_t writes_rejected_read_only = 0;  ///< Rejected: read-only.
  double retry_seconds = 0.0;  ///< Flash busy time charged to retry scans.
  double rdr_seconds = 0.0;    ///< Flash busy time charged to RDR.

  ErrorStats& operator+=(const ErrorStats& o) {
    reads_ok += o.reads_ok;
    reads_corrected += o.reads_corrected;
    reads_retry_recovered += o.reads_retry_recovered;
    reads_rdr_recovered += o.reads_rdr_recovered;
    reads_uncorrectable += o.reads_uncorrectable;
    retry_attempts += o.retry_attempts;
    rdr_attempts += o.rdr_attempts;
    writes_failed += o.writes_failed;
    writes_rejected_read_only += o.writes_rejected_read_only;
    retry_seconds += o.retry_seconds;
    rdr_seconds += o.rdr_seconds;
    return *this;
  }
};

class Servicer {
 public:
  virtual ~Servicer() = default;

  /// Logical pages this shard exports.
  virtual std::uint64_t logical_pages() const = 0;

  /// Performs the data movement of one command local to this shard (lpn
  /// wrapped modulo logical_pages(), pages iterated in order) and returns
  /// its flash cost. Flush never reaches a Servicer — barrier semantics
  /// live in the device layer.
  virtual ServiceCost service(const Command& command) = 0;

  /// Nightly maintenance; returns the flash busy seconds it consumed so
  /// the device can reserve the shard's timeline.
  virtual double end_of_day() = 0;

  // Observability counters for per-shard attribution rows. Semantics per
  // backend: on the MC chip, read_bit_errors counts raw sensed bit errors
  // and block_rewrites counts log-structured turnover erases; on the
  // analytic drive, read_bit_errors is 0 (errors are closed-form rates,
  // not sensed bits) and block_rewrites counts FTL erases (GC + refresh +
  // reclaim).
  virtual std::uint64_t pages_read() const = 0;
  virtual std::uint64_t pages_written() const = 0;
  virtual std::uint64_t read_bit_errors() const { return 0; }
  virtual std::uint64_t block_rewrites() const { return 0; }

  /// Error-path attribution (ladder step counts, recovery seconds, write
  /// failures). Backends without an error path report all-zero.
  virtual ErrorStats error_stats() const { return {}; }

  /// The underlying Monte Carlo chip for characterization-level setup
  /// (pre-wear, retention aging) — nullptr on backends without one.
  virtual nand::Chip* mc_chip() { return nullptr; }
};

}  // namespace rdsim::host
