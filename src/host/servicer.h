// rdsim/host/servicer.h
//
// Servicer: the backend slot of host::ShardedDevice. One Servicer is one
// shard's drive engine — it performs the data movement of commands whose
// lpn ranges are local to the shard and reports each command's
// ServiceCost; the device owns scheduling (one FlashTimeline per shard),
// stall attribution, and the deterministic merge of the per-shard
// completion records.
//
// Two implementations exist: ChipServicer (chip_servicer.h), the
// Monte-Carlo per-cell engine over one nand::Chip, and SsdServicer
// (ssd_servicer.h), the analytic whole-drive engine over one ssd::Ssd —
// so the same RAID-0 N-way scaling serves both fidelities. The contract
// either must honor:
//
//   * service() iterates the command's pages in ascending range order,
//     wrapping each page modulo logical_pages() (the caller de-stripes a
//     global command into one contiguous local range per shard, so a
//     one-shard device receives the global command verbatim and is the
//     serial single-backend device by construction).
//   * service() is deterministic: simulated clocks and seeded RNG only,
//     so the merged completion log stays a pure function of the
//     submission stream for any worker count.
//   * end_of_day() runs the backend's nightly maintenance and returns
//     the flash busy seconds it consumed; the device reserves the
//     shard's timeline for them (0.0 = maintenance costs no flash time,
//     e.g. pure retention aging on a raw chip).
#pragma once

#include <cstdint>

#include "host/command.h"

namespace rdsim::nand {
class Chip;
}  // namespace rdsim::nand

namespace rdsim::host {

class Servicer {
 public:
  virtual ~Servicer() = default;

  /// Logical pages this shard exports.
  virtual std::uint64_t logical_pages() const = 0;

  /// Performs the data movement of one command local to this shard (lpn
  /// wrapped modulo logical_pages(), pages iterated in order) and returns
  /// its flash cost. Flush never reaches a Servicer — barrier semantics
  /// live in the device layer.
  virtual ServiceCost service(const Command& command) = 0;

  /// Nightly maintenance; returns the flash busy seconds it consumed so
  /// the device can reserve the shard's timeline.
  virtual double end_of_day() = 0;

  // Observability counters for per-shard attribution rows. Semantics per
  // backend: on the MC chip, read_bit_errors counts raw sensed bit errors
  // and block_rewrites counts log-structured turnover erases; on the
  // analytic drive, read_bit_errors is 0 (errors are closed-form rates,
  // not sensed bits) and block_rewrites counts FTL erases (GC + refresh +
  // reclaim).
  virtual std::uint64_t pages_read() const = 0;
  virtual std::uint64_t pages_written() const = 0;
  virtual std::uint64_t read_bit_errors() const { return 0; }
  virtual std::uint64_t block_rewrites() const { return 0; }

  /// The underlying Monte Carlo chip for characterization-level setup
  /// (pre-wear, retention aging) — nullptr on backends without one.
  virtual nand::Chip* mc_chip() { return nullptr; }
};

}  // namespace rdsim::host
