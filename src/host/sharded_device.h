// rdsim/host/sharded_device.h
//
// host::ShardedDevice: a queued-device backend that stripes the logical
// page space across N backend shards (one host::Servicer + one
// FlashTimeline per shard) and services the shards concurrently on a
// common/thread_pool.h ThreadPool — the drive-scale counterpart of the
// serial single-backend devices, and the host-layer instantiation of the
// same determinism contract sim::ExperimentRunner gives the experiments.
// The shard slot is the Servicer interface (servicer.h): Monte Carlo
// chips (ChipServicer) and analytic drives (SsdServicer) get the same
// RAID-0 N-way scaling.
//
// Striping. Global lpn L (wrapped modulo logical_pages()) lives on shard
// L % shards at shard-local lpn L / shards — RAID-0 page striping, so a
// sequential multi-page command fans its pages out across shards and hot
// ranges spread evenly. The pages of one command landing on one shard
// are a single contiguous run in that shard's local space (consecutive
// matching global pages differ by `shards`, i.e. by one local page), so
// the device hands each shard exactly one de-striped local sub-command;
// within its shard a page maps exactly like the corresponding serial
// device (for a chip: block = local lpn / pages_per_block, LSB/MSB
// interleaved along the wordlines; see chip_servicer.h).
//
// Scheduling. Each shard owns an independent flash timeline: a command's
// per-shard portion starts at max(submit time, that shard's free time)
// and the shards never wait for each other — except at a flush, which is
// a cross-shard barrier (it completes when every shard finished all
// earlier work, and every shard's timeline advances to that point). A
// command's completion record combines its per-shard slots: service
// start is the earliest shard start, completion the latest shard
// completion, and stall the sum of the per-shard attributed stalls
// (which is also how the per-shard ledgers sum to the single-chip value
// at shards = 1).
//
// Determinism. Shard assignment is a pure function of the lpn, each
// shard services its sub-stream in global submission order against its
// own timeline, and the per-shard completion records are merged into one
// log by a stable sort keyed on (complete_time, submit order). Worker
// threads only decide *where* a shard's (single-threaded) work runs, so
// the merged log is byte-identical for any worker count. Because
// per-shard completion times are not monotone in submission order, the
// log position of a record is only final once no future command can
// complete earlier; poll() therefore withholds records that complete
// after the newest submit time seen (a later submission could still
// complete before them — submit stamps are non-decreasing, so anything
// at or before that watermark is safe) and, under a reordering
// arbitration policy, records that a still-queued command could still
// precede (bounded below by the earliest queued submit time), while
// drain() delivers everything. Polling cadences that end in one drain
// all observe the identical log (tests/test_sharded_device.cc and
// tests/test_arbitration.cc pin this, together with worker-count
// byte-identity).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/thread_pool.h"
#include "flash/params.h"
#include "host/device.h"
#include "host/servicer.h"
#include "nand/geometry.h"

namespace rdsim::host {

class ShardedDevice : public Device {
 public:
  /// Generic form: one Servicer per shard (all exporting the same local
  /// page count), serviced on a `workers`-wide pool; results never
  /// depend on the worker count.
  ShardedDevice(std::vector<std::unique_ptr<Servicer>> shards,
                int workers = 1, std::uint32_t queue_count = 1);

  /// Monte-Carlo convenience form: `shard_geometry` is the geometry of
  /// EACH shard's chip (the device exports shards * blocks *
  /// pages_per_block logical pages), shard s's chip seeded with
  /// shard_seed(seed, s).
  ShardedDevice(const nand::Geometry& shard_geometry,
                const flash::FlashModelParams& params, std::uint64_t seed,
                std::uint32_t shards, int workers = 1,
                std::uint32_t queue_count = 1,
                const LatencyParams& latency = LatencyParams{});

  std::uint32_t shard_count() const {
    return static_cast<std::uint32_t>(shards_.size());
  }
  int worker_count() const { return pool_.thread_count(); }

  std::uint64_t logical_pages() const override {
    return shard_count() * shards_.front().servicer->logical_pages();
  }

  /// Which shard owns global page `lpn`, and its address there.
  std::uint32_t shard_of(std::uint64_t lpn) const {
    return static_cast<std::uint32_t>(lpn % shard_count());
  }
  std::uint64_t local_lpn(std::uint64_t lpn) const {
    return lpn / shard_count();
  }

  /// The chip seed shard `shard` derives from the device seed — exposed
  /// so tests can build the equivalent single-chip device: a one-shard
  /// ShardedDevice is a McChipDevice with shard_seed(seed, 0).
  static std::uint64_t shard_seed(std::uint64_t seed, std::uint32_t shard);

  /// Shard `shard`'s backend engine, for backend-specific setup and
  /// statistics (tests and the device factory downcast to the concrete
  /// Servicer they constructed).
  Servicer& shard_servicer(std::uint32_t shard) {
    return *shards_[shard].servicer;
  }
  const Servicer& shard_servicer(std::uint32_t shard) const {
    return *shards_[shard].servicer;
  }

  /// Shard `shard`'s chip, for characterization-level setup (pre-wear,
  /// retention aging) between queued operations. Monte-Carlo shards
  /// only — analytic shards have no chip.
  nand::Chip& shard_chip(std::uint32_t shard) {
    return *shards_[shard].servicer->mc_chip();
  }

  /// Per-shard attributed stall ledger: every stall second a completion
  /// carries is booked to the shard that caused it, so background
  /// interference can be localized to a chip. Sums to the single-chip
  /// stall total at shards = 1, and is cleared together with the
  /// aggregate statistics by reset_stats().
  double shard_stall_seconds(std::uint32_t shard) const {
    return shards_[shard].stall_seconds;
  }

  /// Clears the aggregate statistics and the per-shard stall ledgers in
  /// the same stroke, preserving their sums-to-total invariant across a
  /// measurement-window reset (e.g. after warm_fill).
  void reset_stats() override;
  std::uint64_t shard_pages_read(std::uint32_t shard) const {
    return shards_[shard].servicer->pages_read();
  }
  std::uint64_t shard_read_bit_errors(std::uint32_t shard) const {
    return shards_[shard].servicer->read_bit_errors();
  }
  /// Shard `shard`'s error-path attribution (ladder step counts,
  /// recovery seconds, write failures).
  ErrorStats shard_error_stats(std::uint32_t shard) const {
    return shards_[shard].servicer->error_stats();
  }
  /// Whole-device error-path attribution (sum over shards).
  ErrorStats error_stats() const;

  /// Whole-device totals (sums over shards).
  std::uint64_t read_bit_errors() const;
  std::uint64_t pages_read() const;
  std::uint64_t pages_written() const;
  std::uint64_t block_rewrites() const;

  double now_s() const override;

 protected:
  void pump(bool force) override;
  void run_end_of_day() override;
  void release_ready(bool drain_all) override;

 private:
  struct Shard {
    std::unique_ptr<Servicer> servicer;
    FlashTimeline timeline;
    double stall_seconds = 0.0;
  };

  /// One command's landing on one shard.
  struct SubResult {
    double start_s = 0.0;
    double complete_s = 0.0;
    double stall_s = 0.0;
    Status status = Status::kOk;
    std::uint32_t error_pages = 0;
    bool present = false;
  };

  /// Services pending[begin, end) — a flush-free run — across the shards
  /// on the pool, then merges the per-shard slots into one Completion per
  /// command (appended to `out` in submission order).
  void service_segment(const std::vector<Submitted>& pending,
                       std::size_t begin, std::size_t end,
                       std::vector<Completion>* out);

  /// Cross-shard barrier: completes when every shard finished all earlier
  /// work; every shard's timeline advances to the barrier.
  Completion service_flush(const Submitted& sub);

  std::vector<Shard> shards_;
  ThreadPool pool_;
  /// Serviced completions not yet delivered, sorted by
  /// (complete_time, id) — the deterministic merged-log order. Records
  /// are released once no future submission (submit stamps are
  /// non-decreasing, so bounded below by max_submit_seen_s()) and no
  /// still-queued command (bounded below by min_pending_submit_s())
  /// could complete earlier.
  std::vector<Completion> held_;
  /// Per-segment scratch: sub_results_[cmd * shards + shard].
  std::vector<SubResult> sub_results_;
};

}  // namespace rdsim::host
