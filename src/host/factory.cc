#include "host/factory.h"

#include <utility>
#include <vector>

#include "flash/params.h"
#include "host/mc_chip_device.h"
#include "host/sharded_device.h"
#include "host/ssd_device.h"
#include "host/ssd_servicer.h"
#include "nand/chip.h"

namespace rdsim::host {

flash::FlashModelParams flash_params_from_spec(const cfg::DriveSpec& spec) {
  return spec.flash_model == cfg::FlashModel::k2ynm
             ? flash::FlashModelParams::default_2ynm()
             : flash::FlashModelParams::early_3d_nand();
}

ssd::SsdConfig ssd_config_from_spec(const cfg::DriveSpec& spec) {
  ssd::SsdConfig config;
  config.ftl.blocks = spec.blocks;
  config.ftl.pages_per_block = spec.pages_per_block;
  config.ftl.overprovision = spec.overprovision;
  config.ftl.gc_free_target = spec.gc_free_target;
  config.ftl.refresh_interval_days = spec.refresh_interval_days;
  config.ftl.read_reclaim_threshold = spec.read_reclaim_threshold;
  config.ftl.spare_blocks = spec.spare_blocks;
  config.ftl.program_fail_prob = spec.faults.program_fail_prob;
  config.ftl.erase_fail_prob = spec.faults.erase_fail_prob;
  config.vpass_tuning = spec.vpass_tuning;
  return config;
}

namespace {

flash::FlashModelParams flash_params(const cfg::DriveSpec& spec) {
  return flash_params_from_spec(spec);
}

ssd::SsdConfig ssd_config(const cfg::DriveSpec& spec) {
  return ssd_config_from_spec(spec);
}

/// The MC fault slice for one shard: latent pages everywhere, the die
/// kill only on the targeted shard (a serial chip is shard 0).
ChipFaults chip_faults(const cfg::DriveSpec& spec, std::uint32_t shard) {
  ChipFaults faults;
  faults.latent_page_prob = spec.faults.latent_page_prob;
  if (spec.faults.die_kill_day >= 0.0 &&
      spec.faults.die_kill_shard == shard)
    faults.die_kill_day = spec.faults.die_kill_day;
  return faults;
}

nand::Geometry chip_geometry(const cfg::DriveSpec& spec) {
  nand::Geometry geometry;
  geometry.wordlines_per_block = spec.wordlines_per_block;
  geometry.bitlines = spec.bitlines;
  geometry.blocks = spec.blocks;
  return geometry;
}

/// Characterization pre-aging, in the order fig_qos_mc established:
/// heavy P/E wear then fresh random data, block by block
/// (O(bookkeeping) under lazy cell materialization).
void pre_wear(nand::Chip& chip, std::uint64_t pe) {
  for (std::size_t b = 0; b < chip.block_count(); ++b) {
    chip.block(b).erase();
    chip.block(b).add_wear(static_cast<std::uint32_t>(pe));
    chip.block(b).program_random();
  }
}

}  // namespace

std::unique_ptr<Device> make_device(const cfg::DriveSpec& spec,
                                    std::uint64_t seed, int workers) {
  const flash::FlashModelParams params = flash_params(spec);
  switch (spec.backend) {
    case cfg::Backend::kAnalytic:
      return std::make_unique<SsdDevice>(ssd_config(spec), params, seed,
                                         spec.queue_count);
    case cfg::Backend::kMcChip: {
      auto device = std::make_unique<McChipDevice>(
          chip_geometry(spec), params, seed, spec.queue_count,
          LatencyParams{}, ChipErrorPath{}, chip_faults(spec, 0));
      if (spec.pre_wear_pe > 0) pre_wear(device->chip(), spec.pre_wear_pe);
      return device;
    }
    case cfg::Backend::kShardedMc: {
      // Explicit per-shard construction (same seeds and arguments as the
      // MC convenience ctor, so it stays bit-identical to it) to route
      // each shard its own fault slice — the die kill targets one shard.
      std::vector<std::unique_ptr<Servicer>> shards;
      shards.reserve(spec.shards);
      for (std::uint32_t s = 0; s < spec.shards; ++s)
        shards.push_back(std::make_unique<ChipServicer>(
            chip_geometry(spec), params, ShardedDevice::shard_seed(seed, s),
            LatencyParams{}, ChipErrorPath{}, chip_faults(spec, s)));
      auto device = std::make_unique<ShardedDevice>(std::move(shards),
                                                    workers,
                                                    spec.queue_count);
      if (spec.pre_wear_pe > 0)
        for (std::uint32_t s = 0; s < device->shard_count(); ++s)
          pre_wear(device->shard_chip(s), spec.pre_wear_pe);
      return device;
    }
    case cfg::Backend::kShardedAnalytic: {
      std::vector<std::unique_ptr<Servicer>> shards;
      shards.reserve(spec.shards);
      for (std::uint32_t s = 0; s < spec.shards; ++s)
        shards.push_back(std::make_unique<SsdServicer>(
            ssd_config(spec), params, ShardedDevice::shard_seed(seed, s)));
      return std::make_unique<ShardedDevice>(std::move(shards), workers,
                                             spec.queue_count);
    }
  }
  return nullptr;
}

}  // namespace rdsim::host
