#include "host/mc_chip_device.h"

namespace rdsim::host {

McChipDevice::McChipDevice(const nand::Geometry& geometry,
                           const flash::FlashModelParams& params,
                           std::uint64_t seed, std::uint32_t queue_count,
                           const LatencyParams& latency)
    : SerialDevice(queue_count),
      servicer_(geometry, params, seed, latency) {}

ServiceCost McChipDevice::do_service(const Command& command) {
  ServiceCost cost;
  const std::uint64_t logical = logical_pages();
  for (std::uint32_t i = 0; i < command.pages; ++i) {
    const ServiceCost page =
        servicer_.service_page(command.kind, (command.lpn + i) % logical);
    cost.busy_s += page.busy_s;
    cost.stall_s += page.stall_s;
  }
  return cost;
}

double McChipDevice::do_end_of_day() {
  servicer_.advance_day();
  return 0.0;
}

}  // namespace rdsim::host
