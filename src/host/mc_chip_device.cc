#include "host/mc_chip_device.h"

namespace rdsim::host {

McChipDevice::McChipDevice(const nand::Geometry& geometry,
                           const flash::FlashModelParams& params,
                           std::uint64_t seed, std::uint32_t queue_count,
                           const LatencyParams& latency,
                           const ChipErrorPath& error_path,
                           const ChipFaults& faults)
    : SerialDevice(queue_count),
      servicer_(geometry, params, seed, latency, error_path, faults) {}

ServiceCost McChipDevice::do_service(const Command& command) {
  return servicer_.service(command);
}

double McChipDevice::do_end_of_day() { return servicer_.end_of_day(); }

}  // namespace rdsim::host
