// rdsim/host/stats.h
//
// CompletionStats aggregates the completion stream of a host::Device:
// per-kind command/page counts, throughput over the simulated makespan,
// and latency mean / p50 / p99 / p999 via common::Histogram — the
// system-level numbers the QoS experiments report. Every completion is
// additionally sliced by its tenant id, so multi-tenant devices report
// per-tenant IOPS, read-latency quantiles, stall share, and error-status
// counts alongside the global aggregates (the tenant_* accessors; the
// per-tenant rows always sum back to the global log — the conservation
// invariant tests/test_arbitration.cc enforces).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/histogram.h"
#include "host/command.h"

namespace rdsim::host {

class CompletionStats {
 public:
  /// Latency histograms span [0, max_latency_s) at max_latency_s / bins
  /// resolution (default 250 ms at 5 us); samples beyond the range clamp
  /// into the last bin, so a saturated tail reports the histogram
  /// ceiling — never silently less (max_latency_s() stays exact).
  explicit CompletionStats(double max_latency_s = 0.25,
                           std::size_t bins = 50000);

  void add(const Completion& completion);

  std::uint64_t commands() const { return commands_; }
  std::uint64_t commands(CommandKind kind) const { return at(kind).count; }
  std::uint64_t pages(CommandKind kind) const { return at(kind).pages; }

  /// Commands that completed with `status` (worst per-page outcome).
  std::uint64_t commands(Status status) const {
    return status_counts_[static_cast<std::size_t>(status)];
  }
  /// Total pages reported uncorrectable or lost across all completions.
  std::uint64_t error_pages() const { return error_pages_; }

  /// Host-observed uncorrectable bit error rate: uncorrectable read pages
  /// (each counted as `bits_per_page` suspect bits) over all bits read.
  /// 0 when nothing was read.
  double uber(double bits_per_page) const;

  /// Mean latency of `kind` commands (exact, not binned). 0 when none.
  double mean_latency_s(CommandKind kind) const;
  /// Largest observed latency of `kind` commands (exact).
  double max_latency_s(CommandKind kind) const { return at(kind).max_s; }
  /// Binned latency quantile (see Histogram::quantile) of `kind` commands.
  double latency_quantile_s(CommandKind kind, double q) const;

  /// Total background-induced stall time attributed across completions.
  double stall_seconds() const { return stall_seconds_; }

  /// Simulated makespan: first submission to last completion.
  double span_s() const;
  /// Commands per simulated second over the makespan (0 if degenerate).
  double iops() const;
  /// Read/written/trimmed pages per simulated second over the makespan.
  double page_rate() const;

  // --- Per-tenant slices ---------------------------------------------------
  // Grown lazily to the largest tenant id observed + 1; every accessor
  // returns zero for a tenant never seen, so callers can iterate the
  // device's configured tenant count without guarding.

  /// Tenant ids observed in the completion stream (max id + 1; 0 when
  /// nothing was recorded).
  std::uint32_t tenants_seen() const {
    return static_cast<std::uint32_t>(tenants_.size());
  }

  std::uint64_t tenant_commands(std::uint32_t tenant) const;
  std::uint64_t tenant_commands(std::uint32_t tenant, CommandKind kind) const;
  std::uint64_t tenant_commands(std::uint32_t tenant, Status status) const;
  std::uint64_t tenant_pages(std::uint32_t tenant) const;
  std::uint64_t tenant_read_pages(std::uint32_t tenant) const;
  std::uint64_t tenant_error_pages(std::uint32_t tenant) const;
  std::uint64_t tenant_read_error_pages(std::uint32_t tenant) const;

  /// Tenant `tenant`'s host-observed uncorrectable bit error rate over
  /// its own reads (same convention as uber()).
  double tenant_uber(std::uint32_t tenant, double bits_per_page) const;

  /// Background-induced stall attributed to tenant `tenant`'s commands.
  double tenant_stall_seconds(std::uint32_t tenant) const;

  /// Tenant read-latency shape: mean (exact), max (exact), and binned
  /// quantile over the tenant's read completions only.
  double tenant_mean_read_latency_s(std::uint32_t tenant) const;
  double tenant_max_read_latency_s(std::uint32_t tenant) const;
  double tenant_read_latency_quantile_s(std::uint32_t tenant,
                                        double q) const;

  /// Tenant makespan (its first submission to its last completion) and
  /// commands per simulated second over it (0 if degenerate).
  double tenant_span_s(std::uint32_t tenant) const;
  double tenant_iops(std::uint32_t tenant) const;

 private:
  struct KindAgg {
    std::uint64_t count = 0;
    std::uint64_t pages = 0;
    double latency_sum_s = 0.0;
    double max_s = 0.0;
    Histogram latency;
    explicit KindAgg(double max_latency_s, std::size_t bins)
        : latency(0.0, max_latency_s, bins) {}
  };
  /// One tenant's slice of the stream. Only reads get a latency
  /// histogram — the per-tenant tail the QoS experiments report is read
  /// latency; writes and trims keep counts and stall only.
  struct TenantAgg {
    std::array<std::uint64_t, 4> kind_counts{};
    std::array<std::uint64_t, kStatusCount> status_counts{};
    std::uint64_t commands = 0;
    std::uint64_t pages = 0;
    std::uint64_t read_pages = 0;
    std::uint64_t error_pages = 0;
    std::uint64_t read_error_pages = 0;
    double stall_s = 0.0;
    double read_latency_sum_s = 0.0;
    double read_max_s = 0.0;
    Histogram read_latency;
    double first_submit_s = 0.0;
    double last_complete_s = 0.0;
    TenantAgg(double max_latency_s, std::size_t bins)
        : read_latency(0.0, max_latency_s, bins) {}
  };
  const KindAgg& at(CommandKind kind) const {
    return kinds_[static_cast<std::size_t>(kind)];
  }
  KindAgg& at(CommandKind kind) {
    return kinds_[static_cast<std::size_t>(kind)];
  }
  /// nullptr when the tenant was never observed.
  const TenantAgg* tenant(std::uint32_t tenant) const {
    return tenant < tenants_.size() ? &tenants_[tenant] : nullptr;
  }

  std::array<KindAgg, 4> kinds_;
  std::array<std::uint64_t, kStatusCount> status_counts_{};
  std::vector<TenantAgg> tenants_;
  std::uint64_t commands_ = 0;
  std::uint64_t total_pages_ = 0;
  std::uint64_t error_pages_ = 0;
  std::uint64_t read_error_pages_ = 0;
  double stall_seconds_ = 0.0;
  double first_submit_s_ = 0.0;
  double last_complete_s_ = 0.0;
  double hist_max_latency_s_;  ///< Histogram shape for lazily-grown
  std::size_t hist_bins_;      ///< per-tenant slices.
};

}  // namespace rdsim::host
