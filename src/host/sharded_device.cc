#include "host/sharded_device.h"

#include <algorithm>
#include <limits>

#include "common/rng.h"
#include "host/chip_servicer.h"

namespace rdsim::host {

ShardedDevice::ShardedDevice(std::vector<std::unique_ptr<Servicer>> shards,
                             int workers, std::uint32_t queue_count)
    : Device(queue_count), pool_(workers) {
  shards_.resize(shards.size());
  for (std::size_t s = 0; s < shards.size(); ++s)
    shards_[s].servicer = std::move(shards[s]);
}

ShardedDevice::ShardedDevice(const nand::Geometry& shard_geometry,
                             const flash::FlashModelParams& params,
                             std::uint64_t seed, std::uint32_t shards,
                             int workers, std::uint32_t queue_count,
                             const LatencyParams& latency)
    : Device(queue_count), pool_(workers) {
  shards_.resize(std::max<std::uint32_t>(1, shards));
  // Chip construction is bookkeeping-only under lazy materialization, so
  // building the shards serially costs nothing worth parallelizing.
  for (std::uint32_t s = 0; s < shards_.size(); ++s)
    shards_[s].servicer = std::make_unique<ChipServicer>(
        shard_geometry, params, shard_seed(seed, s), latency);
}

std::uint64_t ShardedDevice::shard_seed(std::uint64_t seed,
                                        std::uint32_t shard) {
  // One decorrelated 64-bit chip seed per shard, a pure function of
  // (device seed, shard index) — the same derivation discipline as the
  // experiment shards' Rng::stream(seed, i).
  return Rng::stream(seed, shard).next();
}

std::uint64_t ShardedDevice::read_bit_errors() const {
  std::uint64_t n = 0;
  for (const Shard& s : shards_) n += s.servicer->read_bit_errors();
  return n;
}

std::uint64_t ShardedDevice::pages_read() const {
  std::uint64_t n = 0;
  for (const Shard& s : shards_) n += s.servicer->pages_read();
  return n;
}

std::uint64_t ShardedDevice::pages_written() const {
  std::uint64_t n = 0;
  for (const Shard& s : shards_) n += s.servicer->pages_written();
  return n;
}

std::uint64_t ShardedDevice::block_rewrites() const {
  std::uint64_t n = 0;
  for (const Shard& s : shards_) n += s.servicer->block_rewrites();
  return n;
}

ErrorStats ShardedDevice::error_stats() const {
  ErrorStats total;
  for (const Shard& s : shards_) total += s.servicer->error_stats();
  return total;
}

double ShardedDevice::now_s() const {
  double t = 0.0;
  for (const Shard& s : shards_) t = std::max(t, s.timeline.free_s());
  return t;
}

void ShardedDevice::pump(bool force) {
  const std::vector<Submitted> pending = take_pending(force);
  if (pending.empty()) return;

  // Service in flush-separated segments: within a segment the shards run
  // concurrently and never wait for each other; each flush is a
  // cross-shard barrier handled on the coordinating thread.
  std::vector<Completion> merged;
  merged.reserve(pending.size());
  std::size_t i = 0;
  while (i < pending.size()) {
    if (pending[i].command.kind == CommandKind::kFlush) {
      merged.push_back(service_flush(pending[i]));
      ++i;
      continue;
    }
    std::size_t j = i;
    while (j < pending.size() &&
           pending[j].command.kind != CommandKind::kFlush)
      ++j;
    service_segment(pending, i, j, &merged);
    i = j;
  }

  for (const Completion& rec : merged) record(rec);
  held_.insert(held_.end(), merged.begin(), merged.end());
  std::sort(held_.begin(), held_.end(), completion_log_order);
}

void ShardedDevice::service_segment(const std::vector<Submitted>& pending,
                                    std::size_t begin, std::size_t end,
                                    std::vector<Completion>* out) {
  const std::size_t n = end - begin;
  const std::uint32_t shard_n = shard_count();
  sub_results_.assign(n * shard_n, SubResult{});
  const std::uint64_t logical = logical_pages();

  pool_.for_each(shard_n, [&](std::size_t s) {
    Shard& shard = shards_[s];
    for (std::size_t k = 0; k < n; ++k) {
      const Command& cmd = pending[begin + k].command;
      ServiceCost cost;
      bool touched = false;
      const std::uint64_t wrapped = cmd.lpn % logical;
      if (cmd.pages == 0) {
        // Degenerate range: schedule a zero-cost record on the owning
        // shard so the command still completes exactly once.
        touched = shard_of(wrapped) == s;
      } else {
        // De-stripe: this shard's pages of the range are global offsets
        // k0, k0 + shard_n, ... — one contiguous run in local space
        // (each step is one local page), so the whole landing is a
        // single local sub-command the servicer wraps internally.
        const std::uint64_t k0 = (s + shard_n - wrapped % shard_n) % shard_n;
        if (k0 < cmd.pages) {
          touched = true;
          Command local = cmd;
          local.lpn = local_lpn((wrapped + k0) % logical);
          local.pages = static_cast<std::uint32_t>(
              (cmd.pages - k0 + shard_n - 1) / shard_n);
          cost = shard.servicer->service(local);
        }
      }
      if (!touched) continue;
      const FlashTimeline::Slot slot =
          shard.timeline.schedule(cmd.submit_time_s, cost);
      SubResult& r = sub_results_[k * shard_n + s];
      r.present = true;
      r.start_s = slot.start_s;
      r.complete_s = slot.complete_s;
      r.stall_s = cost.stall_s + slot.bg_overlap_s;
      r.status = cost.status;
      r.error_pages = cost.error_pages;
      shard.stall_seconds += r.stall_s;
    }
  });

  for (std::size_t k = 0; k < n; ++k) {
    const Submitted& sub = pending[begin + k];
    Completion rec;
    rec.id = sub.id;
    rec.kind = sub.command.kind;
    rec.queue = sub.command.queue;
    rec.tenant = sub.command.tenant;
    rec.lpn = sub.command.lpn;
    rec.pages = sub.command.pages;
    rec.submit_time_s = sub.command.submit_time_s;
    double start = std::numeric_limits<double>::infinity();
    double complete = 0.0;
    double stall = 0.0;
    for (std::uint32_t s = 0; s < shard_n; ++s) {
      const SubResult& r = sub_results_[k * shard_n + s];
      if (!r.present) continue;
      start = std::min(start, r.start_s);
      complete = std::max(complete, r.complete_s);
      stall += r.stall_s;
      rec.status = worst_status(rec.status, r.status);
      rec.error_pages += r.error_pages;
    }
    rec.service_start_s = start;
    rec.complete_time_s = complete;
    rec.stall_s = stall;
    out->push_back(rec);
  }
}

Completion ShardedDevice::service_flush(const Submitted& sub) {
  const Command& cmd = sub.command;
  double barrier = 0.0;
  double stall = 0.0;
  for (Shard& shard : shards_) {
    const FlashTimeline::Slot slot =
        shard.timeline.schedule(cmd.submit_time_s, ServiceCost{});
    barrier = std::max(barrier, slot.start_s);
    stall += slot.bg_overlap_s;
    shard.stall_seconds += slot.bg_overlap_s;
  }
  for (Shard& shard : shards_) shard.timeline.barrier(barrier);

  Completion rec;
  rec.id = sub.id;
  rec.kind = cmd.kind;
  rec.queue = cmd.queue;
  rec.tenant = cmd.tenant;
  rec.lpn = cmd.lpn;
  rec.pages = cmd.pages;
  rec.submit_time_s = cmd.submit_time_s;
  rec.service_start_s = barrier;
  rec.complete_time_s = barrier;
  rec.stall_s = stall;
  return rec;
}

void ShardedDevice::release_ready(bool drain_all) {
  // A held record's log position is final once nothing can still slot in
  // before it: future submissions complete no earlier than the newest
  // submit stamp seen (non-decreasing by the driver contract; a tie goes
  // to the held record's smaller id), and commands a reordering policy
  // left queued complete no earlier than their own submit stamp (strict
  // bound — a queued command carries a smaller id, so it wins a tie).
  const double unserviced_s = has_pending()
                                  ? min_pending_submit_s()
                                  : std::numeric_limits<double>::infinity();
  std::size_t n = 0;
  while (n < held_.size() &&
         (drain_all || (held_[n].complete_time_s <= max_submit_seen_s() &&
                        held_[n].complete_time_s < unserviced_s))) {
    deliver(held_[n]);
    ++n;
  }
  held_.erase(held_.begin(), held_.begin() + static_cast<std::ptrdiff_t>(n));
}

void ShardedDevice::reset_stats() {
  Device::reset_stats();
  for (Shard& shard : shards_) shard.stall_seconds = 0.0;
}

void ShardedDevice::run_end_of_day() {
  // Same contract as SerialDevice::run_end_of_day, per shard: whatever
  // flash busy time the nightly maintenance consumed occupies the next
  // free window of that shard's timeline.
  for (Shard& shard : shards_) {
    const double busy = shard.servicer->end_of_day();
    if (busy > 0.0) shard.timeline.reserve_next(busy);
  }
}

}  // namespace rdsim::host
