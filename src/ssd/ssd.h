// rdsim/ssd/ssd.h
//
// Whole-drive simulator: trace replay through the FTL with per-block
// reliability tracking (P/E wear, data age, read disturb accumulated at
// the block's tuned Vpass) and the paper's daily maintenance loop —
// remap-based refresh, optional read reclaim, and per-block Vpass Tuning
// driven by the real VpassTuningController.
//
// Error rates come from the analytic flash::RberModel; a per-cell Monte
// Carlo model would not scale to a drive. The same controller logic is
// exercised against the Monte Carlo chip in tests and examples.
#pragma once

#include <cstdint>
#include <vector>

#include "core/vpass_tuning.h"
#include "ecc/ecc_model.h"
#include "flash/params.h"
#include "flash/rber_model.h"
#include "ftl/ftl.h"
#include "workload/trace.h"

namespace rdsim::ssd {

/// Flash operation latencies for the drive's time accounting.
struct LatencyParams {
  double read_s = 75e-6;      ///< Page read (tR).
  double program_s = 1.3e-3;  ///< Page program (tProg).
  double erase_s = 3.5e-3;    ///< Block erase (tBERS).
};

struct SsdConfig {
  ftl::FtlConfig ftl;
  ecc::EccConfig ecc = ecc::EccConfig::paper_provisioning();
  bool vpass_tuning = true;        ///< Enable the mitigation mechanism.
  double worst_page_factor = 1.3;  ///< Worst page vs block mean RBER.
  core::VpassTuningOptions tuning;
  LatencyParams latency;
};

struct SsdStats {
  std::uint64_t days = 0;
  std::uint64_t uncorrectable_page_events = 0;  ///< Block-days where the
                                                ///< worst page exceeded the
                                                ///< full ECC capability.
  std::uint64_t tuning_fallbacks = 0;
  double sum_vpass_reduction_pct = 0.0;  ///< Sum over tuned block-days.
  std::uint64_t tuned_block_days = 0;

  // Time accounting (seconds of flash busy time).
  double host_io_seconds = 0.0;       ///< Host reads + writes.
  double background_seconds = 0.0;    ///< GC + refresh + reclaim traffic.
  double tuning_probe_seconds = 0.0;  ///< Vpass Tuning probe reads (the
                                      ///< paper's §4 daily overhead).

  double mean_vpass_reduction_pct() const {
    return tuned_block_days == 0
               ? 0.0
               : sum_vpass_reduction_pct / static_cast<double>(tuned_block_days);
  }
  /// Mean tuning overhead per simulated day, in seconds.
  double tuning_seconds_per_day() const {
    return days == 0 ? 0.0 : tuning_probe_seconds / static_cast<double>(days);
  }
};

class Ssd {
 public:
  Ssd(const SsdConfig& config, const flash::FlashModelParams& params,
      std::uint64_t seed = 1);

  const SsdConfig& config() const { return config_; }
  const ftl::Ftl& ftl() const { return ftl_; }
  ftl::Ftl& ftl_mut() { return ftl_; }
  const SsdStats& stats() const { return stats_; }
  const flash::RberModel& rber_model() const { return model_; }

  /// Submits one request (expands multi-page requests).
  void submit(const workload::IoRequest& request);

  /// Submits a day of requests, then runs the nightly maintenance
  /// (refresh, read reclaim, Vpass tuning, reliability scan).
  void run_day(const std::vector<workload::IoRequest>& day);

  /// Current worst-page RBER of a block (0 for blocks without data).
  double block_worst_rber(std::uint32_t b) const;

  /// Highest worst-page RBER across all blocks with valid data.
  double max_worst_rber() const;

  /// Accumulated disturb RBER of a block (sum over days of slope * reads
  /// at the Vpass in effect that day).
  double block_disturb_rber(std::uint32_t b) const { return disturb_rber_[b]; }

  /// Largest number of reads any block absorbed within one refresh
  /// interval so far (the limiting disturb pressure for endurance).
  std::uint64_t max_reads_per_interval() const {
    return max_reads_per_interval_;
  }

 private:
  void end_of_day();
  /// Detects blocks erased since the last scan and resets their
  /// reliability accumulators.
  void sync_block_epochs();

  SsdConfig config_;
  flash::RberModel model_;
  ecc::EccModel ecc_;
  core::VpassTuningController controller_;
  ftl::Ftl ftl_;

  // Per-block reliability accumulators (parallel to FTL block table).
  std::vector<double> disturb_rber_;
  std::vector<std::uint64_t> reads_snapshot_;  ///< reads at last scan.
  std::vector<std::uint32_t> pe_seen_;         ///< epoch detector.
  std::vector<double> last_refresh_day_;

  std::uint64_t max_reads_per_interval_ = 0;
  // Day-over-day counters for background time accounting.
  std::uint64_t bg_writes_seen_ = 0;
  std::uint64_t erases_seen_ = 0;
  SsdStats stats_;
};

}  // namespace rdsim::ssd
