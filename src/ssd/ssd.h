// rdsim/ssd/ssd.h
//
// Whole-drive simulator: typed host commands serviced through the FTL
// with per-block reliability tracking (P/E wear, data age, read disturb
// accumulated at the block's tuned Vpass) and the paper's daily
// maintenance loop — remap-based refresh, optional read reclaim, and
// per-block Vpass Tuning driven by the real VpassTuningController.
//
// The Ssd consumes host::Commands (read / write / trim; flush is a pure
// queue barrier handled by the host::Device facade) and reports the cost
// of each: flash busy seconds plus any inline-GC stall a write absorbed.
// It is driven through host::SsdDevice, which adds the NVMe-style
// submission/completion queue model on top.
//
// Error rates come from the analytic flash::RberModel; a per-cell Monte
// Carlo model would not scale to a drive. The same controller logic is
// exercised against the Monte Carlo chip via host::McChipDevice.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/vpass_tuning.h"
#include "ecc/ecc_model.h"
#include "flash/params.h"
#include "flash/rber_model.h"
#include "ftl/ftl.h"
#include "host/command.h"

namespace rdsim::ssd {

/// Flash operation latencies (shared vocabulary with the host layer).
using LatencyParams = host::LatencyParams;

struct SsdConfig {
  ftl::FtlConfig ftl;
  ecc::EccConfig ecc = ecc::EccConfig::paper_provisioning();
  bool vpass_tuning = true;        ///< Enable the mitigation mechanism.
  double worst_page_factor = 1.3;  ///< Worst page vs block mean RBER.
  core::VpassTuningOptions tuning;
  LatencyParams latency;
};

struct SsdStats {
  std::uint64_t days = 0;
  std::uint64_t uncorrectable_page_events = 0;  ///< Block-days where the
                                                ///< worst page exceeded the
                                                ///< full ECC capability.
  // Host-visible error-path outcomes (per page).
  std::uint64_t host_uncorrectable_pages = 0;  ///< Reads of blocks past
                                               ///< the ECC capability.
  std::uint64_t host_failed_writes = 0;        ///< Lost to program fails.
  std::uint64_t host_readonly_writes = 0;      ///< Rejected: read-only.
  std::uint64_t tuning_fallbacks = 0;
  double sum_vpass_reduction_pct = 0.0;  ///< Sum over tuned block-days.
  std::uint64_t tuned_block_days = 0;

  // Time accounting (seconds of flash busy time).
  double host_io_seconds = 0.0;       ///< Host reads + writes.
  double background_seconds = 0.0;    ///< GC + refresh + reclaim traffic.
  double tuning_probe_seconds = 0.0;  ///< Vpass Tuning probe reads (the
                                      ///< paper's §4 daily overhead).

  double mean_vpass_reduction_pct() const {
    return tuned_block_days == 0
               ? 0.0
               : sum_vpass_reduction_pct / static_cast<double>(tuned_block_days);
  }
  /// Mean tuning overhead per simulated day, in seconds.
  double tuning_seconds_per_day() const {
    return days == 0 ? 0.0 : tuning_probe_seconds / static_cast<double>(days);
  }
};

class Ssd {
 public:
  Ssd(const SsdConfig& config, const flash::FlashModelParams& params,
      std::uint64_t seed = 1);

  const SsdConfig& config() const { return config_; }
  const ftl::Ftl& ftl() const { return ftl_; }
  const SsdStats& stats() const { return stats_; }
  const flash::RberModel& rber_model() const { return model_; }

  /// Services one typed host command (multi-page ranges wrap the logical
  /// space). Returns the command's flash cost: busy seconds for its own
  /// data movement, plus the inline-GC stall a write triggered.
  host::ServiceCost service(const host::Command& command);

  /// Nightly maintenance: refresh, read reclaim, GC, per-block Vpass
  /// tuning, reliability scan. Returns the flash busy seconds the
  /// maintenance consumed (background copies/erases + tuning probes), so
  /// the device facade can reserve the flash timeline for it.
  double end_of_day();

  /// Current worst-page RBER of a block (0 for blocks without data).
  double block_worst_rber(std::uint32_t b) const;

  /// Highest worst-page RBER across all blocks with valid data.
  double max_worst_rber() const;

  /// Accumulated disturb RBER of a block (sum over days of slope * reads
  /// at the Vpass in effect that day).
  double block_disturb_rber(std::uint32_t b) const { return disturb_rber_[b]; }

  /// Largest number of reads any block absorbed within one refresh
  /// interval so far (the limiting disturb pressure for endurance).
  std::uint64_t max_reads_per_interval() const {
    return max_reads_per_interval_;
  }

  /// Serializes the full mutable drive state — the embedded FTL snapshot
  /// plus the per-block reliability accumulators and stats — into a
  /// versioned, CRC32-protected buffer. A drive constructed with the same
  /// (config, params) and restored from it continues byte-identically.
  std::vector<std::uint8_t> snapshot() const;

  /// Restores a snapshot taken from an Ssd with the same configuration.
  /// Returns false — leaving the drive untouched — on truncation, CRC
  /// mismatch, bad magic/version, geometry mismatch, or trailing bytes;
  /// `*error` (optional) receives a one-line diagnostic.
  bool restore(const std::vector<std::uint8_t>& snapshot,
               std::string* error = nullptr);

 private:
  /// Detects blocks erased since the last scan and resets their
  /// reliability accumulators.
  void sync_block_epochs();
  /// Converts background FTL activity (GC/refresh/reclaim copies and
  /// erases) since the last call into seconds, accumulating the stat.
  double accrue_background();

  SsdConfig config_;
  flash::RberModel model_;
  ecc::EccModel ecc_;
  core::VpassTuningController controller_;
  ftl::Ftl ftl_;

  // Per-block reliability accumulators (parallel to FTL block table).
  std::vector<double> disturb_rber_;
  std::vector<std::uint64_t> reads_snapshot_;  ///< reads at last scan.
  std::vector<std::uint32_t> pe_seen_;         ///< epoch detector.
  std::vector<double> last_refresh_day_;

  std::uint64_t max_reads_per_interval_ = 0;
  // Counters for incremental background time accounting.
  std::uint64_t bg_writes_seen_ = 0;
  std::uint64_t erases_seen_ = 0;
  SsdStats stats_;
};

}  // namespace rdsim::ssd
