#include "ssd/ssd.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>

#include "common/serialize.h"
#include "ecc/crc32.h"

namespace rdsim::ssd {
namespace {

constexpr std::uint32_t kSsdSnapshotMagic = 0x52445353;  // "RDSS"
constexpr std::uint32_t kSsdSnapshotVersion = 1;

/// BlockProbe over the SSD's per-block analytic reliability state, so the
/// real VpassTuningController makes the daily decisions.
class SsdBlockProbe : public core::BlockProbe {
 public:
  SsdBlockProbe(const flash::RberModel& model, const ecc::EccConfig& ecc,
                double worst_page_factor, double pe, double age_days,
                double disturb_rber)
      : model_(&model),
        page_bits_(ecc.codeword_data_bits * ecc.codewords_per_page),
        codewords_(ecc.codewords_per_page),
        worst_(worst_page_factor),
        pe_(pe),
        age_(age_days),
        disturb_rber_(disturb_rber) {}

  int measure_worst_page_errors() override {
    const double rber = worst_ * (model_->base_rber(pe_) +
                                  model_->retention_rber(pe_, age_) +
                                  disturb_rber_);
    return static_cast<int>(std::lround(rber * page_bits_));
  }

  int count_read_zeros(double vpass) override {
    return static_cast<int>(
        std::lround(model_->pass_through_rber(vpass, age_) * page_bits_));
  }

  int codewords_per_page() const override { return codewords_; }

 private:
  const flash::RberModel* model_;
  int page_bits_;
  int codewords_;
  double worst_;
  double pe_;
  double age_;
  double disturb_rber_;
};

}  // namespace

Ssd::Ssd(const SsdConfig& config, const flash::FlashModelParams& params,
         std::uint64_t seed)
    : config_(config),
      model_(params),
      ecc_(config.ecc),
      controller_(ecc_, params.vpass_nominal, config.tuning),
      ftl_(config.ftl, seed),
      disturb_rber_(config.ftl.blocks, 0.0),
      reads_snapshot_(config.ftl.blocks, 0),
      pe_seen_(config.ftl.blocks, 0),
      last_refresh_day_(config.ftl.blocks, 0.0) {
  for (std::uint32_t b = 0; b < config_.ftl.blocks; ++b)
    ftl_.set_block_vpass(b, params.vpass_nominal);
}

host::ServiceCost Ssd::service(const host::Command& command) {
  host::ServiceCost cost;
  const std::uint64_t logical = ftl_.config().logical_pages();
  switch (command.kind) {
    case host::CommandKind::kRead:
      for (std::uint32_t i = 0; i < command.pages; ++i) {
        const std::uint32_t blk = ftl_.read((command.lpn + i) % logical);
        cost.busy_s += config_.latency.read_s;
        // Analytic error path: a mapped page reads uncorrectable when its
        // block's worst-page RBER exceeds the full ECC capability (the
        // same criterion as the nightly reliability scan). Below that the
        // closed-form model has ECC absorb the errors silently — kOk here
        // means "decoded"; the per-sense kCorrected distinction exists
        // only on the Monte Carlo backends. Never-written pages are
        // served from the mapping and are trivially kOk.
        if (blk != ftl::Ftl::kUnmappedBlock &&
            block_worst_rber(blk) > ecc_.rber_capability()) {
          cost.status = host::worst_status(cost.status,
                                           host::Status::kUncorrectable);
          ++cost.error_pages;
          ++stats_.host_uncorrectable_pages;
        }
      }
      break;
    case host::CommandKind::kWrite:
      for (std::uint32_t i = 0; i < command.pages; ++i) {
        std::uint32_t blk = ftl::Ftl::kUnmappedBlock;
        const ftl::WriteResult r =
            ftl_.write_page((command.lpn + i) % logical, &blk);
        if (r == ftl::WriteResult::kReadOnly) {
          // Rejected without touching flash: no busy time, the page (and
          // every remaining page — the freeze is permanent) is refused.
          cost.status = host::worst_status(cost.status,
                                           host::Status::kReadOnly);
          cost.error_pages += command.pages - i;
          stats_.host_readonly_writes += command.pages - i;
          break;
        }
        cost.busy_s += config_.latency.program_s;
        if (r == ftl::WriteResult::kFailed) {
          cost.status = host::worst_status(cost.status,
                                           host::Status::kFailedWrite);
          ++cost.error_pages;
          ++stats_.host_failed_writes;
        }
      }
      // GC the writes triggered inline runs before the command completes:
      // charge it to the command as a stall, not as generic background.
      cost.stall_s = accrue_background();
      break;
    case host::CommandKind::kTrim:
      // Metadata-only: the mapping update costs no flash busy time.
      for (std::uint32_t i = 0; i < command.pages; ++i)
        ftl_.trim((command.lpn + i) % logical);
      break;
    case host::CommandKind::kFlush:
      break;  // Barrier semantics live in the host::Device queue layer.
  }
  stats_.host_io_seconds += cost.busy_s;
  return cost;
}

double Ssd::accrue_background() {
  const auto& fs = ftl_.stats();
  const std::uint64_t bg_writes_total =
      fs.gc_writes + fs.refresh_writes + fs.reclaim_writes +
      fs.defect_writes;
  const std::uint64_t erases_total =
      fs.gc_erases + fs.refreshes + fs.reclaims;
  const double seconds =
      static_cast<double>(bg_writes_total - bg_writes_seen_) *
          (config_.latency.read_s + config_.latency.program_s) +
      static_cast<double>(erases_total - erases_seen_) *
          config_.latency.erase_s;
  bg_writes_seen_ = bg_writes_total;
  erases_seen_ = erases_total;
  stats_.background_seconds += seconds;
  return seconds;
}

void Ssd::sync_block_epochs() {
  for (std::uint32_t b = 0; b < disturb_rber_.size(); ++b) {
    const auto& info = ftl_.block(b);
    if (info.pe_cycles != pe_seen_[b]) {
      // Block was erased (GC, refresh, or reclaim) since the last scan:
      // its resident data, and therefore its accumulated retention and
      // disturb error state, is new.
      pe_seen_[b] = info.pe_cycles;
      disturb_rber_[b] = 0.0;
      reads_snapshot_[b] = 0;
      last_refresh_day_[b] = ftl_.now_days();
      ftl_.set_block_vpass(b, model_.params().vpass_nominal);
    }
  }
}

double Ssd::end_of_day() {
  ftl_.advance_time(1.0);
  ++stats_.days;
  const double probe_seconds_before = stats_.tuning_probe_seconds;

  // 1. Remap-based refresh of aged blocks, then read reclaim if enabled.
  for (const std::uint32_t b : ftl_.blocks_due_refresh()) ftl_.refresh_block(b);
  ftl_.apply_read_reclaim();
  ftl_.collect_garbage();
  sync_block_epochs();
  // Whatever background activity was not already charged to a write's
  // inline-GC stall belongs to the nightly maintenance.
  const double maintenance_bg_seconds = accrue_background();

  // 2. Account today's reads at the Vpass each block actually used.
  for (std::uint32_t b = 0; b < disturb_rber_.size(); ++b) {
    const auto& info = ftl_.block(b);
    const std::uint64_t reads_today =
        info.reads_since_program - reads_snapshot_[b];
    reads_snapshot_[b] = info.reads_since_program;
    if (reads_today > 0) {
      disturb_rber_[b] += model_.disturb_rber(
          info.pe_cycles, static_cast<double>(reads_today), info.vpass);
    }
    max_reads_per_interval_ =
        std::max(max_reads_per_interval_, info.reads_since_program);
  }

  // 3. Daily Vpass tuning (the paper's mechanism) for blocks with data.
  for (std::uint32_t b = 0; b < disturb_rber_.size(); ++b) {
    const auto& info = ftl_.block(b);
    if (info.state == ftl::BlockInfo::State::kFree || info.valid_pages == 0)
      continue;
    const double age = ftl_.now_days() - info.program_day;

    if (config_.vpass_tuning) {
      SsdBlockProbe probe(model_, config_.ecc, config_.worst_page_factor,
                          info.pe_cycles, age, disturb_rber_[b]);
      const bool refreshed_today = age <= 1.0;
      const core::TuningDecision decision =
          refreshed_today ? controller_.relearn(probe)
                          : controller_.verify_or_raise(probe, info.vpass);
      ftl_.set_block_vpass(b, decision.vpass);
      // Probe cost: the MEE read plus each step-search verification read.
      // The probes disturb the block like any other read, so they also
      // count against its read budget.
      const std::uint64_t probe_reads = 1 + decision.probe_steps;
      ftl_.note_probe_reads(b, probe_reads);
      stats_.tuning_probe_seconds +=
          static_cast<double>(probe_reads) * config_.latency.read_s;
      stats_.tuning_fallbacks += decision.fallback ? 1 : 0;
      stats_.sum_vpass_reduction_pct +=
          (model_.params().vpass_nominal - decision.vpass) /
          model_.params().vpass_nominal * 100.0;
      ++stats_.tuned_block_days;
    }

    // 4. Reliability scan: uncorrectable when the worst page exceeds the
    // full ECC capability.
    if (block_worst_rber(b) > ecc_.rber_capability())
      ++stats_.uncorrectable_page_events;
  }

  return maintenance_bg_seconds +
         (stats_.tuning_probe_seconds - probe_seconds_before);
}

std::vector<std::uint8_t> Ssd::snapshot() const {
  using serialize::append_bytes;
  using serialize::append_pod;
  std::vector<std::uint8_t> out;
  append_pod(&out, kSsdSnapshotMagic);
  append_pod(&out, kSsdSnapshotVersion);
  append_pod(&out, config_.ftl.blocks);
  append_bytes(&out, ftl_.snapshot());
  for (const double v : disturb_rber_) append_pod(&out, v);
  for (const std::uint64_t v : reads_snapshot_) append_pod(&out, v);
  for (const std::uint32_t v : pe_seen_) append_pod(&out, v);
  for (const double v : last_refresh_day_) append_pod(&out, v);
  append_pod(&out, max_reads_per_interval_);
  append_pod(&out, bg_writes_seen_);
  append_pod(&out, erases_seen_);
  append_pod(&out, stats_);
  const std::uint32_t crc = ecc::crc32(out);
  append_pod(&out, crc);
  return out;
}

bool Ssd::restore(const std::vector<std::uint8_t>& snapshot,
                  std::string* error) {
  using serialize::read_bytes;
  using serialize::read_pod;
  const auto fail = [error](const char* message) {
    if (error != nullptr) *error = message;
    return false;
  };
  if (snapshot.size() < 3 * sizeof(std::uint32_t) + sizeof(std::uint32_t))
    return fail("ssd snapshot truncated: shorter than header + CRC");
  const std::size_t body = snapshot.size() - sizeof(std::uint32_t);
  std::uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, snapshot.data() + body, sizeof(stored_crc));
  if (ecc::crc32({snapshot.data(), body}) != stored_crc)
    return fail("ssd snapshot payload CRC mismatch (bit corruption)");

  std::size_t offset = 0;
  std::uint32_t magic = 0, version = 0, blocks = 0;
  if (!read_pod(snapshot, &offset, &magic) || magic != kSsdSnapshotMagic)
    return fail("ssd snapshot bad magic (not an SSD snapshot)");
  if (!read_pod(snapshot, &offset, &version) || version != kSsdSnapshotVersion)
    return fail("ssd snapshot unsupported version");
  if (!read_pod(snapshot, &offset, &blocks) || blocks != config_.ftl.blocks)
    return fail("ssd snapshot geometry mismatch (block count differs)");

  // Stage everything before touching *this: a failed restore must leave
  // the drive exactly as it was.
  std::vector<std::uint8_t> ftl_bytes;
  if (!read_bytes(snapshot, &offset, &ftl_bytes))
    return fail("ssd snapshot truncated inside embedded ftl snapshot");
  ftl::Ftl staged_ftl(config_.ftl);
  std::string ftl_error;
  if (!staged_ftl.restore(ftl_bytes, &ftl_error)) {
    if (error != nullptr) *error = "ssd snapshot: embedded " + ftl_error;
    return false;
  }

  const std::size_t n = config_.ftl.blocks;
  std::vector<double> disturb(n), last_refresh(n);
  std::vector<std::uint64_t> reads(n);
  std::vector<std::uint32_t> pe(n);
  for (auto& v : disturb)
    if (!read_pod(snapshot, &offset, &v))
      return fail("ssd snapshot truncated inside disturb accumulators");
  for (auto& v : reads)
    if (!read_pod(snapshot, &offset, &v))
      return fail("ssd snapshot truncated inside read snapshots");
  for (auto& v : pe)
    if (!read_pod(snapshot, &offset, &v))
      return fail("ssd snapshot truncated inside pe epochs");
  for (auto& v : last_refresh)
    if (!read_pod(snapshot, &offset, &v))
      return fail("ssd snapshot truncated inside refresh days");
  std::uint64_t max_reads = 0, bg_writes = 0, erases = 0;
  SsdStats stats;
  if (!read_pod(snapshot, &offset, &max_reads) ||
      !read_pod(snapshot, &offset, &bg_writes) ||
      !read_pod(snapshot, &offset, &erases) ||
      !read_pod(snapshot, &offset, &stats))
    return fail("ssd snapshot truncated inside scalar state");
  if (offset != body)
    return fail("ssd snapshot over-long: trailing bytes after payload");

  ftl_ = std::move(staged_ftl);
  disturb_rber_ = std::move(disturb);
  reads_snapshot_ = std::move(reads);
  pe_seen_ = std::move(pe);
  last_refresh_day_ = std::move(last_refresh);
  max_reads_per_interval_ = max_reads;
  bg_writes_seen_ = bg_writes;
  erases_seen_ = erases;
  stats_ = stats;
  return true;
}

double Ssd::block_worst_rber(std::uint32_t b) const {
  const auto& info = ftl_.block(b);
  if (info.state == ftl::BlockInfo::State::kFree || info.valid_pages == 0)
    return 0.0;
  const double age = ftl_.now_days() - info.program_day;
  return config_.worst_page_factor *
             (model_.base_rber(info.pe_cycles) +
              model_.retention_rber(info.pe_cycles, age) + disturb_rber_[b]) +
         model_.pass_through_rber(info.vpass, age);
}

double Ssd::max_worst_rber() const {
  double m = 0.0;
  for (std::uint32_t b = 0; b < disturb_rber_.size(); ++b)
    m = std::max(m, block_worst_rber(b));
  return m;
}

}  // namespace rdsim::ssd
