// rdsim/flash/vmath.h
//
// Branch-free, inline exp/log1p for the per-cell sense hot loops.
//
// The Monte Carlo sense kernel evaluates one transcendental per cell per
// read; calling libm there has two costs: the call blocks loop
// auto-vectorization, and the result depends on the libc version. These
// routines are plain straight-line arithmetic + IEEE-754 bit
// manipulation, so the compiler can vectorize the surrounding loop and
// these functions return identical bits under every conforming compiler
// (the build disables FP contraction, so no FMA variance either). Note
// the *experiment* outputs are still tied to the host libm through the
// program-time draws (std::exp in sample_program, the log inside
// Rng::normal) — see the golden test's header for what that means for
// its checked-in hashes.
//
// Accuracy is a few ulp — far below the model's physical fidelity and the
// simulator's Monte Carlo noise. They are NOT drop-in libm replacements:
// domains are restricted to what the Vth model needs (documented per
// function), and errno/rounding-mode/NaN edge cases are out of scope.
#pragma once

#include <bit>
#include <cstdint>

namespace rdsim::flash::vmath {

/// e^x for x in [-708, 708]; inputs outside are clamped (the Vth model's
/// exponents are bounded by -B*Vth, a few units at most). ~2 ulp.
inline double vexp(double x) {
  // Clamp keeps 2^k representable as a normal double below.
  x = x < -708.0 ? -708.0 : x;
  x = x > 708.0 ? 708.0 : x;

  // Range reduction: x = k*ln2 + r, |r| <= ln2/2, via the round-to-nearest
  // shifter trick (adding 1.5*2^52 forces rounding of the low bits).
  constexpr double kInvLn2 = 1.44269504088896338700e+00;
  constexpr double kLn2Hi = 6.93147180369123816490e-01;
  constexpr double kLn2Lo = 1.90821492927058770002e-10;
  constexpr double kShift = 6755399441055744.0;  // 1.5 * 2^52
  const double kd = (x * kInvLn2 + kShift) - kShift;
  // k fits in 11 bits; int32 keeps the double->int conversion on a packed
  // SSE2 instruction so the caller's loop can vectorize (double<->int64
  // conversions only exist as AVX-512 instructions).
  const auto k = static_cast<std::int64_t>(static_cast<std::int32_t>(kd));
  const double r = (x - kd * kLn2Hi) - kd * kLn2Lo;

  // e^r by Taylor series through r^13 (|r| <= 0.3466 keeps the truncation
  // error below 1 ulp).
  double p = 1.60590438368216146e-10;    // 1/13!
  p = p * r + 2.08767569878680990e-09;   // 1/12!
  p = p * r + 2.50521083854417188e-08;   // 1/11!
  p = p * r + 2.75573192239858907e-07;   // 1/10!
  p = p * r + 2.75573192239858907e-06;   // 1/9!
  p = p * r + 2.48015873015873016e-05;   // 1/8!
  p = p * r + 1.98412698412698413e-04;   // 1/7!
  p = p * r + 1.38888888888888889e-03;   // 1/6!
  p = p * r + 8.33333333333333333e-03;   // 1/5!
  p = p * r + 4.16666666666666667e-02;   // 1/4!
  p = p * r + 1.66666666666666667e-01;   // 1/3!
  p = p * r + 0.5;
  p = p * r * r + r + 1.0;

  // Scale by 2^k through the exponent bits (k is in [-1022, 1022] after
  // the clamp, so 2^k is a normal double).
  const double scale = std::bit_cast<double>((1023 + k) << 52);
  return p * scale;
}

/// ln(1 + x) for x >= 0 (the disturb shift argument A*B*D*e^{-B*V} is
/// non-negative by construction). ~2 ulp. The x < 0 half-domain is
/// deliberately unsupported: it would need an arithmetic 64-bit shift that
/// SSE2 lacks, and the sense kernel never produces it.
inline double vlog1p(double x) {
  const double u = 1.0 + x;
  // First-order correction for the rounding of 1+x: log(1+x) =
  // log(u) + (x - (u-1))/u up to O(eps^2).
  const double c = (x - (u - 1.0)) / u;

  // Decompose u = 2^k * m with m in [sqrt(1/2), sqrt(2)); x >= 0 makes
  // u >= 1 and k >= 0, so a logical shift suffices.
  const std::uint64_t bits = std::bit_cast<std::uint64_t>(u);
  const std::uint64_t k = (bits - 0x3fe6a09e667f3bcdULL) >> 52;
  const double m = std::bit_cast<double>(bits - (k << 52));

  // fdlibm-style core: log(m) = f - f^2/2 + s*(f^2/2 + R(s^2)),
  // s = f/(2+f), with the classic minimax coefficients (error < 2^-58).
  const double f = m - 1.0;
  const double s = f / (2.0 + f);
  const double z = s * s;
  const double w = z * z;
  const double t1 = w * (3.999999999940941908e-01 +
                         w * (2.222219843214978396e-01 +
                              w * 1.531383769920937332e-01));
  const double t2 = z * (6.666666666666735130e-01 +
                         w * (2.857142874366239149e-01 +
                              w * (1.818357216161805012e-01 +
                                   w * 1.479819860511658591e-01)));
  const double rp = t1 + t2;
  const double hfsq = 0.5 * f * f;

  constexpr double kLn2Hi = 6.93147180369123816490e-01;
  constexpr double kLn2Lo = 1.90821492927058770002e-10;
  // int32 hop for the same vectorization reason as in vexp.
  const auto dk = static_cast<double>(static_cast<std::int32_t>(k));
  return dk * kLn2Hi - ((hfsq - (s * (hfsq + rp) + (dk * kLn2Lo + c))) - f);
}

}  // namespace rdsim::flash::vmath
