// rdsim/flash/vth_model.h
//
// Cell-level threshold-voltage physics: how a cell's Vth depends on its
// programmed state, process variation, program/erase wear, retention age,
// and accumulated read-disturb dose. This is the ground-truth model that the
// Monte Carlo chip simulator (src/nand) evaluates per cell, and that the
// analytic RBER model approximates in closed form.
//
// The chip simulator stores cells as structure-of-arrays and senses whole
// wordlines at a time: the per-page loop invariants are hoisted once into
// SenseCoeffs, the per-cell disturb transform exp(-B*v0) is cached
// (disturb_seed), and present_vth_batch/classify_batch are
// straight-line loops over contiguous arrays that auto-vectorize. The
// scalar entry points dispatch to the same per-cell arithmetic, so batch
// and scalar sensing are bit-identical.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "flash/params.h"
#include "flash/types.h"

namespace rdsim::flash {

/// Immutable per-cell ground truth, sampled at program time.
struct CellGroundTruth {
  CellState programmed = CellState::kEr;  ///< Intended state.
  float v0 = 0.0F;           ///< Vth right after programming (normalized).
  float susceptibility = 1.0F;  ///< Per-cell disturb multiplier (lognormal).
  float leak_rate = 1.0F;    ///< Per-cell retention-leak multiplier
                             ///< (lognormal); RFR's classification signal.
};

/// Structure-of-arrays view of a contiguous run of cells (one wordline).
/// All pointers address `n` elements; none may be null.
struct CellSoaView {
  const std::uint8_t* programmed;  ///< Intended CellState per cell.
  const float* v0;                 ///< Post-program Vth.
  const float* susceptibility;     ///< Disturb multiplier.
  const float* leak_rate;          ///< Retention-leak multiplier.
  const float* disturb_seed;       ///< exp(-disturb_b * v0), cached on
                                   ///< first sense (VthModel::disturb_seed).
  std::size_t n;
};

/// Evaluates the Vth physics for a given parameter set.
///
/// The read-disturb state of a block is summarized by a scalar *dose*
///   D = sum_i n_i * exp(disturb_c * (vpass_i - vpass_nominal))
/// accumulated over reads; the cell's present Vth is then the closed-form
/// integral of the tunneling law (see params.h), shifted down by retention
/// leakage. This lets the chip simulator apply millions of reads in O(1).
class VthModel {
 public:
  explicit VthModel(const FlashModelParams& params);

  const FlashModelParams& params() const { return params_; }

  /// Mean Vth of `state` on a block with `pe_cycles` of wear (no retention,
  /// no disturb).
  double state_mean(CellState state, double pe_cycles) const;

  /// Vth standard deviation of `state` under wear.
  double state_sd(CellState state, double pe_cycles) const;

  /// Samples the post-program Vth of a cell intended to hold `state`,
  /// including the program-error channel (cell lands one state off with a
  /// wear-dependent probability). Returns the ground truth record.
  ///
  /// Draw discipline (shared with the batch below): one uniform for the
  /// mis-program channel (its sub-perr/2 half also decides the direction
  /// for middle states), then three normals — v0 (standard, scaled by the
  /// landed state's mean/sd), susceptibility exponent N(0, disturb_sigma),
  /// leak exponent N(0, ret_sigma). The lognormal exponentials use
  /// vmath::vexp so scalar and batch sampling are bit-identical.
  CellGroundTruth sample_program(CellState state, double pe_cycles,
                                 Rng& rng) const;

  /// The per-cell program-sampling arithmetic, factored out of the RNG:
  /// `u` is the mis-program uniform, `z0` the standard normal for v0,
  /// `zs`/`zl` the (already sigma-scaled) susceptibility/leak exponents.
  /// Single source of truth for sample_program and sample_program_batch.
  CellGroundTruth sample_program_from_draws(CellState state, double pe_cycles,
                                            double u, double z0, double zs,
                                            double zl) const;

  /// Reusable workspace for sample_program_batch (uniforms, one normal
  /// lane, landed states). Owned by the caller so the const model stays
  /// thread-compatible.
  struct ProgramSampleScratch {
    std::vector<double> u;              ///< Mis-program uniforms.
    std::vector<double> z;              ///< Normal draws, one field at a time.
    std::vector<std::uint8_t> landed;   ///< Post-mis-program landed states.
  };

  /// Batched program sampling of one wordline: cells[i] intends state
  /// `intended[i]`; writes the sampled ground truth into the SoA rows
  /// v0/susceptibility/leak_rate (the intended states are the caller's —
  /// they are input here, not output). Consumes `rng` in four documented
  /// passes — fill_uniform(n) for the mis-program channel, then three
  /// fill_normal(n) passes (standard for v0, sigma-scaled for the two
  /// lognormal exponents) — so the per-cell values equal
  /// sample_program_from_draws over the pass-ordered draws, with the
  /// Marsaglia-serial normals batched per field and the exponentials a
  /// vectorized vmath::vexp pass instead of 2n scalar std::exp calls.
  void sample_program_batch(const std::uint8_t* intended, std::size_t n,
                            double pe_cycles, Rng& rng,
                            ProgramSampleScratch& scratch, float* v0,
                            float* susceptibility, float* leak_rate) const;

  /// Read-disturb dose contributed by `reads` read operations performed at
  /// pass-through voltage `vpass` on a block with `pe_cycles` of wear.
  double disturb_dose(double reads, double vpass, double pe_cycles) const;

  /// Vth after applying disturb dose `dose` to a cell that had voltage `v0`
  /// and per-cell `susceptibility`. Monotonically increasing in dose;
  /// lower-v0 cells shift more.
  double apply_disturb(double v0, double susceptibility, double dose) const;

  /// Retention leakage: Vth shift (<= 0 for programmed cells) after
  /// `days` of retention on a block with `pe_cycles` wear, for a cell
  /// programmed at `v0`.
  double retention_shift(double v0, double days, double pe_cycles) const;

  /// Full evaluation: present Vth of a cell given its ground truth, the
  /// block's disturb dose, retention age, and wear.
  double present_vth(const CellGroundTruth& cell, double dose, double days,
                     double pe_cycles) const;

  /// The cacheable per-cell factor of the disturb law: exp(-B * v0),
  /// rounded to float (the cache's storage type). Senses at zero retention
  /// age reuse it instead of re-evaluating the exponential per cell per
  /// read.
  float disturb_seed(double v0) const;

  /// Page-invariant sense coefficients, hoisted once per wordline. Opaque
  /// to callers; produced by sense_coeffs() and consumed by the batch/
  /// cached entry points below.
  struct SenseCoeffs {
    double dose = 0.0;       ///< Block dose experienced by the wordline.
    double days = 0.0;       ///< Retention age.
    double ret_l = 0.0;      ///< log1p(days / ret_tau_days).
    double ret_w = 0.0;      ///< 1 + pe/ret_wear_pe.
    bool has_dose = false;   ///< dose > 0 (disturb stage enabled).
    bool has_ret = false;    ///< days > 0 (retention stage enabled).
  };
  SenseCoeffs sense_coeffs(double dose, double days, double pe_cycles) const;

  /// Batched present Vth: writes the present threshold voltage of
  /// cells[0..n) to out[0..n) in one pass. Bit-identical to calling
  /// present_vth per cell.
  void present_vth_batch(const CellSoaView& cells, const SenseCoeffs& coeffs,
                         double* out) const;

  /// Scalar companion of present_vth_batch for one cell with its cached
  /// disturb seed.
  double present_vth_cached(const SenseCoeffs& coeffs, double v0,
                            double disturb_seed, double susceptibility,
                            double leak_rate) const;

  /// Branchless batched classification of vth[0..n) against the read
  /// references; out[i] is the CellState as a byte. Identical to classify.
  void classify_batch(const double* vth, std::size_t n,
                      std::uint8_t* out) const;

  /// Hard-decision state for a threshold voltage using the three read
  /// references (Va, Vb, Vc).
  CellState classify(double vth) const;

  /// Vth at which the PDFs of two adjacent states intersect (the optimal
  /// read point and RDR's boundary), for the given wear/retention and an
  /// optional accumulated disturb dose (which shifts both distributions,
  /// the lower one more). `lower` must be ER..P2; the pair is
  /// (lower, lower+1).
  double pdf_intersection(CellState lower, double pe_cycles, double days,
                          double dose = 0.0) const;

  /// Expected disturb-induced Vth shift of a cell sitting exactly at the
  /// boundary `pdf_intersection(lower,...)` when `extra_dose` more dose is
  /// applied; RDR uses this as its delta-Vref classification threshold.
  double boundary_shift(CellState lower, double pe_cycles, double days,
                        double base_dose, double extra_dose) const;

 private:
  FlashModelParams params_;
};

}  // namespace rdsim::flash
