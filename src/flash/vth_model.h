// rdsim/flash/vth_model.h
//
// Cell-level threshold-voltage physics: how a cell's Vth depends on its
// programmed state, process variation, program/erase wear, retention age,
// and accumulated read-disturb dose. This is the ground-truth model that the
// Monte Carlo chip simulator (src/nand) evaluates per cell, and that the
// analytic RBER model approximates in closed form.
#pragma once

#include "common/rng.h"
#include "flash/params.h"
#include "flash/types.h"

namespace rdsim::flash {

/// Immutable per-cell ground truth, sampled at program time.
struct CellGroundTruth {
  CellState programmed = CellState::kEr;  ///< Intended state.
  float v0 = 0.0F;           ///< Vth right after programming (normalized).
  float susceptibility = 1.0F;  ///< Per-cell disturb multiplier (lognormal).
  float leak_rate = 1.0F;    ///< Per-cell retention-leak multiplier
                             ///< (lognormal); RFR's classification signal.
};

/// Evaluates the Vth physics for a given parameter set.
///
/// The read-disturb state of a block is summarized by a scalar *dose*
///   D = sum_i n_i * exp(disturb_c * (vpass_i - vpass_nominal))
/// accumulated over reads; the cell's present Vth is then the closed-form
/// integral of the tunneling law (see params.h), shifted down by retention
/// leakage. This lets the chip simulator apply millions of reads in O(1).
class VthModel {
 public:
  explicit VthModel(const FlashModelParams& params);

  const FlashModelParams& params() const { return params_; }

  /// Mean Vth of `state` on a block with `pe_cycles` of wear (no retention,
  /// no disturb).
  double state_mean(CellState state, double pe_cycles) const;

  /// Vth standard deviation of `state` under wear.
  double state_sd(CellState state, double pe_cycles) const;

  /// Samples the post-program Vth of a cell intended to hold `state`,
  /// including the program-error channel (cell lands one state off with a
  /// wear-dependent probability). Returns the ground truth record.
  CellGroundTruth sample_program(CellState state, double pe_cycles,
                                 Rng& rng) const;

  /// Read-disturb dose contributed by `reads` read operations performed at
  /// pass-through voltage `vpass` on a block with `pe_cycles` of wear.
  double disturb_dose(double reads, double vpass, double pe_cycles) const;

  /// Vth after applying disturb dose `dose` to a cell that had voltage `v0`
  /// and per-cell `susceptibility`. Monotonically increasing in dose;
  /// lower-v0 cells shift more.
  double apply_disturb(double v0, double susceptibility, double dose) const;

  /// Retention leakage: Vth shift (<= 0 for programmed cells) after
  /// `days` of retention on a block with `pe_cycles` wear, for a cell
  /// programmed at `v0`.
  double retention_shift(double v0, double days, double pe_cycles) const;

  /// Full evaluation: present Vth of a cell given its ground truth, the
  /// block's disturb dose, retention age, and wear.
  double present_vth(const CellGroundTruth& cell, double dose, double days,
                     double pe_cycles) const;

  /// Hard-decision state for a threshold voltage using the three read
  /// references (Va, Vb, Vc).
  CellState classify(double vth) const;

  /// Vth at which the PDFs of two adjacent states intersect (the optimal
  /// read point and RDR's boundary), for the given wear/retention and an
  /// optional accumulated disturb dose (which shifts both distributions,
  /// the lower one more). `lower` must be ER..P2; the pair is
  /// (lower, lower+1).
  double pdf_intersection(CellState lower, double pe_cycles, double days,
                          double dose = 0.0) const;

  /// Expected disturb-induced Vth shift of a cell sitting exactly at the
  /// boundary `pdf_intersection(lower,...)` when `extra_dose` more dose is
  /// applied; RDR uses this as its delta-Vref classification threshold.
  double boundary_shift(CellState lower, double pe_cycles, double days,
                        double base_dose, double extra_dose) const;

 private:
  FlashModelParams params_;
};

}  // namespace rdsim::flash
