// rdsim/flash/rber_model.h
//
// Closed-form raw-bit-error-rate model calibrated to the paper's published
// curves (Figs. 3-6). Where the Monte Carlo chip (src/nand) answers
// "what happens to these particular cells", this model answers "what RBER
// does a block with this history see" cheaply enough to drive whole-SSD
// lifetime simulations (Fig. 8) and the Vpass Tuning controller.
//
//   rber(block) = base(PE)                 // P/E cycling noise floor
//               + retention(PE, age)       // charge leakage (Fig. 6)
//               + disturb(PE, reads, Vpass)// linear in reads (Fig. 3),
//                                          // exponential in Vpass (Fig. 4)
//               + pass_through(Vpass, age) // relaxation-induced (Fig. 5)
#pragma once

#include "flash/params.h"

namespace rdsim::flash {

/// Summary of one block's reliability-relevant history.
struct BlockCondition {
  double pe_cycles = 0.0;       ///< Program/erase wear.
  double retention_days = 0.0;  ///< Age of the resident data.
  double reads = 0.0;           ///< Read disturbs since last program.
  double vpass = 512.0;         ///< Pass-through voltage used for the reads
                                ///< (and for the evaluated read).
};

/// Closed-form RBER model; all rates are raw bit error probabilities.
class RberModel {
 public:
  explicit RberModel(const FlashModelParams& params);

  const FlashModelParams& params() const { return params_; }

  /// P/E-cycling noise floor (no retention, no disturb).
  double base_rber(double pe_cycles) const;

  /// Retention-induced RBER after `days` at wear `pe_cycles` (Fig. 6 curve
  /// digitized at 8K P/E and scaled with wear).
  double retention_rber(double pe_cycles, double days) const;

  /// Read-disturb RBER after `reads` reads performed at pass-through
  /// voltage `vpass` on a block with `pe_cycles` wear. Linear in reads
  /// (Fig. 3) with slope 1.0e-9*(PE/2000)^1.45, scaled by
  /// exp(-c*(Vnominal - vpass)) (Fig. 4).
  double disturb_rber(double pe_cycles, double reads, double vpass) const;

  /// Fig. 3 slope: disturb RBER per read at nominal Vpass.
  double disturb_slope(double pe_cycles) const;

  /// Additional RBER caused by relaxing Vpass below nominal: the top-tail
  /// cells fail to pass through (Fig. 5). Zero at nominal Vpass; decreases
  /// with retention age.
  double pass_through_rber(double vpass, double days) const;

  /// Total expected RBER for a block in the given condition.
  double total_rber(const BlockCondition& c) const;

  /// Usable ECC budget after the reserved margin:
  /// (1 - reserved) * capability.
  double usable_ecc_rber() const;

  /// Number of reads tolerable before total RBER exceeds the usable ECC
  /// budget, for fixed wear/age/vpass. Returns +inf when the budget is
  /// never exceeded and 0 when it is already exceeded.
  double tolerable_reads(double pe_cycles, double days, double vpass) const;

  /// Largest integer-percent Vpass reduction (0..max_percent) whose
  /// pass-through errors fit in the remaining ECC margin at the given wear
  /// and retention age, mirroring Fig. 6's annotation row. The margin is
  /// usable_ecc_rber() minus the block's expected (base+retention) RBER.
  int safe_vpass_reduction_percent(double pe_cycles, double days,
                                   int max_percent = 8) const;

  /// Finds the lowest Vpass (in normalized units, stepped by `step`) whose
  /// pass-through errors stay within `margin_rber`; this is the analytic
  /// shortcut for the controller's step search. Never returns below
  /// vpass_nominal * 0.90.
  double lowest_safe_vpass(double margin_rber, double days,
                           double step = 2.0) const;

 private:
  FlashModelParams params_;
};

}  // namespace rdsim::flash
