#include "flash/rber_model.h"

#include <algorithm>
#include <array>
#include <cassert>
#include <cmath>
#include <limits>

#include "common/stats.h"

namespace rdsim::flash {
namespace {

// Retention-induced RBER at 8K P/E for day 0..21, digitized from Fig. 6
// (bar heights minus the P/E noise floor). The shape is the classic
// fast-then-saturating charge-loss curve; together with the pass-through
// tail model it reproduces Fig. 6's published safe-reduction annotation
// (4%/3%/2%/1%/0% as age grows).
constexpr std::array<double, 22> kRet8kTable = {
    0.0e-3,    //  0 d
    0.030e-3,  //  1 d
    0.055e-3,  //  2 d
    0.080e-3,  //  3 d
    0.100e-3,  //  4 d
    0.160e-3,  //  5 d
    0.210e-3,  //  6 d
    0.260e-3,  //  7 d
    0.300e-3,  //  8 d
    0.310e-3,  //  9 d
    0.330e-3,  // 10 d
    0.350e-3,  // 11 d
    0.370e-3,  // 12 d
    0.385e-3,  // 13 d
    0.395e-3,  // 14 d
    0.400e-3,  // 15 d
    0.410e-3,  // 16 d
    0.420e-3,  // 17 d
    0.428e-3,  // 18 d
    0.435e-3,  // 19 d
    0.440e-3,  // 20 d
    0.445e-3,  // 21 d
};

}  // namespace

RberModel::RberModel(const FlashModelParams& params) : params_(params) {
  assert(params_.is_sane());
}

double RberModel::base_rber(double pe_cycles) const {
  if (pe_cycles <= 0.0) return params_.base_rber_8k * std::pow(1.0 / 8000.0,
                                                               params_.base_wear_exp);
  return params_.base_rber_8k *
         std::pow(pe_cycles / 8000.0, params_.base_wear_exp);
}

double RberModel::retention_rber(double pe_cycles, double days) const {
  if (days <= 0.0) return 0.0;
  const double t = std::min(days, 21.0);
  const auto lo = static_cast<std::size_t>(t);
  const std::size_t hi = std::min<std::size_t>(lo + 1, 21);
  const double frac = t - static_cast<double>(lo);
  double at8k = kRet8kTable[lo] * (1.0 - frac) + kRet8kTable[hi] * frac;
  if (days > 21.0) {
    // Beyond the characterized window extrapolate logarithmically; the
    // curve has nearly saturated by day 21.
    at8k = kRet8kTable[21] * (1.0 + 0.08 * std::log(days / 21.0));
  }
  return at8k * std::pow(std::max(pe_cycles, 1.0) / 8000.0,
                         params_.ret_rber_wear_exp);
}

double RberModel::disturb_slope(double pe_cycles) const {
  return params_.slope_base *
         std::pow(std::max(pe_cycles, 1.0) / params_.slope_ref_pe,
                  params_.disturb_wear_exp);
}

double RberModel::disturb_rber(double pe_cycles, double reads,
                               double vpass) const {
  if (reads <= 0.0) return 0.0;
  const double vpass_factor =
      std::exp(-params_.disturb_c * (params_.vpass_nominal - vpass));
  // The linear-in-reads law (Fig. 3) saturates once the disturb-prone ER
  // population has been pushed across the read reference; cap at the
  // ER-state bit share (25% of cells, one bit flip each -> 1/8 of bits).
  return std::min(disturb_slope(pe_cycles) * reads * vpass_factor, 0.125);
}

double RberModel::pass_through_rber(double vpass, double days) const {
  if (vpass >= params_.vpass_nominal) return 0.0;
  const double mean =
      params_.tail_mean - params_.tail_ret_drop * std::log1p(std::max(days, 0.0));
  auto tail = [&](double v) {
    return params_.tail_fraction * normal_sf((v - mean) / params_.tail_sd);
  };
  // Subtract the (tiny) tail at nominal Vpass so relaxation cost is zero at
  // the nominal point, matching "Vpass can be lowered to some degree
  // without inducing any read errors" (Fig. 5).
  return std::max(0.0, tail(vpass) - tail(params_.vpass_nominal));
}

double RberModel::total_rber(const BlockCondition& c) const {
  return base_rber(c.pe_cycles) + retention_rber(c.pe_cycles, c.retention_days) +
         disturb_rber(c.pe_cycles, c.reads, c.vpass) +
         pass_through_rber(c.vpass, c.retention_days);
}

double RberModel::usable_ecc_rber() const {
  return (1.0 - params_.ecc_reserved_margin) * params_.ecc_capability_rber;
}

double RberModel::tolerable_reads(double pe_cycles, double days,
                                  double vpass) const {
  const double budget = usable_ecc_rber() - base_rber(pe_cycles) -
                        retention_rber(pe_cycles, days) -
                        pass_through_rber(vpass, days);
  if (budget <= 0.0) return 0.0;
  const double per_read =
      disturb_rber(pe_cycles, 1.0, vpass);
  if (per_read <= 0.0) return std::numeric_limits<double>::infinity();
  return budget / per_read;
}

int RberModel::safe_vpass_reduction_percent(double pe_cycles, double days,
                                            int max_percent) const {
  const double margin = usable_ecc_rber() - base_rber(pe_cycles) -
                        retention_rber(pe_cycles, days);
  if (margin <= 0.0) return 0;
  int best = 0;
  for (int pct = 1; pct <= max_percent; ++pct) {
    const double vpass =
        params_.vpass_nominal * (1.0 - static_cast<double>(pct) / 100.0);
    if (pass_through_rber(vpass, days) <= margin)
      best = pct;
    else
      break;
  }
  return best;
}

double RberModel::lowest_safe_vpass(double margin_rber, double days,
                                    double step) const {
  assert(step > 0.0);
  const double floor_v = params_.vpass_nominal * 0.90;
  double v = params_.vpass_nominal;
  while (v - step >= floor_v &&
         pass_through_rber(v - step, days) <= margin_rber) {
    v -= step;
  }
  return v;
}

}  // namespace rdsim::flash
