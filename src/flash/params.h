// rdsim/flash/params.h
//
// Every tunable coefficient of the 2Y-nm MLC flash reliability model, with
// one factory (`FlashModelParams::default_2ynm`) whose values are
// reconstructed from the paper's published figures. All voltages use the
// paper's normalized threshold-voltage scale: GND = 0, nominal Vpass = 512.
//
// Calibration anchors (see DESIGN.md §2):
//  * Fig. 3 slope table: RBER/read = 1.0e-9 * (PE/2000)^1.45.
//  * Fig. 4: lowering Vpass by 2% cuts RBER roughly in half at 100K reads
//    and shifts iso-RBER read counts by ~an order of magnitude per 3-4%;
//    we model the disturb rate as exp(-kv * (Vnominal - Vpass)).
//  * Fig. 5: additional read errors from relaxed Vpass stem from the
//    upper tail of the top programmed state failing to pass through.
//  * Fig. 6: ECC correction capability 1e-3 RBER, 20% reserved margin,
//    safe Vpass reduction 4%..0% as retention age grows from 1 to 21 days.
//  * Fig. 10: ~1e-3 RBER at 0 disturbs and ~1e-2 at 1M disturbs (8K P/E).
#pragma once

#include <array>
#include <cstdint>

#include "flash/types.h"

namespace rdsim::flash {

/// Gaussian description of one state's threshold-voltage distribution on a
/// fresh (0 P/E, 0 retention) block.
struct StateDist {
  double mean = 0.0;
  double sd = 1.0;
};

/// All model coefficients. Plain aggregate: no invariants beyond "physically
/// sensible"; validated by `is_sane()`.
struct FlashModelParams {
  // --- Geometry of the normalized voltage axis -----------------------------
  double vpass_nominal = 512.0;  ///< Nominal pass-through voltage (paper §2).
  double vref_a = 105.0;         ///< Read reference Va (ER | P1).
  double vref_b = 225.0;         ///< Read reference Vb (P1 | P2).
  double vref_c = 338.0;         ///< Read reference Vc (P2 | P3).

  /// Fresh-chip state distributions, index by CellState.
  std::array<StateDist, 4> states = {
      StateDist{40.0, 14.5},    // ER
      StateDist{160.0, 11.0},   // P1
      StateDist{280.0, 10.5},   // P2
      StateDist{400.0, 11.5},   // P3
  };

  // --- Program/erase wear ---------------------------------------------------
  /// Distribution widening: sd *= (1 + wear_sd_growth * PE).
  double wear_sd_growth = 2.8e-5;
  /// Erased-state mean creeps up with wear (incomplete erase): mean_ER +=
  /// wear_er_shift * PE.
  double wear_er_shift = 1.5e-3;
  /// Probability that programming leaves a cell one state off, per cell, on
  /// a fresh block; grows as (1 + PE / wear_prog_error_pe).
  double program_error_rate = 6.0e-5;
  double wear_prog_error_pe = 4000.0;

  // --- Retention loss -------------------------------------------------------
  /// Cell leakage: dV = -ret_coeff * sqrt(V0 - er_mean_fresh) *
  /// ln(1 + t / ret_tau_days) * (1 + PE / ret_wear_pe).
  double ret_coeff = 0.092;
  double ret_tau_days = 0.05;
  double ret_wear_pe = 6000.0;
  /// Per-cell leak-rate process variation: lognormal(0, ret_sigma)
  /// multiplier. The fast-/slow-leaking split this produces is what RFR
  /// (Retention Failure Recovery, the paper's companion mechanism to RDR)
  /// exploits.
  double ret_sigma = 0.35;

  // --- Read disturb (the paper's subject) -----------------------------------
  // Per-read tunneling law integrated in closed form:
  //   dV/dn = A * exp(-B V) * exp(C (Vpass - Vnominal))
  //   => V(n) = (1/B) ln(exp(B V0) + A B D),  D = disturb "dose"
  //      D = sum over reads of exp(C (Vpass_i - Vnominal)),
  // so cells with lower Vth shift more (finding #2 in §1) and a lower
  // pass-through voltage exponentially weakens each read's disturbance.
  double disturb_a = 5.44e-5;  ///< Calibrated: ER shifts ~25 units @1M reads,
                               ///< 8K P/E (Figs. 2b and 10).
  double disturb_b = 0.012;    ///< Vth self-limiting rate.
  double disturb_c = 0.175;    ///< ln(6)/2% of 512: Fig. 4 Vpass sensitivity.
  /// Disturb susceptibility process variation: per-cell multiplier is
  /// lognormal(0, disturb_sigma). RDR exploits this variation.
  double disturb_sigma = 0.45;
  /// Wear acceleration of disturb: dose *= (PE/8000)^disturb_wear_exp,
  /// consistent with the Fig. 3 slope fit.
  double disturb_wear_exp = 1.45;

  // --- Pass-through failure (bitline blocking) tail --------------------------
  // Additional read errors when Vpass is relaxed come from the highest-Vth
  // cells (over-programmed P3 tail) failing to conduct. Modeled as a
  // Gaussian "top tail" of effective maximum cell voltage; see Fig. 5.
  double tail_mean = 429.6;     ///< Effective top-tail center at day 0.
  double tail_sd = 21.0;
  double tail_ret_drop = 0.3;   ///< tail_mean -= tail_ret_drop*ln(1+t_days).
  double tail_fraction = 0.25;  ///< Fraction of cells in the top state.
  /// Monte Carlo realization of the same tail: each *bitline* has one
  /// blocking threshold — the effective gate voltage its weakest string
  /// needs in order to conduct — sampled at program time as
  /// N(tail_mean + mc_tail_mean_adjust, tail_sd) and drifting down with
  /// retention like the analytic tail. The adjustment aligns the MC
  /// bit-error cost of a blocked bitline (~0.5 errors/bit read) with the
  /// analytic pass_through_rber fit (tail_fraction = 0.25) near z ~ 3.
  double mc_tail_mean_adjust = -4.9;

  // --- Analytic RBER model (Figs. 3, 4, 6) -----------------------------------
  /// Fig. 3 fit: disturb slope per read = slope_base *
  /// (PE / slope_ref_pe)^disturb_wear_exp at nominal Vpass.
  double slope_base = 1.0e-9;
  double slope_ref_pe = 2000.0;
  /// P/E cycling noise floor: rber = base_rber_8k * (PE/8000)^base_wear_exp.
  double base_rber_8k = 3.5e-4;
  double base_wear_exp = 1.6;
  /// Retention-induced RBER at 8K P/E follows the digitized Fig. 6 curve
  /// (kRet8kTable in rber_model.cc), scaled by (PE/8000)^ret_rber_wear_exp.
  double ret_rber_wear_exp = 1.1;

  // --- ECC provisioning (Fig. 6) ---------------------------------------------
  double ecc_capability_rber = 1.0e-3;  ///< Max correctable RBER.
  double ecc_reserved_margin = 0.20;    ///< Reserved fraction of capability.

  // --- Extensions -------------------------------------------------------------
  /// Concentrated read disturb (Zambelli et al., IRPS 2017, discussed in
  /// the retrospective's related work): wordlines directly adjacent to the
  /// repeatedly-read one receive this much *extra* unit dose on top of the
  /// uniform block-wide disturbance. 0 disables the effect (the DSN 2015
  /// model), keeping the original calibration intact.
  double neighbor_dose_boost = 0.0;

  /// Factory for the calibrated 2Y-nm MLC model used throughout the repo.
  static FlashModelParams default_2ynm() { return FlashModelParams{}; }

  /// Early 3D NAND (charge-trap, ~40 nm-class process): the retrospective
  /// notes read disturb is greatly reduced by the larger process
  /// technology, while early retention loss is faster. Relative factors
  /// follow the cited 3D characterization work.
  static FlashModelParams early_3d_nand() {
    FlashModelParams p{};
    p.disturb_a *= 0.05;      // Thicker oxide: far weaker tunneling.
    p.slope_base *= 0.05;
    p.wear_sd_growth *= 0.7;  // Smaller program variation at high P/E.
    p.ret_coeff *= 1.3;       // Early retention loss.
    p.ret_tau_days *= 0.2;
    return p;
  }

  /// Basic physical sanity checks (ordering of references and states,
  /// positive coefficients). Used by tests and constructors of dependent
  /// models.
  bool is_sane() const;
};

}  // namespace rdsim::flash
