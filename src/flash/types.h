// rdsim/flash/types.h
//
// Fundamental MLC flash value types: the four threshold-voltage states of a
// 2-bit cell and their Gray-coded (LSB, MSB) data mapping, exactly as in
// Fig. 1 of the paper: ER=11, P1=10, P2=00, P3=01.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

namespace rdsim::flash {

/// The four MLC states, ordered by increasing threshold voltage.
enum class CellState : std::uint8_t { kEr = 0, kP1 = 1, kP2 = 2, kP3 = 3 };

inline constexpr std::array<CellState, 4> kAllStates = {
    CellState::kEr, CellState::kP1, CellState::kP2, CellState::kP3};

/// Least-significant bit stored by `state` (Gray code of Fig. 1).
constexpr int lsb_of(CellState state) {
  switch (state) {
    case CellState::kEr: return 1;  // 11
    case CellState::kP1: return 1;  // 10
    case CellState::kP2: return 0;  // 00
    case CellState::kP3: return 0;  // 01
  }
  return 0;
}

/// Most-significant bit stored by `state` (Gray code of Fig. 1).
constexpr int msb_of(CellState state) {
  switch (state) {
    case CellState::kEr: return 1;  // 11
    case CellState::kP1: return 0;  // 10
    case CellState::kP2: return 0;  // 00
    case CellState::kP3: return 1;  // 01
  }
  return 0;
}

/// State encoding a given (LSB, MSB) pair.
constexpr CellState state_of_bits(int lsb, int msb) {
  if (lsb == 1) return msb == 1 ? CellState::kEr : CellState::kP1;
  return msb == 0 ? CellState::kP2 : CellState::kP3;
}

/// Number of differing data bits between two states (0..2).
constexpr int bit_errors_between(CellState a, CellState b) {
  return (lsb_of(a) != lsb_of(b) ? 1 : 0) + (msb_of(a) != msb_of(b) ? 1 : 0);
}

constexpr std::string_view state_name(CellState state) {
  switch (state) {
    case CellState::kEr: return "ER";
    case CellState::kP1: return "P1";
    case CellState::kP2: return "P2";
    case CellState::kP3: return "P3";
  }
  return "?";
}

}  // namespace rdsim::flash
