#include "flash/vth_model.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/stats.h"
#include "flash/vmath.h"

namespace rdsim::flash {
namespace {

/// Per-cell sense arithmetic shared by every scalar and batched entry
/// point. The retention/disturb stages are compile-time flags so the four
/// (dose, days) regimes each get a tight branch-free loop body; the scalar
/// wrappers dispatch to the same instantiations, which is what makes batch
/// and scalar sensing bit-identical.
template <bool kDose, bool kRet>
inline double present_cell(const FlashModelParams& p,
                           const VthModel::SenseCoeffs& c, double v0,
                           double seed, double susceptibility,
                           double leak_rate) {
  double v = v0;
  if constexpr (kRet) {
    // retention_shift(), with log1p(days/tau) and the wear factor hoisted
    // into the coefficients. sqrt(max(h,0)) + select keeps the erased-cell
    // guard branch-free without ever taking sqrt of a negative.
    const double headroom = v0 - p.states[0].mean;
    const double shift =
        -p.ret_coeff * std::sqrt(std::max(headroom, 0.0)) * c.ret_l * c.ret_w;
    v = v0 + leak_rate * (headroom > 0.0 ? shift : 0.0);
  }
  if constexpr (kDose) {
    // apply_disturb(), reusing the cached exp(-B*v0) when no retention
    // moved the cell. The exponential is float-rounded like the cache so
    // the cached and recomputed paths stay bit-identical.
    const double e =
        kRet ? static_cast<double>(
                   static_cast<float>(vmath::vexp(-p.disturb_b * v)))
             : seed;
    const double y = p.disturb_a * susceptibility * p.disturb_b * c.dose * e;
    v = v + vmath::vlog1p(y) / p.disturb_b;
  }
  return v;
}

template <bool kDose, bool kRet>
void present_batch(const FlashModelParams& p, const VthModel::SenseCoeffs& c,
                   const CellSoaView& cells, double* out) {
  for (std::size_t i = 0; i < cells.n; ++i) {
    out[i] = present_cell<kDose, kRet>(
        p, c, static_cast<double>(cells.v0[i]),
        static_cast<double>(cells.disturb_seed[i]),
        static_cast<double>(cells.susceptibility[i]),
        static_cast<double>(cells.leak_rate[i]));
  }
}

}  // namespace

bool FlashModelParams::is_sane() const {
  const bool refs_ordered = 0 < vref_a && vref_a < vref_b && vref_b < vref_c &&
                            vref_c < vpass_nominal;
  bool states_ordered = true;
  for (std::size_t i = 0; i + 1 < states.size(); ++i)
    states_ordered &= states[i].mean < states[i + 1].mean;
  bool sds_positive = true;
  for (const auto& s : states) sds_positive &= s.sd > 0.0;
  return refs_ordered && states_ordered && sds_positive && disturb_a > 0 &&
         disturb_b > 0 && disturb_c > 0 && ecc_capability_rber > 0 &&
         ecc_reserved_margin >= 0 && ecc_reserved_margin < 1;
}

VthModel::VthModel(const FlashModelParams& params) : params_(params) {
  assert(params_.is_sane());
}

double VthModel::state_mean(CellState state, double pe_cycles) const {
  const auto& s = params_.states[static_cast<std::size_t>(state)];
  if (state == CellState::kEr)
    return s.mean + params_.wear_er_shift * pe_cycles;
  return s.mean;
}

double VthModel::state_sd(CellState state, double pe_cycles) const {
  const auto& s = params_.states[static_cast<std::size_t>(state)];
  return s.sd * (1.0 + params_.wear_sd_growth * pe_cycles);
}

namespace {

/// Index of the state a cell actually lands in: with probability `perr`
/// (split by the same uniform's lower half for the direction) it is one
/// state off the intended `idx` — towards the middle for the end states.
/// Branch-free so the batch's landed pass vectorizes.
inline int landed_index(int idx, double u, double perr) {
  const int mis = u < perr ? 1 : 0;
  const int delta = idx == 0 ? 1 : (idx == 3 ? -1 : (u < 0.5 * perr ? 1 : -1));
  return idx + mis * delta;
}

}  // namespace

CellGroundTruth VthModel::sample_program_from_draws(CellState state,
                                                    double pe_cycles, double u,
                                                    double z0, double zs,
                                                    double zl) const {
  const double perr = params_.program_error_rate *
                      (1.0 + pe_cycles / params_.wear_prog_error_pe);
  const auto landed = static_cast<CellState>(
      landed_index(static_cast<int>(state), u, perr));
  CellGroundTruth cell;
  cell.programmed = state;
  cell.v0 = static_cast<float>(state_mean(landed, pe_cycles) +
                               state_sd(landed, pe_cycles) * z0);
  // vmath::vexp (not libm) so the batched wordline fill and this scalar
  // path produce identical bits for identical draws.
  cell.susceptibility = static_cast<float>(vmath::vexp(zs));
  cell.leak_rate = static_cast<float>(vmath::vexp(zl));
  return cell;
}

CellGroundTruth VthModel::sample_program(CellState state, double pe_cycles,
                                         Rng& rng) const {
  const double u = rng.uniform();
  const double z0 = rng.normal();
  const double zs = rng.normal(0.0, params_.disturb_sigma);
  const double zl = rng.normal(0.0, params_.ret_sigma);
  return sample_program_from_draws(state, pe_cycles, u, z0, zs, zl);
}

void VthModel::sample_program_batch(const std::uint8_t* intended,
                                    std::size_t n, double pe_cycles, Rng& rng,
                                    ProgramSampleScratch& scratch, float* v0,
                                    float* susceptibility,
                                    float* leak_rate) const {
  scratch.u.resize(n);
  scratch.z.resize(n);
  scratch.landed.resize(n);
  const double perr = params_.program_error_rate *
                      (1.0 + pe_cycles / params_.wear_prog_error_pe);
  double mean[4], sd[4];
  for (int s = 0; s < 4; ++s) {
    mean[s] = state_mean(static_cast<CellState>(s), pe_cycles);
    sd[s] = state_sd(static_cast<CellState>(s), pe_cycles);
  }

  // Pass 1: mis-program uniforms -> landed states (branch-free).
  rng.fill_uniform(scratch.u.data(), n);
  for (std::size_t i = 0; i < n; ++i)
    scratch.landed[i] = static_cast<std::uint8_t>(
        landed_index(intended[i], scratch.u[i], perr));

  // Pass 2: v0 = landed mean + landed sd * z.
  rng.fill_normal(scratch.z.data(), n);
  for (std::size_t i = 0; i < n; ++i)
    v0[i] = static_cast<float>(mean[scratch.landed[i]] +
                               sd[scratch.landed[i]] * scratch.z[i]);

  // Passes 3/4: lognormal multipliers. The normals are RNG-serial, but the
  // exponential runs as a straight-line vexp loop over the whole wordline.
  rng.fill_normal(scratch.z.data(), n, 0.0, params_.disturb_sigma);
  for (std::size_t i = 0; i < n; ++i)
    susceptibility[i] = static_cast<float>(vmath::vexp(scratch.z[i]));
  rng.fill_normal(scratch.z.data(), n, 0.0, params_.ret_sigma);
  for (std::size_t i = 0; i < n; ++i)
    leak_rate[i] = static_cast<float>(vmath::vexp(scratch.z[i]));
}

double VthModel::disturb_dose(double reads, double vpass,
                              double pe_cycles) const {
  const double vpass_factor =
      std::exp(params_.disturb_c * (vpass - params_.vpass_nominal));
  const double wear_factor =
      std::pow(std::max(pe_cycles, 1.0) / 8000.0, params_.disturb_wear_exp);
  return reads * vpass_factor * wear_factor;
}

double VthModel::apply_disturb(double v0, double susceptibility,
                               double dose) const {
  if (dose <= 0.0) return v0;
  const double b = params_.disturb_b;
  // V(D) = (1/B) ln(exp(B V0) + A B D); evaluate via the shift form to stay
  // numerically stable for large V0:
  //   V - V0 = (1/B) ln(1 + A B D exp(-B V0)).
  // The exponential carries float precision — it is the value the sense
  // kernel caches per cell (disturb_seed), and present_vth must remain the
  // exact composition of retention_shift and this function.
  const double y = params_.disturb_a * susceptibility * b * dose *
                   static_cast<double>(disturb_seed(v0));
  return v0 + vmath::vlog1p(y) / b;
}

double VthModel::retention_shift(double v0, double days,
                                 double pe_cycles) const {
  if (days <= 0.0) return 0.0;
  const double er_mean_fresh = params_.states[0].mean;
  const double headroom = v0 - er_mean_fresh;
  if (headroom <= 0.0) return 0.0;  // Erased-level cells do not leak down.
  const double wear = 1.0 + pe_cycles / params_.ret_wear_pe;
  return -params_.ret_coeff * std::sqrt(headroom) *
         std::log1p(days / params_.ret_tau_days) * wear;
}

float VthModel::disturb_seed(double v0) const {
  return static_cast<float>(vmath::vexp(-params_.disturb_b * v0));
}

VthModel::SenseCoeffs VthModel::sense_coeffs(double dose, double days,
                                             double pe_cycles) const {
  SenseCoeffs c;
  c.dose = dose;
  c.days = days;
  c.has_dose = dose > 0.0;
  c.has_ret = days > 0.0;
  if (c.has_ret) {
    c.ret_l = std::log1p(days / params_.ret_tau_days);
    c.ret_w = 1.0 + pe_cycles / params_.ret_wear_pe;
  }
  return c;
}

void VthModel::present_vth_batch(const CellSoaView& cells,
                                 const SenseCoeffs& coeffs,
                                 double* out) const {
  if (coeffs.has_dose) {
    if (coeffs.has_ret)
      present_batch<true, true>(params_, coeffs, cells, out);
    else
      present_batch<true, false>(params_, coeffs, cells, out);
  } else {
    if (coeffs.has_ret)
      present_batch<false, true>(params_, coeffs, cells, out);
    else
      present_batch<false, false>(params_, coeffs, cells, out);
  }
}

double VthModel::present_vth_cached(const SenseCoeffs& coeffs, double v0,
                                    double disturb_seed, double susceptibility,
                                    double leak_rate) const {
  if (coeffs.has_dose) {
    if (coeffs.has_ret)
      return present_cell<true, true>(params_, coeffs, v0, disturb_seed,
                                      susceptibility, leak_rate);
    return present_cell<true, false>(params_, coeffs, v0, disturb_seed,
                                     susceptibility, leak_rate);
  }
  if (coeffs.has_ret)
    return present_cell<false, true>(params_, coeffs, v0, disturb_seed,
                                     susceptibility, leak_rate);
  return present_cell<false, false>(params_, coeffs, v0, disturb_seed,
                                    susceptibility, leak_rate);
}

double VthModel::present_vth(const CellGroundTruth& cell, double dose,
                             double days, double pe_cycles) const {
  const SenseCoeffs c = sense_coeffs(dose, days, pe_cycles);
  return present_vth_cached(
      c, static_cast<double>(cell.v0),
      static_cast<double>(disturb_seed(static_cast<double>(cell.v0))),
      static_cast<double>(cell.susceptibility),
      static_cast<double>(cell.leak_rate));
}

CellState VthModel::classify(double vth) const {
  if (vth < params_.vref_a) return CellState::kEr;
  if (vth < params_.vref_b) return CellState::kP1;
  if (vth < params_.vref_c) return CellState::kP2;
  return CellState::kP3;
}

void VthModel::classify_batch(const double* vth, std::size_t n,
                              std::uint8_t* out) const {
  const double va = params_.vref_a, vb = params_.vref_b, vc = params_.vref_c;
  for (std::size_t i = 0; i < n; ++i) {
    const double v = vth[i];
    // Same result as classify(): the references are ordered, so counting
    // crossed references yields the state index.
    out[i] = static_cast<std::uint8_t>(static_cast<int>(v >= va) +
                                       static_cast<int>(v >= vb) +
                                       static_cast<int>(v >= vc));
  }
}

double VthModel::pdf_intersection(CellState lower, double pe_cycles,
                                  double days, double dose) const {
  assert(lower != CellState::kP3);
  const auto higher = static_cast<CellState>(static_cast<int>(lower) + 1);
  // Means after retention and disturb; sds from wear. Solve for the
  // equal-density point of the two Gaussians between the two means by
  // bisection on log pdf difference (robust to unequal variances).
  auto center = [&](CellState s) {
    const double m = state_mean(s, pe_cycles);
    const double retained = m + retention_shift(m, days, pe_cycles);
    return apply_disturb(retained, 1.0, dose);
  };
  const double m1 = center(lower), m2 = center(higher);
  const double s1 = state_sd(lower, pe_cycles), s2 = state_sd(higher, pe_cycles);
  auto logpdf_diff = [&](double x) {
    const double z1 = (x - m1) / s1, z2 = (x - m2) / s2;
    return (-0.5 * z1 * z1 - std::log(s1)) - (-0.5 * z2 * z2 - std::log(s2));
  };
  double lo = m1, hi = m2;
  for (int i = 0; i < 80; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (logpdf_diff(mid) > 0.0)
      lo = mid;
    else
      hi = mid;
  }
  return 0.5 * (lo + hi);
}

double VthModel::boundary_shift(CellState lower, double pe_cycles, double days,
                                double base_dose, double extra_dose) const {
  const double v = pdf_intersection(lower, pe_cycles, days);
  // Shift of a nominal (susceptibility 1) cell at the boundary when the
  // block's dose grows from base_dose to base_dose + extra_dose. Since the
  // boundary voltage is the *post-base-dose* Vth, invert the disturb law to
  // recover the equivalent v0 first.
  const double b = params_.disturb_b;
  const double a = params_.disturb_a;
  const double ebv = std::exp(b * v);
  const double ebv0 = std::max(ebv - a * b * base_dose, 1.0);
  const double v0 = std::log(ebv0) / b;
  const double after =
      apply_disturb(v0, 1.0, base_dose + extra_dose);
  return after - v;
}

}  // namespace rdsim::flash
