// rdsim/sim/bench_main.h
//
// Shared main() for the per-figure bench binaries. Each bench is a thin
// wrapper — `return bench_main("fig03", argc, argv);` — over the
// experiment registry, so every figure keeps its dedicated target while
// the sweep logic lives in the library and the unified `rdsim` driver.
#pragma once

namespace rdsim::sim {

/// Runs the registered experiment `name` with the shared CLI flags
/// (see cli.h): prints the table to stdout and writes
/// <out-dir>/<name>.csv unless --no-file. Returns a process exit code.
int bench_main(const char* name, int argc, char** argv);

}  // namespace rdsim::sim
