// Reliability experiments: fig_reliability, the end-to-end error-path
// study. Section A injects latent uncorrectable pages (and one die kill)
// into the sharded Monte Carlo drive and reports how far down the
// escalation ladder (ECC -> read-retry -> RDR -> uncorrectable) the
// host's reads had to go, the flash time the recovery steps charged, and
// the host-observed UBER. Section B injects program/erase failures into
// the analytic drive's FTL and watches grown defects eat the spare pool
// until the drive degrades to read-only. All fault randomness rides
// dedicated Rng streams, so the table is byte-identical for any
// --threads, and the zero-fault control rows are bit-identical to a
// fault-free build.
#include <memory>
#include <string>
#include <vector>

#include "cfg/spec.h"
#include "ftl/ftl.h"
#include "host/driver.h"
#include "host/factory.h"
#include "host/sharded_device.h"
#include "host/ssd_device.h"
#include "sim/experiments.h"
#include "ssd/ssd.h"
#include "workload/generator.h"
#include "workload/profiles.h"

namespace rdsim::sim {

Table run_fig_reliability(ExperimentContext& ctx) {
  const bool full_scale = ctx.scale() >= 1.0;

  // Same derivation scheme as fig08/fig_qos_mc: one drive seed and one
  // trace seed shared by every fault configuration, offset so seeds near
  // the default move continuously.
  const std::uint64_t drive_seed = 31 + (ctx.seed() - 42);
  const std::uint64_t trace_seed = 8642 + (ctx.seed() - 42);
  const int workers = ctx.runner().thread_count();

  Table table;
  table.comment(
      "fig_reliability: fault injection vs the end-to-end error path "
      "(ECC -> retry -> RDR ladder, UBER, graceful degradation)");

  // --- Section A: latent pages and a die kill on the sharded MC drive.
  {
    const int days = 2;
    const std::uint32_t kShards = 4;
    nand::Geometry shard_geometry = ctx.geometry();
    shard_geometry.blocks = full_scale ? 8 : 2;

    workload::WorkloadProfile profile =
        workload::profile_by_name("fiu-web-vm");
    profile.daily_page_ios = ctx.scaled(12000.0, 3000.0);

    struct FaultCase {
      const char* label;
      double latent_page_prob;
      double die_kill_day;  // < 0: no kill. Kill always targets shard 1.
      std::uint64_t pre_wear_pe;
    };
    const FaultCase cases[] = {
        {"none", 0.0, -1.0, 8000},
        {"latent=1e-3", 1e-3, -1.0, 8000},
        {"latent=1e-2", 1e-2, -1.0, 8000},
        {"die_kill(shard1,day1)", 0.0, 1.0, 8000},
        // No injected fault: wear alone pushes raw errors past the ECC,
        // so the recovery steps (retry, then RDR) do real work here.
        {"worn(pe=25000)", 0.0, -1.0, 25000},
    };

    struct CaseResult {
      std::string row;
      std::vector<std::string> shard_rows;
    };
    std::vector<CaseResult> results;
    for (const FaultCase& fc : cases) {
      cfg::DriveSpec drive;
      drive.backend = cfg::Backend::kShardedMc;
      drive.shards = kShards;
      drive.wordlines_per_block = shard_geometry.wordlines_per_block;
      drive.bitlines = shard_geometry.bitlines;
      drive.blocks = shard_geometry.blocks;
      // Pre-age like a characterization drive so the ECC sees realistic
      // raw error counts under the injected faults.
      drive.pre_wear_pe = fc.pre_wear_pe;
      drive.queue_count = 4;
      drive.faults.latent_page_prob = fc.latent_page_prob;
      if (fc.die_kill_day >= 0.0) {
        drive.faults.die_kill_shard = 1;
        drive.faults.die_kill_day = fc.die_kill_day;
      }
      const std::unique_ptr<host::Device> device_ptr =
          host::make_device(drive, drive_seed, workers);
      auto& device = static_cast<host::ShardedDevice&>(*device_ptr);

      workload::TraceGenerator gen(profile, device.logical_pages(),
                                   trace_seed, device.queue_count());
      host::ClosedLoopDriver driver(device, 4);
      for (int day = 0; day < days; ++day) {
        driver.run(gen.day_commands());
        device.end_of_day();
      }

      const host::CompletionStats& stats = device.stats();
      const host::ErrorStats es = device.error_stats();
      const std::uint64_t ladder_reads =
          es.reads_ok + es.reads_corrected + es.reads_retry_recovered +
          es.reads_rdr_recovered + es.reads_uncorrectable;
      const double recovered_share =
          ladder_reads == 0
              ? 0.0
              : static_cast<double>(es.reads_retry_recovered +
                                    es.reads_rdr_recovered) /
                    static_cast<double>(ladder_reads);

      CaseResult r;
      using host::Status;
      r.row = strf(
          "%s,%llu,%llu,%llu,%llu,%llu,%.4f,%.3e,%llu,%llu,%.3f,%.3f",
          fc.label,
          static_cast<unsigned long long>(ladder_reads),
          static_cast<unsigned long long>(stats.commands(Status::kOk)),
          static_cast<unsigned long long>(
              stats.commands(Status::kCorrected)),
          static_cast<unsigned long long>(
              stats.commands(Status::kRecovered)),
          static_cast<unsigned long long>(
              stats.commands(Status::kUncorrectable)),
          recovered_share,
          stats.uber(static_cast<double>(shard_geometry.bitlines)),
          static_cast<unsigned long long>(es.retry_attempts),
          static_cast<unsigned long long>(es.rdr_attempts),
          es.retry_seconds, es.rdr_seconds);
      for (std::uint32_t s = 0; s < device.shard_count(); ++s) {
        const host::ErrorStats se = device.shard_error_stats(s);
        r.shard_rows.push_back(strf(
            "%s,%u,%llu,%llu,%llu,%llu,%llu,%.3f,%.3f", fc.label, s,
            static_cast<unsigned long long>(se.reads_ok),
            static_cast<unsigned long long>(se.reads_corrected),
            static_cast<unsigned long long>(se.reads_retry_recovered),
            static_cast<unsigned long long>(se.reads_rdr_recovered),
            static_cast<unsigned long long>(se.reads_uncorrectable),
            se.retry_seconds, se.rdr_seconds));
      }
      results.push_back(std::move(r));
    }

    table.comment(
        "Section A: sharded MC drive (4 chips, pre-aged), latent-page and "
        "die-kill injection vs host-visible read outcomes");
    table.row(
        "fault,page_reads,cmd_ok,cmd_corrected,cmd_recovered,"
        "cmd_uncorrectable,recovered_share,uber,retry_attempts,"
        "rdr_attempts,retry_s,rdr_s");
    for (const auto& r : results) table.row(r.row);
    table.new_section();
    table.comment(
        "Per-shard ladder attribution (die kill lands on shard 1 only)");
    table.row(
        "fault,shard,reads_ok,corrected,retry_recovered,rdr_recovered,"
        "uncorrectable,retry_s,rdr_s");
    for (const auto& r : results)
      for (const auto& row : r.shard_rows) table.row(row);
  }

  // --- Section B: P/E failures on the analytic drive: grown defects eat
  // the spare pool, then the drive degrades to read-only.
  {
    const int max_days = full_scale ? 14 : 6;

    workload::WorkloadProfile profile =
        workload::profile_by_name("fiu-web-vm");
    profile.daily_page_ios = ctx.scaled(20000.0, 4000.0);
    profile.read_fraction = 0.2;  // Write-heavy: exercise the P/E path.

    const double fail_probs[] = {0.0, 1e-4, 1e-3, 1e-2};
    std::vector<std::string> rows;
    for (const double p : fail_probs) {
      cfg::DriveSpec drive;
      drive.backend = cfg::Backend::kAnalytic;
      drive.blocks = full_scale ? 256 : 64;
      drive.pages_per_block = full_scale ? 64 : 16;
      drive.overprovision = 0.25;
      drive.gc_free_target = 4;
      drive.spare_blocks = 2;  // Small defect budget: degradation is
                               // reachable within the replay.
      drive.queue_count = 4;
      drive.faults.program_fail_prob = p;
      drive.faults.erase_fail_prob = p;
      const std::unique_ptr<host::Device> device_ptr =
          host::make_device(drive, drive_seed, workers);
      auto& device = static_cast<host::SsdDevice&>(*device_ptr);

      workload::TraceGenerator gen(profile, device.logical_pages(),
                                   trace_seed, device.queue_count());
      host::ClosedLoopDriver driver(device, 4);
      int read_only_day = -1;
      for (int day = 0; day < max_days; ++day) {
        driver.run(gen.day_commands());
        device.end_of_day();
        if (device.ssd().ftl().read_only()) {
          read_only_day = day + 1;
          break;  // Permanent freeze: further days only reject writes.
        }
      }

      const ftl::FtlStats& fs = device.ssd().ftl().stats();
      const host::CompletionStats& stats = device.stats();
      using host::Status;
      rows.push_back(strf(
          "%g,%d,%llu,%llu,%llu,%u,%llu,%llu,%llu", p, read_only_day,
          static_cast<unsigned long long>(fs.host_writes),
          static_cast<unsigned long long>(fs.program_failures),
          static_cast<unsigned long long>(fs.erase_failures),
          device.ssd().ftl().retired_blocks(),
          static_cast<unsigned long long>(fs.defect_writes),
          static_cast<unsigned long long>(
              stats.commands(Status::kFailedWrite)),
          static_cast<unsigned long long>(
              stats.commands(Status::kReadOnly))));
    }

    table.new_section();
    table.comment(
        "Section B: analytic drive, P/E failure injection vs grown "
        "defects and time-to-read-only (spare_blocks=2; read_only_day=-1 "
        "means the drive outlived the replay)");
    table.row(
        "pe_fail_prob,read_only_day,host_writes,program_failures,"
        "erase_failures,retired_blocks,defect_writes,cmd_failed_write,"
        "cmd_read_only");
    for (const auto& row : rows) table.row(row);
  }

  return table;
}

}  // namespace rdsim::sim
