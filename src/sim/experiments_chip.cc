// Monte-Carlo chip experiments: the figures that drive the per-cell
// nand::Chip model. Independent measurement points (read counts, option
// values, ages) are sharded across the pool with per-shard Rng streams, so
// results are byte-identical for any --threads value. All wordline indices
// are derived from the geometry, so the same experiments run on
// Geometry::tiny() in the unit tests.
#include <cmath>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "core/rdr.h"
#include "core/rfr.h"
#include "core/vref_optimizer.h"
#include "dram/rowhammer.h"
#include "ecc/ecc_model.h"
#include "flash/rber_model.h"
#include "nand/chip.h"
#include "sim/experiments.h"

namespace rdsim::sim {
namespace {

/// The victim wordline the experiments observe; disturbs are addressed at
/// its sibling. Same mid-block position as the benches' wordline 30 of 64,
/// scaled to the geometry.
std::uint32_t mid_wl(const nand::Geometry& g) {
  return g.wordlines_per_block * 30 / 64;
}

/// A freshly programmed characterization block at `pe` P/E cycles.
/// Cheap to call per measurement point: programming is bookkeeping-only
/// and cells materialize lazily, so a point that senses one wordline pays
/// for one wordline — not the whole block (the experiments below rebuild
/// the same chip seed at every x-value precisely to isolate the dose).
nand::Chip make_aged_chip(const nand::Geometry& g,
                          const flash::FlashModelParams& params,
                          std::uint64_t seed, std::uint32_t pe) {
  nand::Chip chip(g, params, seed);
  auto& block = chip.block(0);
  block.add_wear(pe);
  block.program_random();
  return chip;
}

Histogram scan_distribution(const nand::Geometry& g, double reads,
                            std::uint64_t seed) {
  const auto params = flash::FlashModelParams::default_2ynm();
  nand::Chip chip = make_aged_chip(g, params, seed, 8000);
  auto& block = chip.block(0);
  Histogram hist(0.0, 520.0, 130);  // 4-unit bins, like the retry grid.
  const auto wls = block.geometry().wordlines_per_block;
  // Disturb all wordlines by addressing reads at a rotating sibling, then
  // scan a sample of wordlines.
  if (reads > 0) {
    for (std::uint32_t w = 0; w < wls; ++w) block.apply_reads(w, reads / wls);
  }
  for (std::uint32_t w = 0; w < wls; w += 4) {
    const auto scan = block.read_retry_scan(w, 0.0, 520.0, 2.0);
    for (const double v : scan) hist.add(v);
  }
  return hist;
}

}  // namespace

Table run_fig02(ExperimentContext& ctx) {
  const std::vector<double> read_counts = {0.0, 250e3, 500e3, 1e6};
  const nand::Geometry g = ctx.geometry();
  // One block measured at each disturb level: every shard rebuilds the
  // *same* chip (shared seed) so the distributions differ only by the
  // applied reads, exactly like the paper's repeated measurements.
  const std::uint64_t chip_seed = ctx.seed();
  const auto hists = ctx.map_seeded<Histogram>(
      read_counts.size(), [&](std::size_t i, Rng&) {
        return scan_distribution(g, read_counts[i], chip_seed);
      });

  Table table;
  table.comment(
      "Fig 2: Vth distribution before/after read disturb "
      "(8K P/E block, normalized scale, Vpass nominal = 512)");
  table.row("vth,pdf_0,pdf_250k,pdf_500k,pdf_1m");
  for (std::size_t i = 0; i < hists[0].bin_count(); ++i) {
    std::string row = strf("%.1f", hists[0].bin_center(i));
    for (const auto& h : hists) row += strf(",%.6g", h.pdf(i));
    table.row(row);
  }

  // Fig. 2b companion: mean ER-state voltage per read count (quantifies
  // the "shift increases with reads, larger for lower Vth" finding).
  table.new_section();
  table.comment("Fig 2b summary: ER-region (v < 105) mean Vth vs reads");
  table.row("reads,er_mean_vth");
  for (std::size_t k = 0; k < read_counts.size(); ++k) {
    double mass = 0.0, sum = 0.0;
    for (std::size_t i = 0; i < hists[k].bin_count(); ++i) {
      if (hists[k].bin_center(i) >= 105.0) break;
      sum += hists[k].bin_center(i) * hists[k].mass(i);
      mass += hists[k].mass(i);
    }
    table.row(
        strf("%.0f,%.2f", read_counts[k], mass > 0 ? sum / mass : 0.0));
  }
  return table;
}

Table run_fig09(ExperimentContext& ctx) {
  const auto params = flash::FlashModelParams::default_2ynm();
  const nand::Geometry g = ctx.geometry();
  Rng rng = ctx.next_stream();
  nand::Chip chip = make_aged_chip(g, params, rng.next(), 8000);
  auto& block = chip.block(0);
  // An early-block wordline, like the bench's wordline 10 of 64.
  const std::uint32_t wl = g.wordlines_per_block / 6;

  Table table;
  table.comment(strf("Fig 9: ER/P1 distributions before/after read disturb "
                     "(Va = %.0f)",
                     params.vref_a));

  const auto emit = [&](const char* tag) {
    Histogram er(0.0, 200.0, 100), p1(0.0, 200.0, 100);
    const auto scan = block.read_retry_scan(wl, 0.0, 520.0, 1.0);
    for (std::uint32_t bl = 0; bl < block.geometry().bitlines; ++bl) {
      const flash::CellState programmed = block.cell_state(wl, bl);
      if (programmed == flash::CellState::kEr)
        er.add(scan[bl]);
      else if (programmed == flash::CellState::kP1)
        p1.add(scan[bl]);
    }
    table.new_section();
    table.comment(tag);
    table.row("vth,pdf_er,pdf_p1");
    for (std::size_t i = 0; i < er.bin_count(); ++i)
      table.row(
          strf("%.0f,%.6g,%.6g", er.bin_center(i), er.pdf(i), p1.pdf(i)));
  };

  emit("(a) no read disturb");
  block.apply_reads(wl + 1, 1e6);
  emit("(b) after 1M read disturbs");
  return table;
}

Table run_fig10(ExperimentContext& ctx) {
  const auto params = flash::FlashModelParams::default_2ynm();
  const ecc::EccModel ecc{ecc::EccConfig::paper_provisioning()};
  const nand::Geometry g = ctx.geometry();
  // Page capability scaled to the geometry's page size; the
  // characterization chip's 8192-cell (16384-bit) wordline carries two
  // 1 KiB codewords.
  const int page_capability = std::max(
      1, static_cast<int>(std::lround(ecc.capability() * 2.0 *
                                      static_cast<double>(g.bitlines) /
                                      8192.0)));

  std::vector<double> read_counts;
  for (double reads = 0; reads <= 1e6 + 1; reads += 100e3)
    read_counts.push_back(reads);

  const std::uint32_t wl = mid_wl(g);
  // Each x-value is an independent measurement of the *same* block (the
  // chip is rebuilt from a shared seed per point), so the curve reflects
  // the disturb dose, not per-point sampling noise.
  const std::uint64_t chip_seed = ctx.seed();
  const auto rows = ctx.map_seeded<std::string>(
      read_counts.size(), [&](std::size_t i, Rng&) {
        const double reads = read_counts[i];
        nand::Chip chip = make_aged_chip(g, params, chip_seed, 8000);
        auto& block = chip.block(0);
        if (reads > 0) block.apply_reads(wl + 1, reads);

        const int lsb_errors = block.count_errors({wl, nand::PageKind::kLsb});
        const int msb_errors = block.count_errors({wl, nand::PageKind::kMsb});
        const double bits = 2.0 * block.geometry().bitlines;
        const double rber_before = (lsb_errors + msb_errors) / bits;

        const bool engaged = lsb_errors > page_capability ||
                             msb_errors > page_capability;
        double rber_after = rber_before;
        if (engaged) {
          const core::ReadDisturbRecovery rdr;
          const auto result = rdr.recover(block, wl);
          rber_after = result.rber_after();
        }
        return strf("%.0f,%.6g,%.6g,%.1f,%d", reads, rber_before, rber_after,
                    rber_before > 0
                        ? (1.0 - rber_after / rber_before) * 100.0
                        : 0.0,
                    engaged ? 1 : 0);
      });

  Table table;
  table.comment(
      "Fig 10: RBER vs read disturb count, no recovery vs RDR (8K P/E)");
  table.comment(strf("RDR engages when page errors exceed the ECC capability "
                     "(%d bits/page)",
                     page_capability));
  table.row("reads,rber_no_recovery,rber_rdr,reduction_pct,engaged");
  for (const auto& row : rows) table.row(row);
  return table;
}

Table run_ablation_rdr(ExperimentContext& ctx) {
  const nand::Geometry g = ctx.geometry();
  const std::uint32_t wl = mid_wl(g);
  // All option values operate on the same rebuilt block so the sweep
  // isolates the design choice from Monte-Carlo sampling noise.
  const std::uint64_t chip_seed = ctx.seed();
  const auto reduction_with = [&](const core::RdrOptions& options) {
    const auto params = flash::FlashModelParams::default_2ynm();
    nand::Chip chip = make_aged_chip(g, params, chip_seed, 8000);
    auto& block = chip.block(0);
    block.apply_reads(wl + 1, 1e6);
    const core::ReadDisturbRecovery rdr(options);
    const auto r = rdr.recover(block, wl);
    return (1.0 - r.rber_after() / r.rber_before()) * 100.0;
  };

  Table table;
  table.comment(
      "Ablation: RDR design choices (8K P/E, 1M disturbs; paper headline: "
      "36% reduction)");

  const auto sweep = [&](const char* title, const char* header,
                         const std::vector<double>& values, const char* fmt,
                         auto apply) {
    const auto rows = ctx.map_seeded<std::string>(
        values.size(), [&](std::size_t i, Rng&) {
          core::RdrOptions o;
          apply(o, values[i]);
          return strf(fmt, values[i], reduction_with(o));
        });
    table.new_section();
    table.comment(title);
    table.row(header);
    for (const auto& row : rows) table.row(row);
  };

  sweep("(a) classification threshold prone_factor",
        "prone_factor,rber_reduction_pct", {1.2, 1.6, 2.0, 2.5, 3.0},
        "%.1f,%.1f", [](core::RdrOptions& o, double v) { o.prone_factor = v; });
  sweep("(b) boundary window upper margin (units)",
        "upper_margin,rber_reduction_pct", {0.0, 3.0, 6.0, 12.0, 24.0},
        "%.0f,%.1f", [](core::RdrOptions& o, double v) { o.upper_margin = v; });
  sweep("(c) induced disturb count", "extra_reads,rber_reduction_pct",
        {25e3, 50e3, 100e3, 200e3, 400e3}, "%.0f,%.1f",
        [](core::RdrOptions& o, double v) { o.extra_reads = v; });
  sweep("(d) read-retry resolution", "retry_step,rber_reduction_pct",
        {0.25, 0.5, 1.0, 2.0, 4.0}, "%.2f,%.1f",
        [](core::RdrOptions& o, double v) { o.retry_step = v; });
  return table;
}

Table run_ext_mechanisms(ExperimentContext& ctx) {
  const auto planar = flash::FlashModelParams::default_2ynm();
  const nand::Geometry g = ctx.geometry();
  const std::uint32_t wl = mid_wl(g);

  Table table;
  table.comment("(a) RFR: retention-error recovery vs age (12K P/E)");
  table.row("age_days,rber_before,rber_after,reduction_pct");
  {
    const std::vector<double> ages = {10.0, 20.0, 40.0, 60.0};
    // Shared chip seed per section: the sweep variable (age, technology)
    // acts on the same rebuilt block, as in the original benches.
    const std::uint64_t chip_seed = ctx.seed();
    const auto rows = ctx.map_seeded<std::string>(
        ages.size(), [&](std::size_t i, Rng&) {
          nand::Chip chip = make_aged_chip(g, planar, chip_seed, 12000);
          auto& b = chip.block(0);
          b.advance_time(ages[i]);
          const auto r = core::RetentionFailureRecovery().recover(b, wl);
          return strf("%.0f,%.6g,%.6g,%.1f", ages[i], r.rber_before(),
                      r.rber_after(),
                      (1.0 - r.rber_after() / r.rber_before()) * 100.0);
        });
    for (const auto& row : rows) table.row(row);
  }

  table.new_section();
  table.comment(
      "(b) Vref optimization vs factory refs (8K P/E, aged + disturbed)");
  table.row("age_days,errors_default,errors_learned");
  {
    const std::vector<double> ages = {0.0, 7.0, 14.0, 21.0};
    const std::uint64_t chip_seed = ctx.seed();
    const auto rows = ctx.map_seeded<std::string>(
        ages.size(), [&](std::size_t i, Rng&) {
          nand::Chip chip = make_aged_chip(g, planar, chip_seed, 8000);
          auto& b = chip.block(0);
          b.advance_time(ages[i]);
          b.apply_reads(wl + 1, 3e5);
          const core::VrefOptimizer optimizer;
          const auto learned = optimizer.learn(b, wl);
          return strf("%.0f,%d,%d", ages[i],
                      core::VrefOptimizer::count_errors_with_refs(
                          b, wl, core::VrefOptimizer::defaults(b)),
                      core::VrefOptimizer::count_errors_with_refs(b, wl,
                                                                  learned));
        });
    for (const auto& row : rows) table.row(row);
  }

  table.new_section();
  table.comment("(c) planar 2Y-nm vs early 3D NAND read disturb");
  table.row("technology,slope_8k,errors_at_1m_reads");
  {
    const std::uint64_t chip_seed = ctx.seed();
    const auto rows = ctx.map_seeded<std::string>(2, [&](std::size_t i,
                                                         Rng&) {
      const bool is_3d = i == 1;
      const auto params =
          is_3d ? flash::FlashModelParams::early_3d_nand() : planar;
      const flash::RberModel model(params);
      nand::Chip chip = make_aged_chip(g, params, chip_seed, 8000);
      auto& b = chip.block(0);
      b.apply_reads(wl + 1, 1e6);
      return strf("%s,%.3g,%d", is_3d ? "3d-early" : "planar-2ynm",
                  model.disturb_slope(8000),
                  b.count_errors({wl, nand::PageKind::kMsb}));
    });
    for (const auto& row : rows) table.row(row);
  }

  table.new_section();
  table.comment(
      "(d) concentrated read disturb: errors by distance from the hammered "
      "wordline (boost=30, 300K reads)");
  table.row("distance,errors");
  {
    auto params = planar;
    params.neighbor_dose_boost = 30.0;
    Rng rng = ctx.next_stream();
    nand::Chip chip = make_aged_chip(g, params, rng.next(), 8000);
    auto& b = chip.block(0);
    const std::uint32_t hammered = wl + 1;
    b.apply_reads(hammered, 3e5);
    // The bench sampled wordlines 30,32,29,35,20,10 around hammered 31;
    // express those as offsets so the sweep fits any geometry.
    for (const int offset : {-1, 1, -2, 4, -11, -21}) {
      const int w = static_cast<int>(hammered) + offset;
      if (w < 0 || w >= static_cast<int>(g.wordlines_per_block)) continue;
      table.row(strf("%d,%d", std::abs(offset),
                     b.count_errors({static_cast<std::uint32_t>(w),
                                     nand::PageKind::kMsb})));
    }
  }

  table.new_section();
  table.comment("(e) PARA: RowHammer error scale vs refresh probability");
  table.row("para_probability,error_scale");
  for (const double p : {0.0, 1e-6, 1e-5, 5e-5, 1e-4, 2e-4, 1e-3}) {
    table.row(strf("%.0e,%.4g", p, dram::para_error_scale(p)));
  }
  return table;
}

}  // namespace rdsim::sim
