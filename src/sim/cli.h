// rdsim/sim/cli.h
//
// Shared command-line handling for the experiment driver (tools/rdsim)
// and the per-figure bench binaries. Both speak the same flag set, so
// `fig03_rber_vs_pe --threads 4 --seed 7` and
// `rdsim --experiment fig03 --threads 4 --seed 7` run the identical code
// path; CSV files land under --out-dir (default ./out/) instead of being
// scattered into the working directory.
#pragma once

#include <string>

#include "sim/experiment.h"
#include "sim/table.h"

namespace rdsim::sim {

struct CliOptions {
  ExperimentConfig config;
  std::string experiment;      ///< --experiment NAME (driver only).
  std::string out_dir = "out"; ///< --out-dir DIR.
  std::string csv_path;        ///< --csv [PATH]; empty = not requested.
  bool csv_requested = false;  ///< --csv seen (path may be defaulted).
  bool no_file = false;        ///< --no-file: stdout only.
  bool quiet = false;          ///< --quiet: suppress the stdout table.
  bool list = false;           ///< --list: print the experiment registry.
  bool list_profiles = false;  ///< --list-profiles: built-in scenarios.
  bool help = false;           ///< --help.
  bool scale_set = false;      ///< An explicit --scale overrides --tiny.
  std::string error;           ///< Non-empty on a parse failure.
};

/// Parses argv[1..]; unknown flags land in `error`. `allow_experiment`
/// enables the driver-only --experiment/--list flags.
CliOptions parse_cli(int argc, char** argv, bool allow_experiment);

/// The flag summary printed by --help and on parse errors.
const char* cli_flag_help();

/// Default CSV path for an experiment: <out_dir>/<name>.csv.
std::string default_csv_path(const CliOptions& options,
                             const std::string& name);

/// Writes the table to `path`, creating parent directories. Returns false
/// (with a message on stderr) when the file cannot be written.
bool write_csv_file(const std::string& path, const Table& table);

}  // namespace rdsim::sim
