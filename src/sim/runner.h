// rdsim/sim/runner.h
//
// Thread-pooled, deterministic experiment execution. The pool machinery
// itself lives in common/thread_pool.h (it is shared with the host
// layer's ShardedDevice); ExperimentRunner is the experiment layer's name
// for it. Determinism contract: each shard i must depend only on its
// index (experiments seed shard randomness with Rng::stream(seed, i)),
// and map() returns results in index order — so the merged output of a
// run is byte-identical no matter how many threads executed it or how
// the OS scheduled them.
#pragma once

#include "common/thread_pool.h"

namespace rdsim::sim {

using ExperimentRunner = ::rdsim::ThreadPool;

}  // namespace rdsim::sim
