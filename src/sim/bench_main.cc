#include "sim/bench_main.h"

#include <cstdio>
#include <exception>
#include <iostream>

#include "sim/cli.h"

namespace rdsim::sim {

int bench_main(const char* name, int argc, char** argv) {
  CliOptions options = parse_cli(argc, argv, /*allow_experiment=*/false);
  if (options.help) {
    std::printf("usage: %s [flags]\n\nFlags:\n%s", name, cli_flag_help());
    return 0;
  }
  if (!options.error.empty()) {
    std::fprintf(stderr, "%s: %s\nFlags:\n%s", name, options.error.c_str(),
                 cli_flag_help());
    return 2;
  }
  const ExperimentInfo* info = find_experiment(name);
  if (info == nullptr) {
    std::fprintf(stderr, "%s: experiment not registered\n", name);
    return 2;
  }
  try {
    const Table table = run_experiment(*info, options.config);
    if (!options.quiet) table.write(std::cout);
    if (!options.no_file) {
      const std::string path = options.csv_path.empty()
                                   ? default_csv_path(options, info->name)
                                   : options.csv_path;
      if (!write_csv_file(path, table)) return 1;
      std::fprintf(stderr, "%s: wrote %s\n", name, path.c_str());
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: %s\n", name, e.what());
    return 1;
  }
  return 0;
}

}  // namespace rdsim::sim
