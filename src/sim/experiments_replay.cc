// fig_trace_replay: the checked-in MSR-Cambridge sample trace
// (tests/data/msr_cambridge_sample.csv) replayed through the analytic
// and sharded Monte Carlo backends, open- and closed-loop — the "what
// does mitigation + ECC escalation cost on real traffic?" view the paper
// motivates. Section 1 summarizes each (backend, mode) combo with
// per-status completion counts (PR 7's error path) and read percentiles;
// sections 2 and 3 drill into the sharded-MC open-loop run with the full
// read-latency CDF and moving windowed percentiles from
// replay::LatencyTracker. Golden-pinned: every number derives from
// simulated clocks and counter-based RNG streams, so the table is
// byte-identical at any worker count.
#include <fstream>
#include <iterator>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "cfg/spec.h"
#include "common/datafile.h"
#include "host/driver.h"
#include "host/factory.h"
#include "replay/latency.h"
#include "replay/replayer.h"
#include "sim/experiments.h"

namespace rdsim::sim {

namespace {

/// One (backend, mode) replay pass over the sample trace. The tracker
/// must outlive the call (sections 2/3 read it after the loop).
replay::ReplaySummary replay_combo(host::Device& device,
                                   const std::string& trace_path,
                                   replay::ReplayMode mode, double speedup,
                                   replay::LatencyTracker* tracker) {
  std::ifstream file(trace_path);
  if (!file)
    throw std::runtime_error("cannot open trace file '" + trace_path + "'");
  replay::ReplayOptions opts;
  opts.format = replay::TraceFormat::kMsr;
  opts.remap = replay::RemapPolicy::kHash;
  opts.mode = mode;
  opts.queue_depth = 8;
  opts.speedup = speedup;
  opts.window = 64;  // Exercise the streaming path: 200 records, 4 chunks.
  return replay::replay_trace(file, device, opts, tracker);
}

}  // namespace

Table run_fig_trace_replay(ExperimentContext& ctx) {
  const std::string trace_path =
      find_test_data("msr_cambridge_sample.csv");
  if (trace_path.empty())
    throw std::runtime_error(
        "cannot locate tests/data/msr_cambridge_sample.csv (set "
        "RDSIM_DATA_DIR or run from the repo/build tree)");

  const bool full_scale = ctx.scale() >= 1.0;
  // The sample spans ~116 s of light traffic; compressing 50x forces
  // arrivals into the flash service times so open-loop queueing (and the
  // moving-percentile windows) have something to show.
  const double kSpeedup = 50.0;
  const double kWindowS = 0.5;
  const std::uint64_t drive_seed = 19 + (ctx.seed() - 42);
  const int workers = ctx.runner().thread_count();

  struct Combo {
    const char* backend;
    replay::ReplayMode mode;
  };
  const Combo combos[] = {
      {"analytic", replay::ReplayMode::kOpen},
      {"analytic", replay::ReplayMode::kClosed},
      {"sharded_mc", replay::ReplayMode::kOpen},
      {"sharded_mc", replay::ReplayMode::kClosed},
  };

  Table table;
  table.comment(
      "Trace replay: MSR sample (200 records, hash remap) vs backend and "
      "replay discipline; per-status counts from the ECC/retry/RDR error "
      "path");
  table.row(
      "backend,mode,commands,reads,writes,ok,corrected,recovered,"
      "uncorrectable,read_p50_us,read_p99_us,read_p999_us,stall_s");

  // Trackers live here so the sharded-MC open-loop one feeds sections
  // 2/3 after the summary loop. The drives run serially: the sharded
  // backend owns the worker pool for its shards, same as fig_qos_mc.
  std::vector<replay::LatencyTracker> trackers;
  trackers.reserve(std::size(combos));
  const replay::LatencyTracker* detail = nullptr;

  for (const Combo& combo : combos) {
    cfg::DriveSpec drive;
    if (std::string_view(combo.backend) == "analytic") {
      drive.backend = cfg::Backend::kAnalytic;
      drive.blocks = full_scale ? 512 : 64;
      drive.pages_per_block = full_scale ? 128 : 32;
      drive.overprovision = 0.2;
      drive.gc_free_target = 4;
    } else {
      nand::Geometry shard_geometry = ctx.geometry();
      shard_geometry.blocks = full_scale ? 4 : 2;
      drive.backend = cfg::Backend::kShardedMc;
      drive.shards = 4;
      drive.wordlines_per_block = shard_geometry.wordlines_per_block;
      drive.bitlines = shard_geometry.bitlines;
      drive.blocks = shard_geometry.blocks;
      drive.pre_wear_pe = 8000;
    }
    drive.queue_count = 4;
    const std::unique_ptr<host::Device> device =
        host::make_device(drive, drive_seed, workers);
    if (drive.is_analytic()) host::warm_fill(*device);

    trackers.emplace_back(kWindowS, 1e5, 20000);
    replay::LatencyTracker& tracker = trackers.back();
    const replay::ReplaySummary summary = replay_combo(
        *device, trace_path, combo.mode, kSpeedup, &tracker);
    if (drive.backend == cfg::Backend::kShardedMc &&
        combo.mode == replay::ReplayMode::kOpen)
      detail = &tracker;

    table.row(strf(
        "%s,%s,%llu,%llu,%llu,%llu,%llu,%llu,%llu,%.1f,%.1f,%.1f,%.6f",
        combo.backend, std::string(name(combo.mode)).c_str(),
        static_cast<unsigned long long>(summary.commands),
        static_cast<unsigned long long>(summary.reads),
        static_cast<unsigned long long>(summary.writes),
        static_cast<unsigned long long>(summary.status_counts[0]),
        static_cast<unsigned long long>(summary.status_counts[1]),
        static_cast<unsigned long long>(summary.status_counts[2]),
        static_cast<unsigned long long>(summary.status_counts[3]),
        tracker.read_quantile_us(0.50), tracker.read_quantile_us(0.99),
        tracker.read_quantile_us(0.999), summary.stall_seconds));
  }

  table.new_section();
  table.comment(
      "Read-latency CDF, sharded_mc open-loop (one point per non-empty "
      "5us bin; Histogram::cdf_points upper-edge convention)");
  table.row("latency_us,cum_fraction");
  for (const auto& p :
       detail->histogram(host::CommandKind::kRead).cdf_points())
    table.row(strf("%.1f,%.6f", p.value, p.fraction));

  table.new_section();
  table.comment(strf(
      "Moving read percentiles, sharded_mc open-loop (%.0f ms windows of "
      "simulated time from replay start)",
      kWindowS * 1e3));
  table.row("window_start_s,reads,p50_us,p99_us,p999_us");
  for (const replay::WindowRow& w : detail->window_rows())
    table.row(strf("%.3f,%llu,%.1f,%.1f,%.1f", w.window_start_s,
                   static_cast<unsigned long long>(w.reads), w.p50_us,
                   w.p99_us, w.p999_us));
  return table;
}

}  // namespace rdsim::sim
