// rdsim/sim/experiments.h
//
// Internal declarations of the individual experiment functions, grouped by
// the machinery they exercise:
//   * analytic  — closed-form RberModel / EnduranceEvaluator sweeps;
//   * chip      — Monte-Carlo nand::Chip experiments;
//   * system    — whole-SSD trace replay and the DRAM RowHammer figures.
// The registry in experiment.cc stitches these into the public list.
#pragma once

#include "sim/experiment.h"

namespace rdsim::sim {

// experiments_analytic.cc
Table run_fig03(ExperimentContext& ctx);
Table run_fig04(ExperimentContext& ctx);
Table run_fig05(ExperimentContext& ctx);
Table run_fig06(ExperimentContext& ctx);
Table run_fig07(ExperimentContext& ctx);
Table run_ablation_tuning(ExperimentContext& ctx);
Table run_mitigation_compare(ExperimentContext& ctx);
Table run_overheads(ExperimentContext& ctx);

// experiments_chip.cc
Table run_fig02(ExperimentContext& ctx);
Table run_fig09(ExperimentContext& ctx);
Table run_fig10(ExperimentContext& ctx);
Table run_ablation_rdr(ExperimentContext& ctx);
Table run_ext_mechanisms(ExperimentContext& ctx);

// experiments_reliability.cc
Table run_fig_reliability(ExperimentContext& ctx);

// experiments_replay.cc
Table run_fig_trace_replay(ExperimentContext& ctx);

// experiments_scenario.cc
Table run_scenario(ExperimentContext& ctx);

/// Fleet lifetime runner: lifecycle trajectories + checkpoint/resume.
Table run_fig_fleet(ExperimentContext& ctx);

// experiments_tenants.cc
Table run_fig_qos_tenants(ExperimentContext& ctx);

// experiments_system.cc
Table run_fig08(ExperimentContext& ctx);
Table run_fig_qos(ExperimentContext& ctx);
Table run_fig_qos_mc(ExperimentContext& ctx);
Table run_fig11(ExperimentContext& ctx);
Table run_fig12(ExperimentContext& ctx);

}  // namespace rdsim::sim
