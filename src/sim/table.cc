#include "sim/table.h"

#include <cstdarg>
#include <cstdio>
#include <sstream>

namespace rdsim::sim {

std::string strf(const char* format, ...) {
  va_list args;
  va_start(args, format);
  va_list copy;
  va_copy(copy, args);
  const int needed = std::vsnprintf(nullptr, 0, format, copy);
  va_end(copy);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed));
    // +1: vsnprintf writes the terminator into the buffer; std::string
    // guarantees data()[size()] is addressable for exactly that byte.
    std::vsnprintf(out.data(), static_cast<std::size_t>(needed) + 1, format,
                   args);
  }
  va_end(args);
  return out;
}

Table::Section& Table::new_section() {
  sections_.emplace_back();
  return sections_.back();
}

Table::Section& Table::current() {
  if (sections_.empty()) sections_.emplace_back();
  return sections_.back();
}

void Table::comment(std::string line) {
  current().comments.push_back(std::move(line));
}

void Table::row(std::string line) { current().rows.push_back(std::move(line)); }

bool Table::empty() const {
  for (const auto& s : sections_)
    if (!s.comments.empty() || !s.rows.empty()) return false;
  return true;
}

void Table::write(std::ostream& out) const {
  bool first = true;
  for (const auto& s : sections_) {
    if (!first) out << '\n';
    first = false;
    for (const auto& c : s.comments) out << "# " << c << '\n';
    for (const auto& r : s.rows) out << r << '\n';
  }
}

std::string Table::to_csv() const {
  std::ostringstream ss;
  write(ss);
  return ss.str();
}

}  // namespace rdsim::sim
