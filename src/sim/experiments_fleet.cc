// fig_fleet: the fleet-scale lifetime experiment over src/fleet. N
// config-driven analytic drives run for a multi-year horizon with
// lifecycle tracking (healthy -> degraded -> read-only -> replaced),
// per-drive fault rates drawn from fleet-level distributions, and
// sampled Monte Carlo teardown drives cross-checking the analytic RBER.
// The robustness path rides the same experiment: --checkpoint/-every
// write periodic whole-fleet checkpoints, --resume continues a killed
// run byte-identically, and the driver's SIGINT/SIGTERM flag turns into
// a final checkpoint + clean exit (fleet::Interrupted).
#include <algorithm>
#include <cmath>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "cfg/config.h"
#include "cfg/spec.h"
#include "fleet/checkpoint.h"
#include "fleet/fleet.h"
#include "sim/experiments.h"
#include "workload/profiles.h"

namespace rdsim::sim {

namespace {

/// The built-in fleet scenario the golden CRC pins: small drives with a
/// 2-block spare budget (so lifecycle transitions happen inside the
/// horizon), lognormally spread P/E fault rates, every 4th drive a
/// teardown drive. Volume knobs scale with the context.
cfg::ScenarioSpec default_fleet_spec(ExperimentContext& ctx) {
  cfg::ScenarioSpec spec;
  spec.name = "fig_fleet";
  spec.drive.backend = cfg::Backend::kAnalytic;
  spec.drive.blocks = 64;
  spec.drive.pages_per_block = 16;
  spec.drive.overprovision = 0.25;
  spec.drive.gc_free_target = 4;
  spec.drive.spare_blocks = 2;
  spec.drive.queue_count = 1;
  spec.workload.profile = workload::profile_by_name("fiu-web-vm");
  spec.workload.profile.daily_page_ios = ctx.scaled(20000.0, 4000.0);
  spec.workload.profile.read_fraction = 0.3;  // Write-heavy: exercises
                                              // the P/E fault path.
  const std::uint32_t horizon =
      static_cast<std::uint32_t>(ctx.scaled(360.0, 30.0));
  spec.fleet.drives = static_cast<std::uint32_t>(ctx.scaled(96.0, 12.0));
  spec.fleet.years = static_cast<double>(horizon) / 365.0;
  spec.fleet.report_interval_days = std::max<std::uint32_t>(1, horizon / 6);
  spec.fleet.teardown_every = 4;
  spec.fleet.pe_fail_prob_median = 2e-4;
  spec.fleet.fault_rate_sigma = 0.8;
  spec.fleet.replace_failed = true;
  spec.fleet.rebuild_days = 1.0;
  return spec;
}

cfg::ScenarioSpec fleet_spec_from_config(const std::string& path) {
  std::vector<cfg::Diagnostic> diags;
  cfg::Config config = cfg::Config::parse_file(path, &diags);
  cfg::ScenarioSpec spec;
  if (diags.empty()) spec = cfg::parse_scenario(config, &diags);
  if (!diags.empty())
    throw std::runtime_error("invalid fleet config '" + path + "':\n" +
                             cfg::format_diagnostics(diags));
  if (!spec.fleet.enabled())
    throw std::runtime_error("config '" + path +
                             "' has no [fleet] section; fig_fleet needs "
                             "fleet.drives");
  return spec;
}

}  // namespace

Table run_fig_fleet(ExperimentContext& ctx) {
  std::unique_ptr<fleet::FleetRunner> runner;
  if (!ctx.fleet_resume().empty()) {
    std::string error;
    runner = fleet::FleetRunner::from_checkpoint_file(ctx.fleet_resume(),
                                                      ctx.runner(), &error);
    if (runner == nullptr)
      throw std::runtime_error("cannot resume from '" + ctx.fleet_resume() +
                               "': " + error);
    // An explicit --config alongside --resume must describe the same
    // run; a drifted config is a config-mismatch rejection, not a
    // silent override.
    if (!ctx.scenario_config().empty()) {
      const cfg::ScenarioSpec given =
          fleet_spec_from_config(ctx.scenario_config());
      if (fleet::FleetRunner::canonical_config(given) !=
          fleet::FleetRunner::canonical_config(runner->spec()))
        throw std::runtime_error(
            "cannot resume from '" + ctx.fleet_resume() + "': --config " +
            ctx.scenario_config() +
            " does not match the configuration the checkpoint was taken "
            "under");
    }
  } else {
    const cfg::ScenarioSpec spec =
        ctx.scenario_config().empty()
            ? default_fleet_spec(ctx)
            : fleet_spec_from_config(ctx.scenario_config());
    runner = std::make_unique<fleet::FleetRunner>(spec, ctx.seed(),
                                                  ctx.runner());
  }

  fleet::FleetOptions options;
  options.checkpoint_path = ctx.fleet_checkpoint();
  options.checkpoint_every = ctx.fleet_checkpoint_every();
  options.stop_flag = ctx.stop_flag();
  options.stop_after_checkpoints = ctx.fleet_stop_after();
  return fleet::run_fleet(*runner, options);
}

}  // namespace rdsim::sim
