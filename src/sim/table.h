// rdsim/sim/table.h
//
// Sectioned result tables for experiments. Every experiment returns a
// Table: an ordered list of sections, each holding comment lines and CSV
// rows. The textual form is exactly what the original per-figure bench
// binaries printed — '#'-prefixed comments, a header row, data rows,
// blank lines between sections — so a Table can be streamed to stdout,
// written to a .csv file, or compared byte-for-byte in determinism tests.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace rdsim::sim {

/// printf-style formatting into a std::string (the experiments reproduce
/// the benches' exact printf formats when building rows).
std::string strf(const char* format, ...)
    __attribute__((format(printf, 1, 2)));

class Table {
 public:
  struct Section {
    std::vector<std::string> comments;  ///< Lines without the leading '#'.
    std::vector<std::string> rows;      ///< CSV lines (header first).
  };

  /// Starts a new section (the first call on an empty table is implicit:
  /// comment()/row() open section 0 on demand).
  Section& new_section();

  /// Appends a comment line to the current section.
  void comment(std::string line);

  /// Appends a CSV row to the current section.
  void row(std::string line);

  const std::vector<Section>& sections() const { return sections_; }
  bool empty() const;

  /// Writes the table: '# ' comments, rows, a blank line before every
  /// section after the first.
  void write(std::ostream& out) const;

  /// The full textual form (what write() emits).
  std::string to_csv() const;

 private:
  Section& current();
  std::vector<Section> sections_;
};

}  // namespace rdsim::sim
