#include "sim/cli.h"

#include <cerrno>
#include <climits>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string_view>

namespace rdsim::sim {
namespace {

/// True when `arg` matches `flag` and a value argument follows.
bool take_value(int argc, char** argv, int& i, std::string_view flag,
                std::string& value, CliOptions& options) {
  if (std::string_view(argv[i]) != flag) return false;
  if (i + 1 >= argc) {
    options.error = std::string(flag) + " requires a value";
    return true;
  }
  value = argv[++i];
  return true;
}

// Strict numeric parsers: trailing garbage is an error, not silently
// dropped ("--seed 4Z" must not run as seed 4).
bool parse_u64(const std::string& s, std::uint64_t* out) {
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 0);
  if (end == s.c_str() || *end != '\0' || errno == ERANGE) return false;
  *out = v;
  return true;
}

bool parse_int(const std::string& s, int* out) {
  char* end = nullptr;
  errno = 0;
  const long v = std::strtol(s.c_str(), &end, 10);
  if (end == s.c_str() || *end != '\0' || errno == ERANGE ||
      v < INT_MIN || v > INT_MAX)
    return false;
  *out = static_cast<int>(v);
  return true;
}

bool parse_double(const std::string& s, double* out) {
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(s.c_str(), &end);
  if (end == s.c_str() || *end != '\0' || errno == ERANGE) return false;
  *out = v;
  return true;
}

}  // namespace

CliOptions parse_cli(int argc, char** argv, bool allow_experiment) {
  CliOptions options;
  for (int i = 1; i < argc && options.error.empty(); ++i) {
    const std::string_view arg = argv[i];
    std::string value;
    if (take_value(argc, argv, i, "--seed", value, options)) {
      if (options.error.empty() && !parse_u64(value, &options.config.seed))
        options.error = "--seed needs an unsigned integer, got '" + value +
                        "'";
    } else if (take_value(argc, argv, i, "--threads", value, options)) {
      if (options.error.empty() &&
          (!parse_int(value, &options.config.threads) ||
           options.config.threads < 1))
        options.error = "--threads must be an integer >= 1, got '" + value +
                        "'";
    } else if (take_value(argc, argv, i, "--out-dir", value, options)) {
      if (options.error.empty()) options.out_dir = value;
    } else if (take_value(argc, argv, i, "--scale", value, options)) {
      if (options.error.empty()) {
        if (!parse_double(value, &options.config.scale) ||
            options.config.scale <= 0.0) {
          options.error = "--scale must be a number > 0, got '" + value + "'";
        } else {
          options.scale_set = true;
        }
      }
    } else if (arg == "--tiny") {
      options.config.geometry = nand::Geometry::tiny();
      if (!options.scale_set) options.config.scale = 0.02;
    } else if (arg == "--csv") {
      options.csv_requested = true;
      // Optional value: consume the next argument unless it is a flag.
      if (i + 1 < argc && argv[i + 1][0] != '-') options.csv_path = argv[++i];
    } else if (take_value(argc, argv, i, "--config", value, options)) {
      if (options.error.empty()) options.config.scenario_config = value;
    } else if (take_value(argc, argv, i, "--profile", value, options)) {
      if (options.error.empty()) options.config.scenario_profile = value;
    } else if (take_value(argc, argv, i, "--trace", value, options)) {
      if (options.error.empty()) options.config.scenario_trace = value;
    } else if (take_value(argc, argv, i, "--resume", value, options)) {
      if (options.error.empty()) options.config.fleet_resume = value;
    } else if (take_value(argc, argv, i, "--checkpoint", value, options)) {
      if (options.error.empty()) options.config.fleet_checkpoint = value;
    } else if (take_value(argc, argv, i, "--checkpoint-every", value,
                          options)) {
      std::uint64_t every = 0;
      if (options.error.empty() && (!parse_u64(value, &every) || every == 0 ||
                                    every > 100000))
        options.error =
            "--checkpoint-every must be an integer in [1, 100000], got '" +
            value + "'";
      else if (options.error.empty())
        options.config.fleet_checkpoint_every =
            static_cast<std::uint32_t>(every);
    } else if (take_value(argc, argv, i, "--stop-after-checkpoints", value,
                          options)) {
      std::uint64_t count = 0;
      if (options.error.empty() && (!parse_u64(value, &count) || count == 0 ||
                                    count > 100000))
        options.error = "--stop-after-checkpoints must be an integer in "
                        "[1, 100000], got '" + value + "'";
      else if (options.error.empty())
        options.config.fleet_stop_after = static_cast<std::uint32_t>(count);
    } else if (arg == "--list-profiles") {
      options.list_profiles = true;
    } else if (arg == "--no-file") {
      options.no_file = true;
    } else if (arg == "--quiet") {
      options.quiet = true;
    } else if (arg == "--help" || arg == "-h") {
      options.help = true;
    } else if (allow_experiment &&
               take_value(argc, argv, i, "--experiment", value, options)) {
      if (options.error.empty()) options.experiment = value;
    } else if (allow_experiment && arg == "--list") {
      options.list = true;
    } else {
      options.error = "unknown flag: " + std::string(arg);
    }
  }
  return options;
}

const char* cli_flag_help() {
  return
      "  --seed S        base seed for all random streams (default 42)\n"
      "  --threads N     worker threads; results are identical for any N\n"
      "  --out-dir DIR   directory for CSV output (default ./out)\n"
      "  --csv [PATH]    write the CSV (default PATH <out-dir>/<name>.csv);\n"
      "                  the rdsim driver then keeps the table off stdout.\n"
      "                  Bench binaries always write their CSV unless\n"
      "                  --no-file is given\n"
      "  --no-file       print to stdout only, write no file\n"
      "  --quiet         suppress the stdout table\n"
      "  --tiny          tiny chip geometry + 0.02 scale (fast smoke run)\n"
      "  --scale X       volume multiplier for SSD/DRAM experiments\n"
      "  --config PATH   scenario config file for the `scenario`\n"
      "                  experiment (see docs/CONFIG.md); a bad config\n"
      "                  exits non-zero listing every problem by key\n"
      "  --profile NAME  built-in scenario profile (see --list-profiles);\n"
      "                  --config wins when both are given\n"
      "  --trace PATH    trace file (MSR-Cambridge or rdsim CSV) the\n"
      "                  `scenario` experiment replays instead of its\n"
      "                  generated workload; overrides any [trace] path in\n"
      "                  the config (see docs/CONFIG.md [trace])\n"
      "  --list-profiles list the built-in scenario profiles\n"
      "  --resume PATH   continue a fleet run from a checkpoint written by\n"
      "                  an earlier `fig_fleet` run; self-contained (the\n"
      "                  config and seed come from the checkpoint), and the\n"
      "                  resumed output is byte-identical to an\n"
      "                  uninterrupted run. Corrupt, truncated or\n"
      "                  mismatched checkpoints are rejected with a\n"
      "                  diagnostic, never silently restored\n"
      "  --checkpoint PATH\n"
      "                  where fleet checkpoints are written\n"
      "                  (default fleet.ckpt); files land atomically via\n"
      "                  temp file + rename\n"
      "  --checkpoint-every N\n"
      "                  write a checkpoint every N reporting epochs\n"
      "                  during `fig_fleet` (overrides the config's\n"
      "                  fleet.checkpoint_every). Ctrl-C (SIGINT/SIGTERM)\n"
      "                  always writes a final checkpoint and exits\n"
      "                  cleanly with resume instructions\n"
      "  --stop-after-checkpoints N\n"
      "                  stop the fleet run right after the N-th periodic\n"
      "                  checkpoint, exactly as if interrupted (used by CI\n"
      "                  for deterministic kill-and-resume smokes)\n"
      "  --help          this text\n";
}

std::string default_csv_path(const CliOptions& options,
                             const std::string& name) {
  return (std::filesystem::path(options.out_dir) / (name + ".csv")).string();
}

bool write_csv_file(const std::string& path, const Table& table) {
  std::error_code ec;
  const auto parent = std::filesystem::path(path).parent_path();
  if (!parent.empty()) std::filesystem::create_directories(parent, ec);
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "rdsim: cannot write %s\n", path.c_str());
    return false;
  }
  table.write(out);
  return out.good();
}

}  // namespace rdsim::sim
