// Closed-form experiments: sweeps over the analytic RberModel and the
// EnduranceEvaluator. These have no Monte-Carlo randomness; they are cheap
// enough to run serially and are deterministic by construction.
#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "common/stats.h"
#include "core/endurance.h"
#include "core/overheads.h"
#include "ecc/ecc_model.h"
#include "flash/rber_model.h"
#include "sim/experiments.h"

namespace rdsim::sim {

Table run_fig03(ExperimentContext&) {
  const auto params = flash::FlashModelParams::default_2ynm();
  const flash::RberModel model(params);
  const std::vector<double> pe_levels = {2000, 3000, 4000, 5000,
                                         8000, 10000, 15000};
  const std::vector<double> paper_slopes = {1.00e-9, 1.63e-9, 2.37e-9,
                                            3.74e-9, 7.50e-9, 9.10e-9,
                                            1.90e-8};
  // Characterization conditions: short retention age, nominal Vpass.
  const double age_days = 0.5;
  const double vpass = params.vpass_nominal;

  Table table;
  table.comment("Fig 3: RBER vs read disturb count at 2K-15K P/E");
  std::string header = "reads";
  for (const double pe : pe_levels) header += strf(",pe_%.0fk", pe / 1000);
  table.row(header);

  std::vector<std::vector<double>> series(pe_levels.size());
  std::vector<double> xs;
  for (double reads = 0; reads <= 100e3; reads += 10e3) {
    xs.push_back(reads);
    std::string row = strf("%.0f", reads);
    for (std::size_t i = 0; i < pe_levels.size(); ++i) {
      const double rber =
          model.total_rber({pe_levels[i], age_days, reads, vpass});
      series[i].push_back(rber);
      row += strf(",%.6g", rber);
    }
    table.row(row);
  }

  table.new_section();
  table.comment("Slope table (RBER per read), fitted vs paper");
  table.row("pe_cycles,fitted_slope,paper_slope,error_pct");
  for (std::size_t i = 0; i < pe_levels.size(); ++i) {
    const auto fit = fit_line(xs, series[i]);
    const double err = (fit.slope - paper_slopes[i]) / paper_slopes[i] * 100.0;
    table.row(strf("%.0f,%.3g,%.3g,%+.1f", pe_levels[i], fit.slope,
                   paper_slopes[i], err));
  }
  return table;
}

Table run_fig04(ExperimentContext&) {
  const auto params = flash::FlashModelParams::default_2ynm();
  const flash::RberModel model(params);
  const double pe = 8000.0;
  const double age = 0.5;
  const std::vector<double> fractions = {0.94, 0.95, 0.96, 0.97,
                                         0.98, 0.99, 1.00};

  Table table;
  table.comment(
      "Fig 4: RBER vs read disturb count for relaxed Vpass (8K P/E)");
  std::string header = "reads";
  for (const double f : fractions) header += strf(",vpass_%.0f%%", f * 100);
  table.row(header);
  for (double lg = 4.0; lg <= 9.0 + 1e-9; lg += 0.25) {
    const double reads = std::pow(10.0, lg);
    std::string row = strf("%.4g", reads);
    for (const double f : fractions) {
      const double vpass = params.vpass_nominal * f;
      const double rber = model.base_rber(pe) + model.retention_rber(pe, age) +
                          model.disturb_rber(pe, reads, vpass);
      row += strf(",%.6g", rber);
    }
    table.row(row);
  }

  const double at100k_nominal = model.base_rber(pe) +
                                model.retention_rber(pe, age) +
                                model.disturb_rber(pe, 100e3,
                                                   params.vpass_nominal);
  const double at100k_98 =
      model.base_rber(pe) + model.retention_rber(pe, age) +
      model.disturb_rber(pe, 100e3, params.vpass_nominal * 0.98);
  table.new_section();
  table.comment("Headline check: RBER at 100K reads, 100% vs 98% Vpass");
  table.row("rber_100pct,rber_98pct,reduction_pct");
  table.row(strf("%.6g,%.6g,%.1f", at100k_nominal, at100k_98,
                 (1.0 - at100k_98 / at100k_nominal) * 100.0));

  // Iso-RBER tolerable read counts: "a decrease in Vpass exponentially
  // increases the number of tolerable read disturbs".
  table.new_section();
  table.comment("Tolerable reads before RBER reaches 1.5e-3, by Vpass");
  table.row("vpass_pct,tolerable_reads");
  const double target = 1.5e-3;
  for (const double f : fractions) {
    const double vpass = params.vpass_nominal * f;
    const double fixed = model.base_rber(pe) + model.retention_rber(pe, age);
    const double per_read = model.disturb_rber(pe, 1.0, vpass);
    const double reads = (target - fixed) / per_read;
    table.row(strf("%.0f,%.4g", f * 100, reads));
  }
  return table;
}

Table run_fig05(ExperimentContext&) {
  const auto params = flash::FlashModelParams::default_2ynm();
  const flash::RberModel model(params);
  const std::vector<double> ages = {0, 1, 2, 6, 9, 17, 21};

  Table table;
  table.comment(
      "Fig 5: additional RBER from relaxed Vpass vs retention age (8K P/E)");
  std::string header = "vpass";
  for (const double t : ages) header += strf(",age_%gd", t);
  table.row(header);
  for (double v = 480.0; v <= 512.0 + 1e-9; v += 1.0) {
    std::string row = strf("%.0f", v);
    for (const double t : ages)
      row += strf(",%.6g", model.pass_through_rber(v, t));
    table.row(row);
  }

  // "Vpass can be lowered to some degree without inducing any read
  // errors": the error-free relaxation, defined as less than one expected
  // additional bit error per 8 KiB page read.
  const double one_bit_per_page = 1.0 / 65536.0;
  table.new_section();
  table.comment(
      "Largest relaxation with < 1 additional error per page read, per age");
  table.row("age_days,free_relaxation_units");
  for (const double t : ages) {
    double v = params.vpass_nominal;
    while (v > 480.0 && model.pass_through_rber(v - 1.0, t) < one_bit_per_page)
      v -= 1.0;
    table.row(strf("%g,%.0f", t, params.vpass_nominal - v));
  }
  return table;
}

Table run_fig06(ExperimentContext&) {
  const auto params = flash::FlashModelParams::default_2ynm();
  const flash::RberModel model(params);
  const double pe = 8000.0;

  Table table;
  table.comment(
      "Fig 6: RBER vs retention age and tolerable Vpass reduction "
      "(8K P/E, no read disturb)");
  table.comment(strf("ECC correction capability RBER = %.4g, reserved margin "
                     "= %.0f%%, usable = %.4g",
                     params.ecc_capability_rber,
                     params.ecc_reserved_margin * 100,
                     model.usable_ecc_rber()));
  table.row("retention_days,expected_rber,margin_rber,"
            "safe_vpass_reduction_pct");
  for (int day = 1; day <= 21; ++day) {
    const double rber = model.base_rber(pe) + model.retention_rber(pe, day);
    const double margin = model.usable_ecc_rber() - rber;
    const int pct = model.safe_vpass_reduction_percent(pe, day);
    table.row(
        strf("%d,%.6g,%.6g,%d", day, rber, margin > 0 ? margin : 0.0, pct));
  }

  table.new_section();
  table.comment(
      "Paper check: max reduction is 4% while retention age < 4 days");
  table.row("day1,day2,day3,day4");
  table.row(strf("%d,%d,%d,%d", model.safe_vpass_reduction_percent(pe, 1),
                 model.safe_vpass_reduction_percent(pe, 2),
                 model.safe_vpass_reduction_percent(pe, 3),
                 model.safe_vpass_reduction_percent(pe, 4)));
  return table;
}

Table run_fig07(ExperimentContext&) {
  const auto params = flash::FlashModelParams::default_2ynm();
  const flash::RberModel model(params);
  const ecc::EccModel ecc{ecc::EccConfig::paper_provisioning()};
  const core::EnduranceEvaluator evaluator(model, ecc);

  const double pe = 8000.0;
  const double reads_per_interval = 200e3;  // A read-hot block.
  const int intervals = 4;
  const double interval_days = evaluator.options().refresh_interval_days;

  Table table;
  table.comment(strf("Fig 7: error rate over refresh intervals, baseline vs "
                     "Vpass Tuning (8K P/E, %.0fK reads/interval)",
                     reads_per_interval / 1000));
  table.row("day,rber_baseline,rber_tuned,ecc_capability");
  for (int i = 0; i < intervals; ++i) {
    for (int d = 0; d <= static_cast<int>(interval_days); ++d) {
      // Partial-interval simulation: reads accumulated proportionally.
      const double frac = d / interval_days;
      const auto base = evaluator.simulate_interval(
          pe, reads_per_interval * frac, /*tuning=*/false);
      const auto tuned = evaluator.simulate_interval(
          pe, reads_per_interval * frac, /*tuning=*/true);
      // Rescale the retention component to day d rather than interval end.
      const double ret_adj = model.retention_rber(pe, d) -
                             model.retention_rber(pe, interval_days);
      table.row(strf("%d,%.6g,%.6g,%.4g",
                     i * static_cast<int>(interval_days) + d,
                     base.peak_rber + 1.3 * ret_adj,
                     tuned.peak_rber + 1.3 * ret_adj,
                     params.ecc_capability_rber));
    }
  }

  const auto base = evaluator.simulate_interval(pe, reads_per_interval, false);
  const auto tuned = evaluator.simulate_interval(pe, reads_per_interval, true);
  table.new_section();
  table.comment("Peak reduction from mitigation");
  table.row("peak_baseline,peak_tuned,reduction_pct,mean_vpass_reduction_pct");
  table.row(strf("%.6g,%.6g,%.1f,%.2f", base.peak_rber, tuned.peak_rber,
                 (1.0 - tuned.peak_rber / base.peak_rber) * 100.0,
                 tuned.mean_vpass_reduction_pct));
  return table;
}

Table run_ablation_tuning(ExperimentContext&) {
  const auto params = flash::FlashModelParams::default_2ynm();
  const flash::RberModel model(params);
  const double reads_per_interval = 300e3;

  Table table;
  table.comment(strf("Ablation: Vpass Tuning design choices "
                     "(read-hot block, %.0fK reads/interval)",
                     reads_per_interval / 1000));

  table.new_section();
  table.comment("(a) tuning step size delta (normalized units)");
  table.row("delta,endurance_tuned,gain_pct");
  {
    const ecc::EccModel ecc{ecc::EccConfig::paper_provisioning()};
    const core::EnduranceEvaluator base_eval(model, ecc);
    const double base = base_eval.endurance_pe(reads_per_interval, false);
    for (const double delta : {1.0, 2.0, 4.0, 8.0, 16.0}) {
      core::EnduranceOptions opt;
      opt.tuning_delta = delta;
      const core::EnduranceEvaluator eval(model, ecc, opt);
      const double tuned = eval.endurance_pe(reads_per_interval, true);
      table.row(
          strf("%.0f,%.0f,%+.1f", delta, tuned, (tuned / base - 1.0) * 100.0));
    }
  }

  table.new_section();
  table.comment("(b) reserved ECC margin");
  table.row("reserved_pct,endurance_tuned,gain_pct");
  for (const double reserve : {0.0, 0.10, 0.20, 0.30, 0.40}) {
    ecc::EccConfig cfg = ecc::EccConfig::paper_provisioning();
    cfg.reserved_margin = reserve;
    const ecc::EccModel ecc{cfg};
    const core::EnduranceEvaluator eval(model, ecc);
    const double base = eval.endurance_pe(reads_per_interval, false);
    const double tuned = eval.endurance_pe(reads_per_interval, true);
    table.row(strf("%.0f,%.0f,%+.1f", reserve * 100, tuned,
                   (tuned / base - 1.0) * 100.0));
  }

  table.new_section();
  table.comment(
      "(c) refresh interval (tuning is daily; longer intervals accumulate "
      "more disturb)");
  table.row("refresh_days,endurance_baseline,endurance_tuned,gain_pct");
  for (const double days : {3.0, 7.0, 14.0, 21.0}) {
    const ecc::EccModel ecc{ecc::EccConfig::paper_provisioning()};
    core::EnduranceOptions opt;
    opt.refresh_interval_days = days;
    const core::EnduranceEvaluator eval(model, ecc, opt);
    // Scale pressure with interval length (same daily read rate).
    const double reads = reads_per_interval / 7.0 * days;
    const double base = eval.endurance_pe(reads, false);
    const double tuned = eval.endurance_pe(reads, true);
    table.row(strf("%.0f,%.0f,%.0f,%+.1f", days, base, tuned,
                   (tuned / base - 1.0) * 100.0));
  }
  return table;
}

Table run_mitigation_compare(ExperimentContext&) {
  const auto params = flash::FlashModelParams::default_2ynm();
  const flash::RberModel model(params);
  const ecc::EccModel ecc{ecc::EccConfig::paper_provisioning()};
  const core::EnduranceEvaluator evaluator(model, ecc);
  const double reclaim_threshold = 50e3;  // Yaffs MLC default.

  Table table;
  table.comment(
      "Mitigation comparison: effective endurance (P/E cycles at the "
      "limiting block)");
  table.comment(
      strf("read reclaim threshold T = %.0fK reads", reclaim_threshold / 1000));
  table.row("reads_per_interval,none,read_reclaim,vpass_tuning,"
            "reclaim_plus_tuning");
  for (const double reads : {10e3, 30e3, 100e3, 300e3, 1e6}) {
    const double none = evaluator.endurance_pe(reads, false);
    const double tuning = evaluator.endurance_pe(reads, true);
    // Read reclaim: disturb capped at T, but each reclaim adds one P/E per
    // interval on top of the refresh cycle.
    const double reclaims_per_interval =
        std::max(0.0, reads / reclaim_threshold - 1.0);
    const double wear_mult = 1.0 + reclaims_per_interval;
    const double reclaim =
        evaluator.endurance_pe(std::min(reads, reclaim_threshold), false) /
        wear_mult;
    const double combined =
        evaluator.endurance_pe(std::min(reads, reclaim_threshold), true) /
        wear_mult;
    table.row(strf("%.0f,%.0f,%.0f,%.0f,%.0f", reads, none, reclaim, tuning,
                   combined));
  }

  table.new_section();
  table.comment("Reading the table");
  table.comment(
      "- Below T, reclaim never fires and matches 'none'; tuning already "
      "helps.");
  table.comment(
      "- Above T, reclaim caps the disturb errors (a reliability win) but "
      "its re-programming");
  table.comment(
      "  wear grows with R/T and overwhelms the benefit — at 1M "
      "reads/interval the block wears");
  table.comment(
      strf("  %.0fx faster. Vpass Tuning mitigates with *zero* extra "
           "writes, which is exactly the",
           1e6 / reclaim_threshold));
  table.comment("  motivation the paper gives for a voltage-domain "
                "mechanism.");
  return table;
}

Table run_overheads(ExperimentContext&) {
  const auto report = core::vpass_tuning_overheads();
  Table table;
  table.comment("Vpass Tuning overheads for a 512 GB SSD "
                "(paper: 24.34 s/day, 128 KB)");
  table.row("blocks,daily_seconds,metadata_kb");
  table.row(strf("%llu,%.2f,%.0f",
                 static_cast<unsigned long long>(report.blocks),
                 report.daily_seconds, report.metadata_bytes / 1024.0));
  return table;
}

}  // namespace rdsim::sim
