// fig_qos_tenants: the multi-tenant noisy-neighbor isolation study. A
// latency-sensitive victim tenant shares a sharded analytic drive with a
// read-hot, large-request aggressor (the disturb generator the paper's
// read-hot workloads model), and the host sweeps arbitration policy ×
// burst window. The interesting comparison is the victim's read tail:
//   * fifo        — the victim sits wherever it arrived in the window,
//                   behind up to a full window of aggressor bulk reads;
//   * round_robin — one command per tenant per round, so the victim's
//                   k-th command still waits behind k large aggressor
//                   requests (round-robin is command-fair, not
//                   work-fair);
//   * weighted    — share-proportional on pages: with the victim's 8x
//                   weight and small requests its virtual clock crawls,
//                   so its commands sort ahead of the aggressor's bulk;
//   * deadline    — EDF on submit + target: the victim's 500 us target
//                   against the aggressor's 10 ms orders every victim
//                   command first.
// Alongside the tail the table carries each tenant's per-status outcome
// counts and host-observed UBER — the disturb the aggressor generates is
// visible on the same rows that show who paid for it in latency.
//
// Driven with BurstWindowDriver (whole windows co-pending, drained per
// window), so the completion log — and this table — is a pure function
// of (seed, scale): byte-identical at any --threads and poll cadence
// (tests/test_arbitration.cc, tests/test_golden_experiments.cc).
#include <memory>
#include <string>
#include <vector>

#include "cfg/spec.h"
#include "host/arbitration.h"
#include "host/driver.h"
#include "host/factory.h"
#include "sim/experiments.h"
#include "workload/profiles.h"
#include "workload/tenants.h"

namespace rdsim::sim {

Table run_fig_qos_tenants(ExperimentContext& ctx) {
  const bool full_scale = ctx.scale() >= 1.0;
  const int days = 2;
  const std::uint32_t kShards = 4;

  // Tenant 0, the victim: web-VM style, mostly small reads, latency
  // sensitive. Tenant 1, the aggressor: the read-hottest profile in the
  // suite, at 4x the victim's volume and with bulk requests — the
  // noisy neighbor accumulating read disturb on the shared flash.
  workload::WorkloadProfile victim =
      workload::profile_by_name("fiu-web-vm");
  victim.daily_page_ios = ctx.scaled(2.2e5, 6000.0);
  victim.mean_request_pages = 2.0;
  workload::WorkloadProfile aggressor =
      workload::profile_by_name("umass-web");
  aggressor.daily_page_ios = ctx.scaled(8.8e5, 24000.0);
  aggressor.mean_request_pages = 8.0;

  // Same derivation scheme as fig08/fig_qos: one drive seed and one
  // trace seed shared by every combo, offset so seeds near the default
  // move continuously.
  const std::uint64_t drive_seed = 19 + (ctx.seed() - 42);
  const std::uint64_t trace_seed = 8642 + (ctx.seed() - 42);
  const int workers = ctx.runner().thread_count();

  const host::ArbitrationPolicy policies[] = {
      host::ArbitrationPolicy::kFifo, host::ArbitrationPolicy::kRoundRobin,
      host::ArbitrationPolicy::kWeighted, host::ArbitrationPolicy::kDeadline};
  const int windows[] = {8, 32};

  Table table;
  table.comment(
      "fig_qos_tenants: victim read tail vs arbitration policy and burst "
      "window; tenant 0 = latency-sensitive victim (weight 8, 500 us "
      "target), tenant 1 = read-hot bulk aggressor (weight 1, 10 ms) on "
      "a 4-shard analytic drive");
  table.row(
      "policy,window,victim_reads,victim_p50_us,victim_p99_us,"
      "victim_p999_us,victim_stall_s,victim_corrected,victim_recovered,"
      "victim_uncorrectable,victim_uber,aggr_reads,aggr_p999_us,"
      "aggr_uber,iops");

  for (const host::ArbitrationPolicy policy : policies) {
    for (const int window : windows) {
      cfg::DriveSpec drive;
      drive.backend = cfg::Backend::kShardedAnalytic;
      drive.shards = kShards;
      drive.queue_count = 4;
      drive.blocks = full_scale ? 256 : 48;  // Per shard.
      drive.pages_per_block = full_scale ? 128 : 32;
      drive.overprovision = 0.2;
      drive.gc_free_target = 4;
      const std::unique_ptr<host::Device> device =
          host::make_device(drive, drive_seed, workers);
      host::warm_fill(*device);

      host::ArbitrationConfig arb;
      arb.policy = policy;
      arb.tenants = {{/*weight=*/8.0, /*deadline_us=*/500.0},
                     {/*weight=*/1.0, /*deadline_us=*/10000.0}};
      device->set_arbitration(arb);

      workload::MultiTenantGenerator gen({victim, aggressor},
                                         device->logical_pages(), trace_seed);
      host::BurstWindowDriver driver(*device, window);
      for (int day = 0; day < days; ++day) {
        driver.run(gen.day_commands());
        device->end_of_day();
      }

      const host::CompletionStats& stats = device->stats();
      const auto us = [](double seconds) { return seconds * 1e6; };
      const auto bits = static_cast<double>(drive.bitlines);
      using host::CommandKind;
      using host::Status;
      table.row(strf(
          "%s,%d,%llu,%.1f,%.1f,%.1f,%.6g,%llu,%llu,%llu,%.3g,%llu,%.1f,"
          "%.3g,%.0f",
          host::arbitration_policy_name(policy), window,
          static_cast<unsigned long long>(
              stats.tenant_commands(0, CommandKind::kRead)),
          us(stats.tenant_read_latency_quantile_s(0, 0.50)),
          us(stats.tenant_read_latency_quantile_s(0, 0.99)),
          us(stats.tenant_read_latency_quantile_s(0, 0.999)),
          stats.tenant_stall_seconds(0),
          static_cast<unsigned long long>(
              stats.tenant_commands(0, Status::kCorrected)),
          static_cast<unsigned long long>(
              stats.tenant_commands(0, Status::kRecovered)),
          static_cast<unsigned long long>(
              stats.tenant_commands(0, Status::kUncorrectable)),
          stats.tenant_uber(0, bits),
          static_cast<unsigned long long>(
              stats.tenant_commands(1, CommandKind::kRead)),
          us(stats.tenant_read_latency_quantile_s(1, 0.999)),
          stats.tenant_uber(1, bits), stats.iops()));
    }
  }
  return table;
}

}  // namespace rdsim::sim
