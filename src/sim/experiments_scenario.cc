// The generic `scenario` experiment: replay any cfg::ScenarioSpec —
// a config file (--config), a built-in profile (--profile), or the
// default profile — against the factory-built drive it describes, and
// report the QoS summary fig_qos established plus per-shard attribution
// when the drive is sharded. This is the config-driven front door: the
// experiment itself contains no bring-up code, only spec resolution,
// volume scaling, and the replay loop, so every backend the factory can
// build is runnable from a text file without recompiling.
#include <algorithm>
#include <cmath>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "cfg/config.h"
#include "cfg/profiles.h"
#include "cfg/spec.h"
#include "host/driver.h"
#include "host/factory.h"
#include "host/sharded_device.h"
#include "replay/latency.h"
#include "replay/replayer.h"
#include "sim/experiments.h"
#include "workload/generator.h"
#include "workload/tenants.h"

namespace rdsim::sim {

namespace {

/// Resolves the scenario the context asks for. Invalid configs throw —
/// the driver prints the message and exits non-zero, so a typo'd key
/// never produces a silently-default run.
cfg::ScenarioSpec resolve_scenario(ExperimentContext& ctx) {
  if (!ctx.scenario_config().empty()) {
    std::vector<cfg::Diagnostic> diags;
    cfg::Config config = cfg::Config::parse_file(ctx.scenario_config(), &diags);
    cfg::ScenarioSpec spec;
    if (diags.empty()) spec = cfg::parse_scenario(config, &diags);
    if (!diags.empty())
      throw std::runtime_error("invalid scenario config '" +
                               ctx.scenario_config() + "':\n" +
                               cfg::format_diagnostics(diags));
    return spec;
  }
  const std::string name = ctx.scenario_profile().empty()
                               ? cfg::builtin_profiles().front().name
                               : ctx.scenario_profile();
  const cfg::Profile* profile = cfg::find_profile(name);
  if (profile == nullptr)
    throw std::runtime_error("unknown scenario profile '" + name +
                             "' (see rdsim --list-profiles)");
  return profile->spec;
}

/// Shrinks the spec's volume knobs by the context scale the same way
/// fig_qos/fig_qos_mc do, so `--tiny` smoke runs and the golden CRCs
/// stay fast while `--scale 1` replays the spec verbatim.
void apply_scale(ExperimentContext& ctx, cfg::ScenarioSpec* spec) {
  if (ctx.scale() >= 1.0) return;
  cfg::DriveSpec& drive = spec->drive;
  // Analytic floor keeps the FTL feasible after shrinking: GC needs the
  // overprovisioned slack to cover gc_free_target + 2 whole blocks or it
  // livelocks (the same invariant parse_scenario validates unscaled).
  const std::uint32_t floor =
      drive.is_analytic()
          ? static_cast<std::uint32_t>(
                std::ceil((static_cast<double>(drive.gc_free_target) + 2.0) /
                          std::max(drive.overprovision, 0.01)))
          : 2;
  const double scaled = static_cast<double>(drive.blocks) * ctx.scale();
  drive.blocks =
      scaled < floor ? floor : static_cast<std::uint32_t>(scaled);
  workload::WorkloadProfile& w = spec->workload.profile;
  w.daily_page_ios = ctx.scaled(w.daily_page_ios, 4000.0);
  // Tenant profiles were copied out of [workload] at parse time, so they
  // scale the same way, each with its own floor.
  for (cfg::TenantSpec& tenant : spec->tenants.tenants)
    tenant.profile.daily_page_ios =
        ctx.scaled(tenant.profile.daily_page_ios, 4000.0);
}

}  // namespace

Table run_scenario(ExperimentContext& ctx) {
  cfg::ScenarioSpec spec = resolve_scenario(ctx);
  apply_scale(ctx, &spec);
  // CLI --trace overrides (or supplies) the spec's trace path; the other
  // [trace] knobs keep their config/default values.
  if (!ctx.scenario_trace().empty()) spec.trace.path = ctx.scenario_trace();

  // Same seed-derivation scheme as fig08/fig_qos: one drive seed and one
  // trace seed, offset so seeds near the default move continuously.
  const std::uint64_t drive_seed = 17 + (ctx.seed() - 42);
  const std::uint64_t trace_seed = 7531 + (ctx.seed() - 42);
  const int workers = ctx.runner().thread_count();

  std::unique_ptr<host::Device> device =
      host::make_device(spec.drive, drive_seed, workers);
  if (spec.warm_fill && spec.drive.is_analytic()) host::warm_fill(*device);
  // Arbitration installs after the (single-tenant FIFO) warm fill, while
  // the device is quiet, so the fill traffic never skews a tenant's
  // fair-queueing clock.
  if (spec.tenants.enabled())
    device->set_arbitration(spec.tenants.arbitration());
  const bool multi_tenant = spec.tenants.count() >= 2;

  replay::ReplaySummary trace_summary;
  if (spec.trace.enabled()) {
    // Real-trace replay through src/replay instead of the generator.
    std::ifstream file(spec.trace.path);
    if (!file)
      throw std::runtime_error("cannot open trace file '" + spec.trace.path +
                               "'");
    replay::ReplayOptions opts;
    opts.format = spec.trace.format;
    opts.remap = spec.trace.remap;
    opts.mode = spec.trace.mode;
    opts.queue_depth = spec.trace.queue_depth;
    opts.speedup = spec.trace.speedup;
    opts.page_bytes = spec.trace.page_bytes;
    trace_summary = replay::replay_trace(file, *device, opts, nullptr);
    device->end_of_day();
  } else if (multi_tenant) {
    // One decorrelated stream per tenant, merged by arrival and driven
    // in bursts so the tenants are co-pending when the policy arbitrates
    // (a closed-loop trickle would leave it nothing to choose between).
    std::vector<workload::WorkloadProfile> profiles;
    profiles.reserve(spec.tenants.tenants.size());
    for (const cfg::TenantSpec& tenant : spec.tenants.tenants)
      profiles.push_back(tenant.profile);
    workload::MultiTenantGenerator gen(profiles, device->logical_pages(),
                                       trace_seed);
    host::BurstWindowDriver driver(*device,
                                   static_cast<int>(spec.queue_depth));
    for (int day = 0; day < spec.days; ++day) {
      driver.run(gen.day_commands());
      device->end_of_day();
    }
  } else {
    // Untagged scenario — or a single-tenant [tenants] section, which
    // replays this exact path (plus a policy that degenerates to FIFO),
    // so its table is byte-identical to the untagged one.
    const workload::WorkloadProfile& profile =
        spec.tenants.count() == 1 ? spec.tenants.tenants[0].profile
                                  : spec.workload.profile;
    workload::TraceGenerator gen(profile, device->logical_pages(),
                                 trace_seed, device->queue_count());
    host::ClosedLoopDriver driver(*device,
                                  static_cast<int>(spec.queue_depth));
    for (int day = 0; day < spec.days; ++day) {
      driver.run(gen.day_commands());
      device->end_of_day();
    }
  }

  const host::CompletionStats& stats = device->stats();
  const auto us = [](double seconds) { return seconds * 1e6; };
  using host::CommandKind;
  double latency_sum_s = 0.0;
  for (const CommandKind k :
       {CommandKind::kRead, CommandKind::kWrite, CommandKind::kTrim,
        CommandKind::kFlush})
    latency_sum_s +=
        stats.mean_latency_s(k) * static_cast<double>(stats.commands(k));
  const double stall_pct =
      latency_sum_s <= 0.0 ? 0.0
                           : stats.stall_seconds() / latency_sum_s * 100.0;

  Table table;
  const std::string source =
      spec.trace.enabled()
          ? "trace " + spec.trace.path + " (" +
                std::string(name(spec.trace.mode)) + "-loop, " +
                std::string(name(spec.trace.remap)) + " remap)"
          : "workload " + spec.workload.profile.name + ", " +
                std::to_string(spec.days) + " day(s), queue depth " +
                std::to_string(spec.queue_depth);
  table.comment("scenario '" + spec.name + "': " +
                cfg::backend_name(spec.drive.backend) + " drive, " + source);
  table.row(
      "backend,shards,days,queue_depth,reads,writes,trims,flushes,iops,"
      "read_mean_us,read_p50_us,read_p99_us,read_p999_us,stall_pct");
  const bool sharded = spec.drive.is_sharded();
  table.row(strf(
      "%s,%u,%d,%u,%llu,%llu,%llu,%llu,%.0f,%.1f,%.1f,%.1f,%.1f,%.1f",
      cfg::backend_name(spec.drive.backend),
      sharded ? spec.drive.shards : 1, spec.days, spec.queue_depth,
      static_cast<unsigned long long>(stats.commands(CommandKind::kRead)),
      static_cast<unsigned long long>(stats.commands(CommandKind::kWrite)),
      static_cast<unsigned long long>(stats.commands(CommandKind::kTrim)),
      static_cast<unsigned long long>(stats.commands(CommandKind::kFlush)),
      stats.iops(), us(stats.mean_latency_s(CommandKind::kRead)),
      us(stats.latency_quantile_s(CommandKind::kRead, 0.50)),
      us(stats.latency_quantile_s(CommandKind::kRead, 0.99)),
      us(stats.latency_quantile_s(CommandKind::kRead, 0.999)), stall_pct));

  if (multi_tenant) {
    table.new_section();
    table.comment(
        "Per-tenant QoS under the '" +
        std::string(host::arbitration_policy_name(spec.tenants.policy)) +
        "' policy (counts, read tail, stall share, per-status outcomes; "
        "every column sums/merges to the global row above)");
    table.row(
        "tenant,profile,weight,deadline_us,commands,reads,iops,"
        "read_mean_us,read_p50_us,read_p99_us,read_p999_us,stall_s,ok,"
        "corrected,recovered,uncorrectable,failed_write,read_only,uber");
    for (std::uint32_t t = 0; t < spec.tenants.count(); ++t) {
      const cfg::TenantSpec& tenant = spec.tenants.tenants[t];
      table.row(strf(
          "%u,%s,%.3g,%.3g,%llu,%llu,%.0f,%.1f,%.1f,%.1f,%.1f,%.6g,"
          "%llu,%llu,%llu,%llu,%llu,%llu,%.3g",
          t, tenant.profile.name.c_str(), tenant.weight, tenant.deadline_us,
          static_cast<unsigned long long>(stats.tenant_commands(t)),
          static_cast<unsigned long long>(
              stats.tenant_commands(t, CommandKind::kRead)),
          stats.tenant_iops(t), us(stats.tenant_mean_read_latency_s(t)),
          us(stats.tenant_read_latency_quantile_s(t, 0.50)),
          us(stats.tenant_read_latency_quantile_s(t, 0.99)),
          us(stats.tenant_read_latency_quantile_s(t, 0.999)),
          stats.tenant_stall_seconds(t),
          static_cast<unsigned long long>(
              stats.tenant_commands(t, host::Status::kOk)),
          static_cast<unsigned long long>(
              stats.tenant_commands(t, host::Status::kCorrected)),
          static_cast<unsigned long long>(
              stats.tenant_commands(t, host::Status::kRecovered)),
          static_cast<unsigned long long>(
              stats.tenant_commands(t, host::Status::kUncorrectable)),
          static_cast<unsigned long long>(
              stats.tenant_commands(t, host::Status::kFailedWrite)),
          static_cast<unsigned long long>(
              stats.tenant_commands(t, host::Status::kReadOnly)),
          stats.tenant_uber(t,
                            static_cast<double>(spec.drive.bitlines))));
    }
  }

  if (spec.trace.enabled()) {
    table.new_section();
    table.comment(
        "Trace replay outcome (per-status completion counts; see "
        "host::Status for the severity ladder)");
    table.row(
        "trace_commands,reads,writes,ok,corrected,recovered,uncorrectable,"
        "failed_write,read_only,span_s");
    table.row(strf(
        "%llu,%llu,%llu,%llu,%llu,%llu,%llu,%llu,%llu,%.6f",
        static_cast<unsigned long long>(trace_summary.commands),
        static_cast<unsigned long long>(trace_summary.reads),
        static_cast<unsigned long long>(trace_summary.writes),
        static_cast<unsigned long long>(trace_summary.status_counts[0]),
        static_cast<unsigned long long>(trace_summary.status_counts[1]),
        static_cast<unsigned long long>(trace_summary.status_counts[2]),
        static_cast<unsigned long long>(trace_summary.status_counts[3]),
        static_cast<unsigned long long>(trace_summary.status_counts[4]),
        static_cast<unsigned long long>(trace_summary.status_counts[5]),
        trace_summary.last_complete_s - trace_summary.first_submit_s));
  }

  if (sharded) {
    const auto& dev = static_cast<const host::ShardedDevice&>(*device);
    table.new_section();
    table.comment(
        "Per-shard attribution (pages serviced and stall seconds booked "
        "to each shard's timeline; stall sums to the device total)");
    table.row("shard,pages_read,pages_written,read_bit_errors,stall_s");
    for (std::uint32_t s = 0; s < dev.shard_count(); ++s) {
      const host::Servicer& servicer = dev.shard_servicer(s);
      table.row(strf(
          "%u,%llu,%llu,%llu,%.6g", s,
          static_cast<unsigned long long>(servicer.pages_read()),
          static_cast<unsigned long long>(servicer.pages_written()),
          static_cast<unsigned long long>(servicer.read_bit_errors()),
          dev.shard_stall_seconds(s)));
    }
  }
  return table;
}

}  // namespace rdsim::sim
