// rdsim/sim/experiment.h
//
// The unified experiment layer: every paper figure and ablation that used
// to live in its own bench main() is registered here as a named experiment
// over shared library code. Experiments receive an ExperimentContext that
// carries the base seed, the chip geometry, a Monte-Carlo scale knob, and
// a handle to the thread pool — so the same experiment runs full-size from
// the `rdsim` driver, as a per-figure bench binary, or tiny-and-fast from
// the unit tests, with results byte-identical across thread counts.
#pragma once

#include <csignal>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/rng.h"
#include "nand/geometry.h"
#include "sim/runner.h"
#include "sim/table.h"

namespace rdsim::sim {

struct ExperimentConfig {
  std::uint64_t seed = 42;  ///< Base seed; shard i draws Rng::stream(seed, i).
  int threads = 1;          ///< Pool width (results do not depend on it).
  /// Chip geometry for Monte-Carlo experiments; tests use Geometry::tiny().
  nand::Geometry geometry = nand::Geometry::characterization();
  /// Multiplier on simulation volume knobs that are not captured by the
  /// geometry: SSD trace sizes, DRAM rows-per-module, day counts. 1.0
  /// reproduces the paper-scale experiment; tests run ~0.01.
  double scale = 1.0;
  /// Inputs for the generic `scenario` experiment (CLI --config /
  /// --profile). A config file wins over a profile name; both empty runs
  /// the default built-in profile (cfg::builtin_profiles().front()).
  std::string scenario_config;
  std::string scenario_profile;
  /// CLI --trace: a trace file the scenario experiment replays instead of
  /// the spec's generated workload (overrides any [trace] path in the
  /// config file; format and remap policy keep their spec values).
  std::string scenario_trace;
  /// Fleet-run robustness knobs (fig_fleet; see src/fleet): --resume
  /// rebuilds a runner from a checkpoint file; --checkpoint/-every set
  /// where periodic checkpoints land and their epoch cadence;
  /// --stop-after-checkpoints stops deterministically after N periodic
  /// checkpoints (CI's signal-free kill); stop_flag is polled at epoch
  /// boundaries (the driver's SIGINT/SIGTERM flag — on stop the run
  /// writes a final checkpoint and raises fleet::Interrupted).
  std::string fleet_resume;
  std::string fleet_checkpoint;
  std::uint32_t fleet_checkpoint_every = 0;
  std::uint32_t fleet_stop_after = 0;
  const volatile std::sig_atomic_t* stop_flag = nullptr;
};

class ExperimentContext {
 public:
  ExperimentContext(const ExperimentConfig& config, ExperimentRunner& runner)
      : config_(config), runner_(&runner) {}

  std::uint64_t seed() const { return config_.seed; }
  const nand::Geometry& geometry() const { return config_.geometry; }
  double scale() const { return config_.scale; }
  const std::string& scenario_config() const {
    return config_.scenario_config;
  }
  const std::string& scenario_profile() const {
    return config_.scenario_profile;
  }
  const std::string& scenario_trace() const { return config_.scenario_trace; }
  const std::string& fleet_resume() const { return config_.fleet_resume; }
  const std::string& fleet_checkpoint() const {
    return config_.fleet_checkpoint;
  }
  std::uint32_t fleet_checkpoint_every() const {
    return config_.fleet_checkpoint_every;
  }
  std::uint32_t fleet_stop_after() const { return config_.fleet_stop_after; }
  const volatile std::sig_atomic_t* stop_flag() const {
    return config_.stop_flag;
  }
  ExperimentRunner& runner() { return *runner_; }

  /// `count` scaled by the volume knob, kept >= `floor`.
  double scaled(double count, double floor = 1.0) const {
    const double s = count * config_.scale;
    return s < floor ? floor : s;
  }

  /// The next decorrelated Rng stream. Streams are numbered in call order
  /// on the experiment's main thread, so the k-th call is the same
  /// generator in every run with the same seed.
  Rng next_stream() { return Rng::stream(config_.seed, stream_base_++); }

  /// Deterministic parallel map: shard i runs fn(i, rng_i) somewhere on
  /// the pool with rng_i derived only from (seed, stream numbering, i);
  /// results come back in index order.
  template <typename R, typename Fn>
  std::vector<R> map_seeded(std::size_t n, Fn&& fn) {
    const std::uint64_t base = stream_base_;
    stream_base_ += n;
    const std::uint64_t seed = config_.seed;
    return runner_->map<R>(n, [&fn, base, seed](std::size_t i) {
      Rng rng = Rng::stream(seed, base + i);
      return fn(i, rng);
    });
  }

 private:
  ExperimentConfig config_;
  ExperimentRunner* runner_;
  std::uint64_t stream_base_ = 0;
};

using ExperimentFn = Table (*)(ExperimentContext&);

struct ExperimentInfo {
  const char* name;   ///< CLI name, e.g. "fig03".
  const char* title;  ///< One-line description (the figure caption).
  ExperimentFn fn;
};

/// All registered experiments, in figure order.
const std::vector<ExperimentInfo>& experiments();

/// Looks up an experiment by name; nullptr when unknown.
const ExperimentInfo* find_experiment(std::string_view name);

/// Runs one experiment under `config` (builds a pool of config.threads).
/// Throws std::invalid_argument for unknown names.
Table run_experiment(std::string_view name, const ExperimentConfig& config);
Table run_experiment(const ExperimentInfo& info,
                     const ExperimentConfig& config);

}  // namespace rdsim::sim
