#include "sim/experiment.h"

#include <stdexcept>
#include <string>

#include "sim/experiments.h"

namespace rdsim::sim {

const std::vector<ExperimentInfo>& experiments() {
  static const std::vector<ExperimentInfo> kExperiments = {
      {"fig02", "Vth distributions before/after read disturb", run_fig02},
      {"fig03", "RBER vs read disturb count at 2K-15K P/E", run_fig03},
      {"fig04", "RBER vs read disturb count for relaxed Vpass", run_fig04},
      {"fig05", "Additional RBER from relaxed Vpass vs retention age",
       run_fig05},
      {"fig06", "Retention RBER, ECC margin and tolerable Vpass reduction",
       run_fig06},
      {"fig07", "Error-rate peaks across refresh intervals, with tuning",
       run_fig07},
      {"fig08", "P/E cycle endurance per workload, baseline vs tuning",
       run_fig08},
      {"fig09", "ER/P1 boundary shift under read disturb", run_fig09},
      {"fig10", "RBER with and without Read Disturb Recovery", run_fig10},
      {"fig11", "RowHammer error rate vs DRAM manufacture date", run_fig11},
      {"fig12", "Victim cells per aggressor row, representative modules",
       run_fig12},
      {"ablation_rdr", "RDR sensitivity to its design choices",
       run_ablation_rdr},
      {"ablation_tuning", "Vpass Tuning sensitivity to its design choices",
       run_ablation_tuning},
      {"ext_mechanisms", "Extension studies: RFR, ROR, 3D NAND, PARA",
       run_ext_mechanisms},
      {"mitigation_compare", "Mitigation landscape: reclaim vs tuning",
       run_mitigation_compare},
      {"overheads", "Vpass Tuning time/storage overheads (512 GB SSD)",
       run_overheads},
      {"fig_qos",
       "Read latency percentiles vs mitigation policy and queue depth",
       run_fig_qos},
      {"fig_qos_mc",
       "Drive-scale read QoS on the sharded Monte Carlo backend",
       run_fig_qos_mc},
      {"fig_qos_tenants",
       "Multi-tenant noisy-neighbor isolation: victim read tail vs "
       "arbitration policy (fifo/round_robin/weighted/deadline)",
       run_fig_qos_tenants},
      {"fig_reliability",
       "Fault injection vs the error path: UBER, recovery attribution, "
       "time-to-read-only",
       run_fig_reliability},
      {"fig_trace_replay",
       "Real-trace replay: MSR sample through analytic and sharded-MC "
       "drives, open and closed loop, latency CDF + moving percentiles",
       run_fig_trace_replay},
      {"scenario",
       "Config-driven drive replay (--config FILE or --profile NAME)",
       run_scenario},
      {"fig_fleet",
       "Fleet lifetime: AFR vs age, UBER trajectory, refresh overhead, "
       "time-to-read-only (checkpoint/resume via --checkpoint/--resume)",
       run_fig_fleet},
  };
  return kExperiments;
}

const ExperimentInfo* find_experiment(std::string_view name) {
  for (const auto& e : experiments())
    if (name == e.name) return &e;
  return nullptr;
}

Table run_experiment(const ExperimentInfo& info,
                     const ExperimentConfig& config) {
  ExperimentRunner runner(config.threads);
  ExperimentContext ctx(config, runner);
  return info.fn(ctx);
}

Table run_experiment(std::string_view name, const ExperimentConfig& config) {
  const ExperimentInfo* info = find_experiment(name);
  if (info == nullptr)
    throw std::invalid_argument("unknown experiment: " + std::string(name));
  return run_experiment(*info, config);
}

}  // namespace rdsim::sim
