// System-scale experiments: the whole-SSD endurance evaluation (Fig. 8)
// and the DRAM RowHammer population figures (Figs. 11-12). Each workload
// or module is one shard; the volume knobs (trace size, FTL geometry,
// rows per module, replay days) honor the context's scale so the tests
// can run the same code in milliseconds.
#include <algorithm>
#include <string>
#include <vector>

#include "core/endurance.h"
#include "dram/rowhammer.h"
#include "ecc/ecc_model.h"
#include "flash/rber_model.h"
#include "sim/experiments.h"
#include "ssd/ssd.h"
#include "workload/generator.h"
#include "workload/profiles.h"

namespace rdsim::sim {

Table run_fig08(ExperimentContext& ctx) {
  const auto params = flash::FlashModelParams::default_2ynm();
  const flash::RberModel model(params);
  const ecc::EccModel ecc{ecc::EccConfig::paper_provisioning()};
  const core::EnduranceEvaluator evaluator(model, ecc);
  const auto profiles = workload::standard_suite();
  const bool full_scale = ctx.scale() >= 1.0;
  const double io_scale = ctx.scale();
  const int days = full_scale ? 7 : 2;

  struct WorkloadResult {
    std::string row;
    double gain = 0.0;
  };
  // One drive seed and one trace seed shared by every workload, so the
  // per-profile comparison reflects the workload shape, not per-shard
  // sampling differences. The offsets put the default seed 42 exactly on
  // the original bench's constants (7 / 1234), and nearby seeds move
  // continuously rather than switching derivation schemes.
  const std::uint64_t drive_seed = 7 + (ctx.seed() - 42);
  const std::uint64_t trace_seed = 1234 + (ctx.seed() - 42);
  const auto results = ctx.map_seeded<WorkloadResult>(
      profiles.size(), [&](std::size_t i, Rng&) {
        workload::WorkloadProfile profile = profiles[i];
        profile.daily_page_ios =
            std::max(2000.0, profile.daily_page_ios * io_scale);
        ssd::SsdConfig config;
        config.ftl.blocks = full_scale ? 1024 : 128;
        config.ftl.pages_per_block = full_scale ? 256 : 32;
        config.vpass_tuning = false;  // Pressure measurement only.
        ssd::Ssd drive(config, params, drive_seed);

        workload::TraceGenerator gen(
            profile, drive.ftl().config().logical_pages(), trace_seed);
        // Warm the drive (fill the logical space once), then replay one
        // refresh interval to observe steady-state block read pressure.
        for (std::uint64_t lpn = 0;
             lpn < drive.ftl().config().logical_pages(); ++lpn)
          drive.ftl_mut().write(lpn);
        for (int day = 0; day < days; ++day) drive.run_day(gen.day());

        const double reads_per_interval =
            static_cast<double>(drive.max_reads_per_interval());
        const double base = evaluator.endurance_pe(reads_per_interval, false);
        const double tuned = evaluator.endurance_pe(reads_per_interval, true);
        const double gain = (tuned / base - 1.0) * 100.0;
        return WorkloadResult{
            strf("%s,%.0f,%.0f,%.0f,%+.1f", profile.name.c_str(),
                 reads_per_interval, base, tuned, gain),
            gain};
      });

  Table table;
  table.comment("Fig 8: endurance improvement with Vpass Tuning");
  table.row("workload,reads_per_interval,endurance_baseline,"
            "endurance_tuned,improvement_pct");
  double improvement_sum = 0.0;
  for (const auto& r : results) {
    table.row(r.row);
    improvement_sum += r.gain;
  }
  table.new_section();
  table.comment("Average improvement (paper: 21.0%)");
  table.row("average_improvement_pct");
  table.row(strf("%.1f",
                 improvement_sum / static_cast<double>(results.size())));
  return table;
}

namespace {

/// Shrinks a module's row count by the context scale (hammer loops are
/// per-row) while keeping enough rows for a meaningful distribution.
void scale_module(dram::DramModule& module, double scale) {
  if (scale >= 1.0) return;
  const auto scaled =
      static_cast<std::uint64_t>(static_cast<double>(module.rows) * scale);
  module.rows = std::max<std::uint64_t>(512, scaled);
}

}  // namespace

Table run_fig11(ExperimentContext& ctx) {
  Rng population_rng = ctx.next_stream();
  auto modules = dram::sample_population(population_rng, 129);
  for (auto& m : modules) scale_module(m, ctx.scale());

  const auto rates = ctx.map_seeded<double>(
      modules.size(), [&](std::size_t i, Rng& rng) {
        return dram::errors_per_billion_cells(modules[i], rng);
      });

  Table table;
  table.comment(
      "Fig 11: RowHammer errors per 1e9 cells vs module manufacture date "
      "(129 modules)");
  table.row("manufacturer,year,week,errors_per_1e9_cells");
  int vulnerable = 0;
  int y2012_13 = 0, y2012_13_vulnerable = 0;
  for (std::size_t i = 0; i < modules.size(); ++i) {
    const auto& m = modules[i];
    const double rate = rates[i];
    vulnerable += rate > 0;
    if (m.year == 2012 || m.year == 2013) {
      ++y2012_13;
      y2012_13_vulnerable += rate > 0;
    }
    table.row(strf("%s,%d,%d,%.4g", dram::manufacturer_name(m.manufacturer),
                   m.year, m.week, rate));
  }
  table.new_section();
  table.comment("Summary (paper: 110 of 129 vulnerable; all 2012-2013 "
                "modules vulnerable)");
  table.row("total,vulnerable,modules_2012_13,vulnerable_2012_13");
  table.row(strf("%zu,%d,%d,%d", modules.size(), vulnerable, y2012_13,
                 y2012_13_vulnerable));
  return table;
}

Table run_fig12(ExperimentContext& ctx) {
  auto modules = dram::representative_modules();
  for (auto& m : modules) scale_module(m, ctx.scale());
  const int max_victims = 120;

  const auto hists = ctx.map_seeded<std::vector<std::uint64_t>>(
      modules.size(), [&](std::size_t i, Rng& rng) {
        return dram::victim_histogram(modules[i], rng, max_victims);
      });

  Table table;
  table.comment(
      "Fig 12: victim cells per aggressor row, representative modules");
  std::string header = "victims";
  for (const auto& m : modules) header += strf(",%s", m.label().c_str());
  table.row(header);
  for (int v = 0; v <= max_victims; ++v) {
    std::string row = strf("%d", v);
    for (const auto& h : hists)
      row += strf(",%llu",
                  static_cast<unsigned long long>(
                      h[static_cast<std::size_t>(v)]));
    table.row(row);
  }
  return table;
}

}  // namespace rdsim::sim
