// System-scale experiments: the whole-SSD endurance evaluation (Fig. 8),
// the queued-host QoS study (fig_qos), and the DRAM RowHammer population
// figures (Figs. 11-12). Each workload, combo, or module is one shard;
// the volume knobs (trace size, FTL geometry, rows per module, replay
// days) honor the context's scale so the tests can run the same code in
// milliseconds. Drives are driven exclusively through the host::Device
// queued interface.
#include <algorithm>
#include <string>
#include <vector>

#include "cfg/spec.h"
#include "core/endurance.h"
#include "dram/rowhammer.h"
#include "ecc/ecc_model.h"
#include "flash/rber_model.h"
#include "host/driver.h"
#include "host/factory.h"
#include "host/sharded_device.h"
#include "host/ssd_device.h"
#include "nand/chip.h"
#include "sim/experiments.h"
#include "ssd/ssd.h"
#include "workload/generator.h"
#include "workload/profiles.h"

namespace rdsim::sim {

Table run_fig08(ExperimentContext& ctx) {
  const auto params = flash::FlashModelParams::default_2ynm();
  const flash::RberModel model(params);
  const ecc::EccModel ecc{ecc::EccConfig::paper_provisioning()};
  const core::EnduranceEvaluator evaluator(model, ecc);
  const auto profiles = workload::standard_suite();
  const bool full_scale = ctx.scale() >= 1.0;
  const double io_scale = ctx.scale();
  const int days = full_scale ? 7 : 2;

  struct WorkloadResult {
    std::string row;
    double gain = 0.0;
  };
  // One drive seed and one trace seed shared by every workload, so the
  // per-profile comparison reflects the workload shape, not per-shard
  // sampling differences. The offsets put the default seed 42 exactly on
  // the original bench's constants (7 / 1234), and nearby seeds move
  // continuously rather than switching derivation schemes.
  const std::uint64_t drive_seed = 7 + (ctx.seed() - 42);
  const std::uint64_t trace_seed = 1234 + (ctx.seed() - 42);
  const auto results = ctx.map_seeded<WorkloadResult>(
      profiles.size(), [&](std::size_t i, Rng&) {
        workload::WorkloadProfile profile = profiles[i];
        profile.daily_page_ios =
            std::max(2000.0, profile.daily_page_ios * io_scale);
        ssd::SsdConfig config;
        config.ftl.blocks = full_scale ? 1024 : 128;
        config.ftl.pages_per_block = full_scale ? 256 : 32;
        config.vpass_tuning = false;  // Pressure measurement only.
        host::SsdDevice drive(config, params, drive_seed);

        workload::TraceGenerator gen(profile, drive.logical_pages(),
                                     trace_seed);
        // Warm the drive (fill the logical space once), then replay one
        // refresh interval to observe steady-state block read pressure.
        host::warm_fill(drive);
        std::vector<host::Completion> scratch;
        for (int day = 0; day < days; ++day) {
          for (const auto& c : workload::to_commands(gen.day()))
            drive.submit(c);
          drive.drain(&scratch);
          drive.end_of_day();
          scratch.clear();
        }

        const double reads_per_interval =
            static_cast<double>(drive.ssd().max_reads_per_interval());
        const double base = evaluator.endurance_pe(reads_per_interval, false);
        const double tuned = evaluator.endurance_pe(reads_per_interval, true);
        const double gain = (tuned / base - 1.0) * 100.0;
        return WorkloadResult{
            strf("%s,%.0f,%.0f,%.0f,%+.1f", profile.name.c_str(),
                 reads_per_interval, base, tuned, gain),
            gain};
      });

  Table table;
  table.comment("Fig 8: endurance improvement with Vpass Tuning");
  table.row("workload,reads_per_interval,endurance_baseline,"
            "endurance_tuned,improvement_pct");
  double improvement_sum = 0.0;
  for (const auto& r : results) {
    table.row(r.row);
    improvement_sum += r.gain;
  }
  table.new_section();
  table.comment("Average improvement (paper: 21.0%)");
  table.row("average_improvement_pct");
  table.row(strf("%.1f",
                 improvement_sum / static_cast<double>(results.size())));
  return table;
}

Table run_fig_qos(ExperimentContext& ctx) {
  // System QoS study on the queued host interface: read tail latency vs
  // read-disturb mitigation policy across queue depths. The host drives
  // the drive closed-loop (zero think time) at a fixed queue depth over
  // 4 submission queues; the same command stream — including trims and
  // flushes — is replayed against each policy, so differences come from
  // the background work each policy induces (reclaim churn, tuning
  // probes), not from sampling. The drive comes out of host::make_device
  // (the flash model defaults to the paper's 2y-nm parameters there).
  const bool full_scale = ctx.scale() >= 1.0;
  const int days = full_scale ? 3 : 2;

  workload::WorkloadProfile profile =
      workload::profile_by_name("fiu-web-vm");
  profile.daily_page_ios = std::max(4000.0, profile.daily_page_ios *
                                                ctx.scale());
  profile.trim_fraction = 0.10;
  profile.flush_period_s = 400.0;

  // Reclaim threshold sized off the replayed volume (the hottest block
  // draws a few percent of the daily reads), so the policy engages within
  // the replay at any scale — including the floored tiny volumes.
  const auto reclaim_threshold = std::max<std::uint64_t>(
      50, static_cast<std::uint64_t>(0.025 * profile.read_fraction *
                                     profile.daily_page_ios));

  struct Policy {
    const char* name;
    bool tuning;
    std::uint64_t reclaim;
  };
  const Policy policies[] = {
      {"none", false, 0},
      {"reclaim", false, reclaim_threshold},
      {"tuning", true, 0},
  };
  const int depths[] = {1, 4, 16};
  constexpr int kDepths = 3;
  const std::size_t combos = std::size(policies) * kDepths;

  // One drive seed and one trace seed shared by every combo (same scheme
  // as fig08), so rows differ only by policy and depth.
  const std::uint64_t drive_seed = 11 + (ctx.seed() - 42);
  const std::uint64_t trace_seed = 4321 + (ctx.seed() - 42);

  const auto rows = ctx.map_seeded<std::string>(
      combos, [&](std::size_t combo, Rng&) {
        const Policy& policy = policies[combo / kDepths];
        const int depth = depths[combo % kDepths];

        cfg::DriveSpec drive;
        drive.backend = cfg::Backend::kAnalytic;
        drive.blocks = full_scale ? 512 : 64;
        drive.pages_per_block = full_scale ? 128 : 32;
        drive.overprovision = 0.2;
        drive.gc_free_target = 4;
        drive.vpass_tuning = policy.tuning;
        drive.read_reclaim_threshold = policy.reclaim;
        drive.queue_count = 4;
        const std::unique_ptr<host::Device> device_ptr =
            host::make_device(drive, drive_seed);
        host::Device& device = *device_ptr;
        host::warm_fill(device);

        workload::TraceGenerator gen(profile, device.logical_pages(),
                                     trace_seed, device.queue_count());
        // Closed-loop replay: keep `depth` commands outstanding; the
        // next command is submitted the instant a completion frees a
        // slot.
        host::ClosedLoopDriver driver(device, depth);
        for (int day = 0; day < days; ++day) {
          driver.run(gen.day_commands());
          device.end_of_day();
        }

        const host::CompletionStats& stats = device.stats();
        const auto us = [](double seconds) { return seconds * 1e6; };
        using host::CommandKind;
        double latency_sum_s = 0.0;
        for (const CommandKind k :
             {CommandKind::kRead, CommandKind::kWrite, CommandKind::kTrim,
              CommandKind::kFlush})
          latency_sum_s += stats.mean_latency_s(k) *
                           static_cast<double>(stats.commands(k));
        const double stall_pct =
            latency_sum_s <= 0.0
                ? 0.0
                : stats.stall_seconds() / latency_sum_s * 100.0;
        return strf(
            "%s,%d,%llu,%llu,%llu,%llu,%.0f,%.1f,%.1f,%.1f,%.1f,%.1f",
            policy.name, depth,
            static_cast<unsigned long long>(
                stats.commands(CommandKind::kRead)),
            static_cast<unsigned long long>(
                stats.commands(CommandKind::kWrite)),
            static_cast<unsigned long long>(
                stats.commands(CommandKind::kTrim)),
            static_cast<unsigned long long>(
                stats.commands(CommandKind::kFlush)),
            stats.iops(), us(stats.mean_latency_s(CommandKind::kRead)),
            us(stats.latency_quantile_s(CommandKind::kRead, 0.50)),
            us(stats.latency_quantile_s(CommandKind::kRead, 0.99)),
            us(stats.latency_quantile_s(CommandKind::kRead, 0.999)),
            stall_pct);
      });

  Table table;
  table.comment(
      "fig_qos: read latency percentiles vs mitigation policy and queue "
      "depth (closed-loop host, 4 submission queues)");
  table.row(
      "policy,queue_depth,reads,writes,trims,flushes,iops,"
      "read_mean_us,read_p50_us,read_p99_us,read_p999_us,stall_pct");
  for (const auto& r : rows) table.row(r);
  return table;
}

Table run_fig_qos_mc(ExperimentContext& ctx) {
  // Drive-scale QoS on the per-cell Monte Carlo backend: a
  // host::ShardedDevice stripes the logical space over four pre-aged
  // chips (one flash timeline each) and a closed-loop host sweeps the
  // queue depth over the same command stream. Unlike fig_qos (analytic
  // RBER, FTL maintenance), every read here senses real cells, so the
  // table reports the raw bit error rate the host observed alongside the
  // latency percentiles — the read-disturb QoS view at drive scale. The
  // device services its shards on its own worker pool sized from the
  // experiment's --threads; the merged completion log (and therefore
  // this table) is byte-identical for any worker count.
  const bool full_scale = ctx.scale() >= 1.0;
  const int days = 2;
  const std::uint32_t kShards = 4;
  const std::uint32_t kPreWearPe = 8000;

  nand::Geometry shard_geometry = ctx.geometry();
  shard_geometry.blocks = full_scale ? 8 : 2;

  workload::WorkloadProfile profile =
      workload::profile_by_name("fiu-web-vm");
  profile.daily_page_ios = ctx.scaled(12000.0, 3000.0);

  // Same derivation scheme as fig08/fig_qos: one drive seed and one
  // trace seed shared by every depth, offset so seeds near the default
  // move continuously.
  const std::uint64_t drive_seed = 13 + (ctx.seed() - 42);
  const std::uint64_t trace_seed = 2468 + (ctx.seed() - 42);
  const int workers = ctx.runner().thread_count();

  struct DepthResult {
    std::string row;
    std::vector<std::string> shard_rows;
  };
  const int depths[] = {1, 4, 16};
  std::vector<DepthResult> results;
  for (const int depth : depths) {
    cfg::DriveSpec drive;
    drive.backend = cfg::Backend::kShardedMc;
    drive.shards = kShards;
    drive.wordlines_per_block = shard_geometry.wordlines_per_block;
    drive.bitlines = shard_geometry.bitlines;
    drive.blocks = shard_geometry.blocks;
    // Pre-age every shard like a characterization drive: the factory
    // applies heavy P/E wear then fresh random data per block
    // (O(bookkeeping) under lazy materialization).
    drive.pre_wear_pe = kPreWearPe;
    drive.queue_count = 4;
    const std::unique_ptr<host::Device> device_ptr =
        host::make_device(drive, drive_seed, workers);
    auto& device = static_cast<host::ShardedDevice&>(*device_ptr);

    workload::TraceGenerator gen(profile, device.logical_pages(),
                                 trace_seed, device.queue_count());
    host::ClosedLoopDriver driver(device, depth);
    for (int day = 0; day < days; ++day) {
      driver.run(gen.day_commands());
      device.end_of_day();
    }

    const host::CompletionStats& stats = device.stats();
    const auto us = [](double seconds) { return seconds * 1e6; };
    using host::CommandKind;
    double latency_sum_s = 0.0;
    for (const CommandKind k :
         {CommandKind::kRead, CommandKind::kWrite, CommandKind::kTrim,
          CommandKind::kFlush})
      latency_sum_s +=
          stats.mean_latency_s(k) * static_cast<double>(stats.commands(k));
    const double stall_pct =
        latency_sum_s <= 0.0
            ? 0.0
            : stats.stall_seconds() / latency_sum_s * 100.0;
    const double sensed_bits =
        static_cast<double>(device.pages_read()) *
        static_cast<double>(shard_geometry.bitlines);
    const double rber =
        sensed_bits <= 0.0
            ? 0.0
            : static_cast<double>(device.read_bit_errors()) / sensed_bits;

    DepthResult r;
    r.row = strf(
        "%d,%llu,%llu,%.0f,%.1f,%.1f,%.1f,%.1f,%.1f,%.3e,%llu",
        depth,
        static_cast<unsigned long long>(stats.commands(CommandKind::kRead)),
        static_cast<unsigned long long>(stats.commands(CommandKind::kWrite)),
        stats.iops(), us(stats.mean_latency_s(CommandKind::kRead)),
        us(stats.latency_quantile_s(CommandKind::kRead, 0.50)),
        us(stats.latency_quantile_s(CommandKind::kRead, 0.99)),
        us(stats.latency_quantile_s(CommandKind::kRead, 0.999)), stall_pct,
        rber, static_cast<unsigned long long>(device.block_rewrites()));
    // Per-shard attribution at this depth: where the reads landed, the
    // errors they saw, and the stall seconds booked to each chip.
    for (std::uint32_t s = 0; s < device.shard_count(); ++s) {
      r.shard_rows.push_back(
          strf("%d,%u,%llu,%llu,%.6g", depth, s,
               static_cast<unsigned long long>(device.shard_pages_read(s)),
               static_cast<unsigned long long>(
                   device.shard_read_bit_errors(s)),
               device.shard_stall_seconds(s)));
    }
    results.push_back(std::move(r));
  }

  Table table;
  table.comment(
      "fig_qos_mc: read QoS vs queue depth on the sharded Monte Carlo "
      "drive (4 chips, closed-loop host, real per-cell senses)");
  table.row(
      "queue_depth,reads,writes,iops,read_mean_us,read_p50_us,read_p99_us,"
      "read_p999_us,stall_pct,read_rber,block_rewrites");
  for (const auto& r : results) table.row(r.row);
  table.new_section();
  table.comment(
      "Per-shard attribution (stall seconds booked to each chip's "
      "timeline; sums to the device total)");
  table.row("queue_depth,shard,pages_read,read_bit_errors,stall_s");
  for (const auto& r : results)
    for (const auto& row : r.shard_rows) table.row(row);
  return table;
}

namespace {

/// Shrinks a module's row count by the context scale (hammer loops are
/// per-row) while keeping enough rows for a meaningful distribution.
void scale_module(dram::DramModule& module, double scale) {
  if (scale >= 1.0) return;
  const auto scaled =
      static_cast<std::uint64_t>(static_cast<double>(module.rows) * scale);
  module.rows = std::max<std::uint64_t>(512, scaled);
}

}  // namespace

Table run_fig11(ExperimentContext& ctx) {
  Rng population_rng = ctx.next_stream();
  auto modules = dram::sample_population(population_rng, 129);
  for (auto& m : modules) scale_module(m, ctx.scale());

  const auto rates = ctx.map_seeded<double>(
      modules.size(), [&](std::size_t i, Rng& rng) {
        return dram::errors_per_billion_cells(modules[i], rng);
      });

  Table table;
  table.comment(
      "Fig 11: RowHammer errors per 1e9 cells vs module manufacture date "
      "(129 modules)");
  table.row("manufacturer,year,week,errors_per_1e9_cells");
  int vulnerable = 0;
  int y2012_13 = 0, y2012_13_vulnerable = 0;
  for (std::size_t i = 0; i < modules.size(); ++i) {
    const auto& m = modules[i];
    const double rate = rates[i];
    vulnerable += rate > 0;
    if (m.year == 2012 || m.year == 2013) {
      ++y2012_13;
      y2012_13_vulnerable += rate > 0;
    }
    table.row(strf("%s,%d,%d,%.4g", dram::manufacturer_name(m.manufacturer),
                   m.year, m.week, rate));
  }
  table.new_section();
  table.comment("Summary (paper: 110 of 129 vulnerable; all 2012-2013 "
                "modules vulnerable)");
  table.row("total,vulnerable,modules_2012_13,vulnerable_2012_13");
  table.row(strf("%zu,%d,%d,%d", modules.size(), vulnerable, y2012_13,
                 y2012_13_vulnerable));
  return table;
}

Table run_fig12(ExperimentContext& ctx) {
  auto modules = dram::representative_modules();
  for (auto& m : modules) scale_module(m, ctx.scale());
  const int max_victims = 120;

  const auto hists = ctx.map_seeded<std::vector<std::uint64_t>>(
      modules.size(), [&](std::size_t i, Rng& rng) {
        return dram::victim_histogram(modules[i], rng, max_victims);
      });

  Table table;
  table.comment(
      "Fig 12: victim cells per aggressor row, representative modules");
  std::string header = "victims";
  for (const auto& m : modules) header += strf(",%s", m.label().c_str());
  table.row(header);
  for (int v = 0; v <= max_victims; ++v) {
    std::string row = strf("%d", v);
    for (const auto& h : hists)
      row += strf(",%llu",
                  static_cast<unsigned long long>(
                      h[static_cast<std::size_t>(v)]));
    table.row(row);
  }
  return table;
}

}  // namespace rdsim::sim
