// ssd_lifetime — replay a workload against the simulated SSD and watch the
// drive's reliability state evolve under the daily maintenance loop
// (refresh + Vpass Tuning), then compare endurance with and without the
// mitigation.
//
// Usage: ./build/examples/ssd_lifetime [workload] [days]
//        workload: one of the standard suite (default umass-web)
//        days:     replay length (default 14)
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/endurance.h"
#include "ssd/ssd.h"
#include "workload/generator.h"
#include "workload/profiles.h"

using namespace rdsim;

int main(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "umass-web";
  const int days = argc > 2 ? std::atoi(argv[2]) : 14;
  const auto profile = workload::profile_by_name(name);
  const auto params = flash::FlashModelParams::default_2ynm();

  ssd::SsdConfig config;
  config.ftl.blocks = 1024;
  config.ftl.pages_per_block = 256;
  config.vpass_tuning = true;
  ssd::Ssd drive(config, params, /*seed=*/11);

  std::printf("drive: %u blocks x %u pages, %llu logical pages, workload %s\n",
              config.ftl.blocks, config.ftl.pages_per_block,
              static_cast<unsigned long long>(
                  drive.ftl().config().logical_pages()),
              profile.name.c_str());

  // Fill the logical space once so every read hits mapped data.
  for (std::uint64_t lpn = 0; lpn < drive.ftl().config().logical_pages();
       ++lpn)
    drive.ftl_mut().write(lpn);

  workload::TraceGenerator gen(profile, drive.ftl().config().logical_pages(),
                               2024);
  std::printf("\n%4s %12s %12s %10s %12s %10s\n", "day", "host_reads",
              "host_writes", "waf", "max_rber", "mean_dVpass");
  for (int day = 1; day <= days; ++day) {
    drive.run_day(gen.day());
    const auto& s = drive.ftl().stats();
    std::printf("%4d %12llu %12llu %10.3f %12.3e %9.2f%%\n", day,
                static_cast<unsigned long long>(s.host_reads),
                static_cast<unsigned long long>(s.host_writes), s.waf(),
                drive.max_worst_rber(),
                drive.stats().mean_vpass_reduction_pct());
  }

  const auto& s = drive.ftl().stats();
  std::printf("\nFTL activity: %llu GC writes, %llu refresh writes, "
              "%llu refreshes, max P/E %u\n",
              static_cast<unsigned long long>(s.gc_writes),
              static_cast<unsigned long long>(s.refresh_writes),
              static_cast<unsigned long long>(s.refreshes),
              drive.ftl().max_pe());
  std::printf("uncorrectable block-days: %llu, tuning fallbacks: %llu\n",
              static_cast<unsigned long long>(
                  drive.stats().uncorrectable_page_events),
              static_cast<unsigned long long>(drive.stats().tuning_fallbacks));

  // Endurance projection for this workload's limiting block.
  const flash::RberModel model(params);
  const ecc::EccModel ecc{config.ecc};
  const core::EnduranceEvaluator evaluator(model, ecc);
  const auto pressure =
      static_cast<double>(drive.max_reads_per_interval());
  const double base = evaluator.endurance_pe(pressure, false);
  const double tuned = evaluator.endurance_pe(pressure, true);
  std::printf("\nendurance projection (hottest block absorbs %.0f reads per "
              "refresh interval):\n", pressure);
  std::printf("  baseline:     %.0f P/E cycles\n", base);
  std::printf("  Vpass Tuning: %.0f P/E cycles (%+.1f%%)\n", tuned,
              (tuned / base - 1.0) * 100.0);
  return 0;
}
