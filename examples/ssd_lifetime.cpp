// ssd_lifetime — replay a workload against the simulated SSD through the
// NVMe-style queued host interface (host::SsdDevice) and watch the
// drive's reliability state evolve under the daily maintenance loop
// (refresh + Vpass Tuning); report host-observed latency percentiles
// from the completion stream, then compare endurance with and without
// the mitigation.
//
// Usage: ./build/examples/ssd_lifetime [workload] [days]
//        workload: one of the standard suite (default umass-web)
//        days:     replay length (default 14)
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/endurance.h"
#include "host/driver.h"
#include "host/ssd_device.h"
#include "workload/generator.h"
#include "workload/profiles.h"

using namespace rdsim;

int main(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "umass-web";
  const int days = argc > 2 ? std::atoi(argv[2]) : 14;
  auto profile = workload::profile_by_name(name);
  profile.trim_fraction = 0.02;     // Exercise the deallocate path.
  profile.flush_period_s = 1800.0;  // Host flushes every half hour.
  const auto params = flash::FlashModelParams::default_2ynm();

  ssd::SsdConfig config;
  config.ftl.blocks = 1024;
  config.ftl.pages_per_block = 256;
  config.vpass_tuning = true;
  host::SsdDevice drive(config, params, /*seed=*/11, /*queue_count=*/4);

  std::printf("drive: %u blocks x %u pages, %llu logical pages, %u queues, "
              "workload %s\n",
              config.ftl.blocks, config.ftl.pages_per_block,
              static_cast<unsigned long long>(drive.logical_pages()),
              drive.queue_count(), profile.name.c_str());

  // Fill the logical space once so every read hits mapped data, then
  // drop the warm-up traffic from the latency statistics.
  host::warm_fill(drive);
  std::vector<host::Completion> completions;

  workload::TraceGenerator gen(profile, drive.logical_pages(), 2024,
                               drive.queue_count());
  // The workload starts once the fill has finished: offset its arrival
  // times by the flash timeline so day-one commands don't queue behind
  // the warm-up writes.
  const double fill_end_s = drive.now_s();
  std::printf("\n%4s %12s %12s %10s %12s %10s %12s\n", "day", "host_reads",
              "host_writes", "waf", "max_rber", "mean_dVpass",
              "read_p99_us");
  for (int day = 1; day <= days; ++day) {
    for (host::Command c : gen.day_commands()) {
      c.submit_time_s += fill_end_s;
      drive.submit(c);
    }
    completions.clear();
    drive.drain(&completions);
    drive.end_of_day();
    const auto& s = drive.ssd().ftl().stats();
    std::printf("%4d %12llu %12llu %10.3f %12.3e %10.2f%% %12.1f\n", day,
                static_cast<unsigned long long>(s.host_reads),
                static_cast<unsigned long long>(s.host_writes), s.waf(),
                drive.ssd().max_worst_rber(),
                drive.ssd().stats().mean_vpass_reduction_pct(),
                drive.stats().latency_quantile_s(host::CommandKind::kRead,
                                                 0.99) * 1e6);
  }

  const auto& s = drive.ssd().ftl().stats();
  std::printf("\nFTL activity: %llu GC writes, %llu refresh writes, "
              "%llu refreshes, %llu trims, max P/E %u\n",
              static_cast<unsigned long long>(s.gc_writes),
              static_cast<unsigned long long>(s.refresh_writes),
              static_cast<unsigned long long>(s.refreshes),
              static_cast<unsigned long long>(s.host_trims),
              drive.ssd().ftl().max_pe());
  std::printf("uncorrectable block-days: %llu, tuning fallbacks: %llu\n",
              static_cast<unsigned long long>(
                  drive.ssd().stats().uncorrectable_page_events),
              static_cast<unsigned long long>(
                  drive.ssd().stats().tuning_fallbacks));

  // Host-observed service quality over the whole replay.
  const auto& q = drive.stats();
  using host::CommandKind;
  std::printf("\nhost interface: %llu commands (%llu R / %llu W / %llu T / "
              "%llu F), %.0f IOPS over the replay\n",
              static_cast<unsigned long long>(q.commands()),
              static_cast<unsigned long long>(q.commands(CommandKind::kRead)),
              static_cast<unsigned long long>(q.commands(CommandKind::kWrite)),
              static_cast<unsigned long long>(q.commands(CommandKind::kTrim)),
              static_cast<unsigned long long>(q.commands(CommandKind::kFlush)),
              q.iops());
  std::printf("read latency: mean %.1f us, p50 %.1f us, p99 %.1f us, "
              "p999 %.1f us (stall share %.2f%%)\n",
              q.mean_latency_s(CommandKind::kRead) * 1e6,
              q.latency_quantile_s(CommandKind::kRead, 0.50) * 1e6,
              q.latency_quantile_s(CommandKind::kRead, 0.99) * 1e6,
              q.latency_quantile_s(CommandKind::kRead, 0.999) * 1e6,
              q.stall_seconds() /
                  (q.span_s() > 0 ? q.span_s() : 1.0) * 100.0);

  // Endurance projection for this workload's limiting block.
  const flash::RberModel model(params);
  const ecc::EccModel ecc{config.ecc};
  const core::EnduranceEvaluator evaluator(model, ecc);
  const auto pressure =
      static_cast<double>(drive.ssd().max_reads_per_interval());
  const double base = evaluator.endurance_pe(pressure, false);
  const double tuned = evaluator.endurance_pe(pressure, true);
  std::printf("\nendurance projection (hottest block absorbs %.0f reads per "
              "refresh interval):\n", pressure);
  std::printf("  baseline:     %.0f P/E cycles\n", base);
  std::printf("  Vpass Tuning: %.0f P/E cycles (%+.1f%%)\n", tuned,
              (tuned / base - 1.0) * 100.0);
  return 0;
}
