// vpass_explorer — walk one refresh interval day by day and print every
// decision the Vpass Tuning controller makes for a block: the measured
// MEE, the remaining ECC margin, the step-search probes, and the chosen
// pass-through voltage; then show the interval's peak RBER against the
// unmitigated baseline, and finally replay the same pressure through the
// queued host interface (host::SsdDevice) to see what the mechanism's
// probe overhead does to host-observed read latency.
//
// Usage: ./build/examples/vpass_explorer [pe_cycles] [reads_per_interval]
//        defaults: 8000 P/E, 200000 reads
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/endurance.h"
#include "core/vpass_tuning.h"
#include "ecc/ecc_model.h"
#include "flash/rber_model.h"
#include "host/driver.h"
#include "host/ssd_device.h"
#include "workload/generator.h"
#include "workload/profiles.h"

using namespace rdsim;

int main(int argc, char** argv) {
  const double pe = argc > 1 ? std::atof(argv[1]) : 8000.0;
  const double reads = argc > 2 ? std::atof(argv[2]) : 200e3;
  const auto params = flash::FlashModelParams::default_2ynm();
  const flash::RberModel model(params);
  const ecc::EccModel ecc{ecc::EccConfig::paper_provisioning()};
  core::VpassTuningController controller(ecc, params.vpass_nominal);

  std::printf("block: %.0f P/E cycles, %.0f reads per 7-day refresh "
              "interval\n", pe, reads);
  std::printf("ECC: %d bits/codeword usable of %d, %d codewords/page\n",
              ecc.usable_capability(), ecc.capability(),
              ecc.config().codewords_per_page);

  std::printf("\n%4s %8s %6s %8s %8s %10s %9s\n", "day", "action", "MEE",
              "margin", "probes", "Vpass", "dVpass%");
  double disturb_rber = 0.0;
  double vpass = params.vpass_nominal;
  for (int day = 0; day < 7; ++day) {
    core::AnalyticBlockProbe probe(
        model, ecc,
        {pe, static_cast<double>(day), 0.0, params.vpass_nominal});
    // Fold the accumulated disturb into the probe's view via the
    // condition's reads field at nominal Vpass equivalence.
    const double eq_reads = disturb_rber / model.disturb_rber(pe, 1.0, vpass);
    probe.set_condition({pe, static_cast<double>(day),
                         eq_reads > 0 ? eq_reads : 0.0, vpass});
    const auto decision = day == 0
                              ? controller.relearn(probe)
                              : controller.verify_or_raise(probe, vpass);
    vpass = decision.vpass;
    std::printf("%4d %8s %6d %8d %8d %10.1f %8.2f%%\n", day,
                day == 0 ? "relearn" : "verify", decision.mee,
                decision.margin, decision.probe_steps, vpass,
                (1.0 - vpass / params.vpass_nominal) * 100.0);
    disturb_rber += model.disturb_rber(pe, reads / 7.0, vpass);
  }

  const core::EnduranceEvaluator evaluator(model, ecc);
  const auto base = evaluator.simulate_interval(pe, reads, false);
  const auto tuned = evaluator.simulate_interval(pe, reads, true);
  std::printf("\ninterval peak RBER: baseline %.3e, tuned %.3e "
              "(%.0f%% lower; ECC capability %.1e)\n",
              base.peak_rber, tuned.peak_rber,
              (1.0 - tuned.peak_rber / base.peak_rber) * 100.0,
              params.ecc_capability_rber);
  std::printf("endurance at this pressure: baseline %.0f, tuned %.0f P/E "
              "(%+.1f%%)\n",
              evaluator.endurance_pe(reads, false),
              evaluator.endurance_pe(reads, true),
              (evaluator.endurance_pe(reads, true) /
                   evaluator.endurance_pe(reads, false) -
               1.0) * 100.0);

  // The same mechanism through the host's eyes: a week of a read-heavy
  // workload on a small drive, with and without tuning. The probe reads
  // run in the nightly maintenance window, so the host pays for them as
  // a stall reservation, not per command.
  std::printf("\nhost-observed read latency over a 7-day replay "
              "(64-block drive, umass-web):\n");
  for (const bool tuning : {false, true}) {
    ssd::SsdConfig config;
    config.ftl.blocks = 64;
    config.ftl.pages_per_block = 32;
    config.ftl.overprovision = 0.2;
    config.ftl.gc_free_target = 4;
    config.vpass_tuning = tuning;
    host::SsdDevice drive(config, params, /*seed=*/3, /*queue_count=*/2);
    host::warm_fill(drive);
    auto profile = workload::profile_by_name("umass-web");
    profile.daily_page_ios = 30000;  // Scaled to the small drive.
    workload::TraceGenerator gen(profile, drive.logical_pages(), 7,
                                 drive.queue_count());
    // Start the workload clock after the fill so no command queues
    // behind the warm-up writes.
    const double fill_end_s = drive.now_s();
    std::vector<host::Completion> done;
    for (int day = 0; day < 7; ++day) {
      for (host::Command c : gen.day_commands()) {
        c.submit_time_s += fill_end_s;
        drive.submit(c);
      }
      done.clear();
      drive.drain(&done);
      drive.end_of_day();
    }
    const auto& q = drive.stats();
    std::printf("  %-8s p50 %7.1f us, p99 %7.1f us, p999 %8.1f us, "
                "probe time %.2f s/day\n",
                tuning ? "tuned" : "baseline",
                q.latency_quantile_s(host::CommandKind::kRead, 0.50) * 1e6,
                q.latency_quantile_s(host::CommandKind::kRead, 0.99) * 1e6,
                q.latency_quantile_s(host::CommandKind::kRead, 0.999) * 1e6,
                drive.ssd().stats().tuning_seconds_per_day());
  }
  return 0;
}
