// quickstart — a ten-minute tour of rdsim's public API.
//
// 1. Build a simulated 2Y-nm MLC NAND chip and wear a block to 8K P/E.
// 2. Program it and watch read disturb push the raw bit error rate up.
// 3. Mitigate: let the Vpass Tuning controller pick a lower pass-through
//    voltage and compare the disturb accumulation.
// 4. Recover: push the block past ECC's limit and let RDR pull the errors
//    back into correctable range.
// 5. Drive the same Monte Carlo cells through the NVMe-style queued host
//    interface (host::McChipDevice): typed commands in, per-command
//    completion records out.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>
#include <vector>

#include "core/rdr.h"
#include "core/vpass_tuning.h"
#include "ecc/ecc_model.h"
#include "flash/rber_model.h"
#include "host/mc_chip_device.h"
#include "nand/chip.h"

using namespace rdsim;

int main() {
  const auto params = flash::FlashModelParams::default_2ynm();

  // --- 1. A chip with one characterization block at 8K P/E -----------------
  nand::Chip chip(nand::Geometry::characterization(), params, /*seed=*/7);
  auto& block = chip.block(0);
  block.add_wear(8000);
  block.program_random();
  std::printf("block: %u wordlines x %u bitlines, %u P/E cycles\n",
              block.geometry().wordlines_per_block, block.geometry().bitlines,
              block.pe_cycles());

  // --- 2. Read disturb in action -------------------------------------------
  const nand::PageAddress victim{30, nand::PageKind::kMsb};
  std::printf("\nread disturb at nominal Vpass (%.0f):\n",
              params.vpass_nominal);
  std::printf("%12s %12s\n", "reads", "page errors");
  for (const double reads : {0.0, 100e3, 300e3, 1e6}) {
    nand::Chip fresh(nand::Geometry::characterization(), params, 7);
    auto& b = fresh.block(0);
    b.add_wear(8000);
    b.program_random();
    b.apply_reads(victim.wordline + 1, reads);
    std::printf("%12.0f %12d\n", reads, b.count_errors(victim));
  }

  // --- 3. Mitigation: Vpass Tuning -----------------------------------------
  const ecc::EccModel ecc{ecc::EccConfig::mc_provisioning()};
  core::McBlockProbe probe(block);
  core::VpassTuningController controller(ecc, params.vpass_nominal);
  const auto decision = controller.relearn(probe);
  std::printf("\nVpass Tuning: worst page has %d errors, margin %d bits\n",
              decision.mee, decision.margin);
  std::printf("  -> tuned Vpass %.0f (%.1f%% below nominal)\n", decision.vpass,
              (1.0 - decision.vpass / params.vpass_nominal) * 100.0);

  // Same disturb dose, tuned vs nominal pass-through voltage.
  for (const bool tuned : {false, true}) {
    nand::Chip fresh(nand::Geometry::characterization(), params, 7);
    auto& b = fresh.block(0);
    b.add_wear(8000);
    b.program_random();
    if (tuned) b.set_vpass(decision.vpass);
    b.apply_reads(victim.wordline + 1, 1e6);
    std::printf("  1M reads at %s Vpass: %d errors on the victim page\n",
                tuned ? "tuned  " : "nominal", b.count_errors(victim));
  }

  // --- 4. Recovery: RDR ------------------------------------------------------
  block.apply_reads(victim.wordline + 1, 1e6);
  const core::ReadDisturbRecovery rdr;
  const auto result = rdr.recover(block, victim.wordline);
  std::printf("\nRDR on the disturbed wordline:\n");
  std::printf("  raw errors before: %d (RBER %.2e)\n", result.errors_before,
              result.rber_before());
  std::printf("  raw errors after:  %d (RBER %.2e, %.0f%% reduction)\n",
              result.errors_after, result.rber_after(),
              (1.0 - result.rber_after() / result.rber_before()) * 100.0);
  std::printf("  %d boundary cells examined, %d re-labeled\n",
              result.cells_in_window, result.cells_relabeled);

  // --- 5. The queued host interface ----------------------------------------
  // The same physics, driven the way a host drives a drive: submit typed
  // commands into submission queues, poll completion records back.
  host::McChipDevice device(nand::Geometry::tiny(), params, /*seed=*/7,
                            /*queue_count=*/2);
  host::Command read;
  read.kind = host::CommandKind::kRead;
  read.pages = 4;
  for (std::uint16_t q = 0; q < 2; ++q) {
    read.lpn = q * 16;
    read.queue = q;
    device.submit(read);
  }
  std::vector<host::Completion> completions;
  device.drain(&completions);
  std::printf("\nqueued host interface (%u queues, %llu logical pages):\n",
              device.queue_count(),
              static_cast<unsigned long long>(device.logical_pages()));
  for (const auto& c : completions)
    std::printf("  %s\n", host::to_string(c).c_str());
  std::printf("  %llu pages read, %llu raw bit errors observed by the "
              "host path\n",
              static_cast<unsigned long long>(device.pages_read()),
              static_cast<unsigned long long>(device.read_bit_errors()));
  return 0;
}
