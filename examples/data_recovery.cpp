// data_recovery — end-to-end demonstration of Read Disturb Recovery with a
// real BCH code in the loop, on a chip fronted by the queued host
// interface (host::McChipDevice):
//
// 1. Encode a payload with BCH and program it into a wordline of a worn
//    block (bit-for-bit, via the per-cell MLC data path).
// 2. Hammer the block with a million reads; a host read command of the
//    victim page now returns more raw errors than the code's correction
//    capability t, and decoding fails — this is the traditional "point
//    of data loss".
// 3. Run RDR: disturb-prone boundary cells are identified by inducing
//    extra reads and measuring per-cell threshold shifts, then re-labeled.
// 4. Decode the recovered page: the remaining errors fit within t, and
//    the payload comes back intact.
//
// Usage: ./build/examples/data_recovery
#include <cstdio>
#include <vector>

#include "common/rng.h"
#include "core/rdr.h"
#include "ecc/bch.h"
#include "host/mc_chip_device.h"
#include "nand/chip.h"

using namespace rdsim;

int main() {
  const auto params = flash::FlashModelParams::default_2ynm();
  host::McChipDevice device(nand::Geometry::characterization(), params, 5);
  auto& block = device.chip().block(0);
  block.erase();  // Replace the device's fill with our own payload below.
  block.add_wear(8000);

  // BCH over GF(2^14): 8192 data bits with t = 30. The payload lives on
  // the MSB page of the victim wordline; the parity travels on its LSB
  // page (a common controller layout).
  const ecc::BchCode code(14, 40, 8192);
  std::printf("BCH(%d, %d, t=%d): %d parity bits\n", code.codeword_bits(),
              code.data_bits(), code.t(), code.parity_bits());

  Rng rng(99);
  ecc::BitVec payload(8192);
  for (auto& b : payload) b = static_cast<std::uint8_t>(rng.next() & 1);
  const auto codeword = code.encode(payload);

  const std::uint32_t victim_wl = 20;
  const auto& geom = block.geometry();
  nand::PageBits lsb(geom.bitlines), msb(geom.bitlines);
  for (std::uint32_t wl = 0; wl < geom.wordlines_per_block; ++wl) {
    for (std::uint32_t bl = 0; bl < geom.bitlines; ++bl) {
      if (wl == victim_wl) {
        msb[bl] = bl < static_cast<std::uint32_t>(code.data_bits())
                      ? codeword[bl]
                      : static_cast<std::uint8_t>(rng.next() & 1);
        lsb[bl] = bl < static_cast<std::uint32_t>(code.parity_bits())
                      ? codeword[code.data_bits() + bl]
                      : static_cast<std::uint8_t>(rng.next() & 1);
      } else {
        msb[bl] = static_cast<std::uint8_t>(rng.next() & 1);
        lsb[bl] = static_cast<std::uint8_t>(rng.next() & 1);
      }
    }
    block.program_wordline(wl, lsb, msb);
  }

  // Assemble the received codeword from a vector of per-cell states.
  auto assemble = [&](const std::vector<flash::CellState>& states) {
    ecc::BitVec received(code.codeword_bits());
    for (int i = 0; i < code.data_bits(); ++i)
      received[i] = static_cast<std::uint8_t>(flash::msb_of(states[i]));
    for (int i = 0; i < code.parity_bits(); ++i)
      received[code.data_bits() + i] =
          static_cast<std::uint8_t>(flash::lsb_of(states[i]));
    return received;
  };
  auto sense_states = [&]() {
    std::vector<flash::CellState> states(geom.bitlines);
    for (std::uint32_t bl = 0; bl < geom.bitlines; ++bl)
      states[bl] = block.model().classify(block.present_vth(victim_wl, bl));
    return states;
  };

  // 2. Hammer and fail. The symptom arrives through the host interface:
  // a queued read of the victim MSB page reports the raw error count.
  block.apply_reads(victim_wl + 1, 8e5);
  {
    host::Command read;
    read.kind = host::CommandKind::kRead;
    read.lpn = 2ull * victim_wl + 1;  // MSB page of the victim wordline.
    device.submit(read);
    std::vector<host::Completion> done;
    device.drain(&done);
    std::printf("\nhost read after 800K disturbs: %s\n",
                host::to_string(done[0]).c_str());
    std::printf("  -> %llu raw bit errors on the wordline\n",
                static_cast<unsigned long long>(device.read_bit_errors()));
  }
  auto received = assemble(sense_states());
  const int raw_errors = ecc::BchCode::hamming_distance(received, codeword);
  auto attempt = code.decode(received);
  std::printf("\nafter 800K read disturbs: %d raw bit errors on the MSB "
              "payload (t = %d)\n",
              raw_errors, code.t());
  std::printf("BCH decode: %s\n",
              attempt.ok ? "OK (unexpected!)" : "FAILED - uncorrectable");
  if (attempt.ok) return 1;

  // 3. RDR.
  core::RdrOptions aggressive;
  aggressive.prone_factor = 1.6;  // Offline recovery affords a deeper sweep.
  const core::ReadDisturbRecovery rdr(aggressive);
  const auto result = rdr.recover(block, victim_wl);
  std::printf("\nRDR: %d -> %d raw errors on the wordline "
              "(%d boundary cells, %d re-labeled)\n",
              result.errors_before, result.errors_after,
              result.cells_in_window, result.cells_relabeled);

  // 4. Hand the recovered states to ECC.
  const auto recovered = assemble(result.corrected_states);
  const int post_errors = ecc::BchCode::hamming_distance(recovered, codeword);
  attempt = code.decode(recovered);
  std::printf("\nafter RDR: %d raw errors handed to BCH\n", post_errors);
  if (attempt.ok && attempt.data == payload) {
    std::printf("BCH decode: OK — payload recovered intact "
                "(%d corrections)\n", attempt.corrected);
    return 0;
  }
  std::printf("BCH decode: %s\n", attempt.ok
                                      ? "OK but payload mismatch (bug!)"
                                      : "still uncorrectable on this block");
  return 1;
}
