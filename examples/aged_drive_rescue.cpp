// aged_drive_rescue — apply each of the repository's read-path rescue
// mechanisms to the same badly aged, heavily read block and compare what
// each one recovers:
//
//   * ROR-style Vref learning — re-centers the read references on the
//     shifted distributions (helps both error sources);
//   * RDR  — re-labels disturb-prone cells above a boundary (targets the
//     read-disturb component);
//   * RFR  — re-labels fast-leaking cells below a boundary (targets the
//     retention component; its bake costs extra retention).
//
// The symptom is demonstrated first through the queued host interface
// (host::McChipDevice): a read command against the aged block comes back
// with a raw error count far beyond what ECC provisions for — that is
// the moment a controller escalates to the offline rescue mechanisms,
// which then operate on the block itself.
//
// Each mechanism is evaluated independently against the factory-reference
// baseline; they are complementary in a real controller (Vref learning in
// the normal read path, RDR/RFR as offline last-resort recovery).
//
// Usage: ./build/examples/aged_drive_rescue [pe] [age_days] [reads]
//        defaults: 10000 P/E, 25 days, 600000 reads
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/rdr.h"
#include "core/rfr.h"
#include "core/vref_optimizer.h"
#include "host/mc_chip_device.h"
#include "nand/chip.h"

using namespace rdsim;

namespace {

nand::Chip make_block(std::uint32_t pe, double age, double reads,
                      std::uint32_t wl) {
  const auto params = flash::FlashModelParams::default_2ynm();
  nand::Chip chip(nand::Geometry::characterization(), params, 2024);
  auto& block = chip.block(0);
  block.add_wear(pe);
  block.program_random();
  block.advance_time(age);
  block.apply_reads(wl + 1, reads);
  return chip;
}

}  // namespace

int main(int argc, char** argv) {
  const auto pe = static_cast<std::uint32_t>(
      argc > 1 ? std::atoi(argv[1]) : 10000);
  const double age = argc > 2 ? std::atof(argv[2]) : 25.0;
  const double reads = argc > 3 ? std::atof(argv[3]) : 600e3;
  const std::uint32_t wl = 30;
  const auto params = flash::FlashModelParams::default_2ynm();

  std::printf("block: %u P/E cycles, %.0f days retention, %.0f read "
              "disturbs; victim wordline %u\n\n", pe, age, reads, wl);

  // The host-visible symptom: a queued read of the victim page reports a
  // raw error count the drive's ECC cannot absorb.
  {
    host::McChipDevice device(nand::Geometry::characterization(), params,
                              2024);
    auto& block = device.chip().block(0);
    block.erase();
    block.add_wear(pe);
    block.program_random();
    block.advance_time(age);
    block.apply_reads(wl + 1, reads);

    host::Command read;
    read.kind = host::CommandKind::kRead;
    read.lpn = 2ull * wl + 1;  // The victim wordline's MSB page.
    device.submit(read);
    std::vector<host::Completion> done;
    device.drain(&done);
    std::printf("host read of the victim page: %llu raw bit errors in "
                "%.0f us\n  %s\n\n",
                static_cast<unsigned long long>(device.read_bit_errors()),
                done[0].latency_s() * 1e6, host::to_string(done[0]).c_str());
  }

  std::printf("%-24s %12s %12s %10s\n", "mechanism", "errors", "delta",
              "relabeled");

  int baseline = 0;
  {
    auto chip = make_block(pe, age, reads, wl);
    const auto refs = core::VrefOptimizer::defaults(chip.block(0));
    baseline =
        core::VrefOptimizer::count_errors_with_refs(chip.block(0), wl, refs);
    std::printf("%-24s %12d %12s %10s\n", "factory refs (baseline)",
                baseline, "-", "-");
  }
  {
    auto chip = make_block(pe, age, reads, wl);
    const core::VrefOptimizer optimizer;
    const auto learned = optimizer.learn(chip.block(0), wl);
    const int errors = core::VrefOptimizer::count_errors_with_refs(
        chip.block(0), wl, learned);
    std::printf("%-24s %12d %+12d %10s\n", "learned refs (ROR)", errors,
                errors - baseline, "-");
  }
  {
    auto chip = make_block(pe, age, reads, wl);
    const auto r = core::ReadDisturbRecovery().recover(chip.block(0), wl);
    std::printf("%-24s %12d %+12d %10d\n", "RDR (disturb errors)",
                r.errors_after, r.errors_after - baseline, r.cells_relabeled);
  }
  {
    auto chip = make_block(pe, age, reads, wl);
    const auto r = core::RetentionFailureRecovery().recover(chip.block(0), wl);
    std::printf("%-24s %12d %+12d %10d\n", "RFR (retention errors)",
                r.errors_after, r.errors_after - baseline, r.cells_relabeled);
  }
  return 0;
}
