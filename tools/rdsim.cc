// rdsim — the unified experiment driver.
//
// One binary reproduces every paper figure and ablation study:
//
//   rdsim --list
//   rdsim --experiment fig03
//   rdsim --experiment fig10 --threads 8 --seed 7 --csv out/fig10.csv
//   rdsim --experiment fig08 --tiny            # fast smoke run
//
// Experiments are sharded across a thread pool with per-shard Rng streams
// derived only from (--seed, shard index), so the output — stdout or CSV —
// is byte-identical for any --threads value.
#include <csignal>
#include <cstdio>
#include <exception>
#include <iostream>

#include "cfg/profiles.h"
#include "fleet/fleet.h"
#include "sim/cli.h"
#include "sim/experiment.h"

namespace {

// SIGINT/SIGTERM request a graceful stop: long-running experiments that
// poll this flag (the fleet runner, at epoch boundaries) write a final
// checkpoint and raise fleet::Interrupted, which main() turns into a
// clean exit 0 with resume instructions.
volatile std::sig_atomic_t g_stop = 0;

extern "C" void handle_stop_signal(int) { g_stop = 1; }

void print_usage(std::FILE* out) {
  std::fprintf(out,
               "usage: rdsim --experiment NAME [flags]\n"
               "       rdsim --list\n\nFlags:\n%s",
               rdsim::sim::cli_flag_help());
  // Enumerate the registry so --help is self-contained (the docs CI job
  // snapshots this text against docs/rdsim-help.txt; adding an
  // experiment without regenerating the snapshot fails that job).
  std::fprintf(out, "\nExperiments:\n");
  for (const auto& e : rdsim::sim::experiments())
    std::fprintf(out, "  %-20s %s\n", e.name, e.title);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rdsim::sim;
  CliOptions options = parse_cli(argc, argv, /*allow_experiment=*/true);
  if (options.help) {
    print_usage(stdout);
    return 0;
  }
  if (!options.error.empty()) {
    std::fprintf(stderr, "rdsim: %s\n", options.error.c_str());
    print_usage(stderr);
    return 2;
  }
  if (options.list) {
    std::printf("%-20s %s\n", "name", "description");
    for (const auto& e : experiments())
      std::printf("%-20s %s\n", e.name, e.title);
    return 0;
  }
  if (options.list_profiles) {
    std::printf("%-20s %s\n", "profile", "description");
    for (const auto& p : rdsim::cfg::builtin_profiles())
      std::printf("%-20s %s\n", p.name.c_str(), p.description.c_str());
    return 0;
  }
  if (options.experiment.empty()) {
    print_usage(stderr);
    return 2;
  }
  const ExperimentInfo* info = find_experiment(options.experiment);
  if (info == nullptr) {
    std::fprintf(stderr,
                 "rdsim: unknown experiment '%s' (see rdsim --list)\n",
                 options.experiment.c_str());
    return 2;
  }
  std::signal(SIGINT, handle_stop_signal);
  std::signal(SIGTERM, handle_stop_signal);
  options.config.stop_flag = &g_stop;
  try {
    const Table table = run_experiment(*info, options.config);
    if (options.csv_requested || !options.csv_path.empty()) {
      const std::string path = options.csv_path.empty()
                                   ? default_csv_path(options, info->name)
                                   : options.csv_path;
      if (!write_csv_file(path, table)) return 1;
      std::fprintf(stderr, "rdsim: wrote %s\n", path.c_str());
    } else if (!options.quiet) {
      table.write(std::cout);
    }
  } catch (const rdsim::fleet::Interrupted& e) {
    // A requested stop (Ctrl-C, SIGTERM, or --stop-after-checkpoints)
    // is a clean exit: the final checkpoint is already on disk.
    std::fprintf(stderr, "rdsim: %s\n", e.what());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "rdsim: %s\n", e.what());
    return 1;
  }
  return 0;
}
