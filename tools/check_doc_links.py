#!/usr/bin/env python3
"""Markdown link checker for the docs CI job (stdlib only).

Scans the given markdown files for inline links/images and verifies that
every relative target exists in the repository; heading anchors within
checked markdown files are verified against a GitHub-style slug of the
target's headings. External links (http/https/mailto) are skipped — CI
must not depend on network reachability.

Usage: tools/check_doc_links.py FILE.md [FILE.md ...]
Exit status: 0 when every link resolves, 1 otherwise (each failure is
printed as `file: broken link 'target'`).
"""
import re
import sys
from pathlib import Path

# Inline markdown links/images: [text](target) — stops at the first ')'
# or '#', which is fine for the repository's plain relative links.
LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)\)")
HEADING = re.compile(r"^#+\s+(.*)$", re.MULTILINE)
FENCE = re.compile(r"^(```|~~~).*?^\1\s*$", re.MULTILINE | re.DOTALL)


def github_slug(heading: str) -> str:
    """The anchor GitHub generates for a heading."""
    slug = heading.strip().lower()
    slug = re.sub(r"[^\w\- ]", "", slug)  # drop punctuation
    return slug.replace(" ", "-")


def anchors_of(path: Path) -> set:
    """Every anchor GitHub generates for `path`: one slug per heading
    (comment lines inside fenced code blocks are not headings), with
    duplicate headings suffixed -1, -2, … like GitHub does."""
    text = FENCE.sub("", path.read_text())
    anchors, seen = set(), {}
    for heading in HEADING.findall(text):
        slug = github_slug(heading)
        n = seen.get(slug, 0)
        seen[slug] = n + 1
        anchors.add(slug if n == 0 else f"{slug}-{n}")
    return anchors


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    failures = 0
    for name in argv[1:]:
        md = Path(name)
        # Fenced code blocks render literally: link-shaped text inside
        # them is not a link (and their #-lines are not headings).
        text = FENCE.sub("", md.read_text())
        for target in LINK.findall(text):
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            path_part, _, anchor = target.partition("#")
            dest = md if not path_part else (md.parent / path_part)
            if not dest.exists():
                print(f"{md}: broken link '{target}'")
                failures += 1
                continue
            if anchor and dest.suffix == ".md":
                if github_slug(anchor) not in anchors_of(dest):
                    print(f"{md}: broken anchor '{target}'")
                    failures += 1
    if failures == 0:
        print(f"check_doc_links: {len(argv) - 1} files OK")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
