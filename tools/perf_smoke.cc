// Self-timed performance smoke harness for the Monte Carlo hot paths.
//
// Unlike bench/perf_micro.cc this needs no google-benchmark, so it runs
// anywhere the simulator builds; CI's perf job archives its JSON output as
// BENCH_<sha>.json to track the perf trajectory PR over PR (see README
// "Performance"). Metrics:
//   page_sense_ns    one whole-wordline sense (count_errors) on a
//                    disturbed 8K-P/E characterization block, warm (all
//                    wordlines pre-materialized — the steady-state kernel)
//   pages_per_s      derived throughput of the above
//   cells_per_s      the same in sensed cells
//   page_read_ns     read_page (sense + data assembly + dose accounting)
//   retry_scan_ns    one read-retry scan of a wordline
//   program_block_ms programming a whole block with random data (pure
//                    bookkeeping since lazy materialization)
//   make_aged_chip_ms  chip construction + pre-wear + program, the once-
//                    per-measurement-point setup the MC experiments pay
//   materialize_ns_per_wl  first touch of one programmed wordline: the
//                    deferred data-bit + program-sample cost plus one sense
//   fig04_tiny_ms    end-to-end tiny run of the fig04 experiment
//   fig02_tiny_ms    end-to-end tiny run of fig02 (Monte Carlo heavy)
//
// Drive-level block (the queued host interface on a tiny analytic
// drive, closed-loop, so the perf trajectory tracks system-level
// numbers and not just page-sense ns):
//   drive_qd1_iops / drive_qd1_p99_read_us    queue depth 1
//   drive_qd32_iops / drive_qd32_p99_read_us  queue depth 32
//   drive_kcmds_per_s_wall   simulator speed: thousand commands serviced
//                            per wall-clock second across both runs
//
// Trace-replay block (the replay subsystem end to end: streaming CSV
// parse + LBA remap + open-loop windowed submit/drain + latency
// tracking, on an in-memory synthetic trace so the metric needs no
// checked-in data and is not dominated by disk I/O):
//   trace_replay_kcmds_per_s_wall  thousand trace commands replayed per
//                                  wall-clock second
//
// Fleet block (src/fleet end to end: a small fleet of tiny analytic
// drives with lifecycle tracking, lognormal fault rates and teardown
// probes, run to its horizon on a 4-wide pool):
//   fleet_drive_days_per_s_wall  simulated drive-days per wall-clock
//                                second
//
// Sharded Monte-Carlo drive block (host::ShardedDevice, four pre-aged
// chips, real per-cell senses, open-loop batched replay — the same
// stream at three worker-pool widths, so the trajectory tracks both the
// MC drive's simulator speed and its thread scaling; the simulated
// results are byte-identical across the three, only the wall clock
// moves):
//   sharded_w1_kcmds_per_s_wall / _w4_ / _w8_
//   sharded_p99_read_us   simulated p99 (worker-independent)
//
// Multi-tenant QoS block (the PR 10 arbitration path end to end: a
// victim + bulk-aggressor tenant pair through the weighted arbiter on a
// 4-shard analytic drive, burst-window driven — submit-time keying,
// sorted pending take, withheld completion release, per-tenant stats):
//   qos_tenants_kcmds_per_s_wall  thousand tenant commands serviced per
//                                 wall-clock second
//   qos_tenants_victim_p999_us    simulated victim read p999 (a
//                                 deterministic number, not a wall metric)
//
// With --compare BASELINE.json (CI passes bench/BENCH_baseline.json) each
// metric is checked against the committed baseline and any regression
// beyond 15% prints a PERF WARNING to stderr — warn-only, since absolute
// numbers shift with the host; the committed baseline documents the
// expected order of magnitude and catches step-change regressions.
//
// Usage: perf_smoke [--out PATH] [--reps N] [--sha HEX] [--compare PATH]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "cfg/spec.h"
#include "common/thread_pool.h"
#include "fleet/fleet.h"
#include "host/driver.h"
#include "host/factory.h"
#include "host/sharded_device.h"
#include "host/ssd_device.h"
#include "nand/chip.h"
#include "replay/replayer.h"
#include "sim/experiment.h"
#include "workload/generator.h"
#include "workload/profiles.h"
#include "workload/tenants.h"
#include "workload/trace_io.h"

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

/// Times `op` over `reps` repetitions and returns ns per repetition.
template <typename Fn>
double time_ns(int reps, Fn&& op) {
  const auto start = Clock::now();
  for (int i = 0; i < reps; ++i) op(i);
  return ms_since(start) * 1e6 / reps;
}

rdsim::sim::ExperimentConfig tiny_config() {
  rdsim::sim::ExperimentConfig config;
  config.seed = 42;
  config.threads = 1;
  config.geometry = rdsim::nand::Geometry::tiny();
  config.scale = 0.02;
  return config;
}

struct DriveMetrics {
  double iops = 0.0;         ///< Simulated commands per simulated second.
  double p99_read_us = 0.0;  ///< Simulated p99 read latency.
  double wall_ms = 0.0;      ///< Wall-clock time the replay took.
  std::uint64_t commands = 0;
};

/// Closed-loop replay of `commands` mixed commands at a fixed queue depth
/// against a tiny analytic drive through the queued host interface.
DriveMetrics drive_replay(int depth, std::uint64_t commands) {
  using namespace rdsim;
  const auto params = flash::FlashModelParams::default_2ynm();
  ssd::SsdConfig config;
  config.ftl.blocks = 64;
  config.ftl.pages_per_block = 32;
  config.ftl.overprovision = 0.2;
  config.ftl.gc_free_target = 4;
  config.vpass_tuning = true;
  host::SsdDevice device(config, params, /*seed=*/42, /*queue_count=*/4);
  host::warm_fill(device);

  workload::WorkloadProfile profile = workload::profile_by_name("umass-web");
  profile.daily_page_ios = static_cast<double>(commands);
  profile.trim_fraction = 0.05;
  profile.flush_period_s = 1800.0;
  workload::TraceGenerator gen(profile, device.logical_pages(), 42,
                               device.queue_count());
  std::vector<host::Command> batch;
  batch.reserve(commands);
  for (std::uint64_t i = 0; i < commands; ++i)
    batch.push_back(gen.next_command());
  host::ClosedLoopDriver driver(device, depth);
  // Wall-clock the replay alone: construction, fill, and stream
  // generation must not pollute the command-servicing speed metric.
  const auto wall_start = Clock::now();
  driver.run(batch);
  device.end_of_day();

  DriveMetrics m;
  const auto& stats = device.stats();
  m.iops = stats.iops();
  m.p99_read_us =
      stats.latency_quantile_s(rdsim::host::CommandKind::kRead, 0.99) * 1e6;
  m.wall_ms = ms_since(wall_start);
  m.commands = commands;
  return m;
}

/// Open-loop batched replay of `commands` mixed commands against a
/// four-chip sharded Monte Carlo drive with a `workers`-wide service
/// pool: submit the whole arrival-stamped stream, then drain once, so
/// the device services flush-separated segments with all four chips in
/// flight — the replay mode that exposes the pool's scaling (closed-loop
/// driving pins the segment size to ~1 command, which measures sync
/// overhead, not servicing speed). The simulated stats are byte-identical
/// for any worker count; only wall_ms varies — that pair is exactly what
/// the sharded BENCH block tracks.
DriveMetrics sharded_replay(int workers, std::uint64_t commands) {
  using namespace rdsim;
  const auto params = flash::FlashModelParams::default_2ynm();
  host::ShardedDevice device(nand::Geometry::tiny(), params, /*seed=*/42,
                             /*shards=*/4, workers, /*queue_count=*/4);
  for (std::uint32_t s = 0; s < device.shard_count(); ++s) {
    nand::Chip& chip = device.shard_chip(s);
    for (std::size_t b = 0; b < chip.block_count(); ++b) {
      chip.block(b).erase();
      chip.block(b).add_wear(8000);
      chip.block(b).program_random();
    }
  }

  workload::WorkloadProfile profile =
      workload::profile_by_name("fiu-web-vm");
  profile.daily_page_ios = static_cast<double>(commands) * 4.0;
  workload::TraceGenerator gen(profile, device.logical_pages(), 42,
                               device.queue_count());
  std::vector<host::Command> batch;
  batch.reserve(commands);
  for (std::uint64_t i = 0; i < commands; ++i)
    batch.push_back(gen.next_command());
  std::vector<host::Completion> done;
  done.reserve(commands);
  const auto wall_start = Clock::now();
  for (const auto& c : batch) device.submit(c);
  device.drain(&done);

  DriveMetrics m;
  const auto& stats = device.stats();
  m.iops = stats.iops();
  m.p99_read_us =
      stats.latency_quantile_s(rdsim::host::CommandKind::kRead, 0.99) * 1e6;
  m.wall_ms = ms_since(wall_start);
  m.commands = commands;
  return m;
}

/// Open-loop replay of an in-memory synthetic CSV trace through the
/// replay subsystem against a tiny analytic drive: the full streaming
/// path (parse + remap + windowed submit/drain + latency tracking), with
/// the trace text prepared up front so the wall clock times replay alone.
DriveMetrics trace_replay(std::uint64_t commands) {
  using namespace rdsim;
  const auto params = flash::FlashModelParams::default_2ynm();
  ssd::SsdConfig config;
  config.ftl.blocks = 64;
  config.ftl.pages_per_block = 32;
  config.ftl.overprovision = 0.2;
  config.ftl.gc_free_target = 4;
  config.vpass_tuning = true;
  host::SsdDevice device(config, params, /*seed=*/42, /*queue_count=*/4);
  host::warm_fill(device);

  workload::WorkloadProfile profile = workload::profile_by_name("umass-web");
  profile.daily_page_ios = static_cast<double>(commands);
  workload::TraceGenerator gen(profile, device.logical_pages(), 42,
                               device.queue_count());
  std::vector<workload::IoRequest> trace;
  trace.reserve(commands);
  while (trace.size() < commands) {
    for (const workload::IoRequest& r : gen.day()) {
      if (trace.size() == commands) break;
      trace.push_back(r);
    }
  }
  std::ostringstream text;
  workload::write_trace_csv(text, trace);
  std::istringstream in(text.str());

  replay::ReplayOptions options;
  options.format = replay::TraceFormat::kCsv;
  options.remap = replay::RemapPolicy::kHash;
  options.mode = replay::ReplayMode::kOpen;
  options.speedup = 100.0;
  replay::LatencyTracker tracker(/*window_s=*/10.0);
  const auto wall_start = Clock::now();
  const replay::ReplaySummary summary =
      replay::replay_trace(in, device, options, &tracker);
  device.end_of_day();

  DriveMetrics m;
  m.iops = device.stats().iops();
  m.p99_read_us = tracker.read_quantile_us(0.99);
  m.wall_ms = ms_since(wall_start);
  m.commands = summary.commands;
  return m;
}

/// Runs a small fleet (16 tiny analytic drives, 20 days, lifecycle +
/// teardown probes) to its horizon on a 4-wide pool and returns the
/// simulated drive-days per wall-clock second.
double fleet_drive_days_per_s() {
  using namespace rdsim;
  cfg::ScenarioSpec spec;
  spec.name = "perf_fleet";
  spec.drive.backend = cfg::Backend::kAnalytic;
  spec.drive.blocks = 32;
  spec.drive.pages_per_block = 8;
  spec.drive.overprovision = 0.25;
  spec.drive.gc_free_target = 2;
  spec.drive.spare_blocks = 1;
  spec.drive.queue_count = 1;
  spec.workload.profile = workload::profile_by_name("fiu-web-vm");
  spec.workload.profile.daily_page_ios = 2000.0;
  spec.fleet.drives = 16;
  spec.fleet.years = 20.0 / 365.0;
  spec.fleet.report_interval_days = 5;
  spec.fleet.teardown_every = 4;
  spec.fleet.pe_fail_prob_median = 2e-4;
  spec.fleet.fault_rate_sigma = 0.8;

  ThreadPool pool(4);
  fleet::FleetRunner runner(spec, /*seed=*/42, pool);
  const auto wall_start = Clock::now();
  while (!runner.done()) runner.run_epoch();
  const double wall_s = ms_since(wall_start) * 1e-3;
  return static_cast<double>(spec.fleet.drives) * 20.0 / wall_s;
}

/// Multi-tenant QoS arbitration end to end: a latency-sensitive victim
/// and a bulk read-hot aggressor through the weighted arbiter on a
/// 4-shard analytic drive, burst-window driven (the fig_qos_tenants hot
/// path). p99_read_us carries the victim's simulated read p999.
DriveMetrics qos_tenants_replay() {
  using namespace rdsim;
  cfg::DriveSpec drive;
  drive.backend = cfg::Backend::kShardedAnalytic;
  drive.shards = 4;
  drive.queue_count = 4;
  drive.blocks = 48;
  drive.pages_per_block = 32;
  drive.overprovision = 0.2;
  drive.gc_free_target = 4;
  const auto device = host::make_device(drive, /*seed=*/19, /*workers=*/4);
  host::warm_fill(*device);

  host::ArbitrationConfig arb;
  arb.policy = host::ArbitrationPolicy::kWeighted;
  arb.tenants = {{/*weight=*/8.0, /*deadline_us=*/500.0},
                 {/*weight=*/1.0, /*deadline_us=*/10000.0}};
  device->set_arbitration(arb);

  workload::WorkloadProfile victim = workload::profile_by_name("fiu-web-vm");
  victim.daily_page_ios = 20000.0;
  victim.mean_request_pages = 2.0;
  workload::WorkloadProfile aggressor =
      workload::profile_by_name("umass-web");
  aggressor.daily_page_ios = 40000.0;
  aggressor.mean_request_pages = 8.0;
  workload::MultiTenantGenerator gen({victim, aggressor},
                                     device->logical_pages(), /*seed=*/8642);
  host::BurstWindowDriver driver(*device, /*window=*/16);
  const auto wall_start = Clock::now();
  driver.run(gen.day_commands());
  device->end_of_day();

  DriveMetrics m;
  m.iops = device->stats().iops();
  m.p99_read_us =
      device->stats().tenant_read_latency_quantile_s(0, 0.999) * 1e6;
  m.wall_ms = ms_since(wall_start);
  m.commands = device->stats().commands();
  return m;
}

/// Parses the flat { "key": number, ... } JSON perf_smoke itself emits.
/// Returns name/value pairs; non-numeric fields are skipped.
std::vector<std::pair<std::string, double>> parse_flat_json(const char* path) {
  std::vector<std::pair<std::string, double>> out;
  std::FILE* f = std::fopen(path, "r");
  if (f == nullptr) return out;
  char line[512];
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    const char* key_begin = std::strchr(line, '"');
    if (key_begin == nullptr) continue;
    const char* key_end = std::strchr(key_begin + 1, '"');
    if (key_end == nullptr) continue;
    const char* colon = std::strchr(key_end, ':');
    if (colon == nullptr) continue;
    char* value_end = nullptr;
    const double value = std::strtod(colon + 1, &value_end);
    if (value_end == colon + 1) continue;  // Not a number (a string field).
    out.emplace_back(std::string(key_begin + 1, key_end), value);
  }
  std::fclose(f);
  return out;
}

/// True for metrics where larger is better (throughputs); everything else
/// perf_smoke emits is a latency/duration where smaller is better.
bool higher_is_better(const std::string& name) {
  return name.find("per_s") != std::string::npos ||
         name.find("iops") != std::string::npos;
}

/// Warns (stderr) about any metric that regressed >15% vs the baseline
/// file. Returns the number of warnings; missing baseline is not an error.
int compare_to_baseline(
    const char* path,
    const std::vector<std::pair<std::string, double>>& metrics) {
  const auto baseline = parse_flat_json(path);
  if (baseline.empty()) {
    std::fprintf(stderr, "perf_smoke: no baseline metrics in %s\n", path);
    return 0;
  }
  int warnings = 0;
  for (const auto& [name, value] : metrics) {
    // "cpus" is provenance (which machine captured the baseline), not a
    // performance number — never compare it.
    if (name == "cpus") continue;
    for (const auto& [base_name, base] : baseline) {
      if (base_name != name || base <= 0.0 || value <= 0.0) continue;
      const bool regressed = higher_is_better(name)
                                 ? value < base * 0.85
                                 : value > base * 1.15;
      if (regressed) {
        ++warnings;
        std::fprintf(stderr,
                     "PERF WARNING: %s regressed %.1f%% vs baseline "
                     "(%.6g -> %.6g)\n",
                     name.c_str(),
                     (higher_is_better(name) ? base / value - 1.0
                                             : value / base - 1.0) *
                         100.0,
                     base, value);
      }
    }
  }
  if (warnings == 0)
    std::fprintf(stderr, "perf_smoke: all metrics within 15%% of %s\n", path);
  return warnings;
}

}  // namespace

int main(int argc, char** argv) {
  const char* out_path = nullptr;
  const char* compare_path = nullptr;
  const char* sha = std::getenv("GITHUB_SHA");
  int reps = 2000;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
      reps = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--sha") == 0 && i + 1 < argc) {
      sha = argv[++i];
    } else if (std::strcmp(argv[i], "--compare") == 0 && i + 1 < argc) {
      compare_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: perf_smoke [--out PATH] [--reps N] [--sha HEX] "
                   "[--compare PATH]\n");
      return 2;
    }
  }
  if (reps < 1) reps = 1;

  using namespace rdsim;
  const auto params = flash::FlashModelParams::default_2ynm();
  const nand::Geometry geom = nand::Geometry::characterization();
  nand::Chip chip(geom, params, 42);
  auto& block = chip.block(0);
  block.add_wear(8000);

  const auto t_program = Clock::now();
  block.program_random();
  const double program_block_ms = ms_since(t_program);

  // The paper's workhorse regime: heavy accumulated read disturb.
  block.apply_reads(1, 1e6);
  const auto wls = geom.wordlines_per_block;

  volatile int sink = 0;  // Defeats dead-code elimination of the senses.

  // Chip construction as the MC experiments pay it per measurement point:
  // build + pre-wear + program (bookkeeping-only under lazy
  // materialization), then the deferred per-wordline cost on first touch.
  const auto t_aged = Clock::now();
  nand::Chip aged_chip(geom, params, 43);
  aged_chip.block(0).add_wear(8000);
  aged_chip.block(0).program_random();
  const double make_aged_chip_ms = ms_since(t_aged);
  const double materialize_ns_per_wl = time_ns(static_cast<int>(wls), [&](int i) {
    sink = sink + aged_chip.block(0).count_errors(
        {static_cast<std::uint32_t>(i), nand::PageKind::kLsb});
  });

  // Warm every wordline of the measurement block before the steady-state
  // sense timings so first-touch materialization is not conflated in.
  for (std::uint32_t wl = 0; wl < wls; ++wl)
    sink = sink + block.count_errors({wl, nand::PageKind::kLsb});

  const double page_sense_ns = time_ns(reps, [&](int i) {
    sink = sink + block.count_errors(
        {static_cast<std::uint32_t>(i) % wls, nand::PageKind::kLsb});
  });
  const double page_read_ns = time_ns(reps / 4 + 1, [&](int i) {
    sink = sink + block
                .read_page({static_cast<std::uint32_t>(i) % wls,
                            nand::PageKind::kMsb})
                .raw_bit_errors;
  });
  const double retry_scan_ns = time_ns(reps / 4 + 1, [&](int i) {
    sink = sink + static_cast<int>(
        block
            .read_retry_scan(static_cast<std::uint32_t>(i) % wls, 0.0, 520.0,
                             0.5)
            .size());
  });
  (void)sink;

  const auto t_fig04 = Clock::now();
  sim::run_experiment("fig04", tiny_config());
  const double fig04_tiny_ms = ms_since(t_fig04);

  const auto t_fig02 = Clock::now();
  sim::run_experiment("fig02", tiny_config());
  const double fig02_tiny_ms = ms_since(t_fig02);

  // Drive-level metrics through the queued host interface.
  const std::uint64_t drive_commands = 20000;
  const DriveMetrics qd1 = drive_replay(1, drive_commands);
  const DriveMetrics qd32 = drive_replay(32, drive_commands);
  const double drive_kcmds_per_s_wall =
      static_cast<double>(qd1.commands + qd32.commands) /
      ((qd1.wall_ms + qd32.wall_ms) * 1e-3) / 1e3;

  // Trace-replay subsystem end to end on an in-memory synthetic CSV.
  const DriveMetrics trace = trace_replay(20000);
  const double trace_replay_kcmds_per_s_wall =
      static_cast<double>(trace.commands) / (trace.wall_ms * 1e-3) / 1e3;

  // Sharded Monte-Carlo drive: the same open-loop replay at three
  // worker-pool widths (simulated results identical; wall clock moves).
  const std::uint64_t sharded_commands = 6000;
  const DriveMetrics sharded_w1 = sharded_replay(1, sharded_commands);
  const DriveMetrics sharded_w4 = sharded_replay(4, sharded_commands);
  const DriveMetrics sharded_w8 = sharded_replay(8, sharded_commands);

  // Fleet runner end to end (lifecycle + checkpointable state machine).
  const double fleet_dd_per_s = fleet_drive_days_per_s();

  // Multi-tenant QoS arbitration end to end.
  const DriveMetrics qos_tenants = qos_tenants_replay();
  const auto kcmds_wall = [](const DriveMetrics& m) {
    return static_cast<double>(m.commands) / (m.wall_ms * 1e-3) / 1e3;
  };

  const double cells = static_cast<double>(geom.bitlines);
  const std::vector<std::pair<std::string, double>> metrics = {
      // Capture-host provenance, not a perf number: lets a reader judge
      // whether the sharded_w4/_w8 wall-clock scaling in a baseline is
      // meaningful (a 1-CPU host cannot show pool speedup) and makes a
      // cross-machine re-baseline self-documenting.
      {"cpus", static_cast<double>(std::thread::hardware_concurrency())},
      {"page_sense_ns", page_sense_ns},
      {"pages_per_s", 1e9 / page_sense_ns},
      {"cells_per_s", cells * 1e9 / page_sense_ns},
      {"page_read_ns", page_read_ns},
      {"retry_scan_ns", retry_scan_ns},
      {"program_block_ms", program_block_ms},
      {"make_aged_chip_ms", make_aged_chip_ms},
      {"materialize_ns_per_wl", materialize_ns_per_wl},
      {"fig04_tiny_ms", fig04_tiny_ms},
      {"fig02_tiny_ms", fig02_tiny_ms},
      {"drive_qd1_iops", qd1.iops},
      {"drive_qd1_p99_read_us", qd1.p99_read_us},
      {"drive_qd32_iops", qd32.iops},
      {"drive_qd32_p99_read_us", qd32.p99_read_us},
      {"drive_kcmds_per_s_wall", drive_kcmds_per_s_wall},
      {"trace_replay_kcmds_per_s_wall", trace_replay_kcmds_per_s_wall},
      {"sharded_w1_kcmds_per_s_wall", kcmds_wall(sharded_w1)},
      {"sharded_w4_kcmds_per_s_wall", kcmds_wall(sharded_w4)},
      {"sharded_w8_kcmds_per_s_wall", kcmds_wall(sharded_w8)},
      {"sharded_p99_read_us", sharded_w1.p99_read_us},
      {"fleet_drive_days_per_s_wall", fleet_dd_per_s},
      {"qos_tenants_kcmds_per_s_wall", kcmds_wall(qos_tenants)},
      {"qos_tenants_victim_p999_us", qos_tenants.p99_read_us},
  };

  std::string json = "{\n";
  json += "  \"bench\": \"rdsim_perf_smoke\",\n";
  json += "  \"git_sha\": \"" + std::string(sha != nullptr ? sha : "") +
          "\",\n";
  json += "  \"geometry\": \"64x8192\",\n";
  char buf[256];
  for (std::size_t i = 0; i < metrics.size(); ++i) {
    std::snprintf(buf, sizeof(buf), "  \"%s\": %.6g%s\n",
                  metrics[i].first.c_str(), metrics[i].second,
                  i + 1 == metrics.size() ? "" : ",");
    json += buf;
  }
  json += "}\n";

  if (compare_path != nullptr) compare_to_baseline(compare_path, metrics);

  std::fputs(json.c_str(), stdout);
  if (out_path != nullptr) {
    std::FILE* f = std::fopen(out_path, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "perf_smoke: cannot write %s\n", out_path);
      return 1;
    }
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::fprintf(stderr, "perf_smoke: wrote %s\n", out_path);
  }
  return 0;
}
