// Self-timed performance smoke harness for the Monte Carlo hot paths.
//
// Unlike bench/perf_micro.cc this needs no google-benchmark, so it runs
// anywhere the simulator builds; CI's perf job archives its JSON output as
// BENCH_<sha>.json to track the perf trajectory PR over PR (see README
// "Performance"). Metrics:
//   page_sense_ns    one whole-wordline sense (count_errors) on a
//                    disturbed 8K-P/E characterization block
//   pages_per_s      derived throughput of the above
//   cells_per_s      the same in sensed cells
//   page_read_ns     read_page (sense + data assembly + dose accounting)
//   retry_scan_ns    one read-retry scan of a wordline
//   program_block_ms programming a whole block with random data
//   fig04_tiny_ms    end-to-end tiny run of the fig04 experiment
//   fig02_tiny_ms    end-to-end tiny run of fig02 (Monte Carlo heavy)
//
// Usage: perf_smoke [--out PATH] [--reps N] [--sha HEX]
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "nand/chip.h"
#include "sim/experiment.h"

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

/// Times `op` over `reps` repetitions and returns ns per repetition.
template <typename Fn>
double time_ns(int reps, Fn&& op) {
  const auto start = Clock::now();
  for (int i = 0; i < reps; ++i) op(i);
  return ms_since(start) * 1e6 / reps;
}

rdsim::sim::ExperimentConfig tiny_config() {
  rdsim::sim::ExperimentConfig config;
  config.seed = 42;
  config.threads = 1;
  config.geometry = rdsim::nand::Geometry::tiny();
  config.scale = 0.02;
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  const char* out_path = nullptr;
  const char* sha = std::getenv("GITHUB_SHA");
  int reps = 2000;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
      reps = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--sha") == 0 && i + 1 < argc) {
      sha = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: perf_smoke [--out PATH] [--reps N] [--sha HEX]\n");
      return 2;
    }
  }
  if (reps < 1) reps = 1;

  using namespace rdsim;
  const auto params = flash::FlashModelParams::default_2ynm();
  const nand::Geometry geom = nand::Geometry::characterization();
  nand::Chip chip(geom, params, 42);
  auto& block = chip.block(0);
  block.add_wear(8000);

  const auto t_program = Clock::now();
  block.program_random();
  const double program_block_ms = ms_since(t_program);

  // The paper's workhorse regime: heavy accumulated read disturb.
  block.apply_reads(1, 1e6);
  const auto wls = geom.wordlines_per_block;

  volatile int sink = 0;  // Defeats dead-code elimination of the senses.
  const double page_sense_ns = time_ns(reps, [&](int i) {
    sink = sink + block.count_errors(
        {static_cast<std::uint32_t>(i) % wls, nand::PageKind::kLsb});
  });
  const double page_read_ns = time_ns(reps / 4 + 1, [&](int i) {
    sink = sink + block
                .read_page({static_cast<std::uint32_t>(i) % wls,
                            nand::PageKind::kMsb})
                .raw_bit_errors;
  });
  const double retry_scan_ns = time_ns(reps / 4 + 1, [&](int i) {
    sink = sink + static_cast<int>(
        block
            .read_retry_scan(static_cast<std::uint32_t>(i) % wls, 0.0, 520.0,
                             0.5)
            .size());
  });
  (void)sink;

  const auto t_fig04 = Clock::now();
  sim::run_experiment("fig04", tiny_config());
  const double fig04_tiny_ms = ms_since(t_fig04);

  const auto t_fig02 = Clock::now();
  sim::run_experiment("fig02", tiny_config());
  const double fig02_tiny_ms = ms_since(t_fig02);

  const double cells = static_cast<double>(geom.bitlines);
  std::string json = "{\n";
  json += "  \"bench\": \"rdsim_perf_smoke\",\n";
  json += "  \"git_sha\": \"" + std::string(sha != nullptr ? sha : "") +
          "\",\n";
  json += "  \"geometry\": \"64x8192\",\n";
  char buf[256];
  const auto metric = [&](const char* name, double value, bool last = false) {
    std::snprintf(buf, sizeof(buf), "  \"%s\": %.6g%s\n", name, value,
                  last ? "" : ",");
    json += buf;
  };
  metric("page_sense_ns", page_sense_ns);
  metric("pages_per_s", 1e9 / page_sense_ns);
  metric("cells_per_s", cells * 1e9 / page_sense_ns);
  metric("page_read_ns", page_read_ns);
  metric("retry_scan_ns", retry_scan_ns);
  metric("program_block_ms", program_block_ms);
  metric("fig04_tiny_ms", fig04_tiny_ms);
  metric("fig02_tiny_ms", fig02_tiny_ms, /*last=*/true);
  json += "}\n";

  std::fputs(json.c_str(), stdout);
  if (out_path != nullptr) {
    std::FILE* f = std::fopen(out_path, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "perf_smoke: cannot write %s\n", out_path);
      return 1;
    }
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::fprintf(stderr, "perf_smoke: wrote %s\n", out_path);
  }
  return 0;
}
