// Unit and property tests for the page-mapped FTL.
#include "ftl/ftl.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace rdsim::ftl {
namespace {

FtlConfig small_config() {
  FtlConfig cfg;
  cfg.blocks = 32;
  cfg.pages_per_block = 16;
  cfg.overprovision = 0.25;
  cfg.gc_free_target = 3;
  return cfg;
}

TEST(Ftl, GeometryDerivation) {
  const auto cfg = small_config();
  EXPECT_EQ(cfg.physical_pages(), 512u);
  EXPECT_EQ(cfg.logical_pages(), 384u);
}

TEST(Ftl, FreshState) {
  Ftl ftl(small_config());
  EXPECT_EQ(ftl.free_blocks(), 32u);
  EXPECT_TRUE(ftl.check_invariants());
  EXPECT_EQ(ftl.max_pe(), 0u);
}

TEST(Ftl, WriteMapsAndReadFindsIt) {
  Ftl ftl(small_config());
  const auto block = ftl.write(5);
  EXPECT_EQ(ftl.read(5), block);
  EXPECT_EQ(ftl.stats().host_reads, 1u);
  EXPECT_EQ(ftl.stats().host_writes, 1u);
  EXPECT_TRUE(ftl.check_invariants());
}

TEST(Ftl, ReadOfUnwrittenPage) {
  Ftl ftl(small_config());
  EXPECT_EQ(ftl.read(7), Ftl::kUnmappedBlock);
}

TEST(Ftl, OverwriteInvalidatesOldCopy) {
  Ftl ftl(small_config());
  ftl.write(3);
  ftl.write(3);
  EXPECT_TRUE(ftl.check_invariants());
  // Exactly one physical page may be valid for lpn 3.
  std::uint32_t total_valid = 0;
  for (std::size_t b = 0; b < ftl.block_count(); ++b)
    total_valid += ftl.block(b).valid_pages;
  EXPECT_EQ(total_valid, 1u);
}

TEST(Ftl, ReadsCountPerBlock) {
  Ftl ftl(small_config());
  const auto block = ftl.write(1);
  for (int i = 0; i < 10; ++i) ftl.read(1);
  EXPECT_EQ(ftl.block(block).reads_since_program, 10u);
}

TEST(Ftl, GcReclaimsSpace) {
  Ftl ftl(small_config());
  // Overwrite a small working set far beyond physical capacity.
  for (int round = 0; round < 100; ++round)
    for (std::uint64_t lpn = 0; lpn < 64; ++lpn) ftl.write(lpn);
  EXPECT_GT(ftl.free_blocks(), 0u);
  EXPECT_GT(ftl.stats().gc_erases, 0u);
  EXPECT_TRUE(ftl.check_invariants());
}

TEST(Ftl, WafAboveOneUnderChurn) {
  Ftl ftl(small_config());
  Rng rng(1);
  for (int i = 0; i < 5000; ++i)
    ftl.write(rng.uniform_u64(ftl.config().logical_pages()));
  EXPECT_GE(ftl.stats().waf(), 1.0);
  EXPECT_LT(ftl.stats().waf(), 5.0);
  EXPECT_TRUE(ftl.check_invariants());
}

TEST(Ftl, WearLevelingBoundsPeSpread) {
  Ftl ftl(small_config());
  Rng rng(2);
  for (int i = 0; i < 20000; ++i)
    ftl.write(rng.uniform_u64(ftl.config().logical_pages()));
  std::uint32_t min_pe = 1u << 30, max_pe = 0;
  for (std::size_t b = 0; b < ftl.block_count(); ++b) {
    min_pe = std::min(min_pe, ftl.block(b).pe_cycles);
    max_pe = std::max(max_pe, ftl.block(b).pe_cycles);
  }
  // Least-worn-first allocation keeps the spread tight under a uniform
  // workload.
  EXPECT_LE(max_pe - min_pe, max_pe / 2 + 3);
}

TEST(Ftl, RefreshDetectsAgedBlocks) {
  Ftl ftl(small_config());
  for (std::uint64_t lpn = 0; lpn < 32; ++lpn) ftl.write(lpn);
  EXPECT_TRUE(ftl.blocks_due_refresh().empty());
  ftl.advance_time(8.0);
  const auto due = ftl.blocks_due_refresh();
  EXPECT_FALSE(due.empty());
}

TEST(Ftl, RefreshMovesDataAndResetsAge) {
  Ftl ftl(small_config());
  for (std::uint64_t lpn = 0; lpn < 16; ++lpn) ftl.write(lpn);
  ftl.advance_time(8.0);
  const auto due = ftl.blocks_due_refresh();
  ASSERT_FALSE(due.empty());
  const auto victim = due[0];
  const auto writes_before = ftl.stats().refresh_writes;
  ftl.refresh_block(victim);
  EXPECT_GT(ftl.stats().refresh_writes, writes_before);
  EXPECT_EQ(ftl.block(victim).state, BlockInfo::State::kFree);
  EXPECT_TRUE(ftl.check_invariants());
  // All lpns still readable.
  for (std::uint64_t lpn = 0; lpn < 16; ++lpn)
    EXPECT_NE(ftl.read(lpn), Ftl::kUnmappedBlock);
}

TEST(Ftl, ReadReclaimDisabledByDefault) {
  Ftl ftl(small_config());
  ftl.write(0);
  for (int i = 0; i < 1000; ++i) ftl.read(0);
  EXPECT_EQ(ftl.apply_read_reclaim(), 0);
}

TEST(Ftl, ReadReclaimTriggersAtThreshold) {
  auto cfg = small_config();
  cfg.read_reclaim_threshold = 100;
  Ftl ftl(cfg);
  // Fill one block completely so it becomes kFull.
  for (std::uint64_t lpn = 0; lpn < cfg.pages_per_block; ++lpn) ftl.write(lpn);
  for (int i = 0; i < 150; ++i) ftl.read(0);
  const int reclaimed = ftl.apply_read_reclaim();
  EXPECT_EQ(reclaimed, 1);
  EXPECT_GT(ftl.stats().reclaim_writes, 0u);
  EXPECT_TRUE(ftl.check_invariants());
  EXPECT_NE(ftl.read(0), Ftl::kUnmappedBlock);
}

TEST(Ftl, TrimUnmapsPageAndDecrementsValidCount) {
  Ftl ftl(small_config());
  const auto block = ftl.write(5);
  const auto valid_before = ftl.block(block).valid_pages;
  EXPECT_TRUE(ftl.trim(5));
  EXPECT_EQ(ftl.block(block).valid_pages, valid_before - 1);
  EXPECT_EQ(ftl.read(5), Ftl::kUnmappedBlock);
  EXPECT_EQ(ftl.stats().host_trims, 1u);
  EXPECT_TRUE(ftl.check_invariants());
}

TEST(Ftl, TrimOfUnmappedPageIsNoOp) {
  Ftl ftl(small_config());
  EXPECT_FALSE(ftl.trim(9));
  EXPECT_EQ(ftl.stats().host_trims, 0u);
  // Double trim: second is a no-op too.
  ftl.write(9);
  EXPECT_TRUE(ftl.trim(9));
  EXPECT_FALSE(ftl.trim(9));
  EXPECT_EQ(ftl.stats().host_trims, 1u);
  EXPECT_TRUE(ftl.check_invariants());
}

TEST(Ftl, TrimmedSpaceIsNotCopiedByGc) {
  // Fill a block, trim all of it, and write until the first GC fires:
  // greedy victim selection must pick the zero-valid trimmed block and
  // reclaim it with ZERO copy writes (trimmed data is dead, not
  // relocated) — a regression that relocates unmapped pages fails the
  // exact equality below.
  auto cfg = small_config();
  Ftl ftl(cfg);
  for (std::uint64_t lpn = 0; lpn < cfg.pages_per_block; ++lpn)
    ftl.write(lpn);
  for (std::uint64_t lpn = 0; lpn < cfg.pages_per_block; ++lpn)
    ftl.trim(lpn);
  // Fresh distinct writes until GC triggers; stop at the first erase.
  std::uint64_t lpn = cfg.pages_per_block;
  const std::uint64_t logical = ftl.config().logical_pages();
  while (ftl.stats().gc_erases == 0) {
    ftl.write(lpn);
    lpn = cfg.pages_per_block +
          (lpn + 1 - cfg.pages_per_block) % (logical - cfg.pages_per_block);
  }
  EXPECT_EQ(ftl.stats().gc_erases, 1u);
  EXPECT_EQ(ftl.stats().gc_writes, 0u);
  EXPECT_TRUE(ftl.check_invariants());
}

TEST(Ftl, NarrowMutatorsTouchOnlyTheirField) {
  Ftl ftl(small_config());
  const auto block = ftl.write(3);
  ftl.set_block_vpass(block, 497.0);
  EXPECT_DOUBLE_EQ(ftl.block(block).vpass, 497.0);
  const auto reads_before = ftl.block(block).reads_since_program;
  ftl.note_probe_reads(block, 5);
  EXPECT_EQ(ftl.block(block).reads_since_program, reads_before + 5);
  EXPECT_TRUE(ftl.check_invariants());
}

TEST(Ftl, RandomOpsPreserveInvariants) {
  Ftl ftl(small_config());
  Rng rng(3);
  for (int i = 0; i < 20000; ++i) {
    const auto lpn = rng.uniform_u64(ftl.config().logical_pages());
    const double dice = rng.uniform();
    if (dice < 0.4)
      ftl.write(lpn);
    else if (dice < 0.45)
      ftl.trim(lpn);
    else
      ftl.read(lpn);
    if (i % 4096 == 0) {
      ftl.advance_time(1.0);
      for (const auto b : ftl.blocks_due_refresh()) ftl.refresh_block(b);
    }
  }
  EXPECT_TRUE(ftl.check_invariants());
}

TEST(Ftl, DataSurvivesHeavyChurn) {
  Ftl ftl(small_config());
  Rng rng(4);
  // Track a victim lpn through churn: it must always stay mapped after
  // its first write.
  ftl.write(42);
  for (int i = 0; i < 10000; ++i) {
    ftl.write(rng.uniform_u64(ftl.config().logical_pages()));
    if (i % 1000 == 0) {
      EXPECT_NE(ftl.read(42), Ftl::kUnmappedBlock);
    }
  }
}

TEST(Ftl, EraseCountsTrackGcAndRefresh) {
  Ftl ftl(small_config());
  Rng rng(5);
  for (int i = 0; i < 10000; ++i)
    ftl.write(rng.uniform_u64(ftl.config().logical_pages()));
  std::uint64_t total_pe = 0;
  for (std::size_t b = 0; b < ftl.block_count(); ++b)
    total_pe += ftl.block(b).pe_cycles;
  EXPECT_GT(total_pe, 0u);
  EXPECT_GE(total_pe, ftl.stats().gc_erases);
}

}  // namespace
}  // namespace rdsim::ftl
