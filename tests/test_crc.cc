// Unit tests for ecc/crc32.h.
#include "ecc/crc32.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

namespace rdsim::ecc {
namespace {

std::vector<std::uint8_t> bytes_of(const char* s) {
  std::vector<std::uint8_t> v(std::strlen(s));
  std::memcpy(v.data(), s, v.size());
  return v;
}

TEST(Crc32, KnownVector) {
  // The canonical CRC-32 check value.
  EXPECT_EQ(crc32(bytes_of("123456789")), 0xCBF43926u);
}

TEST(Crc32, EmptyInput) {
  EXPECT_EQ(crc32({}), 0x00000000u);
}

TEST(Crc32, IncrementalMatchesOneShot) {
  const auto data = bytes_of("the quick brown fox jumps over the lazy dog");
  Crc32 inc;
  inc.update(std::span(data).subspan(0, 10));
  inc.update(std::span(data).subspan(10));
  EXPECT_EQ(inc.value(), crc32(data));
}

TEST(Crc32, SensitiveToSingleBit) {
  auto a = bytes_of("hello world");
  auto b = a;
  b[4] ^= 1;
  EXPECT_NE(crc32(a), crc32(b));
}

TEST(Crc32, SensitiveToOrder) {
  EXPECT_NE(crc32(bytes_of("ab")), crc32(bytes_of("ba")));
}

}  // namespace
}  // namespace rdsim::ecc
