// Tests for Retention Failure Recovery (the RDR sibling for retention
// errors) and the read-reference optimizer (ROR-style).
#include <gtest/gtest.h>

#include "core/rfr.h"
#include "core/vref_optimizer.h"
#include "nand/chip.h"

namespace rdsim::core {
namespace {

nand::Chip aged_chip(std::uint64_t seed, std::uint32_t pe, double days) {
  const auto params = flash::FlashModelParams::default_2ynm();
  nand::Chip chip(nand::Geometry{64, 8192, 1}, params, seed);
  chip.block(0).add_wear(pe);
  chip.block(0).program_random();
  chip.block(0).advance_time(days);
  return chip;
}

TEST(Rfr, RecoversRetentionErrors) {
  auto chip = aged_chip(3, 12000, 40.0);
  const auto result = RetentionFailureRecovery().recover(chip.block(0), 30);
  EXPECT_GT(result.errors_before, 100);
  EXPECT_LT(result.errors_after, result.errors_before);
  const double reduction = 1.0 - result.rber_after() / result.rber_before();
  EXPECT_GT(reduction, 0.20);
}

TEST(Rfr, NeverWorseThanTheAgedRawState) {
  // RFR's bake is real damage (the reason it is reserved for pages ECC
  // already failed on): errors_after may exceed errors_before on young
  // data, but the re-labeling itself must not lose to simply reading the
  // baked page raw.
  for (const double days : {0.5, 20.0, 40.0}) {
    auto chip = aged_chip(4, 8000, days);
    auto& block = chip.block(0);
    const auto result = RetentionFailureRecovery().recover(block, 30);
    const int raw_after = block.count_errors({30, nand::PageKind::kLsb}) +
                          block.count_errors({30, nand::PageKind::kMsb});
    EXPECT_LE(result.errors_after, raw_after + 3) << "age=" << days;
  }
}

TEST(Rfr, ReductionGrowsWithAge) {
  double young, old_;
  {
    auto chip = aged_chip(5, 12000, 20.0);
    const auto r = RetentionFailureRecovery().recover(chip.block(0), 30);
    young = static_cast<double>(r.errors_before - r.errors_after);
  }
  {
    auto chip = aged_chip(5, 12000, 60.0);
    const auto r = RetentionFailureRecovery().recover(chip.block(0), 30);
    old_ = static_cast<double>(r.errors_before - r.errors_after);
  }
  EXPECT_GT(old_, young);
}

TEST(Rfr, ExtraRetentionIsRealAging) {
  auto chip = aged_chip(6, 8000, 30.0);
  auto& block = chip.block(0);
  const double before = block.retention_days();
  RfrOptions options;
  options.extra_days = 10.0;
  RetentionFailureRecovery(options).recover(block, 30);
  EXPECT_DOUBLE_EQ(block.retention_days(), before + 10.0);
}

TEST(Rfr, CorrectedStatesConsistent) {
  auto chip = aged_chip(7, 12000, 40.0);
  auto& block = chip.block(0);
  const auto result = RetentionFailureRecovery().recover(block, 30);
  ASSERT_EQ(result.corrected_states.size(), 8192u);
  int recount = 0;
  for (std::uint32_t bl = 0; bl < 8192; ++bl)
    recount += flash::bit_errors_between(result.corrected_states[bl],
                                         block.cell(30, bl).programmed);
  EXPECT_EQ(recount, result.errors_after);
}

TEST(Rfr, WindowAccounting) {
  auto chip = aged_chip(8, 12000, 40.0);
  const auto result = RetentionFailureRecovery().recover(chip.block(0), 30);
  EXPECT_LE(result.cells_relabeled, result.cells_in_window);
  EXPECT_GT(result.cells_in_window, 0);
}

TEST(VrefOpt, DefaultsMatchModel) {
  const auto params = flash::FlashModelParams::default_2ynm();
  nand::Chip chip(nand::Geometry::tiny(), params, 9);
  const auto refs = VrefOptimizer::defaults(chip.block(0));
  EXPECT_DOUBLE_EQ(refs.va, params.vref_a);
  EXPECT_DOUBLE_EQ(refs.vb, params.vref_b);
  EXPECT_DOUBLE_EQ(refs.vc, params.vref_c);
}

TEST(VrefOpt, LearnedRefsOrdered) {
  auto chip = aged_chip(10, 8000, 21.0);
  const auto refs = VrefOptimizer().learn(chip.block(0), 30);
  EXPECT_LT(refs.va, refs.vb);
  EXPECT_LT(refs.vb, refs.vc);
}

TEST(VrefOpt, BeatsDefaultsOnAgedDisturbedBlock) {
  auto chip = aged_chip(11, 8000, 21.0);
  auto& block = chip.block(0);
  block.apply_reads(31, 5e5);
  const VrefOptimizer optimizer;
  const auto learned = optimizer.learn(block, 30);
  const auto defaults = VrefOptimizer::defaults(block);
  const int with_default =
      VrefOptimizer::count_errors_with_refs(block, 30, defaults);
  const int with_learned =
      VrefOptimizer::count_errors_with_refs(block, 30, learned);
  EXPECT_LT(with_learned, with_default / 2);
}

TEST(VrefOpt, NearDefaultsOnFreshBlock) {
  const auto params = flash::FlashModelParams::default_2ynm();
  nand::Chip chip(nand::Geometry{64, 8192, 1}, params, 12);
  auto& block = chip.block(0);
  block.program_random();
  const auto learned = VrefOptimizer().learn(block, 5);
  const auto defaults = VrefOptimizer::defaults(block);
  // On a pristine block the valleys sit near the factory points and the
  // learned refs must not be (materially) worse.
  const int d = VrefOptimizer::count_errors_with_refs(block, 5, defaults);
  const int l = VrefOptimizer::count_errors_with_refs(block, 5, learned);
  EXPECT_LE(l, d + 2);
}

TEST(VrefOpt, TracksRetentionShiftDirection) {
  auto chip = aged_chip(13, 8000, 21.0);
  const auto learned = VrefOptimizer().learn(chip.block(0), 30);
  const auto defaults = VrefOptimizer::defaults(chip.block(0));
  // Retention drags distributions down, so the upper references must move
  // down with them.
  EXPECT_LT(learned.vc, defaults.vc);
  EXPECT_LT(learned.vb, defaults.vb);
}

}  // namespace
}  // namespace rdsim::core
