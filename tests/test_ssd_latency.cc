// Tests for the SSD's time accounting and its agreement with the paper's
// §4 overhead arithmetic.
#include <gtest/gtest.h>

#include "core/overheads.h"
#include "ssd/ssd.h"

namespace rdsim::ssd {
namespace {

SsdConfig tiny_config(bool tuning) {
  SsdConfig cfg;
  cfg.ftl.blocks = 64;
  cfg.ftl.pages_per_block = 32;
  cfg.ftl.overprovision = 0.2;
  cfg.ftl.gc_free_target = 4;
  cfg.vpass_tuning = tuning;
  return cfg;
}

std::vector<workload::IoRequest> mixed_day(std::uint64_t logical, int n,
                                           std::uint64_t seed) {
  Rng rng(seed);
  std::vector<workload::IoRequest> day(n);
  for (int i = 0; i < n; ++i) {
    day[i].time_s = i;
    day[i].is_write = rng.bernoulli(0.3);
    day[i].lpn = rng.uniform_u64(logical);
    day[i].pages = 1;
  }
  return day;
}

TEST(SsdLatency, HostIoSecondsMatchArithmetic) {
  const auto params = flash::FlashModelParams::default_2ynm();
  Ssd drive(tiny_config(false), params, 1);
  workload::IoRequest read{0.0, 0, 10, false};
  workload::IoRequest write{0.0, 0, 10, true};
  drive.submit(write);
  drive.submit(read);
  const auto& latency = drive.config().latency;
  EXPECT_NEAR(drive.stats().host_io_seconds,
              10 * latency.program_s + 10 * latency.read_s, 1e-12);
}

TEST(SsdLatency, BackgroundTimeAppearsUnderChurn) {
  const auto params = flash::FlashModelParams::default_2ynm();
  Ssd drive(tiny_config(false), params, 2);
  const auto logical = drive.ftl().config().logical_pages();
  for (std::uint64_t lpn = 0; lpn < logical; ++lpn) drive.ftl_mut().write(lpn);
  for (int day = 0; day < 10; ++day)
    drive.run_day(mixed_day(logical, 4000, 10 + day));
  // GC + weekly refresh must have produced background busy time.
  EXPECT_GT(drive.stats().background_seconds, 0.0);
}

TEST(SsdLatency, TuningProbeTimeOnlyWhenEnabled) {
  const auto params = flash::FlashModelParams::default_2ynm();
  Ssd tuned(tiny_config(true), params, 3);
  Ssd base(tiny_config(false), params, 3);
  for (auto* d : {&tuned, &base}) {
    const auto logical = d->ftl().config().logical_pages();
    for (std::uint64_t lpn = 0; lpn < logical; ++lpn)
      d->ftl_mut().write(lpn);
    for (int day = 0; day < 3; ++day)
      d->run_day(mixed_day(logical, 1000, 20 + day));
  }
  EXPECT_GT(tuned.stats().tuning_probe_seconds, 0.0);
  EXPECT_DOUBLE_EQ(base.stats().tuning_probe_seconds, 0.0);
  EXPECT_GT(tuned.stats().tuning_seconds_per_day(), 0.0);
}

TEST(SsdLatency, PerBlockProbeCostConsistentWithOverheadModel) {
  // The replayed per-block-per-day probe cost must land near the §4
  // overhead model's assumption (1 MEE read + ~1.5 step probes).
  const auto params = flash::FlashModelParams::default_2ynm();
  Ssd drive(tiny_config(true), params, 4);
  const auto logical = drive.ftl().config().logical_pages();
  for (std::uint64_t lpn = 0; lpn < logical; ++lpn) drive.ftl_mut().write(lpn);
  for (int day = 0; day < 5; ++day)
    drive.run_day(mixed_day(logical, 1000, 30 + day));
  const double per_block_day =
      drive.stats().tuning_probe_seconds /
      static_cast<double>(drive.stats().tuned_block_days) /
      drive.config().latency.read_s;
  // Between 1 (MEE only) and ~12 probes per block-day.
  EXPECT_GE(per_block_day, 1.0);
  EXPECT_LE(per_block_day, 12.0);
}

TEST(SsdLatency, OverheadModelScalesFromReplay) {
  // Cross-check: the closed-form 512 GB overhead equals per-block probe
  // reads x block count x tR.
  core::SsdShape shape;
  const auto report = core::vpass_tuning_overheads(shape);
  EXPECT_NEAR(report.daily_seconds,
              static_cast<double>(report.blocks) *
                  shape.probe_reads_per_block * shape.page_read_seconds,
              1e-9);
}

}  // namespace
}  // namespace rdsim::ssd
