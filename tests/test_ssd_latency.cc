// Tests for the SSD's time accounting — its agreement with the paper's
// §4 overhead arithmetic, and the queued interface's per-command latency
// and stall attribution on top of it.
#include <gtest/gtest.h>

#include "core/overheads.h"
#include "host/driver.h"
#include "host/ssd_device.h"
#include "ssd/ssd.h"

namespace rdsim::ssd {
namespace {

SsdConfig tiny_config(bool tuning) {
  SsdConfig cfg;
  cfg.ftl.blocks = 64;
  cfg.ftl.pages_per_block = 32;
  cfg.ftl.overprovision = 0.2;
  cfg.ftl.gc_free_target = 4;
  cfg.vpass_tuning = tuning;
  return cfg;
}

std::vector<host::Command> mixed_day(std::uint64_t logical, int n,
                                     std::uint64_t seed) {
  Rng rng(seed);
  std::vector<host::Command> day(n);
  for (int i = 0; i < n; ++i) {
    day[i].submit_time_s = i;
    day[i].kind = rng.bernoulli(0.3) ? host::CommandKind::kWrite
                                     : host::CommandKind::kRead;
    day[i].lpn = rng.uniform_u64(logical);
    day[i].pages = 1;
  }
  return day;
}

void fill(host::SsdDevice& drive) { host::warm_fill(drive); }

void run_day(host::SsdDevice& drive, const std::vector<host::Command>& day) {
  for (const auto& c : day) drive.submit(c);
  std::vector<host::Completion> done;
  drive.drain(&done);
  drive.end_of_day();
}

TEST(SsdLatency, HostIoSecondsMatchArithmetic) {
  const auto params = flash::FlashModelParams::default_2ynm();
  host::SsdDevice drive(tiny_config(false), params, 1);
  host::Command c;
  c.lpn = 0;
  c.pages = 10;
  c.kind = host::CommandKind::kWrite;
  drive.submit(c);
  c.kind = host::CommandKind::kRead;
  drive.submit(c);
  std::vector<host::Completion> done;
  EXPECT_EQ(drive.drain(&done), 2u);
  const auto& latency = drive.ssd().config().latency;
  EXPECT_NEAR(drive.ssd().stats().host_io_seconds,
              10 * latency.program_s + 10 * latency.read_s, 1e-12);
  // Per-command completion records carry the same arithmetic: the write
  // occupies the flash first, the read queues behind it.
  EXPECT_NEAR(done[0].latency_s(), 10 * latency.program_s, 1e-12);
  EXPECT_NEAR(done[1].complete_time_s,
              10 * latency.program_s + 10 * latency.read_s, 1e-12);
  EXPECT_NEAR(done[1].queue_wait_s(), 10 * latency.program_s, 1e-12);
}

TEST(SsdLatency, BackgroundTimeAppearsUnderChurn) {
  const auto params = flash::FlashModelParams::default_2ynm();
  host::SsdDevice drive(tiny_config(false), params, 2);
  const auto logical = drive.logical_pages();
  fill(drive);
  for (int day = 0; day < 10; ++day)
    run_day(drive, mixed_day(logical, 4000, 10 + day));
  // GC + weekly refresh must have produced background busy time, and the
  // inline-GC share of it must surface as write-command stall.
  EXPECT_GT(drive.ssd().stats().background_seconds, 0.0);
  EXPECT_GT(drive.stats().stall_seconds(), 0.0);
}

TEST(SsdLatency, TuningProbeTimeOnlyWhenEnabled) {
  const auto params = flash::FlashModelParams::default_2ynm();
  host::SsdDevice tuned(tiny_config(true), params, 3);
  host::SsdDevice base(tiny_config(false), params, 3);
  for (auto* d : {&tuned, &base}) {
    const auto logical = d->logical_pages();
    fill(*d);
    for (int day = 0; day < 3; ++day)
      run_day(*d, mixed_day(logical, 1000, 20 + day));
  }
  EXPECT_GT(tuned.ssd().stats().tuning_probe_seconds, 0.0);
  EXPECT_DOUBLE_EQ(base.ssd().stats().tuning_probe_seconds, 0.0);
  EXPECT_GT(tuned.ssd().stats().tuning_seconds_per_day(), 0.0);
}

TEST(SsdLatency, MaintenanceReservesFlashTimeline) {
  // end_of_day() must push the device's flash timeline forward by the
  // maintenance busy time, so the next day's commands observe the stall.
  const auto params = flash::FlashModelParams::default_2ynm();
  host::SsdDevice drive(tiny_config(true), params, 5);
  fill(drive);
  run_day(drive, mixed_day(drive.logical_pages(), 1000, 40));
  const double before = drive.now_s();
  drive.end_of_day();  // Another maintenance pass: tuning probes at least.
  EXPECT_GT(drive.now_s(), before);
}

TEST(SsdLatency, PerBlockProbeCostConsistentWithOverheadModel) {
  // The replayed per-block-per-day probe cost must land near the §4
  // overhead model's assumption (1 MEE read + ~1.5 step probes).
  const auto params = flash::FlashModelParams::default_2ynm();
  host::SsdDevice drive(tiny_config(true), params, 4);
  const auto logical = drive.logical_pages();
  fill(drive);
  for (int day = 0; day < 5; ++day)
    run_day(drive, mixed_day(logical, 1000, 30 + day));
  const double per_block_day =
      drive.ssd().stats().tuning_probe_seconds /
      static_cast<double>(drive.ssd().stats().tuned_block_days) /
      drive.ssd().config().latency.read_s;
  // Between 1 (MEE only) and ~12 probes per block-day.
  EXPECT_GE(per_block_day, 1.0);
  EXPECT_LE(per_block_day, 12.0);
}

TEST(SsdLatency, OverheadModelScalesFromReplay) {
  // Cross-check: the closed-form 512 GB overhead equals per-block probe
  // reads x block count x tR.
  core::SsdShape shape;
  const auto report = core::vpass_tuning_overheads(shape);
  EXPECT_NEAR(report.daily_seconds,
              static_cast<double>(report.blocks) *
                  shape.probe_reads_per_block * shape.page_read_seconds,
              1e-9);
}

}  // namespace
}  // namespace rdsim::ssd
