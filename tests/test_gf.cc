// Field-axiom property tests for ecc/gf.h across all supported m.
#include "ecc/gf.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace rdsim::ecc {
namespace {

class GfField : public ::testing::TestWithParam<int> {};

TEST_P(GfField, AlphaHasFullOrder) {
  const GaloisField gf(GetParam());
  // alpha^n == 1 and no smaller power does (spot-check divisors via the
  // table construction assert; here check wrap).
  EXPECT_EQ(gf.alpha_pow(gf.n()), 1u);
  EXPECT_EQ(gf.alpha_pow(0), 1u);
  EXPECT_NE(gf.alpha_pow(1), 1u);
}

TEST_P(GfField, LogExpRoundTrip) {
  const GaloisField gf(GetParam());
  Rng rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    const auto x = static_cast<std::uint32_t>(rng.uniform_u64(gf.n()) + 1);
    EXPECT_EQ(gf.alpha_pow(gf.log(x)), x);
  }
}

TEST_P(GfField, MulInverse) {
  const GaloisField gf(GetParam());
  Rng rng(GetParam() + 1);
  for (int i = 0; i < 200; ++i) {
    const auto x = static_cast<std::uint32_t>(rng.uniform_u64(gf.n()) + 1);
    EXPECT_EQ(gf.mul(x, gf.inv(x)), 1u);
    EXPECT_EQ(gf.div(x, x), 1u);
  }
}

TEST_P(GfField, MulCommutativeAssociative) {
  const GaloisField gf(GetParam());
  Rng rng(GetParam() + 2);
  for (int i = 0; i < 100; ++i) {
    const auto a = static_cast<std::uint32_t>(rng.uniform_u64(gf.n() + 1));
    const auto b = static_cast<std::uint32_t>(rng.uniform_u64(gf.n() + 1));
    const auto c = static_cast<std::uint32_t>(rng.uniform_u64(gf.n() + 1));
    EXPECT_EQ(gf.mul(a, b), gf.mul(b, a));
    EXPECT_EQ(gf.mul(gf.mul(a, b), c), gf.mul(a, gf.mul(b, c)));
  }
}

TEST_P(GfField, DistributesOverAddition) {
  const GaloisField gf(GetParam());
  Rng rng(GetParam() + 3);
  for (int i = 0; i < 100; ++i) {
    const auto a = static_cast<std::uint32_t>(rng.uniform_u64(gf.n() + 1));
    const auto b = static_cast<std::uint32_t>(rng.uniform_u64(gf.n() + 1));
    const auto c = static_cast<std::uint32_t>(rng.uniform_u64(gf.n() + 1));
    EXPECT_EQ(gf.mul(a, gf.add(b, c)), gf.add(gf.mul(a, b), gf.mul(a, c)));
  }
}

TEST_P(GfField, ZeroAnnihilates) {
  const GaloisField gf(GetParam());
  EXPECT_EQ(gf.mul(0, 5 % (gf.n() + 1)), 0u);
  EXPECT_EQ(gf.mul(1, 0), 0u);
  EXPECT_EQ(gf.div(0, 1), 0u);
}

TEST_P(GfField, PowMatchesRepeatedMul) {
  const GaloisField gf(GetParam());
  Rng rng(GetParam() + 4);
  for (int i = 0; i < 50; ++i) {
    const auto a = static_cast<std::uint32_t>(rng.uniform_u64(gf.n()) + 1);
    std::uint32_t acc = 1;
    for (int e = 0; e <= 8; ++e) {
      EXPECT_EQ(gf.pow(a, e), acc);
      acc = gf.mul(acc, a);
    }
  }
}

TEST_P(GfField, SquareIsFrobenius) {
  const GaloisField gf(GetParam());
  Rng rng(GetParam() + 5);
  // (a + b)^2 == a^2 + b^2 in characteristic 2.
  for (int i = 0; i < 100; ++i) {
    const auto a = static_cast<std::uint32_t>(rng.uniform_u64(gf.n() + 1));
    const auto b = static_cast<std::uint32_t>(rng.uniform_u64(gf.n() + 1));
    EXPECT_EQ(gf.sqr(gf.add(a, b)), gf.add(gf.sqr(a), gf.sqr(b)));
  }
}

TEST_P(GfField, NegativeExponentWraps) {
  const GaloisField gf(GetParam());
  EXPECT_EQ(gf.alpha_pow(-1), gf.alpha_pow(gf.n() - 1));
  EXPECT_EQ(gf.alpha_pow(-static_cast<std::int64_t>(gf.n())), 1u);
}

INSTANTIATE_TEST_SUITE_P(AllM, GfField,
                         ::testing::Values(3, 4, 5, 6, 7, 8, 9, 10, 11, 12,
                                           13, 14, 15, 16));

}  // namespace
}  // namespace rdsim::ecc
