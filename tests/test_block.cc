// Unit and behaviour tests for the Monte Carlo NAND block.
#include "nand/block.h"

#include <gtest/gtest.h>

#include <cmath>

#include "nand/chip.h"
#include "nand/randomizer.h"

namespace rdsim::nand {
namespace {

class BlockTest : public ::testing::Test {
 protected:
  flash::FlashModelParams params_ = flash::FlashModelParams::default_2ynm();
  Geometry geom_ = Geometry::tiny();  // 16 x 1024 x 4 blocks.
  Chip chip_{geom_, params_, 11};
};

TEST_F(BlockTest, FreshBlockState) {
  const auto& b = chip_.block(0);
  EXPECT_EQ(b.pe_cycles(), 0u);
  EXPECT_FALSE(b.programmed());
  EXPECT_DOUBLE_EQ(b.dose(), 0.0);
}

TEST_F(BlockTest, ProgramIncrementsPeAndTimestamps) {
  auto& b = chip_.block(0);
  b.advance_time(3.0);
  b.program_random();
  EXPECT_TRUE(b.programmed());
  EXPECT_EQ(b.pe_cycles(), 1u);
  EXPECT_DOUBLE_EQ(b.retention_days(), 0.0);
  b.advance_time(2.5);
  EXPECT_DOUBLE_EQ(b.retention_days(), 2.5);
}

TEST_F(BlockTest, EraseClearsState) {
  auto& b = chip_.block(0);
  b.program_random();
  b.apply_reads(0, 1000);
  b.erase();
  EXPECT_FALSE(b.programmed());
  EXPECT_DOUBLE_EQ(b.dose(), 0.0);
  EXPECT_EQ(b.pe_cycles(), 1u);  // Wear persists.
}

TEST_F(BlockTest, AddWearAccumulates) {
  auto& b = chip_.block(0);
  b.add_wear(5000);
  b.add_wear(3000);
  EXPECT_EQ(b.pe_cycles(), 8000u);
  EXPECT_FALSE(b.programmed());
}

TEST_F(BlockTest, ProgramStoresGroundTruth) {
  auto& b = chip_.block(0);
  PageBits lsb(geom_.bitlines, 1), msb(geom_.bitlines, 0);  // All P1.
  for (std::uint32_t wl = 0; wl < geom_.wordlines_per_block; ++wl)
    b.program_wordline(wl, lsb, msb);
  for (std::uint32_t bl = 0; bl < 20; ++bl)
    EXPECT_EQ(b.cell(3, bl).programmed, flash::CellState::kP1);
}

TEST_F(BlockTest, FreshReadNearlyErrorFree) {
  auto& b = chip_.block(0);
  b.program_random();
  int errors = 0;
  for (std::uint32_t wl = 0; wl < geom_.wordlines_per_block; ++wl) {
    errors += b.count_errors({wl, PageKind::kLsb});
    errors += b.count_errors({wl, PageKind::kMsb});
  }
  // Only program errors (~1e-4 of cells) contribute on a fresh block.
  EXPECT_LT(errors, 20);
}

TEST_F(BlockTest, ReadPageReportsAndAccumulatesDose) {
  auto& b = chip_.block(0);
  b.program_random();
  const double before = b.dose();
  const auto result = b.read_page({2, PageKind::kLsb});
  EXPECT_EQ(result.bits.size(), geom_.bitlines);
  EXPECT_GT(b.dose(), before);
}

TEST_F(BlockTest, SelfDoseExcluded) {
  auto& b = chip_.block(0);
  b.program_random();
  b.apply_reads(5, 1e5);
  // The addressed wordline does not disturb itself.
  EXPECT_DOUBLE_EQ(b.dose_for_wordline(5), 0.0);
  EXPECT_GT(b.dose_for_wordline(4), 0.0);
  EXPECT_DOUBLE_EQ(b.dose_for_wordline(4), b.dose_for_wordline(6));
}

TEST_F(BlockTest, DisturbRaisesErrorsOnOtherWordlines) {
  auto& b = chip_.block(0);
  b.add_wear(8000);
  b.program_random();
  const int before = b.count_errors({3, PageKind::kMsb});
  b.apply_reads(4, 1e6);
  const int after = b.count_errors({3, PageKind::kMsb});
  EXPECT_GT(after, before + 5);
}

TEST_F(BlockTest, DisturbErrorsGrowWithWear) {
  int errors_low = 0, errors_high = 0;
  {
    Chip chip(geom_, params_, 21);
    auto& b = chip.block(0);
    b.add_wear(2000);
    b.program_random();
    b.apply_reads(0, 5e5);
    for (std::uint32_t wl = 1; wl < geom_.wordlines_per_block; ++wl)
      errors_low += b.count_errors({wl, PageKind::kMsb});
  }
  {
    Chip chip(geom_, params_, 21);
    auto& b = chip.block(0);
    b.add_wear(12000);
    b.program_random();
    b.apply_reads(0, 5e5);
    for (std::uint32_t wl = 1; wl < geom_.wordlines_per_block; ++wl)
      errors_high += b.count_errors({wl, PageKind::kMsb});
  }
  EXPECT_GT(errors_high, errors_low);
}

TEST_F(BlockTest, LowerVpassReducesDisturb) {
  Chip chip_a(geom_, params_, 31), chip_b(geom_, params_, 31);
  auto& a = chip_a.block(0);
  auto& b = chip_b.block(0);
  for (auto* blk : {&a, &b}) {
    blk->add_wear(8000);
    blk->program_random();
  }
  b.set_vpass(512.0 * 0.96);
  a.apply_reads(0, 1e6);
  b.apply_reads(0, 1e6);
  int ea = 0, eb = 0;
  for (std::uint32_t wl = 1; wl < geom_.wordlines_per_block; ++wl) {
    ea += a.count_errors({wl, PageKind::kMsb});
    eb += b.count_errors({wl, PageKind::kMsb});
  }
  EXPECT_LT(eb, ea / 2);
}

TEST_F(BlockTest, BlockedBitlinesMonotoneInVpass) {
  auto& b = chip_.block(0);
  b.add_wear(8000);
  b.program_random();
  int prev = 0;
  for (double v = 512; v >= 460; v -= 4) {
    const int n = b.count_blocked_bitlines(0, v);
    EXPECT_GE(n, prev);
    prev = n;
  }
  EXPECT_GT(prev, 0);  // Deep relaxation must block something.
  EXPECT_EQ(b.count_blocked_bitlines(0, 512.0), 0);
}

TEST_F(BlockTest, BlockingRelaxesWithRetention) {
  auto& b = chip_.block(0);
  b.add_wear(8000);
  b.program_random();
  const int young = b.count_blocked_bitlines(0, 490.0);
  b.advance_time(21.0);
  const int old = b.count_blocked_bitlines(0, 490.0);
  EXPECT_LE(old, young);
}

TEST_F(BlockTest, ReadRetryScanQuantizes) {
  auto& b = chip_.block(0);
  b.program_random();
  const auto scan = b.read_retry_scan(0, 0.0, 520.0, 2.0);
  ASSERT_EQ(scan.size(), geom_.bitlines);
  for (std::uint32_t bl = 0; bl < geom_.bitlines; ++bl) {
    const double v = b.present_vth(0, bl);
    EXPECT_GE(scan[bl], v);
    EXPECT_LE(scan[bl] - v, 2.0 + 1e-9);
    // Scan values sit on the retry grid.
    const double steps = (scan[bl] - 0.0) / 2.0;
    EXPECT_NEAR(steps, std::round(steps), 1e-9);
  }
}

TEST_F(BlockTest, RetentionLowersProgrammedVth) {
  auto& b = chip_.block(0);
  b.program_random();
  // Find a P3 cell and check leakage.
  for (std::uint32_t bl = 0; bl < geom_.bitlines; ++bl) {
    if (b.cell(0, bl).programmed == flash::CellState::kP3) {
      const double young = b.present_vth(0, bl);
      b.advance_time(21.0);
      EXPECT_LT(b.present_vth(0, bl), young);
      break;
    }
  }
}

TEST_F(BlockTest, BlockedCountMatchesLinearThresholdScan) {
  // count_blocked_bitlines binary-searches a sorted copy of the blocking
  // thresholds; it must agree with the direct per-bitline definition at
  // day 0 (no retention drift term).
  auto& b = chip_.block(0);
  b.add_wear(8000);
  b.program_random();
  for (double v = 520.0; v >= 380.0; v -= 1.7) {
    int linear = 0;
    for (std::uint32_t bl = 0; bl < geom_.bitlines; ++bl)
      linear += b.blocking_threshold(bl) > v;
    EXPECT_EQ(b.count_blocked_bitlines(0, v), linear) << v;
  }
}

TEST_F(BlockTest, ErasedBlockBlocksEverything) {
  // Erased strings have +inf blocking thresholds by convention.
  const auto& b = chip_.block(0);
  EXPECT_EQ(b.count_blocked_bitlines(0, 512.0),
            static_cast<int>(geom_.bitlines));
}

TEST_F(BlockTest, PresentVthPageMatchesScalarAccessor) {
  auto& b = chip_.block(0);
  b.add_wear(8000);
  b.program_random();
  b.apply_reads(3, 4e5);
  b.advance_time(2.0);
  const auto page = b.present_vth_page(5);
  ASSERT_EQ(page.size(), geom_.bitlines);
  for (std::uint32_t bl = 0; bl < geom_.bitlines; ++bl)
    EXPECT_EQ(page[bl], b.present_vth(5, bl)) << bl;  // Bit-identical.
}

TEST_F(BlockTest, CellAccessorsAgree) {
  auto& b = chip_.block(0);
  b.program_random();
  for (std::uint32_t bl = 0; bl < 64; ++bl) {
    const auto cell = b.cell(7, bl);
    EXPECT_EQ(cell.programmed, b.cell_state(7, bl));
    EXPECT_GT(cell.susceptibility, 0.0F);
    EXPECT_GT(cell.leak_rate, 0.0F);
  }
}

TEST_F(BlockTest, ProgramRandomBitAssignmentMatchesDrawStream) {
  // program_random unpacks 64 data bits per raw draw, wordline by
  // wordline, (LSB, MSB) per bitline in order; the stored ground truth
  // must match an *independent* unpacking of the same stream — this
  // pins the assignment order itself, not just determinism.
  auto& b = chip_.block(1);
  b.program_random();
  // Mirror the block's private stream: Chip seeds block i with the i-th
  // fork of Rng(seed); this fixture's chip seed is 11.
  Rng root(11);
  root.fork();               // Block 0's stream.
  Rng mirror = root.fork();  // Block 1's stream.
  std::vector<std::uint8_t> bits(2 * static_cast<std::size_t>(geom_.bitlines));
  mirror.fill_random_bits(bits.data(), bits.size());
  for (std::uint32_t bl = 0; bl < geom_.bitlines; ++bl) {
    ASSERT_EQ(b.cell_state(0, bl),
              flash::state_of_bits(bits[2 * bl], bits[2 * bl + 1]))
        << bl;
  }
}

TEST(Randomizer, RoundTripAndKeyVariation) {
  Randomizer r;
  std::vector<std::uint8_t> data(257);
  for (std::size_t i = 0; i < data.size(); ++i)
    data[i] = static_cast<std::uint8_t>(i);
  auto scrambled = data;
  r.apply(3, 7, scrambled);
  EXPECT_NE(scrambled, data);
  r.apply(3, 7, scrambled);  // Involution.
  EXPECT_EQ(scrambled, data);
  // Different addresses produce different keystreams.
  auto a = data, b = data;
  r.apply(3, 7, a);
  r.apply(3, 8, b);
  EXPECT_NE(a, b);
}

TEST(RandomizerStats, OutputBalanced) {
  Randomizer r;
  std::vector<std::uint8_t> zeros(4096, 0);
  r.apply(0, 0, zeros);
  int ones = 0;
  for (auto byte : zeros) ones += __builtin_popcount(byte);
  EXPECT_NEAR(ones, 4096 * 4, 400);
}

}  // namespace
}  // namespace rdsim::nand
