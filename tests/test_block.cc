// Unit and behaviour tests for the Monte Carlo NAND block.
#include "nand/block.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include "nand/chip.h"
#include "nand/randomizer.h"

namespace rdsim::nand {
namespace {

class BlockTest : public ::testing::Test {
 protected:
  flash::FlashModelParams params_ = flash::FlashModelParams::default_2ynm();
  Geometry geom_ = Geometry::tiny();  // 16 x 1024 x 4 blocks.
  Chip chip_{geom_, params_, 11};
};

TEST_F(BlockTest, FreshBlockState) {
  const auto& b = chip_.block(0);
  EXPECT_EQ(b.pe_cycles(), 0u);
  EXPECT_FALSE(b.programmed());
  EXPECT_DOUBLE_EQ(b.dose(), 0.0);
}

TEST_F(BlockTest, ProgramIncrementsPeAndTimestamps) {
  auto& b = chip_.block(0);
  b.advance_time(3.0);
  b.program_random();
  EXPECT_TRUE(b.programmed());
  EXPECT_EQ(b.pe_cycles(), 1u);
  EXPECT_DOUBLE_EQ(b.retention_days(), 0.0);
  b.advance_time(2.5);
  EXPECT_DOUBLE_EQ(b.retention_days(), 2.5);
}

TEST_F(BlockTest, EraseClearsState) {
  auto& b = chip_.block(0);
  b.program_random();
  b.apply_reads(0, 1000);
  b.erase();
  EXPECT_FALSE(b.programmed());
  EXPECT_DOUBLE_EQ(b.dose(), 0.0);
  EXPECT_EQ(b.pe_cycles(), 1u);  // Wear persists.
}

TEST_F(BlockTest, AddWearAccumulates) {
  auto& b = chip_.block(0);
  b.add_wear(5000);
  b.add_wear(3000);
  EXPECT_EQ(b.pe_cycles(), 8000u);
  EXPECT_FALSE(b.programmed());
}

TEST_F(BlockTest, ProgramStoresGroundTruth) {
  auto& b = chip_.block(0);
  PageBits lsb(geom_.bitlines, 1), msb(geom_.bitlines, 0);  // All P1.
  for (std::uint32_t wl = 0; wl < geom_.wordlines_per_block; ++wl)
    b.program_wordline(wl, lsb, msb);
  for (std::uint32_t bl = 0; bl < 20; ++bl)
    EXPECT_EQ(b.cell(3, bl).programmed, flash::CellState::kP1);
}

TEST_F(BlockTest, FreshReadNearlyErrorFree) {
  auto& b = chip_.block(0);
  b.program_random();
  int errors = 0;
  for (std::uint32_t wl = 0; wl < geom_.wordlines_per_block; ++wl) {
    errors += b.count_errors({wl, PageKind::kLsb});
    errors += b.count_errors({wl, PageKind::kMsb});
  }
  // Only program errors (~1e-4 of cells) contribute on a fresh block.
  EXPECT_LT(errors, 20);
}

TEST_F(BlockTest, ReadPageReportsAndAccumulatesDose) {
  auto& b = chip_.block(0);
  b.program_random();
  const double before = b.dose();
  const auto result = b.read_page({2, PageKind::kLsb});
  EXPECT_EQ(result.bits.size(), geom_.bitlines);
  EXPECT_GT(b.dose(), before);
}

TEST_F(BlockTest, SelfDoseExcluded) {
  auto& b = chip_.block(0);
  b.program_random();
  b.apply_reads(5, 1e5);
  // The addressed wordline does not disturb itself.
  EXPECT_DOUBLE_EQ(b.dose_for_wordline(5), 0.0);
  EXPECT_GT(b.dose_for_wordline(4), 0.0);
  EXPECT_DOUBLE_EQ(b.dose_for_wordline(4), b.dose_for_wordline(6));
}

TEST_F(BlockTest, DisturbRaisesErrorsOnOtherWordlines) {
  auto& b = chip_.block(0);
  b.add_wear(8000);
  b.program_random();
  const int before = b.count_errors({3, PageKind::kMsb});
  b.apply_reads(4, 1e6);
  const int after = b.count_errors({3, PageKind::kMsb});
  EXPECT_GT(after, before + 5);
}

TEST_F(BlockTest, DisturbErrorsGrowWithWear) {
  int errors_low = 0, errors_high = 0;
  {
    Chip chip(geom_, params_, 21);
    auto& b = chip.block(0);
    b.add_wear(2000);
    b.program_random();
    b.apply_reads(0, 5e5);
    for (std::uint32_t wl = 1; wl < geom_.wordlines_per_block; ++wl)
      errors_low += b.count_errors({wl, PageKind::kMsb});
  }
  {
    Chip chip(geom_, params_, 21);
    auto& b = chip.block(0);
    b.add_wear(12000);
    b.program_random();
    b.apply_reads(0, 5e5);
    for (std::uint32_t wl = 1; wl < geom_.wordlines_per_block; ++wl)
      errors_high += b.count_errors({wl, PageKind::kMsb});
  }
  EXPECT_GT(errors_high, errors_low);
}

TEST_F(BlockTest, LowerVpassReducesDisturb) {
  Chip chip_a(geom_, params_, 31), chip_b(geom_, params_, 31);
  auto& a = chip_a.block(0);
  auto& b = chip_b.block(0);
  for (auto* blk : {&a, &b}) {
    blk->add_wear(8000);
    blk->program_random();
  }
  b.set_vpass(512.0 * 0.96);
  a.apply_reads(0, 1e6);
  b.apply_reads(0, 1e6);
  int ea = 0, eb = 0;
  for (std::uint32_t wl = 1; wl < geom_.wordlines_per_block; ++wl) {
    ea += a.count_errors({wl, PageKind::kMsb});
    eb += b.count_errors({wl, PageKind::kMsb});
  }
  EXPECT_LT(eb, ea / 2);
}

TEST_F(BlockTest, BlockedBitlinesMonotoneInVpass) {
  auto& b = chip_.block(0);
  b.add_wear(8000);
  b.program_random();
  int prev = 0;
  for (double v = 512; v >= 460; v -= 4) {
    const int n = b.count_blocked_bitlines(0, v);
    EXPECT_GE(n, prev);
    prev = n;
  }
  EXPECT_GT(prev, 0);  // Deep relaxation must block something.
  EXPECT_EQ(b.count_blocked_bitlines(0, 512.0), 0);
}

TEST_F(BlockTest, BlockingRelaxesWithRetention) {
  auto& b = chip_.block(0);
  b.add_wear(8000);
  b.program_random();
  const int young = b.count_blocked_bitlines(0, 490.0);
  b.advance_time(21.0);
  const int old = b.count_blocked_bitlines(0, 490.0);
  EXPECT_LE(old, young);
}

TEST_F(BlockTest, ReadRetryScanQuantizes) {
  auto& b = chip_.block(0);
  b.program_random();
  const auto scan = b.read_retry_scan(0, 0.0, 520.0, 2.0);
  ASSERT_EQ(scan.size(), geom_.bitlines);
  for (std::uint32_t bl = 0; bl < geom_.bitlines; ++bl) {
    const double v = b.present_vth(0, bl);
    EXPECT_GE(scan[bl], v);
    EXPECT_LE(scan[bl] - v, 2.0 + 1e-9);
    // Scan values sit on the retry grid.
    const double steps = (scan[bl] - 0.0) / 2.0;
    EXPECT_NEAR(steps, std::round(steps), 1e-9);
  }
}

TEST_F(BlockTest, RetentionLowersProgrammedVth) {
  auto& b = chip_.block(0);
  b.program_random();
  // Find a P3 cell and check leakage.
  for (std::uint32_t bl = 0; bl < geom_.bitlines; ++bl) {
    if (b.cell(0, bl).programmed == flash::CellState::kP3) {
      const double young = b.present_vth(0, bl);
      b.advance_time(21.0);
      EXPECT_LT(b.present_vth(0, bl), young);
      break;
    }
  }
}

TEST_F(BlockTest, BlockedCountMatchesLinearThresholdScan) {
  // count_blocked_bitlines binary-searches a sorted copy of the blocking
  // thresholds; it must agree with the direct per-bitline definition at
  // day 0 (no retention drift term).
  auto& b = chip_.block(0);
  b.add_wear(8000);
  b.program_random();
  for (double v = 520.0; v >= 380.0; v -= 1.7) {
    int linear = 0;
    for (std::uint32_t bl = 0; bl < geom_.bitlines; ++bl)
      linear += b.blocking_threshold(bl) > v;
    EXPECT_EQ(b.count_blocked_bitlines(0, v), linear) << v;
  }
}

TEST_F(BlockTest, ErasedBlockBlocksEverything) {
  // Erased strings have +inf blocking thresholds by convention.
  const auto& b = chip_.block(0);
  EXPECT_EQ(b.count_blocked_bitlines(0, 512.0),
            static_cast<int>(geom_.bitlines));
}

TEST_F(BlockTest, PresentVthPageMatchesScalarAccessor) {
  auto& b = chip_.block(0);
  b.add_wear(8000);
  b.program_random();
  b.apply_reads(3, 4e5);
  b.advance_time(2.0);
  const auto page = b.present_vth_page(5);
  ASSERT_EQ(page.size(), geom_.bitlines);
  for (std::uint32_t bl = 0; bl < geom_.bitlines; ++bl)
    EXPECT_EQ(page[bl], b.present_vth(5, bl)) << bl;  // Bit-identical.
}

TEST_F(BlockTest, CellAccessorsAgree) {
  auto& b = chip_.block(0);
  b.program_random();
  for (std::uint32_t bl = 0; bl < 64; ++bl) {
    const auto cell = b.cell(7, bl);
    EXPECT_EQ(cell.programmed, b.cell_state(7, bl));
    EXPECT_GT(cell.susceptibility, 0.0F);
    EXPECT_GT(cell.leak_rate, 0.0F);
  }
}

TEST_F(BlockTest, ProgramRandomBitAssignmentMatchesDrawStream) {
  // A wordline's random data is drawn from the counter-based stream
  // Rng::at(block seed, program epoch, wl) — 64 data bits per raw draw,
  // (LSB, MSB) per bitline in order. The stored ground truth must match
  // an *independent* derivation of the same stream — this pins the
  // assignment order and the seed derivation, not just determinism.
  auto& b = chip_.block(1);
  b.program_random();
  // Mirror the block's seed: Chip seeds block i with the i-th fork of
  // Rng(seed) (this fixture's chip seed is 11), and the block's stream
  // root is that fork's first output. Epochs count program events from 1,
  // so the first program after construction runs at epoch 1.
  Rng root(11);
  root.fork();               // Block 0's stream.
  const std::uint64_t block_seed = root.fork().next();
  for (const std::uint32_t wl : {0u, 7u}) {
    Rng mirror = Rng::at(block_seed, /*epoch=*/1, wl);
    std::vector<std::uint8_t> bits(2 *
                                   static_cast<std::size_t>(geom_.bitlines));
    mirror.fill_random_bits(bits.data(), bits.size());
    for (std::uint32_t bl = 0; bl < geom_.bitlines; ++bl) {
      ASSERT_EQ(b.cell_state(wl, bl),
                flash::state_of_bits(bits[2 * bl], bits[2 * bl + 1]))
          << "wl " << wl << " bl " << bl;
    }
  }
}

// --- Lazy materialization: ground truth must be a pure function of
// (block seed, program epoch, wordline), independent of touch order. ---

/// Collects every observable ground-truth field of one wordline.
std::vector<double> wordline_fingerprint(const Block& b, std::uint32_t wl) {
  std::vector<double> out;
  for (std::uint32_t bl = 0; bl < b.geometry().bitlines; ++bl) {
    const auto cell = b.cell(wl, bl);
    out.push_back(static_cast<double>(cell.programmed));
    out.push_back(cell.v0);
    out.push_back(cell.susceptibility);
    out.push_back(cell.leak_rate);
  }
  const auto page = b.present_vth_page(wl);
  out.insert(out.end(), page.begin(), page.end());
  return out;
}

TEST_F(BlockTest, MaterializationOrderDoesNotChangeGroundTruth) {
  // Same chip seed, three different touch orders (ascending, descending,
  // shuffled-with-revisits); every wordline's cells and present Vth must
  // come out bit-identical.
  const auto make_block = [&](Chip& chip) -> Block& {
    auto& b = chip.block(0);
    b.add_wear(8000);
    b.program_random();
    b.apply_reads(3, 2e5);  // Dose so present_vth exercises the full path.
    return b;
  };
  Chip fwd(geom_, params_, 77), rev(geom_, params_, 77),
      shuf(geom_, params_, 77);
  Block& a = make_block(fwd);
  Block& b = make_block(rev);
  Block& c = make_block(shuf);

  std::vector<std::uint32_t> order(geom_.wordlines_per_block);
  for (std::uint32_t wl = 0; wl < order.size(); ++wl) order[wl] = wl;
  // Deterministic shuffle, with one wordline touched twice up front.
  Rng shuffle_rng(5);
  for (std::size_t i = order.size(); i > 1; --i)
    std::swap(order[i - 1], order[shuffle_rng.uniform_u64(i)]);
  std::vector<std::vector<double>> got_a(order.size()), got_b(order.size()),
      got_c(order.size());
  for (std::uint32_t wl = 0; wl < order.size(); ++wl)
    got_a[wl] = wordline_fingerprint(a, wl);
  for (std::uint32_t i = 0; i < order.size(); ++i) {
    const auto wl = static_cast<std::uint32_t>(order.size() - 1 - i);
    got_b[wl] = wordline_fingerprint(b, wl);
  }
  got_c[order[0]] = wordline_fingerprint(c, order[0]);  // Revisit below.
  for (const std::uint32_t wl : order) got_c[wl] = wordline_fingerprint(c, wl);
  for (std::uint32_t wl = 0; wl < order.size(); ++wl) {
    EXPECT_EQ(got_a[wl], got_b[wl]) << "ascending vs descending, wl " << wl;
    EXPECT_EQ(got_a[wl], got_c[wl]) << "ascending vs shuffled, wl " << wl;
  }
}

TEST_F(BlockTest, LazyAndEagerFullBlockAgree) {
  // Touching every wordline immediately after programming (the eager
  // pattern) and sensing lazily in scattered order later must yield the
  // same errors and the same ground truth.
  Chip eager_chip(geom_, params_, 91), lazy_chip(geom_, params_, 91);
  for (auto* chip : {&eager_chip, &lazy_chip}) {
    auto& b = chip->block(0);
    b.add_wear(8000);
    b.program_random();
  }
  auto& eager = eager_chip.block(0);
  auto& lazy = lazy_chip.block(0);
  // Eager: force-materialize everything up front.
  for (std::uint32_t wl = 0; wl < geom_.wordlines_per_block; ++wl)
    (void)eager.cell(wl, 0);
  for (auto* b : {&eager, &lazy}) {
    b->apply_reads(4, 5e5);
    b->advance_time(1.5);
  }
  for (std::uint32_t i = 0; i < geom_.wordlines_per_block; ++i) {
    // Lazy side touches wordlines middle-out; eager side in order.
    const std::uint32_t lazy_wl =
        (geom_.wordlines_per_block / 2 + 5 * i) % geom_.wordlines_per_block;
    EXPECT_EQ(lazy.count_errors({lazy_wl, PageKind::kLsb}),
              eager.count_errors({lazy_wl, PageKind::kLsb}));
    EXPECT_EQ(wordline_fingerprint(lazy, lazy_wl),
              wordline_fingerprint(eager, lazy_wl));
  }
  for (std::uint32_t wl = 0; wl < geom_.wordlines_per_block; ++wl) {
    EXPECT_EQ(lazy.count_errors({wl, PageKind::kMsb}),
              eager.count_errors({wl, PageKind::kMsb}));
  }
}

TEST_F(BlockTest, ExplicitReprogramDrawsFreshSamples) {
  // Epochs count program events, not erases: a second explicit pass over
  // the block (the log-structured rewrite pattern) must resample the
  // cells even with identical data and no intervening erase.
  auto& b = chip_.block(3);
  PageBits lsb(geom_.bitlines, 1), msb(geom_.bitlines, 0);  // All P1.
  for (std::uint32_t wl = 0; wl < geom_.wordlines_per_block; ++wl)
    b.program_wordline(wl, lsb, msb);
  const float first = b.cell(2, 5).v0;
  for (std::uint32_t wl = 0; wl < geom_.wordlines_per_block; ++wl)
    b.program_wordline(wl, lsb, msb);
  EXPECT_EQ(b.cell(2, 5).programmed, flash::CellState::kP1);
  EXPECT_NE(b.cell(2, 5).v0, first);
  EXPECT_EQ(b.pe_cycles(), 2u);
}

TEST_F(BlockTest, ReprogramChangesGroundTruthEpoch) {
  // Each erase advances the program epoch, so a reprogrammed block draws
  // fresh data and fresh cells — reading before or after must not leak
  // the previous epoch's rows.
  auto& b = chip_.block(2);
  b.program_random();
  const auto first = wordline_fingerprint(b, 6);
  b.erase();
  b.program_random();
  const auto second = wordline_fingerprint(b, 6);
  EXPECT_NE(first, second);
  // And an untouched-then-erased wordline yields erased ground truth.
  b.erase();
  EXPECT_EQ(b.cell(9, 0).programmed, flash::CellState::kEr);
  EXPECT_EQ(b.cell(9, 0).v0, 0.0F);
}

TEST(Randomizer, RoundTripAndKeyVariation) {
  Randomizer r;
  std::vector<std::uint8_t> data(257);
  for (std::size_t i = 0; i < data.size(); ++i)
    data[i] = static_cast<std::uint8_t>(i);
  auto scrambled = data;
  r.apply(3, 7, scrambled);
  EXPECT_NE(scrambled, data);
  r.apply(3, 7, scrambled);  // Involution.
  EXPECT_EQ(scrambled, data);
  // Different addresses produce different keystreams.
  auto a = data, b = data;
  r.apply(3, 7, a);
  r.apply(3, 8, b);
  EXPECT_NE(a, b);
}

TEST(RandomizerStats, OutputBalanced) {
  Randomizer r;
  std::vector<std::uint8_t> zeros(4096, 0);
  r.apply(0, 0, zeros);
  int ones = 0;
  for (auto byte : zeros) ones += __builtin_popcount(byte);
  EXPECT_NEAR(ones, 4096 * 4, 400);
}

}  // namespace
}  // namespace rdsim::nand
