// Golden determinism test: every registered experiment, run tiny at the
// canonical seed, must reproduce a checked-in CRC32 of its CSV output.
//
// This is the regression net under the SoA/batched sense kernel: any
// change to the cell store layout, the draw order, or the sense math
// shifts at least one of these hashes, so it cannot land silently — a PR
// that intentionally changes results must re-golden this table and say
// why. The vectorized sense kernel avoids libm in the per-cell paths and
// the build pins -ffp-contract=off, so the hashes hold across compilers
// and -march levels on the same libm. They are NOT libm-independent: the
// program-time draws still use std::exp / std::log (via Rng::normal), so
// a libm whose last-ulp rounding differs from CI's glibc can shift them.
// On such a platform set RDSIM_SKIP_GOLDEN=1 (the thread-determinism and
// batch-vs-scalar bit-identity tests still run there) rather than
// re-goldening.
//
// To (re)generate the table after an intentional change:
//   RDSIM_PRINT_GOLDEN=1 ./tests/test_golden_experiments
// and paste the printed rows over kGolden below, noting the reason in the
// commit message.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <span>
#include <string>

#include <gtest/gtest.h>

#include "ecc/crc32.h"
#include "sim/experiment.h"

namespace rdsim::sim {
namespace {

/// Same tiny configuration the sim-runner determinism tests use; threads=2
/// is safe because thread count provably does not change results.
ExperimentConfig golden_config() {
  ExperimentConfig config;
  config.seed = 42;
  config.threads = 2;
  config.geometry = nand::Geometry::tiny();
  config.scale = 0.01;
  return config;
}

std::uint32_t csv_crc(const std::string& csv) {
  return ecc::crc32(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(csv.data()), csv.size()));
}

struct GoldenEntry {
  const char* name;
  std::uint32_t crc;
};

// Golden CRCs at seed 42, tiny geometry, scale 0.01 (PR 2: first version,
// captured together with the SoA cell store + packed program_random draw
// stream this PR introduced; PR 3 added fig_qos and kept every other
// hash unchanged through the queued-host-interface refactor — fig08's
// FTL op sequence is preserved exactly by the command conversion; PR 4's
// lazy counter-based cell materialization moved the MC draw stream again,
// re-goldening exactly the five chip-backed experiments — fig02, fig09,
// fig10, ablation_rdr, ext_mechanisms — while every analytic hash and
// fig_qos held byte-identical).
// PR 5 added fig_qos_mc (the sharded Monte Carlo drive) and kept every
// existing hash unchanged: the Device facade split, the FlashTimeline
// extraction, and the ClosedLoopDriver buffering are all bit-transparent
// for single-timeline backends (the driver's merge-before-pop slot
// accounting only matters when shard completion times interleave, which
// a single flash timeline cannot produce).
// PR 6 added scenario (the config-driven replay, pinned on its default
// paper-mlc profile) and kept every existing hash unchanged: the
// Servicer generalization of ShardedDevice and the make_device port of
// fig_qos/fig_qos_mc bring-up are both bit-transparent (one de-striped
// sub-command per shard reproduces the old per-page accumulation chains
// exactly).
// PR 7 added fig_reliability (fault injection vs the ECC/retry/RDR error
// path) and kept every existing hash unchanged: the escalation ladder
// only diverges from the old sense path when a page exceeds the ECC
// capability or a fault knob is nonzero, and no golden run does either
// (all fault RNG streams are draw-free at their zero defaults).
// PR 8 added fig_trace_replay (the MSR sample trace through the replay
// subsystem, both backends and disciplines, pinned to the checked-in
// tests/data file) and kept every existing hash unchanged: trace replay
// is off by default in scenario, and the ClosedLoopDriver completion
// sink is bit-transparent when unset.
// PR 9 added fig_fleet (the fleet lifetime runner with checkpoint/
// resume) and kept every existing hash unchanged: the fleet layer sits
// above the unchanged Ssd/Ftl simulation, the Ftl snapshot gained a
// version field (format change only — no simulation path touched), and
// the new [fleet] config section defaults to disabled everywhere else.
// PR 10 added fig_qos_tenants (multi-tenant noisy-neighbor isolation
// across the four arbitration policies) and kept every existing hash
// unchanged: under the default FIFO policy the arbitration seam is
// bit-transparent (keys are constant, the sorted service order is the
// submission order, and nothing is ever withheld from service), and no
// pre-existing run configures a [tenants] section.
constexpr GoldenEntry kGolden[] = {
    {"fig_fleet", 0x94E36796},
    {"fig_qos_tenants", 0xA506CF6E},
    {"fig_qos", 0x21AD8CF4},
    {"fig_trace_replay", 0x9885A439},
    {"fig_qos_mc", 0xFDC18F1D},
    {"fig_reliability", 0x7D2B1260},
    {"scenario", 0x835C0A43},
    {"fig02", 0xB7A62718},
    {"fig03", 0x3774575E},
    {"fig04", 0xD9633849},
    {"fig05", 0x1DD22858},
    {"fig06", 0x36F9A502},
    {"fig07", 0x640231F6},
    {"fig08", 0x8445DE5E},
    {"fig09", 0x52631BE1},
    {"fig10", 0x9DD61EC4},
    {"fig11", 0xF300A7C5},
    {"fig12", 0x9957B651},
    {"ablation_rdr", 0xF9368953},
    {"ablation_tuning", 0x308DD824},
    {"ext_mechanisms", 0x8AA79E70},
    {"mitigation_compare", 0xCAD938A1},
    {"overheads", 0xB64C085C},
};

const GoldenEntry* find_golden(const char* name) {
  for (const auto& g : kGolden)
    if (std::string_view(g.name) == name) return &g;
  return nullptr;
}

TEST(GoldenExperiments, EveryExperimentMatchesCheckedInHash) {
  if (std::getenv("RDSIM_SKIP_GOLDEN") != nullptr)
    GTEST_SKIP() << "RDSIM_SKIP_GOLDEN set (non-reference libm platform)";
  const bool print = std::getenv("RDSIM_PRINT_GOLDEN") != nullptr;
  for (const auto& e : experiments()) {
    SCOPED_TRACE(e.name);
    const std::string csv = run_experiment(e, golden_config()).to_csv();
    const std::uint32_t crc = csv_crc(csv);
    if (print) {
      std::printf("    {\"%s\", 0x%08X},\n", e.name, crc);
      continue;
    }
    const GoldenEntry* golden = find_golden(e.name);
    ASSERT_NE(golden, nullptr)
        << "experiment \"" << e.name << "\" has no golden hash — run "
        << "RDSIM_PRINT_GOLDEN=1 ./tests/test_golden_experiments and add "
        << "the printed row to kGolden";
    EXPECT_EQ(crc, golden->crc)
        << "output of \"" << e.name << "\" changed (crc 0x" << std::hex
        << crc << " vs golden 0x" << golden->crc << std::dec
        << "). If intentional, re-golden via RDSIM_PRINT_GOLDEN=1 and "
        << "explain the change in the PR.";
  }
}

// The reverse direction: goldens for experiments that no longer exist are
// stale and must be pruned.
TEST(GoldenExperiments, NoStaleGoldenEntries) {
  for (const auto& g : kGolden)
    EXPECT_NE(find_experiment(g.name), nullptr)
        << "golden entry \"" << g.name << "\" matches no experiment";
}

}  // namespace
}  // namespace rdsim::sim
