// Fault injection and graceful degradation: the FTL's grown-defect
// management (program/erase failures, spare exhaustion, read-only
// freeze), the MC chip's latent pages and die kill, and the determinism
// of it all across worker counts. The bit-transparency of the zero-fault
// defaults is pinned separately by test_golden_experiments.
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cfg/spec.h"
#include "flash/params.h"
#include "ftl/ftl.h"
#include "host/factory.h"
#include "host/mc_chip_device.h"
#include "host/sharded_device.h"
#include "host/ssd_device.h"
#include "ssd/ssd.h"

namespace rdsim {
namespace {

ftl::FtlConfig small_ftl() {
  ftl::FtlConfig cfg;
  cfg.blocks = 32;
  cfg.pages_per_block = 8;
  cfg.overprovision = 0.25;
  cfg.gc_free_target = 2;
  cfg.spare_blocks = 2;
  return cfg;
}

TEST(FtlFaults, CertainProgramFailureExhaustsSparesThenFreezes) {
  ftl::FtlConfig cfg = small_ftl();
  cfg.program_fail_prob = 1.0;
  ftl::Ftl ftl(cfg, 7);
  // Every host page write fails its program and retires the open block;
  // the data relocates to a fresh block, so the write itself still
  // succeeds — until the third retirement exhausts spare_blocks = 2 and
  // the drive freezes.
  std::uint32_t blk = ftl::Ftl::kUnmappedBlock;
  EXPECT_EQ(ftl.write_page(0, &blk), ftl::WriteResult::kOk);
  EXPECT_NE(blk, ftl::Ftl::kUnmappedBlock);
  EXPECT_EQ(ftl.write_page(1, &blk), ftl::WriteResult::kOk);
  EXPECT_EQ(ftl.write_page(2, &blk), ftl::WriteResult::kOk);
  EXPECT_EQ(ftl.retired_blocks(), 3u);
  EXPECT_TRUE(ftl.read_only());
  // Frozen: writes are rejected without drawing faults or moving data,
  // reads of the relocated pages still resolve.
  EXPECT_EQ(ftl.write_page(3, &blk), ftl::WriteResult::kReadOnly);
  EXPECT_EQ(blk, ftl::Ftl::kUnmappedBlock);
  EXPECT_EQ(ftl.stats().program_failures, 3u);
  EXPECT_NE(ftl.read(0), ftl::Ftl::kUnmappedBlock);
  EXPECT_NE(ftl.read(2), ftl::Ftl::kUnmappedBlock);
  EXPECT_TRUE(ftl.check_invariants());
}

TEST(FtlFaults, EraseFailuresRetireInPlaceAndGcStillTerminates) {
  ftl::FtlConfig cfg = small_ftl();
  cfg.erase_fail_prob = 1.0;
  ftl::Ftl ftl(cfg, 7);
  // Overwrite the logical space repeatedly: GC must reclaim, and every
  // erase it issues fails and retires the victim. The loop must
  // terminate (no free-count livelock) and land in read-only mode with
  // the invariants intact.
  const std::uint64_t logical = cfg.logical_pages();
  for (int pass = 0; pass < 6; ++pass) {
    for (std::uint64_t lpn = 0; lpn < logical; ++lpn) {
      std::uint32_t blk = ftl::Ftl::kUnmappedBlock;
      if (ftl.write_page(lpn, &blk) == ftl::WriteResult::kReadOnly) break;
    }
  }
  EXPECT_GT(ftl.stats().erase_failures, 0u);
  EXPECT_GT(ftl.retired_blocks(), cfg.spare_blocks);
  EXPECT_TRUE(ftl.read_only());
  for (std::uint32_t b = 0; b < ftl.block_count(); ++b) {
    if (ftl.block(b).state == ftl::BlockInfo::State::kRetired) {
      EXPECT_EQ(ftl.block(b).valid_pages, 0u);
    }
  }
  EXPECT_TRUE(ftl.check_invariants());
}

TEST(FtlFaults, SnapshotRoundTripsRetirementState) {
  ftl::FtlConfig cfg = small_ftl();
  cfg.program_fail_prob = 0.2;
  ftl::Ftl ftl(cfg, 11);
  const std::uint64_t logical = cfg.logical_pages();
  for (int pass = 0; pass < 4; ++pass)
    for (std::uint64_t lpn = 0; lpn < logical; ++lpn) {
      std::uint32_t blk = ftl::Ftl::kUnmappedBlock;
      ftl.write_page(lpn, &blk);
    }
  ASSERT_GT(ftl.retired_blocks(), 0u);
  ASSERT_TRUE(ftl.check_invariants());

  const std::vector<std::uint8_t> snap = ftl.snapshot();
  ftl::Ftl restored(cfg, 999);  // Different seed: state comes from snap.
  ASSERT_TRUE(restored.restore(snap));
  EXPECT_EQ(restored.retired_blocks(), ftl.retired_blocks());
  EXPECT_EQ(restored.read_only(), ftl.read_only());
  EXPECT_TRUE(restored.check_invariants());
  for (std::uint32_t b = 0; b < ftl.block_count(); ++b)
    EXPECT_EQ(static_cast<int>(restored.block(b).state),
              static_cast<int>(ftl.block(b).state));
  for (std::uint64_t lpn = 0; lpn < logical; ++lpn)
    EXPECT_EQ(restored.read(lpn), ftl.read(lpn));
}

/// Submits one command and drains its completion.
host::Completion roundtrip(host::Device& device, host::CommandKind kind,
                           std::uint64_t lpn) {
  host::Command c;
  c.kind = kind;
  c.lpn = lpn;
  device.submit(c);
  std::vector<host::Completion> done;
  EXPECT_EQ(device.drain(&done), 1u);
  return done.front();
}

TEST(DeviceFaults, ReadOnlyDriveCompletesWritesWithReadOnlyStatus) {
  // The acceptance path: a device whose FTL exhausted its spares must
  // COMPLETE subsequent writes with kReadOnly — not drop, not crash.
  cfg::DriveSpec drive;
  drive.backend = cfg::Backend::kAnalytic;
  drive.blocks = 32;
  drive.pages_per_block = 8;
  drive.overprovision = 0.25;
  drive.gc_free_target = 2;
  drive.spare_blocks = 1;
  drive.faults.program_fail_prob = 1.0;
  const auto device = host::make_device(drive, 5, 1);
  auto& ssd_device = static_cast<host::SsdDevice&>(*device);

  // Two failing writes retire two blocks > spare_blocks = 1: frozen.
  EXPECT_EQ(roundtrip(*device, host::CommandKind::kWrite, 0).status,
            host::Status::kOk);
  EXPECT_EQ(roundtrip(*device, host::CommandKind::kWrite, 1).status,
            host::Status::kOk);
  ASSERT_TRUE(ssd_device.ssd().ftl().read_only());
  for (std::uint64_t lpn = 2; lpn < 10; ++lpn) {
    const host::Completion c =
        roundtrip(*device, host::CommandKind::kWrite, lpn);
    EXPECT_EQ(c.status, host::Status::kReadOnly) << host::to_string(c);
    EXPECT_EQ(c.error_pages, 1u);
  }
  // Reads and trims still work on the frozen drive.
  EXPECT_EQ(roundtrip(*device, host::CommandKind::kRead, 0).status,
            host::Status::kOk);
  EXPECT_EQ(roundtrip(*device, host::CommandKind::kTrim, 5).status,
            host::Status::kOk);
  EXPECT_EQ(device->stats().commands(host::Status::kReadOnly), 8u);
  EXPECT_EQ(ssd_device.ssd().stats().host_readonly_writes, 8u);
}

TEST(DeviceFaults, LatentPageFailsWholeLadderWithRecoveryLatency) {
  // A latent page is physically dead: the ladder runs every step (retry,
  // then RDR), charges their flash time, and still reports
  // kUncorrectable.
  const nand::Geometry geometry{4, 128, 2};
  const auto params = flash::FlashModelParams::default_2ynm();
  host::ChipFaults faults;
  faults.latent_page_prob = 1.0;
  host::McChipDevice device(geometry, params, 3, 1, host::LatencyParams{},
                            host::ChipErrorPath{}, faults);

  const host::Completion ok_free = roundtrip(
      device, host::CommandKind::kTrim, 0);  // Metadata-only: no ladder.
  EXPECT_EQ(ok_free.status, host::Status::kOk);

  const host::Completion c = roundtrip(device, host::CommandKind::kRead, 0);
  EXPECT_EQ(c.status, host::Status::kUncorrectable) << host::to_string(c);
  EXPECT_EQ(c.error_pages, 1u);
  const host::ErrorStats es = device.error_stats();
  EXPECT_EQ(es.reads_uncorrectable, 1u);
  EXPECT_EQ(es.retry_attempts, 1u);
  EXPECT_EQ(es.rdr_attempts, 1u);
  EXPECT_GT(es.retry_seconds, 0.0);
  EXPECT_GT(es.rdr_seconds, 0.0);
  // The recovery attempts' flash time is in the completion's latency.
  EXPECT_GE(c.latency_s(), es.retry_seconds + es.rdr_seconds);
  EXPECT_EQ(device.stats().error_pages(), 1u);
  EXPECT_GT(device.stats().uber(static_cast<double>(geometry.bitlines)),
            0.0);
}

TEST(DeviceFaults, DieKillFlipsChipAtItsDay) {
  const nand::Geometry geometry{4, 128, 2};
  const auto params = flash::FlashModelParams::default_2ynm();
  host::ChipFaults faults;
  faults.die_kill_day = 1.0;
  host::McChipDevice device(geometry, params, 3, 1, host::LatencyParams{},
                            host::ChipErrorPath{}, faults);

  EXPECT_EQ(roundtrip(device, host::CommandKind::kRead, 0).status,
            host::Status::kOk);
  EXPECT_EQ(roundtrip(device, host::CommandKind::kWrite, 0).status,
            host::Status::kOk);
  device.end_of_day();  // Day 1 arrives: the chip dies.
  EXPECT_EQ(roundtrip(device, host::CommandKind::kRead, 0).status,
            host::Status::kUncorrectable);
  EXPECT_EQ(roundtrip(device, host::CommandKind::kWrite, 0).status,
            host::Status::kFailedWrite);
  const host::ErrorStats es = device.error_stats();
  EXPECT_EQ(es.reads_uncorrectable, 1u);
  EXPECT_EQ(es.writes_failed, 1u);
  // Dead reads fail fast: no recovery steps are attempted on a dead die.
  EXPECT_EQ(es.retry_attempts, 0u);
  EXPECT_EQ(es.rdr_attempts, 0u);
}

cfg::DriveSpec sharded_mc_with_faults() {
  cfg::DriveSpec drive;
  drive.backend = cfg::Backend::kShardedMc;
  drive.shards = 2;
  drive.blocks = 2;
  drive.wordlines_per_block = 4;
  drive.bitlines = 128;
  return drive;
}

TEST(DeviceFaults, DieKillTargetsOnlyTheConfiguredShard) {
  cfg::DriveSpec drive = sharded_mc_with_faults();
  drive.faults.die_kill_shard = 1;
  drive.faults.die_kill_day = 1.0;
  const auto device_ptr = host::make_device(drive, 9, 2);
  auto& device = static_cast<host::ShardedDevice&>(*device_ptr);
  device.end_of_day();

  // Even lpns live on shard 0 (alive), odd on shard 1 (dead).
  EXPECT_EQ(roundtrip(device, host::CommandKind::kRead, 0).status,
            host::Status::kOk);
  EXPECT_EQ(roundtrip(device, host::CommandKind::kRead, 1).status,
            host::Status::kUncorrectable);
  // A striped command spanning both shards reports the worst per-shard
  // outcome but only the dead shard's pages as errors.
  host::Command wide;
  wide.kind = host::CommandKind::kRead;
  wide.lpn = 0;
  wide.pages = 8;
  device.submit(wide);
  std::vector<host::Completion> done;
  ASSERT_EQ(device.drain(&done), 1u);
  EXPECT_EQ(done[0].status, host::Status::kUncorrectable);
  EXPECT_EQ(done[0].error_pages, 4u);
  // Shard 1 saw the single read of lpn 1 plus the wide command's 4 odd
  // pages; shard 0 saw no errors at all.
  EXPECT_EQ(device.shard_error_stats(0).reads_uncorrectable, 0u);
  EXPECT_EQ(device.shard_error_stats(1).reads_uncorrectable, 5u);
}

TEST(DeviceFaults, LatentInjectionIsWorkerCountInvariant) {
  // The fault draws are counter-based on (seed, page, program epoch), so
  // the completion log of a faulty sharded drive is byte-identical for
  // any worker count.
  cfg::DriveSpec drive = sharded_mc_with_faults();
  drive.shards = 4;
  drive.faults.latent_page_prob = 0.05;
  const auto run = [&](int workers) {
    const auto device = host::make_device(drive, 21, workers);
    std::string log;
    std::vector<host::Completion> done;
    const std::uint64_t logical = device->logical_pages();
    for (std::uint64_t i = 0; i < 3 * logical; ++i) {
      host::Command c;
      c.kind = (i % 5 == 4) ? host::CommandKind::kWrite
                            : host::CommandKind::kRead;
      c.lpn = (i * 13) % logical;
      c.pages = 1 + static_cast<std::uint32_t>(i % 3);
      device->submit(c);
    }
    device->drain(&done);
    for (const auto& c : done) log += host::to_string(c) + "\n";
    return log;
  };
  const std::string serial = run(1);
  EXPECT_FALSE(serial.empty());
  EXPECT_NE(serial.find("uncorrectable"), std::string::npos);
  EXPECT_EQ(serial, run(4));
  EXPECT_EQ(serial, run(8));
}

}  // namespace
}  // namespace rdsim
