// Unit tests for common/csv.h and common/log.h.
#include <gtest/gtest.h>

#include <sstream>

#include "common/csv.h"
#include "common/log.h"

namespace rdsim {
namespace {

TEST(Csv, SimpleRow) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.row("a", 1, 2.5);
  EXPECT_EQ(out.str(), "a,1,2.5\n");
}

TEST(Csv, QuotesCommas) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.row("x,y", "plain");
  EXPECT_EQ(out.str(), "\"x,y\",plain\n");
}

TEST(Csv, EscapesQuotes) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.row("say \"hi\"");
  EXPECT_EQ(out.str(), "\"say \"\"hi\"\"\"\n");
}

TEST(Csv, RowVec) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.row_vec({"a", "b", "c"});
  EXPECT_EQ(out.str(), "a,b,c\n");
}

TEST(Csv, EmptyRow) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.row_vec({});
  EXPECT_EQ(out.str(), "\n");
}

TEST(Log, LevelFiltering) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  // Filtered calls must be safe no-ops.
  log_debug("dropped ", 1);
  log_info("dropped");
  log_warn("dropped");
  set_log_level(before);
}

TEST(Log, ConcatFormatsMixedTypes) {
  EXPECT_EQ(detail::concat("a=", 1, ", b=", 2.5), "a=1, b=2.5");
}

}  // namespace
}  // namespace rdsim
