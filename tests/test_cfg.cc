// Tests for the cfg layer and the device factory over it:
//   1. the INI parser round-trips keys/values and flags every malformed
//      construct as a diagnostic without stopping;
//   2. every validation diagnostic the spec layer can emit fires (bad
//      value, out of range, unknown enum, missing required, unknown key,
//      duplicate key, infeasible FTL, unreadable file);
//   3. a valid config maps onto the typed specs field-for-field;
//   4. host::make_device(spec) is bit-identical to the historical
//      hand-built bring-up for every backend (same stream, same seed =>
//      byte-identical completion logs);
//   5. every built-in profile produces a constructible device.
#include "cfg/config.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "cfg/profiles.h"
#include "cfg/spec.h"
#include "host/factory.h"
#include "host/mc_chip_device.h"
#include "host/sharded_device.h"
#include "host/ssd_device.h"
#include "host/ssd_servicer.h"
#include "nand/chip.h"
#include "workload/generator.h"
#include "workload/profiles.h"

namespace rdsim::cfg {
namespace {

using host::Command;
using host::Completion;

/// Shorthand: parse text and run the scenario schema over it.
ScenarioSpec parse_text(const std::string& text,
                        std::vector<Diagnostic>* diags) {
  Config config = Config::parse(text, diags);
  return parse_scenario(config, diags);
}

/// True when some diagnostic names `key` and mentions `needle`.
bool has_diag(const std::vector<Diagnostic>& diags, const std::string& key,
              const std::string& needle) {
  for (const auto& d : diags)
    if (d.key == key && d.message.find(needle) != std::string::npos)
      return true;
  return false;
}

const char* kValidConfig =
    "# full schema exercise\n"
    "[scenario]\n"
    "name = unit ; trailing comment\n"
    "days = 4\n"
    "queue_depth = 16\n"
    "warm_fill = false\n"
    "[drive]\n"
    "backend = sharded_analytic\n"
    "flash_model = 3d\n"
    "shards = 2\n"
    "queue_count = 8\n"
    "blocks = 96\n"
    "pages_per_block = 64\n"
    "overprovision = 0.25\n"
    "gc_free_target = 6\n"
    "refresh_interval_days = 3.5\n"
    "read_reclaim_threshold = 500\n"
    "vpass_tuning = off\n"
    "[workload]\n"
    "profile = msr-src\n"
    "daily_page_ios = 9000\n"
    "trim_fraction = 0.2\n";

TEST(Config, ParserRoundTripsKeysAndValues) {
  std::vector<Diagnostic> diags;
  const Config config = Config::parse(
      "top = 1\n"
      "\n"
      "[a]  # section comment\n"
      "  x  =  spaced value \n"
      "y=2\n"
      "[b]\n"
      "x = 3\n",
      &diags);
  EXPECT_TRUE(diags.empty()) << format_diagnostics(diags);
  const auto items = config.items();
  ASSERT_EQ(items.size(), 4u);
  EXPECT_EQ(items[0], (std::pair<std::string, std::string>{"top", "1"}));
  EXPECT_EQ(items[1],
            (std::pair<std::string, std::string>{"a.x", "spaced value"}));
  EXPECT_EQ(items[2], (std::pair<std::string, std::string>{"a.y", "2"}));
  EXPECT_EQ(items[3], (std::pair<std::string, std::string>{"b.x", "3"}));
}

TEST(Config, TypedAccessorsParseAndFallBack) {
  std::vector<Diagnostic> diags;
  Config config = Config::parse(
      "[t]\nu = 42\nd = 2.5\nb1 = yes\nb0 = off\ns = text\n", &diags);
  EXPECT_EQ(config.get_u64("t.u", 0, &diags), 42u);
  EXPECT_DOUBLE_EQ(config.get_double("t.d", 0.0, &diags), 2.5);
  EXPECT_TRUE(config.get_bool("t.b1", false, &diags));
  EXPECT_FALSE(config.get_bool("t.b0", true, &diags));
  EXPECT_EQ(config.get_string("t.s", "", &diags), "text");
  // Absent keys return the fallback without diagnosing.
  EXPECT_EQ(config.get_u64("t.absent", 7, &diags), 7u);
  EXPECT_TRUE(diags.empty()) << format_diagnostics(diags);
}

TEST(Config, MalformedConstructsAreDiagnosedWithLines) {
  std::vector<Diagnostic> diags;
  Config config = Config::parse(
      "[unclosed\n"      // line 1: malformed section
      "no equals here\n"  // line 2: not a key-value
      " = orphan\n"       // line 3: empty key
      "[s]\n"
      "k = 1\n"
      "k = 2\n",          // line 6: duplicate of line 5
      &diags);
  ASSERT_EQ(diags.size(), 4u);
  EXPECT_EQ(diags[0].line, 1);
  EXPECT_NE(diags[0].message.find("section"), std::string::npos);
  EXPECT_EQ(diags[1].line, 2);
  EXPECT_EQ(diags[2].line, 3);
  EXPECT_EQ(diags[3].line, 6);
  EXPECT_EQ(diags[3].key, "s.k");
  EXPECT_NE(diags[3].message.find("duplicate"), std::string::npos);
  // Last duplicate wins on lookup.
  std::vector<Diagnostic> more;
  EXPECT_EQ(config.get_u64("s.k", 0, &more), 2u);
}

TEST(Config, BadTypedValuesAreDiagnosed) {
  std::vector<Diagnostic> diags;
  Config config = Config::parse(
      "[t]\nu = -3\nu2 = 4Z\nd = fast\nb = maybe\n", &diags);
  ASSERT_TRUE(diags.empty());
  EXPECT_EQ(config.get_u64("t.u", 9, &diags), 9u);
  EXPECT_EQ(config.get_u64("t.u2", 9, &diags), 9u);
  EXPECT_DOUBLE_EQ(config.get_double("t.d", 1.5, &diags), 1.5);
  EXPECT_TRUE(config.get_bool("t.b", true, &diags));
  ASSERT_EQ(diags.size(), 4u);
  EXPECT_EQ(diags[0].key, "t.u");
  EXPECT_EQ(diags[1].key, "t.u2");
  EXPECT_EQ(diags[2].key, "t.d");
  EXPECT_EQ(diags[3].key, "t.b");
  for (const auto& d : diags) EXPECT_GT(d.line, 0);
}

TEST(Config, UnreadableFileIsADiagnostic) {
  std::vector<Diagnostic> diags;
  Config::parse_file("/nonexistent/rdsim.conf", &diags);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_NE(diags[0].message.find("cannot open"), std::string::npos);
}

TEST(Config, FormatDiagnosticsNamesLineAndKey) {
  const std::string text = format_diagnostics(
      {{3, "drive.blocks", "bad value"}, {0, "", "file problem"}});
  EXPECT_NE(text.find("line 3: key 'drive.blocks': bad value"),
            std::string::npos);
  EXPECT_NE(text.find("file problem"), std::string::npos);
}

TEST(Spec, ValidConfigMapsFieldForField) {
  std::vector<Diagnostic> diags;
  const ScenarioSpec spec = parse_text(kValidConfig, &diags);
  EXPECT_TRUE(diags.empty()) << format_diagnostics(diags);
  EXPECT_EQ(spec.name, "unit");
  EXPECT_EQ(spec.days, 4);
  EXPECT_EQ(spec.queue_depth, 16u);
  EXPECT_FALSE(spec.warm_fill);
  EXPECT_EQ(spec.drive.backend, Backend::kShardedAnalytic);
  EXPECT_EQ(spec.drive.flash_model, FlashModel::kEarly3d);
  EXPECT_EQ(spec.drive.shards, 2u);
  EXPECT_EQ(spec.drive.queue_count, 8u);
  EXPECT_EQ(spec.drive.blocks, 96u);
  EXPECT_EQ(spec.drive.pages_per_block, 64u);
  EXPECT_DOUBLE_EQ(spec.drive.overprovision, 0.25);
  EXPECT_EQ(spec.drive.gc_free_target, 6u);
  EXPECT_DOUBLE_EQ(spec.drive.refresh_interval_days, 3.5);
  EXPECT_EQ(spec.drive.read_reclaim_threshold, 500u);
  EXPECT_FALSE(spec.drive.vpass_tuning);
  EXPECT_EQ(spec.workload.profile.name, "msr-src");
  EXPECT_DOUBLE_EQ(spec.workload.profile.daily_page_ios, 9000.0);
  EXPECT_DOUBLE_EQ(spec.workload.profile.trim_fraction, 0.2);
  // Unset overrides keep the named profile's values.
  EXPECT_DOUBLE_EQ(spec.workload.profile.read_fraction,
                   workload::profile_by_name("msr-src").read_fraction);
}

TEST(Spec, MissingRequiredKeysAreDiagnosed) {
  std::vector<Diagnostic> diags;
  parse_text("", &diags);
  EXPECT_TRUE(has_diag(diags, "drive.backend", "missing required"));
  EXPECT_TRUE(has_diag(diags, "workload.profile", "missing required"));
}

TEST(Spec, UnknownEnumValuesAreDiagnosed) {
  std::vector<Diagnostic> diags;
  parse_text(
      "[drive]\nbackend = warp\nflash_model = 5nm\n"
      "[workload]\nprofile = not-a-trace\n",
      &diags);
  EXPECT_TRUE(has_diag(diags, "drive.backend", "unknown backend 'warp'"));
  EXPECT_TRUE(has_diag(diags, "drive.flash_model", "unknown flash model"));
  EXPECT_TRUE(
      has_diag(diags, "workload.profile", "unknown workload profile"));
}

TEST(Spec, OutOfRangeValuesAreDiagnosed) {
  std::vector<Diagnostic> diags;
  parse_text(
      "[drive]\nbackend = analytic\nshards = 0\noverprovision = 2.0\n"
      "[workload]\nprofile = postmark\ntrim_fraction = 1.5\n",
      &diags);
  EXPECT_TRUE(has_diag(diags, "drive.shards", "out of range"));
  EXPECT_TRUE(has_diag(diags, "drive.overprovision", "out of range"));
  EXPECT_TRUE(has_diag(diags, "workload.trim_fraction", "out of range"));
}

TEST(Spec, UnknownKeysAreDiagnosed) {
  std::vector<Diagnostic> diags;
  parse_text(
      "[drive]\nbackend = analytic\nbloks = 64\n"
      "[workload]\nprofile = postmark\n[exotic]\nknob = 1\n",
      &diags);
  EXPECT_TRUE(has_diag(diags, "drive.bloks", "unknown key"));
  EXPECT_TRUE(has_diag(diags, "exotic.knob", "unknown key"));
}

TEST(Spec, TraceSectionParsesAndValidates) {
  std::vector<Diagnostic> diags;
  const ScenarioSpec spec = parse_text(
      "[drive]\nbackend = analytic\n"
      "[trace]\npath = /tmp/some.trace\nformat = msr\nremap = hash\n"
      "mode = closed\nqueue_depth = 32\nspeedup = 100\npage_bytes = 4096\n",
      &diags);
  EXPECT_TRUE(diags.empty()) << format_diagnostics(diags);
  EXPECT_TRUE(spec.trace.enabled());
  EXPECT_EQ(spec.trace.path, "/tmp/some.trace");
  EXPECT_EQ(spec.trace.format, replay::TraceFormat::kMsr);
  EXPECT_EQ(spec.trace.remap, replay::RemapPolicy::kHash);
  EXPECT_EQ(spec.trace.mode, replay::ReplayMode::kClosed);
  EXPECT_EQ(spec.trace.queue_depth, 32u);
  EXPECT_DOUBLE_EQ(spec.trace.speedup, 100.0);
  EXPECT_EQ(spec.trace.page_bytes, 4096u);
}

TEST(Spec, TraceMakesWorkloadProfileOptional) {
  // With a [trace] section the generator is bypassed, so the otherwise
  // required workload.profile must not be demanded...
  std::vector<Diagnostic> diags;
  const ScenarioSpec spec = parse_text(
      "[drive]\nbackend = analytic\n[trace]\npath = t.csv\n", &diags);
  EXPECT_TRUE(diags.empty()) << format_diagnostics(diags);
  EXPECT_TRUE(spec.trace.enabled());
  // ...but without one it still is.
  std::vector<Diagnostic> no_trace;
  parse_text("[drive]\nbackend = analytic\n", &no_trace);
  EXPECT_TRUE(has_diag(no_trace, "workload.profile", "missing required"));
}

TEST(Spec, BadTraceSectionIsDiagnosedByKey) {
  // Stray trace knobs without a path are a broken section.
  std::vector<Diagnostic> diags;
  parse_text(
      "[drive]\nbackend = analytic\n[workload]\nprofile = postmark\n"
      "[trace]\nmode = open\n",
      &diags);
  EXPECT_TRUE(has_diag(diags, "trace.path", "missing required"));

  // Unknown enum values and out-of-range numbers point at their keys.
  std::vector<Diagnostic> bad;
  parse_text(
      "[drive]\nbackend = analytic\n"
      "[trace]\npath = t.csv\nformat = pcap\nremap = fold\nmode = sideways\n"
      "queue_depth = 0\nspeedup = 0\npage_bytes = 100\n",
      &bad);
  EXPECT_TRUE(has_diag(bad, "trace.format", "unknown trace format 'pcap'"));
  EXPECT_TRUE(has_diag(bad, "trace.remap", "unknown remap policy 'fold'"));
  EXPECT_TRUE(has_diag(bad, "trace.mode", "unknown replay mode 'sideways'"));
  EXPECT_TRUE(has_diag(bad, "trace.queue_depth", "out of range"));
  EXPECT_TRUE(has_diag(bad, "trace.speedup", "out of range"));
  EXPECT_TRUE(has_diag(bad, "trace.page_bytes", "out of range"));
}

TEST(Spec, FleetSectionParsesAndValidates) {
  std::vector<Diagnostic> diags;
  const ScenarioSpec spec = parse_text(
      "[drive]\nbackend = analytic\n[workload]\nprofile = postmark\n"
      "[fleet]\ndrives = 24\nyears = 1.5\nreport_interval_days = 14\n"
      "checkpoint_every = 2\nteardown_every = 8\n"
      "pe_fail_prob_median = 1e-3\nfault_rate_sigma = 0.5\n"
      "replace_failed = false\nrebuild_days = 2.5\n",
      &diags);
  EXPECT_TRUE(diags.empty()) << format_diagnostics(diags);
  EXPECT_TRUE(spec.fleet.enabled());
  EXPECT_EQ(spec.fleet.drives, 24u);
  EXPECT_DOUBLE_EQ(spec.fleet.years, 1.5);
  EXPECT_EQ(spec.fleet.report_interval_days, 14u);
  EXPECT_EQ(spec.fleet.checkpoint_every, 2u);
  EXPECT_EQ(spec.fleet.teardown_every, 8u);
  EXPECT_DOUBLE_EQ(spec.fleet.pe_fail_prob_median, 1e-3);
  EXPECT_DOUBLE_EQ(spec.fleet.fault_rate_sigma, 0.5);
  EXPECT_FALSE(spec.fleet.replace_failed);
  EXPECT_DOUBLE_EQ(spec.fleet.rebuild_days, 2.5);
}

TEST(Spec, BadFleetSectionIsDiagnosedByKey) {
  // Stray fleet knobs without a fleet size are a broken section.
  std::vector<Diagnostic> diags;
  parse_text(
      "[drive]\nbackend = analytic\n[workload]\nprofile = postmark\n"
      "[fleet]\nyears = 2\n",
      &diags);
  EXPECT_TRUE(has_diag(diags, "fleet.drives", "missing required"));

  // Out-of-range values point at their keys.
  std::vector<Diagnostic> bad;
  parse_text(
      "[drive]\nbackend = analytic\n[workload]\nprofile = postmark\n"
      "[fleet]\ndrives = 0\nyears = 0\nreport_interval_days = 4000\n"
      "checkpoint_every = 200000\npe_fail_prob_median = 1.5\n"
      "fault_rate_sigma = 9\nrebuild_days = 400\n",
      &bad);
  EXPECT_TRUE(has_diag(bad, "fleet.drives", "out of range"));
  EXPECT_TRUE(has_diag(bad, "fleet.years", "out of range"));
  EXPECT_TRUE(has_diag(bad, "fleet.report_interval_days", "out of range"));
  EXPECT_TRUE(has_diag(bad, "fleet.checkpoint_every", "out of range"));
  EXPECT_TRUE(has_diag(bad, "fleet.pe_fail_prob_median", "out of range"));
  EXPECT_TRUE(has_diag(bad, "fleet.fault_rate_sigma", "out of range"));
  EXPECT_TRUE(has_diag(bad, "fleet.rebuild_days", "out of range"));

  // Cross-section rules: analytic backend only, no [trace] replay, and
  // a sigma needs a median to spread.
  std::vector<Diagnostic> cross;
  parse_text(
      "[drive]\nbackend = sharded_mc\n[workload]\nprofile = postmark\n"
      "[trace]\npath = t.csv\n"
      "[fleet]\ndrives = 4\nfault_rate_sigma = 1\n",
      &cross);
  EXPECT_TRUE(has_diag(cross, "fleet.drives", "analytic"));
  EXPECT_TRUE(has_diag(cross, "fleet.drives", "[trace]"));
  EXPECT_TRUE(has_diag(cross, "fleet.fault_rate_sigma",
                       "pe_fail_prob_median"));
}

TEST(Spec, InfeasibleFtlIsDiagnosed) {
  // 16 blocks at 20% overprovision is ~3 blocks of slack; GC can never
  // reach gc_free_target=4 free blocks and would livelock — the spec
  // layer must reject this before a device is built.
  std::vector<Diagnostic> diags;
  parse_text(
      "[drive]\nbackend = analytic\nblocks = 16\ngc_free_target = 4\n"
      "overprovision = 0.2\n[workload]\nprofile = postmark\n",
      &diags);
  EXPECT_TRUE(has_diag(diags, "drive.gc_free_target", "infeasible"));
  // The same shape on a Monte Carlo backend has no FTL and is fine.
  std::vector<Diagnostic> mc_diags;
  parse_text(
      "[drive]\nbackend = sharded_mc\nblocks = 16\ngc_free_target = 4\n"
      "overprovision = 0.2\n[workload]\nprofile = postmark\n",
      &mc_diags);
  EXPECT_FALSE(has_diag(mc_diags, "drive.gc_free_target", "infeasible"));
}

TEST(Profiles, BuiltinsResolveAndBuildDevices) {
  ASSERT_FALSE(builtin_profiles().empty());
  EXPECT_EQ(find_profile("no-such-profile"), nullptr);
  for (const Profile& p : builtin_profiles()) {
    ASSERT_EQ(find_profile(p.name), &p);
    EXPECT_FALSE(p.description.empty());
    const auto device = host::make_device(p.spec.drive, /*seed=*/42);
    ASSERT_NE(device, nullptr) << p.name;
    EXPECT_GT(device->logical_pages(), 0u) << p.name;
  }
}

// ---- Factory equivalence: spec-built == hand-built, log-for-log. ----

std::vector<Command> mixed_stream(std::uint64_t logical,
                                  std::uint16_t queues, std::uint64_t seed) {
  workload::WorkloadProfile profile = workload::profile_by_name("postmark");
  profile.daily_page_ios = 20000;
  profile.trim_fraction = 0.1;
  profile.flush_period_s = 1800.0;
  workload::TraceGenerator gen(profile, logical, seed, queues);
  return gen.day_commands();
}

/// Replays `stream` with an end_of_day at the midpoint (exercising the
/// maintenance path), draining at the end; returns the completion log.
std::string replay_log(host::Device& device,
                       const std::vector<Command>& stream) {
  std::size_t i = 0;
  for (const auto& c : stream) {
    device.submit(c);
    if (++i == stream.size() / 2) device.end_of_day();
  }
  std::vector<Completion> got;
  device.drain(&got);
  std::string log;
  for (const auto& rec : got) {
    log += to_string(rec);
    log += '\n';
  }
  return log;
}

TEST(Factory, AnalyticSpecMatchesHandBuiltSsdDevice) {
  DriveSpec spec;
  spec.backend = Backend::kAnalytic;
  spec.blocks = 64;
  spec.pages_per_block = 32;
  spec.overprovision = 0.2;
  spec.gc_free_target = 4;
  spec.read_reclaim_threshold = 120;
  spec.queue_count = 4;

  ssd::SsdConfig config;
  config.ftl.blocks = 64;
  config.ftl.pages_per_block = 32;
  config.ftl.overprovision = 0.2;
  config.ftl.gc_free_target = 4;
  config.ftl.read_reclaim_threshold = 120;
  host::SsdDevice hand(config, flash::FlashModelParams::default_2ynm(),
                       /*seed=*/23, /*queue_count=*/4);

  const auto made = host::make_device(spec, /*seed=*/23);
  const auto stream = mixed_stream(hand.logical_pages(), 4, 31);
  ASSERT_GT(stream.size(), 500u);
  EXPECT_EQ(replay_log(*made, stream), replay_log(hand, stream));
}

TEST(Factory, McChipSpecMatchesHandBuiltMcChipDevice) {
  const nand::Geometry geometry = nand::Geometry::tiny();
  DriveSpec spec;
  spec.backend = Backend::kMcChip;
  spec.wordlines_per_block = geometry.wordlines_per_block;
  spec.bitlines = geometry.bitlines;
  spec.blocks = geometry.blocks;
  spec.queue_count = 2;

  host::McChipDevice hand(geometry, flash::FlashModelParams::default_2ynm(),
                          /*seed=*/5, /*queue_count=*/2);
  const auto made = host::make_device(spec, /*seed=*/5);
  const auto stream = mixed_stream(hand.logical_pages(), 2, 13);
  EXPECT_EQ(replay_log(*made, stream), replay_log(hand, stream));
}

TEST(Factory, ShardedMcSpecMatchesHandBuiltPreWornShardedDevice) {
  const nand::Geometry geometry = nand::Geometry::tiny();
  DriveSpec spec;
  spec.backend = Backend::kShardedMc;
  spec.shards = 4;
  spec.wordlines_per_block = geometry.wordlines_per_block;
  spec.bitlines = geometry.bitlines;
  spec.blocks = geometry.blocks;
  spec.pre_wear_pe = 8000;
  spec.queue_count = 4;

  host::ShardedDevice hand(geometry, flash::FlashModelParams::default_2ynm(),
                           /*seed=*/19, /*shards=*/4, /*workers=*/2,
                           /*queue_count=*/4);
  for (std::uint32_t s = 0; s < hand.shard_count(); ++s) {
    nand::Chip& chip = hand.shard_chip(s);
    for (std::size_t b = 0; b < chip.block_count(); ++b) {
      chip.block(b).erase();
      chip.block(b).add_wear(8000);
      chip.block(b).program_random();
    }
  }
  const auto made = host::make_device(spec, /*seed=*/19, /*workers=*/2);
  const auto stream = mixed_stream(hand.logical_pages(), 4, 37);
  EXPECT_EQ(replay_log(*made, stream), replay_log(hand, stream));
}

TEST(Factory, ShardedAnalyticSpecMatchesHandBuiltServicers) {
  DriveSpec spec;
  spec.backend = Backend::kShardedAnalytic;
  spec.shards = 3;
  spec.blocks = 64;
  spec.pages_per_block = 32;
  spec.overprovision = 0.2;
  spec.gc_free_target = 4;
  spec.queue_count = 4;

  ssd::SsdConfig config;
  config.ftl.blocks = 64;
  config.ftl.pages_per_block = 32;
  config.ftl.overprovision = 0.2;
  config.ftl.gc_free_target = 4;
  const auto params = flash::FlashModelParams::default_2ynm();
  std::vector<std::unique_ptr<host::Servicer>> servicers;
  for (std::uint32_t s = 0; s < 3; ++s)
    servicers.push_back(std::make_unique<host::SsdServicer>(
        config, params, host::ShardedDevice::shard_seed(29, s)));
  host::ShardedDevice hand(std::move(servicers), /*workers=*/2,
                           /*queue_count=*/4);

  const auto made = host::make_device(spec, /*seed=*/29, /*workers=*/2);
  const auto stream = mixed_stream(hand.logical_pages(), 4, 41);
  EXPECT_EQ(replay_log(*made, stream), replay_log(hand, stream));
}

TEST(Spec, TenantsSectionParsesAndRoundTrips) {
  std::vector<Diagnostic> diags;
  const ScenarioSpec spec = parse_text(
      "[drive]\nbackend = sharded_analytic\nshards = 4\nqueue_count = 4\n"
      "[workload]\nprofile = postmark\n"
      "[tenants]\ncount = 3\npolicy = weighted\nweights = 4, 2, 1\n"
      "deadlines_us = 500, 1000, 10000\n"
      "profiles = fiu-mail, umass-web, postmark\n"
      "daily_page_ios = 1000, 2000, 3000\n",
      &diags);
  EXPECT_TRUE(diags.empty()) << format_diagnostics(diags);
  ASSERT_TRUE(spec.tenants.enabled());
  ASSERT_EQ(spec.tenants.count(), 3u);
  EXPECT_EQ(spec.tenants.policy, host::ArbitrationPolicy::kWeighted);
  EXPECT_DOUBLE_EQ(spec.tenants.tenants[0].weight, 4.0);
  EXPECT_DOUBLE_EQ(spec.tenants.tenants[2].weight, 1.0);
  EXPECT_DOUBLE_EQ(spec.tenants.tenants[0].deadline_us, 500.0);
  EXPECT_DOUBLE_EQ(spec.tenants.tenants[2].deadline_us, 10000.0);
  EXPECT_EQ(spec.tenants.tenants[0].profile.name, "fiu-mail");
  EXPECT_EQ(spec.tenants.tenants[1].profile.name, "umass-web");
  // daily_page_ios overrides apply on top of the named profiles.
  EXPECT_DOUBLE_EQ(spec.tenants.tenants[1].profile.daily_page_ios, 2000.0);

  // And the spec maps onto the device-facing ArbitrationConfig verbatim.
  const host::ArbitrationConfig arb = spec.tenants.arbitration();
  EXPECT_EQ(arb.policy, host::ArbitrationPolicy::kWeighted);
  ASSERT_EQ(arb.tenants.size(), 3u);
  EXPECT_DOUBLE_EQ(arb.tenants[1].weight, 2.0);
  EXPECT_DOUBLE_EQ(arb.tenants[1].deadline_us, 1000.0);
}

TEST(Spec, SingleTenantSectionDefaultsFromWorkload) {
  // One tenant, no per-tenant lists: the tenant inherits the resolved
  // [workload] profile and the default fifo policy — the configuration
  // the byte-identity test in tests/test_arbitration.cc pins against
  // the untagged path.
  std::vector<Diagnostic> diags;
  const ScenarioSpec spec = parse_text(
      "[drive]\nbackend = analytic\n"
      "[workload]\nprofile = fiu-mail\n"
      "[tenants]\ncount = 1\n",
      &diags);
  EXPECT_TRUE(diags.empty()) << format_diagnostics(diags);
  ASSERT_TRUE(spec.tenants.enabled());
  ASSERT_EQ(spec.tenants.count(), 1u);
  EXPECT_EQ(spec.tenants.policy, host::ArbitrationPolicy::kFifo);
  EXPECT_EQ(spec.tenants.tenants[0].profile.name, "fiu-mail");
  EXPECT_DOUBLE_EQ(spec.tenants.tenants[0].weight, 1.0);
}

TEST(Spec, BadTenantsSectionIsDiagnosedByKey) {
  // Stray tenant knobs without a count are a broken section.
  std::vector<Diagnostic> diags;
  parse_text(
      "[drive]\nbackend = analytic\n[workload]\nprofile = postmark\n"
      "[tenants]\npolicy = weighted\n",
      &diags);
  EXPECT_TRUE(has_diag(diags, "tenants.count", "missing required"));

  // Unknown policy names point at tenants.policy.
  std::vector<Diagnostic> bad_policy;
  parse_text(
      "[drive]\nbackend = analytic\n[workload]\nprofile = postmark\n"
      "[tenants]\ncount = 2\npolicy = lottery\n",
      &bad_policy);
  EXPECT_TRUE(has_diag(bad_policy, "tenants.policy",
                       "unknown arbitration policy 'lottery'"));

  // A zero or negative weight would starve a tenant outright.
  std::vector<Diagnostic> zero_weight;
  parse_text(
      "[drive]\nbackend = analytic\n[workload]\nprofile = postmark\n"
      "[tenants]\ncount = 2\npolicy = weighted\nweights = 1, 0\n",
      &zero_weight);
  EXPECT_TRUE(has_diag(zero_weight, "tenants.weights", "out of range"));
  std::vector<Diagnostic> neg_weight;
  parse_text(
      "[drive]\nbackend = analytic\n[workload]\nprofile = postmark\n"
      "[tenants]\ncount = 2\npolicy = weighted\nweights = 1, -2\n",
      &neg_weight);
  EXPECT_TRUE(has_diag(neg_weight, "tenants.weights", "out of range"));

  // List lengths must match the tenant count, element for element.
  std::vector<Diagnostic> short_list;
  parse_text(
      "[drive]\nbackend = analytic\n[workload]\nprofile = postmark\n"
      "[tenants]\ncount = 3\nweights = 1, 2\n",
      &short_list);
  EXPECT_TRUE(has_diag(short_list, "tenants.weights",
                       "expected 3 comma-separated values"));

  // Malformed numbers name the offending token.
  std::vector<Diagnostic> malformed;
  parse_text(
      "[drive]\nbackend = analytic\n[workload]\nprofile = postmark\n"
      "[tenants]\ncount = 2\nweights = 1, fast\n",
      &malformed);
  EXPECT_TRUE(
      has_diag(malformed, "tenants.weights", "malformed number 'fast'"));

  // The deadline policy needs a deadline per tenant.
  std::vector<Diagnostic> no_deadlines;
  parse_text(
      "[drive]\nbackend = analytic\n[workload]\nprofile = postmark\n"
      "[tenants]\ncount = 2\npolicy = deadline\n",
      &no_deadlines);
  EXPECT_TRUE(
      has_diag(no_deadlines, "tenants.deadlines_us", "missing required"));

  // Each tenant submits on its own queue, so count is capped by the
  // drive's queue count.
  std::vector<Diagnostic> too_many;
  parse_text(
      "[drive]\nbackend = analytic\nqueue_count = 2\n"
      "[workload]\nprofile = postmark\n[tenants]\ncount = 3\n",
      &too_many);
  EXPECT_TRUE(has_diag(too_many, "tenants.count",
                       "exceeds drive.queue_count"));

  // Unknown per-tenant profile names are rejected like workload.profile.
  std::vector<Diagnostic> bad_profile;
  parse_text(
      "[drive]\nbackend = analytic\n[workload]\nprofile = postmark\n"
      "[tenants]\ncount = 2\nprofiles = postmark, not-a-trace\n",
      &bad_profile);
  EXPECT_TRUE(has_diag(bad_profile, "tenants.profiles",
                       "unknown workload profile 'not-a-trace'"));
}

TEST(Spec, TenantsConflictWithTraceAndFleet) {
  // [tenants] generates its own synthetic traffic; combining it with a
  // [trace] replay or a [fleet] run is contradictory.
  std::vector<Diagnostic> with_trace;
  parse_text(
      "[drive]\nbackend = analytic\n[workload]\nprofile = postmark\n"
      "[trace]\npath = t.csv\n[tenants]\ncount = 2\n",
      &with_trace);
  EXPECT_TRUE(has_diag(with_trace, "tenants.count", "[trace]"));

  std::vector<Diagnostic> with_fleet;
  parse_text(
      "[drive]\nbackend = analytic\n[workload]\nprofile = postmark\n"
      "[fleet]\ndrives = 4\n[tenants]\ncount = 2\n",
      &with_fleet);
  EXPECT_TRUE(has_diag(with_fleet, "tenants.count", "fleet"));
}

}  // namespace
}  // namespace rdsim::cfg
