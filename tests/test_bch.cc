// Unit and property tests for the BCH codec — the flash controller's ECC.
#include "ecc/bch.h"

#include <gtest/gtest.h>

#include <tuple>

#include "common/rng.h"

namespace rdsim::ecc {
namespace {

BitVec random_bits(int n, Rng& rng) {
  BitVec v(n);
  for (auto& b : v) b = static_cast<std::uint8_t>(rng.next() & 1);
  return v;
}

// Flips `count` positions; repeats cancel, so the injected error weight is
// at most `count` (sufficient for the beyond-capacity test below).
void inject_errors(BitVec* word, int count, Rng& rng) {
  for (int i = 0; i < count; ++i) (*word)[rng.uniform_u64(word->size())] ^= 1;
}

TEST(Bch, CodeGeometry) {
  const BchCode code(13, 8, 4096);
  EXPECT_EQ(code.data_bits(), 4096);
  EXPECT_EQ(code.t(), 8);
  EXPECT_EQ(code.parity_bits(), 13 * 8);
  EXPECT_EQ(code.codeword_bits(), 4096 + 104);
}

TEST(Bch, EncodeDecodeClean) {
  Rng rng(1);
  const BchCode code(13, 4, 512);
  const auto data = random_bits(512, rng);
  const auto word = code.encode(data);
  const auto result = code.decode(word);
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.corrected, 0);
  EXPECT_EQ(result.data, data);
}

TEST(Bch, CorrectsSingleError) {
  Rng rng(2);
  const BchCode code(13, 4, 512);
  const auto data = random_bits(512, rng);
  for (std::size_t pos : {std::size_t{0}, std::size_t{511}, std::size_t{512},
                          std::size_t{563}}) {
    auto word = code.encode(data);
    word[pos] ^= 1;
    const auto result = code.decode(word);
    ASSERT_TRUE(result.ok) << "error at " << pos;
    EXPECT_EQ(result.corrected, 1);
    EXPECT_EQ(result.data, data);
  }
}

TEST(Bch, DetectsBeyondCapacity) {
  Rng rng(3);
  const BchCode code(13, 4, 512);
  const auto data = random_bits(512, rng);
  int uncorrectable = 0;
  for (int trial = 0; trial < 20; ++trial) {
    auto word = code.encode(data);
    inject_errors(&word, 2 * code.t() + 3, rng);
    const auto result = code.decode(word);
    if (!result.ok) ++uncorrectable;
    // If it "decodes", it must decode to *some* codeword, but miscorrection
    // to the original data is essentially impossible at this distance.
    if (result.ok) {
      EXPECT_NE(result.data, data);
    }
  }
  EXPECT_GT(uncorrectable, 15);  // Overwhelmingly detected.
}

TEST(Bch, HammingDistance) {
  const BitVec a = {0, 1, 0, 1};
  const BitVec b = {1, 1, 0, 0};
  EXPECT_EQ(BchCode::hamming_distance(a, b), 2);
  EXPECT_EQ(BchCode::hamming_distance(a, a), 0);
}

using BchParam = std::tuple<int, int, int>;  // m, t, data_bits

class BchCapacity : public ::testing::TestWithParam<BchParam> {};

TEST_P(BchCapacity, CorrectsUpToT) {
  const auto [m, t, k] = GetParam();
  const BchCode code(m, t, k);
  Rng rng(m * 100 + t);
  for (int errors : {1, t / 2, t}) {
    if (errors < 1) continue;
    const auto data = random_bits(k, rng);
    auto word = code.encode(data);
    // Flip exactly `errors` distinct positions.
    std::vector<std::size_t> positions;
    while (static_cast<int>(positions.size()) < errors) {
      const auto p = rng.uniform_u64(word.size());
      bool dup = false;
      for (auto q : positions) dup |= q == p;
      if (!dup) {
        positions.push_back(p);
        word[p] ^= 1;
      }
    }
    const auto result = code.decode(word);
    ASSERT_TRUE(result.ok) << "m=" << m << " t=" << t << " errors=" << errors;
    EXPECT_EQ(result.corrected, errors);
    EXPECT_EQ(result.data, data);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Codes, BchCapacity,
    ::testing::Values(BchParam{13, 2, 256}, BchParam{13, 8, 1024},
                      BchParam{13, 16, 4096}, BchParam{13, 40, 4096},
                      BchParam{14, 9, 8192}, BchParam{14, 40, 8192},
                      BchParam{10, 5, 500}, BchParam{8, 4, 128}));

TEST(Bch, AllParityOfShortMessage) {
  // Degenerate payloads still round-trip.
  const BchCode code(10, 3, 8);
  const BitVec zeros(8, 0);
  const BitVec ones(8, 1);
  EXPECT_EQ(code.decode(code.encode(zeros)).data, zeros);
  EXPECT_EQ(code.decode(code.encode(ones)).data, ones);
}

TEST(Bch, ParityBitErrorsAlsoCorrected) {
  Rng rng(5);
  const BchCode code(13, 6, 1024);
  const auto data = random_bits(1024, rng);
  auto word = code.encode(data);
  // Flip parity bits only.
  for (int i = 0; i < 6; ++i) word[1024 + i * 7] ^= 1;
  const auto result = code.decode(word);
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.corrected, 6);
  EXPECT_EQ(result.data, data);
}

TEST(Bch, PaperProvisioningCorrectsRberCapability) {
  // The paper's "ECC tolerates 1e-3 RBER": t=9 over 8192+126 bits covers
  // an average of ~1e-3 raw errors per codeword.
  const BchCode code(14, 9, 8192);
  EXPECT_NEAR(static_cast<double>(code.t()) / code.data_bits(), 1.1e-3,
              0.15e-3);
  Rng rng(6);
  const auto data = random_bits(8192, rng);
  auto word = code.encode(data);
  for (int i = 0; i < 9; ++i) word[i * 911] ^= 1;
  const auto result = code.decode(word);
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.data, data);
}

}  // namespace
}  // namespace rdsim::ecc
