// Calibration and property tests for the analytic RBER model — each test
// pins one of the paper's published anchors or a monotonicity the figures
// rely on.
#include "flash/rber_model.h"

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

namespace rdsim::flash {
namespace {

class RberModelTest : public ::testing::Test {
 protected:
  FlashModelParams params_ = FlashModelParams::default_2ynm();
  RberModel model_{params_};
};

// --- Fig. 3 calibration ------------------------------------------------------

class SlopeTable
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(SlopeTable, MatchesPaperWithin20Pct) {
  const auto [pe, paper_slope] = GetParam();
  const RberModel model{FlashModelParams::default_2ynm()};
  EXPECT_NEAR(model.disturb_slope(pe) / paper_slope, 1.0, 0.20);
}

INSTANTIATE_TEST_SUITE_P(
    PaperSlopes, SlopeTable,
    ::testing::Values(std::tuple{2000.0, 1.00e-9}, std::tuple{3000.0, 1.63e-9},
                      std::tuple{4000.0, 2.37e-9}, std::tuple{5000.0, 3.74e-9},
                      std::tuple{8000.0, 7.50e-9}, std::tuple{10000.0, 9.10e-9},
                      std::tuple{15000.0, 1.90e-8}));

TEST_F(RberModelTest, DisturbLinearInReads) {
  const double r1 = model_.disturb_rber(8000, 10e3, 512);
  const double r2 = model_.disturb_rber(8000, 20e3, 512);
  EXPECT_NEAR(r2 / r1, 2.0, 1e-9);
}

TEST_F(RberModelTest, DisturbSaturates) {
  EXPECT_LE(model_.disturb_rber(15000, 1e12, 512), 0.125 + 1e-12);
}

// --- Fig. 4 calibration ------------------------------------------------------

TEST_F(RberModelTest, TwoPercentVpassHalvesRberAt100K) {
  const double nominal = model_.total_rber({8000, 0.5, 100e3, 512.0});
  const double relaxed = model_.total_rber({8000, 0.5, 100e3, 512.0 * 0.98});
  const double reduction = 1.0 - relaxed / nominal;
  EXPECT_GT(reduction, 0.45);
  EXPECT_LT(reduction, 0.65);
}

TEST_F(RberModelTest, VpassReductionExponentiallyExtendsTolerableReads) {
  // Per 1% of Vpass the iso-RBER read count must scale by a constant
  // factor (exponential law).
  const double r100 = model_.tolerable_reads(8000, 0.5, 512.0);
  const double r99 = model_.tolerable_reads(8000, 0.5, 512.0 * 0.99);
  const double r98 = model_.tolerable_reads(8000, 0.5, 512.0 * 0.98);
  const double f1 = r99 / r100;
  const double f2 = r98 / r99;
  EXPECT_GT(f1, 1.5);
  EXPECT_NEAR(f2 / f1, 1.0, 0.25);
}

TEST_F(RberModelTest, DisturbMonotoneInVpass) {
  double prev = 0.0;
  for (double v = 480; v <= 512; v += 4) {
    const double r = model_.disturb_rber(8000, 1e5, v);
    EXPECT_GT(r, prev);
    prev = r;
  }
}

TEST_F(RberModelTest, DisturbMonotoneInWear) {
  double prev = 0.0;
  for (double pe : {1000.0, 2000.0, 5000.0, 10000.0, 15000.0}) {
    const double r = model_.disturb_rber(pe, 1e5, 512);
    EXPECT_GT(r, prev);
    prev = r;
  }
}

// --- Fig. 5 calibration ------------------------------------------------------

TEST_F(RberModelTest, PassThroughZeroAtNominal) {
  for (double days : {0.0, 7.0, 21.0})
    EXPECT_DOUBLE_EQ(model_.pass_through_rber(512.0, days), 0.0);
}

TEST_F(RberModelTest, PassThroughGrowsAsVpassDrops) {
  double prev = -1.0;
  for (double v = 512; v >= 480; v -= 2) {
    const double r = model_.pass_through_rber(v, 0.0);
    EXPECT_GE(r, prev);
    prev = r;
  }
  EXPECT_GT(model_.pass_through_rber(480.0, 0.0), 5e-4);
}

TEST_F(RberModelTest, OlderDataTolerentToRelaxation) {
  // Fig. 5: for a given Vpass, the additional error rate is lower when the
  // retention age is longer.
  for (double v : {485.0, 490.0, 495.0, 500.0}) {
    EXPECT_LT(model_.pass_through_rber(v, 21.0),
              model_.pass_through_rber(v, 0.0));
  }
}

// --- Fig. 6 calibration ------------------------------------------------------

TEST_F(RberModelTest, RetentionCurveAnchors) {
  // Digitized curve: starts near zero, saturates by day 21 at ~0.445e-3
  // (at 8K P/E).
  EXPECT_LT(model_.retention_rber(8000, 0.5), 0.05e-3);
  EXPECT_NEAR(model_.retention_rber(8000, 21), 0.445e-3, 0.01e-3);
}

TEST_F(RberModelTest, RetentionMonotoneInTimeAndWear) {
  double prev = -1;
  for (int d = 0; d <= 30; ++d) {
    const double r = model_.retention_rber(8000, d);
    EXPECT_GE(r, prev);
    prev = r;
  }
  EXPECT_LT(model_.retention_rber(2000, 7), model_.retention_rber(8000, 7));
}

TEST_F(RberModelTest, RetentionContinuousAtTableEdges) {
  // Interpolation must not jump at integer days or at day 21.
  for (double d : {0.999, 1.001, 20.999, 21.001}) {
    const double below = model_.retention_rber(8000, d - 1e-4);
    const double above = model_.retention_rber(8000, d + 1e-4);
    EXPECT_NEAR(below, above, 1e-6);
  }
}

TEST_F(RberModelTest, SafeReductionBandsMatchFig6) {
  // 4% while the retention age is low (< 4 days)...
  EXPECT_EQ(model_.safe_vpass_reduction_percent(8000, 1), 4);
  EXPECT_EQ(model_.safe_vpass_reduction_percent(8000, 2), 4);
  EXPECT_EQ(model_.safe_vpass_reduction_percent(8000, 3), 4);
  EXPECT_LT(model_.safe_vpass_reduction_percent(8000, 4), 4);
  // ...decaying to 0% by day 21.
  EXPECT_EQ(model_.safe_vpass_reduction_percent(8000, 21), 0);
}

TEST_F(RberModelTest, SafeReductionNonIncreasingWithAge) {
  int prev = 100;
  for (int d = 1; d <= 21; ++d) {
    const int pct = model_.safe_vpass_reduction_percent(8000, d);
    EXPECT_LE(pct, prev);
    prev = pct;
  }
}

TEST_F(RberModelTest, UsableEccBudget) {
  EXPECT_NEAR(model_.usable_ecc_rber(), 0.8e-3, 1e-9);
}

// --- Derived quantities ------------------------------------------------------

TEST_F(RberModelTest, TolerableReadsEdges) {
  // Exhausted budget -> 0 reads.
  EXPECT_DOUBLE_EQ(model_.tolerable_reads(20000, 21, 512.0), 0.0);
  // Healthy young block tolerates plenty.
  EXPECT_GT(model_.tolerable_reads(2000, 0.5, 512.0), 1e5);
}

TEST_F(RberModelTest, TolerableReadsConsistentWithTotal) {
  const double reads = model_.tolerable_reads(8000, 1.0, 512.0);
  const double rber = model_.total_rber({8000, 1.0, reads, 512.0});
  EXPECT_NEAR(rber, model_.usable_ecc_rber(), 1e-9);
}

TEST_F(RberModelTest, LowestSafeVpassRespectsMargin) {
  for (double margin : {1e-5, 1e-4, 5e-4}) {
    const double v = model_.lowest_safe_vpass(margin, 2.0);
    EXPECT_LE(model_.pass_through_rber(v, 2.0), margin);
    EXPECT_GE(v, 512.0 * 0.90);
  }
}

TEST_F(RberModelTest, LowestSafeVpassMonotoneInMargin) {
  const double tight = model_.lowest_safe_vpass(1e-5, 2.0);
  const double loose = model_.lowest_safe_vpass(5e-4, 2.0);
  EXPECT_LE(loose, tight);
}

TEST_F(RberModelTest, TotalRberComposes) {
  const BlockCondition c{8000, 7.0, 50e3, 500.0};
  const double total = model_.total_rber(c);
  const double parts = model_.base_rber(c.pe_cycles) +
                       model_.retention_rber(c.pe_cycles, c.retention_days) +
                       model_.disturb_rber(c.pe_cycles, c.reads, c.vpass) +
                       model_.pass_through_rber(c.vpass, c.retention_days);
  EXPECT_DOUBLE_EQ(total, parts);
}

TEST_F(RberModelTest, BaseRberWearExponent) {
  EXPECT_NEAR(model_.base_rber(8000), 3.5e-4, 1e-8);
  EXPECT_NEAR(model_.base_rber(16000) / model_.base_rber(8000),
              std::pow(2.0, params_.base_wear_exp), 1e-9);
}

// Monotonicity sweep across the whole operating envelope.
class TotalRberMonotone
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(TotalRberMonotone, InReadsAndWear) {
  const auto [pe, days] = GetParam();
  const RberModel model{FlashModelParams::default_2ynm()};
  double prev = -1;
  for (double reads = 0; reads <= 500e3; reads += 50e3) {
    const double r = model.total_rber({pe, days, reads, 512.0});
    EXPECT_GE(r, prev);
    prev = r;
  }
  EXPECT_LE(model.total_rber({pe, days, 100e3, 512.0}),
            model.total_rber({pe * 1.5, days, 100e3, 512.0}));
}

INSTANTIATE_TEST_SUITE_P(
    Envelope, TotalRberMonotone,
    ::testing::Combine(::testing::Values(2000.0, 5000.0, 8000.0, 12000.0),
                       ::testing::Values(0.0, 1.0, 7.0, 21.0)));

}  // namespace
}  // namespace rdsim::flash
