// Tests for the trace-replay subsystem (src/replay):
//   1. the streaming reader agrees record-for-record with the full-file
//      readers, across chunk boundaries, for both formats (auto-detected);
//   2. memory stays bounded by the chunk window when the trace is far
//      larger than the window;
//   3. malformed rows and unrecognizable formats fail with line-numbered
//      errors;
//   4. LBA remapping is a deterministic pure function that keeps requests
//      contiguous and inside the simulated capacity;
//   5. open- and closed-loop replay produce deterministic completion
//      logs — byte-identical across runs and worker counts;
//   6. the ClosedLoopDriver completion sink sees every record exactly
//      once, and the LatencyTracker windows by simulated time.
#include <gtest/gtest.h>

#include <fstream>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "cfg/spec.h"
#include "common/datafile.h"
#include "host/driver.h"
#include "host/factory.h"
#include "replay/latency.h"
#include "replay/remap.h"
#include "replay/replayer.h"
#include "replay/trace_reader.h"
#include "workload/generator.h"
#include "workload/profiles.h"
#include "workload/trace_io.h"

namespace rdsim::replay {
namespace {

using workload::IoRequest;

std::string sample_path() {
  const std::string path = find_test_data("msr_cambridge_sample.csv");
  EXPECT_FALSE(path.empty())
      << "tests/data/msr_cambridge_sample.csv not found";
  return path;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// A synthetic rdsim-CSV trace with `rows` records.
std::string synthetic_csv(std::size_t rows) {
  workload::WorkloadProfile profile = workload::profile_by_name("postmark");
  profile.daily_page_ios = static_cast<double>(rows);
  workload::TraceGenerator gen(profile, 1u << 16, 11);
  std::vector<IoRequest> trace;
  while (trace.size() < rows) {
    for (const IoRequest& r : gen.day()) {
      if (trace.size() == rows) break;
      trace.push_back(r);
    }
  }
  std::ostringstream out;
  workload::write_trace_csv(out, trace);
  return out.str();
}

void expect_same(const std::vector<IoRequest>& a,
                 const std::vector<IoRequest>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].time_s, b[i].time_s) << i;
    EXPECT_EQ(a[i].lpn, b[i].lpn) << i;
    EXPECT_EQ(a[i].pages, b[i].pages) << i;
    EXPECT_EQ(a[i].is_write, b[i].is_write) << i;
  }
}

// --- Streaming reader -------------------------------------------------------

TEST(StreamingTraceReader, MsrAgreesWithFullReaderAcrossChunkBoundaries) {
  const std::string text = read_file(sample_path());
  ASSERT_FALSE(text.empty());
  std::istringstream full_in(text);
  const auto full = workload::read_msr_trace(full_in);
  ASSERT_EQ(full.size(), 200u);  // The checked-in sample is 200 records.

  // Window 7 does not divide 200, so every chunk boundary lands mid-file.
  std::istringstream stream_in(text);
  StreamingTraceReader reader(stream_in);  // kAuto must sniff MSR.
  std::vector<IoRequest> streamed;
  std::vector<IoRequest> chunk;
  while (reader.read_chunk(7, &chunk) > 0) {
    EXPECT_LE(chunk.size(), 7u);
    streamed.insert(streamed.end(), chunk.begin(), chunk.end());
  }
  EXPECT_EQ(reader.format(), TraceFormat::kMsr);
  EXPECT_EQ(reader.records_read(), full.size());
  expect_same(streamed, full);
  // Rebased: the first record starts the clock.
  EXPECT_DOUBLE_EQ(streamed.front().time_s, 0.0);
}

TEST(StreamingTraceReader, CsvAgreesWithFullReader) {
  const std::string text = synthetic_csv(500);
  std::istringstream full_in(text);
  const auto full = workload::read_trace_csv(full_in);
  ASSERT_EQ(full.size(), 500u);

  std::istringstream stream_in(text);
  StreamingTraceReader reader(stream_in);  // kAuto must sniff CSV.
  std::vector<IoRequest> streamed;
  IoRequest r;
  while (reader.next(&r)) streamed.push_back(r);
  EXPECT_EQ(reader.format(), TraceFormat::kCsv);
  expect_same(streamed, full);
}

TEST(StreamingTraceReader, MemoryBoundedByWindowOnLargeTrace) {
  // A trace 300x larger than the window: the reader must never
  // materialize more than `window` records at once — the chunk vector's
  // capacity (its high-water mark) proves it.
  const std::size_t kWindow = 64;
  const std::size_t kRows = 19200;
  const std::string text = synthetic_csv(kRows);
  std::istringstream in(text);
  StreamingTraceReader reader(in);
  std::vector<IoRequest> chunk;
  std::uint64_t total = 0;
  std::size_t chunks = 0;
  while (reader.read_chunk(kWindow, &chunk) > 0) {
    ASSERT_LE(chunk.size(), kWindow);
    ASSERT_LE(chunk.capacity(), kWindow);
    total += chunk.size();
    ++chunks;
  }
  EXPECT_EQ(total, kRows);
  EXPECT_EQ(chunks, kRows / kWindow);
}

TEST(StreamingTraceReader, MalformedRowFailsWithLineNumber) {
  std::istringstream in(
      "128166372000000000,usr,0,Read,0,4096,1\n"
      "128166372010000000,usr,0,Read,8192,4096,1\n"
      "128166372020000000,usr,0,Read,junk,4096,1\n");
  StreamingTraceReader reader(in);
  IoRequest r;
  EXPECT_TRUE(reader.next(&r));
  EXPECT_TRUE(reader.next(&r));
  try {
    reader.next(&r);
    FAIL() << "malformed row accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos)
        << e.what();
  }
}

TEST(StreamingTraceReader, UnrecognizableFormatFailsWithLineNumber) {
  std::istringstream in("# comment\nfoo,bar\n");
  StreamingTraceReader reader(in);
  IoRequest r;
  try {
    reader.next(&r);
    FAIL() << "2-field row accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("unrecognized"), std::string::npos)
        << e.what();
  }
}

// --- LBA remapping ----------------------------------------------------------

TEST(LbaRemapper, ModuloPreservesLocalityHashScatters) {
  const std::uint64_t kCapacity = 4096;
  const LbaRemapper modulo(RemapPolicy::kModulo, kCapacity);
  const LbaRemapper hash(RemapPolicy::kHash, kCapacity);
  // Modulo keeps a sequential run sequential.
  EXPECT_EQ(modulo.remap_lpn(kCapacity + 5), 5u);
  EXPECT_EQ(modulo.remap_lpn(kCapacity + 6), 6u);
  // Hash is deterministic but decorrelates neighbours.
  EXPECT_EQ(hash.remap_lpn(12345), hash.remap_lpn(12345));
  bool scattered = false;
  for (std::uint64_t lpn = 0; lpn < 16 && !scattered; ++lpn)
    scattered = hash.remap_lpn(lpn) + 1 != hash.remap_lpn(lpn + 1);
  EXPECT_TRUE(scattered);
}

TEST(LbaRemapper, RequestsStayContiguousAndInBounds) {
  const std::uint64_t kCapacity = 1000;
  for (const RemapPolicy policy : {RemapPolicy::kModulo, RemapPolicy::kHash}) {
    const LbaRemapper remapper(policy, kCapacity);
    for (std::uint64_t lpn : {0ull, 999ull, 1000ull, 123456789ull,
                              0xFFFFFFFFFFFFull}) {
      for (std::uint32_t pages : {1u, 17u, 999u, 5000u}) {
        IoRequest r{0.0, lpn, pages, false};
        remapper.apply(&r);
        EXPECT_LT(r.lpn, kCapacity);
        EXPECT_GE(r.pages, 1u);
        EXPECT_LE(r.lpn + r.pages, kCapacity);  // Clamped + shifted to fit.
      }
    }
  }
}

// --- Replay through the host layer ------------------------------------------

cfg::DriveSpec tiny_analytic() {
  cfg::DriveSpec drive;
  drive.backend = cfg::Backend::kAnalytic;
  drive.blocks = 64;
  drive.pages_per_block = 32;
  drive.overprovision = 0.2;
  drive.gc_free_target = 4;
  drive.queue_count = 4;
  return drive;
}

cfg::DriveSpec tiny_sharded_mc() {
  cfg::DriveSpec drive;
  drive.backend = cfg::Backend::kShardedMc;
  drive.shards = 4;
  drive.wordlines_per_block = 16;
  drive.bitlines = 1024;
  drive.blocks = 2;
  drive.queue_count = 4;
  return drive;
}

std::string log_of(const std::vector<host::Completion>& records) {
  std::string log;
  for (const auto& rec : records) {
    log += to_string(rec);
    log += '\n';
  }
  return log;
}

/// Replays the sample trace against a fresh device; returns the log.
std::string replay_sample(const cfg::DriveSpec& drive, int workers,
                          ReplayMode mode, ReplaySummary* summary) {
  const std::unique_ptr<host::Device> device =
      host::make_device(drive, /*seed=*/5, workers);
  if (drive.is_analytic()) host::warm_fill(*device);
  std::ifstream in(sample_path());
  ReplayOptions opts;
  opts.mode = mode;
  opts.remap = RemapPolicy::kHash;
  opts.queue_depth = 8;
  opts.speedup = 50.0;
  opts.window = 16;  // Many windows over 200 records.
  std::vector<host::Completion> log;
  *summary = replay_trace(in, *device, opts, nullptr, &log);
  return log_of(log);
}

TEST(Replayer, OpenLoopLogDeterministicAcrossWorkerCounts) {
  ReplaySummary s1, s4;
  const std::string log1 =
      replay_sample(tiny_sharded_mc(), 1, ReplayMode::kOpen, &s1);
  const std::string log4 =
      replay_sample(tiny_sharded_mc(), 4, ReplayMode::kOpen, &s4);
  EXPECT_EQ(log1, log4);
  EXPECT_EQ(s1.commands, 200u);
  EXPECT_EQ(s1.reads + s1.writes, 200u);
}

TEST(Replayer, ClosedLoopLogDeterministicAcrossWorkerCounts) {
  ReplaySummary s1, s4;
  const std::string log1 =
      replay_sample(tiny_sharded_mc(), 1, ReplayMode::kClosed, &s1);
  const std::string log4 =
      replay_sample(tiny_sharded_mc(), 4, ReplayMode::kClosed, &s4);
  EXPECT_EQ(log1, log4);
  EXPECT_EQ(s1.commands, 200u);
}

TEST(Replayer, OpenAndClosedDifferButRepeatExactly) {
  // Same backend, both disciplines: each repeats itself byte-for-byte
  // (determinism), and they differ from each other (the discipline
  // actually changes the schedule).
  ReplaySummary s;
  const std::string open_a =
      replay_sample(tiny_analytic(), 1, ReplayMode::kOpen, &s);
  const std::string open_b =
      replay_sample(tiny_analytic(), 1, ReplayMode::kOpen, &s);
  const std::string closed_a =
      replay_sample(tiny_analytic(), 1, ReplayMode::kClosed, &s);
  EXPECT_EQ(open_a, open_b);
  EXPECT_NE(open_a, closed_a);
}

TEST(Replayer, OpenLoopSubmitStampsAreMonotone) {
  // The sharded poll watermark assumes non-decreasing submit times; the
  // replayer must clamp even if the trace has timestamp jitter.
  const std::unique_ptr<host::Device> device =
      host::make_device(tiny_analytic(), 3);
  host::warm_fill(*device);
  std::istringstream in(
      "0.000010,R,10,1\n"
      "0.000005,W,20,1\n"  // Out of order: must clamp, not go backwards.
      "0.000020,R,30,1\n");
  ReplayOptions opts;
  opts.mode = ReplayMode::kOpen;
  std::vector<host::Completion> log;
  replay_trace(in, *device, opts, nullptr, &log);
  ASSERT_EQ(log.size(), 3u);
  double prev = 0.0;
  for (const auto& c : log) {
    EXPECT_GE(c.submit_time_s, prev);
    prev = c.submit_time_s;
  }
}

TEST(Replayer, TraceLargerThanWindowReplaysCompletely) {
  const std::size_t kRows = 2000;
  const std::string text = synthetic_csv(kRows);
  std::istringstream in(text);
  const std::unique_ptr<host::Device> device =
      host::make_device(tiny_analytic(), 9);
  host::warm_fill(*device);
  ReplayOptions opts;
  opts.mode = ReplayMode::kClosed;
  opts.queue_depth = 16;
  opts.window = 128;  // 15+ windows.
  ReplaySummary summary =
      replay_trace(in, *device, opts, nullptr, nullptr);
  EXPECT_EQ(summary.commands, kRows);
  EXPECT_EQ(summary.status_counts[0] + summary.status_counts[1] +
                summary.status_counts[2] + summary.status_counts[3] +
                summary.status_counts[4] + summary.status_counts[5],
            kRows);
}

// --- ClosedLoopDriver sink and LatencyTracker -------------------------------

TEST(ClosedLoopDriver, SinkSeesEveryCompletionExactlyOnce) {
  const std::unique_ptr<host::Device> device =
      host::make_device(tiny_analytic(), 1);
  host::warm_fill(*device);
  host::ClosedLoopDriver driver(*device, 4);
  std::vector<host::Completion> sunk;
  driver.set_completion_sink(&sunk);
  std::vector<host::Command> batch;
  for (int i = 0; i < 100; ++i) {
    host::Command c;
    c.kind = i % 3 == 0 ? host::CommandKind::kWrite
                        : host::CommandKind::kRead;
    c.lpn = static_cast<std::uint64_t>(i * 7 % 100);
    c.queue = static_cast<std::uint16_t>(i % 4);
    batch.push_back(c);
  }
  driver.run(batch);
  ASSERT_EQ(sunk.size(), batch.size());
  // Each device-assigned id appears exactly once (ids continue past the
  // warm-fill commands, so track them as a set).
  std::set<std::uint64_t> seen;
  for (const auto& c : sunk)
    EXPECT_TRUE(seen.insert(c.id).second)
        << "duplicate completion id " << c.id;
}

TEST(LatencyTracker, WindowsBySimulatedTimeFromOrigin) {
  LatencyTracker tracker(/*window_s=*/1.0, /*max_latency_us=*/1000.0,
                         /*bins=*/1000);
  tracker.set_origin(100.0);
  auto read_at = [](double complete_s, double latency_s) {
    host::Completion c;
    c.kind = host::CommandKind::kRead;
    c.submit_time_s = complete_s - latency_s;
    c.service_start_s = c.submit_time_s;
    c.complete_time_s = complete_s;
    return c;
  };
  tracker.observe(read_at(100.2, 100e-6));  // Window 0.
  tracker.observe(read_at(100.9, 100e-6));  // Window 0.
  tracker.observe(read_at(102.5, 500e-6));  // Window 2.
  // Fractionally before the origin still lands in window 0, not UB.
  tracker.observe(read_at(99.999, 50e-6));
  const auto rows = tracker.window_rows();
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].reads, 3u);
  EXPECT_EQ(rows[1].reads, 0u);  // Empty window present, zero counts.
  EXPECT_EQ(rows[2].reads, 1u);
  EXPECT_DOUBLE_EQ(rows[1].p99_us, 0.0);
  // Window 2 holds exactly the 500us read; p50 is its bin's upper edge
  // (within one 1us bin of the sample).
  EXPECT_NEAR(rows[2].p50_us, 500.0, 1.5);
  EXPECT_EQ(tracker.observed(), 4u);
  // The full-run CDF covers all four reads.
  EXPECT_DOUBLE_EQ(
      tracker.histogram(host::CommandKind::kRead).cdf_points().back().fraction,
      1.0);
}

}  // namespace
}  // namespace rdsim::replay
