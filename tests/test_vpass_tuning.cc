// Tests for the Vpass Tuning controller — the paper's mitigation
// mechanism. A scripted fake probe pins the step-search logic exactly;
// Monte Carlo and analytic probes then exercise it end to end.
#include "core/vpass_tuning.h"

#include <gtest/gtest.h>

#include <cmath>

#include "flash/rber_model.h"
#include "nand/chip.h"

namespace rdsim::core {
namespace {

/// Scripted probe: N(vpass) follows a deterministic staircase so tests can
/// predict the search's every step.
class FakeProbe : public BlockProbe {
 public:
  FakeProbe(int mee, double zeros_per_unit)
      : mee_(mee), zeros_per_unit_(zeros_per_unit) {}

  int measure_worst_page_errors() override { return mee_; }
  int count_read_zeros(double vpass) override {
    ++probes_;
    return static_cast<int>(std::floor((512.0 - vpass) * zeros_per_unit_));
  }
  int codewords_per_page() const override { return 8; }

  int probes() const { return probes_; }
  void set_mee(int mee) { mee_ = mee; }

 private:
  int mee_;
  double zeros_per_unit_;
  int probes_ = 0;
};

ecc::EccModel paper_ecc() {
  return ecc::EccModel{ecc::EccConfig::paper_provisioning()};
}

TEST(VpassTuning, UsablePageCapability) {
  VpassTuningController ctl(paper_ecc(), 512.0);
  FakeProbe probe(0, 1.0);
  // floor(0.8 * 9) = 7 per codeword, 8 codewords.
  EXPECT_EQ(ctl.usable_page_capability(probe), 56);
}

TEST(VpassTuning, RelearnFindsDeepestSafeVpass) {
  VpassTuningController ctl(paper_ecc(), 512.0);
  // 1 zero per unit of reduction; margin = 56 - 6 = 50 -> the search can
  // go 50 units deep, limited to the 0.90 floor (460.8) -> 51.2 units
  // available, so margin binds: lowest v with N <= 50 is 462 (floor(50)
  // at v = 462: N = floor(50 * 1.0) = 50 <= 50).
  FakeProbe probe(6, 1.0);
  const auto decision = ctl.relearn(probe);
  EXPECT_FALSE(decision.fallback);
  EXPECT_EQ(decision.mee, 6);
  EXPECT_EQ(decision.margin, 50);
  EXPECT_LE(512.0 - decision.vpass, 50.0 + 2.0);
  EXPECT_LE(probe.count_read_zeros(decision.vpass), 50);
}

TEST(VpassTuning, RelearnRespectsMargin) {
  for (int mee : {0, 10, 30, 50, 55}) {
    VpassTuningController ctl(paper_ecc(), 512.0);
    FakeProbe probe(mee, 2.5);
    const auto decision = ctl.relearn(probe);
    ASSERT_FALSE(decision.fallback) << "mee=" << mee;
    EXPECT_LE(probe.count_read_zeros(decision.vpass), decision.margin);
  }
}

TEST(VpassTuning, FallbackWhenMarginExhausted) {
  VpassTuningController ctl(paper_ecc(), 512.0);
  FakeProbe probe(56, 1.0);  // MEE == usable capability.
  const auto decision = ctl.relearn(probe);
  EXPECT_TRUE(decision.fallback);
  EXPECT_DOUBLE_EQ(decision.vpass, 512.0);
  EXPECT_EQ(decision.margin, 0);
}

TEST(VpassTuning, VerifyKeepsGoodVpass) {
  VpassTuningController ctl(paper_ecc(), 512.0);
  FakeProbe probe(6, 1.0);
  const auto decision = ctl.verify_or_raise(probe, 490.0);
  EXPECT_DOUBLE_EQ(decision.vpass, 490.0);  // N(490) = 22 <= 50.
}

TEST(VpassTuning, VerifyRaisesWhenMarginShrinks) {
  VpassTuningController ctl(paper_ecc(), 512.0);
  FakeProbe probe(54, 1.0);  // margin = 2.
  const auto decision = ctl.verify_or_raise(probe, 490.0);
  // N must drop to <= 2 -> v >= 510.
  EXPECT_GE(decision.vpass, 510.0);
  EXPECT_LE(probe.count_read_zeros(decision.vpass), 2);
}

TEST(VpassTuning, VerifyNeverLowers) {
  VpassTuningController ctl(paper_ecc(), 512.0);
  FakeProbe probe(0, 0.0);  // No zeros anywhere: huge headroom.
  const auto decision = ctl.verify_or_raise(probe, 500.0);
  // Action 1 only raises; with headroom it stays put.
  EXPECT_DOUBLE_EQ(decision.vpass, 500.0);
}

TEST(VpassTuning, VerifyFallbackResetsToNominal) {
  VpassTuningController ctl(paper_ecc(), 512.0);
  FakeProbe probe(60, 1.0);
  const auto decision = ctl.verify_or_raise(probe, 480.0);
  EXPECT_TRUE(decision.fallback);
  EXPECT_DOUBLE_EQ(decision.vpass, 512.0);
}

TEST(VpassTuning, StepSizeGranularity) {
  VpassTuningOptions options;
  options.delta = 8.0;
  VpassTuningController ctl(paper_ecc(), 512.0, options);
  FakeProbe probe(6, 1.0);
  const auto decision = ctl.relearn(probe);
  const double steps = (512.0 - decision.vpass) / 8.0;
  EXPECT_NEAR(steps, std::round(steps), 1e-9);
}

TEST(VpassTuning, FloorRespected) {
  VpassTuningOptions options;
  options.min_vpass_frac = 0.98;
  VpassTuningController ctl(paper_ecc(), 512.0, options);
  FakeProbe probe(0, 0.0);  // No zeros ever: only the floor stops it.
  const auto decision = ctl.relearn(probe);
  EXPECT_GE(decision.vpass, 512.0 * 0.98 - 1e-9);
}

// --- Monte Carlo integration -------------------------------------------------

TEST(VpassTuningMc, TunedBlockKeepsZerosWithinMargin) {
  const auto params = flash::FlashModelParams::default_2ynm();
  nand::Chip chip(nand::Geometry{64, 8192, 1}, params, 17);
  auto& block = chip.block(0);
  block.add_wear(8000);
  block.program_random();
  McBlockProbe probe(block);
  const ecc::EccModel ecc{ecc::EccConfig::mc_provisioning()};
  VpassTuningController ctl(ecc, params.vpass_nominal);
  const auto decision = ctl.relearn(probe);
  ASSERT_FALSE(decision.fallback);
  EXPECT_LT(decision.vpass, params.vpass_nominal);
  EXPECT_LE(block.count_blocked_bitlines(0, decision.vpass), decision.margin);
}

TEST(VpassTuningMc, WorstPageDiscoveryPicksHighErrorPage) {
  const auto params = flash::FlashModelParams::default_2ynm();
  nand::Chip chip(nand::Geometry{64, 8192, 1}, params, 18);
  auto& block = chip.block(0);
  block.add_wear(8000);
  block.program_random();
  McBlockProbe probe(block);
  const auto worst = probe.worst_page();
  const int worst_errors = block.count_errors(worst);
  // No page may beat the discovered worst by more than noise.
  for (std::uint32_t wl = 0; wl < 64; wl += 7) {
    EXPECT_LE(block.count_errors({wl, nand::PageKind::kMsb}), worst_errors);
    EXPECT_LE(block.count_errors({wl, nand::PageKind::kLsb}), worst_errors);
  }
}

TEST(VpassTuningMc, ProbeCountsReads) {
  const auto params = flash::FlashModelParams::default_2ynm();
  nand::Chip chip(nand::Geometry::tiny(), params, 19);
  auto& block = chip.block(0);
  block.program_random();
  McBlockProbe probe(block);
  const auto initial = probe.reads_used();
  EXPECT_EQ(initial, 2u * 16u);  // Discovery scan: every page once.
  probe.measure_worst_page_errors();
  EXPECT_EQ(probe.reads_used(), initial + 1);
}

// --- Analytic probe ----------------------------------------------------------

TEST(VpassTuningAnalytic, MirrorsSafeReductionBands) {
  const auto params = flash::FlashModelParams::default_2ynm();
  const flash::RberModel model(params);
  const auto ecc = paper_ecc();
  VpassTuningController ctl(ecc, params.vpass_nominal);
  // Young data at 8K P/E: the controller should find roughly the Fig. 6
  // 4% reduction; old data should get almost nothing.
  AnalyticBlockProbe young(model, ecc, {8000, 1.0, 0.0, 512.0});
  AnalyticBlockProbe old(model, ecc, {8000, 20.0, 0.0, 512.0});
  const auto young_decision = ctl.relearn(young);
  const auto old_decision = ctl.relearn(old);
  const double young_pct = (512.0 - young_decision.vpass) / 512.0 * 100.0;
  const double old_pct = (512.0 - old_decision.vpass) / 512.0 * 100.0;
  EXPECT_NEAR(young_pct, 4.0, 1.0);
  EXPECT_LT(old_pct, 1.5);
}

TEST(VpassTuningAnalytic, DisturbLoadShrinksReduction) {
  const auto params = flash::FlashModelParams::default_2ynm();
  const flash::RberModel model(params);
  const auto ecc = paper_ecc();
  VpassTuningController ctl(ecc, params.vpass_nominal);
  AnalyticBlockProbe idle(model, ecc, {8000, 2.0, 0.0, 512.0});
  AnalyticBlockProbe hot(model, ecc, {8000, 2.0, 40e3, 512.0});
  EXPECT_LE(ctl.relearn(idle).vpass, ctl.relearn(hot).vpass);
}

}  // namespace
}  // namespace rdsim::core
