// Tests for Read Disturb Recovery — the paper's recovery mechanism.
#include "core/rdr.h"

#include <gtest/gtest.h>

#include "flash/types.h"
#include "nand/chip.h"

namespace rdsim::core {
namespace {

nand::Chip worn_chip(std::uint64_t seed, std::uint32_t pe = 8000) {
  const auto params = flash::FlashModelParams::default_2ynm();
  nand::Chip chip(nand::Geometry{64, 8192, 1}, params, seed);
  chip.block(0).add_wear(pe);
  chip.block(0).program_random();
  return chip;
}

TEST(Rdr, ReducesErrorsAtHighDisturb) {
  // Per-block reductions are shot-noisy (a handful of boundary-window
  // cells decide the ratio), so anchor the mean over a few chips.
  double sum = 0.0;
  const std::uint64_t seeds[] = {42, 43, 44, 45};
  for (const std::uint64_t seed : seeds) {
    auto chip = worn_chip(seed);
    auto& block = chip.block(0);
    block.apply_reads(31, 1e6);
    const auto result = ReadDisturbRecovery().recover(block, 30);
    EXPECT_GT(result.errors_before, 50);
    sum += 1.0 - result.rber_after() / result.rber_before();
  }
  const double mean_reduction = sum / std::size(seeds);
  // Paper headline: up to 36% at 1M disturbs.
  EXPECT_GT(mean_reduction, 0.15);
  EXPECT_LT(mean_reduction, 0.60);
}

TEST(Rdr, ReductionGrowsWithDisturbCount) {
  // Single-block reductions are shot-noisy (a handful of window cells
  // decide the ratio), so compare means over a few seeds.
  const auto mean_reduction = [](double reads) {
    double sum = 0.0;
    const std::uint64_t seeds[] = {43, 143, 243, 343};
    for (const std::uint64_t seed : seeds) {
      auto chip = worn_chip(seed);
      auto& b = chip.block(0);
      b.apply_reads(31, reads);
      const auto r = ReadDisturbRecovery().recover(b, 30);
      sum += 1.0 - r.rber_after() / r.rber_before();
    }
    return sum / std::size(seeds);
  };
  EXPECT_GT(mean_reduction(1.2e6), mean_reduction(6e5));
}

TEST(Rdr, HarmlessOnHealthyBlock) {
  // With no disturb, the re-labeling window is nearly empty and RDR must
  // not create a significant number of new errors.
  auto chip = worn_chip(44);
  auto& block = chip.block(0);
  const auto result = ReadDisturbRecovery().recover(block, 30);
  EXPECT_LE(result.errors_after, result.errors_before + 3);
}

TEST(Rdr, CorrectedStatesMatchErrorCount) {
  auto chip = worn_chip(45);
  auto& block = chip.block(0);
  block.apply_reads(31, 8e5);
  const auto result = ReadDisturbRecovery().recover(block, 30);
  ASSERT_EQ(result.corrected_states.size(), 8192u);
  int recount = 0;
  for (std::uint32_t bl = 0; bl < 8192; ++bl) {
    recount += flash::bit_errors_between(result.corrected_states[bl],
                                         block.cell(30, bl).programmed);
  }
  EXPECT_EQ(recount, result.errors_after);
}

TEST(Rdr, InducedReadsAreRealDamage) {
  auto chip = worn_chip(46);
  auto& block = chip.block(0);
  block.apply_reads(31, 5e5);
  const double dose_before = block.dose_for_wordline(30);
  ReadDisturbRecovery().recover(block, 30);
  EXPECT_GT(block.dose_for_wordline(30), dose_before);
}

TEST(Rdr, WindowAccountingConsistent) {
  auto chip = worn_chip(47);
  auto& block = chip.block(0);
  block.apply_reads(31, 1e6);
  const auto result = ReadDisturbRecovery().recover(block, 30);
  EXPECT_LE(result.cells_relabeled, result.cells_in_window);
  EXPECT_GT(result.cells_in_window, 0);
  EXPECT_EQ(result.bits, 2 * 8192);
}

TEST(Rdr, RecoveryPositiveAcrossInducedDoseSettings) {
  // The induced-read count trades classification signal against fresh
  // disturb damage. Up to ~10% of the base load the recovery must stay
  // net-positive at the 1M-read operating point — on average, since one
  // block's ratio swings tens of percent on the realization. At 20% the
  // self-inflicted disturb eats the gain (the ablation sweeps this);
  // there the mean may dip slightly negative but must stay bounded.
  const auto mean_reduction = [](double extra) {
    double sum = 0.0;
    const std::uint64_t seeds[] = {48, 148, 248, 348};
    for (const std::uint64_t seed : seeds) {
      auto chip = worn_chip(seed);
      auto& b = chip.block(0);
      b.apply_reads(31, 1e6);
      RdrOptions o;
      o.extra_reads = extra;
      const auto r = ReadDisturbRecovery(o).recover(b, 30);
      sum += 1.0 - r.rber_after() / r.rber_before();
    }
    return sum / std::size(seeds);
  };
  for (const double extra : {25e3, 50e3, 100e3})
    EXPECT_GT(mean_reduction(extra), 0.05) << "extra_reads=" << extra;
  EXPECT_GT(mean_reduction(200e3), -0.20);
}

TEST(Rdr, LooseThresholdRelabelsMore) {
  auto chip_a = worn_chip(49);
  auto chip_b = worn_chip(49);
  for (auto* chip : {&chip_a, &chip_b}) chip->block(0).apply_reads(31, 1e6);
  RdrOptions strict;
  strict.prone_factor = 3.0;
  RdrOptions loose;
  loose.prone_factor = 1.2;
  const auto rs = ReadDisturbRecovery(strict).recover(chip_a.block(0), 30);
  const auto rl = ReadDisturbRecovery(loose).recover(chip_b.block(0), 30);
  EXPECT_GT(rl.cells_relabeled, rs.cells_relabeled);
}

TEST(Rdr, WorksOnFirstWordline) {
  // wl = 0 uses a different sibling for the induced reads.
  auto chip = worn_chip(50);
  auto& block = chip.block(0);
  block.apply_reads(1, 1e6);
  const auto result = ReadDisturbRecovery().recover(block, 0);
  EXPECT_LE(result.errors_after, result.errors_before);
}

}  // namespace
}  // namespace rdsim::core
