// Tests for the NVMe-style queued host interface: command lifecycle,
// flush barriers, completion determinism across poll cadences, stall
// attribution, CompletionStats percentiles, and the Monte Carlo backend.
#include "host/device.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "host/mc_chip_device.h"
#include "host/ssd_device.h"
#include "workload/generator.h"
#include "workload/profiles.h"

namespace rdsim::host {
namespace {

ssd::SsdConfig small_config() {
  ssd::SsdConfig cfg;
  cfg.ftl.blocks = 64;
  cfg.ftl.pages_per_block = 32;
  cfg.ftl.overprovision = 0.2;
  cfg.ftl.gc_free_target = 4;
  cfg.vpass_tuning = false;
  return cfg;
}

/// A mixed command stream with every kind, trims, and flushes.
std::vector<Command> mixed_stream(std::uint64_t logical, std::uint16_t queues,
                                  std::uint64_t seed) {
  workload::WorkloadProfile profile = workload::profile_by_name("postmark");
  profile.daily_page_ios = 30000;
  profile.trim_fraction = 0.1;
  profile.flush_period_s = 1800.0;
  workload::TraceGenerator gen(profile, logical, seed, queues);
  return gen.day_commands();
}

TEST(HostDevice, CompletionLogIdenticalAtAnyPollCadence) {
  // The acceptance contract of the queued interface: for a fixed seed and
  // queue count, the completion log is byte-identical no matter how the
  // host paces its polls.
  const auto params = flash::FlashModelParams::default_2ynm();
  const std::uint16_t kQueues = 4;
  const auto stream =
      mixed_stream(small_config().ftl.logical_pages(), kQueues, 99);
  ASSERT_GT(stream.size(), 500u);

  // Cadence A: drain only at the very end. Cadence B: poll one completion
  // after every submission. Cadence C: poll up to 3 every 7 submissions,
  // with a day boundary in the middle.
  std::vector<std::string> logs;
  for (const int cadence : {0, 1, 7}) {
    SsdDevice device(small_config(), params, /*seed=*/5, kQueues);
    std::vector<Completion> got;
    std::string log;
    std::size_t i = 0;
    for (const auto& c : stream) {
      device.submit(c);
      ++i;
      if (cadence > 0 && i % cadence == 0)
        device.poll(&got, cadence == 1 ? 1 : 3);
      if (i == stream.size() / 2) device.end_of_day();
    }
    device.drain(&got);
    for (const auto& rec : got) {
      log += to_string(rec);
      log += '\n';
    }
    // Polled completions always arrive oldest-first, so the concatenated
    // log is the completion order.
    logs.push_back(std::move(log));
  }
  EXPECT_EQ(logs[0], logs[1]);
  EXPECT_EQ(logs[0], logs[2]);
  // And the log is non-trivial: every command completed exactly once.
  EXPECT_EQ(static_cast<std::size_t>(
                std::count(logs[0].begin(), logs[0].end(), '\n')),
            stream.size());
}

TEST(HostDevice, FlushIsABarrier) {
  const auto params = flash::FlashModelParams::default_2ynm();
  SsdDevice device(small_config(), params, 1, /*queue_count=*/2);
  Command write;
  write.kind = CommandKind::kWrite;
  write.pages = 4;
  write.queue = 0;
  device.submit(write);
  Command flush;
  flush.kind = CommandKind::kFlush;
  flush.queue = 1;  // A barrier even across queues.
  device.submit(flush);
  Command read;
  read.kind = CommandKind::kRead;
  read.queue = 0;
  device.submit(read);
  std::vector<Completion> done;
  ASSERT_EQ(device.drain(&done), 3u);
  EXPECT_EQ(done[1].kind, CommandKind::kFlush);
  // The flush completes no earlier than the write before it, and the read
  // after it starts no earlier than the flush completed.
  EXPECT_GE(done[1].complete_time_s, done[0].complete_time_s);
  EXPECT_GE(done[2].service_start_s, done[1].complete_time_s);
}

TEST(HostDevice, QueueIdsAreTakenModuloQueueCount) {
  const auto params = flash::FlashModelParams::default_2ynm();
  SsdDevice device(small_config(), params, 1, /*queue_count=*/2);
  Command c;
  c.kind = CommandKind::kRead;
  c.queue = 7;  // Routed to 7 % 2 == 1.
  device.submit(c);
  std::vector<Completion> done;
  ASSERT_EQ(device.drain(&done), 1u);
  EXPECT_EQ(done[0].queue, 1u);
}

TEST(HostDevice, OutstandingTracksSubmitMinusDelivered) {
  const auto params = flash::FlashModelParams::default_2ynm();
  SsdDevice device(small_config(), params, 1);
  Command c;
  c.kind = CommandKind::kRead;
  for (int i = 0; i < 5; ++i) device.submit(c);
  EXPECT_EQ(device.outstanding(), 5u);
  std::vector<Completion> got;
  device.poll(&got, 2);
  EXPECT_EQ(device.outstanding(), 3u);
  device.drain(&got);
  EXPECT_EQ(device.outstanding(), 0u);
}

TEST(HostDevice, BackgroundStallIsAttributed) {
  // Drive enough churn that inline GC fires; the write that triggered it
  // must carry the stall, and followers waiting on the reservation are
  // attributed too.
  const auto params = flash::FlashModelParams::default_2ynm();
  SsdDevice device(small_config(), params, 3);
  Command write;
  write.kind = CommandKind::kWrite;
  Rng rng(17);
  const std::uint64_t logical = device.logical_pages();
  for (int i = 0; i < 12000; ++i) {
    write.lpn = rng.uniform_u64(logical);
    device.submit(write);
  }
  std::vector<Completion> done;
  device.drain(&done);
  double max_stall = 0.0;
  for (const auto& rec : done) max_stall = std::max(max_stall, rec.stall_s);
  EXPECT_GT(max_stall, 0.0);
  EXPECT_GT(device.stats().stall_seconds(), 0.0);
}

TEST(CompletionStats, PercentilesAndThroughput) {
  CompletionStats stats;
  // 100 reads: 99 at 100 us, one straggler at 10 ms.
  for (int i = 0; i < 100; ++i) {
    Completion c;
    c.kind = CommandKind::kRead;
    c.submit_time_s = i;
    c.service_start_s = i;
    c.complete_time_s = i + (i == 99 ? 10e-3 : 100e-6);
    stats.add(c);
  }
  EXPECT_EQ(stats.commands(CommandKind::kRead), 100u);
  // p50 lands in the 100 us population, p999 in the straggler.
  EXPECT_NEAR(stats.latency_quantile_s(CommandKind::kRead, 0.50), 100e-6,
              5e-6);
  EXPECT_NEAR(stats.latency_quantile_s(CommandKind::kRead, 0.999), 10e-3,
              5e-6);
  EXPECT_NEAR(stats.max_latency_s(CommandKind::kRead), 10e-3, 1e-12);
  const double mean = stats.mean_latency_s(CommandKind::kRead);
  EXPECT_GT(mean, 100e-6);
  EXPECT_LT(mean, 10e-3);
  EXPECT_GT(stats.iops(), 0.0);
}

TEST(CompletionStats, LatencyBeyondHistogramClampsToCeiling) {
  CompletionStats stats(/*max_latency_s=*/1e-3, /*bins=*/10);
  Completion c;
  c.kind = CommandKind::kWrite;
  c.complete_time_s = 5.0;  // Far past the histogram range.
  stats.add(c);
  EXPECT_DOUBLE_EQ(stats.latency_quantile_s(CommandKind::kWrite, 0.5), 1e-3);
  EXPECT_DOUBLE_EQ(stats.max_latency_s(CommandKind::kWrite), 5.0);
}

TEST(McChipDevice, QueuedReadsObserveDisturbErrors) {
  // Reads through the queued interface sense real cells: on a worn chip,
  // hammering pages raises the observed raw bit error count.
  const auto params = flash::FlashModelParams::default_2ynm();
  McChipDevice device(nand::Geometry::tiny(), params, 3);
  for (std::size_t b = 0; b < device.chip().block_count(); ++b) {
    device.chip().block(b).erase();
    device.chip().block(b).add_wear(8000);
    device.chip().block(b).program_random();
  }
  Command read;
  read.kind = CommandKind::kRead;
  read.lpn = 1;  // MSB page of wordline 0 — the disturb-sensitive page.
  std::vector<Completion> done;
  device.submit(read);
  device.drain(&done);
  const std::uint64_t errors_fresh = device.read_bit_errors();

  // A million disturbs later the same page reads back much dirtier.
  device.chip().block(0).apply_reads(1, 1e6);
  device.submit(read);
  device.drain(&done);
  EXPECT_GT(device.read_bit_errors(), errors_fresh + 10);
  EXPECT_EQ(device.pages_read(), 2u);
}

TEST(McChipDevice, WritesTurnOverBlocksAndClearDisturb) {
  const auto params = flash::FlashModelParams::default_2ynm();
  const nand::Geometry geometry = nand::Geometry::tiny();
  McChipDevice device(geometry, params, 4);
  device.chip().block(0).apply_reads(1, 5e5);
  const double dose_before = device.chip().block(0).dose();
  EXPECT_GT(dose_before, 0.0);
  // A block's worth of writes to block 0 forces its erase + reprogram.
  Command write;
  write.kind = CommandKind::kWrite;
  write.lpn = 0;
  write.pages = geometry.pages_per_block();
  device.submit(write);
  std::vector<Completion> done;
  device.drain(&done);
  EXPECT_EQ(device.block_rewrites(), 1u);
  EXPECT_EQ(device.chip().block(0).dose(), 0.0);
  EXPECT_GT(done[0].stall_s, 0.0);  // The erase is charged as a stall.
}

TEST(McChipDevice, LogicalSpaceCoversWholeChip) {
  const auto params = flash::FlashModelParams::default_2ynm();
  const nand::Geometry geometry = nand::Geometry::tiny();
  McChipDevice device(geometry, params, 5);
  EXPECT_EQ(device.logical_pages(),
            static_cast<std::uint64_t>(geometry.blocks) *
                geometry.pages_per_block());
  // Reading every page touches every block without faulting.
  Command read;
  read.kind = CommandKind::kRead;
  read.lpn = 0;
  read.pages = static_cast<std::uint32_t>(device.logical_pages());
  device.submit(read);
  std::vector<Completion> done;
  device.drain(&done);
  EXPECT_EQ(device.pages_read(), device.logical_pages());
}

}  // namespace
}  // namespace rdsim::host
