// Paper-anchor regression suite: every headline number the paper reports
// must keep coming out of the simulation stack. These tests guard the
// calibration itself — if a model change breaks a figure, this file says
// which one.
#include <gtest/gtest.h>

#include <vector>

#include "common/stats.h"
#include "core/endurance.h"
#include "core/rdr.h"
#include "ecc/ecc_model.h"
#include "flash/rber_model.h"
#include "nand/chip.h"

namespace rdsim {
namespace {

class PaperAnchors : public ::testing::Test {
 protected:
  flash::FlashModelParams params_ = flash::FlashModelParams::default_2ynm();
  flash::RberModel model_{params_};
};

// Fig. 2: ER shift grows with read count, large for ER, tiny for P3.
TEST_F(PaperAnchors, Fig2ErShiftMagnitudes) {
  const flash::VthModel vth(params_);
  auto er_shift = [&](double reads) {
    const double er = vth.state_mean(flash::CellState::kEr, 8000);
    return vth.apply_disturb(er, 1.0, vth.disturb_dose(reads, 512, 8000)) -
           er;
  };
  EXPECT_NEAR(er_shift(1e6), 25.0, 4.0);
  EXPECT_GT(er_shift(500e3), er_shift(250e3));
  const double p3 = vth.state_mean(flash::CellState::kP3, 8000);
  EXPECT_LT(vth.apply_disturb(p3, 1.0, vth.disturb_dose(1e6, 512, 8000)) - p3,
            1.0);
}

// Fig. 3: the published slope table, each within 20%.
TEST_F(PaperAnchors, Fig3SlopeTable) {
  const std::vector<std::pair<double, double>> table = {
      {2000, 1.00e-9}, {3000, 1.63e-9}, {4000, 2.37e-9}, {5000, 3.74e-9},
      {8000, 7.50e-9}, {10000, 9.10e-9}, {15000, 1.90e-8}};
  for (const auto& [pe, slope] : table)
    EXPECT_NEAR(model_.disturb_slope(pe) / slope, 1.0, 0.20) << pe;
}

// Fig. 4: 2% Vpass reduction cuts RBER ~50% at 100K reads, 8K P/E.
TEST_F(PaperAnchors, Fig4HeadlineReduction) {
  const double full = model_.total_rber({8000, 0.5, 100e3, 512.0});
  const double relaxed = model_.total_rber({8000, 0.5, 100e3, 501.76});
  EXPECT_NEAR(1.0 - relaxed / full, 0.5, 0.1);
}

// Fig. 5: relaxation costs errors; older data costs less.
TEST_F(PaperAnchors, Fig5AgeOrdering) {
  for (double v : {485.0, 495.0, 505.0}) {
    double prev = 1e9;
    for (double age : {0.0, 2.0, 9.0, 21.0}) {
      const double r = model_.pass_through_rber(v, age);
      EXPECT_LE(r, prev);
      prev = r;
    }
  }
}

// Fig. 6: safe reduction annotation row.
TEST_F(PaperAnchors, Fig6AnnotationRow) {
  const std::vector<int> expected = {4, 4, 4, 3, 3, 3, 3, 3, 2, 2, 2,
                                     2, 2, 2, 1, 1, 1, 1, 0, 0, 0};
  for (int day = 1; day <= 21; ++day)
    EXPECT_EQ(model_.safe_vpass_reduction_percent(8000, day),
              expected[day - 1])
        << "day " << day;
}

// Fig. 7: mitigation cuts the interval peak below ECC capability for a
// block that would otherwise die.
TEST_F(PaperAnchors, Fig7PeakRescue) {
  const ecc::EccModel ecc{ecc::EccConfig::paper_provisioning()};
  const core::EnduranceEvaluator evaluator(model_, ecc);
  const auto base = evaluator.simulate_interval(8000, 200e3, false);
  const auto tuned = evaluator.simulate_interval(8000, 200e3, true);
  EXPECT_GT(base.peak_rber, params_.ecc_capability_rber);
  EXPECT_LT(tuned.peak_rber, params_.ecc_capability_rber);
}

// Fig. 8 regime: the endurance gain at moderate-to-high read pressure
// brackets the paper's 21% average.
TEST_F(PaperAnchors, Fig8GainRegime) {
  const ecc::EccModel ecc{ecc::EccConfig::paper_provisioning()};
  const core::EnduranceEvaluator evaluator(model_, ecc);
  std::vector<double> gains;
  for (double reads : {5e3, 15e3, 30e3, 60e3}) {
    const double base = evaluator.endurance_pe(reads, false);
    const double tuned = evaluator.endurance_pe(reads, true);
    gains.push_back((tuned / base - 1.0) * 100.0);
  }
  const double avg = mean_of(gains);
  EXPECT_GT(avg, 8.0);
  EXPECT_LT(avg, 45.0);
  // Gains grow with pressure in this regime.
  EXPECT_LT(gains.front(), gains.back());
}

// Fig. 10: RDR reduction "up to 36%" at 1M disturbs, 8K P/E. One block's
// reduction swings tens of percent with the realization (a few dozen
// boundary-window cells decide it), so the anchor is over a handful of
// chips: a solidly positive mean, with the best block approaching the
// paper's headline. (The previous single-seed form of this test sat on a
// lucky realization — across seeds the mean is ~22%.)
TEST_F(PaperAnchors, Fig10RdrHeadline) {
  double sum = 0.0, best = 0.0;
  const std::uint64_t seeds[] = {42, 43, 44, 45, 46, 47};
  for (const std::uint64_t seed : seeds) {
    nand::Chip chip(nand::Geometry::characterization(), params_, seed);
    auto& block = chip.block(0);
    block.add_wear(8000);
    block.program_random();
    block.apply_reads(31, 1e6);
    const auto r = core::ReadDisturbRecovery().recover(block, 30);
    const double reduction = 1.0 - r.rber_after() / r.rber_before();
    sum += reduction;
    best = std::max(best, reduction);
    // And the no-recovery RBER magnitude is in the figure's band.
    EXPECT_GT(r.rber_before(), 3e-3);
    EXPECT_LT(r.rber_before(), 2e-2);
  }
  const double mean = sum / std::size(seeds);
  EXPECT_GT(mean, 0.10);
  EXPECT_LT(mean, 0.45);
  EXPECT_GT(best, 0.25);  // "Up to 36%" — the favorable realizations.
}

// Fig. 10 shape: reduction grows with read count.
TEST_F(PaperAnchors, Fig10ReductionGrowsWithReads) {
  auto reduction_at = [&](double reads) {
    nand::Chip chip(nand::Geometry::characterization(), params_, 42);
    auto& block = chip.block(0);
    block.add_wear(8000);
    block.program_random();
    block.apply_reads(31, reads);
    const auto r = core::ReadDisturbRecovery().recover(block, 30);
    return 1.0 - r.rber_after() / r.rber_before();
  };
  EXPECT_GT(reduction_at(1.2e6), reduction_at(7e5));
}

// ECC provisioning: tolerates ~1e-3 RBER (paper §2.5).
TEST_F(PaperAnchors, EccProvisioningRatio) {
  const ecc::EccModel ecc{ecc::EccConfig::paper_provisioning()};
  EXPECT_NEAR(ecc.rber_capability(), 1.1e-3, 0.15e-3);
  EXPECT_DOUBLE_EQ(model_.usable_ecc_rber(), 0.8e-3);
}

}  // namespace
}  // namespace rdsim
