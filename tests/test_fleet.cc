// Fleet runner + checkpoint robustness tests.
//
// The contracts under test:
//   * determinism — the fleet table is byte-identical for any thread
//     count, and a run resumed from a checkpoint taken after ANY epoch
//     (at any thread count) finishes byte-identical to an uninterrupted
//     run;
//   * rejection — corrupt, truncated, over-long, wrong-version,
//     wrong-config or wrong-seed checkpoints are refused with a
//     diagnostic, never silently (or partially) restored;
//   * lifecycle — drives degrade, fail read-only, and are replaced (or
//     frozen dead) per fleet.replace_failed;
//   * the Ssd snapshot embedded in every checkpoint round-trips exactly.
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cfg/spec.h"
#include "common/thread_pool.h"
#include "fleet/checkpoint.h"
#include "fleet/fleet.h"
#include "host/command.h"
#include "host/factory.h"
#include "ssd/ssd.h"
#include "workload/generator.h"
#include "workload/profiles.h"

namespace rdsim {
namespace {

constexpr std::uint64_t kSeed = 42;

/// A 12-day, 6-drive fleet over tiny drives: small enough for tight test
/// loops, hot enough (1-block spare budget, lognormal fault rates) that
/// failures, replacements and rebuilds all happen inside the horizon.
cfg::ScenarioSpec tiny_fleet_spec() {
  cfg::ScenarioSpec spec;
  spec.name = "fleet_test";
  spec.drive.backend = cfg::Backend::kAnalytic;
  spec.drive.blocks = 32;
  spec.drive.pages_per_block = 8;
  spec.drive.overprovision = 0.25;
  spec.drive.gc_free_target = 2;
  spec.drive.spare_blocks = 1;
  spec.drive.queue_count = 1;
  spec.workload.profile = workload::profile_by_name("fiu-web-vm");
  spec.workload.profile.daily_page_ios = 2000.0;
  spec.workload.profile.read_fraction = 0.4;
  spec.fleet.drives = 6;
  spec.fleet.years = 12.0 / 365.0;
  spec.fleet.report_interval_days = 3;  // 4 epochs.
  spec.fleet.teardown_every = 3;
  spec.fleet.pe_fail_prob_median = 3e-4;
  spec.fleet.fault_rate_sigma = 0.8;
  spec.fleet.replace_failed = true;
  spec.fleet.rebuild_days = 1.0;
  return spec;
}

std::string run_to_completion(fleet::FleetRunner& runner) {
  while (!runner.done()) runner.run_epoch();
  return runner.table().to_csv();
}

std::string reference_table(const cfg::ScenarioSpec& spec, int threads = 1) {
  ThreadPool pool(threads);
  fleet::FleetRunner runner(spec, kSeed, pool);
  return run_to_completion(runner);
}

// --- Determinism -----------------------------------------------------------

TEST(Fleet, TableIsThreadCountInvariant) {
  const cfg::ScenarioSpec spec = tiny_fleet_spec();
  const std::string t1 = reference_table(spec, 1);
  EXPECT_EQ(t1, reference_table(spec, 4));
  EXPECT_EQ(t1, reference_table(spec, 8));
}

TEST(Fleet, ResumeFromEveryEpochIsByteIdentical) {
  const cfg::ScenarioSpec spec = tiny_fleet_spec();
  const std::string reference = reference_table(spec);

  ThreadPool pool(2);
  fleet::FleetRunner probe(spec, kSeed, pool);
  const std::size_t total = probe.total_epochs();
  ASSERT_GE(total, 3u);

  for (std::size_t k = 1; k < total; ++k) {
    SCOPED_TRACE("checkpoint after epoch " + std::to_string(k));
    fleet::FleetRunner partial(spec, kSeed, pool);
    for (std::size_t e = 0; e < k; ++e) partial.run_epoch();
    const std::vector<std::uint8_t> ckpt = partial.checkpoint();

    std::string error;
    auto resumed =
        fleet::FleetRunner::from_checkpoint(ckpt, spec, kSeed, pool, &error);
    ASSERT_NE(resumed, nullptr) << error;
    EXPECT_EQ(resumed->epoch(), k);
    EXPECT_EQ(run_to_completion(*resumed), reference);
  }
}

TEST(Fleet, ResumeCrossesThreadCountsBothWays) {
  const cfg::ScenarioSpec spec = tiny_fleet_spec();
  const std::string reference = reference_table(spec);

  // Checkpoint under 8 workers, resume under 1 — and the reverse.
  ThreadPool pool1(1), pool8(8);
  for (const bool wide_first : {true, false}) {
    SCOPED_TRACE(wide_first ? "8 -> 1" : "1 -> 8");
    ThreadPool& before = wide_first ? pool8 : pool1;
    ThreadPool& after = wide_first ? pool1 : pool8;
    fleet::FleetRunner partial(spec, kSeed, before);
    partial.run_epoch();
    partial.run_epoch();
    std::string error;
    auto resumed = fleet::FleetRunner::from_checkpoint(
        partial.checkpoint(), spec, kSeed, after, &error);
    ASSERT_NE(resumed, nullptr) << error;
    EXPECT_EQ(run_to_completion(*resumed), reference);
  }
}

TEST(Fleet, RunFleetStopAfterCheckpointsResumesToSameTable) {
  const cfg::ScenarioSpec spec = tiny_fleet_spec();
  const std::string reference = reference_table(spec);
  const std::string path =
      (std::filesystem::temp_directory_path() / "rdsim_fleet_stop.ckpt")
          .string();

  ThreadPool pool(4);
  fleet::FleetRunner first(spec, kSeed, pool);
  fleet::FleetOptions options;
  options.checkpoint_path = path;
  options.checkpoint_every = 1;
  options.stop_after_checkpoints = 2;
  EXPECT_THROW(fleet::run_fleet(first, options), fleet::Interrupted);

  std::string error;
  auto resumed = fleet::FleetRunner::from_checkpoint_file(path, pool, &error);
  ASSERT_NE(resumed, nullptr) << error;
  EXPECT_EQ(resumed->epoch(), 2u);
  fleet::FleetOptions rest;  // No cadence: run straight to the end.
  rest.checkpoint_path = path;
  EXPECT_EQ(fleet::run_fleet(*resumed, rest).to_csv(), reference);
  std::filesystem::remove(path);
}

TEST(Fleet, StopFlagWritesFinalCheckpointAndThrows) {
  const cfg::ScenarioSpec spec = tiny_fleet_spec();
  const std::string path =
      (std::filesystem::temp_directory_path() / "rdsim_fleet_sig.ckpt")
          .string();
  std::filesystem::remove(path);

  ThreadPool pool(2);
  fleet::FleetRunner runner(spec, kSeed, pool);
  runner.run_epoch();
  volatile std::sig_atomic_t stop = 1;  // As if SIGINT already arrived.
  fleet::FleetOptions options;
  options.checkpoint_path = path;
  options.stop_flag = &stop;
  try {
    fleet::run_fleet(runner, options);
    FAIL() << "stop flag did not interrupt the run";
  } catch (const fleet::Interrupted& e) {
    EXPECT_EQ(e.checkpoint_path(), path);
    EXPECT_NE(std::string(e.what()).find("--resume"), std::string::npos);
  }
  // The final checkpoint is on disk and resumable at the stopped epoch.
  std::string error;
  auto resumed = fleet::FleetRunner::from_checkpoint_file(path, pool, &error);
  ASSERT_NE(resumed, nullptr) << error;
  EXPECT_EQ(resumed->epoch(), 1u);
  std::filesystem::remove(path);
}

// --- Rejection -------------------------------------------------------------

TEST(Fleet, CheckpointRejectsBitCorruptionEverywhere) {
  const cfg::ScenarioSpec spec = tiny_fleet_spec();
  ThreadPool pool(2);
  fleet::FleetRunner runner(spec, kSeed, pool);
  runner.run_epoch();
  const std::vector<std::uint8_t> ckpt = runner.checkpoint();

  // Flip one bit at a stride of positions across the whole container
  // (every byte would be slow; the stride still covers header, every
  // section header, and payload interiors).
  for (std::size_t pos = 0; pos < ckpt.size(); pos += 97) {
    auto bad = ckpt;
    bad[pos] ^= 0x10;
    std::string error;
    auto resumed =
        fleet::FleetRunner::from_checkpoint(bad, spec, kSeed, pool, &error);
    EXPECT_EQ(resumed, nullptr) << "byte " << pos << " accepted";
    EXPECT_FALSE(error.empty()) << "byte " << pos << ": no diagnostic";
  }
}

TEST(Fleet, CheckpointRejectsTruncationAtAnyLength) {
  const cfg::ScenarioSpec spec = tiny_fleet_spec();
  ThreadPool pool(2);
  fleet::FleetRunner runner(spec, kSeed, pool);
  runner.run_epoch();
  const std::vector<std::uint8_t> ckpt = runner.checkpoint();

  for (const double frac : {0.0, 0.1, 0.5, 0.9, 0.999}) {
    auto bad = ckpt;
    bad.resize(static_cast<std::size_t>(static_cast<double>(bad.size()) *
                                        frac));
    std::string error;
    EXPECT_EQ(fleet::FleetRunner::from_checkpoint(bad, spec, kSeed, pool,
                                                  &error),
              nullptr)
        << "length " << bad.size() << " accepted";
    EXPECT_FALSE(error.empty());
  }
}

TEST(Fleet, CheckpointRejectsTrailingBytes) {
  const cfg::ScenarioSpec spec = tiny_fleet_spec();
  ThreadPool pool(2);
  fleet::FleetRunner runner(spec, kSeed, pool);
  auto ckpt = runner.checkpoint();
  ckpt.push_back(0);
  std::string error;
  EXPECT_EQ(fleet::FleetRunner::from_checkpoint(ckpt, spec, kSeed, pool,
                                                &error),
            nullptr);
  EXPECT_NE(error.find("trailing"), std::string::npos) << error;
}

TEST(Fleet, CheckpointRejectsWrongMagicAndVersion) {
  const cfg::ScenarioSpec spec = tiny_fleet_spec();
  ThreadPool pool(2);
  fleet::FleetRunner runner(spec, kSeed, pool);
  const auto ckpt = runner.checkpoint();
  std::string error;

  auto bad_magic = ckpt;
  bad_magic[0] ^= 0xFF;
  EXPECT_EQ(fleet::FleetRunner::from_checkpoint(bad_magic, spec, kSeed, pool,
                                                &error),
            nullptr);
  EXPECT_NE(error.find("magic"), std::string::npos) << error;

  auto bad_version = ckpt;
  bad_version[4] = 0x7F;  // version field follows the u32 magic
  EXPECT_EQ(fleet::FleetRunner::from_checkpoint(bad_version, spec, kSeed,
                                                pool, &error),
            nullptr);
  EXPECT_NE(error.find("version"), std::string::npos) << error;
}

TEST(Fleet, CheckpointRejectsMismatchedConfig) {
  const cfg::ScenarioSpec spec = tiny_fleet_spec();
  ThreadPool pool(2);
  fleet::FleetRunner runner(spec, kSeed, pool);
  runner.run_epoch();
  const auto ckpt = runner.checkpoint();

  // Any drift in what the run's results depend on must be refused: fleet
  // shape, drive geometry, workload intensity, fault distribution.
  for (int variant = 0; variant < 4; ++variant) {
    cfg::ScenarioSpec other = tiny_fleet_spec();
    switch (variant) {
      case 0: other.fleet.drives += 1; break;
      case 1: other.drive.blocks = 64; break;
      case 2: other.workload.profile.daily_page_ios = 2001.0; break;
      case 3: other.fleet.fault_rate_sigma = 0.9; break;
    }
    SCOPED_TRACE("variant " + std::to_string(variant));
    std::string error;
    EXPECT_EQ(fleet::FleetRunner::from_checkpoint(ckpt, other, kSeed, pool,
                                                  &error),
              nullptr);
    EXPECT_NE(error.find("different"), std::string::npos) << error;
  }
}

TEST(Fleet, CheckpointRejectsMismatchedSeed) {
  const cfg::ScenarioSpec spec = tiny_fleet_spec();
  ThreadPool pool(2);
  fleet::FleetRunner runner(spec, kSeed, pool);
  const auto ckpt = runner.checkpoint();
  std::string error;
  EXPECT_EQ(fleet::FleetRunner::from_checkpoint(ckpt, spec, kSeed + 1, pool,
                                                &error),
            nullptr);
  EXPECT_NE(error.find("seed"), std::string::npos) << error;
}

TEST(Fleet, FileResumeIsSelfContainedAndRejectsGarbageFiles) {
  const cfg::ScenarioSpec spec = tiny_fleet_spec();
  const auto dir = std::filesystem::temp_directory_path();
  const std::string path = (dir / "rdsim_fleet_file.ckpt").string();

  ThreadPool pool(2);
  fleet::FleetRunner runner(spec, kSeed, pool);
  runner.run_epoch();
  std::string error;
  ASSERT_TRUE(fleet::write_checkpoint_file(path, runner.checkpoint(),
                                           &error))
      << error;

  // No spec, no seed — everything comes from the file.
  auto resumed = fleet::FleetRunner::from_checkpoint_file(path, pool, &error);
  ASSERT_NE(resumed, nullptr) << error;
  EXPECT_EQ(resumed->seed(), kSeed);
  EXPECT_EQ(resumed->epoch(), 1u);
  EXPECT_EQ(fleet::FleetRunner::canonical_config(resumed->spec()),
            fleet::FleetRunner::canonical_config(spec));

  EXPECT_EQ(fleet::FleetRunner::from_checkpoint_file(
                (dir / "rdsim_fleet_missing.ckpt").string(), pool, &error),
            nullptr);
  EXPECT_FALSE(error.empty());

  const std::string garbage = (dir / "rdsim_fleet_garbage.ckpt").string();
  std::ofstream(garbage) << "this is not a checkpoint";
  EXPECT_EQ(fleet::FleetRunner::from_checkpoint_file(garbage, pool, &error),
            nullptr);
  EXPECT_FALSE(error.empty());
  std::filesystem::remove(path);
  std::filesystem::remove(garbage);
}

// --- Container + canonical config ------------------------------------------

TEST(FleetCheckpoint, ContainerRoundTripsSections) {
  std::vector<fleet::CheckpointSection> sections(2);
  sections[0].tag = fleet::kSectionConfig;
  sections[0].payload = {1, 2, 3};
  sections[1].tag = fleet::kSectionMeta;  // Empty payload is legal.
  const auto bytes = fleet::pack_checkpoint(0xDEADBEEF, sections);

  std::uint32_t digest = 0;
  std::vector<fleet::CheckpointSection> out;
  std::string error;
  ASSERT_TRUE(fleet::unpack_checkpoint(bytes, &digest, &out, &error))
      << error;
  EXPECT_EQ(digest, 0xDEADBEEFu);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].payload, (std::vector<std::uint8_t>{1, 2, 3}));
  EXPECT_NE(fleet::find_section(out, fleet::kSectionMeta), nullptr);
  EXPECT_EQ(fleet::find_section(out, fleet::kSectionDrives), nullptr);
}

TEST(FleetCheckpoint, CanonicalConfigRoundTripsThroughParser) {
  // The canonical text must re-parse to a spec that emits the identical
  // text — this is what makes the embedded-config digest meaningful.
  const cfg::ScenarioSpec spec = tiny_fleet_spec();
  const std::string text = fleet::FleetRunner::canonical_config(spec);
  std::vector<cfg::Diagnostic> diags;
  cfg::Config config = cfg::Config::parse(text, &diags);
  cfg::ScenarioSpec reparsed = cfg::parse_scenario(config, &diags);
  ASSERT_TRUE(diags.empty()) << cfg::format_diagnostics(diags);
  EXPECT_EQ(fleet::FleetRunner::canonical_config(reparsed), text);
}

// --- Lifecycle -------------------------------------------------------------

TEST(Fleet, LifecycleReplacesFailedDrives) {
  cfg::ScenarioSpec spec = tiny_fleet_spec();
  spec.fleet.pe_fail_prob_median = 2e-3;  // Hot: force failures.
  ThreadPool pool(2);
  fleet::FleetRunner runner(spec, kSeed, pool);
  const std::string csv = run_to_completion(runner);
  // With replacement on, failures accumulate past the fleet size while
  // no slot stays read-only (each failure swaps in a fresh drive).
  const auto last_b = csv.rfind('\n', csv.size() - 2);
  const std::string section_b = csv.substr(last_b + 1);
  unsigned long long failures = 0;
  ASSERT_EQ(std::sscanf(section_b.c_str(), "%llu,", &failures), 1);
  EXPECT_GT(failures, spec.fleet.drives);
}

TEST(Fleet, LifecycleWithoutReplacementFreezesDeadDrives) {
  cfg::ScenarioSpec spec = tiny_fleet_spec();
  spec.fleet.pe_fail_prob_median = 2e-3;
  spec.fleet.replace_failed = false;
  ThreadPool pool(2);
  fleet::FleetRunner runner(spec, kSeed, pool);
  const std::string csv = run_to_completion(runner);
  const auto last_b = csv.rfind('\n', csv.size() - 2);
  unsigned long long failures = 0;
  ASSERT_EQ(std::sscanf(csv.substr(last_b + 1).c_str(), "%llu,", &failures),
            1);
  // A dead slot fails exactly once: the count is bounded by fleet size.
  EXPECT_GT(failures, 0u);
  EXPECT_LE(failures, spec.fleet.drives);
  // And the final epoch row reports those slots read-only (column 5 of
  // the last Section A row).
  EXPECT_NE(csv.find("read_only"), std::string::npos);
}

// --- Ssd snapshot ----------------------------------------------------------

TEST(SsdSnapshot, RoundTripContinuesByteIdentically) {
  const cfg::ScenarioSpec spec = tiny_fleet_spec();
  const ssd::SsdConfig config = host::ssd_config_from_spec(spec.drive);
  const auto params = host::flash_params_from_spec(spec.drive);

  ssd::Ssd a(config, params, /*seed=*/7);
  workload::TraceGenerator gen(spec.workload.profile,
                               config.ftl.logical_pages(), /*seed=*/9, 1);
  for (int day = 0; day < 3; ++day) {
    for (const host::Command& cmd : gen.day_commands()) a.service(cmd);
    a.end_of_day();
  }
  const auto snap = a.snapshot();

  ssd::Ssd b(config, params, /*seed=*/7);
  std::string error;
  ASSERT_TRUE(b.restore(snap, &error)) << error;
  // Divergence in any restored field would surface in the re-snapshot.
  EXPECT_EQ(b.snapshot(), snap);

  // Both copies must continue identically through more traffic.
  workload::TraceGenerator gen_b(spec.workload.profile,
                                 config.ftl.logical_pages(), /*seed=*/9, 1);
  gen_b.load_state(gen.save_state());
  for (int day = 0; day < 2; ++day) {
    for (const host::Command& cmd : gen.day_commands()) a.service(cmd);
    a.end_of_day();
    for (const host::Command& cmd : gen_b.day_commands()) b.service(cmd);
    b.end_of_day();
  }
  EXPECT_EQ(a.snapshot(), b.snapshot());
}

TEST(SsdSnapshot, RejectsCorruptionTruncationAndGeometryMismatch) {
  const cfg::ScenarioSpec spec = tiny_fleet_spec();
  const ssd::SsdConfig config = host::ssd_config_from_spec(spec.drive);
  const auto params = host::flash_params_from_spec(spec.drive);
  ssd::Ssd a(config, params, 7);
  const auto snap = a.snapshot();
  std::string error;

  ssd::Ssd b(config, params, 7);
  auto corrupt = snap;
  corrupt[corrupt.size() / 3] ^= 0x40;
  EXPECT_FALSE(b.restore(corrupt, &error));
  EXPECT_NE(error.find("CRC"), std::string::npos) << error;

  auto truncated = snap;
  truncated.resize(truncated.size() / 2);
  EXPECT_FALSE(b.restore(truncated, &error));
  EXPECT_FALSE(error.empty());

  cfg::ScenarioSpec other_spec = tiny_fleet_spec();
  other_spec.drive.blocks = 64;
  ssd::Ssd c(host::ssd_config_from_spec(other_spec.drive), params, 7);
  EXPECT_FALSE(c.restore(snap, &error));
  EXPECT_FALSE(error.empty());
}

}  // namespace
}  // namespace rdsim
