// Tests for the workload substrate: Zipf sampling, trace profiles, and
// the generator.
#include <gtest/gtest.h>

#include <map>

#include "workload/generator.h"
#include "workload/profiles.h"
#include "workload/zipf.h"

namespace rdsim::workload {
namespace {

TEST(Zipf, PmfSumsToOne) {
  for (double theta : {0.0, 0.5, 1.0, 1.2}) {
    ZipfSampler zipf(1000, theta);
    double sum = 0;
    for (std::uint64_t r = 0; r < 1000; ++r) sum += zipf.pmf(r);
    EXPECT_NEAR(sum, 1.0, 0.01) << "theta=" << theta;
  }
}

TEST(Zipf, PmfDecreasing) {
  ZipfSampler zipf(10000, 0.9);
  double prev = 1.0;
  for (std::uint64_t r = 0; r < 100; ++r) {
    EXPECT_LE(zipf.pmf(r), prev);
    prev = zipf.pmf(r);
  }
}

TEST(Zipf, ThetaZeroIsUniform) {
  ZipfSampler zipf(100, 0.0);
  EXPECT_NEAR(zipf.pmf(0), 0.01, 1e-6);
  EXPECT_NEAR(zipf.pmf(99), 0.01, 1e-6);
}

TEST(Zipf, SampleFrequencyMatchesPmfHead) {
  ZipfSampler zipf(100000, 1.0);
  Rng rng(1);
  std::map<std::uint64_t, int> counts;
  const int n = 300000;
  for (int i = 0; i < n; ++i) ++counts[zipf.sample(rng)];
  for (std::uint64_t r : {0ULL, 1ULL, 5ULL, 20ULL}) {
    const double expected = zipf.pmf(r) * n;
    EXPECT_NEAR(counts[r], expected, expected * 0.15 + 15)
        << "rank=" << r;
  }
}

TEST(Zipf, TailSamplesInRange) {
  ZipfSampler zipf(1u << 22, 0.8);
  Rng rng(2);
  for (int i = 0; i < 100000; ++i) EXPECT_LT(zipf.sample(rng), 1u << 22);
}

TEST(Zipf, TailMassReached) {
  // With low skew, the continuous tail must actually be sampled.
  ZipfSampler zipf(1u << 20, 0.3);
  Rng rng(3);
  int beyond_head = 0;
  for (int i = 0; i < 10000; ++i) beyond_head += zipf.sample(rng) >= 4096;
  EXPECT_GT(beyond_head, 5000);
}

TEST(Zipf, SingleItem) {
  ZipfSampler zipf(1, 1.0);
  Rng rng(4);
  EXPECT_EQ(zipf.sample(rng), 0u);
  EXPECT_NEAR(zipf.pmf(0), 1.0, 1e-12);
}

TEST(Profiles, SuiteShape) {
  const auto suite = standard_suite();
  EXPECT_EQ(suite.size(), 10u);
  for (const auto& p : suite) {
    EXPECT_GT(p.read_fraction, 0.0);
    EXPECT_LT(p.read_fraction, 1.0);
    EXPECT_GT(p.footprint_fraction, 0.0);
    EXPECT_LE(p.footprint_fraction, 1.0);
    EXPECT_GT(p.daily_page_ios, 0.0);
    EXPECT_GE(p.mean_request_pages, 1.0);
  }
}

TEST(Profiles, LookupByName) {
  EXPECT_EQ(profile_by_name("umass-web").name, "umass-web");
  EXPECT_NEAR(profile_by_name("umass-web").read_fraction, 0.99, 1e-9);
  EXPECT_THROW(profile_by_name("no-such-trace"), std::out_of_range);
}

TEST(Generator, ReadFractionMatchesProfile) {
  const auto profile = profile_by_name("fiu-mail");
  TraceGenerator gen(profile, 1u << 20, 7);
  TraceStats stats;
  for (int i = 0; i < 50000; ++i) stats.add(gen.next());
  EXPECT_NEAR(stats.read_fraction(), profile.read_fraction, 0.02);
}

TEST(Generator, LpnsWithinFootprint) {
  const auto profile = profile_by_name("postmark");
  TraceGenerator gen(profile, 1u << 20, 8);
  for (int i = 0; i < 20000; ++i)
    EXPECT_LT(gen.next().lpn, gen.footprint_pages());
}

TEST(Generator, DayVolumeApproximatesProfile) {
  const auto profile = profile_by_name("msr-proj");
  TraceGenerator gen(profile, 1u << 20, 9);
  const auto day = gen.day();
  std::uint64_t pages = 0;
  for (const auto& r : day) pages += r.pages;
  EXPECT_NEAR(static_cast<double>(pages), profile.daily_page_ios,
              profile.daily_page_ios * 0.10);
}

TEST(Generator, TimesMonotoneWithinDay) {
  const auto profile = profile_by_name("cello99");
  TraceGenerator gen(profile, 1u << 20, 10);
  const auto day = gen.day();
  ASSERT_GT(day.size(), 10u);
  for (std::size_t i = 1; i < day.size(); ++i)
    EXPECT_GE(day[i].time_s, day[i - 1].time_s);
}

TEST(Generator, ReadAndWriteHotSetsDiffer) {
  // The decoupling salt must map read rank 0 and write rank 0 to
  // different logical pages (otherwise hot reads are destroyed by hot
  // writes and no block ever accumulates disturb).
  const auto profile = profile_by_name("umass-web");
  TraceGenerator gen(profile, 1u << 20, 11);
  std::map<std::uint64_t, int> read_counts, write_counts;
  for (int i = 0; i < 200000; ++i) {
    const auto r = gen.next();
    ++(r.is_write ? write_counts : read_counts)[r.lpn];
  }
  std::uint64_t hottest_read = 0, hottest_write = 0;
  int best_r = 0, best_w = 0;
  for (const auto& [lpn, c] : read_counts)
    if (c > best_r) { best_r = c; hottest_read = lpn; }
  for (const auto& [lpn, c] : write_counts)
    if (c > best_w) { best_w = c; hottest_write = lpn; }
  EXPECT_NE(hottest_read, hottest_write);
}

TEST(Generator, DeterministicForSeed) {
  const auto profile = profile_by_name("fiu-homes");
  TraceGenerator a(profile, 1u << 20, 12), b(profile, 1u << 20, 12);
  for (int i = 0; i < 1000; ++i) {
    const auto ra = a.next(), rb = b.next();
    EXPECT_EQ(ra.lpn, rb.lpn);
    EXPECT_EQ(ra.is_write, rb.is_write);
    EXPECT_EQ(ra.pages, rb.pages);
  }
}

TEST(TraceStats, Accumulates) {
  TraceStats stats;
  stats.add({0.0, 1, 4, false});
  stats.add({1.0, 2, 2, true});
  EXPECT_EQ(stats.requests, 2u);
  EXPECT_EQ(stats.read_pages, 4u);
  EXPECT_EQ(stats.write_pages, 2u);
  EXPECT_NEAR(stats.read_fraction(), 4.0 / 6.0, 1e-12);
}

}  // namespace
}  // namespace rdsim::workload
