// Tests for the workload substrate: Zipf sampling, trace profiles, and
// the generator.
#include <gtest/gtest.h>

#include <array>
#include <map>

#include "workload/generator.h"
#include "workload/profiles.h"
#include "workload/zipf.h"

namespace rdsim::workload {
namespace {

TEST(Zipf, PmfSumsToOne) {
  for (double theta : {0.0, 0.5, 1.0, 1.2}) {
    ZipfSampler zipf(1000, theta);
    double sum = 0;
    for (std::uint64_t r = 0; r < 1000; ++r) sum += zipf.pmf(r);
    EXPECT_NEAR(sum, 1.0, 0.01) << "theta=" << theta;
  }
}

TEST(Zipf, PmfDecreasing) {
  ZipfSampler zipf(10000, 0.9);
  double prev = 1.0;
  for (std::uint64_t r = 0; r < 100; ++r) {
    EXPECT_LE(zipf.pmf(r), prev);
    prev = zipf.pmf(r);
  }
}

TEST(Zipf, ThetaZeroIsUniform) {
  ZipfSampler zipf(100, 0.0);
  EXPECT_NEAR(zipf.pmf(0), 0.01, 1e-6);
  EXPECT_NEAR(zipf.pmf(99), 0.01, 1e-6);
}

TEST(Zipf, SampleFrequencyMatchesPmfHead) {
  ZipfSampler zipf(100000, 1.0);
  Rng rng(1);
  std::map<std::uint64_t, int> counts;
  const int n = 300000;
  for (int i = 0; i < n; ++i) ++counts[zipf.sample(rng)];
  for (std::uint64_t r : {0ULL, 1ULL, 5ULL, 20ULL}) {
    const double expected = zipf.pmf(r) * n;
    EXPECT_NEAR(counts[r], expected, expected * 0.15 + 15)
        << "rank=" << r;
  }
}

TEST(Zipf, TailSamplesInRange) {
  ZipfSampler zipf(1u << 22, 0.8);
  Rng rng(2);
  for (int i = 0; i < 100000; ++i) EXPECT_LT(zipf.sample(rng), 1u << 22);
}

TEST(Zipf, TailMassReached) {
  // With low skew, the continuous tail must actually be sampled.
  ZipfSampler zipf(1u << 20, 0.3);
  Rng rng(3);
  int beyond_head = 0;
  for (int i = 0; i < 10000; ++i) beyond_head += zipf.sample(rng) >= 4096;
  EXPECT_GT(beyond_head, 5000);
}

TEST(Zipf, SingleItem) {
  ZipfSampler zipf(1, 1.0);
  Rng rng(4);
  EXPECT_EQ(zipf.sample(rng), 0u);
  EXPECT_NEAR(zipf.pmf(0), 1.0, 1e-12);
}

TEST(Profiles, SuiteShape) {
  const auto suite = standard_suite();
  EXPECT_EQ(suite.size(), 10u);
  for (const auto& p : suite) {
    EXPECT_GT(p.read_fraction, 0.0);
    EXPECT_LT(p.read_fraction, 1.0);
    EXPECT_GT(p.footprint_fraction, 0.0);
    EXPECT_LE(p.footprint_fraction, 1.0);
    EXPECT_GT(p.daily_page_ios, 0.0);
    EXPECT_GE(p.mean_request_pages, 1.0);
  }
}

TEST(Profiles, LookupByName) {
  EXPECT_EQ(profile_by_name("umass-web").name, "umass-web");
  EXPECT_NEAR(profile_by_name("umass-web").read_fraction, 0.99, 1e-9);
  EXPECT_THROW(profile_by_name("no-such-trace"), std::out_of_range);
}

TEST(Generator, ReadFractionMatchesProfile) {
  const auto profile = profile_by_name("fiu-mail");
  TraceGenerator gen(profile, 1u << 20, 7);
  TraceStats stats;
  for (int i = 0; i < 50000; ++i) stats.add(gen.next());
  EXPECT_NEAR(stats.read_fraction(), profile.read_fraction, 0.02);
}

TEST(Generator, LpnsWithinFootprint) {
  const auto profile = profile_by_name("postmark");
  TraceGenerator gen(profile, 1u << 20, 8);
  for (int i = 0; i < 20000; ++i)
    EXPECT_LT(gen.next().lpn, gen.footprint_pages());
}

TEST(Generator, DayVolumeApproximatesProfile) {
  const auto profile = profile_by_name("msr-proj");
  TraceGenerator gen(profile, 1u << 20, 9);
  const auto day = gen.day();
  std::uint64_t pages = 0;
  for (const auto& r : day) pages += r.pages;
  EXPECT_NEAR(static_cast<double>(pages), profile.daily_page_ios,
              profile.daily_page_ios * 0.10);
}

TEST(Generator, TimesMonotoneWithinDay) {
  const auto profile = profile_by_name("cello99");
  TraceGenerator gen(profile, 1u << 20, 10);
  const auto day = gen.day();
  ASSERT_GT(day.size(), 10u);
  for (std::size_t i = 1; i < day.size(); ++i)
    EXPECT_GE(day[i].time_s, day[i - 1].time_s);
}

TEST(Generator, ReadAndWriteHotSetsDiffer) {
  // The decoupling salt must map read rank 0 and write rank 0 to
  // different logical pages (otherwise hot reads are destroyed by hot
  // writes and no block ever accumulates disturb).
  const auto profile = profile_by_name("umass-web");
  TraceGenerator gen(profile, 1u << 20, 11);
  std::map<std::uint64_t, int> read_counts, write_counts;
  for (int i = 0; i < 200000; ++i) {
    const auto r = gen.next();
    ++(r.is_write ? write_counts : read_counts)[r.lpn];
  }
  std::uint64_t hottest_read = 0, hottest_write = 0;
  int best_r = 0, best_w = 0;
  for (const auto& [lpn, c] : read_counts)
    if (c > best_r) { best_r = c; hottest_read = lpn; }
  for (const auto& [lpn, c] : write_counts)
    if (c > best_w) { best_w = c; hottest_write = lpn; }
  EXPECT_NE(hottest_read, hottest_write);
}

TEST(Generator, DeterministicForSeed) {
  const auto profile = profile_by_name("fiu-homes");
  TraceGenerator a(profile, 1u << 20, 12), b(profile, 1u << 20, 12);
  for (int i = 0; i < 1000; ++i) {
    const auto ra = a.next(), rb = b.next();
    EXPECT_EQ(ra.lpn, rb.lpn);
    EXPECT_EQ(ra.is_write, rb.is_write);
    EXPECT_EQ(ra.pages, rb.pages);
  }
}

TEST(CommandStream, TrimFractionAndFlushCadenceHonored) {
  auto profile = profile_by_name("postmark");
  profile.daily_page_ios = 40000;
  profile.trim_fraction = 0.25;
  profile.flush_period_s = 3600.0;  // 24 flushes per day.
  TraceGenerator gen(profile, 1u << 20, 21, /*queues=*/4);
  std::uint64_t reads = 0, writes = 0, trims = 0, flushes = 0;
  for (const auto& c : gen.day_commands()) {
    switch (c.kind) {
      case host::CommandKind::kRead: ++reads; break;
      case host::CommandKind::kWrite: ++writes; break;
      case host::CommandKind::kTrim: ++trims; break;
      case host::CommandKind::kFlush: ++flushes; break;
    }
  }
  EXPECT_GT(reads, 0u);
  EXPECT_GT(writes, 0u);
  // Trims are the configured fraction of the write stream.
  EXPECT_NEAR(static_cast<double>(trims) / static_cast<double>(trims + writes),
              profile.trim_fraction, 0.05);
  EXPECT_GE(flushes, 22u);
  EXPECT_LE(flushes, 24u);
}

TEST(CommandStream, RouterSpansQueuesRoundRobin) {
  auto profile = profile_by_name("fiu-mail");
  TraceGenerator gen(profile, 1u << 20, 22, /*queues=*/3);
  std::array<int, 3> per_queue{};
  for (int i = 0; i < 999; ++i) ++per_queue[gen.next_command().queue % 3];
  EXPECT_EQ(per_queue[0], 333);
  EXPECT_EQ(per_queue[1], 333);
  EXPECT_EQ(per_queue[2], 333);
}

TEST(CommandStream, TrimConfigDoesNotPerturbIoRequestStream) {
  // The trim/flush overlay draws from a decoupled RNG stream: the raw
  // IoRequest sequence (and so every request-replay golden) must be
  // byte-identical whether or not command shaping is enabled.
  auto plain = profile_by_name("msr-src");
  auto shaped = plain;
  shaped.trim_fraction = 0.5;
  shaped.flush_period_s = 600.0;
  TraceGenerator a(plain, 1u << 20, 23), b(shaped, 1u << 20, 23);
  for (int i = 0; i < 5000; ++i) {
    const auto ra = a.next(), rb = b.next();
    EXPECT_EQ(ra.lpn, rb.lpn);
    EXPECT_EQ(ra.is_write, rb.is_write);
    EXPECT_EQ(ra.pages, rb.pages);
    EXPECT_DOUBLE_EQ(ra.time_s, rb.time_s);
  }
}

TEST(CommandStream, CommandsMirrorUnderlyingRequests) {
  // With shaping disabled, next_command() is exactly next() retyped.
  const auto profile = profile_by_name("cello99");
  TraceGenerator a(profile, 1u << 20, 24), b(profile, 1u << 20, 24);
  for (int i = 0; i < 2000; ++i) {
    const auto r = a.next();
    const auto c = b.next_command();
    EXPECT_EQ(c.lpn, r.lpn);
    EXPECT_EQ(c.pages, r.pages);
    EXPECT_DOUBLE_EQ(c.submit_time_s, r.time_s);
    EXPECT_EQ(c.kind, r.is_write ? host::CommandKind::kWrite
                                 : host::CommandKind::kRead);
  }
}

TEST(TraceStats, Accumulates) {
  TraceStats stats;
  stats.add({0.0, 1, 4, false});
  stats.add({1.0, 2, 2, true});
  EXPECT_EQ(stats.requests, 2u);
  EXPECT_EQ(stats.read_pages, 4u);
  EXPECT_EQ(stats.write_pages, 2u);
  EXPECT_NEAR(stats.read_fraction(), 4.0 / 6.0, 1e-12);
}

}  // namespace
}  // namespace rdsim::workload
