// Edge-case and boundary-condition tests across all modules: the corners
// a downstream user will eventually hit.
#include <gtest/gtest.h>

#include <sstream>

#include "cfg/spec.h"
#include "common/csv.h"
#include "common/histogram.h"
#include "common/rng.h"
#include "core/endurance.h"
#include "ecc/bch.h"
#include "ecc/ecc_model.h"
#include "flash/rber_model.h"
#include "flash/vth_model.h"
#include "host/factory.h"
#include "host/ssd_device.h"
#include "nand/randomizer.h"
#include "ssd/ssd.h"
#include "workload/zipf.h"

namespace rdsim {
namespace {

TEST(EdgeRber, ExtrapolationBeyondCharacterizedWindow) {
  const flash::RberModel model(flash::FlashModelParams::default_2ynm());
  // Continuous at the day-21 table edge and monotone beyond it.
  EXPECT_NEAR(model.retention_rber(8000, 21.0 - 1e-6),
              model.retention_rber(8000, 21.0 + 1e-6), 1e-7);
  double prev = model.retention_rber(8000, 21);
  for (double d : {30.0, 60.0, 180.0, 365.0}) {
    const double r = model.retention_rber(8000, d);
    EXPECT_GT(r, prev);
    prev = r;
  }
  // A year of retention still yields a probability-sized number.
  EXPECT_LT(prev, 1e-2);
}

TEST(EdgeRber, ZeroWear) {
  const flash::RberModel model(flash::FlashModelParams::default_2ynm());
  EXPECT_GT(model.base_rber(0), 0.0);
  EXPECT_LT(model.base_rber(0), model.base_rber(1000));
  EXPECT_GT(model.disturb_slope(0), 0.0);
}

TEST(EdgeVth, BoundaryShiftWithZeroBaseDose) {
  const flash::VthModel model(flash::FlashModelParams::default_2ynm());
  const double v = model.pdf_intersection(flash::CellState::kEr, 8000, 0);
  const double via_boundary =
      model.boundary_shift(flash::CellState::kEr, 8000, 0, 0.0, 1e5);
  const double direct = model.apply_disturb(v, 1.0, 1e5) - v;
  EXPECT_NEAR(via_boundary, direct, 1e-9);
}

TEST(EdgeVth, AllThreeBoundariesOrderedUnderDose) {
  const flash::VthModel model(flash::FlashModelParams::default_2ynm());
  for (double dose : {0.0, 1e5, 1e6}) {
    double prev = 0.0;
    for (int b = 0; b < 3; ++b) {
      const double x = model.pdf_intersection(static_cast<flash::CellState>(b),
                                              8000, 7.0, dose);
      EXPECT_GT(x, prev);
      prev = x;
    }
  }
}

TEST(EdgeEndurance, CustomDeathBarAndWorstFactor) {
  const flash::RberModel model(flash::FlashModelParams::default_2ynm());
  const ecc::EccModel ecc{ecc::EccConfig::paper_provisioning()};
  core::EnduranceOptions lenient;
  lenient.worst_page_factor = 1.0;
  core::EnduranceOptions strict;
  strict.worst_page_factor = 2.0;
  const core::EnduranceEvaluator easy(model, ecc, lenient);
  const core::EnduranceEvaluator hard(model, ecc, strict);
  EXPECT_GT(easy.endurance_pe(100e3, false), hard.endurance_pe(100e3, false));
}

TEST(EdgeEndurance, SaturatesAtSearchCeiling) {
  const flash::RberModel model(flash::FlashModelParams::default_2ynm());
  const ecc::EccModel ecc{ecc::EccConfig::paper_provisioning()};
  core::EnduranceOptions opt;
  opt.death_rber = 0.5;  // Unreachable bar: everything survives.
  const core::EnduranceEvaluator evaluator(model, ecc, opt);
  EXPECT_DOUBLE_EQ(evaluator.endurance_pe(0.0, false), 60000.0);
}

TEST(EdgeZipf, HeadTailBoundaryContinuous) {
  // Rank 4095 (last head entry) and 4096 (first tail rank) must both be
  // reachable and have sane relative frequency.
  workload::ZipfSampler zipf(1u << 16, 0.9);
  Rng rng(1);
  std::uint64_t head_edge = 0, tail_edge = 0;
  for (int i = 0; i < 2000000; ++i) {
    const auto r = zipf.sample(rng);
    head_edge += r == 4095;
    tail_edge += r == 4096;
  }
  EXPECT_GT(head_edge, 0u);
  EXPECT_GT(tail_edge, 0u);
  EXPECT_NEAR(static_cast<double>(head_edge) / tail_edge, 1.0, 0.5);
}

TEST(EdgeBch, FullLengthCode) {
  // data + parity exactly fills 2^m - 1 (no shortening slack).
  const ecc::BchCode code(8, 4, 255 - 32);
  ASSERT_EQ(code.codeword_bits(), 255);
  Rng rng(2);
  ecc::BitVec data(code.data_bits());
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.next() & 1);
  auto word = code.encode(data);
  word[0] ^= 1;
  word[200] ^= 1;
  const auto result = code.decode(word);
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.data, data);
}

TEST(EdgeBch, MinimalPayload) {
  const ecc::BchCode code(13, 2, 1);
  const ecc::BitVec one_bit = {1};
  auto word = code.encode(one_bit);
  word[0] ^= 1;
  const auto result = code.decode(word);
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.data, one_bit);
}

TEST(EdgeEcc, ZeroRberNeverFails) {
  const ecc::EccModel ecc{ecc::EccConfig::paper_provisioning()};
  EXPECT_DOUBLE_EQ(ecc.page_failure_prob(0.0), 0.0);
  EXPECT_DOUBLE_EQ(ecc.expected_errors(0.0), 0.0);
}

TEST(EdgeRandomizer, EmptySpanIsNoop) {
  const nand::Randomizer r;
  std::vector<std::uint8_t> empty;
  r.apply(0, 0, empty);  // Must not crash.
  EXPECT_TRUE(empty.empty());
}

TEST(EdgeHistogram, SingleBinTakesEverything) {
  Histogram h(0.0, 1.0, 1);
  h.add(-5);
  h.add(0.5);
  h.add(99);
  EXPECT_EQ(h.count(0), 3u);
  EXPECT_DOUBLE_EQ(h.mass(0), 1.0);
}

TEST(EdgeCsv, NewlineInCellQuoted) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.row("a\nb");
  EXPECT_EQ(out.str(), "\"a\nb\"\n");
}

TEST(EdgeSsd, EmptyDayStillDoesMaintenance) {
  const auto params = flash::FlashModelParams::default_2ynm();
  ssd::SsdConfig cfg;
  cfg.ftl.blocks = 32;
  cfg.ftl.pages_per_block = 16;
  cfg.ftl.overprovision = 0.25;
  cfg.ftl.gc_free_target = 2;
  host::SsdDevice drive(cfg, params, 1);
  host::Command write;
  write.kind = host::CommandKind::kWrite;
  for (std::uint64_t lpn = 0; lpn < 64; ++lpn) {
    write.lpn = lpn;
    drive.submit(write);
  }
  for (int day = 0; day < 10; ++day) drive.end_of_day();
  EXPECT_EQ(drive.ssd().stats().days, 10u);
  // Weekly refresh fired even with zero host traffic.
  EXPECT_GT(drive.ssd().ftl().stats().refreshes, 0u);
  EXPECT_TRUE(drive.ssd().ftl().check_invariants());
}

TEST(EdgeSsd, MultiPageCommandWrapsLogicalSpace) {
  const auto params = flash::FlashModelParams::default_2ynm();
  ssd::SsdConfig cfg;
  cfg.ftl.blocks = 32;
  cfg.ftl.pages_per_block = 16;
  cfg.ftl.overprovision = 0.25;
  cfg.ftl.gc_free_target = 2;
  host::SsdDevice drive(cfg, params, 2);
  const auto logical = drive.logical_pages();
  host::Command c;
  c.kind = host::CommandKind::kWrite;
  c.lpn = logical - 2;
  c.pages = 5;  // Crosses the end of the logical space.
  drive.submit(c);
  std::vector<host::Completion> done;
  ASSERT_EQ(drive.drain(&done), 1u);
  EXPECT_EQ(done[0].pages, 5u);
  EXPECT_EQ(drive.ssd().ftl().stats().host_writes, 5u);
  EXPECT_TRUE(drive.ssd().ftl().check_invariants());
}

/// A small valid DriveSpec for each backend, sized so the Monte Carlo
/// chips stay cheap to construct.
cfg::DriveSpec tiny_drive(cfg::Backend backend) {
  cfg::DriveSpec drive;
  drive.backend = backend;
  drive.shards = 2;
  drive.blocks = drive.is_analytic() ? 32 : 2;
  drive.pages_per_block = 16;
  drive.overprovision = 0.25;
  drive.gc_free_target = 2;
  drive.wordlines_per_block = 4;
  drive.bitlines = 128;
  return drive;
}

TEST(EdgeDevice, NeverWrittenReadAndUnmappedTrimAreCleanOnAllBackends) {
  // A read of a never-written range and a trim of an unmapped range are
  // both legal no-op-ish commands: they must complete with kOk, zero
  // error pages, and a sane timeline on every backend. (The analytic FTL
  // serves unmapped reads from the mapping; the MC chips sense erased
  // cells, which carry no raw bit errors.)
  for (const cfg::Backend backend :
       {cfg::Backend::kAnalytic, cfg::Backend::kMcChip,
        cfg::Backend::kShardedMc, cfg::Backend::kShardedAnalytic}) {
    SCOPED_TRACE(cfg::backend_name(backend));
    const auto device = host::make_device(tiny_drive(backend), 7, 2);
    ASSERT_NE(device, nullptr);
    const std::uint64_t logical = device->logical_pages();

    host::Command read;
    read.kind = host::CommandKind::kRead;
    read.lpn = logical - 2;
    read.pages = 5;  // Wraps the logical space; still never written.
    device->submit(read);
    host::Command trim;
    trim.kind = host::CommandKind::kTrim;
    trim.lpn = logical / 2;
    trim.pages = 7;  // Nothing mapped there either.
    device->submit(trim);

    std::vector<host::Completion> done;
    ASSERT_EQ(device->drain(&done), 2u);
    for (const host::Completion& c : done) {
      EXPECT_EQ(c.status, host::Status::kOk) << host::to_string(c);
      EXPECT_EQ(c.error_pages, 0u);
      EXPECT_GE(c.complete_time_s, c.submit_time_s);
    }
    EXPECT_EQ(device->stats().error_pages(), 0u);
    EXPECT_EQ(device->stats().commands(host::Status::kOk), 2u);
    EXPECT_DOUBLE_EQ(device->stats().uber(8.0 * 4096), 0.0);
  }
}

TEST(EdgeRng, LargeBoundUniform) {
  Rng rng(3);
  const std::uint64_t bound = (1ULL << 63) + 12345;
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.uniform_u64(bound), bound);
}

TEST(EdgeGeometry, DerivedQuantities) {
  const nand::Geometry g{64, 8192, 2};
  EXPECT_EQ(g.pages_per_block(), 128u);
  EXPECT_EQ(g.cells_per_block(), 64ull * 8192);
  EXPECT_EQ(g.bits_per_block(), 2ull * 64 * 8192);
}

}  // namespace
}  // namespace rdsim
